file(REMOVE_RECURSE
  "libahsw_net.a"
)
