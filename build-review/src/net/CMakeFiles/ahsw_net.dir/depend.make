# Empty dependencies file for ahsw_net.
# This may be replaced when dependencies are built.
