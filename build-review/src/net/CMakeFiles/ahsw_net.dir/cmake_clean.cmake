file(REMOVE_RECURSE
  "CMakeFiles/ahsw_net.dir/event_queue.cpp.o"
  "CMakeFiles/ahsw_net.dir/event_queue.cpp.o.d"
  "CMakeFiles/ahsw_net.dir/network.cpp.o"
  "CMakeFiles/ahsw_net.dir/network.cpp.o.d"
  "libahsw_net.a"
  "libahsw_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahsw_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
