# Empty dependencies file for ahsw_obs.
# This may be replaced when dependencies are built.
