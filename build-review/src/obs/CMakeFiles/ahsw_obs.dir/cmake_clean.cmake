file(REMOVE_RECURSE
  "CMakeFiles/ahsw_obs.dir/explain.cpp.o"
  "CMakeFiles/ahsw_obs.dir/explain.cpp.o.d"
  "CMakeFiles/ahsw_obs.dir/json.cpp.o"
  "CMakeFiles/ahsw_obs.dir/json.cpp.o.d"
  "CMakeFiles/ahsw_obs.dir/trace.cpp.o"
  "CMakeFiles/ahsw_obs.dir/trace.cpp.o.d"
  "libahsw_obs.a"
  "libahsw_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahsw_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
