file(REMOVE_RECURSE
  "libahsw_obs.a"
)
