# Empty dependencies file for ahsw_dqp.
# This may be replaced when dependencies are built.
