file(REMOVE_RECURSE
  "libahsw_dqp.a"
)
