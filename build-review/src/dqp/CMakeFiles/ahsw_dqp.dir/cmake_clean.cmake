file(REMOVE_RECURSE
  "CMakeFiles/ahsw_dqp.dir/executor.cpp.o"
  "CMakeFiles/ahsw_dqp.dir/executor.cpp.o.d"
  "CMakeFiles/ahsw_dqp.dir/physical_plan.cpp.o"
  "CMakeFiles/ahsw_dqp.dir/physical_plan.cpp.o.d"
  "CMakeFiles/ahsw_dqp.dir/processor.cpp.o"
  "CMakeFiles/ahsw_dqp.dir/processor.cpp.o.d"
  "libahsw_dqp.a"
  "libahsw_dqp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahsw_dqp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
