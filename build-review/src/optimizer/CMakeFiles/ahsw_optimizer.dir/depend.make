# Empty dependencies file for ahsw_optimizer.
# This may be replaced when dependencies are built.
