file(REMOVE_RECURSE
  "CMakeFiles/ahsw_optimizer.dir/planner.cpp.o"
  "CMakeFiles/ahsw_optimizer.dir/planner.cpp.o.d"
  "CMakeFiles/ahsw_optimizer.dir/rewriter.cpp.o"
  "CMakeFiles/ahsw_optimizer.dir/rewriter.cpp.o.d"
  "libahsw_optimizer.a"
  "libahsw_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahsw_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
