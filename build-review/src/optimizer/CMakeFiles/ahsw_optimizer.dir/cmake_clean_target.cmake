file(REMOVE_RECURSE
  "libahsw_optimizer.a"
)
