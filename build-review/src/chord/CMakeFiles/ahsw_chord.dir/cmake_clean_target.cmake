file(REMOVE_RECURSE
  "libahsw_chord.a"
)
