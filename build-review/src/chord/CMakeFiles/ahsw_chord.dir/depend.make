# Empty dependencies file for ahsw_chord.
# This may be replaced when dependencies are built.
