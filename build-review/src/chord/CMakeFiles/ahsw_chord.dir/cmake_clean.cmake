file(REMOVE_RECURSE
  "CMakeFiles/ahsw_chord.dir/ring.cpp.o"
  "CMakeFiles/ahsw_chord.dir/ring.cpp.o.d"
  "libahsw_chord.a"
  "libahsw_chord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahsw_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
