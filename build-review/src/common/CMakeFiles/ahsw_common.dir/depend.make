# Empty dependencies file for ahsw_common.
# This may be replaced when dependencies are built.
