file(REMOVE_RECURSE
  "libahsw_common.a"
)
