file(REMOVE_RECURSE
  "CMakeFiles/ahsw_common.dir/hash.cpp.o"
  "CMakeFiles/ahsw_common.dir/hash.cpp.o.d"
  "CMakeFiles/ahsw_common.dir/rng.cpp.o"
  "CMakeFiles/ahsw_common.dir/rng.cpp.o.d"
  "CMakeFiles/ahsw_common.dir/strings.cpp.o"
  "CMakeFiles/ahsw_common.dir/strings.cpp.o.d"
  "libahsw_common.a"
  "libahsw_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahsw_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
