# Empty dependencies file for ahsw_lint.
# This may be replaced when dependencies are built.
