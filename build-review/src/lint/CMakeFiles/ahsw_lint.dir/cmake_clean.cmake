file(REMOVE_RECURSE
  "CMakeFiles/ahsw_lint.dir/engine.cpp.o"
  "CMakeFiles/ahsw_lint.dir/engine.cpp.o.d"
  "CMakeFiles/ahsw_lint.dir/rules.cpp.o"
  "CMakeFiles/ahsw_lint.dir/rules.cpp.o.d"
  "CMakeFiles/ahsw_lint.dir/source.cpp.o"
  "CMakeFiles/ahsw_lint.dir/source.cpp.o.d"
  "libahsw_lint.a"
  "libahsw_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahsw_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
