file(REMOVE_RECURSE
  "libahsw_lint.a"
)
