file(REMOVE_RECURSE
  "libahsw_workload.a"
)
