# Empty dependencies file for ahsw_workload.
# This may be replaced when dependencies are built.
