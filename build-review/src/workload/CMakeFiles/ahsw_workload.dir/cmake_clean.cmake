file(REMOVE_RECURSE
  "CMakeFiles/ahsw_workload.dir/generators.cpp.o"
  "CMakeFiles/ahsw_workload.dir/generators.cpp.o.d"
  "CMakeFiles/ahsw_workload.dir/queries.cpp.o"
  "CMakeFiles/ahsw_workload.dir/queries.cpp.o.d"
  "CMakeFiles/ahsw_workload.dir/testbed.cpp.o"
  "CMakeFiles/ahsw_workload.dir/testbed.cpp.o.d"
  "libahsw_workload.a"
  "libahsw_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahsw_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
