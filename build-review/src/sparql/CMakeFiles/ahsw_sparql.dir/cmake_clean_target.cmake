file(REMOVE_RECURSE
  "libahsw_sparql.a"
)
