file(REMOVE_RECURSE
  "CMakeFiles/ahsw_sparql.dir/algebra.cpp.o"
  "CMakeFiles/ahsw_sparql.dir/algebra.cpp.o.d"
  "CMakeFiles/ahsw_sparql.dir/eval.cpp.o"
  "CMakeFiles/ahsw_sparql.dir/eval.cpp.o.d"
  "CMakeFiles/ahsw_sparql.dir/expr.cpp.o"
  "CMakeFiles/ahsw_sparql.dir/expr.cpp.o.d"
  "CMakeFiles/ahsw_sparql.dir/format.cpp.o"
  "CMakeFiles/ahsw_sparql.dir/format.cpp.o.d"
  "CMakeFiles/ahsw_sparql.dir/lexer.cpp.o"
  "CMakeFiles/ahsw_sparql.dir/lexer.cpp.o.d"
  "CMakeFiles/ahsw_sparql.dir/parser.cpp.o"
  "CMakeFiles/ahsw_sparql.dir/parser.cpp.o.d"
  "CMakeFiles/ahsw_sparql.dir/solution.cpp.o"
  "CMakeFiles/ahsw_sparql.dir/solution.cpp.o.d"
  "libahsw_sparql.a"
  "libahsw_sparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahsw_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
