# Empty dependencies file for ahsw_sparql.
# This may be replaced when dependencies are built.
