
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparql/algebra.cpp" "src/sparql/CMakeFiles/ahsw_sparql.dir/algebra.cpp.o" "gcc" "src/sparql/CMakeFiles/ahsw_sparql.dir/algebra.cpp.o.d"
  "/root/repo/src/sparql/eval.cpp" "src/sparql/CMakeFiles/ahsw_sparql.dir/eval.cpp.o" "gcc" "src/sparql/CMakeFiles/ahsw_sparql.dir/eval.cpp.o.d"
  "/root/repo/src/sparql/expr.cpp" "src/sparql/CMakeFiles/ahsw_sparql.dir/expr.cpp.o" "gcc" "src/sparql/CMakeFiles/ahsw_sparql.dir/expr.cpp.o.d"
  "/root/repo/src/sparql/format.cpp" "src/sparql/CMakeFiles/ahsw_sparql.dir/format.cpp.o" "gcc" "src/sparql/CMakeFiles/ahsw_sparql.dir/format.cpp.o.d"
  "/root/repo/src/sparql/lexer.cpp" "src/sparql/CMakeFiles/ahsw_sparql.dir/lexer.cpp.o" "gcc" "src/sparql/CMakeFiles/ahsw_sparql.dir/lexer.cpp.o.d"
  "/root/repo/src/sparql/parser.cpp" "src/sparql/CMakeFiles/ahsw_sparql.dir/parser.cpp.o" "gcc" "src/sparql/CMakeFiles/ahsw_sparql.dir/parser.cpp.o.d"
  "/root/repo/src/sparql/solution.cpp" "src/sparql/CMakeFiles/ahsw_sparql.dir/solution.cpp.o" "gcc" "src/sparql/CMakeFiles/ahsw_sparql.dir/solution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/rdf/CMakeFiles/ahsw_rdf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/ahsw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
