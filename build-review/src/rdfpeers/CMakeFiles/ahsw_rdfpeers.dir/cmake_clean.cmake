file(REMOVE_RECURSE
  "CMakeFiles/ahsw_rdfpeers.dir/repository.cpp.o"
  "CMakeFiles/ahsw_rdfpeers.dir/repository.cpp.o.d"
  "libahsw_rdfpeers.a"
  "libahsw_rdfpeers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahsw_rdfpeers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
