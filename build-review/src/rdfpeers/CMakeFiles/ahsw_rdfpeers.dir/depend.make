# Empty dependencies file for ahsw_rdfpeers.
# This may be replaced when dependencies are built.
