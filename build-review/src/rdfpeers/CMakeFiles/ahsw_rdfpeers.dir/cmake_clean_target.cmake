file(REMOVE_RECURSE
  "libahsw_rdfpeers.a"
)
