
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdf/dictionary.cpp" "src/rdf/CMakeFiles/ahsw_rdf.dir/dictionary.cpp.o" "gcc" "src/rdf/CMakeFiles/ahsw_rdf.dir/dictionary.cpp.o.d"
  "/root/repo/src/rdf/ntriples.cpp" "src/rdf/CMakeFiles/ahsw_rdf.dir/ntriples.cpp.o" "gcc" "src/rdf/CMakeFiles/ahsw_rdf.dir/ntriples.cpp.o.d"
  "/root/repo/src/rdf/store.cpp" "src/rdf/CMakeFiles/ahsw_rdf.dir/store.cpp.o" "gcc" "src/rdf/CMakeFiles/ahsw_rdf.dir/store.cpp.o.d"
  "/root/repo/src/rdf/term.cpp" "src/rdf/CMakeFiles/ahsw_rdf.dir/term.cpp.o" "gcc" "src/rdf/CMakeFiles/ahsw_rdf.dir/term.cpp.o.d"
  "/root/repo/src/rdf/triple.cpp" "src/rdf/CMakeFiles/ahsw_rdf.dir/triple.cpp.o" "gcc" "src/rdf/CMakeFiles/ahsw_rdf.dir/triple.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/ahsw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
