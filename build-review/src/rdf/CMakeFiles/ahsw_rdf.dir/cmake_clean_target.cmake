file(REMOVE_RECURSE
  "libahsw_rdf.a"
)
