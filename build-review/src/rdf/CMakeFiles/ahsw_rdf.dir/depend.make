# Empty dependencies file for ahsw_rdf.
# This may be replaced when dependencies are built.
