file(REMOVE_RECURSE
  "CMakeFiles/ahsw_rdf.dir/dictionary.cpp.o"
  "CMakeFiles/ahsw_rdf.dir/dictionary.cpp.o.d"
  "CMakeFiles/ahsw_rdf.dir/ntriples.cpp.o"
  "CMakeFiles/ahsw_rdf.dir/ntriples.cpp.o.d"
  "CMakeFiles/ahsw_rdf.dir/store.cpp.o"
  "CMakeFiles/ahsw_rdf.dir/store.cpp.o.d"
  "CMakeFiles/ahsw_rdf.dir/term.cpp.o"
  "CMakeFiles/ahsw_rdf.dir/term.cpp.o.d"
  "CMakeFiles/ahsw_rdf.dir/triple.cpp.o"
  "CMakeFiles/ahsw_rdf.dir/triple.cpp.o.d"
  "libahsw_rdf.a"
  "libahsw_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahsw_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
