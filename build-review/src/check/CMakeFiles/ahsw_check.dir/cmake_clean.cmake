file(REMOVE_RECURSE
  "CMakeFiles/ahsw_check.dir/audit.cpp.o"
  "CMakeFiles/ahsw_check.dir/audit.cpp.o.d"
  "libahsw_check.a"
  "libahsw_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahsw_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
