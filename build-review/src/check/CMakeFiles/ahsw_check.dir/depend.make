# Empty dependencies file for ahsw_check.
# This may be replaced when dependencies are built.
