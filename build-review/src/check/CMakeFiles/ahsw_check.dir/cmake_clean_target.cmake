file(REMOVE_RECURSE
  "libahsw_check.a"
)
