file(REMOVE_RECURSE
  "libahsw_overlay.a"
)
