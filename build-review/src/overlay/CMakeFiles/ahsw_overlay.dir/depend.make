# Empty dependencies file for ahsw_overlay.
# This may be replaced when dependencies are built.
