file(REMOVE_RECURSE
  "CMakeFiles/ahsw_overlay.dir/keys.cpp.o"
  "CMakeFiles/ahsw_overlay.dir/keys.cpp.o.d"
  "CMakeFiles/ahsw_overlay.dir/location_table.cpp.o"
  "CMakeFiles/ahsw_overlay.dir/location_table.cpp.o.d"
  "CMakeFiles/ahsw_overlay.dir/overlay.cpp.o"
  "CMakeFiles/ahsw_overlay.dir/overlay.cpp.o.d"
  "libahsw_overlay.a"
  "libahsw_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahsw_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
