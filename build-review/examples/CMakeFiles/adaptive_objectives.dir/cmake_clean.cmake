file(REMOVE_RECURSE
  "CMakeFiles/adaptive_objectives.dir/adaptive_objectives.cpp.o"
  "CMakeFiles/adaptive_objectives.dir/adaptive_objectives.cpp.o.d"
  "adaptive_objectives"
  "adaptive_objectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_objectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
