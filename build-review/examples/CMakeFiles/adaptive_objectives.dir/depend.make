# Empty dependencies file for adaptive_objectives.
# This may be replaced when dependencies are built.
