# Empty dependencies file for sensor_sharing.
# This may be replaced when dependencies are built.
