file(REMOVE_RECURSE
  "CMakeFiles/sensor_sharing.dir/sensor_sharing.cpp.o"
  "CMakeFiles/sensor_sharing.dir/sensor_sharing.cpp.o.d"
  "sensor_sharing"
  "sensor_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
