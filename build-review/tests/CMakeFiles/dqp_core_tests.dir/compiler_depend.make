# Empty compiler generated dependencies file for dqp_core_tests.
# This may be replaced when dependencies are built.
