file(REMOVE_RECURSE
  "CMakeFiles/dqp_core_tests.dir/dqp/conjunction_test.cpp.o"
  "CMakeFiles/dqp_core_tests.dir/dqp/conjunction_test.cpp.o.d"
  "CMakeFiles/dqp_core_tests.dir/dqp/optional_union_filter_test.cpp.o"
  "CMakeFiles/dqp_core_tests.dir/dqp/optional_union_filter_test.cpp.o.d"
  "CMakeFiles/dqp_core_tests.dir/dqp/workflow_test.cpp.o"
  "CMakeFiles/dqp_core_tests.dir/dqp/workflow_test.cpp.o.d"
  "dqp_core_tests"
  "dqp_core_tests.pdb"
  "dqp_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqp_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
