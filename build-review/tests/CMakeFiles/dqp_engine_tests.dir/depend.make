# Empty dependencies file for dqp_engine_tests.
# This may be replaced when dependencies are built.
