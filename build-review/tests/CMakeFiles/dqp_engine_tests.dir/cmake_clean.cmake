file(REMOVE_RECURSE
  "CMakeFiles/dqp_engine_tests.dir/dqp/batch_test.cpp.o"
  "CMakeFiles/dqp_engine_tests.dir/dqp/batch_test.cpp.o.d"
  "CMakeFiles/dqp_engine_tests.dir/dqp/dag_equivalence_test.cpp.o"
  "CMakeFiles/dqp_engine_tests.dir/dqp/dag_equivalence_test.cpp.o.d"
  "CMakeFiles/dqp_engine_tests.dir/dqp/explain_golden_test.cpp.o"
  "CMakeFiles/dqp_engine_tests.dir/dqp/explain_golden_test.cpp.o.d"
  "CMakeFiles/dqp_engine_tests.dir/dqp/site_policy_dag_test.cpp.o"
  "CMakeFiles/dqp_engine_tests.dir/dqp/site_policy_dag_test.cpp.o.d"
  "dqp_engine_tests"
  "dqp_engine_tests.pdb"
  "dqp_engine_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqp_engine_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
