file(REMOVE_RECURSE
  "CMakeFiles/dqp_primitive_tests.dir/dqp/primitive_test.cpp.o"
  "CMakeFiles/dqp_primitive_tests.dir/dqp/primitive_test.cpp.o.d"
  "dqp_primitive_tests"
  "dqp_primitive_tests.pdb"
  "dqp_primitive_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqp_primitive_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
