# Empty compiler generated dependencies file for dqp_primitive_tests.
# This may be replaced when dependencies are built.
