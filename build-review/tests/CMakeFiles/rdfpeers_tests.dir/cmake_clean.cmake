file(REMOVE_RECURSE
  "CMakeFiles/rdfpeers_tests.dir/rdfpeers/repository_test.cpp.o"
  "CMakeFiles/rdfpeers_tests.dir/rdfpeers/repository_test.cpp.o.d"
  "rdfpeers_tests"
  "rdfpeers_tests.pdb"
  "rdfpeers_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfpeers_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
