# Empty dependencies file for rdfpeers_tests.
# This may be replaced when dependencies are built.
