file(REMOVE_RECURSE
  "CMakeFiles/lint_tests.dir/lint/lint_engine_test.cpp.o"
  "CMakeFiles/lint_tests.dir/lint/lint_engine_test.cpp.o.d"
  "CMakeFiles/lint_tests.dir/lint/lint_rules_test.cpp.o"
  "CMakeFiles/lint_tests.dir/lint/lint_rules_test.cpp.o.d"
  "CMakeFiles/lint_tests.dir/lint/tokenizer_test.cpp.o"
  "CMakeFiles/lint_tests.dir/lint/tokenizer_test.cpp.o.d"
  "lint_tests"
  "lint_tests.pdb"
  "lint_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lint_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
