file(REMOVE_RECURSE
  "CMakeFiles/chord_tests.dir/chord/churn_stress_test.cpp.o"
  "CMakeFiles/chord_tests.dir/chord/churn_stress_test.cpp.o.d"
  "CMakeFiles/chord_tests.dir/chord/interval_test.cpp.o"
  "CMakeFiles/chord_tests.dir/chord/interval_test.cpp.o.d"
  "CMakeFiles/chord_tests.dir/chord/ring_test.cpp.o"
  "CMakeFiles/chord_tests.dir/chord/ring_test.cpp.o.d"
  "chord_tests"
  "chord_tests.pdb"
  "chord_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chord_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
