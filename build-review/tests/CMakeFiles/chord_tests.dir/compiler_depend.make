# Empty compiler generated dependencies file for chord_tests.
# This may be replaced when dependencies are built.
