file(REMOVE_RECURSE
  "CMakeFiles/optimizer_tests.dir/optimizer/planner_test.cpp.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/planner_test.cpp.o.d"
  "CMakeFiles/optimizer_tests.dir/optimizer/rewriter_test.cpp.o"
  "CMakeFiles/optimizer_tests.dir/optimizer/rewriter_test.cpp.o.d"
  "optimizer_tests"
  "optimizer_tests.pdb"
  "optimizer_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
