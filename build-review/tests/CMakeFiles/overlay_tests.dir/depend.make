# Empty dependencies file for overlay_tests.
# This may be replaced when dependencies are built.
