file(REMOVE_RECURSE
  "CMakeFiles/overlay_tests.dir/overlay/keys_test.cpp.o"
  "CMakeFiles/overlay_tests.dir/overlay/keys_test.cpp.o.d"
  "CMakeFiles/overlay_tests.dir/overlay/location_table_test.cpp.o"
  "CMakeFiles/overlay_tests.dir/overlay/location_table_test.cpp.o.d"
  "CMakeFiles/overlay_tests.dir/overlay/overlay_test.cpp.o"
  "CMakeFiles/overlay_tests.dir/overlay/overlay_test.cpp.o.d"
  "CMakeFiles/overlay_tests.dir/overlay/pair_keys_ablation_test.cpp.o"
  "CMakeFiles/overlay_tests.dir/overlay/pair_keys_ablation_test.cpp.o.d"
  "CMakeFiles/overlay_tests.dir/overlay/paper_topology_test.cpp.o"
  "CMakeFiles/overlay_tests.dir/overlay/paper_topology_test.cpp.o.d"
  "overlay_tests"
  "overlay_tests.pdb"
  "overlay_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
