file(REMOVE_RECURSE
  "CMakeFiles/rdf_tests.dir/rdf/dictionary_test.cpp.o"
  "CMakeFiles/rdf_tests.dir/rdf/dictionary_test.cpp.o.d"
  "CMakeFiles/rdf_tests.dir/rdf/ntriples_test.cpp.o"
  "CMakeFiles/rdf_tests.dir/rdf/ntriples_test.cpp.o.d"
  "CMakeFiles/rdf_tests.dir/rdf/store_test.cpp.o"
  "CMakeFiles/rdf_tests.dir/rdf/store_test.cpp.o.d"
  "CMakeFiles/rdf_tests.dir/rdf/term_test.cpp.o"
  "CMakeFiles/rdf_tests.dir/rdf/term_test.cpp.o.d"
  "CMakeFiles/rdf_tests.dir/rdf/triple_test.cpp.o"
  "CMakeFiles/rdf_tests.dir/rdf/triple_test.cpp.o.d"
  "rdf_tests"
  "rdf_tests.pdb"
  "rdf_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
