# Empty compiler generated dependencies file for rdf_tests.
# This may be replaced when dependencies are built.
