# Empty compiler generated dependencies file for sparql_tests.
# This may be replaced when dependencies are built.
