file(REMOVE_RECURSE
  "CMakeFiles/sparql_tests.dir/sparql/algebra_test.cpp.o"
  "CMakeFiles/sparql_tests.dir/sparql/algebra_test.cpp.o.d"
  "CMakeFiles/sparql_tests.dir/sparql/eval_test.cpp.o"
  "CMakeFiles/sparql_tests.dir/sparql/eval_test.cpp.o.d"
  "CMakeFiles/sparql_tests.dir/sparql/expr_test.cpp.o"
  "CMakeFiles/sparql_tests.dir/sparql/expr_test.cpp.o.d"
  "CMakeFiles/sparql_tests.dir/sparql/format_test.cpp.o"
  "CMakeFiles/sparql_tests.dir/sparql/format_test.cpp.o.d"
  "CMakeFiles/sparql_tests.dir/sparql/lexer_test.cpp.o"
  "CMakeFiles/sparql_tests.dir/sparql/lexer_test.cpp.o.d"
  "CMakeFiles/sparql_tests.dir/sparql/modifier_test.cpp.o"
  "CMakeFiles/sparql_tests.dir/sparql/modifier_test.cpp.o.d"
  "CMakeFiles/sparql_tests.dir/sparql/parser_test.cpp.o"
  "CMakeFiles/sparql_tests.dir/sparql/parser_test.cpp.o.d"
  "CMakeFiles/sparql_tests.dir/sparql/solution_test.cpp.o"
  "CMakeFiles/sparql_tests.dir/sparql/solution_test.cpp.o.d"
  "sparql_tests"
  "sparql_tests.pdb"
  "sparql_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
