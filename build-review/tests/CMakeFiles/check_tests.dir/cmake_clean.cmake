file(REMOVE_RECURSE
  "CMakeFiles/check_tests.dir/check/audit_clean_test.cpp.o"
  "CMakeFiles/check_tests.dir/check/audit_clean_test.cpp.o.d"
  "CMakeFiles/check_tests.dir/check/audit_corruption_test.cpp.o"
  "CMakeFiles/check_tests.dir/check/audit_corruption_test.cpp.o.d"
  "check_tests"
  "check_tests.pdb"
  "check_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
