# Empty dependencies file for check_tests.
# This may be replaced when dependencies are built.
