# Empty compiler generated dependencies file for dqp_robustness_tests.
# This may be replaced when dependencies are built.
