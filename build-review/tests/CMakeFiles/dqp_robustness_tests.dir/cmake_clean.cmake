file(REMOVE_RECURSE
  "CMakeFiles/dqp_robustness_tests.dir/dqp/adaptive_test.cpp.o"
  "CMakeFiles/dqp_robustness_tests.dir/dqp/adaptive_test.cpp.o.d"
  "CMakeFiles/dqp_robustness_tests.dir/dqp/churn_test.cpp.o"
  "CMakeFiles/dqp_robustness_tests.dir/dqp/churn_test.cpp.o.d"
  "CMakeFiles/dqp_robustness_tests.dir/dqp/equivalence_test.cpp.o"
  "CMakeFiles/dqp_robustness_tests.dir/dqp/equivalence_test.cpp.o.d"
  "CMakeFiles/dqp_robustness_tests.dir/dqp/random_nested_test.cpp.o"
  "CMakeFiles/dqp_robustness_tests.dir/dqp/random_nested_test.cpp.o.d"
  "CMakeFiles/dqp_robustness_tests.dir/dqp/system_stress_test.cpp.o"
  "CMakeFiles/dqp_robustness_tests.dir/dqp/system_stress_test.cpp.o.d"
  "dqp_robustness_tests"
  "dqp_robustness_tests.pdb"
  "dqp_robustness_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqp_robustness_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
