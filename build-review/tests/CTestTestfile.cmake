# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/common_tests[1]_include.cmake")
include("/root/repo/build-review/tests/rdf_tests[1]_include.cmake")
include("/root/repo/build-review/tests/sparql_tests[1]_include.cmake")
include("/root/repo/build-review/tests/net_tests[1]_include.cmake")
include("/root/repo/build-review/tests/obs_tests[1]_include.cmake")
include("/root/repo/build-review/tests/chord_tests[1]_include.cmake")
include("/root/repo/build-review/tests/overlay_tests[1]_include.cmake")
include("/root/repo/build-review/tests/optimizer_tests[1]_include.cmake")
include("/root/repo/build-review/tests/dqp_primitive_tests[1]_include.cmake")
include("/root/repo/build-review/tests/dqp_core_tests[1]_include.cmake")
include("/root/repo/build-review/tests/dqp_engine_tests[1]_include.cmake")
include("/root/repo/build-review/tests/dqp_robustness_tests[1]_include.cmake")
include("/root/repo/build-review/tests/workload_tests[1]_include.cmake")
include("/root/repo/build-review/tests/check_tests[1]_include.cmake")
include("/root/repo/build-review/tests/rdfpeers_tests[1]_include.cmake")
include("/root/repo/build-review/tests/lint_tests[1]_include.cmake")
