# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-review/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(lint.self "/root/repo/build-review/tools/ahsw_lint" "--root" "/root/repo")
set_tests_properties(lint.self PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
