file(REMOVE_RECURSE
  "CMakeFiles/ahsw_lint_tool.dir/ahsw_lint.cpp.o"
  "CMakeFiles/ahsw_lint_tool.dir/ahsw_lint.cpp.o.d"
  "ahsw_lint"
  "ahsw_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahsw_lint_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
