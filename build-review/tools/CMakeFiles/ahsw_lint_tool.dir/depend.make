# Empty dependencies file for ahsw_lint_tool.
# This may be replaced when dependencies are built.
