# Empty compiler generated dependencies file for ahsw_shell.
# This may be replaced when dependencies are built.
