
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/ahsw_shell.cpp" "tools/CMakeFiles/ahsw_shell.dir/ahsw_shell.cpp.o" "gcc" "tools/CMakeFiles/ahsw_shell.dir/ahsw_shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/check/CMakeFiles/ahsw_check.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dqp/CMakeFiles/ahsw_dqp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/ahsw_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rdfpeers/CMakeFiles/ahsw_rdfpeers.dir/DependInfo.cmake"
  "/root/repo/build-review/src/optimizer/CMakeFiles/ahsw_optimizer.dir/DependInfo.cmake"
  "/root/repo/build-review/src/overlay/CMakeFiles/ahsw_overlay.dir/DependInfo.cmake"
  "/root/repo/build-review/src/chord/CMakeFiles/ahsw_chord.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/ahsw_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/ahsw_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sparql/CMakeFiles/ahsw_sparql.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rdf/CMakeFiles/ahsw_rdf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lint/CMakeFiles/ahsw_lint.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/ahsw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
