file(REMOVE_RECURSE
  "CMakeFiles/ahsw_shell.dir/ahsw_shell.cpp.o"
  "CMakeFiles/ahsw_shell.dir/ahsw_shell.cpp.o.d"
  "ahsw_shell"
  "ahsw_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahsw_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
