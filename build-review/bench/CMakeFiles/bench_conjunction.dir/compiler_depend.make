# Empty compiler generated dependencies file for bench_conjunction.
# This may be replaced when dependencies are built.
