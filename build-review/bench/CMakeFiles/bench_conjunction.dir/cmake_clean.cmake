file(REMOVE_RECURSE
  "CMakeFiles/bench_conjunction.dir/bench_conjunction.cpp.o"
  "CMakeFiles/bench_conjunction.dir/bench_conjunction.cpp.o.d"
  "CMakeFiles/bench_conjunction.dir/bench_main.cpp.o"
  "CMakeFiles/bench_conjunction.dir/bench_main.cpp.o.d"
  "bench_conjunction"
  "bench_conjunction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conjunction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
