file(REMOVE_RECURSE
  "CMakeFiles/bench_chord_lookup.dir/bench_chord_lookup.cpp.o"
  "CMakeFiles/bench_chord_lookup.dir/bench_chord_lookup.cpp.o.d"
  "CMakeFiles/bench_chord_lookup.dir/bench_main.cpp.o"
  "CMakeFiles/bench_chord_lookup.dir/bench_main.cpp.o.d"
  "bench_chord_lookup"
  "bench_chord_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chord_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
