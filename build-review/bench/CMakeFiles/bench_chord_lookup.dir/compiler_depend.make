# Empty compiler generated dependencies file for bench_chord_lookup.
# This may be replaced when dependencies are built.
