file(REMOVE_RECURSE
  "CMakeFiles/bench_index_ablation.dir/bench_index_ablation.cpp.o"
  "CMakeFiles/bench_index_ablation.dir/bench_index_ablation.cpp.o.d"
  "CMakeFiles/bench_index_ablation.dir/bench_main.cpp.o"
  "CMakeFiles/bench_index_ablation.dir/bench_main.cpp.o.d"
  "bench_index_ablation"
  "bench_index_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
