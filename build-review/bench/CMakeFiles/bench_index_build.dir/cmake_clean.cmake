file(REMOVE_RECURSE
  "CMakeFiles/bench_index_build.dir/bench_index_build.cpp.o"
  "CMakeFiles/bench_index_build.dir/bench_index_build.cpp.o.d"
  "CMakeFiles/bench_index_build.dir/bench_main.cpp.o"
  "CMakeFiles/bench_index_build.dir/bench_main.cpp.o.d"
  "bench_index_build"
  "bench_index_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
