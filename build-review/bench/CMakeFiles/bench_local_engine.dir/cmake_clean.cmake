file(REMOVE_RECURSE
  "CMakeFiles/bench_local_engine.dir/bench_local_engine.cpp.o"
  "CMakeFiles/bench_local_engine.dir/bench_local_engine.cpp.o.d"
  "CMakeFiles/bench_local_engine.dir/bench_main.cpp.o"
  "CMakeFiles/bench_local_engine.dir/bench_main.cpp.o.d"
  "bench_local_engine"
  "bench_local_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
