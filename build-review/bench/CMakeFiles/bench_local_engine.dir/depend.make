# Empty dependencies file for bench_local_engine.
# This may be replaced when dependencies are built.
