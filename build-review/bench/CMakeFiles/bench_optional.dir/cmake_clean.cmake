file(REMOVE_RECURSE
  "CMakeFiles/bench_optional.dir/bench_main.cpp.o"
  "CMakeFiles/bench_optional.dir/bench_main.cpp.o.d"
  "CMakeFiles/bench_optional.dir/bench_optional.cpp.o"
  "CMakeFiles/bench_optional.dir/bench_optional.cpp.o.d"
  "bench_optional"
  "bench_optional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
