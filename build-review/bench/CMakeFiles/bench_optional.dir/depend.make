# Empty dependencies file for bench_optional.
# This may be replaced when dependencies are built.
