file(REMOVE_RECURSE
  "CMakeFiles/bench_churn.dir/bench_churn.cpp.o"
  "CMakeFiles/bench_churn.dir/bench_churn.cpp.o.d"
  "CMakeFiles/bench_churn.dir/bench_main.cpp.o"
  "CMakeFiles/bench_churn.dir/bench_main.cpp.o.d"
  "bench_churn"
  "bench_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
