file(REMOVE_RECURSE
  "CMakeFiles/bench_primitive.dir/bench_main.cpp.o"
  "CMakeFiles/bench_primitive.dir/bench_main.cpp.o.d"
  "CMakeFiles/bench_primitive.dir/bench_primitive.cpp.o"
  "CMakeFiles/bench_primitive.dir/bench_primitive.cpp.o.d"
  "bench_primitive"
  "bench_primitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_primitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
