# Empty compiler generated dependencies file for bench_primitive.
# This may be replaced when dependencies are built.
