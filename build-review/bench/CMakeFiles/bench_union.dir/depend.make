# Empty dependencies file for bench_union.
# This may be replaced when dependencies are built.
