file(REMOVE_RECURSE
  "CMakeFiles/bench_union.dir/bench_main.cpp.o"
  "CMakeFiles/bench_union.dir/bench_main.cpp.o.d"
  "CMakeFiles/bench_union.dir/bench_union.cpp.o"
  "CMakeFiles/bench_union.dir/bench_union.cpp.o.d"
  "bench_union"
  "bench_union.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_union.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
