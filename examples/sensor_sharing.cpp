// Sensor-data sharing scenario: gateways share observation streams as RDF;
// a monitoring station runs numeric-filter queries. Demonstrates filter
// pushing (Sect. IV-G): with pushing, providers drop out-of-range readings
// locally and only the interesting rows cross the network.
//
//   $ ./sensor_sharing
#include <iostream>

#include "dqp/processor.hpp"
#include "workload/generators.hpp"
#include "workload/testbed.hpp"

int main() {
  using namespace ahsw;

  // Build a system of 4 index nodes and 6 gateways, then hand-partition a
  // sensor dataset across the gateways.
  workload::TestbedConfig cfg;
  cfg.index_nodes = 4;
  cfg.storage_nodes = 6;
  cfg.foaf.persons = 0;
  workload::Testbed bed(cfg);

  workload::SensorConfig sensors;
  sensors.sensors = 30;
  sensors.observations_per_sensor = 25;
  std::vector<rdf::Triple> data = workload::generate_sensors(sensors);
  workload::PartitionConfig part;
  part.nodes = bed.storage_addrs().size();
  auto shares = workload::partition(data, part);
  for (std::size_t i = 0; i < shares.size(); ++i) {
    bed.overlay().share_triples(bed.storage_addrs()[i], shares[i], 0);
  }
  bed.network().reset_stats();

  std::cout << "Shared " << data.size() << " observation triples across "
            << shares.size() << " gateways\n\n";

  const std::string query = R"(
    PREFIX s: <http://example.org/sensors#>
    SELECT ?obs ?sensor ?v WHERE {
      ?obs s:observedBy ?sensor .
      ?obs s:metric "temperature" .
      ?obs s:value ?v .
      FILTER(?v > 90)
    })";

  std::cout << "Query: temperature readings above 90\n\n";
  for (bool push : {false, true}) {
    dqp::ExecutionPolicy policy;
    policy.push_filters = push;
    dqp::DistributedQueryProcessor proc(bed.overlay(), policy);
    dqp::ExecutionReport rep;
    sparql::QueryResult result =
        proc.execute(query, bed.storage_addrs().front(), &rep);
    std::cout << (push ? "filter pushed " : "filter at top ") << ": "
              << rep.traffic.bytes << " B total, "
              << rep.traffic.bytes_by[static_cast<std::size_t>(
                     net::Category::kData)]
              << " B intermediate data, " << result.solutions.size()
              << " rows\n";
    if (push) {
      std::cout << "\nSample rows:\n";
      std::size_t shown = 0;
      for (const sparql::Binding& b : result.solutions.rows()) {
        if (shown++ == 5) break;
        std::cout << "  " << b.to_string() << "\n";
      }
    }
  }

  // A second query showing OPTIONAL: which sensors have a room assignment?
  const std::string optional_query = R"(
    PREFIX s: <http://example.org/sensors#>
    SELECT ?sensor ?room WHERE {
      ?obs s:observedBy ?sensor .
      OPTIONAL { ?sensor s:locatedIn ?room . }
    })";
  dqp::DistributedQueryProcessor proc(bed.overlay());
  sparql::QueryResult r =
      proc.execute(std::string(optional_query) + " LIMIT 0",
                   bed.storage_addrs().front(), nullptr);
  dqp::ExecutionReport rep;
  r = proc.execute(optional_query, bed.storage_addrs().front(), &rep);
  std::size_t with_room = 0;
  for (const sparql::Binding& b : r.solutions.rows()) {
    if (b.bound("room")) ++with_room;
  }
  std::cout << "\nOPTIONAL query: " << r.solutions.size()
            << " sensor rows, " << with_room << " with a room binding ("
            << rep.traffic.messages << " msgs)\n";
  return 0;
}
