// A guided tour of the paper, executable: reconstructs Fig. 1's topology in
// a 4-bit identifier space, the Fig. 2 / Table I two-level index, and runs
// each of the paper's example queries (Figs. 4-9), printing the algebra the
// Query Transformation stage produces and the plan decisions the Global
// Query Optimizer takes.
//
//   $ ./paper_walkthrough
#include <iostream>

#include "dqp/processor.hpp"
#include "overlay/overlay.hpp"
#include "sparql/algebra.hpp"

namespace {

constexpr const char* kPrologue =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "PREFIX ns: <http://example.org/ns#>\n";

void heading(const std::string& text) {
  std::cout << "\n=== " << text << " ===\n";
}

}  // namespace

int main() {
  using namespace ahsw;

  heading("Fig. 1 - a peer network of 9 nodes in a 4-bit identifier space");
  net::Network network;
  overlay::HybridOverlay overlay(
      network, overlay::OverlayConfig{chord::RingConfig{4, 2}, 1, 7});
  chord::Key n7 = 0, n12 = 0, n15 = 0;
  overlay.add_index_node_with_id(1);
  overlay.add_index_node_with_id(4);
  n7 = overlay.add_index_node_with_id(7);
  n12 = overlay.add_index_node_with_id(12);
  n15 = overlay.add_index_node_with_id(15);
  overlay.ring().fix_all_fingers_oracle();
  net::NodeAddress d1 = overlay.add_storage_node_attached(n7);
  net::NodeAddress d2 = overlay.add_storage_node_attached(n12);
  net::NodeAddress d3 = overlay.add_storage_node_attached(n7);
  net::NodeAddress d4 = overlay.add_storage_node_attached(n15);
  for (const auto& [id, state] : overlay.ring().nodes()) {
    std::cout << "  index node N" << id << " -> successor N"
              << state.successors.front() << "\n";
  }
  std::cout << "  storage nodes: D1=" << d1 << " D2=" << d2 << " D3=" << d3
            << " D4=" << d4 << " (addresses)\n";

  heading("Sect. III-B - publishing triples builds the two-level index");
  auto person = [](const std::string& n) {
    return rdf::Term::iri("http://example.org/people/" + n);
  };
  rdf::Term name = rdf::Term::iri("http://xmlns.com/foaf/0.1/name");
  rdf::Term knows = rdf::Term::iri("http://xmlns.com/foaf/0.1/knows");
  rdf::Term nick = rdf::Term::iri("http://xmlns.com/foaf/0.1/nick");
  rdf::Term mbox = rdf::Term::iri("http://xmlns.com/foaf/0.1/mbox");
  rdf::Term kna = rdf::Term::iri("http://example.org/ns#knowsNothingAbout");

  overlay.share_triples(
      d1,
      {{person("alice"), name, rdf::Term::literal("Alice Smith")},
       {person("alice"), knows, person("carol")},
       {person("alice"), knows, person("shrek")},
       {person("alice"), kna, person("bob")}},
      0);
  overlay.share_triples(
      d2,
      {{person("bob"), name, rdf::Term::literal("Bob Smith")},
       {person("bob"), knows, person("carol")},
       {person("bob"), kna, person("alice")},
       {person("bob"), mbox, rdf::Term::iri("mailto:abc@example.org")}},
      0);
  overlay.share_triples(
      d3,
      {{person("shrek"), nick, rdf::Term::literal("Shrek")},
       {person("dave"), name, rdf::Term::literal("Dave Jones")},
       {person("dave"), knows, person("carol")}},
      0);
  overlay.share_triples(
      d4, {{person("erin"), name, rdf::Term::literal("Erin Smith")},
           {person("erin"), knows, person("carol")}},
      0);

  for (const auto& [id, ix] : overlay.index_nodes()) {
    std::cout << "  location table of N" << id << ": " << ix.table.row_count()
              << " keys, " << ix.table.entry_count() << " entries\n";
  }

  heading("Fig. 2 - locating providers of <alice, knows, ?o>");
  overlay::HybridOverlay::Located loc = overlay.locate(
      d2, rdf::TriplePattern{person("alice"), knows, rdf::Variable{"o"}}, 0);
  std::cout << "  Hash(s,p) owned by index node N" << loc.index_node << " ("
            << loc.hops << " ring hops); providers:";
  for (const overlay::Provider& p : loc.providers) {
    std::cout << " node" << p.address << "(freq " << p.frequency << ")";
  }
  std::cout << "\n";

  dqp::DistributedQueryProcessor processor(overlay);
  auto run = [&](const std::string& title, const std::string& body) {
    heading(title);
    std::string query = std::string(kPrologue) + body;
    std::cout << "  algebra: " << processor.plan(query)->to_string() << "\n";
    dqp::ExecutionReport rep;
    sparql::QueryResult result = processor.execute(query, d2, &rep);
    std::cout << "  solutions (" << result.solutions.size() << "):\n";
    for (const sparql::Binding& b : result.solutions.rows()) {
      std::cout << "    " << b.to_string() << "\n";
    }
    std::cout << "  cost: " << rep.traffic.messages << " msgs, "
              << rep.traffic.bytes << " B, " << rep.response_time
              << " ms; providers " << rep.providers_contacted << "\n";
    for (const std::string& note : rep.plan_notes) {
      if (note.rfind("algebra:", 0) != 0) std::cout << "  note: " << note << "\n";
    }
  };

  run("Fig. 5 - primitive query",
      "SELECT ?x WHERE { ?x foaf:knows <http://example.org/people/carol> . }");

  run("Fig. 6 - conjunction graph pattern", R"(
      SELECT ?x ?y ?z WHERE {
        ?x foaf:knows ?z .
        ?x ns:knowsNothingAbout ?y .
      })");

  run("Fig. 7 - optional graph pattern", R"(
      SELECT ?x ?y WHERE {
        { ?x foaf:name "Alice Smith" .
          ?x foaf:knows ?y . }
        OPTIONAL { ?y foaf:nick "Shrek" . }
      })");

  run("Fig. 8 - union graph pattern", R"(
      SELECT ?x ?y ?z WHERE {
        { ?x foaf:name "Bob Smith" .
          ?x foaf:knows ?y . }
        UNION
        { ?x foaf:mbox <mailto:abc@example.org> .
          ?x foaf:knows ?z . }
      })");

  run("Fig. 9 - filter + optional (note the pushed filter in the algebra)",
      R"(
      SELECT ?x ?y ?z WHERE {
        ?x foaf:name ?name ;
           ns:knowsNothingAbout ?y .
        FILTER regex(?name, "Smith")
        OPTIONAL { ?y foaf:knows ?z . }
      })");

  run("Fig. 4 - the flagship query", R"(
      SELECT ?x ?y ?z WHERE {
        ?x foaf:name ?name .
        ?x foaf:knows ?z .
        ?x ns:knowsNothingAbout ?y .
        ?y foaf:knows ?z .
        FILTER regex(?name, "Smith")
      } ORDER BY DESC(?x))");

  return 0;
}
