// Social-network scenario: hundreds of people share FOAF profiles from
// their own devices; the example contrasts the paper's execution strategies
// (Basic vs Chain vs FrequencyChain, Sect. IV-C) on the same workload —
// a miniature of experiment E3 in DESIGN.md.
//
//   $ ./social_network [persons] [storage_nodes]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "dqp/processor.hpp"
#include "workload/queries.hpp"
#include "workload/testbed.hpp"

int main(int argc, char** argv) {
  using namespace ahsw;

  workload::TestbedConfig cfg;
  cfg.index_nodes = 8;
  cfg.storage_nodes = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 12;
  cfg.foaf.persons = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 300;
  cfg.foaf.popularity_skew = 1.0;
  cfg.partition.overlap = 0.2;
  workload::Testbed bed(cfg);

  std::cout << "System: " << cfg.index_nodes << " index nodes, "
            << cfg.storage_nodes << " storage nodes, "
            << bed.overlay().merged_store().size() << " triples shared\n\n";

  const std::string query = R"(
    PREFIX foaf: <http://xmlns.com/foaf/0.1/>
    PREFIX ns: <http://example.org/ns#>
    SELECT ?x ?name WHERE {
      ?x foaf:knows <http://example.org/people/p0> .
      ?x foaf:name ?name .
      FILTER regex(?name, "Smith")
    })";

  std::cout << "Query: who knows the most popular person and is called "
               "Smith?\n\n";
  std::cout << std::left << std::setw(18) << "strategy" << std::right
            << std::setw(10) << "messages" << std::setw(12) << "bytes"
            << std::setw(14) << "resp (ms)" << std::setw(10) << "rows"
            << "\n";

  for (optimizer::PrimitiveStrategy strategy :
       {optimizer::PrimitiveStrategy::kBasic,
        optimizer::PrimitiveStrategy::kChain,
        optimizer::PrimitiveStrategy::kFrequencyChain}) {
    dqp::ExecutionPolicy policy;
    policy.primitive = strategy;
    dqp::DistributedQueryProcessor proc(bed.overlay(), policy);
    dqp::ExecutionReport rep;
    sparql::QueryResult result =
        proc.execute(query, bed.storage_addrs().front(), &rep);
    std::cout << std::left << std::setw(18)
              << optimizer::primitive_strategy_name(strategy) << std::right
              << std::setw(10) << rep.traffic.messages << std::setw(12)
              << rep.traffic.bytes << std::setw(14) << std::fixed
              << std::setprecision(1) << rep.response_time << std::setw(10)
              << result.solutions.size() << "\n";
  }

  std::cout << "\nMixed workload (40 queries across all five classes):\n";
  workload::QueryMixConfig mix;
  std::vector<std::string> queries =
      workload::generate_query_mix(40, cfg.foaf, mix);
  dqp::DistributedQueryProcessor proc(bed.overlay());
  net::TrafficStats before = bed.network().stats();
  double total_time = 0;
  std::size_t total_rows = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    dqp::ExecutionReport rep;
    sparql::QueryResult r = proc.execute(
        queries[i], bed.storage_addrs()[i % bed.storage_addrs().size()],
        &rep);
    total_time += rep.response_time;
    total_rows += r.solutions.size();
  }
  net::TrafficStats delta = bed.network().stats().delta_since(before);
  std::cout << "  total messages " << delta.messages << ", bytes "
            << delta.bytes << ", mean response "
            << total_time / static_cast<double>(queries.size())
            << " ms, rows " << total_rows << "\n";
  return 0;
}
