// Quickstart: build a small ad-hoc Semantic Web data sharing system, let
// three personal devices share their RDF triples, and run distributed
// SPARQL queries from one of them.
//
//   $ ./quickstart
#include <iostream>

#include "dqp/processor.hpp"
#include "overlay/overlay.hpp"
#include "rdf/ntriples.hpp"

int main() {
  using namespace ahsw;

  // 1. A simulated network and the hybrid overlay: index nodes form a
  //    Chord ring, storage nodes (the "personal devices") attach to them.
  net::Network network;
  overlay::HybridOverlay overlay(network);
  for (int i = 0; i < 4; ++i) overlay.add_index_node();
  overlay.ring().fix_all_fingers_oracle();

  net::NodeAddress alice_pc = overlay.add_storage_node();
  net::NodeAddress bob_laptop = overlay.add_storage_node();
  net::NodeAddress carol_phone = overlay.add_storage_node();

  // 2. Each device shares its own triples; only six small (key, address,
  //    frequency) index entries per triple go to the ring — the data itself
  //    stays with its provider.
  auto share = [&](net::NodeAddress node, const char* ntriples) {
    overlay.share_triples(node, rdf::parse_ntriples(ntriples), 0);
  };
  share(alice_pc, R"(
    <http://people/alice> <http://xmlns.com/foaf/0.1/name> "Alice Smith" .
    <http://people/alice> <http://xmlns.com/foaf/0.1/knows> <http://people/bob> .
    <http://people/alice> <http://xmlns.com/foaf/0.1/knows> <http://people/carol> .
  )");
  share(bob_laptop, R"(
    <http://people/bob> <http://xmlns.com/foaf/0.1/name> "Bob Jones" .
    <http://people/bob> <http://xmlns.com/foaf/0.1/knows> <http://people/carol> .
    <http://people/bob> <http://xmlns.com/foaf/0.1/age> "27"^^<http://www.w3.org/2001/XMLSchema#integer> .
  )");
  share(carol_phone, R"(
    <http://people/carol> <http://xmlns.com/foaf/0.1/name> "Carol Smith" .
    <http://people/carol> <http://xmlns.com/foaf/0.1/nick> "cc" .
  )");

  // 3. Query from Alice's PC. The processor resolves providers through the
  //    two-level distributed index and ships sub-queries to them.
  dqp::DistributedQueryProcessor processor(overlay);
  const char* query = R"(
    PREFIX foaf: <http://xmlns.com/foaf/0.1/>
    SELECT ?who ?name WHERE {
      ?x foaf:knows ?who .
      ?who foaf:name ?name .
    } ORDER BY ?name)";

  dqp::ExecutionReport report;
  sparql::QueryResult result = processor.execute(query, alice_pc, &report);

  std::cout << "Who do people know, and what are they called?\n";
  for (const sparql::Binding& row : result.solutions.rows()) {
    std::cout << "  " << row.get("who")->to_string() << "  "
              << row.get("name")->to_string() << "\n";
  }

  std::cout << "\nExecution report:\n"
            << "  index lookups : " << report.index_lookups << "\n"
            << "  ring hops     : " << report.ring_hops << "\n"
            << "  providers     : " << report.providers_contacted << "\n"
            << "  messages      : " << report.traffic.messages << "\n"
            << "  bytes         : " << report.traffic.bytes << "\n"
            << "  response time : " << report.response_time << " ms (simulated)\n";
  return 0;
}
