// Mixed-objective query planning — the future work of the paper's Sect. V,
// implemented: the processor picks Basic or FrequencyChain per pattern from
// the location table's frequency statistics, under a configurable weighting
// of the two optimization criteria (total transmission vs response time).
//
//   $ ./adaptive_objectives
#include <iomanip>
#include <iostream>

#include "dqp/processor.hpp"
#include "workload/testbed.hpp"
#include "workload/vocab.hpp"

int main() {
  using namespace ahsw;

  // Two kinds of query targets: "club" (3 providers, heavily skewed — the
  // paper's D1/D3/D4 situation) and "mesh" (10 balanced providers).
  workload::TestbedConfig cfg;
  cfg.index_nodes = 8;
  cfg.storage_nodes = 11;
  cfg.foaf.persons = 0;
  workload::Testbed bed(cfg);

  rdf::Term knows = rdf::Term::iri(std::string(workload::foaf::kKnows));
  auto person = [](const std::string& n) {
    return rdf::Term::iri("http://example.org/people/" + n);
  };
  auto share_members = [&](std::size_t node, int count, const std::string& tag,
                           const rdf::Term& target) {
    std::vector<rdf::Triple> triples;
    for (int i = 0; i < count; ++i) {
      triples.push_back({person(tag + std::to_string(i)), knows, target});
    }
    bed.overlay().share_triples(bed.storage_addrs()[node], triples, 0);
  };
  share_members(0, 2, "c0_", person("club"));
  share_members(1, 5, "c1_", person("club"));
  share_members(2, 55, "c2_", person("club"));
  for (std::size_t n = 0; n < 10; ++n) {
    share_members(n, 9, "m" + std::to_string(n) + "_", person("mesh"));
  }
  bed.network().reset_stats();

  const std::string club_q =
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
      "SELECT ?x WHERE { ?x foaf:knows <http://example.org/people/club> . }";
  const std::string mesh_q =
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
      "SELECT ?x WHERE { ?x foaf:knows <http://example.org/people/mesh> . }";

  struct Row {
    const char* name;
    dqp::ExecutionPolicy policy;
  };
  std::vector<Row> rows;
  {
    dqp::ExecutionPolicy p;
    p.primitive = optimizer::PrimitiveStrategy::kBasic;
    rows.push_back({"fixed basic", p});
    p.primitive = optimizer::PrimitiveStrategy::kFrequencyChain;
    rows.push_back({"fixed freq-chain", p});
    dqp::ExecutionPolicy a;
    a.adaptive = true;
    a.objectives = {1.0, 0.0};
    rows.push_back({"adaptive traffic", a});
    a.objectives = {0.0, 1.0};
    rows.push_back({"adaptive latency", a});
    a.objectives = {1.0, 100.0};
    rows.push_back({"adaptive mixed", a});
  }

  net::NodeAddress initiator = bed.storage_addrs().back();
  std::cout << std::left << std::setw(18) << "policy" << std::right
            << std::setw(16) << "club bytes" << std::setw(12) << "club ms"
            << std::setw(14) << "mesh bytes" << std::setw(12) << "mesh ms"
            << "   chosen plans\n";
  for (const Row& row : rows) {
    dqp::DistributedQueryProcessor proc(bed.overlay(), row.policy);
    dqp::ExecutionReport club, mesh;
    (void)proc.execute(club_q, initiator, &club);
    (void)proc.execute(mesh_q, initiator, &mesh);
    std::string chosen;
    for (const dqp::ExecutionReport* r : {&club, &mesh}) {
      for (const std::string& note : r->plan_notes) {
        if (note.rfind("adaptive: ", 0) == 0) {
          chosen += note.substr(note.rfind("-> ") + 3) + " ";
        }
      }
    }
    std::cout << std::left << std::setw(18) << row.name << std::right
              << std::setw(16) << club.traffic.bytes << std::setw(12)
              << std::fixed << std::setprecision(1) << club.response_time
              << std::setw(14) << mesh.traffic.bytes << std::setw(12)
              << mesh.response_time << "   " << chosen << "\n";
  }
  std::cout << "\nThe adaptive planner chains the skewed 3-provider target "
               "and scatter/gathers the balanced 10-provider one — per "
               "pattern, from the same frequency statistics the location "
               "table already keeps.\n";
  return 0;
}
