#!/usr/bin/env bash
# Configure, build, and run the full test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (the `asan-ubsan` preset; Debug, so assertions
# such as the exhaustive category_name switch are live). Builds into
# build-asan/, leaving the regular build/ tree untouched.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ASAN_OPTIONS=detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
  ctest --preset asan-ubsan "$@"
