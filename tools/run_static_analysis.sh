#!/usr/bin/env bash
# Static-analysis gate: clang-tidy (profile in .clang-tidy) and cppcheck over
# src/, tools/ and bench/, then ahsw-lint (the self-hosted domain linter,
# built from src/lint/) over the same tree — token rules plus the
# whole-program effect analysis (rule family P) and the thread-role race
# analysis (rule family C) against tools/ahsw_shared_state.spec, with
# drift gates on the committed parallel-safety ledger
# (tools/ahsw_effects.json), the race ledger (tools/ahsw_races.json), and
# the rule-catalogue table embedded in docs/static_analysis.md. The dynamic counterpart of
# this gate is the invariant auditor (src/check/, AHSW_AUDIT=1); see
# docs/static_analysis.md for both halves.
#
# Exit codes: non-zero on any finding. When an external tool is not
# installed the step is skipped with a notice — unless AHSW_STATIC_STRICT=1
# (set in CI), in which case a missing tool is itself a failure. ahsw-lint
# is built from this repo, so it always runs and always gates.
set -uo pipefail
cd "$(dirname "$0")/.."

strict="${AHSW_STATIC_STRICT:-0}"
status=0

missing_tool() {
  if [ "${strict}" = "1" ]; then
    echo "error: $1 not found and AHSW_STATIC_STRICT=1" >&2
    status=1
  else
    echo "note: $1 not found; skipping (set AHSW_STATIC_STRICT=1 to fail)"
  fi
}

# Sources under analysis: the libraries, the tools that link them, and the
# bench mains (self-rolled harness, no framework macros to trip on). Tests
# stay out of scope for cppcheck/tidy — GTest macros are too noisy — but
# ahsw-lint covers bench/ regardless via its own tree walk.
mapfile -t sources < <(find src tools bench -name '*.cpp' | sort)

# Always configure: the external tools read compile_commands.json from the
# analysis build, and ahsw-lint is built inside it.
build_dir=build-analysis
cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null || exit 1

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (${#sources[@]} files) =="
  # Strict mode (CI) escalates the whole bug-prone and concurrency families
  # on top of the WarningsAsErrors set baked into .clang-tidy.
  tidy_args=()
  if [ "${strict}" = "1" ]; then
    tidy_args+=(--warnings-as-errors='bugprone-*,concurrency-*')
  fi
  if ! clang-tidy -p "${build_dir}" --quiet "${tidy_args[@]}" "${sources[@]}"; then
    status=1
  fi
else
  missing_tool clang-tidy
fi

if command -v cppcheck >/dev/null 2>&1; then
  echo "== cppcheck =="
  if ! cppcheck --project="${build_dir}/compile_commands.json" \
      --enable=warning,performance,portability \
      --suppress='*:/usr/*' \
      --inline-suppr --quiet --error-exitcode=1; then
    status=1
  fi
else
  missing_tool cppcheck
fi

echo "== ahsw-lint =="
if cmake --build "${build_dir}" --target ahsw_lint_tool -j > /dev/null; then
  # JSON diagnostics and the regenerated ledgers land next to the
  # analysis build; CI uploads them as artifacts so findings are
  # inspectable without re-running the job. --effects runs the
  # whole-program shared-state analysis (rule family P), --races the
  # thread-role race analysis (rule family C).
  if ! "${build_dir}/tools/ahsw_lint" --root . --effects --races \
      --json "${build_dir}/ahsw_lint.json" \
      --effects-json "${build_dir}/ahsw_effects.json" \
      --races-json "${build_dir}/ahsw_races.json"; then
    status=1
  fi

  echo "== parallel-safety ledger drift =="
  if ! tools/check_effects_ledger.sh "${build_dir}/ahsw_effects.json"; then
    status=1
  fi

  echo "== race ledger drift =="
  if ! tools/check_races_ledger.sh "${build_dir}/ahsw_races.json"; then
    status=1
  fi

  echo "== rule-catalogue docs drift =="
  if ! tools/check_rules_docs.sh "${build_dir}/tools/ahsw_lint"; then
    status=1
  fi
else
  echo "error: failed to build ahsw_lint_tool" >&2
  status=1
fi

exit "${status}"
