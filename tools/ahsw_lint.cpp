// ahsw-lint driver.
//
// Usage:
//   ahsw_lint [--root DIR] [--layers FILE] [--json FILE] [paths...]
//
// With no paths, lints every .cpp/.hpp under src/, tools/ and bench/ of
// the root (the CI gate configuration). Paths, when given, are
// root-relative files to lint instead. Exit codes: 0 clean, 1 diagnostics
// found, 2 usage or I/O error.
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint/engine.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--layers FILE] [--json FILE] [paths...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string layers;
  std::string json_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--layers" && i + 1 < argc) {
      layers = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }

  try {
    ahsw::lint::LintConfig cfg = ahsw::lint::load_config(root, layers);
    ahsw::lint::LintReport report =
        paths.empty() ? ahsw::lint::lint_tree(root, cfg)
                      : ahsw::lint::lint_files(root, paths, cfg);
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "ahsw-lint: cannot write " << json_path << "\n";
        return 2;
      }
      out << report.to_json();
    }
    std::cout << report.to_string();
    return report.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
