// ahsw-lint driver.
//
// Usage:
//   ahsw_lint [--root DIR] [--layers FILE] [--json FILE]
//             [--effects] [--effects-spec FILE] [--effects-json FILE]
//             [--races] [--races-json FILE]
//             [--rules] [paths...]
//
// With no paths, lints every .cpp/.hpp under src/, tools/ and bench/ of
// the root (the CI gate configuration). Paths, when given, are
// root-relative files to lint instead. `--effects` additionally runs the
// whole-program shared-state effect analysis (rule family P) against
// tools/ahsw_shared_state.spec; `--effects-json` writes the stable
// parallel-safety ledger (and implies --effects). `--races` runs the
// static race analysis (rule family C) over the same spec; `--races-json`
// writes the race ledger (and implies --races). `--rules` prints the
// rule catalogue as the markdown table docs/static_analysis.md embeds
// (tools/check_rules_docs.sh gates drift) and exits. Exit codes: 0 clean,
// 1 diagnostics found, 2 usage or I/O error.
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint/engine.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--layers FILE] [--json FILE] [--effects]"
               " [--effects-spec FILE] [--effects-json FILE] [--races]"
               " [--races-json FILE] [--rules] [paths...]\n";
  return 2;
}

void print_rules() {
  std::cout << "| Rule | Family | Enforces |\n";
  std::cout << "|------|--------|----------|\n";
  for (const ahsw::lint::RuleInfo& r : ahsw::lint::rule_catalogue()) {
    std::cout << "| " << r.id << " | " << r.family << " | " << r.summary
              << " |\n";
  }
}

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "ahsw-lint: cannot write " << path << "\n";
    return false;
  }
  out << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string layers;
  std::string json_path;
  std::string effects_spec;
  std::string effects_json;
  std::string races_json;
  bool effects = false;
  bool races = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--layers" && i + 1 < argc) {
      layers = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--effects") {
      effects = true;
    } else if (arg == "--effects-spec" && i + 1 < argc) {
      effects_spec = argv[++i];
      effects = true;
    } else if (arg == "--effects-json" && i + 1 < argc) {
      effects_json = argv[++i];
      effects = true;
    } else if (arg == "--races") {
      races = true;
    } else if (arg == "--races-json" && i + 1 < argc) {
      races_json = argv[++i];
      races = true;
    } else if (arg == "--rules") {
      print_rules();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if ((effects || races) && !paths.empty()) {
    std::cerr << "ahsw-lint: --effects/--races are whole-tree analyses and "
                 "cannot be combined with explicit paths\n";
    return 2;
  }

  try {
    ahsw::lint::LintConfig cfg = ahsw::lint::load_config(root, layers);
    ahsw::lint::LintReport report =
        paths.empty() ? ahsw::lint::lint_tree(root, cfg)
                      : ahsw::lint::lint_files(root, paths, cfg);
    if (effects || races) {
      ahsw::lint::SharedStateSpec spec =
          ahsw::lint::load_shared_state_spec(root, effects_spec);
      if (effects) {
        std::string ledger;
        ahsw::lint::lint_tree_effects(root, cfg, spec, &report, &ledger);
        if (!effects_json.empty() && !write_text(effects_json, ledger)) {
          return 2;
        }
      }
      if (races) {
        std::string ledger;
        ahsw::lint::lint_tree_races(root, cfg, spec, &report, &ledger);
        if (!races_json.empty() && !write_text(races_json, ledger)) {
          return 2;
        }
      }
    }
    if (!json_path.empty() && !write_text(json_path, report.to_json())) {
      return 2;
    }
    std::cout << report.to_string();
    return report.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
