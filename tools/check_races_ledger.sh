#!/usr/bin/env bash
# Race-ledger drift gate (rule family C, mirror of check_effects_ledger.sh).
#
# Compares a freshly generated ahsw_races.json (argument, or regenerated
# here when omitted) against the committed baseline tools/ahsw_races.json.
# The ledger is line-less and deduplicated; every site carries the resolved
# thread role (worker / master / both / none), the parallel-safety
# discipline of its covering surface, and its call path. A diff means the
# concurrency surface of the tree changed — a new cross-role touch, a role
# flip, a discipline change — and the baseline must be regenerated and
# re-reviewed:
#
#   build/tools/ahsw_lint --root . --races --races-json tools/ahsw_races.json
#
# Exit codes: 0 in sync, 1 drift, 2 usage/build error.
set -uo pipefail
cd "$(dirname "$0")/.."

baseline=tools/ahsw_races.json
fresh="${1:-}"

if [ -z "${fresh}" ]; then
  build_dir="${AHSW_BUILD_DIR:-build}"
  if [ ! -x "${build_dir}/tools/ahsw_lint" ]; then
    echo "error: ${build_dir}/tools/ahsw_lint not built (pass a ledger path or set AHSW_BUILD_DIR)" >&2
    exit 2
  fi
  fresh="$(mktemp)"
  trap 'rm -f "${fresh}"' EXIT
  # The tree may have lint findings; drift checking only needs the ledger,
  # so the lint exit code is ignored here (lint.races gates it separately).
  "${build_dir}/tools/ahsw_lint" --root . --races \
    --races-json "${fresh}" > /dev/null || true
fi

if [ ! -f "${fresh}" ]; then
  echo "error: generated ledger ${fresh} missing" >&2
  exit 2
fi

if ! diff -u "${baseline}" "${fresh}"; then
  echo "error: ${baseline} is out of date with the tree; regenerate it with" >&2
  echo "  <build>/tools/ahsw_lint --root . --races --races-json ${baseline}" >&2
  echo "and review the new or re-roled touch points." >&2
  exit 1
fi

# Both-role gate: a site resolved to role "both" must carry an explicit
# shard=/merge= discipline. Both-role is by design for exactly two shapes —
# merge=state-log surfaces the master replays, and shard= surfaces whose
# master-side uses happen in the sequential phases between worker runs. A
# both-role site with no declared discipline is a surface neither story
# covers.
hazard="$(python3 - "$baseline" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
for s in d["sites"]:
    ok = s["discipline"].startswith(("shard=", "merge="))
    if s["role"] == "both" and not ok:
        print(f'  {s["function"]} ({s["file"]}): {s["discipline"]}')
EOF
)"
if [ -n "${hazard}" ]; then
  echo "error: both-role sites without a shard=/merge= discipline in ${baseline}:" >&2
  echo "${hazard}" >&2
  echo "either cut the master path, or declare the discipline in tools/ahsw_shared_state.spec." >&2
  exit 1
fi
echo "race ledger in sync (${baseline}); all both-role sites disciplined"
