#!/usr/bin/env bash
# Check-only formatting gate: clang-format --dry-run over every C++ source,
# against the repo .clang-format. Never rewrites files. Skips with a notice
# when clang-format is missing, unless AHSW_STATIC_STRICT=1 (CI).
set -uo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  if [ "${AHSW_STATIC_STRICT:-0}" = "1" ]; then
    echo "error: clang-format not found and AHSW_STATIC_STRICT=1" >&2
    exit 1
  fi
  echo "note: clang-format not found; skipping (set AHSW_STATIC_STRICT=1 to fail)"
  exit 0
fi

# Covers every C++ source, src/lint included. The lint fixture corpus
# (tests/lint/fixtures/*.cppsnip) is intentionally-bad code and uses a
# non-C++ extension precisely so this gate ignores it.
mapfile -t sources < <(find src tests bench tools \
  \( -name '*.cpp' -o -name '*.hpp' \) | sort)
echo "== clang-format --dry-run (${#sources[@]} files) =="
clang-format --dry-run -Werror "${sources[@]}"
