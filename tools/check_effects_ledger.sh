#!/usr/bin/env bash
# Parallel-safety ledger drift gate.
#
# Compares a freshly generated ahsw_effects.json (argument, or regenerated
# here when omitted) against the committed baseline tools/ahsw_effects.json.
# The ledger is line-less and deduplicated, so a diff means the shared
# mutable surface itself changed — a new touch point, a removed one, or a
# declaration flip — and the baseline must be regenerated and re-reviewed:
#
#   build/tools/ahsw_lint --root . --effects --effects-json tools/ahsw_effects.json
#
# Exit codes: 0 in sync, 1 drift, 2 usage/build error.
set -uo pipefail
cd "$(dirname "$0")/.."

baseline=tools/ahsw_effects.json
fresh="${1:-}"

if [ -z "${fresh}" ]; then
  build_dir="${AHSW_BUILD_DIR:-build}"
  if [ ! -x "${build_dir}/tools/ahsw_lint" ]; then
    echo "error: ${build_dir}/tools/ahsw_lint not built (pass a ledger path or set AHSW_BUILD_DIR)" >&2
    exit 2
  fi
  fresh="$(mktemp)"
  trap 'rm -f "${fresh}"' EXIT
  # The tree may have lint findings; drift checking only needs the ledger,
  # so the lint exit code is ignored here (lint.self gates it separately).
  "${build_dir}/tools/ahsw_lint" --root . --effects \
    --effects-json "${fresh}" > /dev/null || true
fi

if [ ! -f "${fresh}" ]; then
  echo "error: generated ledger ${fresh} missing" >&2
  exit 2
fi

# Schema pin: v2 carries the resolved thread role per touch point (the
# vocabulary shared with tools/ahsw_races.json). A regenerated baseline at
# any other version means the tool and this gate disagree about the format.
if ! grep -q '"schema_version": 2' "${fresh}"; then
  echo "error: generated ledger is not schema_version 2 (thread roles); rebuild ahsw_lint" >&2
  exit 2
fi

if ! diff -u "${baseline}" "${fresh}"; then
  echo "error: ${baseline} is out of date with the tree; regenerate it with" >&2
  echo "  <build>/tools/ahsw_lint --root . --effects --effects-json ${baseline}" >&2
  echo "and review the new shared-state touch points." >&2
  exit 1
fi

# Sharded-or-merged gate: every dispatch-reachable sync surface must state
# its parallel-safety discipline — `shard=<how>` (workers never share the
# state) or `merge=<how>` (mutations are logged and replayed on the master
# in (time, query, task) order). A dispatch surface naming neither is a
# mutation the parallel batch driver (src/dqp/parallel.cpp) has no story
# for, so the build fails until one is chosen and annotated.
spec=tools/ahsw_shared_state.spec
unsafe="$(sed 's/#.*//' "${spec}" | awk -F: '
  $1 ~ /^surface / {
    n = split($1, w, /[ \t]+/)
    dispatch = 0; safe = 0
    for (i = 1; i <= n; i++) {
      if (w[i] == "dispatch") dispatch = 1
      if (w[i] ~ /^shard=./ || w[i] ~ /^merge=./) safe = 1
    }
    if (dispatch && !safe) print w[2]
  }')"
if [ -n "${unsafe}" ]; then
  echo "error: dispatch surfaces without a shard=/merge= discipline in ${spec}:" >&2
  echo "${unsafe}" | sed 's/^/  /' >&2
  echo "annotate each with shard=<how> or merge=<how> (see the spec header)." >&2
  exit 1
fi
echo "ledger in sync (${baseline}); all dispatch surfaces sharded or merged"
