#!/usr/bin/env bash
# Parallel-safety ledger drift gate.
#
# Compares a freshly generated ahsw_effects.json (argument, or regenerated
# here when omitted) against the committed baseline tools/ahsw_effects.json.
# The ledger is line-less and deduplicated, so a diff means the shared
# mutable surface itself changed — a new touch point, a removed one, or a
# declaration flip — and the baseline must be regenerated and re-reviewed:
#
#   build/tools/ahsw_lint --root . --effects --effects-json tools/ahsw_effects.json
#
# Exit codes: 0 in sync, 1 drift, 2 usage/build error.
set -uo pipefail
cd "$(dirname "$0")/.."

baseline=tools/ahsw_effects.json
fresh="${1:-}"

if [ -z "${fresh}" ]; then
  build_dir="${AHSW_BUILD_DIR:-build}"
  if [ ! -x "${build_dir}/tools/ahsw_lint" ]; then
    echo "error: ${build_dir}/tools/ahsw_lint not built (pass a ledger path or set AHSW_BUILD_DIR)" >&2
    exit 2
  fi
  fresh="$(mktemp)"
  trap 'rm -f "${fresh}"' EXIT
  # The tree may have lint findings; drift checking only needs the ledger,
  # so the lint exit code is ignored here (lint.self gates it separately).
  "${build_dir}/tools/ahsw_lint" --root . --effects \
    --effects-json "${fresh}" > /dev/null || true
fi

if [ ! -f "${fresh}" ]; then
  echo "error: generated ledger ${fresh} missing" >&2
  exit 2
fi

if ! diff -u "${baseline}" "${fresh}"; then
  echo "error: ${baseline} is out of date with the tree; regenerate it with" >&2
  echo "  <build>/tools/ahsw_lint --root . --effects --effects-json ${baseline}" >&2
  echo "and review the new shared-state touch points." >&2
  exit 1
fi
echo "ledger in sync (${baseline})"
