#!/usr/bin/env bash
# Wire-byte regression gate for the throughput sweep.
#
# Compares a freshly emitted BENCH_throughput.json (argument, or
# build/BENCH_throughput.json by default) against the committed baseline at
# the repo root. For every record present in both series the data and
# result category bytes — the two solution-set-bearing categories, i.e.
# the traffic the wire codec compresses — must not exceed the baseline by
# more than the tolerance (default 1%, override with AHSW_BENCH_TOLERANCE).
# A regression here means payloads grew or something started charging raw
# sizes again; re-baselining requires a deliberate commit of the new JSON.
#
# Exit codes: 0 within tolerance, 1 regression, 2 usage error.
set -uo pipefail
cd "$(dirname "$0")/.."

baseline=BENCH_throughput.json
fresh="${1:-${AHSW_BUILD_DIR:-build}/BENCH_throughput.json}"

if [ ! -f "${baseline}" ]; then
  echo "error: committed baseline ${baseline} missing" >&2
  exit 2
fi
if [ ! -f "${fresh}" ]; then
  echo "error: fresh series ${fresh} missing (run bench_throughput first," >&2
  echo "or pass the JSON path as the first argument)" >&2
  exit 2
fi

python3 - "${baseline}" "${fresh}" <<'PY'
import json
import os
import sys

tolerance = float(os.environ.get("AHSW_BENCH_TOLERANCE", "0.01"))

def payload_bytes(record):
    by = record.get("traffic_by_category", {})
    return {cat: by.get(cat, {}).get("bytes", 0) for cat in ("data", "result")}

def load(path):
    with open(path) as f:
        series = json.load(f)
    return {r["bench"]: payload_bytes(r) for r in series.get("records", [])}

base = load(sys.argv[1])
fresh = load(sys.argv[2])

shared = sorted(base.keys() & fresh.keys())
if not shared:
    print("error: no common bench records between baseline and fresh series",
          file=sys.stderr)
    sys.exit(2)

failed = False
for bench in shared:
    for cat in ("data", "result"):
        b, f = base[bench][cat], fresh[bench][cat]
        limit = b * (1.0 + tolerance)
        verdict = "ok"
        if f > limit:
            verdict = "REGRESSION"
            failed = True
        print(f"{bench:34s} {cat:6s} baseline={b:9d} fresh={f:9d} {verdict}")
for bench in sorted(fresh.keys() - base.keys()):
    print(f"{bench:34s} (new record, no baseline — commit a re-baseline)")

if failed:
    print("error: wire payload bytes regressed beyond "
          f"{tolerance:.0%} of the committed baseline; if the growth is "
          "intentional, re-baseline BENCH_throughput.json in the same "
          "commit", file=sys.stderr)
    sys.exit(1)
print("wire payload bytes within tolerance of the committed baseline")
PY
