// ahsw_shell — an interactive driver for the simulated data sharing system.
//
// Builds a system, lets you add devices, load N-Triples data onto them, and
// run SPARQL queries from any device, printing results together with the
// execution cost report. Commands come from stdin (or a script file passed
// on the command line), so the tool doubles as an end-to-end smoke driver.
//
// Commands:
//   help                         this text
//   system <index> <storage>    (re)create a system
//   device                       add a storage device; prints its address
//   load <addr> <file.nt>        share an N-Triples file from a device
//   put <addr> <ntriples line>   share one triple
//   drop <addr> <ntriples line>  unshare one triple
//   policy basic|chain|freq|adaptive [traffic_w latency_w]
//   policy engine dag|legacy     pick the execution engine (default dag)
//   policy retry <max> [base growth relookup]   bounded retry/backoff +
//                                lazy-repair re-lookup on dead providers
//   policy cache on|off [ttl hot_threshold hot_ttl max_rows]
//                                initiator-side location-row caching
//                                (docs/caching.md); defaults 400 4 4000 64
//   policy workers <n>           parallel batch driver worker threads for
//                                `batch` (default 1 = serial). Simulated
//                                results, traces and `explain` output are
//                                byte-identical either way (per-worker span
//                                forests merge back on the master)
//   query <addr> <sparql...>     run a query (may span lines; end with ';')
//   batch <addr> <addr> ...      run N queries concurrently (one per ';'-
//                                terminated query on the following lines)
//   plan <sparql...>             compile + print the physical operator DAG
//   explain                      span tree of the last query or batch (batch
//                                roots carry q<id> labels), with costs
//   fail-storage <addr>          crash a device
//   fail-index                   crash one index node, then repair
//   inject <at> storage-fail <addr>   schedule a device crash at sim time
//   inject <at> index-fail <id>       schedule an index-node crash
//   inject <at> recover <addr>        schedule a device recovery
//   inject <at> rejoin <addr>         schedule recovery + republish
//   inject <at> repair                schedule an overlay repair round
//   inject list | clear          show / drop the pending fault schedule
//                                (the next `batch` consumes it and prints
//                                availability metrics)
//   audit [converged]            run the invariant auditor (I1-I5; with
//                                `converged`: converge first, then I1-I6)
//   lint [effects|races]         run ahsw-lint over the source tree (with
//                                `effects`: plus the shared-state effect
//                                analysis, rule family P; with `races`:
//                                plus the thread-role race analysis, C)
//   stats                        system summary
//   quit
#include <fstream>
#include <iostream>
#include <sstream>

#include "check/audit.hpp"
#include "fault/harness.hpp"
#include "lint/engine.hpp"
#include "dqp/physical_plan.hpp"
#include "dqp/processor.hpp"
#include "obs/explain.hpp"
#include "optimizer/rewriter.hpp"
#include "obs/trace.hpp"
#include "sparql/format.hpp"
#include "overlay/overlay.hpp"
#include "common/strings.hpp"
#include "rdf/ntriples.hpp"

namespace {

using namespace ahsw;

struct Shell {
  std::unique_ptr<net::Network> network;
  std::unique_ptr<overlay::HybridOverlay> overlay;
  std::unique_ptr<dqp::DistributedQueryProcessor> processor;
  dqp::ExecutionPolicy policy;
  obs::QueryTrace trace;
  bool have_query = false;
  /// Injected failures since the last settled state: the auditor's lenient
  /// severity model applies (stale drift expected, corruption never).
  bool churned = false;
  /// Traffic delta of the last query, for the I5 conservation audit.
  net::TrafficStats last_query_delta;
  /// Faults queued by `inject`; the next `batch` consumes (and clears) them.
  fault::FaultSchedule pending_faults;
  /// `policy workers <n>`: BatchOptions::workers for the next `batch`.
  int batch_workers = 1;

  void make_system(std::size_t index_nodes, std::size_t storage_nodes) {
    trace.unbind();  // the old network is about to be destroyed
    have_query = false;
    churned = false;
    pending_faults.clear();
    network = std::make_unique<net::Network>();
    overlay::OverlayConfig cfg;
    cfg.replication_factor = 2;
    overlay = std::make_unique<overlay::HybridOverlay>(*network, cfg);
    for (std::size_t i = 0; i < index_nodes; ++i) overlay->add_index_node();
    overlay->ring().fix_all_fingers_oracle();
    for (std::size_t i = 0; i < storage_nodes; ++i) {
      std::cout << "device " << overlay->add_storage_node() << "\n";
    }
    overlay->configure_caches(policy.cache);
    processor =
        std::make_unique<dqp::DistributedQueryProcessor>(*overlay, policy);
    processor->set_trace(&trace);
    std::cout << "system: " << index_nodes << " index nodes, "
              << storage_nodes << " devices\n";
  }

  bool ready() const {
    if (overlay == nullptr) {
      std::cout << "error: no system; run `system <index> <storage>`\n";
      return false;
    }
    return true;
  }

  void run_query(net::NodeAddress from, const std::string& text) {
    dqp::ExecutionReport rep;
    try {
      trace.clear();
      net::TrafficStats before = network->stats();
      sparql::QueryResult result = processor->execute(text, from, &rep);
      last_query_delta = network->stats().delta_since(before);
      have_query = true;
      std::cout << sparql::to_table(result);
      std::cout << "-- " << rep.traffic.messages << " msgs, "
                << rep.traffic.bytes << " B, " << rep.response_time
                << " ms simulated"
                << (rep.dead_providers_skipped > 0 ? " (stale providers skipped)"
                                                   : "");
      if (policy.cache.enabled) {
        std::cout << " (cache " << rep.cache.hits << " hit/" << rep.cache.misses
                  << " miss)";
      }
      std::cout << "\n";
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << "\n";
    }
  }

  void run_batch(const std::vector<net::NodeAddress>& addrs,
                 const std::vector<std::string>& queries) {
    try {
      trace.clear();
      net::TrafficStats before = network->stats();
      // Any faults queued by `inject` ride along in this batch's event
      // queue; the schedule is one-shot. run_with_faults supplies both the
      // master-bound injections and the per-worker injection factory, so
      // `policy workers <n>` parallelizes faulted batches too.
      fault::FaultSchedule schedule = pending_faults;
      pending_faults.clear();
      dqp::BatchOptions opts;
      opts.workers = batch_workers;
      std::vector<dqp::BatchQuery> batch;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        batch.push_back(
            dqp::BatchQuery{sparql::parse_query(queries[i]), addrs[i]});
      }
      fault::FaultRunResult fr =
          fault::run_with_faults(*processor, *overlay, batch, schedule, opts);
      dqp::BatchResult& r = fr.batch;
      last_query_delta = network->stats().delta_since(before);
      have_query = true;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        const dqp::ExecutionReport& rep = r.reports[i];
        std::cout << "q" << i << " @ device " << addrs[i] << ":\n"
                  << sparql::to_table(r.results[i]);
        std::cout << "-- " << rep.traffic.messages << " msgs, "
                  << rep.traffic.bytes << " B, " << rep.response_time
                  << " ms simulated\n";
      }
      std::cout << "-- batch of " << queries.size() << ": makespan "
                << r.makespan << " ms simulated\n";
      if (!r.worker_makespans.empty()) {
        std::cout << "-- parallel: " << r.worker_makespans.size()
                  << " workers, shard makespans";
        for (net::SimTime m : r.worker_makespans) std::cout << " " << m;
        std::cout << " ms simulated\n";
      }
      if (!schedule.empty()) {
        churned = true;
        const fault::AvailabilityReport& avail = fr.availability;
        std::cout << "-- faults: " << fr.injection_log.applied << " applied, "
                  << fr.injection_log.skipped << " skipped; success rate "
                  << avail.success_rate() << ", " << avail.retry_count
                  << " retries, " << avail.relookup_count
                  << " re-lookups, convergence " << avail.convergence_ms()
                  << " ms\n";
      }
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << "\n";
    }
  }

  void audit(bool converged = false) {
    if (converged) {
      // Drive the system to a settled state first; I6 then treats any
      // surviving reference to a failed device as corruption.
      fault::converge(*overlay, 0);
    }
    check::AuditOptions opt;
    opt.converged = converged;
    opt.churned = churned;
    check::AuditReport rep = check::audit(*overlay, opt);
    if (have_query) {
      // I5 over the last query or batch: its spans are still in the trace
      // (a parallel batch grafts the per-worker span forests back, so the
      // merged tree carries the same charges as a serial run).
      check::audit_conservation(trace, last_query_delta, rep, opt);
    }
    std::cout << rep.to_string() << "\n";
    if (churned && rep.stale > 0) {
      std::cout << "(stale entries are expected after injected failures; "
                   "they repair lazily)\n";
    }
  }
};

int run(std::istream& in, bool interactive) {
  Shell shell;
  std::string line;
  if (interactive) std::cout << "ahsw> " << std::flush;
  while (std::getline(in, line)) {
    std::istringstream ss(line);
    std::string cmd;
    ss >> cmd;
    try {
      if (cmd.empty() || cmd[0] == '#') {
        // comment / blank
      } else if (cmd == "help") {
        std::cout << "commands: system device load put drop policy query "
                     "batch plan explain fail-storage fail-index inject audit "
                     "lint stats quit\n";
      } else if (cmd == "system") {
        std::size_t ix = 4, st = 4;
        ss >> ix >> st;
        shell.make_system(ix, st);
      } else if (cmd == "device") {
        if (shell.ready()) {
          std::cout << "device " << shell.overlay->add_storage_node() << "\n";
        }
      } else if (cmd == "load") {
        net::NodeAddress addr = 0;
        std::string path;
        ss >> addr >> path;
        if (shell.ready()) {
          std::ifstream f(path);
          if (!f) {
            std::cout << "error: cannot open " << path << "\n";
          } else {
            std::stringstream buf;
            buf << f.rdbuf();
            std::vector<rdf::Triple> triples =
                rdf::parse_ntriples(buf.str());
            shell.overlay->share_triples(addr, triples, 0);
            std::cout << "shared " << triples.size() << " triples from "
                      << path << "\n";
          }
        }
      } else if (cmd == "put" || cmd == "drop") {
        net::NodeAddress addr = 0;
        ss >> addr;
        std::string rest;
        std::getline(ss, rest);
        if (shell.ready()) {
          rdf::Triple t = rdf::parse_ntriples_line(
              std::string(common::trim(rest)));
          if (cmd == "put") {
            shell.overlay->share_triples(addr, {t}, 0);
          } else {
            shell.overlay->unshare_triples(addr, {t}, 0);
          }
          std::cout << "ok\n";
        }
      } else if (cmd == "policy") {
        std::string kind;
        ss >> kind;
        if (kind == "engine") {
          std::string engine;
          ss >> engine;
          if (engine == "dag") {
            shell.policy.engine = dqp::ExecutionEngine::kDag;
          } else if (engine == "legacy") {
            shell.policy.engine = dqp::ExecutionEngine::kLegacy;
          } else {
            std::cout << "error: unknown engine (dag|legacy)\n";
          }
        } else if (kind == "retry") {
          int max = 0;
          ss >> max;
          shell.policy.retry.max_retries = max;
          double base = 0, growth = 0;
          int relookup = 0;
          if (ss >> base >> growth >> relookup) {
            shell.policy.retry.backoff_base_ms = base;
            shell.policy.retry.backoff_growth = growth;
            shell.policy.retry.relookup = relookup != 0;
          }
        } else if (kind == "basic") {
          shell.policy.adaptive = false;
          shell.policy.primitive = optimizer::PrimitiveStrategy::kBasic;
        } else if (kind == "chain") {
          shell.policy.adaptive = false;
          shell.policy.primitive = optimizer::PrimitiveStrategy::kChain;
        } else if (kind == "freq") {
          shell.policy.adaptive = false;
          shell.policy.primitive =
              optimizer::PrimitiveStrategy::kFrequencyChain;
        } else if (kind == "adaptive") {
          shell.policy.adaptive = true;
          double tw = 1.0, lw = 0.0;
          if (ss >> tw >> lw) {
            shell.policy.objectives = {tw, lw};
          }
        } else if (kind == "workers") {
          int n = 1;
          if (ss >> n && n >= 1) {
            shell.batch_workers = n;
          } else {
            std::cout << "error: policy workers <n>=1>\n";
          }
        } else if (kind == "cache") {
          std::string mode;
          ss >> mode;
          if (mode == "on" || mode == "off") {
            shell.policy.cache.enabled = mode == "on";
            double ttl = 0, hot_ttl = 0;
            std::uint32_t hot = 0;
            std::size_t max_rows = 0;
            if (ss >> ttl >> hot >> hot_ttl >> max_rows) {
              shell.policy.cache.ttl_ms = ttl;
              shell.policy.cache.hot_threshold = hot;
              shell.policy.cache.hot_ttl_ms = hot_ttl;
              shell.policy.cache.max_rows = max_rows;
            }
          } else {
            std::cout << "error: policy cache on|off [ttl hot hot_ttl rows]\n";
          }
        } else {
          std::cout << "error: unknown policy\n";
        }
        if (shell.overlay != nullptr) {
          shell.overlay->configure_caches(shell.policy.cache);
          shell.processor = std::make_unique<dqp::DistributedQueryProcessor>(
              *shell.overlay, shell.policy);
          shell.processor->set_trace(&shell.trace);
        }
        std::cout << "ok\n";
      } else if (cmd == "query") {
        net::NodeAddress addr = 0;
        ss >> addr;
        std::string rest;
        std::getline(ss, rest);
        // Queries may continue over multiple lines until a ';'.
        while (rest.find(';') == std::string::npos &&
               std::getline(in, line)) {
          rest += "\n" + line;
        }
        auto semi = rest.rfind(';');
        if (semi != std::string::npos) rest = rest.substr(0, semi);
        if (shell.ready()) shell.run_query(addr, rest);
      } else if (cmd == "batch") {
        std::vector<net::NodeAddress> addrs;
        net::NodeAddress a = 0;
        while (ss >> a) addrs.push_back(a);
        if (addrs.empty()) {
          std::cout << "error: batch needs at least one initiator address\n";
        } else if (shell.ready()) {
          // Collect one ';'-terminated query per initiator from the
          // following lines.
          std::vector<std::string> queries;
          std::string text;
          while (queries.size() < addrs.size() && std::getline(in, line)) {
            text += line + "\n";
            std::size_t semi = 0;
            while (queries.size() < addrs.size() &&
                   (semi = text.find(';')) != std::string::npos) {
              queries.push_back(text.substr(0, semi));
              text.erase(0, semi + 1);
            }
          }
          if (queries.size() == addrs.size()) {
            shell.run_batch(addrs, queries);
          } else {
            std::cout << "error: expected " << addrs.size()
                      << " ';'-terminated queries\n";
          }
        }
      } else if (cmd == "plan") {
        std::string rest;
        std::getline(ss, rest);
        while (rest.find(';') == std::string::npos && std::getline(in, line)) {
          rest += "\n" + line;
        }
        auto semi = rest.rfind(';');
        if (semi != std::string::npos) rest = rest.substr(0, semi);
        sparql::Query q = sparql::parse_query(rest);
        sparql::AlgebraPtr a = sparql::translate_pattern(q.where);
        if (shell.policy.push_filters) a = optimizer::push_filters(a);
        for (const std::string& l :
             dqp::compile_physical_plan(*a, shell.policy, q.form).to_lines()) {
          std::cout << l << "\n";
        }
      } else if (cmd == "explain") {
        if (shell.ready()) {
          if (!shell.have_query) {
            std::cout << "error: no query yet; run `query` first\n";
          } else {
            std::cout << obs::explain(shell.trace);
          }
        }
      } else if (cmd == "fail-storage") {
        net::NodeAddress addr = 0;
        ss >> addr;
        if (shell.ready()) {
          shell.overlay->storage_node_fail(addr);
          shell.churned = true;
          std::cout << "ok\n";
        }
      } else if (cmd == "fail-index") {
        if (shell.ready()) {
          chord::Key victim = shell.overlay->index_nodes().begin()->first;
          shell.overlay->index_node_fail(victim);
          shell.overlay->repair(0);
          shell.overlay->ring().fix_all_fingers_oracle();
          shell.churned = true;
          std::cout << "index node " << victim << " failed and repaired\n";
        }
      } else if (cmd == "inject") {
        std::string first;
        ss >> first;
        if (first == "list") {
          std::cout << (shell.pending_faults.empty()
                            ? std::string("no pending faults\n")
                            : shell.pending_faults.to_string());
        } else if (first == "clear") {
          shell.pending_faults.clear();
          std::cout << "ok\n";
        } else {
          // `inject <at> <kind> [target]` — queued, consumed by `batch`.
          net::SimTime at = 0;
          std::string kind;
          std::istringstream at_ss(first);
          if (!(at_ss >> at) || !(ss >> kind)) {
            std::cout << "error: inject <at> storage-fail|index-fail|recover|"
                         "rejoin|repair [target], or inject list|clear\n";
          } else if (kind == "repair") {
            shell.pending_faults.repair(at);
            std::cout << "ok\n";
          } else if (kind == "index-fail") {
            chord::Key id = 0;
            ss >> id;
            shell.pending_faults.index_fail(at, id);
            std::cout << "ok\n";
          } else {
            net::NodeAddress addr = 0;
            ss >> addr;
            if (kind == "storage-fail") {
              shell.pending_faults.storage_fail(at, addr);
              std::cout << "ok\n";
            } else if (kind == "recover") {
              shell.pending_faults.recover(at, addr);
              std::cout << "ok\n";
            } else if (kind == "rejoin") {
              shell.pending_faults.rejoin(at, addr);
              std::cout << "ok\n";
            } else {
              std::cout << "error: unknown fault kind '" << kind << "'\n";
            }
          }
        }
      } else if (cmd == "audit") {
        std::string mode;
        ss >> mode;
        if (shell.ready()) shell.audit(mode == "converged");
      } else if (cmd == "lint") {
        // The static half of the correctness suite: audit checks the
        // running system, lint checks the source tree it was built from.
        // `lint effects` additionally runs the shared-state effect
        // analysis (rule family P); `lint races` the thread-role race
        // analysis (rule family C) — both against
        // tools/ahsw_shared_state.spec.
#ifdef AHSW_SOURCE_ROOT
        const std::string root = AHSW_SOURCE_ROOT;
#else
        const std::string root = ".";
#endif
        std::string mode;
        ss >> mode;
        lint::LintConfig cfg = lint::load_config(root);
        lint::LintReport report = lint::lint_tree(root, cfg);
        if (mode == "effects") {
          lint::SharedStateSpec spec = lint::load_shared_state_spec(root);
          lint::lint_tree_effects(root, cfg, spec, &report, nullptr);
        } else if (mode == "races") {
          lint::SharedStateSpec spec = lint::load_shared_state_spec(root);
          lint::lint_tree_races(root, cfg, spec, &report, nullptr);
        }
        std::cout << report.to_string();
      } else if (cmd == "stats") {
        if (shell.ready()) {
          std::size_t entries = 0;
          for (const auto& [id, ix] : shell.overlay->index_nodes()) {
            entries += ix.table.entry_count();
          }
          std::cout << "index nodes: " << shell.overlay->index_nodes().size()
                    << ", devices: "
                    << shell.overlay->live_storage_addresses().size()
                    << ", shared triples: "
                    << shell.overlay->merged_store().size()
                    << ", location-table entries: " << entries
                    << ", network msgs: "
                    << shell.network->stats().messages << "\n";
        }
      } else if (cmd == "quit" || cmd == "exit") {
        break;
      } else {
        std::cout << "error: unknown command '" << cmd << "' (try help)\n";
      }
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << "\n";
    }
    if (interactive) std::cout << "ahsw> " << std::flush;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream script(argv[1]);
    if (!script) {
      std::cerr << "cannot open script " << argv[1] << "\n";
      return 1;
    }
    return run(script, /*interactive=*/false);
  }
  return run(std::cin, /*interactive=*/true);
}
