// Regression for the dead-provider resurrection bug: a lazy purge only
// reached the owner's primary row, so when the owner later failed, repair
// promoted the stale replica row and the dead provider came back from the
// grave. `OverlayConfig::propagate_purge_to_replicas = false` reproduces the
// pre-fix behavior; the default propagates the purge to every replica
// holder.
#include <gtest/gtest.h>

#include "check/audit.hpp"
#include "fault/harness.hpp"
#include "workload/testbed.hpp"
#include "workload/vocab.hpp"

namespace ahsw::fault {
namespace {

constexpr std::string_view kPrologue =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n";

workload::TestbedConfig config(bool propagate) {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 5;
  cfg.storage_nodes = 6;
  cfg.overlay.replication_factor = 2;
  cfg.overlay.propagate_purge_to_replicas = propagate;
  cfg.foaf.persons = 70;
  cfg.foaf.seed = 51;
  cfg.partition.seed = 52;
  return cfg;
}

const std::string kQuery = std::string(kPrologue) +
                           "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }";

struct ChurnOutcome {
  bool victim_listed_after_repair = false;  // index row resurrected?
  int second_query_skips = 0;               // query paid for it again?
};

/// Fail a provider, let a query lazily purge it, then crash the row's owner
/// and repair: replica promotion either resurrects the corpse (pre-fix) or
/// not (fixed).
ChurnOutcome churn_owner_after_lazy_purge(bool propagate) {
  workload::Testbed bed(config(propagate));
  dqp::DistributedQueryProcessor proc(bed.overlay());
  net::NodeAddress victim = bed.storage_addrs()[2];
  bed.overlay().storage_node_fail(victim);

  dqp::ExecutionReport first;
  (void)proc.execute(kQuery, bed.storage_addrs().front(), &first);
  EXPECT_GT(first.dead_providers_skipped, 0) << "victim must be a provider";

  rdf::TriplePattern knows{rdf::Variable{"x"},
                           rdf::Term::iri(std::string(workload::foaf::kKnows)),
                           rdf::Variable{"o"}};
  auto loc = bed.overlay().locate(bed.storage_addrs().front(), knows, 0);
  EXPECT_TRUE(loc.ok);
  for (const overlay::Provider& p : loc.providers) {
    EXPECT_NE(p.address, victim) << "lazy purge must have removed the corpse";
  }

  // Crash the owner of the foaf:knows row; repair promotes the replica.
  bed.overlay().index_node_fail(loc.index_node);
  bed.overlay().repair(0);
  bed.overlay().ring().fix_all_fingers_oracle();

  ChurnOutcome out;
  auto after = bed.overlay().locate(bed.storage_addrs().front(), knows, 0);
  EXPECT_TRUE(after.ok);
  for (const overlay::Provider& p : after.providers) {
    if (p.address == victim) out.victim_listed_after_repair = true;
  }
  dqp::ExecutionReport second;
  (void)proc.execute(kQuery, bed.storage_addrs().front(), &second);
  out.second_query_skips = second.dead_providers_skipped;
  return out;
}

TEST(Resurrection, StaleReplicaResurrectsCorpseWithoutPropagation) {
  // Pins the pre-fix failure mode: with purge propagation disabled, the
  // promoted replica row lists the dead provider again and the next query
  // pays a second round of timeouts for a corpse it already reported.
  ChurnOutcome out = churn_owner_after_lazy_purge(/*propagate=*/false);
  EXPECT_TRUE(out.victim_listed_after_repair);
  EXPECT_GT(out.second_query_skips, 0);
}

TEST(Resurrection, PurgePropagationKeepsCorpseBuried) {
  ChurnOutcome out = churn_owner_after_lazy_purge(/*propagate=*/true);
  EXPECT_FALSE(out.victim_listed_after_repair);
  EXPECT_EQ(out.second_query_skips, 0);
}

TEST(Resurrection, ConvergedAuditCleanAfterChurnStorm) {
  // AHSW_AUDIT-gated end-to-end check: a churny faulted batch followed by
  // convergence must satisfy I6 (no failed node in any primary or replica
  // row) together with the rest of the invariant suite.
  if (!check::audit_enabled()) {
    GTEST_SKIP() << "set AHSW_AUDIT=1 to run the audit-backed storm";
  }
  workload::Testbed bed(config(/*propagate=*/true));
  dqp::ExecutionPolicy policy;
  policy.retry.max_retries = 1;
  policy.retry.relookup = true;
  dqp::DistributedQueryProcessor proc(bed.overlay(), policy);

  std::vector<dqp::BatchQuery> batch;
  for (int i = 0; i < 4; ++i) {
    dqp::BatchQuery q;
    q.query = sparql::parse_query(kQuery);
    q.initiator = bed.storage_addrs().front();
    batch.push_back(std::move(q));
  }
  ChurnProfile profile;
  profile.horizon_ms = 400;
  profile.fails_per_second = 8;
  profile.recover_fraction = 0.5;
  profile.repair_every_ms = 150;
  FaultSchedule schedule =
      FaultSchedule::generate(profile, bed.storage_addrs(), 7);
  FaultRunResult res = run_with_faults(proc, bed.overlay(), batch, schedule);

  converge(bed.overlay(), res.batch.makespan);
  check::AuditOptions opt;
  opt.converged = true;
  opt.churned = true;
  check::AuditReport rep = check::audit(bed.overlay(), opt);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  EXPECT_EQ(rep.count(check::Invariant::kLiveness), 0u) << rep.to_string();
}

}  // namespace
}  // namespace ahsw::fault
