// FaultInjector semantics and the deterministic interleaving of injected
// events with execute_batch() traffic.
#include <gtest/gtest.h>

#include "check/audit.hpp"
#include "fault/harness.hpp"
#include "net/event_queue.hpp"
#include "workload/testbed.hpp"

namespace ahsw::fault {
namespace {

constexpr std::string_view kPrologue =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n";

workload::TestbedConfig config(int replication = 1) {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 5;
  cfg.storage_nodes = 6;
  cfg.overlay.replication_factor = replication;
  cfg.foaf.persons = 70;
  cfg.foaf.seed = 51;
  cfg.partition.seed = 52;
  return cfg;
}

std::vector<dqp::BatchQuery> knows_batch(workload::Testbed& bed, int n) {
  std::vector<dqp::BatchQuery> batch;
  for (int i = 0; i < n; ++i) {
    dqp::BatchQuery q;
    q.query = sparql::parse_query(std::string(kPrologue) +
                                  "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }");
    q.initiator = bed.storage_addrs().front();
    batch.push_back(std::move(q));
  }
  return batch;
}

TEST(Injection, EventsSortAfterQueryTasksAtEqualTime) {
  // The reserved injection query id is the maximum, so at one sim time every
  // query task stamped there fires before the injected event applies.
  net::ReadyEvent task{10.0, 3, 0};
  net::ReadyEvent inject{10.0, net::kInjectionQueryId, 0};
  net::ReadyEvent later_task{10.5, 0, 0};
  EXPECT_LT(task, inject);
  EXPECT_LT(inject, later_task);
}

TEST(Injection, ApplyIsIdempotentAndLogsSkips) {
  workload::Testbed bed(config());
  FaultInjector inj(bed.overlay(), FaultSchedule{});
  net::NodeAddress victim = bed.storage_addrs()[2];

  inj.apply(FaultEvent{0, FaultKind::kStorageFail, victim, 0}, 0);
  EXPECT_TRUE(bed.network().is_failed(victim));
  inj.apply(FaultEvent{1, FaultKind::kStorageFail, victim, 0}, 1);  // again
  inj.apply(FaultEvent{2, FaultKind::kStorageFail, 9999, 0}, 2);  // unknown
  inj.apply(FaultEvent{3, FaultKind::kRecover, victim, 0}, 3);
  EXPECT_FALSE(bed.network().is_failed(victim));
  inj.apply(FaultEvent{4, FaultKind::kRecover, victim, 0}, 4);  // not failed
  inj.apply(FaultEvent{5, FaultKind::kIndexFail, net::kNoAddress, 0}, 5);

  EXPECT_EQ(inj.log().applied, 2);
  EXPECT_EQ(inj.log().skipped, 4);
}

TEST(Injection, MidBatchFailureAffectsQueriesDeterministically) {
  workload::Testbed bed(config());
  dqp::DistributedQueryProcessor proc(bed.overlay());
  FaultSchedule schedule;
  schedule.storage_fail(0, bed.storage_addrs()[2]);

  FaultRunResult res =
      run_with_faults(proc, bed.overlay(), knows_batch(bed, 2), schedule);
  EXPECT_EQ(res.injection_log.applied, 1);
  EXPECT_GE(res.availability.affected, 1u);
  EXPECT_GT(res.availability.timeout_count, 0u);
  EXPECT_LT(res.availability.success_rate(), 1.0);
  EXPECT_GT(res.availability.convergence_ms(), 0);
}

TEST(Injection, EventsPastMakespanStillApply) {
  workload::Testbed bed(config());
  dqp::DistributedQueryProcessor proc(bed.overlay());
  net::NodeAddress victim = bed.storage_addrs()[3];
  FaultSchedule schedule;
  schedule.storage_fail(1e6, victim);  // long after the batch completes

  FaultRunResult res =
      run_with_faults(proc, bed.overlay(), knows_batch(bed, 1), schedule);
  EXPECT_EQ(res.injection_log.applied, 1);
  EXPECT_TRUE(bed.network().is_failed(victim));
  // No query ran at that sim time, so availability is untouched.
  EXPECT_EQ(res.availability.affected, 0u);
  EXPECT_EQ(res.availability.success_rate(), 1.0);
}

TEST(Injection, RejoinRepublishesPurgedRows) {
  workload::Testbed bed(config());
  dqp::DistributedQueryProcessor proc(bed.overlay());
  net::NodeAddress victim = bed.storage_addrs()[2];
  rdf::TriplePattern knows{rdf::Variable{"x"},
                           rdf::Term::iri("http://xmlns.com/foaf/0.1/knows"),
                           rdf::Variable{"o"}};

  bed.overlay().storage_node_fail(victim);
  dqp::ExecutionReport rep;
  (void)proc.execute(std::string(kPrologue) +
                         "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }",
                     bed.storage_addrs().front(), &rep);
  ASSERT_GT(rep.dead_providers_skipped, 0);  // lazy purge happened

  auto purged = bed.overlay().locate(bed.storage_addrs().front(), knows, 0);
  ASSERT_TRUE(purged.ok);
  for (const overlay::Provider& p : purged.providers) {
    EXPECT_NE(p.address, victim);
  }

  FaultInjector inj(bed.overlay(), FaultSchedule{});
  inj.apply(FaultEvent{500, FaultKind::kRejoin, victim, 0}, 500);
  auto rejoined = bed.overlay().locate(bed.storage_addrs().front(), knows, 0);
  ASSERT_TRUE(rejoined.ok);
  bool listed = false;
  for (const overlay::Provider& p : rejoined.providers) {
    if (p.address == victim) listed = true;
  }
  EXPECT_TRUE(listed) << "rejoin must revive the purged index rows";
}

TEST(Injection, ConvergeEstablishesLiveness) {
  workload::Testbed bed(config(/*replication=*/2));
  dqp::DistributedQueryProcessor proc(bed.overlay());
  FaultSchedule schedule;
  schedule.storage_fail(0, bed.storage_addrs()[2])
      .storage_fail(0, bed.storage_addrs()[4]);

  FaultRunResult res =
      run_with_faults(proc, bed.overlay(), knows_batch(bed, 2), schedule);
  converge(bed.overlay(), res.batch.makespan);

  check::AuditOptions opt;
  opt.converged = true;
  opt.churned = true;
  check::AuditReport rep = check::audit(bed.overlay(), opt);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  EXPECT_EQ(rep.count(check::Invariant::kLiveness), 0u) << rep.to_string();
}

}  // namespace
}  // namespace ahsw::fault
