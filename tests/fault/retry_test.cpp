// RetryPolicy: bounded re-contact with deterministic backoff, failover, and
// the lazy-repair re-lookup that rescues a query after every provider in the
// original row has been given up on.
#include <gtest/gtest.h>

#include "fault/harness.hpp"
#include "sparql/eval.hpp"
#include "workload/testbed.hpp"
#include "workload/vocab.hpp"

namespace ahsw::fault {
namespace {

constexpr std::string_view kPrologue =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n";

workload::TestbedConfig config() {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 5;
  cfg.storage_nodes = 6;
  cfg.foaf.persons = 70;
  cfg.foaf.seed = 51;
  cfg.partition.seed = 52;
  return cfg;
}

dqp::BatchQuery knows_query(workload::Testbed& bed) {
  dqp::BatchQuery q;
  q.query = sparql::parse_query(std::string(kPrologue) +
                                "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }");
  q.initiator = bed.storage_addrs().front();
  return q;
}

TEST(RetryPolicy, BackoffGrowsGeometrically) {
  dqp::RetryPolicy p;
  p.max_retries = 3;
  p.backoff_base_ms = 8.0;
  p.backoff_growth = 2.0;
  EXPECT_TRUE(p.enabled());
  EXPECT_DOUBLE_EQ(p.backoff_ms(1), 8.0);
  EXPECT_DOUBLE_EQ(p.backoff_ms(2), 16.0);
  EXPECT_DOUBLE_EQ(p.backoff_ms(3), 32.0);
  EXPECT_FALSE(dqp::RetryPolicy{}.enabled());
}

/// One run of the knows query with the victim failed at t=0 and recovered at
/// `recover_at`, under `policy`.
dqp::ExecutionReport faulted_run(const dqp::ExecutionPolicy& policy,
                                 net::SimTime recover_at,
                                 std::size_t* rows = nullptr) {
  workload::Testbed bed(config());
  dqp::DistributedQueryProcessor proc(bed.overlay(), policy);
  FaultSchedule schedule;
  schedule.storage_fail(0, bed.storage_addrs()[2]);
  schedule.recover(recover_at, bed.storage_addrs()[2]);
  FaultRunResult res =
      run_with_faults(proc, bed.overlay(), {knows_query(bed)}, schedule);
  if (rows != nullptr) {
    *rows = sparql::deduplicated(res.batch.results.front().solutions).size();
  }
  return res.batch.reports.front();
}

TEST(RetryPolicy, RetryReachesRecoveredProvider) {
  // The provider crashes before the query starts and recovers 60 ms in —
  // before the first contact's timeout expires. Without retries the query
  // gives up on it; with retries the backed-off re-contact lands on the
  // recovered node and the answer stays complete.
  std::size_t baseline_rows = 0, retried_rows = 0;
  dqp::ExecutionPolicy off;
  dqp::ExecutionReport base = faulted_run(off, 60, &baseline_rows);
  EXPECT_GT(base.dead_providers_skipped, 0);
  EXPECT_EQ(base.retries, 0);

  dqp::ExecutionPolicy on;
  on.retry.max_retries = 2;
  dqp::ExecutionReport rep = faulted_run(on, 60, &retried_rows);
  EXPECT_GT(rep.retries, 0);
  EXPECT_EQ(rep.dead_providers_skipped, 0);
  EXPECT_GT(retried_rows, baseline_rows);
}

TEST(RetryPolicy, ChainEngineRetriesToo) {
  std::size_t baseline_rows = 0, retried_rows = 0;
  dqp::ExecutionPolicy off;
  off.adaptive = false;
  off.primitive = optimizer::PrimitiveStrategy::kFrequencyChain;
  dqp::ExecutionReport base = faulted_run(off, 60, &baseline_rows);
  EXPECT_GT(base.dead_providers_skipped, 0);

  dqp::ExecutionPolicy on = off;
  on.retry.max_retries = 2;
  dqp::ExecutionReport rep = faulted_run(on, 60, &retried_rows);
  EXPECT_GT(rep.retries, 0);
  EXPECT_EQ(rep.dead_providers_skipped, 0);
  EXPECT_GT(retried_rows, baseline_rows);
}

TEST(RetryPolicy, ExhaustedRetriesStillGiveUp) {
  // The provider never recovers: retries burn their budget, then the query
  // gives up exactly as the no-retry path does (lazy purge included), at the
  // price of the extra attempts.
  dqp::ExecutionPolicy on;
  on.retry.max_retries = 2;
  dqp::ExecutionReport rep = faulted_run(on, /*recover_at=*/1e9);
  EXPECT_EQ(rep.retries, 2);
  EXPECT_GT(rep.dead_providers_skipped, 0);
  EXPECT_TRUE(rep.complete);
}

TEST(RetryPolicy, RelookupFindsRejoinedProvider) {
  // The *only* provider of the probed row crashes, so the whole provider set
  // exhausts; a rejoin republishes while the query is still in flight, and
  // the policy's single re-lookup picks the revived row up.
  workload::TestbedConfig cfg;
  cfg.index_nodes = 4;
  cfg.storage_nodes = 4;
  cfg.foaf.persons = 0;
  workload::Testbed bed(cfg);
  rdf::Term knows = rdf::Term::iri(std::string(workload::foaf::kKnows));
  rdf::Term target = rdf::Term::iri("http://example.org/people/p0");
  std::vector<rdf::Triple> triples;
  for (int i = 0; i < 3; ++i) {
    triples.push_back(
        {rdf::Term::iri("http://example.org/people/s" + std::to_string(i)),
         knows, target});
  }
  bed.overlay().share_triples(bed.storage_addrs()[0], triples, 0);

  const std::string query =
      std::string(kPrologue) +
      "SELECT ?x WHERE { ?x foaf:knows <http://example.org/people/p0> . }";
  dqp::BatchQuery q;
  q.query = sparql::parse_query(query);
  q.initiator = bed.storage_addrs()[3];

  FaultSchedule schedule;
  schedule.storage_fail(0, bed.storage_addrs()[0]);
  schedule.rejoin(100, bed.storage_addrs()[0]);

  dqp::ExecutionPolicy policy;
  policy.retry.relookup = true;  // no retries: give up fast, re-lookup once
  dqp::DistributedQueryProcessor proc(bed.overlay(), policy);
  FaultRunResult res = run_with_faults(proc, bed.overlay(), {q}, schedule);

  const dqp::ExecutionReport& rep = res.batch.reports.front();
  EXPECT_EQ(rep.relookups, 1);
  EXPECT_GT(rep.dead_providers_skipped, 0);
  EXPECT_EQ(res.batch.results.front().solutions.size(), 3u);

  // Without the re-lookup the answer is empty: the only provider was dead.
  workload::Testbed bed2(cfg);
  bed2.overlay().share_triples(bed2.storage_addrs()[0], triples, 0);
  dqp::BatchQuery q2 = q;
  q2.initiator = bed2.storage_addrs()[3];
  FaultSchedule schedule2;
  schedule2.storage_fail(0, bed2.storage_addrs()[0]);
  schedule2.rejoin(100, bed2.storage_addrs()[0]);
  dqp::DistributedQueryProcessor proc2(bed2.overlay());
  FaultRunResult res2 = run_with_faults(proc2, bed2.overlay(), {q2}, schedule2);
  EXPECT_EQ(res2.batch.reports.front().relookups, 0);
  EXPECT_TRUE(res2.batch.results.front().solutions.empty());
}

}  // namespace
}  // namespace ahsw::fault
