// Determinism pin: the same (system config, batch, schedule, seed) must
// replay byte-identically — result rows, per-query traffic by category,
// timeouts, response times, makespan and every availability metric.
#include <gtest/gtest.h>

#include "fault/harness.hpp"
#include "sparql/eval.hpp"
#include "workload/testbed.hpp"

namespace ahsw::fault {
namespace {

constexpr std::string_view kPrologue =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n";

workload::TestbedConfig config() {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 8;
  cfg.storage_nodes = 8;
  cfg.overlay.replication_factor = 2;
  cfg.foaf.persons = 120;
  cfg.foaf.seed = 61;
  cfg.partition.seed = 62;
  return cfg;
}

struct RunOutcome {
  FaultRunResult res;
  net::TrafficStats total;
};

RunOutcome run_once() {
  workload::Testbed bed(config());
  dqp::ExecutionPolicy policy;
  policy.retry.max_retries = 2;
  policy.retry.relookup = true;
  dqp::DistributedQueryProcessor proc(bed.overlay(), policy);

  std::vector<dqp::BatchQuery> batch;
  const char* texts[] = {
      "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }",
      "SELECT ?x ?n WHERE { ?x foaf:knows ?y . ?x foaf:nick ?n . }",
      "SELECT ?p ?o WHERE { <http://example.org/people/p3> ?p ?o . }",
      "SELECT ?x WHERE { { ?x foaf:nick ?n . } UNION { ?x foaf:mbox ?m . } }",
  };
  for (std::size_t i = 0; i < std::size(texts); ++i) {
    dqp::BatchQuery q;
    q.query = sparql::parse_query(std::string(kPrologue) + texts[i]);
    q.initiator = bed.storage_addrs()[i % bed.storage_addrs().size()];
    batch.push_back(std::move(q));
  }

  ChurnProfile profile;
  profile.horizon_ms = 400;
  profile.fails_per_second = 10;
  profile.recover_fraction = 0.6;
  profile.recover_delay_ms = 120;
  profile.repair_every_ms = 150;
  FaultSchedule schedule =
      FaultSchedule::generate(profile, bed.storage_addrs(), 99);

  RunOutcome out{run_with_faults(proc, bed.overlay(), batch, schedule),
                 bed.network().stats()};
  return out;
}

void expect_same_traffic(const net::TrafficStats& a,
                         const net::TrafficStats& b) {
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.timeouts, b.timeouts);
  for (int c = 0; c < net::kCategoryCount; ++c) {
    EXPECT_EQ(a.messages_by[c], b.messages_by[c]) << "category " << c;
    EXPECT_EQ(a.bytes_by[c], b.bytes_by[c]) << "category " << c;
    EXPECT_EQ(a.timeouts_by[c], b.timeouts_by[c]) << "category " << c;
  }
}

TEST(Replay, SameSeedAndScheduleIsByteIdentical) {
  RunOutcome a = run_once();
  RunOutcome b = run_once();

  // The schedule itself must have produced churn worth pinning.
  EXPECT_GT(a.res.injection_log.applied, 0);

  ASSERT_EQ(a.res.batch.results.size(), b.res.batch.results.size());
  for (std::size_t i = 0; i < a.res.batch.results.size(); ++i) {
    EXPECT_EQ(a.res.batch.results[i].solutions.rows(),
              b.res.batch.results[i].solutions.rows())
        << "query " << i;
    const dqp::ExecutionReport& ra = a.res.batch.reports[i];
    const dqp::ExecutionReport& rb = b.res.batch.reports[i];
    expect_same_traffic(ra.traffic, rb.traffic);
    EXPECT_EQ(ra.response_time, rb.response_time) << "query " << i;
    EXPECT_EQ(ra.retries, rb.retries) << "query " << i;
    EXPECT_EQ(ra.relookups, rb.relookups) << "query " << i;
    EXPECT_EQ(ra.dead_providers_skipped, rb.dead_providers_skipped)
        << "query " << i;
    EXPECT_EQ(ra.complete, rb.complete) << "query " << i;
  }
  EXPECT_EQ(a.res.batch.makespan, b.res.batch.makespan);
  expect_same_traffic(a.total, b.total);

  EXPECT_EQ(a.res.injection_log.applied, b.res.injection_log.applied);
  EXPECT_EQ(a.res.injection_log.skipped, b.res.injection_log.skipped);
  EXPECT_EQ(a.res.availability.to_extra(), b.res.availability.to_extra());
}

TEST(Replay, DifferentSeedDiverges) {
  // A sanity check that the pin above is not vacuous: a different schedule
  // seed produces a different fault script.
  workload::Testbed bed(config());
  ChurnProfile profile;
  profile.horizon_ms = 400;
  profile.fails_per_second = 10;
  FaultSchedule a = FaultSchedule::generate(profile, bed.storage_addrs(), 99);
  FaultSchedule b = FaultSchedule::generate(profile, bed.storage_addrs(), 100);
  EXPECT_NE(a.to_string(), b.to_string());
}

}  // namespace
}  // namespace ahsw::fault
