// Location-row caching under faults: a cached row pointing at a provider
// that dies is invalidated the moment a query pays the dead-provider
// timeout, so the *next* query falls through to the (lazily repaired)
// authoritative row and pays nothing; the convergence oracle also scrubs
// caches, keeping I6 liveness true for cached rows.
#include <gtest/gtest.h>

#include <string>

#include "check/audit.hpp"
#include "fault/harness.hpp"
#include "sparql/eval.hpp"
#include "workload/testbed.hpp"

namespace ahsw::fault {
namespace {

constexpr std::string_view kPrologue =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n";

workload::TestbedConfig config() {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 5;
  cfg.storage_nodes = 6;
  cfg.foaf.persons = 70;
  cfg.foaf.seed = 51;
  cfg.partition.seed = 52;
  return cfg;
}

dqp::BatchQuery knows_query(workload::Testbed& bed) {
  dqp::BatchQuery q;
  q.query = sparql::parse_query(std::string(kPrologue) +
                                "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }");
  q.initiator = bed.storage_addrs().front();
  return q;
}

TEST(CacheInvalidation, DeadProviderTimeoutPurgesRowSoNextQueryIsClean) {
  workload::Testbed bed(config());
  dqp::ExecutionPolicy policy;
  policy.cache.enabled = true;
  bed.overlay().configure_caches(policy.cache);
  dqp::DistributedQueryProcessor proc(bed.overlay(), policy);
  const net::NodeAddress initiator = bed.storage_addrs().front();

  // Warm run: the row is fetched from the ring and cached at the initiator.
  dqp::BatchResult warm = proc.execute_batch({knows_query(bed)});
  EXPECT_EQ(warm.reports.front().dead_providers_skipped, 0);
  EXPECT_GT(warm.reports.front().cache.insertions, 0u);
  ASSERT_FALSE(bed.overlay().cache_for(initiator).rows().empty());

  // A cached provider dies. The next query hits the stale cached row,
  // pays the detection timeout once, and the give-up path invalidates the
  // row on the spot (plus lazy repair of the authoritative copy).
  FaultSchedule schedule;
  schedule.storage_fail(0, bed.storage_addrs()[2]);
  FaultRunResult faulted =
      run_with_faults(proc, bed.overlay(), {knows_query(bed)}, schedule);
  const dqp::ExecutionReport& hit = faulted.batch.reports.front();
  EXPECT_GT(hit.cache.hits, 0u);
  EXPECT_GT(hit.dead_providers_skipped, 0);
  EXPECT_GT(hit.traffic.timeouts, 0u);
  EXPECT_GT(hit.cache.invalidations, 0u);

  // Third run: the invalidated key misses, the fresh ring lookup returns
  // the repaired row, and nobody pays the dead-provider timeout again.
  dqp::BatchResult clean = proc.execute_batch({knows_query(bed)});
  const dqp::ExecutionReport& after = clean.reports.front();
  EXPECT_EQ(after.dead_providers_skipped, 0);
  EXPECT_EQ(after.traffic.timeouts, 0u);
  EXPECT_LT(after.response_time, hit.response_time);

  // Post-converge, I6 liveness must hold for authoritative AND cached rows.
  converge(bed.overlay(), clean.makespan);
  check::AuditOptions opt;
  opt.churned = true;
  opt.converged = true;
  opt.now = clean.makespan;
  check::AuditReport audit = check::audit(bed.overlay(), opt);
  EXPECT_TRUE(audit.clean()) << audit.to_string();
}

TEST(CacheInvalidation, ConvergenceOracleScrubsCachedRowsOfFailedNodes) {
  // Even when no query ever trips over the dead provider, converge() must
  // leave no cached row naming it — the auditor's converged cache scan
  // would flag exactly that as an I6 violation.
  workload::Testbed bed(config());
  dqp::ExecutionPolicy policy;
  policy.cache.enabled = true;
  bed.overlay().configure_caches(policy.cache);
  dqp::DistributedQueryProcessor proc(bed.overlay(), policy);
  const net::NodeAddress initiator = bed.storage_addrs().front();

  dqp::BatchResult warm = proc.execute_batch({knows_query(bed)});
  const net::NodeAddress victim = bed.storage_addrs()[2];
  bool victim_cached = false;
  for (const auto& [key, row] : bed.overlay().cache_for(initiator).rows()) {
    for (const overlay::Provider& p : row.providers) {
      victim_cached = victim_cached || p.address == victim;
    }
  }
  ASSERT_TRUE(victim_cached) << "scenario lost its premise: row not cached";

  FaultInjector injector(bed.overlay(), {});
  injector.apply({warm.makespan, FaultKind::kStorageFail, victim, 0},
                 warm.makespan);
  converge(bed.overlay(), warm.makespan + 1);

  for (const auto& [key, row] : bed.overlay().cache_for(initiator).rows()) {
    for (const overlay::Provider& p : row.providers) {
      EXPECT_NE(p.address, victim) << "cached row still lists failed node";
    }
  }
  check::AuditOptions opt;
  opt.churned = true;
  opt.converged = true;
  opt.now = warm.makespan + 1;
  check::AuditReport audit = check::audit(bed.overlay(), opt);
  EXPECT_TRUE(audit.clean()) << audit.to_string();
}

}  // namespace
}  // namespace ahsw::fault
