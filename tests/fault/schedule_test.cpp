// FaultSchedule: builder ordering, the seeded churn generator's determinism
// and bounds, and the schedule's derived quantities.
#include <gtest/gtest.h>

#include "fault/schedule.hpp"

namespace ahsw::fault {
namespace {

TEST(FaultSchedule, BuilderKeepsTimeOrderWithStableTies) {
  FaultSchedule s;
  s.storage_fail(50, 7).repair(10).recover(50, 7).rejoin(80, 7).index_fail(10,
                                                                           3);
  ASSERT_EQ(s.size(), 5u);
  // Sorted by time; the two t=10 events and the two t=50 events keep the
  // order they were added in.
  EXPECT_EQ(s.events()[0].kind, FaultKind::kRepair);
  EXPECT_EQ(s.events()[1].kind, FaultKind::kIndexFail);
  EXPECT_EQ(s.events()[2].kind, FaultKind::kStorageFail);
  EXPECT_EQ(s.events()[3].kind, FaultKind::kRecover);
  EXPECT_EQ(s.events()[4].kind, FaultKind::kRejoin);
}

TEST(FaultSchedule, FirstFaultAtSkipsNonFailures) {
  FaultSchedule s;
  EXPECT_EQ(s.first_fault_at(), 0);
  s.repair(5).rejoin(8, 1);
  EXPECT_EQ(s.first_fault_at(), 0);  // no failure at all
  s.storage_fail(40, 2).index_fail(25, 3);
  EXPECT_EQ(s.first_fault_at(), 25);
}

TEST(FaultSchedule, GeneratorIsDeterministicInSeed) {
  ChurnProfile profile;
  profile.horizon_ms = 500;
  profile.fails_per_second = 10;
  profile.repair_every_ms = 100;
  std::vector<net::NodeAddress> victims = {1, 2, 3, 4, 5};

  FaultSchedule a = FaultSchedule::generate(profile, victims, 42);
  FaultSchedule b = FaultSchedule::generate(profile, victims, 42);
  FaultSchedule c = FaultSchedule::generate(profile, victims, 43);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].storage, b.events()[i].storage);
  }
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(FaultSchedule, GeneratorRespectsProfileBounds) {
  ChurnProfile profile;
  profile.horizon_ms = 1000;
  profile.fails_per_second = 8;
  profile.recover_fraction = 1.0;  // every failure recovers + rejoins
  profile.recover_delay_ms = 50;
  std::vector<net::NodeAddress> victims = {10, 11, 12};

  FaultSchedule s = FaultSchedule::generate(profile, victims, 7);
  int fails = 0, recovers = 0, rejoins = 0;
  for (const FaultEvent& e : s.events()) {
    switch (e.kind) {
      case FaultKind::kStorageFail:
        ++fails;
        EXPECT_GE(e.at, 0);
        EXPECT_LT(e.at, profile.horizon_ms);
        EXPECT_TRUE(e.storage >= 10 && e.storage <= 12);
        break;
      case FaultKind::kRecover:
        ++recovers;
        break;
      case FaultKind::kRejoin:
        ++rejoins;
        break;
      case FaultKind::kIndexFail:
      case FaultKind::kRepair:
        break;
    }
  }
  EXPECT_EQ(fails, 8);  // fails_per_second * horizon_s
  EXPECT_EQ(recovers, fails);
  EXPECT_EQ(rejoins, fails);
}

TEST(FaultSchedule, GeneratorDrawsIndexVictimsAfterStorage) {
  ChurnProfile profile;
  profile.horizon_ms = 1000;
  profile.fails_per_second = 6;
  profile.index_fails_per_second = 3;
  std::vector<net::NodeAddress> victims = {10, 11, 12};
  std::vector<chord::Key> index_victims = {100, 200, 300};

  FaultSchedule s = FaultSchedule::generate(profile, victims, index_victims, 9);
  int index_fails = 0;
  for (const FaultEvent& e : s.events()) {
    if (e.kind != FaultKind::kIndexFail) continue;
    ++index_fails;
    EXPECT_GE(e.at, 0);
    EXPECT_LT(e.at, profile.horizon_ms);
    EXPECT_TRUE(e.index == 100 || e.index == 200 || e.index == 300) << e.index;
  }
  EXPECT_EQ(index_fails, 3);  // index_fails_per_second * horizon_s

  // Stream compatibility: the index draws come after every storage draw,
  // so the storage half of the schedule is byte-identical to a generate()
  // with the knob off — and to the three-argument overload.
  ChurnProfile storage_only = profile;
  storage_only.index_fails_per_second = 0;
  FaultSchedule base = FaultSchedule::generate(storage_only, victims, 9);
  auto storage_half = [](const FaultSchedule& sched) {
    std::vector<FaultEvent> out;
    for (const FaultEvent& e : sched.events()) {
      if (e.kind != FaultKind::kIndexFail) out.push_back(e);
    }
    return out;
  };
  std::vector<FaultEvent> got = storage_half(s);
  std::vector<FaultEvent> want = storage_half(base);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].at, want[i].at) << i;
    EXPECT_EQ(got[i].kind, want[i].kind) << i;
    EXPECT_EQ(got[i].storage, want[i].storage) << i;
  }

  // Index churn alone (no storage victims) still generates.
  FaultSchedule index_only = FaultSchedule::generate(profile, {}, index_victims, 9);
  EXPECT_EQ(index_only.size(), 3u);
  EXPECT_EQ(index_only.first_fault_at(), index_only.events().front().at);
}

TEST(FaultSchedule, ToStringNamesEveryKind) {
  FaultSchedule s;
  s.storage_fail(1, 2).index_fail(2, 3).recover(3, 2).repair(4).rejoin(5, 2);
  std::string text = s.to_string();
  for (const char* kind :
       {"storage-fail", "index-fail", "recover", "repair", "rejoin"}) {
    EXPECT_NE(text.find(kind), std::string::npos) << kind;
  }
}

}  // namespace
}  // namespace ahsw::fault
