// Whole-system stress: interleaved data churn (share/unshare), node churn
// (storage and index joins, leaves, crashes) and queries, with the
// distributed answer checked against the live-data oracle after every
// phase. This is the "everything at once" property behind the paper's
// ad-hoc scenario: devices come and go, data changes hands, queries keep
// working.
#include <gtest/gtest.h>

#include "check/audit.hpp"
#include "dqp_test_util.hpp"
#include "workload/generators.hpp"
#include "workload/queries.hpp"

namespace ahsw::dqp {
namespace {

using testing::canon;

class SystemStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SystemStress, QueriesStayOracleCorrectThroughChurn) {
  const std::uint64_t seed = GetParam();
  common::Rng rng(seed);

  workload::TestbedConfig cfg;
  cfg.index_nodes = 8;
  cfg.storage_nodes = 8;
  cfg.overlay.replication_factor = 3;
  cfg.foaf.persons = 60;
  cfg.foaf.seed = seed;
  cfg.partition.seed = seed + 1;
  workload::Testbed bed(cfg);
  ExecutionPolicy policy;
  policy.adaptive = rng.chance(0.5);
  DistributedQueryProcessor proc(bed.overlay(), policy);

  // Extra data that churns in and out during the run.
  workload::FoafConfig extra_cfg;
  extra_cfg.persons = 30;
  extra_cfg.seed = seed + 2;
  std::vector<rdf::Triple> extra = workload::generate_foaf(extra_cfg);

  std::vector<net::NodeAddress> storages = bed.storage_addrs();
  workload::QueryMixConfig mix;
  mix.seed = seed + 3;
  std::vector<std::string> queries =
      workload::generate_query_mix(24, cfg.foaf, mix);

  // AHSW_AUDIT=1: trace every query and check the I5 conservation invariant
  // (span self-counters must sum exactly to the query's traffic delta).
  obs::QueryTrace trace;
  if (check::audit_enabled()) proc.set_trace(&trace);

  auto check = [&](const std::string& q) {
    net::NodeAddress initiator = storages[rng.below(storages.size())];
    while (bed.network().is_failed(initiator)) {
      initiator = storages[rng.below(storages.size())];
    }
    sparql::Query parsed = sparql::parse_query(q);
    trace.clear();
    net::TrafficStats before = bed.network().stats();
    sparql::QueryResult dist = proc.execute(parsed, initiator, nullptr);
    if (check::audit_enabled()) {
      net::TrafficStats delta = bed.network().stats().delta_since(before);
      check::AuditReport rep;
      check::audit_conservation(trace, delta, rep);
      ASSERT_TRUE(rep.clean()) << q << "\n" << rep.to_string();
    }
    sparql::QueryResult oracle =
        sparql::execute_local(parsed, bed.overlay().merged_store());
    ASSERT_EQ(canon(dist.solutions).rows(), canon(oracle.solutions).rows())
        << q;
  };

  // AHSW_AUDIT=1: full-overlay audit after every mutation phase. The system
  // is mid-churn (stale provider pointers, replica drift), so the lenient
  // severity model applies — but nothing may ever be corrupt.
  auto audit_overlay_state = [&](int phase) {
    if (!check::audit_enabled()) return;
    check::AuditOptions opt;
    opt.churned = true;
    check::AuditReport rep = check::audit(bed.overlay(), opt);
    ASSERT_TRUE(rep.clean()) << "phase " << phase << "\n" << rep.to_string();
  };
  audit_overlay_state(-1);  // freshly built system

  std::size_t next_query = 0;
  std::size_t extra_cursor = 0;
  for (int phase = 0; phase < 8; ++phase) {
    // -- mutate the system ------------------------------------------------
    switch (rng.below(5)) {
      case 0: {  // share a slice of extra data at a random live node
        std::vector<rdf::Triple> slice;
        for (int i = 0; i < 20 && extra_cursor < extra.size(); ++i) {
          slice.push_back(extra[extra_cursor++]);
        }
        net::NodeAddress node = storages[rng.below(storages.size())];
        if (!bed.network().is_failed(node)) {
          bed.overlay().share_triples(node, slice, 0);
        }
        break;
      }
      case 1: {  // unshare a random prefix of a node's data
        net::NodeAddress node = storages[rng.below(storages.size())];
        if (!bed.network().is_failed(node)) {
          std::vector<rdf::Triple> victimised;
          bed.overlay().store_of(node).for_each(
              [&](const rdf::Triple& t) {
                if (victimised.size() < 10) victimised.push_back(t);
              });
          bed.overlay().unshare_triples(node, victimised, 0);
        }
        break;
      }
      case 2: {  // a new storage device arrives with data
        net::NodeAddress fresh = bed.overlay().add_storage_node();
        storages.push_back(fresh);
        std::vector<rdf::Triple> slice;
        for (int i = 0; i < 15 && extra_cursor < extra.size(); ++i) {
          slice.push_back(extra[extra_cursor++]);
        }
        bed.overlay().share_triples(fresh, slice, 0);
        break;
      }
      case 3: {  // index-node churn: one joins, one crashes
        bed.overlay().add_index_node(0);
        if (bed.overlay().index_nodes().size() > 4) {
          auto it = bed.overlay().index_nodes().begin();
          std::advance(it, static_cast<std::ptrdiff_t>(
                               rng.below(bed.overlay().index_nodes().size())));
          bed.overlay().index_node_fail(it->first);
          bed.overlay().repair(0);
        }
        bed.overlay().ring().fix_all_fingers_oracle();
        break;
      }
      default: {  // a storage device crashes (stale entries linger)
        std::size_t live_count = 0;
        for (net::NodeAddress s : storages) {
          if (!bed.network().is_failed(s)) ++live_count;
        }
        if (live_count > 4) {
          net::NodeAddress victim = storages[rng.below(storages.size())];
          if (!bed.network().is_failed(victim)) {
            bed.overlay().storage_node_fail(victim);
          }
        }
        break;
      }
    }

    audit_overlay_state(phase);

    // -- queries must still match the live oracle -------------------------
    for (int q = 0; q < 3; ++q) {
      check(queries[next_query++ % queries.size()]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemStress,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace ahsw::dqp
