// End-to-end Fig. 3 workflow tests: parse -> transform -> optimize -> ship
// -> local execution -> post-processing, across query forms and solution
// modifiers, plus the Fig. 4 flagship query.
#include <gtest/gtest.h>

#include "dqp_test_util.hpp"
#include "workload/vocab.hpp"

namespace ahsw::dqp {
namespace {

using testing::expect_matches_oracle;
using testing::kPrologue;

workload::TestbedConfig config() {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 4;
  cfg.storage_nodes = 5;
  cfg.foaf.persons = 60;
  cfg.foaf.seed = 41;
  cfg.partition.seed = 42;
  cfg.partition.overlap = 0.2;
  return cfg;
}

TEST(Workflow, Fig4FlagshipQueryEndToEnd) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  ExecutionReport rep;
  expect_matches_oracle(bed, proc,
                        std::string(kPrologue) + R"(
      SELECT ?x ?y ?z WHERE {
        ?x foaf:name ?name .
        ?x foaf:knows ?z .
        ?x ns:knowsNothingAbout ?y .
        ?y foaf:knows ?z .
        FILTER regex(?name, "Smith")
      } ORDER BY DESC(?x))",
                        bed.storage_addrs().front(), &rep);
  EXPECT_TRUE(rep.complete);
  EXPECT_GT(rep.index_lookups, 0);
  EXPECT_GT(rep.traffic.messages, 0u);
  EXPECT_GT(rep.response_time, 0.0);
}

TEST(Workflow, OrderByAppliedAtInitiator) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  sparql::QueryResult r = proc.execute(
      std::string(kPrologue) +
          "SELECT ?x ?a WHERE { ?x foaf:age ?a . } ORDER BY DESC(?a) LIMIT 5",
      bed.storage_addrs().front(), nullptr);
  ASSERT_LE(r.solutions.size(), 5u);
  ASSERT_GE(r.solutions.size(), 2u);
  double prev = 1e18;
  for (const sparql::Binding& b : r.solutions.rows()) {
    double v = 0;
    ASSERT_TRUE(b.get("a")->numeric_value(v));
    EXPECT_LE(v, prev);
    prev = v;
  }
}

TEST(Workflow, DistinctAndProjection) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  sparql::QueryResult all = proc.execute(
      std::string(kPrologue) + "SELECT ?y WHERE { ?x foaf:knows ?y . }",
      bed.storage_addrs().front(), nullptr);
  sparql::QueryResult distinct = proc.execute(
      std::string(kPrologue) +
          "SELECT DISTINCT ?y WHERE { ?x foaf:knows ?y . }",
      bed.storage_addrs().front(), nullptr);
  EXPECT_LE(distinct.solutions.size(), all.solutions.size());
  for (const sparql::Binding& b : distinct.solutions.rows()) {
    EXPECT_EQ(b.size(), 1u);
    EXPECT_TRUE(b.bound("y"));
  }
}

TEST(Workflow, AskQueryDistributed) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  expect_matches_oracle(bed, proc,
                        std::string(kPrologue) +
                            "ASK { ?x foaf:knows "
                            "<http://example.org/people/p0> . }",
                        bed.storage_addrs().front());
  expect_matches_oracle(bed, proc,
                        std::string(kPrologue) +
                            "ASK { ?x foaf:knows "
                            "<http://example.org/people/missing> . }",
                        bed.storage_addrs().front());
}

TEST(Workflow, ConstructQueryDistributed) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  expect_matches_oracle(bed, proc,
                        std::string(kPrologue) + R"(
      CONSTRUCT { ?y <http://example.org/ns#knownBy> ?x . }
      WHERE { ?x foaf:knows ?y . })",
                        bed.storage_addrs().front());
}

TEST(Workflow, DescribeQueryDistributed) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  expect_matches_oracle(
      bed, proc,
      std::string(kPrologue) + "DESCRIBE <http://example.org/people/p0>",
      bed.storage_addrs().front());
}

TEST(Workflow, PlanExposesOptimizedAlgebra) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  sparql::AlgebraPtr plan = proc.plan(
      std::string(kPrologue) + R"(
      SELECT ?x WHERE {
        ?x foaf:name ?n .
        FILTER regex(?n, "Smith")
      })");
  // With push_filters on, the filter is inside the BGP.
  EXPECT_EQ(plan->kind, sparql::AlgebraKind::kBgp);
  ASSERT_EQ(plan->bgp.size(), 1u);
  EXPECT_NE(plan->bgp[0].pushed_filter, nullptr);
}

TEST(Workflow, ReportTrafficIsDeltaNotCumulative) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  std::string q = std::string(kPrologue) +
                  "SELECT ?o WHERE { <http://example.org/people/p1> "
                  "foaf:knows ?o . }";
  ExecutionReport first, second;
  (void)proc.execute(q, bed.storage_addrs().front(), &first);
  (void)proc.execute(q, bed.storage_addrs().front(), &second);
  // Same query, same state: the two executions cost the same.
  EXPECT_EQ(first.traffic.messages, second.traffic.messages);
  EXPECT_EQ(first.traffic.bytes, second.traffic.bytes);
}

TEST(Workflow, ExecutionIsDeterministic) {
  workload::Testbed bed1(config());
  workload::Testbed bed2(config());
  DistributedQueryProcessor p1(bed1.overlay());
  DistributedQueryProcessor p2(bed2.overlay());
  std::string q = std::string(kPrologue) + R"(
      SELECT ?x ?y WHERE {
        ?x foaf:knows ?y .
        OPTIONAL { ?y foaf:nick ?n . }
      })";
  ExecutionReport r1, r2;
  sparql::QueryResult a = p1.execute(q, bed1.storage_addrs().front(), &r1);
  sparql::QueryResult b = p2.execute(q, bed2.storage_addrs().front(), &r2);
  EXPECT_EQ(a.solutions.rows(), b.solutions.rows());
  EXPECT_EQ(r1.traffic.messages, r2.traffic.messages);
  EXPECT_DOUBLE_EQ(r1.response_time, r2.response_time);
}

TEST(Workflow, IndexNodeCanInitiateQueries) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  net::NodeAddress index_addr =
      bed.overlay().index_nodes().begin()->second.address;
  expect_matches_oracle(bed, proc,
                        std::string(kPrologue) +
                            "SELECT ?x ?o WHERE { ?x foaf:nick ?o . }",
                        index_addr);
}

}  // namespace
}  // namespace ahsw::dqp
