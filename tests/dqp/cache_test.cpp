// The initiator-side location-row cache through the DAG engine: Zipf-skewed
// batches must cut index-category traffic without perturbing results or
// replay determinism, reports must attribute cache activity exactly, the
// planner must disclose when it planned off a cached frequency snapshot,
// and leased (hot) rows must be invalidated by owner pushes on publish.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/audit.hpp"
#include "common/rng.hpp"
#include "dqp/processor.hpp"
#include "sparql/format.hpp"
#include "workload/testbed.hpp"
#include "workload/vocab.hpp"

namespace ahsw::dqp {
namespace {

constexpr std::string_view kPrologue =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n";

workload::TestbedConfig config() {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 8;
  cfg.storage_nodes = 8;
  cfg.foaf.persons = 120;
  cfg.foaf.seed = 91;
  cfg.partition.overlap = 0.25;
  cfg.partition.seed = 92;
  cfg.overlay.seed = 93;
  return cfg;
}

/// Zipf-skewed E1/E2 point-query batch (rank 0 hottest person).
std::vector<std::string> zipf_queries(int n, double skew) {
  common::Rng rng(94);
  common::ZipfSampler zipf(config().foaf.persons, skew);
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    const std::string p = "<http://example.org/people/p" +
                          std::to_string(zipf.sample(rng)) + ">";
    if (i % 2 == 0) {
      out.push_back(std::string(kPrologue) + "SELECT ?o WHERE { " + p +
                    " foaf:knows ?o . }");
    } else {
      out.push_back(std::string(kPrologue) + "SELECT ?n ?o WHERE { " + p +
                    " foaf:name ?n . " + p + " foaf:knows ?o . }");
    }
  }
  return out;
}

/// Two hammering initiators: caches are per initiator, so a small pool is
/// what makes repeated keys actually repeat *at one node*.
std::vector<net::NodeAddress> initiators(const workload::Testbed& bed,
                                         std::size_t n) {
  std::vector<net::NodeAddress> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(bed.storage_addrs()[i % 2]);
  }
  return out;
}

std::uint64_t index_bytes(const std::vector<ExecutionReport>& reps) {
  std::uint64_t b = 0;
  for (const ExecutionReport& r : reps) {
    b += r.traffic.bytes_by[static_cast<std::size_t>(net::Category::kIndex)];
  }
  return b;
}

std::vector<std::string> tables(const BatchResult& r) {
  std::vector<std::string> out;
  for (const sparql::QueryResult& q : r.results) {
    out.push_back(sparql::to_table(q));
  }
  return out;
}

/// One batch run against `bed` with caching on or off.
BatchResult run(workload::Testbed& bed, const std::vector<std::string>& queries,
                bool cache_on) {
  ExecutionPolicy policy;
  policy.cache.enabled = cache_on;
  bed.overlay().configure_caches(policy.cache);
  DistributedQueryProcessor proc(bed.overlay(), policy);
  return proc.execute_batch(queries, initiators(bed, queries.size()));
}

TEST(LocationRowCache, CutsIndexTrafficOnZipfBatchWithIdenticalResults) {
  std::vector<std::string> queries = zipf_queries(64, 1.2);

  workload::Testbed off_bed(config());
  BatchResult off = run(off_bed, queries, /*cache_on=*/false);
  workload::Testbed on_bed(config());
  BatchResult on = run(on_bed, queries, /*cache_on=*/true);

  // Caching must be invisible to answers.
  EXPECT_EQ(tables(off), tables(on));

  // ... while cutting index-category bytes by at least 30% on this skew.
  const auto bytes_off = static_cast<double>(index_bytes(off.reports));
  const auto bytes_on = static_cast<double>(index_bytes(on.reports));
  ASSERT_GT(bytes_off, 0.0);
  EXPECT_LE(bytes_on, 0.7 * bytes_off)
      << "index bytes only dropped from " << bytes_off << " to " << bytes_on;

  overlay::CacheStats total;
  for (const ExecutionReport& r : on.reports) total.accumulate(r.cache);
  EXPECT_GT(total.hits, 0u);
  EXPECT_GT(total.insertions, 0u);

  // A cache hit is free in every category, so overall traffic shrinks too.
  net::TrafficStats sum_off, sum_on;
  for (const ExecutionReport& r : off.reports) sum_off.accumulate(r.traffic);
  for (const ExecutionReport& r : on.reports) sum_on.accumulate(r.traffic);
  EXPECT_LT(sum_on.bytes, sum_off.bytes);

  // The auditor covers the cached rows against the authoritative tables,
  // aged to the batch end (the documented staleness bound).
  check::AuditOptions opt;
  opt.now = on.makespan;
  check::AuditReport audit = check::audit(on_bed.overlay(), opt);
  EXPECT_TRUE(audit.clean()) << audit.to_string();
  EXPECT_GT(audit.cached_rows_checked, 0u);
}

TEST(LocationRowCache, ReplayIsByteIdenticalWithCacheOn) {
  std::vector<std::string> queries = zipf_queries(32, 1.0);

  workload::Testbed a(config());
  BatchResult ra = run(a, queries, /*cache_on=*/true);
  workload::Testbed b(config());
  BatchResult rb = run(b, queries, /*cache_on=*/true);

  EXPECT_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(tables(ra), tables(rb));
  ASSERT_EQ(ra.reports.size(), rb.reports.size());
  for (std::size_t i = 0; i < ra.reports.size(); ++i) {
    EXPECT_EQ(ra.reports[i].traffic.messages, rb.reports[i].traffic.messages);
    EXPECT_EQ(ra.reports[i].traffic.bytes, rb.reports[i].traffic.bytes);
    EXPECT_EQ(ra.reports[i].response_time, rb.reports[i].response_time);
    EXPECT_EQ(ra.reports[i].cache.hits, rb.reports[i].cache.hits);
    EXPECT_EQ(ra.reports[i].cache.misses, rb.reports[i].cache.misses);
  }
}

TEST(LocationRowCache, ReportsAttributeAllCacheActivity) {
  // Per-query cache deltas must sum to the overlay-wide totals: nothing
  // happens to a cache outside some query's bracketed consult/give-up path.
  std::vector<std::string> queries = zipf_queries(32, 1.2);
  workload::Testbed bed(config());
  BatchResult r = run(bed, queries, /*cache_on=*/true);

  overlay::CacheStats attributed;
  for (const ExecutionReport& rep : r.reports) attributed.accumulate(rep.cache);
  overlay::CacheStats total = bed.overlay().cache_stats_total();
  EXPECT_EQ(attributed.hits, total.hits);
  EXPECT_EQ(attributed.misses, total.misses);
  EXPECT_EQ(attributed.insertions, total.insertions);
  EXPECT_EQ(attributed.invalidations, total.invalidations);
  EXPECT_EQ(attributed.expirations, total.expirations);
  EXPECT_EQ(attributed.leases, total.leases);
}

TEST(LocationRowCache, CrossBatchReuseDisclosesStalenessInPlanNotes) {
  // The same two-pattern query twice: the second batch resolves its join
  // order from cached frequency snapshots and must say so, with the age
  // bounded by the configured TTL.
  workload::Testbed bed(config());
  ExecutionPolicy policy;
  policy.cache.enabled = true;
  bed.overlay().configure_caches(policy.cache);
  DistributedQueryProcessor proc(bed.overlay(), policy);

  const std::string q = std::string(kPrologue) +
                        "SELECT ?n ?o WHERE { <http://example.org/people/p1> "
                        "foaf:name ?n . <http://example.org/people/p1> "
                        "foaf:knows ?o . }";
  const std::vector<net::NodeAddress> from = {bed.storage_addrs().front()};

  BatchResult first = proc.execute_batch({q}, from);
  EXPECT_EQ(first.reports.front().cache.hits, 0u);

  BatchResult second = proc.execute_batch({q}, from);
  EXPECT_GT(second.reports.front().cache.hits, 0u);
  bool disclosed = false;
  for (const std::string& note : second.reports.front().plan_notes) {
    disclosed = disclosed ||
                note.find("frequency-snapshot: cached") != std::string::npos;
  }
  EXPECT_TRUE(disclosed) << "no staleness note in plan_notes";

  // The cached second run returned the same rows as the authoritative one.
  EXPECT_EQ(sparql::to_table(first.results.front()),
            sparql::to_table(second.results.front()));
}

TEST(LocationRowCache, LeasedRowInvalidatedByOwnerPushOnPublish) {
  workload::Testbed bed(config());
  ExecutionPolicy policy;
  policy.cache.enabled = true;
  policy.cache.hot_threshold = 1;  // every inserted row is leased
  bed.overlay().configure_caches(policy.cache);
  DistributedQueryProcessor proc(bed.overlay(), policy);

  const std::string q = std::string(kPrologue) +
                        "SELECT ?o WHERE { <http://example.org/people/p1> "
                        "foaf:knows ?o . }";
  const net::NodeAddress from = bed.storage_addrs().front();
  (void)proc.execute_batch({q}, {from});

  rdf::TriplePattern pat{
      rdf::Term::iri("http://example.org/people/p1"),
      rdf::Term::iri(std::string(workload::foaf::kKnows)),
      rdf::Variable{"o"}};
  const std::optional<chord::Key> key_opt = bed.overlay().row_key(pat);
  ASSERT_TRUE(key_opt.has_value());
  const chord::Key key = *key_opt;
  ASSERT_EQ(bed.overlay().cache_for(from).rows().count(key), 1u);
  ASSERT_TRUE(bed.overlay().cache_for(from).rows().at(key).leased);

  // A publish that touches the row makes the owner push an invalidation to
  // the leaseholder: the cached copy disappears without any TTL elapsing.
  std::vector<rdf::Triple> fresh = {
      {rdf::Term::iri("http://example.org/people/p1"),
       rdf::Term::iri(std::string(workload::foaf::kKnows)),
       rdf::Term::iri("http://example.org/people/p2")}};
  (void)bed.overlay().share_triples(bed.storage_addrs().back(), fresh, 0);

  EXPECT_EQ(bed.overlay().cache_for(from).rows().count(key), 0u);
  EXPECT_GE(bed.overlay().cache_for(from).stats().invalidations, 1u);
}

}  // namespace
}  // namespace ahsw::dqp
