// Shared fixture for distributed-query-processor tests: a testbed system
// plus the single-site oracle that distributed answers must match.
#pragma once

#include <gtest/gtest.h>

#include "dqp/processor.hpp"
#include "sparql/eval.hpp"
#include "workload/testbed.hpp"

namespace ahsw::dqp::testing {

inline constexpr std::string_view kPrologue =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "PREFIX ns: <http://example.org/ns#>\n";

/// Distinct, canonically ordered rows of a solution set (distributed
/// execution merges with set semantics, so comparisons are as sets).
inline sparql::SolutionSet canon(const sparql::SolutionSet& s) {
  return sparql::deduplicated(s);
}

/// Run `query` distributed from `initiator` and against the merged-store
/// oracle; EXPECT equality of the distinct solution sets.
inline void expect_matches_oracle(workload::Testbed& bed,
                                  DistributedQueryProcessor& proc,
                                  const std::string& query,
                                  net::NodeAddress initiator,
                                  ExecutionReport* report = nullptr) {
  sparql::Query q = sparql::parse_query(query);
  ExecutionReport local_report;
  sparql::QueryResult dist =
      proc.execute(q, initiator, report != nullptr ? report : &local_report);
  rdf::TripleStore merged = bed.overlay().merged_store();
  sparql::QueryResult oracle = sparql::execute_local(q, merged);

  switch (q.form) {
    case sparql::QueryForm::kAsk:
      EXPECT_EQ(dist.ask_answer, oracle.ask_answer) << query;
      break;
    case sparql::QueryForm::kConstruct:
    case sparql::QueryForm::kDescribe:
      EXPECT_EQ(dist.graph, oracle.graph) << query;
      break;
    case sparql::QueryForm::kSelect:
      EXPECT_EQ(canon(dist.solutions).rows(), canon(oracle.solutions).rows())
          << query;
      break;
  }
}

}  // namespace ahsw::dqp::testing
