// The deterministic parallel batch driver (src/dqp/parallel.cpp): with
// workers > 1 and a partition-independent workload, every observable of a
// batch — per-query results, full reports, network-wide traffic, and the
// master overlay's end state — must be byte-identical to the serial driver.
// Also pins worker-makespan attribution, the fault-broadcast path, the
// post-run replay guarantee (a second batch behaves as if the first ran
// serially), and the eligibility fallbacks.
#include <gtest/gtest.h>

#include <algorithm>

#include "dqp/parallel.hpp"
#include "dqp_test_util.hpp"
#include "fault/harness.hpp"

namespace ahsw::dqp {
namespace {

using testing::canon;
using testing::kPrologue;

workload::TestbedConfig config() {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 5;
  cfg.storage_nodes = 8;
  cfg.foaf.persons = 70;
  cfg.foaf.seed = 71;
  cfg.partition.overlap = 0.25;
  cfg.partition.seed = 72;
  cfg.overlay.seed = 73;
  return cfg;
}

/// Eight queries, one per storage node: distinct initiators keep the
/// per-initiator caches partition-independent for any worker count.
std::vector<std::string> batch_queries() {
  const char* bodies[] = {
      "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }",
      "SELECT ?x ?n WHERE { ?x foaf:name ?n . ?x foaf:nick ?k . }",
      "SELECT ?x ?y ?n WHERE { ?x foaf:knows ?y . "
      "OPTIONAL { ?y foaf:nick ?n . } }",
      "SELECT ?x WHERE { { ?x foaf:nick ?n . } UNION "
      "{ ?x foaf:mbox ?m . } }",
      "SELECT ?x ?n WHERE { ?x foaf:name ?n . FILTER regex(?n, \"a\") }",
      "ASK { ?x foaf:knows ?y . }",
      "SELECT ?o WHERE { <http://example.org/people/p1> foaf:knows ?o . }",
      "SELECT DISTINCT ?n WHERE { ?x foaf:name ?n . } ORDER BY ?n LIMIT 5",
  };
  std::vector<std::string> out;
  for (const char* b : bodies) out.push_back(std::string(kPrologue) + b);
  return out;
}

std::vector<net::NodeAddress> distinct_initiators(const workload::Testbed& bed,
                                                  std::size_t n) {
  std::vector<net::NodeAddress> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(bed.storage_addrs()[i % bed.storage_addrs().size()]);
  }
  return out;
}

void expect_stats_equal(const net::TrafficStats& a, const net::TrafficStats& b,
                        const char* what) {
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.bytes, b.bytes) << what;
  EXPECT_EQ(a.raw_bytes, b.raw_bytes) << what;
  EXPECT_EQ(a.timeouts, b.timeouts) << what;
  for (int c = 0; c < net::kCategoryCount; ++c) {
    EXPECT_EQ(a.messages_by[c], b.messages_by[c]) << what << " category " << c;
    EXPECT_EQ(a.bytes_by[c], b.bytes_by[c]) << what << " category " << c;
    EXPECT_EQ(a.timeouts_by[c], b.timeouts_by[c]) << what << " category " << c;
  }
}

/// Field-by-field report identity — byte-identical means *everything*, not
/// just the headline counters.
void expect_reports_identical(const ExecutionReport& a,
                              const ExecutionReport& b, std::size_t i) {
  expect_stats_equal(a.traffic, b.traffic, "report traffic");
  EXPECT_EQ(a.response_time, b.response_time) << i;
  EXPECT_EQ(a.index_lookups, b.index_lookups) << i;
  EXPECT_EQ(a.ring_hops, b.ring_hops) << i;
  EXPECT_EQ(a.providers_contacted, b.providers_contacted) << i;
  EXPECT_EQ(a.dead_providers_skipped, b.dead_providers_skipped) << i;
  EXPECT_EQ(a.retries, b.retries) << i;
  EXPECT_EQ(a.relookups, b.relookups) << i;
  EXPECT_EQ(a.cache.hits, b.cache.hits) << i;
  EXPECT_EQ(a.cache.misses, b.cache.misses) << i;
  EXPECT_EQ(a.cache.invalidations, b.cache.invalidations) << i;
  EXPECT_EQ(a.cache.expirations, b.cache.expirations) << i;
  EXPECT_EQ(a.cache.insertions, b.cache.insertions) << i;
  EXPECT_EQ(a.cache.leases, b.cache.leases) << i;
  EXPECT_EQ(a.complete, b.complete) << i;
  EXPECT_EQ(a.plan_notes, b.plan_notes) << i;
}

void expect_batches_identical(const BatchResult& a, const BatchResult& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  ASSERT_EQ(a.reports.size(), b.reports.size());
  EXPECT_EQ(a.makespan, b.makespan);
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].solutions.rows(), b.results[i].solutions.rows())
        << i;
    EXPECT_EQ(a.results[i].ask_answer, b.results[i].ask_answer) << i;
    EXPECT_EQ(a.results[i].graph, b.results[i].graph) << i;
    expect_reports_identical(a.reports[i], b.reports[i], i);
  }
}

struct RunOutcome {
  BatchResult batch;
  net::TrafficStats delta;       // network-wide traffic of the batch
  net::TrafficStats end_stats;   // absolute counters after the batch
};

RunOutcome run_batch(workload::Testbed& bed, int workers, bool cache_on,
                     bool reconfigure = true) {
  DistributedQueryProcessor proc(bed.overlay());
  proc.policy().cache.enabled = cache_on;
  // configure_caches clears all cache state; skip it when a later batch
  // must observe the rows merged by an earlier one.
  if (cache_on && reconfigure) {
    bed.overlay().configure_caches(proc.policy().cache);
  }
  std::vector<std::string> queries = batch_queries();
  BatchOptions opts;
  opts.workers = workers;
  const net::TrafficStats before = bed.network().stats();
  RunOutcome out;
  out.batch = proc.execute_batch(
      queries, distinct_initiators(bed, queries.size()), opts);
  out.end_stats = bed.network().stats();
  out.delta = out.end_stats.delta_since(before);
  return out;
}

TEST(ParallelBatch, ByteIdenticalToSerialAcrossWorkerCounts) {
  workload::Testbed serial_bed(config());
  RunOutcome serial = run_batch(serial_bed, /*workers=*/1, /*cache_on=*/false);
  EXPECT_TRUE(serial.batch.worker_makespans.empty());

  for (int workers : {2, 4, 8}) {
    workload::Testbed bed(config());
    RunOutcome parallel = run_batch(bed, workers, /*cache_on=*/false);
    expect_batches_identical(serial.batch, parallel.batch);
    expect_stats_equal(serial.delta, parallel.delta, "network delta");
    ASSERT_EQ(parallel.batch.worker_makespans.size(),
              static_cast<std::size_t>(workers))
        << workers;
    EXPECT_EQ(*std::max_element(parallel.batch.worker_makespans.begin(),
                                parallel.batch.worker_makespans.end()),
              parallel.batch.makespan)
        << workers;
  }
}

TEST(ParallelBatch, WorkerMakespanAttributionFollowsPartition) {
  const int workers = 4;
  workload::Testbed bed(config());
  RunOutcome r = run_batch(bed, workers, /*cache_on=*/false);
  ASSERT_EQ(r.batch.worker_makespans.size(), static_cast<std::size_t>(workers));
  // Partition rule is qid % workers: each worker's makespan is the max
  // response time over exactly its residue class.
  for (int w = 0; w < workers; ++w) {
    net::SimTime expect = 0;
    for (std::size_t qid = 0; qid < r.batch.reports.size(); ++qid) {
      if (qid % static_cast<std::size_t>(workers) ==
          static_cast<std::size_t>(w)) {
        expect = std::max(expect, r.batch.reports[qid].response_time);
      }
    }
    EXPECT_EQ(r.batch.worker_makespans[static_cast<std::size_t>(w)], expect)
        << w;
  }
}

TEST(ParallelBatch, CacheStateLogReplayMatchesSerial) {
  // With caching on, workers mutate their clones' caches; the state-log
  // replay must leave the master byte-identical to serial — checked both
  // directly (first batch identical) and through the replay guarantee
  // (an identical *second* serial batch on each system behaves identically,
  // which is only possible if cache rows, access counts and subscriptions
  // merged exactly).
  workload::Testbed serial_bed(config());
  RunOutcome serial_1 = run_batch(serial_bed, /*workers=*/1, /*cache_on=*/true);

  workload::Testbed parallel_bed(config());
  RunOutcome parallel_1 =
      run_batch(parallel_bed, /*workers=*/4, /*cache_on=*/true);

  expect_batches_identical(serial_1.batch, parallel_1.batch);
  expect_stats_equal(serial_1.delta, parallel_1.delta, "first-batch delta");
  expect_stats_equal(serial_1.end_stats, parallel_1.end_stats,
                     "absolute end stats");

  const overlay::CacheStats cs = serial_bed.overlay().cache_stats_total();
  const overlay::CacheStats cp = parallel_bed.overlay().cache_stats_total();
  EXPECT_EQ(cs.hits, cp.hits);
  EXPECT_EQ(cs.misses, cp.misses);
  EXPECT_EQ(cs.invalidations, cp.invalidations);
  EXPECT_EQ(cs.expirations, cp.expirations);
  EXPECT_EQ(cs.insertions, cp.insertions);
  EXPECT_EQ(cs.leases, cp.leases);

  // Replay guarantee: the second (serial) batch sees identical caches.
  RunOutcome serial_2 = run_batch(serial_bed, /*workers=*/1, /*cache_on=*/true,
                                  /*reconfigure=*/false);
  RunOutcome parallel_2 = run_batch(parallel_bed, /*workers=*/1,
                                    /*cache_on=*/true, /*reconfigure=*/false);
  expect_batches_identical(serial_2.batch, parallel_2.batch);
  expect_stats_equal(serial_2.delta, parallel_2.delta, "second-batch delta");
  // The second batch must differ from the first (hits where the first
  // missed) or this test would not be exercising merged cache state.
  EXPECT_NE(serial_2.delta.messages, serial_1.delta.messages);
}

/// Faulted batches: four queries whose patterns share row keys only within
/// a worker's residue class (knows on even qids, name/nick on odd), so the
/// lazy dead-provider repairs stay partition-independent at workers=2.
std::vector<std::string> fault_queries() {
  const char* bodies[] = {
      "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }",
      "SELECT ?x ?n WHERE { ?x foaf:name ?n . }",
      "ASK { ?x foaf:knows ?y . }",
      "SELECT ?x WHERE { ?x foaf:nick ?k . }",
  };
  std::vector<std::string> out;
  for (const char* b : bodies) out.push_back(std::string(kPrologue) + b);
  return out;
}

struct FaultOutcome {
  fault::FaultRunResult run;
  net::TrafficStats delta;
  BatchResult second;  // serial batch after convergence (replay guarantee)
};

FaultOutcome run_faulted(workload::Testbed& bed, int workers,
                         DistributedQueryProcessor* ext_proc = nullptr) {
  DistributedQueryProcessor own_proc(bed.overlay());
  // Traced variants pass their own processor (with a trace attached).
  DistributedQueryProcessor& proc = ext_proc != nullptr ? *ext_proc : own_proc;
  std::vector<std::string> texts = fault_queries();
  std::vector<BatchQuery> batch;
  std::vector<net::NodeAddress> inits = distinct_initiators(bed, texts.size());
  for (std::size_t i = 0; i < texts.size(); ++i) {
    batch.push_back(BatchQuery{sparql::parse_query(texts[i]), inits[i]});
  }
  // Victim: a provider that is nobody's initiator. Fails early enough to
  // hit scans, recovers + rejoins later, with a repair pass in between.
  const net::NodeAddress victim = bed.storage_addrs()[5];
  fault::FaultSchedule schedule;
  schedule.storage_fail(4.0, victim)
      .repair(500.0)
      .recover(600.0, victim)
      .rejoin(650.0, victim);

  BatchOptions opts;
  opts.workers = workers;
  FaultOutcome out;
  const net::TrafficStats before = bed.network().stats();
  out.run = fault::run_with_faults(proc, bed.overlay(), batch, schedule, opts);
  out.delta = bed.network().stats().delta_since(before);
  fault::converge(bed.overlay(), 1000.0);
  out.second = proc.execute_batch(batch, BatchOptions{});
  return out;
}

TEST(ParallelBatch, FaultBroadcastMatchesSerial) {
  workload::Testbed serial_bed(config());
  FaultOutcome serial = run_faulted(serial_bed, /*workers=*/1);

  workload::Testbed parallel_bed(config());
  FaultOutcome parallel = run_faulted(parallel_bed, /*workers=*/2);

  // The fault must actually bite, or this pins nothing.
  int skipped = 0;
  for (const ExecutionReport& rep : serial.run.batch.reports) {
    skipped += rep.dead_providers_skipped;
  }
  EXPECT_GT(skipped, 0);

  expect_batches_identical(serial.run.batch, parallel.run.batch);
  expect_stats_equal(serial.delta, parallel.delta, "faulted delta");
  EXPECT_EQ(serial.run.injection_log.applied,
            parallel.run.injection_log.applied);
  EXPECT_EQ(serial.run.injection_log.skipped,
            parallel.run.injection_log.skipped);
  EXPECT_EQ(serial.run.availability.successful,
            parallel.run.availability.successful);
  EXPECT_EQ(serial.run.availability.affected,
            parallel.run.availability.affected);

  // Replay guarantee after faults: purges, tombstones and re-attachments
  // merged onto the master leave the converged system byte-identical.
  expect_batches_identical(serial.second, parallel.second);
}

TEST(ParallelBatch, FallsBackToSerialWhenIneligible) {
  // Direct eligibility checks, each with its surfaced reason.
  BatchOptions opts;
  std::string reason;
  opts.workers = 4;
  EXPECT_TRUE(parallel_batch_eligible(opts, 8));
  EXPECT_FALSE(parallel_batch_eligible(opts, 1, &reason));
  EXPECT_EQ(reason, "single-query batch");
  opts.workers = 1;
  EXPECT_FALSE(parallel_batch_eligible(opts, 8, &reason));
  EXPECT_EQ(reason, "workers=1");
  opts.workers = 4;
  opts.service.service_ms = 1.0;
  EXPECT_FALSE(parallel_batch_eligible(opts, 8, &reason));
  EXPECT_EQ(reason, "service model on");
  opts.service.service_ms = 0.0;
  opts.injections.push_back(InjectedEvent{1.0, "noop", {}});
  EXPECT_FALSE(parallel_batch_eligible(opts, 8, &reason));
  EXPECT_EQ(reason, "injections without factory");
  opts.injection_factory = [](overlay::HybridOverlay&) {
    return std::vector<InjectedEvent>{};
  };
  EXPECT_TRUE(parallel_batch_eligible(opts, 8));

  // A batch that asked for workers but was refused runs serial
  // (worker_makespans empty — the observable marker of the serial driver)
  // and says why in every report's plan notes.
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  std::vector<std::string> queries = batch_queries();
  BatchOptions wopts;
  wopts.workers = 4;
  wopts.service.service_ms = 1.0;
  BatchResult r = proc.execute_batch(
      queries, distinct_initiators(bed, queries.size()), wopts);
  EXPECT_TRUE(r.worker_makespans.empty());
  ASSERT_EQ(r.reports.size(), queries.size());
  for (const ExecutionReport& rep : r.reports) {
    EXPECT_EQ(rep.plan_notes.back(),
              "parallel: serial fallback (service model on)");
  }

  // A serial run with workers = 1 carries no fallback note: nothing was
  // refused.
  workload::Testbed serial_bed(config());
  DistributedQueryProcessor serial_proc(serial_bed.overlay());
  BatchResult s = serial_proc.execute_batch(
      queries, distinct_initiators(serial_bed, queries.size()),
      BatchOptions{});
  for (const ExecutionReport& rep : s.reports) {
    for (const std::string& note : rep.plan_notes) {
      EXPECT_EQ(note.find("serial fallback"), std::string::npos);
    }
  }
}

/// Structural + counter identity of two span subtrees (field-by-field —
/// byte-identical means the rendered trace, EXPLAIN and every per-span
/// traffic figure agree, not just the tree shape).
void expect_subtrees_identical(const obs::QueryTrace& a, obs::SpanId ia,
                               const obs::QueryTrace& b, obs::SpanId ib) {
  const obs::Span& sa = a.span(ia);
  const obs::Span& sb = b.span(ib);
  EXPECT_EQ(sa.kind, sb.kind);
  EXPECT_EQ(sa.label, sb.label);
  EXPECT_EQ(sa.site, sb.site);
  EXPECT_EQ(sa.begin, sb.begin);
  EXPECT_EQ(sa.end, sb.end);
  EXPECT_EQ(sa.messages, sb.messages) << sa.label;
  EXPECT_EQ(sa.bytes, sb.bytes) << sa.label;
  EXPECT_EQ(sa.timeouts, sb.timeouts) << sa.label;
  for (int c = 0; c < net::kCategoryCount; ++c) {
    EXPECT_EQ(sa.messages_by[c], sb.messages_by[c]) << sa.label;
    EXPECT_EQ(sa.bytes_by[c], sb.bytes_by[c]) << sa.label;
    EXPECT_EQ(sa.timeouts_by[c], sb.timeouts_by[c]) << sa.label;
  }
  EXPECT_EQ(sa.peers, sb.peers) << sa.label;
  ASSERT_EQ(sa.children.size(), sb.children.size()) << sa.label;
  for (std::size_t i = 0; i < sa.children.size(); ++i) {
    expect_subtrees_identical(a, sa.children[i], b, sb.children[i]);
  }
}

void expect_traces_identical(const obs::QueryTrace& a,
                             const std::vector<obs::SpanId>& roots_a,
                             const obs::QueryTrace& b,
                             const std::vector<obs::SpanId>& roots_b) {
  ASSERT_EQ(roots_a.size(), roots_b.size());
  ASSERT_EQ(a.roots().size(), b.roots().size());
  for (std::size_t q = 0; q < roots_a.size(); ++q) {
    ASSERT_NE(roots_a[q], obs::kNoSpan) << q;
    ASSERT_NE(roots_b[q], obs::kNoSpan) << q;
    expect_subtrees_identical(a, roots_a[q], b, roots_b[q]);
  }
  EXPECT_EQ(a.unattributed_messages(), b.unattributed_messages());
  EXPECT_EQ(a.unattributed_bytes(), b.unattributed_bytes());
  EXPECT_EQ(a.unattributed_timeouts(), b.unattributed_timeouts());
}

TEST(ParallelBatch, TracedBatchByteIdenticalAcrossWorkerCounts) {
  // The lifted fallback: traced batches take the parallel path, workers
  // record private span forests, and the master grafts them back in query
  // order — span trees, EXPLAIN plan notes, reports and traffic all
  // byte-identical to a traced serial run.
  workload::Testbed serial_bed(config());
  DistributedQueryProcessor serial_proc(serial_bed.overlay());
  obs::QueryTrace serial_trace;
  serial_proc.set_trace(&serial_trace);
  std::vector<std::string> queries = batch_queries();
  const net::TrafficStats serial_before = serial_bed.network().stats();
  BatchResult serial = serial_proc.execute_batch(
      queries, distinct_initiators(serial_bed, queries.size()),
      BatchOptions{});
  const net::TrafficStats serial_delta =
      serial_bed.network().stats().delta_since(serial_before);
  serial_proc.set_trace(nullptr);
  // Traced runs must actually carry their EXPLAIN tree, or the plan-note
  // comparison below pins nothing.
  ASSERT_GT(serial.reports[0].plan_notes.size(), 0u);

  for (int workers : {2, 4, 8}) {
    workload::Testbed bed(config());
    DistributedQueryProcessor proc(bed.overlay());
    obs::QueryTrace trace;
    proc.set_trace(&trace);
    BatchOptions opts;
    opts.workers = workers;
    const net::TrafficStats before = bed.network().stats();
    BatchResult parallel = proc.execute_batch(
        queries, distinct_initiators(bed, queries.size()), opts);
    const net::TrafficStats delta = bed.network().stats().delta_since(before);
    proc.set_trace(nullptr);

    // The parallel driver must actually have run.
    ASSERT_EQ(parallel.worker_makespans.size(),
              static_cast<std::size_t>(workers))
        << workers;
    expect_batches_identical(serial, parallel);
    expect_stats_equal(serial_delta, delta, "traced network delta");
    expect_traces_identical(serial_trace, serial.root_spans, trace,
                            parallel.root_spans);
  }
}

TEST(ParallelBatch, TracedFaultedBatchMatchesSerial) {
  // Tracing composes with the fault-broadcast path: worker-side injection
  // applications land outside any span of the private traces and are
  // discarded; the master's replay charges them once against the caller's
  // trace, exactly like the serial event loop.
  workload::Testbed serial_bed(config());
  DistributedQueryProcessor serial_proc(serial_bed.overlay());
  obs::QueryTrace serial_trace;
  serial_proc.set_trace(&serial_trace);
  FaultOutcome serial = run_faulted(serial_bed, /*workers=*/1, &serial_proc);
  serial_proc.set_trace(nullptr);

  workload::Testbed parallel_bed(config());
  DistributedQueryProcessor parallel_proc(parallel_bed.overlay());
  obs::QueryTrace parallel_trace;
  parallel_proc.set_trace(&parallel_trace);
  FaultOutcome parallel = run_faulted(parallel_bed, /*workers=*/2,
                                      &parallel_proc);
  parallel_proc.set_trace(nullptr);

  int skipped = 0;
  for (const ExecutionReport& rep : serial.run.batch.reports) {
    skipped += rep.dead_providers_skipped;
  }
  EXPECT_GT(skipped, 0);

  ASSERT_EQ(parallel.run.batch.worker_makespans.size(), 2u);
  expect_batches_identical(serial.run.batch, parallel.run.batch);
  expect_stats_equal(serial.delta, parallel.delta, "traced faulted delta");
  // The faulted batch's span forest is the first batch_size roots; the
  // post-convergence serial batch appended more to both traces.
  expect_traces_identical(serial_trace, serial.run.batch.root_spans,
                          parallel_trace, parallel.run.batch.root_spans);
  // Injections charge outside any span: both traces must agree on the
  // unattributed remainder, and it must be non-zero or the shielding
  // contract above went untested.
  EXPECT_GT(serial_trace.unattributed_messages(), 0u);
}

}  // namespace
}  // namespace ahsw::dqp
