// Primitive SPARQL queries (Sect. IV-C): correctness of all eight triple-
// pattern shapes under every strategy, and the traffic/response-time
// tradeoff the paper predicts between Basic and the chain optimizations.
#include <gtest/gtest.h>

#include "dqp_test_util.hpp"
#include "workload/vocab.hpp"

namespace ahsw::dqp {
namespace {

using optimizer::PrimitiveStrategy;
using testing::expect_matches_oracle;
using testing::kPrologue;

workload::TestbedConfig small_config() {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 5;
  cfg.storage_nodes = 6;
  cfg.foaf.persons = 80;
  cfg.foaf.seed = 11;
  cfg.partition.overlap = 0.25;  // some triples shared by two providers
  cfg.partition.seed = 12;
  return cfg;
}

struct ShapeStrategyCase {
  const char* query;
  PrimitiveStrategy strategy;
};

class PrimitiveShapes
    : public ::testing::TestWithParam<ShapeStrategyCase> {};

TEST_P(PrimitiveShapes, DistributedMatchesOracle) {
  workload::Testbed bed(small_config());
  ExecutionPolicy policy;
  policy.primitive = GetParam().strategy;
  DistributedQueryProcessor proc(bed.overlay(), policy);
  expect_matches_oracle(bed, proc,
                        std::string(kPrologue) + GetParam().query,
                        bed.storage_addrs().front());
}

// One query per bound-position shape; p0 is the most popular person.
constexpr const char* kShapeQueries[] = {
    // (s, p, o) fully bound -> ASK-like select
    "SELECT ?x WHERE { <http://example.org/people/p1> foaf:knows "
    "<http://example.org/people/p0> . }",
    // (s, p, ?o)
    "SELECT ?o WHERE { <http://example.org/people/p1> foaf:knows ?o . }",
    // (s, ?p, o)
    "SELECT ?p WHERE { <http://example.org/people/p1> ?p "
    "<http://example.org/people/p0> . }",
    // (?s, p, o)
    "SELECT ?x WHERE { ?x foaf:knows <http://example.org/people/p0> . }",
    // (s, ?p, ?o)
    "SELECT ?p ?o WHERE { <http://example.org/people/p3> ?p ?o . }",
    // (?s, p, ?o)
    "SELECT ?x ?o WHERE { ?x foaf:nick ?o . }",
    // (?s, ?p, o)
    "SELECT ?x ?p WHERE { ?x ?p <http://example.org/people/p0> . }",
    // (?s, ?p, ?o) -> broadcast / flooding
    "SELECT ?s ?p ?o WHERE { ?s ?p ?o . }",
};

std::vector<ShapeStrategyCase> all_cases() {
  std::vector<ShapeStrategyCase> out;
  for (const char* q : kShapeQueries) {
    for (PrimitiveStrategy s :
         {PrimitiveStrategy::kBasic, PrimitiveStrategy::kChain,
          PrimitiveStrategy::kFrequencyChain}) {
      out.push_back({q, s});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(EightShapesThreeStrategies, PrimitiveShapes,
                         ::testing::ValuesIn(all_cases()));

/// Helper: run one query under a strategy and return its report.
ExecutionReport run_with(workload::Testbed& bed, PrimitiveStrategy s,
                         const std::string& query) {
  ExecutionPolicy policy;
  policy.primitive = s;
  DistributedQueryProcessor proc(bed.overlay(), policy);
  ExecutionReport rep;
  (void)proc.execute(query, bed.storage_addrs().front(), &rep);
  return rep;
}

TEST(PrimitiveTradeoffs, BasicHasLowerResponseTimeThanChains) {
  // Sect. IV-C: "the basic query processing trades transmission costs for a
  // low response time" — parallel scatter/gather beats a sequential chain.
  workload::Testbed bed(small_config());
  std::string q = std::string(kPrologue) +
                  "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }";
  ExecutionReport basic = run_with(bed, PrimitiveStrategy::kBasic, q);
  ExecutionReport chain = run_with(bed, PrimitiveStrategy::kChain, q);
  ASSERT_GT(basic.providers_contacted, 2);
  EXPECT_LT(basic.response_time, chain.response_time);
}

std::uint64_t data_bytes(const ExecutionReport& r) {
  return r.traffic.bytes_by[static_cast<std::size_t>(net::Category::kData)] +
         r.traffic.bytes_by[static_cast<std::size_t>(net::Category::kResult)];
}

TEST(PrimitiveTradeoffs, FrequencyChainNoHeavierThanPlainChain) {
  // Visiting providers in ascending frequency minimizes the cumulative
  // size of the travelling merged set, so the frequency chain never ships
  // more than an arbitrarily ordered chain.
  workload::TestbedConfig cfg = small_config();
  cfg.foaf.popularity_skew = 1.2;
  workload::Testbed bed(cfg);
  std::string q =
      std::string(kPrologue) +
      "SELECT ?x WHERE { ?x foaf:knows <http://example.org/people/p0> . }";
  ExecutionReport chain = run_with(bed, PrimitiveStrategy::kChain, q);
  ExecutionReport freq = run_with(bed, PrimitiveStrategy::kFrequencyChain, q);
  ASSERT_GT(chain.providers_contacted, 1);
  EXPECT_LE(data_bytes(freq), data_bytes(chain));
}

TEST(PrimitiveTradeoffs, FrequencyChainBeatsBasicUnderSkew) {
  // Sect. IV-C further optimization: with a Table-I-like skew (one provider
  // holding most matches), ending the chain at the largest provider means
  // its solutions travel once (straight to the initiator) instead of twice
  // (to the assembly index node, then onward), cutting total transmission.
  workload::TestbedConfig cfg;
  cfg.index_nodes = 4;
  cfg.storage_nodes = 3;
  cfg.foaf.persons = 0;  // hand-built data below
  workload::Testbed bed(cfg);

  rdf::Term knows = rdf::Term::iri(std::string(workload::foaf::kKnows));
  rdf::Term target = rdf::Term::iri("http://example.org/people/p0");
  auto share = [&](std::size_t node, int count, const std::string& tag) {
    std::vector<rdf::Triple> triples;
    for (int i = 0; i < count; ++i) {
      triples.push_back({rdf::Term::iri("http://example.org/people/" + tag +
                                        std::to_string(i)),
                         knows, target});
    }
    bed.overlay().share_triples(bed.storage_addrs()[node], triples, 0);
  };
  share(0, 2, "a");    // small
  share(1, 4, "b");    // medium
  share(2, 60, "c");   // the D3-style heavyweight
  bed.network().reset_stats();

  std::string q =
      std::string(kPrologue) +
      "SELECT ?x WHERE { ?x foaf:knows <http://example.org/people/p0> . }";
  ExecutionReport basic = run_with(bed, PrimitiveStrategy::kBasic, q);
  ExecutionReport freq = run_with(bed, PrimitiveStrategy::kFrequencyChain, q);
  ASSERT_EQ(basic.providers_contacted, 3);
  EXPECT_LT(data_bytes(freq), data_bytes(basic));
  // The flip side of the paper's tradeoff: the chain is sequential, so its
  // response time is the price paid for the traffic reduction.
  EXPECT_GE(freq.response_time, basic.response_time);
}

TEST(PrimitiveTradeoffs, ChainVisitsEveryProviderOnce) {
  workload::Testbed bed(small_config());
  std::string q = std::string(kPrologue) +
                  "SELECT ?x ?o WHERE { ?x foaf:mbox ?o . }";
  ExecutionReport rep = run_with(bed, PrimitiveStrategy::kChain, q);
  // Every live provider of the P-key row runs the sub-query exactly once.
  auto loc = bed.overlay().locate(
      bed.storage_addrs().front(),
      rdf::TriplePattern{rdf::Variable{"x"},
                         rdf::Term::iri(std::string(workload::foaf::kMbox)),
                         rdf::Variable{"o"}},
      0);
  EXPECT_EQ(rep.providers_contacted, static_cast<int>(loc.providers.size()));
}

TEST(PrimitiveTradeoffs, EmptyAnswerCostsOnlyIndexTraffic) {
  workload::Testbed bed(small_config());
  ExecutionPolicy policy;
  DistributedQueryProcessor proc(bed.overlay(), policy);
  ExecutionReport rep;
  sparql::QueryResult r = proc.execute(
      std::string(kPrologue) +
          "SELECT ?x WHERE { ?x foaf:knows <http://example.org/people/"
          "nonexistent> . }",
      bed.storage_addrs().front(), &rep);
  EXPECT_TRUE(r.solutions.empty());
  EXPECT_EQ(rep.providers_contacted, 0);
  EXPECT_EQ(
      rep.traffic.bytes_by[static_cast<std::size_t>(net::Category::kData)],
      0u);
  EXPECT_GT(rep.index_lookups, 0);
}

TEST(PrimitiveTradeoffs, ReportCountsRingHops) {
  workload::Testbed bed(small_config());
  DistributedQueryProcessor proc(bed.overlay());
  ExecutionReport rep;
  (void)proc.execute(std::string(kPrologue) +
                         "SELECT ?o WHERE { <http://example.org/people/p1> "
                         "foaf:knows ?o . }",
                     bed.storage_addrs().front(), &rep);
  EXPECT_EQ(rep.index_lookups, 1);
  EXPECT_GE(rep.ring_hops, 0);
  EXPECT_GT(rep.traffic.messages, 0u);
  EXPECT_GT(rep.response_time, 0.0);
  EXPECT_TRUE(rep.complete);
}

TEST(PrimitiveTradeoffs, InitiatorCanBeAnyStorageNode) {
  workload::Testbed bed(small_config());
  DistributedQueryProcessor proc(bed.overlay());
  std::string q = std::string(kPrologue) +
                  "SELECT ?o WHERE { <http://example.org/people/p2> "
                  "foaf:knows ?o . }";
  sparql::QueryResult first =
      proc.execute(q, bed.storage_addrs().front(), nullptr);
  sparql::QueryResult last =
      proc.execute(q, bed.storage_addrs().back(), nullptr);
  EXPECT_EQ(testing::canon(first.solutions).rows(),
            testing::canon(last.solutions).rows());
}

}  // namespace
}  // namespace ahsw::dqp
