// Randomized nested-query fuzzing: generates WHERE clauses with nested
// OPTIONAL / UNION / FILTER structure (depth <= 3) over the FOAF vocabulary
// and checks distributed execution against the single-site oracle. This
// covers algebra shapes far beyond the paper's five example classes.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dqp_test_util.hpp"
#include "workload/vocab.hpp"

namespace ahsw::dqp {
namespace {

using testing::expect_matches_oracle;

/// Random triple pattern over FOAF predicates; variables drawn from a small
/// pool so that nested blocks share variables with their parents.
std::string random_pattern(common::Rng& rng) {
  constexpr std::array kVars = {"?a", "?b", "?c", "?d"};
  constexpr std::array kPreds = {"foaf:knows", "foaf:name", "foaf:nick",
                                 "foaf:age", "foaf:mbox",
                                 "ns:knowsNothingAbout"};
  std::string s = kVars[rng.below(kVars.size())];
  std::string p = kPreds[rng.below(kPreds.size())];
  std::string o;
  switch (rng.below(4)) {
    case 0:
      o = "<http://example.org/people/p" + std::to_string(rng.below(40)) +
          ">";
      break;
    default:
      o = kVars[rng.below(kVars.size())];
  }
  return s + " " + p + " " + o + " . ";
}

std::string random_filter(common::Rng& rng) {
  switch (rng.below(3)) {
    case 0:
      return "FILTER(bound(?b)) ";
    case 1:
      return "FILTER(isIRI(?a)) ";
    default:
      return "FILTER(!(?a = ?b)) ";
  }
}

std::string random_group(common::Rng& rng, int depth) {
  std::string out;
  int elements = 1 + static_cast<int>(rng.below(2));
  for (int i = 0; i < elements; ++i) out += random_pattern(rng);
  if (depth > 0) {
    switch (rng.below(4)) {
      case 0:
        out += "OPTIONAL { " + random_group(rng, depth - 1) + "} ";
        break;
      case 1:
        out += "{ " + random_group(rng, depth - 1) + "} UNION { " +
               random_group(rng, depth - 1) + "} ";
        break;
      case 2:
        out += random_filter(rng);
        break;
      default:
        break;  // plain BGP
    }
  }
  return out;
}

std::string random_query(common::Rng& rng) {
  return "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
         "PREFIX ns: <http://example.org/ns#>\n"
         "SELECT * WHERE { " +
         random_group(rng, 3) + "}";
}

class RandomNested : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNested, DistributedMatchesOracle) {
  const std::uint64_t seed = GetParam();
  workload::TestbedConfig cfg;
  cfg.index_nodes = 4;
  cfg.storage_nodes = 5;
  cfg.foaf.persons = 40;  // small: nested cartesian shapes can explode
  cfg.foaf.knows_per_person = 1.5;
  cfg.foaf.seed = seed;
  cfg.partition.seed = seed + 1;
  cfg.partition.overlap = 0.2;
  workload::Testbed bed(cfg);

  common::Rng rng(seed * 31 + 7);
  ExecutionPolicy policy;
  policy.adaptive = seed % 2 == 0;
  DistributedQueryProcessor proc(bed.overlay(), policy);

  for (std::size_t i = 0; i < 8; ++i) {
    std::string q = random_query(rng);
    SCOPED_TRACE(q);
    expect_matches_oracle(bed, proc, q,
                          bed.storage_addrs()[i % bed.storage_addrs().size()]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNested,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace ahsw::dqp
