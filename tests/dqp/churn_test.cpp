// Node departure and failure during query processing (Sect. III-C/III-D):
// storage-node crashes with lazy location-table repair, index-node crashes
// masked by replication or repaired by republication, graceful departures.
#include <gtest/gtest.h>

#include "dqp_test_util.hpp"
#include "workload/vocab.hpp"

namespace ahsw::dqp {
namespace {

using testing::canon;
using testing::kPrologue;

workload::TestbedConfig config(int replication = 1) {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 5;
  cfg.storage_nodes = 6;
  cfg.overlay.replication_factor = replication;
  cfg.foaf.persons = 70;
  cfg.foaf.seed = 51;
  cfg.partition.seed = 52;
  return cfg;
}

const std::string kQuery = std::string(kPrologue) +
                           "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }";

TEST(Churn, StorageFailureYieldsLiveDataAnswer) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  net::NodeAddress victim = bed.storage_addrs()[2];
  bed.overlay().storage_node_fail(victim);

  ExecutionReport rep;
  sparql::QueryResult r =
      proc.execute(kQuery, bed.storage_addrs().front(), &rep);
  EXPECT_GT(rep.dead_providers_skipped, 0);
  EXPECT_GT(rep.traffic.timeouts, 0u);

  // The answer equals the oracle over the *live* nodes' data.
  sparql::QueryResult oracle = sparql::execute_local(
      sparql::parse_query(kQuery), bed.overlay().merged_store());
  EXPECT_EQ(canon(r.solutions).rows(), canon(oracle.solutions).rows());
}

TEST(Churn, LazyRepairRemovesStaleEntriesAfterFirstQuery) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  net::NodeAddress victim = bed.storage_addrs()[2];
  bed.overlay().storage_node_fail(victim);

  ExecutionReport first, second;
  (void)proc.execute(kQuery, bed.storage_addrs().front(), &first);
  (void)proc.execute(kQuery, bed.storage_addrs().front(), &second);
  // Sect. III-D: after the timeout-triggered repair, the second run no
  // longer trips over the corpse.
  EXPECT_GT(first.dead_providers_skipped, 0);
  EXPECT_EQ(second.dead_providers_skipped, 0);
  EXPECT_LT(second.response_time, first.response_time);
}

TEST(Churn, ChainSurvivesDeadHeadProvider) {
  // The frequency chain starts at the smallest provider; if that node is
  // dead, the index node detects the timeout and forwards past it. The
  // answer must equal the live oracle and the result must not be "located"
  // at a corpse.
  workload::TestbedConfig cfg;
  cfg.index_nodes = 4;
  cfg.storage_nodes = 4;
  cfg.foaf.persons = 0;
  workload::Testbed bed(cfg);
  rdf::Term knows = rdf::Term::iri(std::string(workload::foaf::kKnows));
  rdf::Term target = rdf::Term::iri("http://example.org/people/p0");
  auto share = [&](std::size_t node, int count, const std::string& tag) {
    std::vector<rdf::Triple> triples;
    for (int i = 0; i < count; ++i) {
      triples.push_back({rdf::Term::iri("http://example.org/people/" + tag +
                                        std::to_string(i)),
                         knows, target});
    }
    bed.overlay().share_triples(bed.storage_addrs()[node], triples, 0);
  };
  share(0, 1, "small");   // chain head (smallest frequency)
  share(1, 5, "medium");
  share(2, 20, "large");  // chain end
  bed.overlay().storage_node_fail(bed.storage_addrs()[0]);

  ExecutionPolicy policy;
  policy.primitive = optimizer::PrimitiveStrategy::kFrequencyChain;
  DistributedQueryProcessor proc(bed.overlay(), policy);
  ExecutionReport rep;
  sparql::QueryResult r = proc.execute(
      std::string(kPrologue) +
          "SELECT ?x WHERE { ?x foaf:knows <http://example.org/people/p0> . "
          "}",
      bed.storage_addrs()[3], &rep);
  EXPECT_EQ(r.solutions.size(), 25u);  // medium + large survive
  EXPECT_EQ(rep.dead_providers_skipped, 1);
  EXPECT_GT(rep.traffic.timeouts, 0u);
}

TEST(Churn, GracefulStorageLeaveNeedsNoTimeouts) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  bed.overlay().storage_node_leave(bed.storage_addrs()[2], 0);

  ExecutionReport rep;
  sparql::QueryResult r =
      proc.execute(kQuery, bed.storage_addrs().front(), &rep);
  EXPECT_EQ(rep.dead_providers_skipped, 0);
  EXPECT_EQ(rep.traffic.timeouts, 0u);
  sparql::QueryResult oracle = sparql::execute_local(
      sparql::parse_query(kQuery), bed.overlay().merged_store());
  EXPECT_EQ(canon(r.solutions).rows(), canon(oracle.solutions).rows());
}

TEST(Churn, IndexFailureWithReplicationKeepsAnswersComplete) {
  workload::Testbed bed(config(/*replication=*/2));
  DistributedQueryProcessor proc(bed.overlay());
  sparql::QueryResult before =
      proc.execute(kQuery, bed.storage_addrs().front(), nullptr);

  chord::Key victim = bed.overlay().index_nodes().begin()->first;
  bed.overlay().index_node_fail(victim);
  bed.overlay().repair(0);
  bed.overlay().ring().fix_all_fingers_oracle();

  sparql::QueryResult after =
      proc.execute(kQuery, bed.storage_addrs().front(), nullptr);
  EXPECT_EQ(canon(before.solutions).rows(), canon(after.solutions).rows());
}

TEST(Churn, IndexFailureWithoutReplicationLosesRowsUntilRepublish) {
  workload::Testbed bed(config(/*replication=*/1));
  DistributedQueryProcessor proc(bed.overlay());
  sparql::QueryResult before =
      proc.execute(kQuery, bed.storage_addrs().front(), nullptr);
  ASSERT_FALSE(before.solutions.empty());

  // Fail the index node owning the foaf:knows P-key row.
  rdf::TriplePattern knows_pattern{
      rdf::Variable{"x"}, rdf::Term::iri(std::string(workload::foaf::kKnows)),
      rdf::Variable{"o"}};
  auto loc =
      bed.overlay().locate(bed.storage_addrs().front(), knows_pattern, 0);
  ASSERT_TRUE(loc.ok);
  bed.overlay().index_node_fail(loc.index_node);
  bed.overlay().repair(0);
  bed.overlay().ring().fix_all_fingers_oracle();

  sparql::QueryResult degraded =
      proc.execute(kQuery, bed.storage_addrs().front(), nullptr);
  EXPECT_TRUE(degraded.solutions.empty());  // the row died with its owner

  bed.overlay().republish_all(0);
  sparql::QueryResult restored =
      proc.execute(kQuery, bed.storage_addrs().front(), nullptr);
  EXPECT_EQ(canon(before.solutions).rows(),
            canon(restored.solutions).rows());
}

TEST(Churn, GracefulIndexLeavePreservesAnswers) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  sparql::QueryResult before =
      proc.execute(kQuery, bed.storage_addrs().front(), nullptr);

  chord::Key leaver = std::next(bed.overlay().index_nodes().begin())->first;
  bed.overlay().index_node_leave(leaver, 0);
  bed.overlay().ring().fix_all_fingers_oracle();

  sparql::QueryResult after =
      proc.execute(kQuery, bed.storage_addrs().front(), nullptr);
  EXPECT_EQ(canon(before.solutions).rows(), canon(after.solutions).rows());
}

TEST(Churn, NewIndexNodeJoinPreservesAnswers) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  sparql::QueryResult before =
      proc.execute(kQuery, bed.storage_addrs().front(), nullptr);

  for (int i = 0; i < 3; ++i) bed.overlay().add_index_node(0);
  bed.overlay().ring().fix_all_fingers_oracle();

  sparql::QueryResult after =
      proc.execute(kQuery, bed.storage_addrs().front(), nullptr);
  EXPECT_EQ(canon(before.solutions).rows(), canon(after.solutions).rows());
}

TEST(Churn, QueriesSurviveCombinedChurn) {
  workload::Testbed bed(config(/*replication=*/3));
  DistributedQueryProcessor proc(bed.overlay());

  // A storm: one index crash, one graceful index leave, one storage crash,
  // one new index join — then every query class still matches the live
  // oracle.
  auto index_it = bed.overlay().index_nodes().begin();
  chord::Key crash = index_it->first;
  chord::Key leave = std::next(index_it)->first;
  bed.overlay().index_node_fail(crash);
  bed.overlay().repair(0);
  bed.overlay().index_node_leave(leave, 0);
  bed.overlay().storage_node_fail(bed.storage_addrs()[4]);
  bed.overlay().add_index_node(0);
  bed.overlay().ring().fix_all_fingers_oracle();

  for (const char* q :
       {"SELECT ?x ?o WHERE { ?x foaf:knows ?o . }",
        "SELECT ?x ?y WHERE { ?x foaf:knows ?y . OPTIONAL { ?y foaf:nick "
        "?n . } }",
        "SELECT ?x WHERE { { ?x foaf:nick ?n . } UNION { ?x foaf:mbox ?m . "
        "} }"}) {
    std::string query = std::string(kPrologue) + q;
    sparql::QueryResult dist =
        proc.execute(query, bed.storage_addrs().front(), nullptr);
    sparql::QueryResult oracle = sparql::execute_local(
        sparql::parse_query(query), bed.overlay().merged_store());
    EXPECT_EQ(canon(dist.solutions).rows(), canon(oracle.solutions).rows())
        << q;
  }
}

}  // namespace
}  // namespace ahsw::dqp
