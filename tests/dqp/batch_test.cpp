// Concurrent multi-query execution through the shared event scheduler:
// per-query results still match the oracle, per-query traffic attribution
// conserves the network-wide delta (I5 per root span), identical seeds
// replay byte-identically, the batch makespan beats serial execution, and
// the per-node service model only ever delays cross-query work.
#include <gtest/gtest.h>

#include <numeric>

#include "check/audit.hpp"
#include "dqp_test_util.hpp"

namespace ahsw::dqp {
namespace {

using testing::canon;
using testing::kPrologue;

workload::TestbedConfig config() {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 5;
  cfg.storage_nodes = 8;
  cfg.foaf.persons = 70;
  cfg.foaf.seed = 71;
  cfg.partition.overlap = 0.25;
  cfg.partition.seed = 72;
  cfg.overlay.seed = 73;
  return cfg;
}

/// Eight queries spanning the plan classes, one initiator each.
std::vector<std::string> batch_queries() {
  const char* bodies[] = {
      "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }",
      "SELECT ?x ?n WHERE { ?x foaf:name ?n . ?x foaf:nick ?k . }",
      "SELECT ?x ?y ?n WHERE { ?x foaf:knows ?y . "
      "OPTIONAL { ?y foaf:nick ?n . } }",
      "SELECT ?x WHERE { { ?x foaf:nick ?n . } UNION "
      "{ ?x foaf:mbox ?m . } }",
      "SELECT ?x ?n WHERE { ?x foaf:name ?n . FILTER regex(?n, \"a\") }",
      "ASK { ?x foaf:knows ?y . }",
      "SELECT ?o WHERE { <http://example.org/people/p1> foaf:knows ?o . }",
      "SELECT DISTINCT ?n WHERE { ?x foaf:name ?n . } ORDER BY ?n LIMIT 5",
  };
  std::vector<std::string> out;
  for (const char* b : bodies) out.push_back(std::string(kPrologue) + b);
  return out;
}

std::vector<net::NodeAddress> initiators(const workload::Testbed& bed,
                                         std::size_t n) {
  std::vector<net::NodeAddress> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(bed.storage_addrs()[i % bed.storage_addrs().size()]);
  }
  return out;
}

TEST(Batch, ResultsMatchOracleAndTrafficConserves) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  obs::QueryTrace trace;
  proc.set_trace(&trace);

  std::vector<std::string> queries = batch_queries();
  const net::TrafficStats before = bed.network().stats();
  BatchResult r =
      proc.execute_batch(queries, initiators(bed, queries.size()));
  const net::TrafficStats delta = bed.network().stats().delta_since(before);

  ASSERT_EQ(r.results.size(), queries.size());
  ASSERT_EQ(r.reports.size(), queries.size());
  ASSERT_EQ(r.root_spans.size(), queries.size());

  // Every query's answer equals the single-site oracle.
  rdf::TripleStore merged = bed.overlay().merged_store();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    sparql::Query q = sparql::parse_query(queries[i]);
    sparql::QueryResult oracle = sparql::execute_local(q, merged);
    if (q.form == sparql::QueryForm::kAsk) {
      EXPECT_EQ(r.results[i].ask_answer, oracle.ask_answer) << queries[i];
    } else {
      EXPECT_EQ(canon(r.results[i].solutions).rows(),
                canon(oracle.solutions).rows())
          << queries[i];
    }
  }

  // Per-query traffic sums exactly to the batch-wide network delta, and
  // each query's root span subtree carries exactly its reported traffic.
  net::TrafficStats sum;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const net::TrafficStats& t = r.reports[i].traffic;
    sum.messages += t.messages;
    sum.bytes += t.bytes;
    sum.timeouts += t.timeouts;
    EXPECT_EQ(trace.subtree_bytes(r.root_spans[i]), t.bytes) << i;
    EXPECT_EQ(trace.subtree_messages(r.root_spans[i]), t.messages) << i;
    EXPECT_EQ(trace.subtree_timeouts(r.root_spans[i]), t.timeouts) << i;
  }
  EXPECT_EQ(sum.messages, delta.messages);
  EXPECT_EQ(sum.bytes, delta.bytes);
  EXPECT_EQ(sum.timeouts, delta.timeouts);

  // I5 over the whole interleaved trace.
  check::AuditReport audit;
  check::audit_conservation(trace, delta, audit);
  EXPECT_TRUE(audit.pristine()) << audit.to_string();

  // Makespan: the batch finishes when its slowest query does, strictly
  // before the serial sum of the same response times.
  net::SimTime max_rt = 0;
  net::SimTime sum_rt = 0;
  for (const ExecutionReport& rep : r.reports) {
    max_rt = std::max(max_rt, rep.response_time);
    sum_rt += rep.response_time;
  }
  EXPECT_EQ(r.makespan, max_rt);
  EXPECT_LT(r.makespan, sum_rt);

  // Query-id labels on the interleaved roots.
  EXPECT_EQ(trace.span(r.root_spans[0]).label.rfind("q0 ", 0), 0u);
  EXPECT_EQ(trace.span(r.root_spans[7]).label.rfind("q7 ", 0), 0u);
  proc.set_trace(nullptr);
}

/// Spans compared field-by-field (determinism must include the trace).
void expect_traces_identical(const obs::QueryTrace& a,
                             const obs::QueryTrace& b) {
  ASSERT_EQ(a.spans().size(), b.spans().size());
  for (std::size_t i = 0; i < a.spans().size(); ++i) {
    const obs::Span& x = a.spans()[i];
    const obs::Span& y = b.spans()[i];
    EXPECT_EQ(x.parent, y.parent) << i;
    EXPECT_EQ(x.kind, y.kind) << i;
    EXPECT_EQ(x.label, y.label) << i;
    EXPECT_EQ(x.site, y.site) << i;
    EXPECT_EQ(x.begin, y.begin) << i;
    EXPECT_EQ(x.end, y.end) << i;
    EXPECT_EQ(x.messages, y.messages) << i;
    EXPECT_EQ(x.bytes, y.bytes) << i;
    EXPECT_EQ(x.timeouts, y.timeouts) << i;
    EXPECT_EQ(x.children, y.children) << i;
  }
}

TEST(Batch, IdenticalSeedsReplayByteIdentically) {
  BatchOptions opts;
  opts.service.service_ms = 1.5;  // contention on, to stress event order

  auto run_once = [&](obs::QueryTrace& trace) {
    workload::Testbed bed(config());
    DistributedQueryProcessor proc(bed.overlay());
    proc.set_trace(&trace);
    std::vector<std::string> queries = batch_queries();
    BatchResult r =
        proc.execute_batch(queries, initiators(bed, queries.size()), opts);
    proc.set_trace(nullptr);
    return r;
  };

  obs::QueryTrace trace_a;
  obs::QueryTrace trace_b;
  BatchResult a = run_once(trace_a);
  BatchResult b = run_once(trace_b);

  ASSERT_EQ(a.reports.size(), b.reports.size());
  EXPECT_EQ(a.makespan, b.makespan);
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_EQ(a.results[i].solutions.rows(), b.results[i].solutions.rows());
    EXPECT_EQ(a.reports[i].response_time, b.reports[i].response_time) << i;
    EXPECT_EQ(a.reports[i].traffic.messages, b.reports[i].traffic.messages);
    EXPECT_EQ(a.reports[i].traffic.bytes, b.reports[i].traffic.bytes);
    EXPECT_EQ(a.reports[i].plan_notes, b.reports[i].plan_notes) << i;
  }
  expect_traces_identical(trace_a, trace_b);
}

TEST(Batch, ServiceModelOnlyDelaysCrossQueryWork) {
  std::vector<std::string> queries = batch_queries();

  // Baseline: no contention.
  workload::Testbed bed_a(config());
  DistributedQueryProcessor proc_a(bed_a.overlay());
  BatchResult free_run =
      proc_a.execute_batch(queries, initiators(bed_a, queries.size()));

  // Same batch under contention: traffic is untouched (queueing charges
  // time, not bytes); per-query response times only ever grow.
  BatchOptions opts;
  opts.service.service_ms = 2.0;
  workload::Testbed bed_b(config());
  DistributedQueryProcessor proc_b(bed_b.overlay());
  BatchResult busy_run =
      proc_b.execute_batch(queries, initiators(bed_b, queries.size()), opts);

  ASSERT_EQ(free_run.reports.size(), busy_run.reports.size());
  bool some_delay = false;
  for (std::size_t i = 0; i < free_run.reports.size(); ++i) {
    EXPECT_EQ(busy_run.reports[i].traffic.bytes,
              free_run.reports[i].traffic.bytes)
        << i;
    EXPECT_EQ(busy_run.reports[i].traffic.messages,
              free_run.reports[i].traffic.messages)
        << i;
    EXPECT_GE(busy_run.reports[i].response_time,
              free_run.reports[i].response_time)
        << i;
    some_delay |= busy_run.reports[i].response_time >
                  free_run.reports[i].response_time;
    EXPECT_EQ(busy_run.results[i].solutions.rows(),
              free_run.results[i].solutions.rows())
        << i;
  }
  EXPECT_TRUE(some_delay);  // eight queries on eight nodes must collide
  EXPECT_GE(busy_run.makespan, free_run.makespan);

  // A batch of one never queues on itself: the model charges nothing.
  workload::Testbed bed_c(config());
  DistributedQueryProcessor proc_c(bed_c.overlay());
  BatchResult solo = proc_c.execute_batch({queries[1]},
                                          {bed_c.storage_addrs().front()},
                                          opts);
  workload::Testbed bed_d(config());
  DistributedQueryProcessor proc_d(bed_d.overlay());
  ExecutionReport direct_rep;
  (void)proc_d.execute(queries[1], bed_d.storage_addrs().front(),
                       &direct_rep);
  EXPECT_EQ(solo.reports[0].response_time, direct_rep.response_time);
}

TEST(Batch, DeadProviderBatchStillConserves) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  bed.overlay().storage_node_fail(bed.storage_addrs()[3]);
  obs::QueryTrace trace;
  proc.set_trace(&trace);

  std::vector<std::string> queries = batch_queries();
  const net::TrafficStats before = bed.network().stats();
  BatchResult r =
      proc.execute_batch(queries, initiators(bed, queries.size()));
  const net::TrafficStats delta = bed.network().stats().delta_since(before);

  check::AuditReport audit;
  check::AuditOptions opts;
  opts.churned = true;
  check::audit_conservation(trace, delta, audit, opts);
  EXPECT_TRUE(audit.pristine()) << audit.to_string();

  std::uint64_t timeouts = std::accumulate(
      r.reports.begin(), r.reports.end(), std::uint64_t{0},
      [](std::uint64_t acc, const ExecutionReport& rep) {
        return acc + rep.traffic.timeouts;
      });
  EXPECT_GT(timeouts, 0u);
  EXPECT_EQ(timeouts, delta.timeouts);
  proc.set_trace(nullptr);
}

}  // namespace
}  // namespace ahsw::dqp
