// Golden EXPLAIN renderings: one physical plan per query class, compared
// line-for-line. These pin the compiled DAG shape (operator kinds, slot
// decomposition, overlap-aware end edges, filter pushdown into patterns)
// and the rendering contract the shell's `explain` command exposes — any
// compiler change that alters a plan must update the golden deliberately.
#include <gtest/gtest.h>

#include "dqp/physical_plan.hpp"
#include "optimizer/rewriter.hpp"
#include "sparql/ast.hpp"

namespace ahsw::dqp {
namespace {

constexpr std::string_view kPrologue =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "PREFIX ns: <http://example.org/ns#>\n";

std::vector<std::string> plan_lines(const std::string& body,
                                    ExecutionPolicy policy = {}) {
  sparql::Query q = sparql::parse_query(std::string(kPrologue) + body);
  sparql::AlgebraPtr a = sparql::translate_pattern(q.where);
  if (policy.push_filters) a = optimizer::push_filters(a);
  return compile_physical_plan(*a, policy, q.form).to_lines();
}

TEST(ExplainGolden, Primitive) {
  EXPECT_EQ(
      plan_lines("SELECT ?x ?o WHERE { ?x foaf:knows ?o . }"),
      (std::vector<std::string>{
          "#3 PostProcess [modifiers + projection @ initiator]",
          "  #2 Ship [result -> initiator]",
          "    #1 ProviderScan ?x <http://xmlns.com/foaf/0.1/knows> ?o "
          "[strategy=frequency-chain]",
          "      #0 IndexLookup ?x <http://xmlns.com/foaf/0.1/knows> ?o",
      }));
}

TEST(ExplainGolden, Conjunction) {
  // Three patterns become three join slots over shared lookups: which
  // pattern a slot runs is a runtime (frequency-order) decision, so slots
  // render positions, not patterns.
  EXPECT_EQ(
      plan_lines("SELECT ?x ?n ?o WHERE { ?x foaf:name ?n . "
                 "?x foaf:knows ?o . ?o foaf:nick ?k . }"),
      (std::vector<std::string>{
          "#7 PostProcess [modifiers + projection @ initiator]",
          "  #6 Ship [result -> initiator]",
          "    #5 ProviderScan [slot 2/3, order=frequency, "
          "strategy=frequency-chain]",
          "      #4 ProviderScan [slot 1/3, order=frequency, "
          "strategy=frequency-chain]",
          "        #3 ProviderScan [slot 0/3, order=frequency, "
          "strategy=frequency-chain]",
          "          #0 IndexLookup ?x <http://xmlns.com/foaf/0.1/name> ?n",
          "          #1 IndexLookup ?x <http://xmlns.com/foaf/0.1/knows> ?o",
          "          #2 IndexLookup ?o <http://xmlns.com/foaf/0.1/nick> ?k",
      }));
}

TEST(ExplainGolden, Optional) {
  EXPECT_EQ(
      plan_lines("SELECT ?x ?y ?n WHERE { ?x foaf:knows ?y . "
                 "OPTIONAL { ?y foaf:nick ?n . } }"),
      (std::vector<std::string>{
          "#6 PostProcess [modifiers + projection @ initiator]",
          "  #5 Ship [result -> initiator]",
          "    #4 LeftJoin [site=move-small, cond=true]",
          "      #1 ProviderScan ?x <http://xmlns.com/foaf/0.1/knows> ?y "
          "[strategy=frequency-chain]",
          "        #0 IndexLookup ?x <http://xmlns.com/foaf/0.1/knows> ?y",
          "      #3 ProviderScan ?y <http://xmlns.com/foaf/0.1/nick> ?n "
          "[strategy=frequency-chain]",
          "        #2 IndexLookup ?y <http://xmlns.com/foaf/0.1/nick> ?n",
      }));
}

TEST(ExplainGolden, Union) {
  // The right branch carries an overlap-aware end edge: its chain prefers
  // to finish at the left branch's runtime site (op #1).
  EXPECT_EQ(
      plan_lines("SELECT ?x WHERE { { ?x foaf:nick ?n . } UNION "
                 "{ ?x foaf:mbox ?m . } }"),
      (std::vector<std::string>{
          "#6 PostProcess [modifiers + projection @ initiator]",
          "  #5 Ship [result -> initiator]",
          "    #4 Union [colocate=move-small, overlap-aware ends]",
          "      #1 ProviderScan ?x <http://xmlns.com/foaf/0.1/nick> ?n "
          "[strategy=frequency-chain]",
          "        #0 IndexLookup ?x <http://xmlns.com/foaf/0.1/nick> ?n",
          "      #3 ProviderScan ?x <http://xmlns.com/foaf/0.1/mbox> ?m "
          "[strategy=frequency-chain, end@site(#1)]",
          "        #2 IndexLookup ?x <http://xmlns.com/foaf/0.1/mbox> ?m",
      }));
}

TEST(ExplainGolden, FilterPushdown) {
  // With pushdown the filter vanishes as an operator: it travels inside
  // the shipped pattern and runs at every provider.
  EXPECT_EQ(
      plan_lines("SELECT ?x ?n WHERE { ?x foaf:name ?n . "
                 "FILTER regex(?n, \"a\") }"),
      (std::vector<std::string>{
          "#3 PostProcess [modifiers + projection @ initiator]",
          "  #2 Ship [result -> initiator]",
          "    #1 ProviderScan Filter(regex(?n, \"a\"), "
          "?x <http://xmlns.com/foaf/0.1/name> ?n) "
          "[strategy=frequency-chain]",
          "      #0 IndexLookup Filter(regex(?n, \"a\"), "
          "?x <http://xmlns.com/foaf/0.1/name> ?n)",
      }));
}

TEST(ExplainGolden, FilterWithoutPushdownKeepsOperator) {
  ExecutionPolicy policy;
  policy.push_filters = false;
  std::vector<std::string> lines =
      plan_lines("SELECT ?x ?n WHERE { ?x foaf:name ?n . "
                 "FILTER regex(?n, \"a\") }",
                 policy);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[2], "    #2 Filter regex(?n, \"a\")");
}

}  // namespace
}  // namespace ahsw::dqp
