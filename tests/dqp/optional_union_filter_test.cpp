// OPTIONAL (Sect. IV-E), UNION (IV-F) and FILTER (IV-G) distributed
// processing: correctness under every join-site policy and the effects the
// paper attributes to each optimization.
#include <gtest/gtest.h>

#include "dqp_test_util.hpp"
#include "workload/vocab.hpp"

namespace ahsw::dqp {
namespace {

using optimizer::JoinSitePolicy;
using testing::expect_matches_oracle;
using testing::kPrologue;

workload::TestbedConfig config() {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 5;
  cfg.storage_nodes = 6;
  cfg.foaf.persons = 90;
  cfg.foaf.nick_fraction = 0.4;
  cfg.foaf.seed = 31;
  cfg.partition.overlap = 0.25;
  cfg.partition.seed = 32;
  return cfg;
}

// Fig. 7 (generalized: any name, nick optional).
const std::string kOptionalQuery = std::string(kPrologue) + R"(
  SELECT ?x ?y ?n WHERE {
    ?x foaf:knows ?y .
    OPTIONAL { ?y foaf:nick ?n . }
  })";

// Fig. 8.
const std::string kUnionQuery = std::string(kPrologue) + R"(
  SELECT ?x WHERE {
    { ?x foaf:nick ?n . }
    UNION
    { ?x foaf:mbox ?m . }
  })";

// Fig. 9.
const std::string kFilterOptionalQuery = std::string(kPrologue) + R"(
  SELECT ?x ?y ?z WHERE {
    ?x foaf:name ?name ;
       ns:knowsNothingAbout ?y .
    FILTER regex(?name, "Smith")
    OPTIONAL { ?y foaf:knows ?z . }
  })";

class JoinSitePolicies : public ::testing::TestWithParam<JoinSitePolicy> {};

TEST_P(JoinSitePolicies, OptionalMatchesOracle) {
  workload::Testbed bed(config());
  ExecutionPolicy policy;
  policy.join_site = GetParam();
  DistributedQueryProcessor proc(bed.overlay(), policy);
  expect_matches_oracle(bed, proc, kOptionalQuery,
                        bed.storage_addrs().front());
}

TEST_P(JoinSitePolicies, Fig9FilterOptionalMatchesOracle) {
  workload::Testbed bed(config());
  ExecutionPolicy policy;
  policy.join_site = GetParam();
  DistributedQueryProcessor proc(bed.overlay(), policy);
  expect_matches_oracle(bed, proc, kFilterOptionalQuery,
                        bed.storage_addrs()[3]);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, JoinSitePolicies,
                         ::testing::Values(JoinSitePolicy::kMoveSmall,
                                           JoinSitePolicy::kQuerySite,
                                           JoinSitePolicy::kThirdSite));

TEST(Optional, MoveSmallShipsTheSmallerOperand) {
  // Make one side far bigger than the other and check the plan went to the
  // big side's site (the Cornell & Yu rule the paper adopts).
  workload::Testbed bed(config());
  ExecutionPolicy policy;
  policy.join_site = JoinSitePolicy::kMoveSmall;
  DistributedQueryProcessor proc(bed.overlay(), policy);
  ExecutionReport rep;
  (void)proc.execute(kOptionalQuery, bed.storage_addrs().front(), &rep);
  bool saw_site_note = false;
  for (const std::string& note : rep.plan_notes) {
    if (note.find("join-site: move-small") != std::string::npos) {
      saw_site_note = true;
    }
  }
  EXPECT_TRUE(saw_site_note);
}

TEST(Optional, QuerySitePolicyShipsBothToInitiator) {
  workload::Testbed bed(config());
  ExecutionPolicy policy;
  policy.join_site = JoinSitePolicy::kQuerySite;
  DistributedQueryProcessor proc(bed.overlay(), policy);
  ExecutionReport rep;
  net::NodeAddress initiator = bed.storage_addrs().front();
  (void)proc.execute(kOptionalQuery, initiator, &rep);
  bool found = false;
  for (const std::string& note : rep.plan_notes) {
    if (note.find("query-site -> node " + std::to_string(initiator)) !=
        std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Optional, ThirdSitePicksHighestCapacityNode) {
  workload::Testbed bed(config());
  // Give one storage node outsized capacity.
  net::NodeAddress beefy = bed.storage_addrs()[4];
  bed.overlay().storage_state(beefy).capacity = 100.0;
  ExecutionPolicy policy;
  policy.join_site = JoinSitePolicy::kThirdSite;
  DistributedQueryProcessor proc(bed.overlay(), policy);
  ExecutionReport rep;
  (void)proc.execute(kOptionalQuery, bed.storage_addrs().front(), &rep);
  bool found = false;
  for (const std::string& note : rep.plan_notes) {
    if (note.find("third-site -> node " + std::to_string(beefy)) !=
        std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Optional, ChainedOptionalsLeftAssociative) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  expect_matches_oracle(bed, proc,
                        std::string(kPrologue) + R"(
      SELECT ?x ?n ?m WHERE {
        ?x foaf:knows ?y .
        OPTIONAL { ?y foaf:nick ?n . }
        OPTIONAL { ?y foaf:mbox ?m . }
      })",
                        bed.storage_addrs()[1]);
}

TEST(Union, MatchesOracleBothPolicies) {
  for (bool overlap_aware : {false, true}) {
    workload::Testbed bed(config());
    ExecutionPolicy policy;
    policy.overlap_aware_sites = overlap_aware;
    DistributedQueryProcessor proc(bed.overlay(), policy);
    expect_matches_oracle(bed, proc, kUnionQuery,
                          bed.storage_addrs().front());
  }
}

TEST(Union, Fig8ExactQueryMatchesOracle) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  expect_matches_oracle(bed, proc,
                        std::string(kPrologue) + R"(
      SELECT ?x ?y ?z WHERE {
        { ?x foaf:name "Smith" .
          ?x foaf:knows ?y . }
        UNION
        { ?x foaf:mbox <mailto:abc@example.org> .
          ?x foaf:knows ?z . }
      })",
                        bed.storage_addrs().front());
}

TEST(Union, SharedProviderSiteSavesShipping) {
  // Sect. IV-F: S1 = {D1, D3}, S2 = {D2, D3}; both chains can end at D3
  // where the union is free.
  workload::TestbedConfig cfg;
  cfg.index_nodes = 4;
  cfg.storage_nodes = 3;
  cfg.foaf.persons = 0;
  workload::Testbed bed(cfg);
  auto& ov = bed.overlay();
  rdf::Term nick = rdf::Term::iri(std::string(workload::foaf::kNick));
  rdf::Term mbox = rdf::Term::iri(std::string(workload::foaf::kMbox));
  auto person = [](int i) {
    return rdf::Term::iri("http://example.org/people/p" + std::to_string(i));
  };
  net::NodeAddress d1 = bed.storage_addrs()[0];
  net::NodeAddress d2 = bed.storage_addrs()[1];
  net::NodeAddress d3 = bed.storage_addrs()[2];
  ov.share_triples(d1, {{person(1), nick, rdf::Term::literal("a")}}, 0);
  ov.share_triples(d3, {{person(2), nick, rdf::Term::literal("b")},
                        {person(3), nick, rdf::Term::literal("c")}}, 0);
  ov.share_triples(d2, {{person(4), mbox, rdf::Term::iri("mailto:x@y")}}, 0);
  ov.share_triples(d3, {{person(5), mbox, rdf::Term::iri("mailto:z@y")},
                        {person(6), mbox, rdf::Term::iri("mailto:w@y")}}, 0);
  bed.network().reset_stats();

  auto run = [&](bool overlap_aware) {
    ExecutionPolicy policy;
    policy.overlap_aware_sites = overlap_aware;
    DistributedQueryProcessor proc(bed.overlay(), policy);
    ExecutionReport rep;
    (void)proc.execute(kUnionQuery, d1, &rep);
    return rep;
  };
  ExecutionReport naive = run(false);
  ExecutionReport aware = run(true);
  EXPECT_LE(aware.traffic.bytes, naive.traffic.bytes);
}

TEST(Filter, PushingReducesShippedData) {
  // Sect. IV-G: pushing the regex into P1 filters at the providers, so
  // non-Smith rows never cross the network.
  workload::Testbed bed(config());
  auto run = [&](bool push) {
    ExecutionPolicy policy;
    policy.push_filters = push;
    DistributedQueryProcessor proc(bed.overlay(), policy);
    ExecutionReport rep;
    (void)proc.execute(kFilterOptionalQuery, bed.storage_addrs().front(),
                       &rep);
    return rep;
  };
  ExecutionReport unpushed = run(false);
  ExecutionReport pushed = run(true);
  auto data = [](const ExecutionReport& r) {
    return r.traffic.bytes_by[static_cast<std::size_t>(net::Category::kData)];
  };
  EXPECT_LT(data(pushed), data(unpushed));
}

TEST(Filter, PushedAndUnpushedAgree) {
  workload::Testbed bed(config());
  ExecutionPolicy no_push;
  no_push.push_filters = false;
  DistributedQueryProcessor a(bed.overlay(), no_push);
  DistributedQueryProcessor b(bed.overlay());
  sparql::QueryResult ra =
      a.execute(kFilterOptionalQuery, bed.storage_addrs().front(), nullptr);
  sparql::QueryResult rb =
      b.execute(kFilterOptionalQuery, bed.storage_addrs().front(), nullptr);
  EXPECT_EQ(testing::canon(ra.solutions).rows(),
            testing::canon(rb.solutions).rows());
}

TEST(Filter, PlanNoteShowsPushedAlgebra) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  ExecutionReport rep;
  (void)proc.execute(kFilterOptionalQuery, bed.storage_addrs().front(), &rep);
  ASSERT_FALSE(rep.plan_notes.empty());
  EXPECT_NE(rep.plan_notes.front().find("Filter(regex(?name, \"Smith\")"),
            std::string::npos);
}

TEST(Filter, CrossPatternFilterEvaluatesAtCollectingNode) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  expect_matches_oracle(bed, proc,
                        std::string(kPrologue) + R"(
      SELECT ?x ?y WHERE {
        ?x foaf:age ?a .
        ?y foaf:age ?b .
        FILTER(?a < ?b - 40)
      })",
                        bed.storage_addrs().front());
}

}  // namespace
}  // namespace ahsw::dqp
