// Adaptive strategy selection (the paper's Sect. V future work implemented):
// per-pattern choice between Basic and FrequencyChain from location-table
// frequencies under a weighted traffic/latency objective.
#include <gtest/gtest.h>

#include "dqp_test_util.hpp"
#include "optimizer/planner.hpp"
#include "workload/vocab.hpp"

namespace ahsw::dqp {
namespace {

using optimizer::ObjectiveWeights;
using optimizer::PrimitiveStrategy;
using optimizer::StrategyEstimate;
using overlay::Provider;
using testing::expect_matches_oracle;
using testing::kPrologue;

const net::CostModel kCost{};

TEST(AdaptiveEstimates, EmptyProvidersYieldNothing) {
  EXPECT_TRUE(optimizer::estimate_primitive_strategies({}, kCost).empty());
}

TEST(AdaptiveEstimates, BothStrategiesEstimated) {
  std::vector<StrategyEstimate> est =
      optimizer::estimate_primitive_strategies({{1, 10}, {2, 20}}, kCost);
  ASSERT_EQ(est.size(), 2u);
  EXPECT_EQ(est[0].strategy, PrimitiveStrategy::kBasic);
  EXPECT_EQ(est[1].strategy, PrimitiveStrategy::kFrequencyChain);
  for (const StrategyEstimate& e : est) {
    EXPECT_GT(e.bytes, 0.0);
    EXPECT_GT(e.latency_ms, 0.0);
  }
}

TEST(AdaptiveEstimates, ChainLatencyGrowsWithProviders) {
  std::vector<Provider> few = {{1, 10}, {2, 10}};
  std::vector<Provider> many;
  for (net::NodeAddress a = 1; a <= 12; ++a) many.push_back({a, 10});
  auto lat = [](const std::vector<StrategyEstimate>& est,
                PrimitiveStrategy s) {
    for (const StrategyEstimate& e : est) {
      if (e.strategy == s) return e.latency_ms;
    }
    return 0.0;
  };
  double few_chain = lat(optimizer::estimate_primitive_strategies(few, kCost),
                         PrimitiveStrategy::kFrequencyChain);
  double many_chain = lat(
      optimizer::estimate_primitive_strategies(many, kCost),
      PrimitiveStrategy::kFrequencyChain);
  EXPECT_GT(many_chain, few_chain);
}

TEST(AdaptiveChoice, LatencyWeightPrefersBasicForLongChains) {
  // Pure latency objective: parallel scatter/gather beats a sequential
  // chain once the chain has enough hops to pay per-message latency on.
  // (For 2-3 providers the chain can actually be *faster* end to end —
  // the heavyweight payload travels one hop instead of two — which is why
  // this choice must be data-driven in the first place.)
  ObjectiveWeights w{0.0, 1.0};
  std::vector<Provider> providers;
  for (net::NodeAddress a = 1; a <= 8; ++a) providers.push_back({a, 10});
  EXPECT_EQ(optimizer::choose_primitive_strategy(providers, kCost, w),
            PrimitiveStrategy::kBasic);
}

TEST(AdaptiveChoice, TrafficWeightPrefersChainForSmallSkewedSets) {
  // The paper's 3-provider skewed example: the chain saves the heavyweight
  // provider's second trip.
  ObjectiveWeights w{1.0, 0.0};
  std::vector<Provider> providers = {{1, 2}, {2, 4}, {3, 60}};
  EXPECT_EQ(optimizer::choose_primitive_strategy(providers, kCost, w),
            PrimitiveStrategy::kFrequencyChain);
}

TEST(AdaptiveChoice, TrafficWeightPrefersBasicForLongChains) {
  // Many balanced providers: the accumulated union travelling k-1 hops
  // overtakes scatter/gather (the E3 crossover).
  ObjectiveWeights w{1.0, 0.0};
  std::vector<Provider> providers;
  for (net::NodeAddress a = 1; a <= 16; ++a) providers.push_back({a, 10});
  EXPECT_EQ(optimizer::choose_primitive_strategy(providers, kCost, w),
            PrimitiveStrategy::kBasic);
}

TEST(AdaptiveChoice, SingleProviderIndifferent) {
  ObjectiveWeights w{1.0, 0.0};
  PrimitiveStrategy s =
      optimizer::choose_primitive_strategy({{1, 10}}, kCost, w);
  EXPECT_TRUE(s == PrimitiveStrategy::kBasic ||
              s == PrimitiveStrategy::kFrequencyChain);
}

workload::TestbedConfig config() {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 5;
  cfg.storage_nodes = 6;
  cfg.foaf.persons = 80;
  cfg.foaf.seed = 61;
  cfg.partition.seed = 62;
  return cfg;
}

TEST(AdaptiveExecution, MatchesOracleOnMixedWorkload) {
  workload::Testbed bed(config());
  ExecutionPolicy policy;
  policy.adaptive = true;
  DistributedQueryProcessor proc(bed.overlay(), policy);
  for (const char* q :
       {"SELECT ?x ?o WHERE { ?x foaf:knows ?o . }",
        "SELECT ?x ?z WHERE { ?x foaf:knows ?z . ?x ns:knowsNothingAbout ?y "
        ". }",
        "SELECT ?x WHERE { ?x foaf:name ?n . FILTER regex(?n, \"Smith\") "
        "}"}) {
    expect_matches_oracle(bed, proc, std::string(kPrologue) + q,
                          bed.storage_addrs().front());
  }
}

TEST(AdaptiveExecution, RecordsChoicesInPlanNotes) {
  workload::Testbed bed(config());
  ExecutionPolicy policy;
  policy.adaptive = true;
  DistributedQueryProcessor proc(bed.overlay(), policy);
  ExecutionReport rep;
  (void)proc.execute(
      std::string(kPrologue) + "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }",
      bed.storage_addrs().front(), &rep);
  bool saw = false;
  for (const std::string& note : rep.plan_notes) {
    if (note.rfind("adaptive: ", 0) == 0) saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(AdaptiveExecution, PureTrafficObjectiveNeverWorseThanFixedByMuch) {
  // Sanity: with a pure traffic objective, adaptive execution should land
  // within the envelope of the two fixed strategies it chooses between.
  workload::Testbed bed(config());
  std::string q = std::string(kPrologue) +
                  "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }";
  auto run = [&](ExecutionPolicy policy) {
    DistributedQueryProcessor proc(bed.overlay(), policy);
    ExecutionReport rep;
    (void)proc.execute(q, bed.storage_addrs().front(), &rep);
    return rep.traffic.bytes;
  };
  ExecutionPolicy fixed_basic;
  fixed_basic.primitive = PrimitiveStrategy::kBasic;
  ExecutionPolicy fixed_chain;
  fixed_chain.primitive = PrimitiveStrategy::kFrequencyChain;
  ExecutionPolicy adaptive;
  adaptive.adaptive = true;
  std::uint64_t basic = run(fixed_basic);
  std::uint64_t chain = run(fixed_chain);
  std::uint64_t ad = run(adaptive);
  EXPECT_LE(ad, std::max(basic, chain));
}

}  // namespace
}  // namespace ahsw::dqp
