// Conjunction graph patterns (Sect. IV-D): correctness under every policy
// combination, frequency-driven join ordering, and overlap-aware execution
// site selection.
#include <gtest/gtest.h>

#include "dqp_test_util.hpp"
#include "workload/vocab.hpp"

namespace ahsw::dqp {
namespace {

using optimizer::PrimitiveStrategy;
using testing::expect_matches_oracle;
using testing::kPrologue;

workload::TestbedConfig config() {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 5;
  cfg.storage_nodes = 6;
  cfg.foaf.persons = 100;
  cfg.foaf.knows_nothing_fraction = 0.5;
  cfg.foaf.seed = 21;
  cfg.partition.overlap = 0.3;
  cfg.partition.seed = 22;
  return cfg;
}

// The Fig. 6 query.
const std::string kFig6 = std::string(kPrologue) + R"(
  SELECT ?x ?y ?z WHERE {
    ?x foaf:knows ?z .
    ?x ns:knowsNothingAbout ?y .
  })";

struct PolicyCase {
  PrimitiveStrategy strategy;
  bool freq_order;
  bool overlap_sites;
};

class ConjunctionPolicies : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(ConjunctionPolicies, Fig6MatchesOracle) {
  workload::Testbed bed(config());
  ExecutionPolicy policy;
  policy.primitive = GetParam().strategy;
  policy.frequency_join_order = GetParam().freq_order;
  policy.overlap_aware_sites = GetParam().overlap_sites;
  DistributedQueryProcessor proc(bed.overlay(), policy);
  expect_matches_oracle(bed, proc, kFig6, bed.storage_addrs().front());
}

std::vector<PolicyCase> policy_cases() {
  std::vector<PolicyCase> out;
  for (PrimitiveStrategy s :
       {PrimitiveStrategy::kBasic, PrimitiveStrategy::kChain,
        PrimitiveStrategy::kFrequencyChain}) {
    for (bool fo : {false, true}) {
      for (bool os : {false, true}) out.push_back({s, fo, os});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllPolicyCombinations, ConjunctionPolicies,
                         ::testing::ValuesIn(policy_cases()));

TEST(Conjunction, ThreePatternPathQuery) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  expect_matches_oracle(bed, proc,
                        std::string(kPrologue) + R"(
      SELECT ?x ?y ?z WHERE {
        ?x foaf:knows ?z .
        ?x ns:knowsNothingAbout ?y .
        ?y foaf:knows ?z .
      })",
                        bed.storage_addrs()[1]);
}

TEST(Conjunction, StarQueryAroundOneSubject) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  expect_matches_oracle(bed, proc,
                        std::string(kPrologue) + R"(
      SELECT ?x ?n ?a WHERE {
        ?x foaf:name ?n .
        ?x foaf:age ?a .
        ?x foaf:mbox ?m .
      })",
                        bed.storage_addrs()[2]);
}

TEST(Conjunction, EmptyPatternShortCircuits) {
  workload::Testbed bed(config());
  DistributedQueryProcessor proc(bed.overlay());
  ExecutionReport rep;
  sparql::QueryResult r = proc.execute(
      std::string(kPrologue) + R"(
      SELECT ?x ?z WHERE {
        ?x <http://example.org/ns#noSuchPredicate> ?q .
        ?x foaf:knows ?z .
      })",
      bed.storage_addrs().front(), &rep);
  EXPECT_TRUE(r.solutions.empty());
  // Frequency ordering puts the empty pattern first; the join aborts before
  // contacting the second pattern's providers.
  EXPECT_EQ(rep.providers_contacted, 0);
}

TEST(Conjunction, FrequencyOrderingReducesDataTraffic) {
  // A selective pattern evaluated first keeps intermediates small; textual
  // order starts with the bulky foaf:knows pattern. This is the paper's
  // "the smaller the intermediate results the more efficient the query
  // processing".
  workload::TestbedConfig cfg = config();
  cfg.foaf.persons = 150;
  workload::Testbed bed(cfg);
  // knows is bulky; nick is sparse. Textual order: knows first.
  std::string q = std::string(kPrologue) + R"(
      SELECT ?x ?z ?n WHERE {
        ?x foaf:knows ?z .
        ?z foaf:nick ?n .
      })";
  auto run = [&](bool freq_order) {
    ExecutionPolicy policy;
    policy.frequency_join_order = freq_order;
    DistributedQueryProcessor proc(bed.overlay(), policy);
    ExecutionReport rep;
    (void)proc.execute(q, bed.storage_addrs().front(), &rep);
    return rep;
  };
  ExecutionReport textual = run(false);
  ExecutionReport optimized = run(true);
  auto data = [](const ExecutionReport& r) {
    return r.traffic.bytes_by[static_cast<std::size_t>(net::Category::kData)];
  };
  EXPECT_LT(data(optimized), data(textual));
  // Both orders must of course agree on the answer (checked elsewhere);
  // here we check the plan notes recorded the decision.
  ASSERT_FALSE(optimized.plan_notes.empty());
}

TEST(Conjunction, OverlapAwareSiteSelectionSavesShipping) {
  // Build the Sect. IV-D scenario: S1 = {D1, D3, D4}, S2 = {D1, D2}; with
  // overlap-aware sites the P1 chain ends at D1, where the P2 results also
  // land, so the final join needs no extra shipment of either operand.
  workload::TestbedConfig cfg;
  cfg.index_nodes = 4;
  cfg.storage_nodes = 4;
  cfg.foaf.persons = 0;
  workload::Testbed bed(cfg);
  auto& ov = bed.overlay();
  rdf::Term knows = rdf::Term::iri(std::string(workload::foaf::kKnows));
  rdf::Term kna =
      rdf::Term::iri(std::string(workload::ex::kKnowsNothingAbout));
  auto person = [](int i) {
    return rdf::Term::iri("http://example.org/people/p" + std::to_string(i));
  };
  net::NodeAddress d1 = bed.storage_addrs()[0];
  net::NodeAddress d2 = bed.storage_addrs()[1];
  net::NodeAddress d3 = bed.storage_addrs()[2];
  net::NodeAddress d4 = bed.storage_addrs()[3];
  // P1 = (?x knows ?z) providers: d1, d3, d4.
  ov.share_triples(d1, {{person(1), knows, person(2)}}, 0);
  ov.share_triples(d3, {{person(3), knows, person(2)},
                        {person(1), knows, person(4)}}, 0);
  ov.share_triples(d4, {{person(5), knows, person(2)},
                        {person(6), knows, person(7)},
                        {person(1), knows, person(8)}}, 0);
  // P2 = (?x knowsNothingAbout ?y) providers: d1, d2.
  ov.share_triples(d1, {{person(1), kna, person(3)}}, 0);
  ov.share_triples(d2, {{person(3), kna, person(1)},
                        {person(5), kna, person(6)}}, 0);
  bed.network().reset_stats();

  auto run = [&](bool overlap_aware) {
    ExecutionPolicy policy;
    policy.overlap_aware_sites = overlap_aware;
    DistributedQueryProcessor proc(bed.overlay(), policy);
    ExecutionReport rep;
    (void)proc.execute(std::string(kPrologue) + R"(
        SELECT ?x ?y ?z WHERE {
          ?x foaf:knows ?z .
          ?x ns:knowsNothingAbout ?y .
        })",
                       d2, &rep);
    return rep;
  };
  ExecutionReport naive = run(false);
  ExecutionReport aware = run(true);
  EXPECT_LE(aware.traffic.bytes, naive.traffic.bytes);
}

TEST(Conjunction, CartesianProductAcrossDisjointPatterns) {
  workload::TestbedConfig cfg = config();
  cfg.foaf.persons = 12;  // keep the product small
  cfg.foaf.knows_per_person = 1.0;
  workload::Testbed bed(cfg);
  DistributedQueryProcessor proc(bed.overlay());
  expect_matches_oracle(bed, proc,
                        std::string(kPrologue) + R"(
      SELECT ?a ?b WHERE {
        ?a foaf:nick ?n1 .
        ?b foaf:mbox ?m1 .
      })",
                        bed.storage_addrs().front());
}

}  // namespace
}  // namespace ahsw::dqp
