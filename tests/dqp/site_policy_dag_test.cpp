// Join-site selection through the DAG engine's batch path: the third-site
// policy's capacity choice must surface in the right query's plan notes even
// when other queries run interleaved in the same batch, and overlap-aware
// union ends must make the colocation step vanish (no join-site note, no
// extra shipping) exactly when the preferred end is a live provider of the
// other branch (Sect. IV-F).
#include <gtest/gtest.h>

#include "dqp_test_util.hpp"
#include "workload/vocab.hpp"

namespace ahsw::dqp {
namespace {

using optimizer::JoinSitePolicy;
using testing::kPrologue;

const std::string kOptionalQuery = std::string(kPrologue) + R"(
  SELECT ?x ?y ?n WHERE {
    ?x foaf:knows ?y .
    OPTIONAL { ?y foaf:nick ?n . }
  })";

const std::string kPrimitiveQuery =
    std::string(kPrologue) + "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }";

const std::string kUnionQuery = std::string(kPrologue) + R"(
  SELECT ?x WHERE {
    { ?x foaf:nick ?n . }
    UNION
    { ?x foaf:mbox ?m . }
  })";

bool has_note(const ExecutionReport& rep, const std::string& needle) {
  for (const std::string& note : rep.plan_notes) {
    if (note.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(SitePolicyDag, ThirdSiteNoteStaysWithItsQueryInABatch) {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 5;
  cfg.storage_nodes = 6;
  cfg.foaf.persons = 90;
  cfg.foaf.nick_fraction = 0.4;
  cfg.foaf.seed = 31;
  cfg.partition.overlap = 0.25;
  cfg.partition.seed = 32;
  workload::Testbed bed(cfg);
  net::NodeAddress beefy = bed.storage_addrs()[4];
  bed.overlay().storage_state(beefy).capacity = 100.0;

  ExecutionPolicy policy;
  policy.join_site = JoinSitePolicy::kThirdSite;
  DistributedQueryProcessor proc(bed.overlay(), policy);

  // The optional query joins (and must pick the beefy node); the primitive
  // riding along in the same batch has no join and must stay note-clean.
  BatchResult r = proc.execute_batch(
      {kOptionalQuery, kPrimitiveQuery},
      {bed.storage_addrs().front(), bed.storage_addrs()[1]});

  ASSERT_EQ(r.reports.size(), 2u);
  EXPECT_TRUE(has_note(r.reports[0],
                       "third-site -> node " + std::to_string(beefy)))
      << "optional query should colocate at the high-capacity node";
  EXPECT_FALSE(has_note(r.reports[1], "join-site:"))
      << "primitive query must not inherit the neighbour's join notes";
}

TEST(SitePolicyDag, OverlapAwareUnionEndsSkipColocation) {
  // Sect. IV-F topology, tuned so the two policies genuinely diverge:
  // nick lives on {d1(1), d3(2)} so the left chain ends at d3; mbox lives
  // on {d2(2), d3(1)} so the naive right chain ends at d2 and a colocation
  // ship is needed, while the overlap-aware chain rotates d3 to the end
  // and the union happens in place.
  workload::TestbedConfig cfg;
  cfg.index_nodes = 4;
  cfg.storage_nodes = 3;
  cfg.foaf.persons = 0;
  workload::Testbed bed(cfg);
  auto& ov = bed.overlay();
  rdf::Term nick = rdf::Term::iri(std::string(workload::foaf::kNick));
  rdf::Term mbox = rdf::Term::iri(std::string(workload::foaf::kMbox));
  auto person = [](int i) {
    return rdf::Term::iri("http://example.org/people/p" + std::to_string(i));
  };
  net::NodeAddress d1 = bed.storage_addrs()[0];
  net::NodeAddress d2 = bed.storage_addrs()[1];
  net::NodeAddress d3 = bed.storage_addrs()[2];
  ov.share_triples(d1, {{person(1), nick, rdf::Term::literal("a")}}, 0);
  ov.share_triples(d3, {{person(2), nick, rdf::Term::literal("b")},
                        {person(3), nick, rdf::Term::literal("c")}}, 0);
  ov.share_triples(d2, {{person(4), mbox, rdf::Term::iri("mailto:x@y")},
                        {person(5), mbox, rdf::Term::iri("mailto:z@y")}}, 0);
  ov.share_triples(d3, {{person(6), mbox, rdf::Term::iri("mailto:w@y")}}, 0);
  bed.network().reset_stats();

  auto run = [&](bool overlap_aware) {
    ExecutionPolicy policy;
    policy.overlap_aware_sites = overlap_aware;
    DistributedQueryProcessor proc(bed.overlay(), policy);
    ExecutionReport rep;
    sparql::QueryResult res = proc.execute(kUnionQuery, d1, &rep);
    return std::pair{std::move(res), std::move(rep)};
  };
  auto [naive_res, naive] = run(false);
  auto [aware_res, aware] = run(true);

  // Naive ends at different sites and pays a colocation ship; aware ends
  // both chains at d3 and the union costs nothing extra.
  EXPECT_TRUE(has_note(naive, "join-site:"));
  EXPECT_FALSE(has_note(aware, "join-site:"));
  EXPECT_LT(aware.traffic.bytes, naive.traffic.bytes);

  // Same answers either way.
  EXPECT_EQ(testing::canon(aware_res.solutions).rows(),
            testing::canon(naive_res.solutions).rows());
}

}  // namespace
}  // namespace ahsw::dqp
