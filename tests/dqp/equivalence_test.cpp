// System-level property test: for randomized testbeds and the generated
// query mix, every policy combination must produce the single-site oracle
// answer. This is the strongest correctness statement in the suite: the
// distributed machinery (two-level index, chains, site selection, filter
// pushing) is pure optimization and never changes semantics.
#include <gtest/gtest.h>

#include "dqp_test_util.hpp"
#include "workload/queries.hpp"

namespace ahsw::dqp {
namespace {

using optimizer::JoinSitePolicy;
using optimizer::PrimitiveStrategy;
using testing::expect_matches_oracle;

struct Scenario {
  std::uint64_t seed;
  PrimitiveStrategy strategy;
  JoinSitePolicy site;
  bool push_filters;
};

class MixEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(MixEquivalence, TwentyQueriesMatchOracle) {
  const Scenario& sc = GetParam();
  workload::TestbedConfig cfg;
  cfg.index_nodes = 4 + sc.seed % 3;
  cfg.storage_nodes = 5 + sc.seed % 4;
  cfg.foaf.persons = 60;
  cfg.foaf.seed = sc.seed;
  cfg.partition.seed = sc.seed + 1;
  cfg.partition.overlap = 0.2;
  cfg.overlay.seed = sc.seed + 2;
  workload::Testbed bed(cfg);

  ExecutionPolicy policy;
  policy.primitive = sc.strategy;
  policy.join_site = sc.site;
  policy.push_filters = sc.push_filters;
  DistributedQueryProcessor proc(bed.overlay(), policy);

  workload::QueryMixConfig mix;
  mix.seed = sc.seed + 3;
  std::vector<std::string> queries =
      workload::generate_query_mix(20, cfg.foaf, mix);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    net::NodeAddress initiator =
        bed.storage_addrs()[i % bed.storage_addrs().size()];
    expect_matches_oracle(bed, proc, queries[i], initiator);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, MixEquivalence,
    ::testing::Values(
        Scenario{1, PrimitiveStrategy::kBasic, JoinSitePolicy::kMoveSmall,
                 true},
        Scenario{2, PrimitiveStrategy::kChain, JoinSitePolicy::kQuerySite,
                 true},
        Scenario{3, PrimitiveStrategy::kFrequencyChain,
                 JoinSitePolicy::kThirdSite, true},
        Scenario{4, PrimitiveStrategy::kFrequencyChain,
                 JoinSitePolicy::kMoveSmall, false},
        Scenario{5, PrimitiveStrategy::kBasic, JoinSitePolicy::kThirdSite,
                 false},
        Scenario{6, PrimitiveStrategy::kChain, JoinSitePolicy::kMoveSmall,
                 true}));

}  // namespace
}  // namespace ahsw::dqp
