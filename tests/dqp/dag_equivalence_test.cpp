// A/B equivalence of the two execution engines: for every query class the
// DAG executor (physical plan + event scheduler) must reproduce the legacy
// recursive engine *exactly* — same result rows, same TrafficStats down to
// the per-category counters, same response time, same report counters and
// plan notes. Each engine runs on its own freshly built (identical-seed)
// testbed because execution mutates shared index state (lazy repairs), so
// the comparison covers that mutation order too. Dead-provider variants pin
// the control-edge sequencing: the DAG engine must interleave repairs and
// lookups in the legacy left-to-right order or traffic diverges.
#include <gtest/gtest.h>

#include "check/audit.hpp"
#include "dqp_test_util.hpp"

namespace ahsw::dqp {
namespace {

using optimizer::JoinSitePolicy;
using optimizer::PrimitiveStrategy;
using testing::kPrologue;

workload::TestbedConfig config() {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 5;
  cfg.storage_nodes = 6;
  cfg.foaf.persons = 70;
  cfg.foaf.seed = 31;
  cfg.partition.overlap = 0.25;
  cfg.partition.seed = 32;
  cfg.overlay.seed = 33;
  return cfg;
}

void expect_traffic_eq(const net::TrafficStats& a, const net::TrafficStats& b,
                       const std::string& what) {
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.bytes, b.bytes) << what;
  EXPECT_EQ(a.timeouts, b.timeouts) << what;
  for (int c = 0; c < net::kCategoryCount; ++c) {
    EXPECT_EQ(a.messages_by[c], b.messages_by[c]) << what << " category " << c;
    EXPECT_EQ(a.bytes_by[c], b.bytes_by[c]) << what << " category " << c;
    EXPECT_EQ(a.timeouts_by[c], b.timeouts_by[c]) << what << " category " << c;
  }
}

struct EngineOutcome {
  sparql::QueryResult result;
  ExecutionReport rep;
};

/// Run `query` on a fresh identical testbed with the given engine, tracing
/// the execution and auditing I5 conservation on it.
EngineOutcome run_engine(ExecutionEngine engine, ExecutionPolicy policy,
                         const std::string& query, bool kill_provider) {
  workload::Testbed bed(config());
  policy.engine = engine;
  DistributedQueryProcessor proc(bed.overlay(), policy);
  if (kill_provider) {
    bed.overlay().storage_node_fail(bed.storage_addrs()[2]);
  }
  obs::QueryTrace trace;
  proc.set_trace(&trace);

  EngineOutcome out;
  out.result = proc.execute(query, bed.storage_addrs().front(), &out.rep);

  check::AuditReport audit;
  check::AuditOptions opts;
  opts.churned = kill_provider;
  check::audit_conservation(trace, out.rep.traffic, audit, opts);
  EXPECT_TRUE(audit.pristine()) << audit.to_string();
  proc.set_trace(nullptr);
  return out;
}

void expect_engines_agree(ExecutionPolicy policy, const std::string& query,
                          bool kill_provider = false) {
  EngineOutcome legacy =
      run_engine(ExecutionEngine::kLegacy, policy, query, kill_provider);
  EngineOutcome dag =
      run_engine(ExecutionEngine::kDag, policy, query, kill_provider);

  EXPECT_EQ(dag.result.form, legacy.result.form) << query;
  EXPECT_EQ(dag.result.solutions.rows(), legacy.result.solutions.rows())
      << query;
  EXPECT_EQ(dag.result.graph, legacy.result.graph) << query;
  EXPECT_EQ(dag.result.ask_answer, legacy.result.ask_answer) << query;

  EXPECT_EQ(dag.rep.response_time, legacy.rep.response_time) << query;
  expect_traffic_eq(dag.rep.traffic, legacy.rep.traffic, query);
  EXPECT_EQ(dag.rep.index_lookups, legacy.rep.index_lookups) << query;
  EXPECT_EQ(dag.rep.ring_hops, legacy.rep.ring_hops) << query;
  EXPECT_EQ(dag.rep.providers_contacted, legacy.rep.providers_contacted)
      << query;
  EXPECT_EQ(dag.rep.dead_providers_skipped, legacy.rep.dead_providers_skipped)
      << query;
  EXPECT_EQ(dag.rep.complete, legacy.rep.complete) << query;
  EXPECT_EQ(dag.rep.plan_notes, legacy.rep.plan_notes) << query;
}

// One query per class the plan compiler distinguishes.
const char* kPrimitive = "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }";
const char* kConjunction =
    "SELECT ?x ?n ?o WHERE { ?x foaf:name ?n . ?x foaf:knows ?o . "
    "?o foaf:nick ?k . }";
const char* kOptional =
    "SELECT ?x ?y ?n WHERE { ?x foaf:knows ?y . "
    "OPTIONAL { ?y foaf:nick ?n . } }";
const char* kUnion =
    "SELECT ?x WHERE { { ?x foaf:nick ?n . } UNION { ?x foaf:mbox ?m . } }";
const char* kFilter =
    "SELECT ?x ?n WHERE { ?x foaf:name ?n . FILTER regex(?n, \"a\") }";
const char* kAsk = "ASK { ?x foaf:knows ?y . }";
const char* kDescribe = "DESCRIBE <http://example.org/people/p0>";
const char* kModifiers =
    "SELECT DISTINCT ?n WHERE { ?x foaf:name ?n . } ORDER BY ?n "
    "LIMIT 5 OFFSET 2";

class DagEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(DagEquivalence, DefaultPolicyHealthy) {
  expect_engines_agree(ExecutionPolicy{},
                       std::string(kPrologue) + GetParam());
}

TEST_P(DagEquivalence, DefaultPolicyDeadProvider) {
  expect_engines_agree(ExecutionPolicy{}, std::string(kPrologue) + GetParam(),
                       /*kill_provider=*/true);
}

TEST_P(DagEquivalence, BasicStrategyThirdSite) {
  ExecutionPolicy policy;
  policy.primitive = PrimitiveStrategy::kBasic;
  policy.join_site = JoinSitePolicy::kThirdSite;
  expect_engines_agree(policy, std::string(kPrologue) + GetParam());
}

TEST_P(DagEquivalence, ChainNoOverlapNoPushdown) {
  ExecutionPolicy policy;
  policy.primitive = PrimitiveStrategy::kChain;
  policy.overlap_aware_sites = false;
  policy.frequency_join_order = false;
  policy.push_filters = false;
  expect_engines_agree(policy, std::string(kPrologue) + GetParam());
}

TEST_P(DagEquivalence, AdaptiveDeadProvider) {
  ExecutionPolicy policy;
  policy.adaptive = true;
  expect_engines_agree(policy, std::string(kPrologue) + GetParam(),
                       /*kill_provider=*/true);
}

INSTANTIATE_TEST_SUITE_P(QueryClasses, DagEquivalence,
                         ::testing::Values(kPrimitive, kConjunction, kOptional,
                                           kUnion, kFilter, kAsk, kDescribe,
                                           kModifiers));

// Batch of one must agree with single-query execution byte for byte (the
// execute() fast path is itself a batch of one; this pins the public API).
TEST(DagBatch, SingleQueryBatchMatchesExecute) {
  const std::string query = std::string(kPrologue) + kConjunction;

  workload::Testbed bed_a(config());
  DistributedQueryProcessor proc_a(bed_a.overlay());
  ExecutionReport rep;
  sparql::QueryResult direct =
      proc_a.execute(query, bed_a.storage_addrs().front(), &rep);

  workload::Testbed bed_b(config());
  DistributedQueryProcessor proc_b(bed_b.overlay());
  BatchResult batch = proc_b.execute_batch(
      {query}, {bed_b.storage_addrs().front()});

  ASSERT_EQ(batch.results.size(), 1u);
  EXPECT_EQ(batch.results[0].solutions.rows(), direct.solutions.rows());
  EXPECT_EQ(batch.reports[0].response_time, rep.response_time);
  EXPECT_EQ(batch.makespan, rep.response_time);
  expect_traffic_eq(batch.reports[0].traffic, rep.traffic, "batch of one");
}

}  // namespace
}  // namespace ahsw::dqp
