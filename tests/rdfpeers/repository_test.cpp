#include "rdfpeers/repository.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ahsw::rdfpeers {
namespace {

using rdf::Term;
using rdf::Triple;
using rdf::TriplePattern;
using rdf::Variable;

Term iri(const std::string& x) { return Term::iri("http://" + x); }

struct Fixture {
  net::Network network;
  Repository repo;
  std::vector<chord::Key> peers;

  explicit Fixture(std::size_t n = 12, RepositoryConfig cfg = {})
      : repo(network, cfg) {
    for (std::size_t i = 0; i < n; ++i) peers.push_back(repo.add_peer());
    repo.ring().fix_all_fingers_oracle();
  }
};

TEST(RdfPeers, StoreTriplePlacesThreeCopies) {
  Fixture f;
  f.repo.store_triple(f.peers[0], {iri("s"), iri("p"), iri("o")}, 0);
  std::size_t copies = 0;
  for (const auto& [id, peer] : f.repo.peers()) copies += peer.store.size();
  // Three placements; distinct hash owners may coincide, so 1..3 copies,
  // usually 3 in a 12-peer ring.
  EXPECT_GE(copies, 1u);
  EXPECT_LE(copies, 3u);
}

TEST(RdfPeers, StoreChargesDataTraffic) {
  Fixture f;
  f.network.reset_stats();
  f.repo.store_triple(f.peers[0], {iri("s"), iri("p"), iri("o")}, 0);
  auto data = static_cast<std::size_t>(net::Category::kData);
  // One shipment per placement; a placement landing on the publisher
  // itself is node-local and free, so 2..3 messages.
  EXPECT_GE(f.network.stats().messages_by[data], 2u);
  EXPECT_LE(f.network.stats().messages_by[data], 3u);
  EXPECT_GT(f.network.stats().bytes_by[data], 0u);
}

TEST(RdfPeers, ResolveBySubject) {
  Fixture f;
  f.repo.store_triples(f.peers[0],
                       {{iri("alice"), iri("knows"), iri("bob")},
                        {iri("alice"), iri("knows"), iri("carol")},
                        {iri("dave"), iri("knows"), iri("bob")}},
                       0);
  Repository::Resolution r = f.repo.resolve_pattern(
      f.peers[1], TriplePattern{iri("alice"), Variable{"p"}, Variable{"o"}},
      0);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.solutions.size(), 2u);
}

TEST(RdfPeers, ResolveByObject) {
  Fixture f;
  f.repo.store_triples(f.peers[0],
                       {{iri("alice"), iri("knows"), iri("bob")},
                        {iri("dave"), iri("knows"), iri("bob")},
                        {iri("erin"), iri("knows"), iri("carol")}},
                       0);
  Repository::Resolution r = f.repo.resolve_pattern(
      f.peers[2], TriplePattern{Variable{"s"}, iri("knows"), iri("bob")}, 0);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.solutions.size(), 2u);
}

TEST(RdfPeers, ResolveByPredicateOnly) {
  Fixture f;
  f.repo.store_triples(f.peers[0],
                       {{iri("a"), iri("knows"), iri("b")},
                        {iri("c"), iri("likes"), iri("d")}},
                       0);
  Repository::Resolution r = f.repo.resolve_pattern(
      f.peers[1], TriplePattern{Variable{"s"}, iri("knows"), Variable{"o"}},
      0);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.solutions.size(), 1u);
  EXPECT_EQ(*r.solutions.rows()[0].get("s"), iri("a"));
}

TEST(RdfPeers, FullyUnboundFloodsAllPeers) {
  Fixture f(6);
  f.repo.store_triples(f.peers[0], {{iri("a"), iri("p"), iri("b")}}, 0);
  f.network.reset_stats();
  Repository::Resolution r = f.repo.resolve_pattern(
      f.peers[1], TriplePattern{Variable{"s"}, Variable{"p"}, Variable{"o"}},
      0);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.solutions.size(), 1u);
  // One query + one reply message per peer except the requester itself.
  EXPECT_GE(f.network.stats().messages, 2u * (f.peers.size() - 1));
}

TEST(RdfPeers, ConjunctiveIntersectsCandidates) {
  Fixture f;
  // alice: type person, lives wonderland; bob: type person, lives sea.
  f.repo.store_triples(f.peers[0],
                       {{iri("alice"), iri("type"), iri("person")},
                        {iri("bob"), iri("type"), iri("person")},
                        {iri("alice"), iri("lives"), iri("wonderland")},
                        {iri("bob"), iri("lives"), iri("sea")}},
                       0);
  std::vector<TriplePattern> maq = {
      TriplePattern{Variable{"x"}, iri("type"), iri("person")},
      TriplePattern{Variable{"x"}, iri("lives"), iri("wonderland")}};
  Repository::Resolution r = f.repo.resolve_conjunctive(f.peers[3], maq, 0);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.solutions.size(), 1u);
  EXPECT_EQ(*r.solutions.rows()[0].get("x"), iri("alice"));
}

TEST(RdfPeers, ConjunctiveEmptyIntersectionShortCircuits) {
  Fixture f;
  f.repo.store_triples(f.peers[0],
                       {{iri("alice"), iri("type"), iri("person")}}, 0);
  std::vector<TriplePattern> maq = {
      TriplePattern{Variable{"x"}, iri("type"), iri("robot")},
      TriplePattern{Variable{"x"}, iri("lives"), iri("mars")}};
  Repository::Resolution r = f.repo.resolve_conjunctive(f.peers[1], maq, 0);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.solutions.empty());
}

TEST(RdfPeers, DisjunctiveUnionsAlternatives) {
  Fixture f;
  f.repo.store_triples(f.peers[0],
                       {{iri("a"), iri("color"), Term::literal("red")},
                        {iri("b"), iri("color"), Term::literal("blue")},
                        {iri("c"), iri("color"), Term::literal("green")}},
                       0);
  Repository::Resolution r = f.repo.resolve_disjunctive(
      f.peers[1], iri("color"),
      {Term::literal("red"), Term::literal("green")}, 0);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.solutions.size(), 2u);
}

TEST(RdfPeers, LocalityHashIsMonotone) {
  Fixture f;
  chord::Key prev = 0;
  for (double v : {0.0, 10.0, 250.5, 500.0, 999.0, 1000.0}) {
    chord::Key k = f.repo.locality_hash(v);
    EXPECT_GE(k, prev) << v;
    prev = k;
  }
  // Out-of-range values clamp.
  EXPECT_EQ(f.repo.locality_hash(-5.0), f.repo.locality_hash(0.0));
  EXPECT_EQ(f.repo.locality_hash(2000.0), f.repo.locality_hash(1000.0));
}

TEST(RdfPeers, RangeQueryFindsExactlyInRangeValues) {
  Fixture f(16);
  std::vector<Triple> triples;
  for (int v = 0; v <= 1000; v += 50) {
    triples.push_back(
        {iri("obs" + std::to_string(v)), iri("value"), Term::integer(v)});
  }
  f.repo.store_triples(f.peers[0], triples, 0);
  Repository::Resolution r =
      f.repo.resolve_range(f.peers[1], iri("value"), 200.0, 400.0, 0);
  ASSERT_TRUE(r.ok);
  // 200, 250, 300, 350, 400.
  EXPECT_EQ(r.solutions.size(), 5u);
  for (const sparql::Binding& b : r.solutions.rows()) {
    double v = 0;
    ASSERT_TRUE(b.get("o")->numeric_value(v));
    EXPECT_GE(v, 200.0);
    EXPECT_LE(v, 400.0);
  }
}

TEST(RdfPeers, RangeQueryEmptyRange) {
  Fixture f;
  f.repo.store_triples(f.peers[0],
                       {{iri("x"), iri("value"), Term::integer(500)}}, 0);
  Repository::Resolution r =
      f.repo.resolve_range(f.peers[1], iri("value"), 600.0, 700.0, 0);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.solutions.empty());
  Repository::Resolution inverted =
      f.repo.resolve_range(f.peers[1], iri("value"), 700.0, 600.0, 0);
  EXPECT_TRUE(inverted.ok);
  EXPECT_TRUE(inverted.solutions.empty());
}

TEST(RdfPeers, RangeWalkVisitsOnlySegmentPeers) {
  Fixture f(16);
  std::vector<Triple> triples;
  for (int v = 0; v <= 1000; v += 10) {
    triples.push_back(
        {iri("obs" + std::to_string(v)), iri("value"), Term::integer(v)});
  }
  f.repo.store_triples(f.peers[0], triples, 0);
  Repository::Resolution narrow =
      f.repo.resolve_range(f.peers[1], iri("value"), 100.0, 120.0, 0);
  Repository::Resolution wide =
      f.repo.resolve_range(f.peers[1], iri("value"), 0.0, 1000.0, 0);
  ASSERT_TRUE(narrow.ok);
  ASSERT_TRUE(wide.ok);
  EXPECT_LT(narrow.hops, wide.hops);
  EXPECT_EQ(wide.solutions.size(), 101u);
}

TEST(RdfPeers, StorageLoadLeavesProviders) {
  // The paper's core criticism: in RDFPeers the provider's data lives on
  // other nodes. After publishing from peer 0, most copies sit elsewhere.
  Fixture f;
  common::Rng rng(5);
  std::vector<Triple> triples;
  for (int i = 0; i < 50; ++i) {
    triples.push_back({iri("s" + std::to_string(rng.below(20))),
                       iri("p" + std::to_string(rng.below(4))),
                       iri("o" + std::to_string(rng.below(30)))});
  }
  f.repo.store_triples(f.peers[0], triples, 0);
  std::size_t total = 0;
  for (std::size_t load : f.repo.storage_loads()) total += load;
  std::size_t at_publisher = f.repo.peers().at(f.peers[0]).store.size();
  EXPECT_GT(total, triples.size());           // ~3 copies per triple
  EXPECT_LT(at_publisher * 3, total);         // publisher keeps a minority
}

}  // namespace
}  // namespace ahsw::rdfpeers
