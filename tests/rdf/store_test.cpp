#include "rdf/store.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace ahsw::rdf {
namespace {

Term iri(const std::string& x) { return Term::iri("http://" + x); }

TripleStore small_store() {
  TripleStore s;
  s.insert({iri("a"), iri("knows"), iri("b")});
  s.insert({iri("a"), iri("knows"), iri("c")});
  s.insert({iri("b"), iri("knows"), iri("c")});
  s.insert({iri("a"), iri("name"), Term::literal("Alice")});
  s.insert({iri("b"), iri("name"), Term::literal("Bob")});
  return s;
}

TEST(TripleStore, InsertIsSetSemantics) {
  TripleStore s;
  Triple t{iri("x"), iri("p"), iri("y")};
  EXPECT_TRUE(s.insert(t));
  EXPECT_FALSE(s.insert(t));
  EXPECT_EQ(s.size(), 1u);
}

TEST(TripleStore, EraseRemovesFromAllIndexes) {
  TripleStore s = small_store();
  Triple t{iri("a"), iri("knows"), iri("b")};
  EXPECT_TRUE(s.erase(t));
  EXPECT_FALSE(s.erase(t));
  EXPECT_FALSE(s.contains(t));
  // All three orderings must agree.
  EXPECT_TRUE(s.match(TriplePattern{t.s, t.p, t.o}).empty());
  EXPECT_EQ(s.count_matches(TriplePattern{Variable{"s"}, t.p, t.o}), 0u);
  EXPECT_EQ(s.count_matches(TriplePattern{t.s, Variable{"p"}, t.o}), 0u);
}

TEST(TripleStore, EraseUnknownTermIsFalse) {
  TripleStore s = small_store();
  EXPECT_FALSE(s.erase({iri("zzz"), iri("knows"), iri("b")}));
}

TEST(TripleStore, ContainsExactTriple) {
  TripleStore s = small_store();
  EXPECT_TRUE(s.contains({iri("a"), iri("knows"), iri("b")}));
  EXPECT_FALSE(s.contains({iri("b"), iri("knows"), iri("a")}));
}

struct PatternCase {
  bool bind_s, bind_p, bind_o;
  std::size_t expected;  // matches of (a?, knows?, b?) over small_store
};

class StorePatternShapes : public ::testing::TestWithParam<PatternCase> {};

TEST_P(StorePatternShapes, MatchesEveryBoundCombination) {
  const PatternCase& pc = GetParam();
  TripleStore s = small_store();
  TriplePattern p{
      pc.bind_s ? PatternTerm(iri("a")) : PatternTerm(Variable{"s"}),
      pc.bind_p ? PatternTerm(iri("knows")) : PatternTerm(Variable{"p"}),
      pc.bind_o ? PatternTerm(iri("b")) : PatternTerm(Variable{"o"})};
  EXPECT_EQ(s.match(p).size(), pc.expected);
  EXPECT_EQ(s.count_matches(p), pc.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllEightShapes, StorePatternShapes,
    ::testing::Values(
        PatternCase{true, true, true, 1},    // (s,p,o)
        PatternCase{true, true, false, 2},   // (s,p,?)  a knows b,c
        PatternCase{true, false, true, 1},   // (s,?,o)  a ? b
        PatternCase{false, true, true, 1},   // (?,p,o)  ? knows b
        PatternCase{true, false, false, 3},  // (s,?,?)  a * *
        PatternCase{false, true, false, 3},  // (?,p,?)  knows edges
        PatternCase{false, false, true, 1},  // (?,?,o)  * * b
        PatternCase{false, false, false, 5}  // full scan
        ));

TEST(TripleStore, MatchReturnsActualTriples) {
  TripleStore s = small_store();
  auto out = s.match(TriplePattern{iri("a"), iri("knows"), Variable{"o"}});
  ASSERT_EQ(out.size(), 2u);
  for (const Triple& t : out) {
    EXPECT_EQ(t.s, iri("a"));
    EXPECT_EQ(t.p, iri("knows"));
  }
}

TEST(TripleStore, MatchUnknownTermYieldsNothing) {
  TripleStore s = small_store();
  EXPECT_TRUE(
      s.match(TriplePattern{iri("nobody"), Variable{"p"}, Variable{"o"}})
          .empty());
}

TEST(TripleStore, MatchOnEmptyStore) {
  TripleStore s;
  EXPECT_TRUE(
      s.match(TriplePattern{Variable{"s"}, Variable{"p"}, Variable{"o"}})
          .empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(TripleStore, ForEachVisitsEverythingOnce) {
  TripleStore s = small_store();
  std::size_t n = 0;
  s.for_each([&](const Triple&) { ++n; });
  EXPECT_EQ(n, s.size());
}

TEST(TripleStore, IterationOrderIsDeterministic) {
  TripleStore a = small_store();
  TripleStore b = small_store();
  std::vector<Triple> ta, tb;
  a.for_each([&](const Triple& t) { ta.push_back(t); });
  b.for_each([&](const Triple& t) { tb.push_back(t); });
  EXPECT_EQ(ta, tb);
}

/// Property test: random store, every pattern shape agrees with a naive
/// filter over the full dataset.
TEST(TripleStoreProperty, MatchAgreesWithNaiveScan) {
  common::Rng rng(99);
  TripleStore store;
  std::vector<Triple> all;
  for (int i = 0; i < 300; ++i) {
    Triple t{iri("s" + std::to_string(rng.below(20))),
             iri("p" + std::to_string(rng.below(5))),
             iri("o" + std::to_string(rng.below(30)))};
    if (store.insert(t)) all.push_back(t);
  }
  for (int trial = 0; trial < 100; ++trial) {
    Term s = iri("s" + std::to_string(rng.below(20)));
    Term p = iri("p" + std::to_string(rng.below(5)));
    Term o = iri("o" + std::to_string(rng.below(30)));
    std::uint64_t shape = rng.below(8);
    TriplePattern pat{
        (shape & 1) ? PatternTerm(s) : PatternTerm(Variable{"s"}),
        (shape & 2) ? PatternTerm(p) : PatternTerm(Variable{"p"}),
        (shape & 4) ? PatternTerm(o) : PatternTerm(Variable{"o"})};
    std::size_t naive = static_cast<std::size_t>(
        std::count_if(all.begin(), all.end(),
                      [&](const Triple& t) { return pat.matches(t); }));
    EXPECT_EQ(store.count_matches(pat), naive) << pat.to_string();
  }
}

}  // namespace
}  // namespace ahsw::rdf
