#include "rdf/dictionary.hpp"

#include <gtest/gtest.h>

namespace ahsw::rdf {
namespace {

TEST(TermDictionary, InternAssignsDenseIds) {
  TermDictionary d;
  EXPECT_EQ(d.intern(Term::iri("a")), 0u);
  EXPECT_EQ(d.intern(Term::iri("b")), 1u);
  EXPECT_EQ(d.intern(Term::iri("c")), 2u);
  EXPECT_EQ(d.size(), 3u);
}

TEST(TermDictionary, InternIsIdempotent) {
  TermDictionary d;
  TermId first = d.intern(Term::literal("x"));
  TermId second = d.intern(Term::literal("x"));
  EXPECT_EQ(first, second);
  EXPECT_EQ(d.size(), 1u);
}

TEST(TermDictionary, FindReturnsNulloptForUnknown) {
  TermDictionary d;
  d.intern(Term::iri("known"));
  EXPECT_FALSE(d.find(Term::iri("unknown")).has_value());
  EXPECT_TRUE(d.find(Term::iri("known")).has_value());
}

TEST(TermDictionary, TermRoundTrips) {
  TermDictionary d;
  Term original = Term::lang_literal("hello", "en");
  TermId id = d.intern(original);
  EXPECT_EQ(d.term(id), original);
}

TEST(TermDictionary, DistinguishesKindsAndAnnotations) {
  TermDictionary d;
  TermId a = d.intern(Term::iri("x"));
  TermId b = d.intern(Term::literal("x"));
  TermId c = d.intern(Term::lang_literal("x", "en"));
  TermId e = d.intern(Term::typed_literal("x", "http://dt"));
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(c, e);
  EXPECT_EQ(d.size(), 4u);
}

TEST(TermDictionary, TraversalIsDeterministicInsertionOrder) {
  // Regression for the D2/D3 iteration hazard: the exposed traversal must
  // be the insertion-order vector, never the unordered id map, so any
  // output built from a dictionary walk is identical across runs and
  // platforms.
  TermDictionary d;
  std::vector<Term> inserted = {Term::iri("b"), Term::iri("a"),
                                Term::literal("b"),
                                Term::lang_literal("z", "en")};
  for (const Term& t : inserted) d.intern(t);
  d.intern(inserted[1]);  // re-intern must not perturb the order

  ASSERT_EQ(d.terms().size(), inserted.size());
  for (std::size_t i = 0; i < inserted.size(); ++i) {
    EXPECT_EQ(d.terms()[i], inserted[i]) << "position " << i;
    // terms()[id] and term(id) agree: ids index the traversal directly.
    EXPECT_EQ(d.terms()[i], d.term(static_cast<TermId>(i)));
  }
}

}  // namespace
}  // namespace ahsw::rdf
