#include "rdf/ntriples.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ahsw::rdf {
namespace {

TEST(NTriplesParse, SimpleIriTriple) {
  Triple t = parse_ntriples_line("<http://s> <http://p> <http://o> .");
  EXPECT_EQ(t.s, Term::iri("http://s"));
  EXPECT_EQ(t.p, Term::iri("http://p"));
  EXPECT_EQ(t.o, Term::iri("http://o"));
}

TEST(NTriplesParse, PlainLiteralObject) {
  Triple t = parse_ntriples_line("<http://s> <http://p> \"hello world\" .");
  EXPECT_EQ(t.o, Term::literal("hello world"));
}

TEST(NTriplesParse, LangLiteral) {
  Triple t = parse_ntriples_line("<http://s> <http://p> \"salut\"@fr .");
  EXPECT_EQ(t.o, Term::lang_literal("salut", "fr"));
}

TEST(NTriplesParse, TypedLiteral) {
  Triple t = parse_ntriples_line(
      "<http://s> <http://p> "
      "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .");
  EXPECT_EQ(t.o, Term::integer(5));
}

TEST(NTriplesParse, BlankNodes) {
  Triple t = parse_ntriples_line("_:a <http://p> _:b .");
  EXPECT_EQ(t.s, Term::blank("a"));
  EXPECT_EQ(t.o, Term::blank("b"));
}

TEST(NTriplesParse, EscapedLiteral) {
  Triple t =
      parse_ntriples_line(R"(<http://s> <http://p> "line\nbreak \"q\"" .)");
  EXPECT_EQ(t.o, Term::literal("line\nbreak \"q\""));
}

TEST(NTriplesParse, DocumentSkipsCommentsAndBlanks) {
  auto triples = parse_ntriples(
      "# a comment\n"
      "\n"
      "<http://s> <http://p> <http://o> .\n"
      "   \n"
      "<http://s2> <http://p> \"v\" .\n");
  EXPECT_EQ(triples.size(), 2u);
}

TEST(NTriplesParse, ErrorsCarryLineNumbers) {
  try {
    (void)parse_ntriples("<http://ok> <http://p> <http://o> .\nbogus line\n");
    FAIL() << "expected NTriplesError";
  } catch (const NTriplesError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(NTriplesParse, RejectsLiteralSubject) {
  EXPECT_THROW((void)parse_ntriples_line("\"lit\" <http://p> <http://o> ."),
               NTriplesError);
}

TEST(NTriplesParse, RejectsLiteralPredicate) {
  EXPECT_THROW((void)parse_ntriples_line("<http://s> \"p\" <http://o> ."),
               NTriplesError);
}

TEST(NTriplesParse, RejectsBlankPredicate) {
  EXPECT_THROW((void)parse_ntriples_line("<http://s> _:p <http://o> ."),
               NTriplesError);
}

TEST(NTriplesParse, RejectsMissingDot) {
  EXPECT_THROW((void)parse_ntriples_line("<http://s> <http://p> <http://o>"),
               NTriplesError);
}

TEST(NTriplesParse, RejectsTrailingGarbage) {
  EXPECT_THROW(
      (void)parse_ntriples_line("<http://s> <http://p> <http://o> . junk"),
      NTriplesError);
}

TEST(NTriplesParse, RejectsUnterminatedIri) {
  EXPECT_THROW((void)parse_ntriples_line("<http://s <http://p> <http://o> ."),
               NTriplesError);
}

TEST(NTriplesParse, RejectsUnterminatedLiteral) {
  EXPECT_THROW((void)parse_ntriples_line("<http://s> <http://p> \"open ."),
               NTriplesError);
}

TEST(NTriplesRoundTrip, RandomTriplesSurviveSerialization) {
  common::Rng rng(4242);
  std::vector<Triple> triples;
  for (int i = 0; i < 200; ++i) {
    Term s = rng.chance(0.8)
                 ? Term::iri("http://s/" + std::to_string(rng.below(50)))
                 : Term::blank("b" + std::to_string(rng.below(10)));
    Term p = Term::iri("http://p/" + std::to_string(rng.below(10)));
    Term o;
    switch (rng.below(4)) {
      case 0: o = Term::iri("http://o/" + std::to_string(rng.below(50))); break;
      case 1: o = Term::literal("v\"\n\t\\" + std::to_string(rng.below(50))); break;
      case 2: o = Term::lang_literal("w" + std::to_string(rng.below(9)), "en"); break;
      default: o = Term::integer(static_cast<long long>(rng.below(1000)));
    }
    triples.push_back({s, p, o});
  }
  std::vector<Triple> parsed = parse_ntriples(to_ntriples(triples));
  EXPECT_EQ(parsed, triples);
}

TEST(NTriplesRoundTrip, NumericEscapesDecodeAndReserializeCanonically) {
  // A document using \uXXXX parses to the decoded value...
  Triple t = parse_ntriples_line(R"(<http://s> <http://p> "\u0041BC" .)");
  EXPECT_EQ(t.o, Term::literal("ABC"));
  // ...and re-serializing emits the plain character, which parses back to
  // the same triple (the old passthrough turned this into "ABC" with
  // a doubled backslash on the next cycle).
  std::string doc = to_ntriples({t});
  EXPECT_EQ(parse_ntriples(doc), std::vector<Triple>{t});
}

TEST(NTriplesRoundTrip, ControlAndNonAsciiLiteralsSurvive) {
  common::Rng rng(777);
  std::vector<Triple> triples;
  for (int i = 0; i < 100; ++i) {
    std::string lex;
    std::size_t len = rng.between(1, 24);
    for (std::size_t j = 0; j < len; ++j) {
      switch (rng.below(4)) {
        case 0: lex += static_cast<char>(rng.below(0x20)); break;
        case 1: lex += "\"\\"[rng.below(2)]; break;
        case 2: lex += "caf\xC3\xA9"[rng.below(5)]; break;
        default: lex += static_cast<char>('a' + rng.below(26)); break;
      }
    }
    Term o = rng.chance(0.5) ? Term::literal(lex)
                             : Term::lang_literal(lex, "en");
    triples.push_back({Term::iri("http://s"), Term::iri("http://p"), o});
  }
  std::string doc = to_ntriples(triples);
  std::vector<Triple> parsed = parse_ntriples(doc);
  EXPECT_EQ(parsed, triples);
  // Serialization is a fixpoint: parse . serialize is stable byte-for-byte.
  EXPECT_EQ(to_ntriples(parsed), doc);
}

}  // namespace
}  // namespace ahsw::rdf
