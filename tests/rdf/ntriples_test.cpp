#include "rdf/ntriples.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ahsw::rdf {
namespace {

TEST(NTriplesParse, SimpleIriTriple) {
  Triple t = parse_ntriples_line("<http://s> <http://p> <http://o> .");
  EXPECT_EQ(t.s, Term::iri("http://s"));
  EXPECT_EQ(t.p, Term::iri("http://p"));
  EXPECT_EQ(t.o, Term::iri("http://o"));
}

TEST(NTriplesParse, PlainLiteralObject) {
  Triple t = parse_ntriples_line("<http://s> <http://p> \"hello world\" .");
  EXPECT_EQ(t.o, Term::literal("hello world"));
}

TEST(NTriplesParse, LangLiteral) {
  Triple t = parse_ntriples_line("<http://s> <http://p> \"salut\"@fr .");
  EXPECT_EQ(t.o, Term::lang_literal("salut", "fr"));
}

TEST(NTriplesParse, TypedLiteral) {
  Triple t = parse_ntriples_line(
      "<http://s> <http://p> "
      "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .");
  EXPECT_EQ(t.o, Term::integer(5));
}

TEST(NTriplesParse, BlankNodes) {
  Triple t = parse_ntriples_line("_:a <http://p> _:b .");
  EXPECT_EQ(t.s, Term::blank("a"));
  EXPECT_EQ(t.o, Term::blank("b"));
}

TEST(NTriplesParse, EscapedLiteral) {
  Triple t =
      parse_ntriples_line(R"(<http://s> <http://p> "line\nbreak \"q\"" .)");
  EXPECT_EQ(t.o, Term::literal("line\nbreak \"q\""));
}

TEST(NTriplesParse, DocumentSkipsCommentsAndBlanks) {
  auto triples = parse_ntriples(
      "# a comment\n"
      "\n"
      "<http://s> <http://p> <http://o> .\n"
      "   \n"
      "<http://s2> <http://p> \"v\" .\n");
  EXPECT_EQ(triples.size(), 2u);
}

TEST(NTriplesParse, ErrorsCarryLineNumbers) {
  try {
    (void)parse_ntriples("<http://ok> <http://p> <http://o> .\nbogus line\n");
    FAIL() << "expected NTriplesError";
  } catch (const NTriplesError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(NTriplesParse, RejectsLiteralSubject) {
  EXPECT_THROW((void)parse_ntriples_line("\"lit\" <http://p> <http://o> ."),
               NTriplesError);
}

TEST(NTriplesParse, RejectsLiteralPredicate) {
  EXPECT_THROW((void)parse_ntriples_line("<http://s> \"p\" <http://o> ."),
               NTriplesError);
}

TEST(NTriplesParse, RejectsBlankPredicate) {
  EXPECT_THROW((void)parse_ntriples_line("<http://s> _:p <http://o> ."),
               NTriplesError);
}

TEST(NTriplesParse, RejectsMissingDot) {
  EXPECT_THROW((void)parse_ntriples_line("<http://s> <http://p> <http://o>"),
               NTriplesError);
}

TEST(NTriplesParse, RejectsTrailingGarbage) {
  EXPECT_THROW(
      (void)parse_ntriples_line("<http://s> <http://p> <http://o> . junk"),
      NTriplesError);
}

TEST(NTriplesParse, RejectsUnterminatedIri) {
  EXPECT_THROW((void)parse_ntriples_line("<http://s <http://p> <http://o> ."),
               NTriplesError);
}

TEST(NTriplesParse, RejectsUnterminatedLiteral) {
  EXPECT_THROW((void)parse_ntriples_line("<http://s> <http://p> \"open ."),
               NTriplesError);
}

TEST(NTriplesRoundTrip, RandomTriplesSurviveSerialization) {
  common::Rng rng(4242);
  std::vector<Triple> triples;
  for (int i = 0; i < 200; ++i) {
    Term s = rng.chance(0.8)
                 ? Term::iri("http://s/" + std::to_string(rng.below(50)))
                 : Term::blank("b" + std::to_string(rng.below(10)));
    Term p = Term::iri("http://p/" + std::to_string(rng.below(10)));
    Term o;
    switch (rng.below(4)) {
      case 0: o = Term::iri("http://o/" + std::to_string(rng.below(50))); break;
      case 1: o = Term::literal("v\"\n\t\\" + std::to_string(rng.below(50))); break;
      case 2: o = Term::lang_literal("w" + std::to_string(rng.below(9)), "en"); break;
      default: o = Term::integer(static_cast<long long>(rng.below(1000)));
    }
    triples.push_back({s, p, o});
  }
  std::vector<Triple> parsed = parse_ntriples(to_ntriples(triples));
  EXPECT_EQ(parsed, triples);
}

}  // namespace
}  // namespace ahsw::rdf
