#include "rdf/triple.hpp"

#include <gtest/gtest.h>

namespace ahsw::rdf {
namespace {

Triple make_triple() {
  return Triple{Term::iri("http://s"), Term::iri("http://p"),
                Term::literal("o")};
}

TEST(Triple, ToStringIsNTriplesStatement) {
  EXPECT_EQ(make_triple().to_string(), "<http://s> <http://p> \"o\" .");
}

TEST(Triple, EqualityAndOrdering) {
  Triple a = make_triple();
  Triple b = make_triple();
  EXPECT_EQ(a, b);
  b.o = Term::literal("z");
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

TEST(TripleHash, EqualTriplesHashEqual) {
  TripleHash h;
  EXPECT_EQ(h(make_triple()), h(make_triple()));
}

TEST(TripleHash, PositionMatters) {
  TripleHash h;
  Triple a{Term::iri("x"), Term::iri("y"), Term::iri("z")};
  Triple b{Term::iri("y"), Term::iri("x"), Term::iri("z")};
  EXPECT_NE(h(a), h(b));
}

TEST(PatternTerm, VarAndTermHelpers) {
  PatternTerm v = Variable{"x"};
  PatternTerm t = Term::iri("http://a");
  EXPECT_TRUE(is_var(v));
  EXPECT_FALSE(is_var(t));
  EXPECT_EQ(var_of(v)->name, "x");
  EXPECT_EQ(var_of(t), nullptr);
  EXPECT_EQ(term_of(t)->lexical(), "http://a");
  EXPECT_EQ(term_of(v), nullptr);
}

TEST(TriplePattern, BoundCountCoversAllShapes) {
  Term s = Term::iri("s"), p = Term::iri("p"), o = Term::iri("o");
  Variable vs{"s"}, vp{"p"}, vo{"o"};
  EXPECT_EQ((TriplePattern{s, p, o}).bound_count(), 3);
  EXPECT_EQ((TriplePattern{s, p, vo}).bound_count(), 2);
  EXPECT_EQ((TriplePattern{s, vp, o}).bound_count(), 2);
  EXPECT_EQ((TriplePattern{vs, p, o}).bound_count(), 2);
  EXPECT_EQ((TriplePattern{s, vp, vo}).bound_count(), 1);
  EXPECT_EQ((TriplePattern{vs, p, vo}).bound_count(), 1);
  EXPECT_EQ((TriplePattern{vs, vp, o}).bound_count(), 1);
  EXPECT_EQ((TriplePattern{vs, vp, vo}).bound_count(), 0);
}

TEST(TriplePattern, MatchesIgnoresVariablePositions) {
  Triple t = make_triple();
  TriplePattern p{Variable{"x"}, Term::iri("http://p"), Variable{"y"}};
  EXPECT_TRUE(p.matches(t));
  TriplePattern q{Variable{"x"}, Term::iri("http://other"), Variable{"y"}};
  EXPECT_FALSE(q.matches(t));
}

TEST(TriplePattern, MatchesChecksEveryBoundPosition) {
  Triple t = make_triple();
  EXPECT_TRUE((TriplePattern{t.s, t.p, t.o}).matches(t));
  EXPECT_FALSE((TriplePattern{t.s, t.p, Term::literal("no")}).matches(t));
  EXPECT_FALSE((TriplePattern{Term::iri("no"), t.p, t.o}).matches(t));
}

TEST(TriplePattern, RepeatedVariableIsNotEnforcedHere) {
  // (?x, p, ?x) matching is a binding-level constraint; the raw pattern
  // match accepts any s/o combination.
  Triple t{Term::iri("a"), Term::iri("p"), Term::iri("b")};
  TriplePattern p{Variable{"x"}, Term::iri("p"), Variable{"x"}};
  EXPECT_TRUE(p.matches(t));
}

TEST(TriplePattern, ToStringShowsVariablesWithQuestionMark) {
  TriplePattern p{Variable{"x"}, Term::iri("http://p"), Term::literal("v")};
  EXPECT_EQ(p.to_string(), "?x <http://p> \"v\"");
}

TEST(TriplePattern, ByteSizeCountsAllPositions) {
  TriplePattern p{Variable{"x"}, Term::iri("http://p"), Variable{"y"}};
  EXPECT_GT(p.byte_size(), Term::iri("http://p").byte_size());
}

}  // namespace
}  // namespace ahsw::rdf
