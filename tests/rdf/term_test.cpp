#include "rdf/term.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ahsw::rdf {
namespace {

TEST(Term, IriFactoryAndAccessors) {
  Term t = Term::iri("http://example.org/a");
  EXPECT_TRUE(t.is_iri());
  EXPECT_FALSE(t.is_literal());
  EXPECT_FALSE(t.is_blank());
  EXPECT_EQ(t.lexical(), "http://example.org/a");
  EXPECT_EQ(t.to_string(), "<http://example.org/a>");
}

TEST(Term, PlainLiteral) {
  Term t = Term::literal("hello");
  EXPECT_TRUE(t.is_literal());
  EXPECT_EQ(t.to_string(), "\"hello\"");
  EXPECT_TRUE(t.datatype().empty());
  EXPECT_TRUE(t.lang().empty());
}

TEST(Term, LangLiteral) {
  Term t = Term::lang_literal("bonjour", "fr");
  EXPECT_EQ(t.lang(), "fr");
  EXPECT_EQ(t.to_string(), "\"bonjour\"@fr");
}

TEST(Term, TypedLiteral) {
  Term t = Term::typed_literal("5", std::string(xsd::kInteger));
  EXPECT_EQ(t.datatype(), xsd::kInteger);
  EXPECT_EQ(t.to_string(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>");
}

TEST(Term, BlankNode) {
  Term t = Term::blank("b1");
  EXPECT_TRUE(t.is_blank());
  EXPECT_EQ(t.to_string(), "_:b1");
}

TEST(Term, IntegerConvenience) {
  Term t = Term::integer(-42);
  double v = 0;
  ASSERT_TRUE(t.numeric_value(v));
  EXPECT_EQ(v, -42.0);
}

TEST(Term, RealConvenience) {
  Term t = Term::real(2.5);
  double v = 0;
  ASSERT_TRUE(t.numeric_value(v));
  EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(Term, NumericValueOfPlainNumberLiteral) {
  double v = 0;
  EXPECT_TRUE(Term::literal("17").numeric_value(v));
  EXPECT_EQ(v, 17.0);
}

TEST(Term, NumericValueRejectsNonNumbers) {
  double v = 0;
  EXPECT_FALSE(Term::literal("abc").numeric_value(v));
  EXPECT_FALSE(Term::literal("1x").numeric_value(v));
  EXPECT_FALSE(Term::literal("").numeric_value(v));
  EXPECT_FALSE(Term::iri("http://4").numeric_value(v));
  EXPECT_FALSE(
      Term::typed_literal("5", "http://example.org/custom").numeric_value(v));
}

TEST(Term, LiteralEscapingInSurfaceForm) {
  Term t = Term::literal("say \"hi\"\nplease");
  EXPECT_EQ(t.to_string(), "\"say \\\"hi\\\"\\nplease\"");
}

TEST(Term, EqualityDistinguishesKinds) {
  // Same lexical form, different kinds: all distinct terms.
  Term iri = Term::iri("x");
  Term lit = Term::literal("x");
  Term blank = Term::blank("x");
  EXPECT_NE(iri, lit);
  EXPECT_NE(lit, blank);
  EXPECT_NE(iri, blank);
}

TEST(Term, EqualityDistinguishesDatatypeAndLang) {
  EXPECT_NE(Term::literal("5"), Term::integer(5));
  EXPECT_NE(Term::lang_literal("a", "en"), Term::lang_literal("a", "de"));
  EXPECT_NE(Term::lang_literal("a", "en"), Term::literal("a"));
}

TEST(Term, OrderingIsTotalAndDeterministic) {
  Term a = Term::iri("a");
  Term b = Term::iri("b");
  EXPECT_LT(a, b);
  EXPECT_FALSE(b < a);
  EXPECT_FALSE(a < a);
}

TEST(Term, DefaultConstructedIsEmptyIri) {
  Term t;
  EXPECT_TRUE(t.is_iri());
  EXPECT_TRUE(t.lexical().empty());
}

TEST(Term, StreamOperatorMatchesToString) {
  std::ostringstream os;
  os << Term::lang_literal("hi", "en");
  EXPECT_EQ(os.str(), "\"hi\"@en");
}

TEST(TermHash, EqualTermsHashEqual) {
  TermHash h;
  EXPECT_EQ(h(Term::integer(7)), h(Term::integer(7)));
}

TEST(TermHash, KindsChangeHash) {
  TermHash h;
  EXPECT_NE(h(Term::iri("x")), h(Term::literal("x")));
  EXPECT_NE(h(Term::literal("x")), h(Term::blank("x")));
}

TEST(Term, ByteSizeGrowsWithContent) {
  EXPECT_LT(Term::literal("a").byte_size(), Term::literal("abcdef").byte_size());
  EXPECT_GT(Term::lang_literal("a", "en").byte_size(),
            Term::literal("a").byte_size());
}

}  // namespace
}  // namespace ahsw::rdf
