// Span-tree tests: the Fig. 3 phase structure of one primitive query under
// each strategy, and the attribution invariant — every charged message and
// timeout lands in exactly one span, so span sums reproduce the query's
// TrafficStats delta.
#include <gtest/gtest.h>

#include "dqp/processor.hpp"
#include "obs/trace.hpp"
#include "overlay/overlay.hpp"

namespace ahsw::obs {
namespace {

std::vector<SpanKind> child_kinds(const QueryTrace& t, SpanId id) {
  std::vector<SpanKind> out;
  for (SpanId c : t.span(id).children) out.push_back(t.span(c).kind);
  return out;
}

std::vector<const Span*> spans_of_kind(const QueryTrace& t, SpanKind k) {
  std::vector<const Span*> out;
  for (const Span& s : t.spans()) {
    if (s.kind == k) out.push_back(&s);
  }
  return out;
}

/// Three providers with frequencies 9 / 1 / 3 in address order, so the
/// frequency chain (ascending, largest last) must reorder them, plus one
/// data-free device acting as the query initiator.
struct Bed {
  net::Network network;
  overlay::HybridOverlay ov{network};
  std::vector<net::NodeAddress> devices;

  Bed() {
    for (int i = 0; i < 8; ++i) ov.add_index_node();
    ov.ring().fix_all_fingers_oracle();
    for (int i = 0; i < 4; ++i) devices.push_back(ov.add_storage_node());
    rdf::Term p = rdf::Term::iri("http://example.org/p");
    rdf::Term target = rdf::Term::iri("http://example.org/target");
    const int sizes[3] = {9, 1, 3};
    for (std::size_t pi = 0; pi < 3; ++pi) {
      std::vector<rdf::Triple> triples;
      for (int j = 0; j < sizes[pi]; ++j) {
        triples.push_back(
            {rdf::Term::iri("http://example.org/s" + std::to_string(pi) +
                            "_" + std::to_string(j)),
             p, target});
      }
      ov.share_triples(devices[pi], triples, 0);
    }
    network.reset_stats();
  }

  net::NodeAddress initiator() const { return devices.back(); }
};

constexpr const char* kQueryText =
    "SELECT ?x WHERE { ?x <http://example.org/p> "
    "<http://example.org/target> . }";

void run_traced(Bed& bed, optimizer::PrimitiveStrategy strategy,
                QueryTrace& trace, dqp::ExecutionReport& rep) {
  dqp::ExecutionPolicy policy;
  policy.primitive = strategy;
  dqp::DistributedQueryProcessor proc(bed.ov, policy);
  proc.set_trace(&trace);
  sparql::QueryResult out = proc.execute(kQueryText, bed.initiator(), &rep);
  EXPECT_EQ(out.solutions.size(), 13u);  // 9 + 1 + 3 matches
}

TEST(SpanTree, BasicStrategyPhases) {
  Bed bed;
  QueryTrace trace;
  dqp::ExecutionReport rep;
  run_traced(bed, optimizer::PrimitiveStrategy::kBasic, trace, rep);

  ASSERT_EQ(trace.roots().size(), 1u);
  const Span& root = trace.span(trace.roots().front());
  EXPECT_EQ(root.kind, SpanKind::kQuery);
  EXPECT_EQ(root.site, bed.initiator());
  EXPECT_EQ(child_kinds(trace, root.id),
            (std::vector<SpanKind>{SpanKind::kPlan, SpanKind::kIndexLookup,
                                   SpanKind::kPattern, SpanKind::kShip,
                                   SpanKind::kPostProcess}));

  // Scatter/gather: one sub-query ship and one local execution per provider,
  // no chain hops.
  EXPECT_EQ(spans_of_kind(trace, SpanKind::kSubQueryShip).size(), 3u);
  EXPECT_EQ(spans_of_kind(trace, SpanKind::kLocalExec).size(), 3u);
  EXPECT_TRUE(spans_of_kind(trace, SpanKind::kChainHop).empty());

  // The plan phase is local computation: no traffic.
  const Span& plan = *spans_of_kind(trace, SpanKind::kPlan).front();
  EXPECT_EQ(plan.messages, 0u);
  EXPECT_EQ(plan.bytes, 0u);
}

TEST(SpanTree, ChainStrategyVisitsProvidersAsHops) {
  Bed bed;
  QueryTrace trace;
  dqp::ExecutionReport rep;
  run_traced(bed, optimizer::PrimitiveStrategy::kChain, trace, rep);

  std::vector<const Span*> hops = spans_of_kind(trace, SpanKind::kChainHop);
  ASSERT_EQ(hops.size(), 3u);
  EXPECT_TRUE(spans_of_kind(trace, SpanKind::kLocalExec).empty());
  // Address order, and logically sequential: each hop starts no earlier
  // than the previous one.
  EXPECT_EQ(hops[0]->site, bed.devices[0]);
  EXPECT_EQ(hops[1]->site, bed.devices[1]);
  EXPECT_EQ(hops[2]->site, bed.devices[2]);
  EXPECT_LE(hops[0]->begin, hops[1]->begin);
  EXPECT_LE(hops[1]->begin, hops[2]->begin);
}

TEST(SpanTree, FrequencyChainVisitsLargestProviderLast) {
  Bed bed;
  QueryTrace trace;
  dqp::ExecutionReport rep;
  run_traced(bed, optimizer::PrimitiveStrategy::kFrequencyChain, trace, rep);

  std::vector<const Span*> hops = spans_of_kind(trace, SpanKind::kChainHop);
  ASSERT_EQ(hops.size(), 3u);
  // Ascending frequency: 1 (device 1), 3 (device 2), 9 (device 0).
  EXPECT_EQ(hops[0]->site, bed.devices[1]);
  EXPECT_EQ(hops[1]->site, bed.devices[2]);
  EXPECT_EQ(hops[2]->site, bed.devices[0]);
}

TEST(SpanTree, SpanSumsReproduceTrafficDelta) {
  using optimizer::PrimitiveStrategy;
  for (PrimitiveStrategy strategy :
       {PrimitiveStrategy::kBasic, PrimitiveStrategy::kChain,
        PrimitiveStrategy::kFrequencyChain}) {
    Bed bed;
    QueryTrace trace;
    dqp::ExecutionReport rep;
    run_traced(bed, strategy, trace, rep);

    SCOPED_TRACE(optimizer::primitive_strategy_name(strategy));
    EXPECT_EQ(trace.unattributed_messages(), 0u);
    EXPECT_EQ(trace.unattributed_bytes(), 0u);
    EXPECT_EQ(trace.total_messages(), rep.traffic.messages);
    EXPECT_EQ(trace.total_bytes(), rep.traffic.bytes);
    EXPECT_EQ(trace.total_timeouts(), rep.traffic.timeouts);
    ASSERT_EQ(trace.roots().size(), 1u);
    EXPECT_EQ(trace.subtree_bytes(trace.roots().front()), rep.traffic.bytes);
  }
}

TEST(SpanTree, TraceClearAllowsReuseAcrossQueries) {
  Bed bed;
  QueryTrace trace;
  dqp::ExecutionPolicy policy;
  dqp::DistributedQueryProcessor proc(bed.ov, policy);
  proc.set_trace(&trace);
  (void)proc.execute(kQueryText, bed.initiator(), nullptr);
  trace.clear();
  dqp::ExecutionReport rep;
  (void)proc.execute(kQueryText, bed.initiator(), &rep);
  ASSERT_EQ(trace.roots().size(), 1u);
  EXPECT_EQ(trace.total_bytes(), rep.traffic.bytes);
}

TEST(SpanTree, FailedProviderTimeoutIsTracedAndAttributed) {
  Bed bed;
  bed.ov.storage_node_fail(bed.devices[0]);  // crash: index rows stay stale

  QueryTrace trace;
  dqp::ExecutionReport rep;
  dqp::ExecutionPolicy policy;
  policy.primitive = optimizer::PrimitiveStrategy::kBasic;
  dqp::DistributedQueryProcessor proc(bed.ov, policy);
  proc.set_trace(&trace);
  sparql::QueryResult out = proc.execute(kQueryText, bed.initiator(), &rep);
  EXPECT_EQ(out.solutions.size(), 4u);  // the dead provider's 9 rows are lost

  // The timeout is counted, categorized as sub-query traffic, and appears
  // as a kTimeout leaf naming the suspect inside the per-provider span.
  ASSERT_GE(rep.traffic.timeouts, 1u);
  EXPECT_EQ(
      rep.traffic.timeouts_by[static_cast<std::size_t>(net::Category::kQuery)],
      rep.traffic.timeouts);
  EXPECT_EQ(trace.total_timeouts(), rep.traffic.timeouts);

  std::vector<const Span*> waits = spans_of_kind(trace, SpanKind::kTimeout);
  ASSERT_EQ(waits.size(), rep.traffic.timeouts);
  const Span& wait = *waits.front();
  EXPECT_EQ(wait.site, bed.devices[0]);
  EXPECT_EQ(wait.timeouts, 1u);
  EXPECT_EQ(
      wait.timeouts_by[static_cast<std::size_t>(net::Category::kQuery)], 1u);
  ASSERT_NE(wait.parent, kNoSpan);
  EXPECT_EQ(trace.span(wait.parent).kind, SpanKind::kLocalExec);
  // The charged wait is visible in the span's time bounds.
  EXPECT_GE(wait.end - wait.begin,
            bed.network.cost_model().timeout_ms - 1e-9);
}

}  // namespace
}  // namespace ahsw::obs
