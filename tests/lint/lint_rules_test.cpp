// Fixture-corpus tests: each known-bad snippet under tests/lint/fixtures/
// demonstrates one rule and pins the exact diagnostic output (golden
// .expected file). A fixture's first line names the path label it is
// linted under, so whitelists and layering behave as they would in-tree.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "lint/engine.hpp"

namespace {

using namespace ahsw;

/// Mirrors the shape of tools/ahsw_layers.spec, scoped down to the modules
/// the fixtures use.
constexpr std::string_view kFixtureSpec =
    "common:\n"
    "net: common\n"
    "obs: common net\n"
    "overlay: common net obs\n"
    "dqp: common net obs overlay\n"
    "tools: *\n";

lint::LintConfig fixture_config() {
  lint::LintConfig cfg;
  cfg.layers = lint::LayerSpec::parse(kFixtureSpec);
  return cfg;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

lint::LintReport run_fixture(const std::string& name) {
  const std::string dir = AHSW_LINT_FIXTURE_DIR;
  std::string text = read_file(dir + "/" + name + ".cppsnip");
  constexpr std::string_view kTag = "// ahsw-lint-fixture: ";
  EXPECT_EQ(text.rfind(kTag, 0), 0u) << name << " missing fixture tag";
  std::string label =
      text.substr(kTag.size(), text.find('\n') - kTag.size());
  return lint::lint_source(label, text, fixture_config());
}

std::string diagnostics_of(const lint::LintReport& report) {
  std::string out;
  for (const lint::Diagnostic& d : report.diagnostics) {
    out += d.to_string() + "\n";
  }
  return out;
}

void expect_golden(const std::string& name) {
  lint::LintReport report = run_fixture(name);
  std::string expected = read_file(std::string(AHSW_LINT_FIXTURE_DIR) + "/" +
                                   name + ".expected");
  EXPECT_EQ(diagnostics_of(report), expected) << "fixture: " << name;
}

TEST(LintFixtures, D1WallClockAndRand) { expect_golden("d1_wall_clock"); }

TEST(LintFixtures, D2UnorderedIteration) {
  expect_golden("d2_unordered_iteration");
}

TEST(LintFixtures, D3UnorderedMemberContract) {
  expect_golden("d3_unordered_member");
}

TEST(LintFixtures, A1UncategorizedSend) {
  expect_golden("a1_uncategorized_send");
}

TEST(LintFixtures, A1RawBytesCharged) { expect_golden("a1_raw_bytes_charged"); }

TEST(LintFixtures, A2CounterMutation) { expect_golden("a2_counter_mutation"); }

TEST(LintFixtures, A2WireCounterMutation) {
  expect_golden("a2_wire_counter_mutation");
}

TEST(LintFixtures, A2CacheCounterMutation) {
  expect_golden("a2_cache_counter_mutation");
}

TEST(LintFixtures, O1ManualSpan) { expect_golden("o1_manual_span"); }

TEST(LintFixtures, O2DefaultInGuardedSwitch) {
  expect_golden("o2_default_switch");
}

TEST(LintFixtures, L1LayeringViolation) { expect_golden("l1_layering"); }

TEST(LintFixtures, L2UnknownModule) { expect_golden("l2_unknown_module"); }

TEST(LintFixtures, SuppressionWithoutJustificationRejected) {
  expect_golden("s1_unjustified");
  lint::LintReport report = run_fixture("s1_unjustified");
  // The original diagnostic must survive: an unjustified allow() is void.
  EXPECT_EQ(report.by_rule.count("D1"), 1u);
  EXPECT_EQ(report.suppressed, 0u);
}

TEST(LintFixtures, JustifiedSuppressionHonored) {
  lint::LintReport report = run_fixture("suppressed_ok");
  EXPECT_TRUE(report.clean()) << diagnostics_of(report);
  EXPECT_EQ(report.suppressed, 1u);
}

TEST(LintFixtures, CleanCorpusStaysClean) {
  lint::LintReport report = run_fixture("clean");
  EXPECT_TRUE(report.clean()) << diagnostics_of(report);
  EXPECT_EQ(report.suppressed, 0u);
}

// Tokenizer edge cases exercised through the full rule pipeline: each
// fixture spells banned identifiers inside text the tokenizer must strip
// (raw strings with custom delimiters, a comment spliced across lines,
// adjacent string literals), so any leak shows up as a D1 diagnostic
// against the empty golden file.

TEST(LintFixtures, RawStringCustomDelimiterStripped) {
  expect_golden("tok_raw_string_delim");
}

TEST(LintFixtures, LineCommentBackslashSpliceStripped) {
  expect_golden("tok_comment_splice");
}

TEST(LintFixtures, AdjacentStringLiteralsStripped) {
  expect_golden("tok_adjacent_strings");
}

// --- effect-analysis fixtures (rule family P) ---------------------------
// These run the whole-program pass (analyze_effects) instead of the
// token-rule pipeline, against a scoped-down shared-state spec.

constexpr std::string_view kEffectsFixtureSpec =
    "root DagExecutor::run\n"
    "state LocationCache home=src/overlay/location_cache hints=cache:"
    " insert invalidate\n"
    "surface DagExecutor::fire_cache_warm state=LocationCache:"
    " setup-time prefill, not a dispatch surface\n"
    "singleton sanctioned_sink: declared singleton for the P3 fixture\n";

lint::SharedStateSpec effects_fixture_spec() {
  std::vector<std::string> errors;
  lint::SharedStateSpec spec =
      lint::SharedStateSpec::parse(kEffectsFixtureSpec, &errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  return spec;
}

lint::EffectsReport run_effects_fixture(const std::string& name) {
  const std::string dir = AHSW_LINT_FIXTURE_DIR;
  std::string text = read_file(dir + "/" + name + ".cppsnip");
  constexpr std::string_view kTag = "// ahsw-lint-fixture: ";
  EXPECT_EQ(text.rfind(kTag, 0), 0u) << name << " missing fixture tag";
  std::string label =
      text.substr(kTag.size(), text.find('\n') - kTag.size());
  return lint::analyze_effects({lint::tokenize(label, text)},
                               effects_fixture_spec(),
                               fixture_config().layers);
}

void expect_effects_golden(const std::string& name) {
  lint::EffectsReport report = run_effects_fixture(name);
  std::string out;
  for (const lint::Diagnostic& d : report.diagnostics) {
    out += d.to_string() + "\n";
  }
  std::string expected = read_file(std::string(AHSW_LINT_FIXTURE_DIR) + "/" +
                                   name + ".expected");
  EXPECT_EQ(out, expected) << "fixture: " << name;
}

TEST(LintFixtures, P1UndeclaredSharedMutation) {
  expect_effects_golden("p1_undeclared_shared_mutation");
}

TEST(LintFixtures, P2DispatchPathMutation) {
  expect_effects_golden("p2_dispatch_mutation");
}

TEST(LintFixtures, P3UndeclaredStatic) {
  expect_effects_golden("p3_undeclared_static");
}

TEST(LintFixtures, P4LedgerGolden) {
  // The P2 fixture's touch point, rendered as the stable ledger JSON: the
  // golden file pins the schema (schema_version, dedup, no line numbers).
  lint::EffectsReport report = run_effects_fixture("p2_dispatch_mutation");
  std::string expected = read_file(std::string(AHSW_LINT_FIXTURE_DIR) +
                                   "/p4_ledger.expected");
  EXPECT_EQ(report.ledger_json(effects_fixture_spec()), expected);
}

// --- race-analysis fixtures (rule family C) ------------------------------
// These run the race analysis (analyze_races) against a scoped-down spec
// with worker/master roots, a record surface, and one state each of the
// merge=state-log and role=master flavors.

constexpr std::string_view kRacesFixtureSpec =
    "root DagExecutor::run\n"
    "master_root run_parallel_batch\n"
    "record DagExecutor::record\n"
    "state LocationCache home=src/overlay/location_cache hints=cache:"
    " insert invalidate\n"
    "surface DagExecutor::fire_lookup state=LocationCache dispatch"
    " merge=state-log: keyed insert, replayed on the master\n"
    "surface replay_action state=LocationCache role=master:"
    " master-side StateLog replay\n";

lint::SharedStateSpec races_fixture_spec() {
  std::vector<std::string> errors;
  lint::SharedStateSpec spec =
      lint::SharedStateSpec::parse(kRacesFixtureSpec, &errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  return spec;
}

lint::RacesReport run_races_fixture(const std::string& name) {
  const std::string dir = AHSW_LINT_FIXTURE_DIR;
  std::string text = read_file(dir + "/" + name + ".cppsnip");
  constexpr std::string_view kTag = "// ahsw-lint-fixture: ";
  EXPECT_EQ(text.rfind(kTag, 0), 0u) << name << " missing fixture tag";
  std::string label =
      text.substr(kTag.size(), text.find('\n') - kTag.size());
  return lint::analyze_races({lint::tokenize(label, text)},
                             races_fixture_spec(),
                             fixture_config().layers);
}

void expect_races_golden(const std::string& name) {
  lint::RacesReport report = run_races_fixture(name);
  std::string out;
  for (const lint::Diagnostic& d : report.diagnostics) {
    out += d.to_string() + "\n";
  }
  std::string expected = read_file(std::string(AHSW_LINT_FIXTURE_DIR) + "/" +
                                   name + ".expected");
  EXPECT_EQ(out, expected) << "fixture: " << name;
}

TEST(LintFixtures, C1UnrecordedStateLogMutation) {
  expect_races_golden("c1_unrecorded_mutation");
}

TEST(LintFixtures, C2WorkerReachesReplaySurface) {
  expect_races_golden("c2_worker_reaches_replay");
}

TEST(LintFixtures, C3CrossRoleStatic) {
  expect_races_golden("c3_cross_role_static");
}

TEST(LintFixtures, C4UnguardedMemberAccess) {
  expect_races_golden("c4_unguarded_member");
}

TEST(LintFixtures, C5RacesLedgerGolden) {
  // The C1 fixture's touch point as the stable race ledger JSON: the site
  // stays in the ledger (with role, discipline, and worker path) whether or
  // not the record obligation is met.
  lint::RacesReport report = run_races_fixture("c1_unrecorded_mutation");
  std::string expected = read_file(std::string(AHSW_LINT_FIXTURE_DIR) +
                                   "/c5_races_ledger.expected");
  EXPECT_EQ(report.ledger_json(), expected);
}

}  // namespace
