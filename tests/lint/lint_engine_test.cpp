// Engine-level tests: layer-spec parsing, module mapping, suppression
// attachment, nesting-aware switch scanning, and report rendering.
#include <string>

#include <gtest/gtest.h>

#include "lint/engine.hpp"

namespace {

using namespace ahsw;

lint::LintConfig config_with(std::string_view spec) {
  lint::LintConfig cfg;
  cfg.layers = lint::LayerSpec::parse(spec);
  return cfg;
}

TEST(LayerSpec, ParseAndAllows) {
  std::vector<std::string> errors;
  lint::LayerSpec spec = lint::LayerSpec::parse(
      "# comment\ncommon:\nnet: common\ntools: *\n", &errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_TRUE(spec.known("common"));
  EXPECT_TRUE(spec.known("net"));
  EXPECT_FALSE(spec.known("dqp"));
  EXPECT_TRUE(spec.allows("net", "common"));
  EXPECT_FALSE(spec.allows("net", "obs"));
  EXPECT_TRUE(spec.allows("tools", "anything"));
  EXPECT_FALSE(spec.allows("unknown", "common"));
}

TEST(LayerSpec, MalformedLineReported) {
  std::vector<std::string> errors;
  lint::LayerSpec::parse("net common\n", &errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("line 1"), std::string::npos);
}

TEST(ModuleOf, PathMapping) {
  EXPECT_EQ(lint::module_of("src/net/network.cpp"), "net");
  EXPECT_EQ(lint::module_of("src/dqp/executor.hpp"), "dqp");
  EXPECT_EQ(lint::module_of("tools/ahsw_shell.cpp"), "tools");
  EXPECT_EQ(lint::module_of("bench/bench_util.hpp"), "bench");
  EXPECT_EQ(lint::module_of("README.md"), "");
  EXPECT_EQ(lint::module_of("src/loose_file.cpp"), "");
}

TEST(Rules, SelfIncludeAlwaysAllowed) {
  lint::LintConfig cfg = config_with("net: common\ncommon:\n");
  lint::LintReport r = lint::lint_source(
      "src/net/cost.cpp", "#include \"net/network.hpp\"\n", cfg);
  EXPECT_TRUE(r.clean());
}

TEST(Rules, A1CategoryVariableCounts) {
  // Forwarding a `category` parameter is an explicit choice, not an
  // omission: ship()-style helpers must not be flagged.
  lint::LintConfig cfg = config_with("dqp: net common\nnet:\ncommon:\n");
  lint::LintReport r = lint::lint_source(
      "src/dqp/f.cpp",
      "double go(N& net, C category, double now) {\n"
      "  return net.send(1, 2, 8, now, category);\n"
      "}\n",
      cfg);
  EXPECT_TRUE(r.clean());
}

TEST(Rules, O2IsNestingAware) {
  lint::LintConfig cfg = config_with("dqp: common\ncommon:\n");
  // Outer switch over a guarded enum with no default; the inner switch is
  // over an unguarded enum and may keep its default. Mirrors
  // describe_op() in dqp/physical_plan.cpp.
  const char* src =
      "const char* f(PhysOpKind k, AlgebraKind a) {\n"
      "  switch (k) {\n"
      "    case PhysOpKind::kJoin: {\n"
      "      switch (a) {\n"
      "        case AlgebraKind::kProject: return \"p\";\n"
      "        default: return \"m\";\n"
      "      }\n"
      "    }\n"
      "    case PhysOpKind::kShip: return \"s\";\n"
      "  }\n"
      "  return \"\";\n"
      "}\n";
  lint::LintReport r = lint::lint_source("src/dqp/f.cpp", src, cfg);
  EXPECT_TRUE(r.clean()) << r.to_string();

  // Flip it: the inner switch is over the guarded enum and has a default.
  const char* bad =
      "const char* f(TaskKind k, SpanKind s) {\n"
      "  switch (k) {\n"
      "    case TaskKind::kShip: {\n"
      "      switch (s) {\n"
      "        case SpanKind::kQuery: return \"q\";\n"
      "        default: return \"?\";\n"
      "      }\n"
      "    }\n"
      "    default: return \"d\";\n"
      "  }\n"
      "}\n";
  lint::LintReport r2 = lint::lint_source("src/dqp/f.cpp", bad, cfg);
  ASSERT_EQ(r2.diagnostics.size(), 1u) << r2.to_string();
  EXPECT_EQ(r2.diagnostics[0].rule, "O2");
  EXPECT_EQ(r2.diagnostics[0].line, 6);  // the inner default, not line 9
}

TEST(Rules, DefaultedSpecialMemberIsNotADefaultLabel) {
  lint::LintConfig cfg = config_with("dqp: common\ncommon:\n");
  const char* src =
      "struct S {\n"
      "  S() = default;\n"
      "};\n"
      "int f(Category c) {\n"
      "  switch (c) {\n"
      "    case Category::kRouting: return 1;\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  lint::LintReport r = lint::lint_source("src/dqp/f.cpp", src, cfg);
  EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(Suppression, BlockCommentAttachesToNextCodeLine) {
  lint::LintConfig cfg = config_with("dqp: common\ncommon:\n");
  const char* src =
      "int f() {\n"
      "  // ahsw-lint: allow(D1) deliberate: exercising the suppressor\n"
      "  // across a multi-line comment block.\n"
      "  return std::rand();\n"
      "}\n";
  lint::LintReport r = lint::lint_source("src/dqp/f.cpp", src, cfg);
  EXPECT_TRUE(r.clean()) << r.to_string();
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(Suppression, BlankLineBreaksAttachment) {
  lint::LintConfig cfg = config_with("dqp: common\ncommon:\n");
  const char* src =
      "int f() {\n"
      "  // ahsw-lint: allow(D1) justified but detached\n"
      "\n"
      "  return std::rand();\n"
      "}\n";
  lint::LintReport r = lint::lint_source("src/dqp/f.cpp", src, cfg);
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "D1");
}

TEST(Suppression, WrongRuleDoesNotSuppress) {
  lint::LintConfig cfg = config_with("dqp: common\ncommon:\n");
  const char* src =
      "int f() {\n"
      "  // ahsw-lint: allow(O1) wrong family entirely\n"
      "  return std::rand();\n"
      "}\n";
  lint::LintReport r = lint::lint_source("src/dqp/f.cpp", src, cfg);
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "D1");
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(Report, SummaryAndJsonShape) {
  lint::LintConfig cfg = config_with("dqp: common\ncommon:\n");
  lint::LintReport r =
      lint::lint_source("src/dqp/f.cpp", "int f() { return std::rand(); }\n",
                        cfg);
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.by_rule.at("D1"), 1u);
  EXPECT_NE(r.to_string().find("ahsw-lint: 1 diagnostic(s)"),
            std::string::npos);

  std::string json = r.to_json();
  EXPECT_NE(json.find("\"tool\": \"ahsw-lint\""), std::string::npos);
  // Pinned: bump kJsonSchemaVersion (and this test) only with a consumer
  // migration path — CI artifacts are parsed by schema_version.
  EXPECT_EQ(lint::kJsonSchemaVersion, 1);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"diagnostic_count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"by_rule\": {\"D1\": 1}"), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/dqp/f.cpp\""), std::string::npos);

  lint::LintReport clean =
      lint::lint_source("src/dqp/g.cpp", "int g() { return 0; }\n", cfg);
  EXPECT_NE(clean.to_string().find("ahsw-lint: clean"), std::string::npos);
}

}  // namespace
