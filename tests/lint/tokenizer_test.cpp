#include <gtest/gtest.h>

#include "lint/source.hpp"

namespace {

using namespace ahsw;
using lint::SourceFile;
using lint::Token;

TEST(Tokenizer, IdentifiersPunctAndLines) {
  SourceFile f = lint::tokenize("x.cpp", "int a = 1;\nreturn a->b;\n");
  ASSERT_GE(f.tokens.size(), 9u);
  EXPECT_TRUE(f.tokens[0].ident("int"));
  EXPECT_EQ(f.tokens[0].line, 1);
  EXPECT_TRUE(f.tokens[1].ident("a"));
  EXPECT_TRUE(f.tokens[2].is("="));
  EXPECT_EQ(f.tokens[3].kind, Token::Kind::kNumber);
  // Multi-char operator tokenized as one token.
  bool saw_arrow = false;
  for (const Token& t : f.tokens) {
    if (t.is("->")) {
      saw_arrow = true;
      EXPECT_EQ(t.line, 2);
    }
  }
  EXPECT_TRUE(saw_arrow);
}

TEST(Tokenizer, CommentsAreCapturedNotTokenized) {
  SourceFile f = lint::tokenize(
      "x.cpp", "// rand() here is prose\nint x; /* std::rand */\n");
  for (const Token& t : f.tokens) {
    EXPECT_NE(t.text, "rand") << "comment text leaked into tokens";
  }
  ASSERT_EQ(f.comments.size(), 2u);
  EXPECT_EQ(f.comments[0].begin, 1);
  EXPECT_NE(f.comments[0].text.find("rand"), std::string::npos);
  EXPECT_EQ(f.comments[1].begin, 2);
}

TEST(Tokenizer, BlockCommentLineRange) {
  SourceFile f =
      lint::tokenize("x.cpp", "/* one\n two\n three */\nint after;\n");
  ASSERT_EQ(f.comments.size(), 1u);
  EXPECT_EQ(f.comments[0].begin, 1);
  EXPECT_EQ(f.comments[0].end, 3);
  ASSERT_FALSE(f.tokens.empty());
  EXPECT_EQ(f.tokens[0].line, 4);
}

TEST(Tokenizer, StringContentsAreStripped) {
  SourceFile f = lint::tokenize(
      "x.cpp", "const char* s = \"std::rand() and steady_clock\";\n");
  for (const Token& t : f.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "steady_clock");
  }
  bool saw_string = false;
  for (const Token& t : f.tokens) {
    if (t.kind == Token::Kind::kString) saw_string = true;
  }
  EXPECT_TRUE(saw_string);
}

TEST(Tokenizer, RawStringsSwallowFakeDelimiters) {
  SourceFile f = lint::tokenize(
      "x.cpp", "auto s = R\"(quote \" and */ inside)\";\nint after;\n");
  EXPECT_TRUE(f.comments.empty());
  bool saw_after = false;
  for (const Token& t : f.tokens) {
    if (t.ident("after")) {
      saw_after = true;
      EXPECT_EQ(t.line, 2);
    }
  }
  EXPECT_TRUE(saw_after);
}

TEST(Tokenizer, IncludesAreExtracted) {
  SourceFile f = lint::tokenize(
      "x.cpp", "#include <chrono>\n#include \"net/network.hpp\"\n");
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_EQ(f.includes[0].path, "chrono");
  EXPECT_TRUE(f.includes[0].angled);
  EXPECT_EQ(f.includes[0].line, 1);
  EXPECT_EQ(f.includes[1].path, "net/network.hpp");
  EXPECT_FALSE(f.includes[1].angled);
  EXPECT_EQ(f.includes[1].line, 2);
}

TEST(Tokenizer, PreprocessorBodiesAreNotRuleInput) {
  SourceFile f = lint::tokenize(
      "x.cpp", "#define NOW() rand()\n#if defined(rand)\n#endif\nint x;\n");
  for (const Token& t : f.tokens) {
    EXPECT_NE(t.text, "rand") << "directive body leaked into tokens";
  }
  ASSERT_FALSE(f.tokens.empty());
  EXPECT_TRUE(f.tokens[0].ident("int"));
}

TEST(Tokenizer, LineHasCode) {
  SourceFile f =
      lint::tokenize("x.cpp", "int a;\n\n// only a comment\nint b;\n");
  EXPECT_TRUE(f.line_has_code(1));
  EXPECT_FALSE(f.line_has_code(2));
  EXPECT_FALSE(f.line_has_code(3));
  EXPECT_TRUE(f.line_has_code(4));
  EXPECT_EQ(f.last_line, 5);  // final newline starts line 5
}

TEST(Tokenizer, RawStringCustomDelimiterAndLineCount) {
  // The closer is the exact `)xyz"`; a bare `)"` inside is literal text.
  SourceFile f = lint::tokenize(
      "x.cpp", "auto s = R\"xyz(rand()\nfake close: )\"\n)xyz\";\nint x;\n");
  for (const Token& t : f.tokens) {
    EXPECT_NE(t.text, "rand") << "raw-string body leaked into tokens";
  }
  bool saw_x = false;
  for (const Token& t : f.tokens) {
    if (t.ident("x")) {
      saw_x = true;
      EXPECT_EQ(t.line, 4);  // newlines inside the raw string were counted
    }
  }
  EXPECT_TRUE(saw_x);
}

TEST(Tokenizer, LineCommentBackslashSpliceSwallowsNextLine) {
  // [lex.phases]: line splicing runs before comment removal, so a `//`
  // comment ending in a backslash continues onto the next physical line.
  SourceFile f = lint::tokenize(
      "x.cpp", "// spliced \\\nrand();\nint x;\n// cr-lf splice \\\r\ny();\n");
  for (const Token& t : f.tokens) {
    EXPECT_NE(t.text, "rand") << "spliced comment line leaked into tokens";
    EXPECT_NE(t.text, "y") << "cr-lf spliced line leaked into tokens";
  }
  ASSERT_EQ(f.comments.size(), 2u);
  EXPECT_EQ(f.comments[0].begin, 1);
  EXPECT_EQ(f.comments[0].end, 2);
  EXPECT_NE(f.comments[0].text.find("rand"), std::string::npos);
  ASSERT_FALSE(f.tokens.empty());
  EXPECT_TRUE(f.tokens[0].ident("int"));
  EXPECT_EQ(f.tokens[0].line, 3);
}

TEST(Tokenizer, AdjacentStringLiteralsStayStrings) {
  // Concatenated literals (with or without encoding prefixes) are three
  // string tokens; no prefix or content identifier survives.
  SourceFile f = lint::tokenize(
      "x.cpp", "auto m = \"rand()\" u8\"srand()\" L\"time()\";\nint x;\n");
  int strings = 0;
  for (const Token& t : f.tokens) {
    if (t.kind == Token::Kind::kString) ++strings;
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "u8") << "encoding prefix emitted as identifier";
    EXPECT_NE(t.text, "L") << "encoding prefix emitted as identifier";
  }
  EXPECT_EQ(strings, 3);
}

}  // namespace
