// Race-analysis tests (src/lint/races.*): the C1-C4 rules over small
// synthetic trees — record-dominates-mutate, master-surface isolation,
// cross-role state, guarded_by lock evidence — and the stability contract
// of the race ledger JSON (C5).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/races.hpp"
#include "lint/source.hpp"

namespace {

using namespace ahsw;

constexpr std::string_view kLayers =
    "common:\n"
    "net: common\n"
    "overlay: common net\n"
    "dqp: common net overlay\n";

constexpr std::string_view kSpec =
    "root DagExecutor::run\n"
    "master_root run_parallel_batch\n"
    "record DagExecutor::record\n"
    "state LocationCache home=src/overlay/location_cache hints=cache:"
    " insert invalidate\n"
    "state Rng home=src/common/rng hints=rng scope=dispatch: next\n"
    "surface DagExecutor::fire_lookup state=LocationCache dispatch"
    " merge=state-log: keyed insert, replayed on the master\n"
    "surface replay_action state=LocationCache role=master:"
    " master-side StateLog replay\n";

lint::SharedStateSpec parse_spec() {
  std::vector<std::string> errors;
  lint::SharedStateSpec spec = lint::SharedStateSpec::parse(kSpec, &errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  return spec;
}

lint::RacesReport analyze(const std::vector<lint::SourceFile>& files) {
  return lint::analyze_races(files, parse_spec(),
                             lint::LayerSpec::parse(kLayers));
}

std::vector<std::string> rules_of(const lint::RacesReport& report) {
  std::vector<std::string> out;
  for (const lint::Diagnostic& d : report.diagnostics) out.push_back(d.rule);
  return out;
}

lint::SourceFile snip(const std::string& path, std::string_view text) {
  return lint::tokenize(path, text);
}

// --- C1: record-dominates-mutate ----------------------------------------

TEST(RaceAnalysis, C1FiresWhenNoRecordDominatesTheMutation) {
  lint::RacesReport report = analyze({snip("src/dqp/executor.cpp",
      "void DagExecutor::run() { fire_lookup(key); }\n"
      "void DagExecutor::fire_lookup(Key key) {\n"
      "  cache_.insert(key, row);\n"
      "}\n")});
  ASSERT_EQ(rules_of(report), std::vector<std::string>{"C1"});
  EXPECT_EQ(report.diagnostics[0].line, 3);
  // The diagnostic carries the worker call path from the dispatch root.
  EXPECT_NE(report.diagnostics[0].message.find(
                "DagExecutor::run -> DagExecutor::fire_lookup"),
            std::string::npos);
}

TEST(RaceAnalysis, C1RecordBeforeTheMutationInTheSameFunctionIsClean) {
  lint::RacesReport report = analyze({snip("src/dqp/executor.cpp",
      "void DagExecutor::run() { fire_lookup(key); }\n"
      "void DagExecutor::fire_lookup(Key key) {\n"
      "  record(action);\n"
      "  cache_.insert(key, row);\n"
      "}\n")});
  EXPECT_EQ(rules_of(report), std::vector<std::string>{});
}

TEST(RaceAnalysis, C1RecordAfterTheMutationDoesNotDominate) {
  lint::RacesReport report = analyze({snip("src/dqp/executor.cpp",
      "void DagExecutor::run() { fire_lookup(key); }\n"
      "void DagExecutor::fire_lookup(Key key) {\n"
      "  cache_.insert(key, row);\n"
      "  record(action);\n"
      "}\n")});
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"C1"});
}

TEST(RaceAnalysis, C1RecordOnAnAncestorOfTheWorkerPathSatisfies) {
  // The ancestor wraps the whole call, so it records regardless of line
  // order within its own body.
  lint::RacesReport report = analyze({snip("src/dqp/executor.cpp",
      "void DagExecutor::run() {\n"
      "  fire_lookup(key);\n"
      "  record(action);\n"
      "}\n"
      "void DagExecutor::fire_lookup(Key key) {\n"
      "  cache_.insert(key, row);\n"
      "}\n")});
  EXPECT_EQ(rules_of(report), std::vector<std::string>{});
}

TEST(RaceAnalysis, C1IgnoresMutationsOffTheWorkerTree) {
  // Setup-time use of the same surface: not worker-reachable, no record
  // obligation (the site still lands in the ledger as role=none).
  lint::RacesReport report = analyze({snip("src/dqp/executor.cpp",
      "void DagExecutor::fire_lookup(Key key) {\n"
      "  cache_.insert(key, row);\n"
      "}\n")});
  EXPECT_EQ(rules_of(report), std::vector<std::string>{});
  ASSERT_EQ(report.sites.size(), 1u);
  EXPECT_EQ(report.sites[0].role, lint::ThreadRole::kNone);
}

// --- C2: master surfaces stay off the worker tree ------------------------

TEST(RaceAnalysis, C2FiresWhenAWorkerPathReachesAMasterSurface) {
  lint::RacesReport report = analyze({snip("src/dqp/executor.cpp",
      "void DagExecutor::run() { fire(act); }\n"
      "void DagExecutor::fire(Action act) { replay_action(act); }\n"
      "void replay_action(Action act) { }\n")});
  ASSERT_EQ(rules_of(report), std::vector<std::string>{"C2"});
  EXPECT_NE(report.diagnostics[0].message.find(
                "DagExecutor::run -> DagExecutor::fire -> replay_action"),
            std::string::npos);
}

TEST(RaceAnalysis, C2FiresWhenAWorkerPathReachesAMasterRoot) {
  lint::RacesReport report = analyze({snip("src/dqp/parallel.cpp",
      "void DagExecutor::run() { run_parallel_batch(); }\n"
      "void run_parallel_batch() { }\n")});
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"C2"});
}

TEST(RaceAnalysis, C2CleanWhenTheMasterSurfaceIsMasterOnly) {
  // reach_avoiding cuts the master BFS at the worker roots, so spawning
  // DagExecutor::run from the master does not merge the two roles.
  lint::RacesReport report = analyze({snip("src/dqp/parallel.cpp",
      "void DagExecutor::run() { }\n"
      "void replay_action(Action act) { }\n"
      "void run_parallel_batch() {\n"
      "  exec.run();\n"
      "  replay_action(act);\n"
      "}\n")});
  EXPECT_EQ(rules_of(report), std::vector<std::string>{});
}

// --- C3: no cross-role state ---------------------------------------------

TEST(RaceAnalysis, C3FiresWhenDispatchScopedStateIsTouchedFromBothRoles) {
  lint::RacesReport report = analyze({snip("src/dqp/executor.cpp",
      "void DagExecutor::run() { rng_.next(); }\n"
      "void run_parallel_batch() { rng_.next(); }\n")});
  ASSERT_EQ(rules_of(report), std::vector<std::string>{"C3"});
  EXPECT_NE(report.diagnostics[0].message.find("'Rng'"), std::string::npos);
}

TEST(RaceAnalysis, C3CleanWhenDispatchScopedStateStaysWorkerSide) {
  lint::RacesReport report = analyze({snip("src/dqp/executor.cpp",
      "void DagExecutor::run() { rng_.next(); }\n"
      "void run_parallel_batch() { }\n")});
  EXPECT_EQ(rules_of(report), std::vector<std::string>{});
}

TEST(RaceAnalysis, C3FiresWhenAMutableStaticIsReferencedFromBothRoles) {
  lint::RacesReport report = analyze({snip("src/dqp/parallel.cpp",
      "static int tally = 0;\n"
      "void DagExecutor::run() { fire(); }\n"
      "void DagExecutor::fire() { ++tally; }\n"
      "void run_parallel_batch() { tally = 0; }\n")});
  ASSERT_EQ(rules_of(report), std::vector<std::string>{"C3"});
  EXPECT_EQ(report.diagnostics[0].line, 1);
  EXPECT_NE(report.diagnostics[0].message.find(
                "DagExecutor::run -> DagExecutor::fire"),
            std::string::npos);
}

TEST(RaceAnalysis, C3CleanWhenTheStaticIsSingleRole) {
  lint::RacesReport report = analyze({snip("src/dqp/parallel.cpp",
      "static int tally = 0;\n"
      "void DagExecutor::run() { ++tally; }\n"
      "void run_parallel_batch() { }\n")});
  EXPECT_EQ(rules_of(report), std::vector<std::string>{});
}

// --- C4: guarded_by annotations ------------------------------------------

TEST(RaceAnalysis, C4FlagsAccessesWithoutLockEvidence) {
  lint::RacesReport report = analyze({snip("src/dqp/parallel.cpp",
      "class StateLogDeposit {\n"
      " public:\n"
      "  void deposit(int w, StateLog log) {\n"
      "    DepositLock lock(mu_);\n"
      "    logs_[w] = std::move(log);\n"
      "  }\n"
      "  void drain() {\n"
      "    mu_.lock();\n"
      "    logs_.clear();\n"
      "  }\n"
      "  bool any() const { return !logs_.empty(); }\n"
      " private:\n"
      "  DepositMutex mu_;\n"
      "  // ahsw-lint: guarded_by(mu_) one slot per worker\n"
      "  std::vector<StateLog> logs_;\n"
      "};\n")});
  // deposit() holds a scoped lock, drain() calls .lock() directly; only
  // any() touches logs_ bare.
  ASSERT_EQ(rules_of(report), std::vector<std::string>{"C4"});
  EXPECT_EQ(report.diagnostics[0].line, 11);
  EXPECT_NE(report.diagnostics[0].message.find("StateLogDeposit::any"),
            std::string::npos);
}

TEST(RaceAnalysis, C4AnnotationMustPrecedeAMemberDeclaration) {
  lint::RacesReport report = analyze({snip("src/dqp/parallel.cpp",
      "class Deposit {\n"
      "  DepositMutex mu_;\n"
      "};\n"
      "// ahsw-lint: guarded_by(mu_) dangling annotation\n")});
  ASSERT_EQ(rules_of(report), std::vector<std::string>{"C4"});
  EXPECT_NE(report.diagnostics[0].message.find(
                "does not precede a recognizable member declaration"),
            std::string::npos);
}

TEST(RaceAnalysis, C4ProseMentioningTheGrammarIsNotAnAnnotation) {
  // Only the `ahsw-lint:` marker prefix arms the check; plain prose that
  // mentions guarded_by(...) must not.
  lint::RacesReport report = analyze({snip("src/dqp/parallel.cpp",
      "class Deposit {\n"
      "  // a guarded_by(mu_) comment without the marker prefix\n"
      "  std::vector<StateLog> logs_;\n"
      "};\n")});
  EXPECT_EQ(rules_of(report), std::vector<std::string>{});
}

// --- C5: the race ledger -------------------------------------------------

TEST(RaceAnalysis, LedgerIsStableDedupedAndVersioned) {
  // Two mutations through the same (state, file, function, mutator) key
  // collapse to one line-less site; the header pins schema_version and both
  // root sets.
  lint::RacesReport report = analyze({snip("src/dqp/executor.cpp",
      "void DagExecutor::run() { fire_lookup(key); }\n"
      "void DagExecutor::fire_lookup(Key key) {\n"
      "  record(action);\n"
      "  cache_.insert(key, row);\n"
      "  cache_.insert(other, row);\n"
      "}\n")});
  EXPECT_EQ(report.ledger_json(),
            "{\n"
            "  \"tool\": \"ahsw-races\",\n"
            "  \"schema_version\": 1,\n"
            "  \"worker_roots\": [\"DagExecutor::run\"],\n"
            "  \"master_roots\": [\"run_parallel_batch\"],\n"
            "  \"sites\": [\n"
            "    {\"state\": \"LocationCache\", \"mutator\": \"insert\", "
            "\"function\": \"DagExecutor::fire_lookup\", "
            "\"file\": \"src/dqp/executor.cpp\", \"role\": \"worker\", "
            "\"discipline\": \"merge=state-log\", "
            "\"path\": [\"DagExecutor::run\", \"DagExecutor::fire_lookup\"]}\n"
            "  ]\n"
            "}\n");
}

TEST(RaceAnalysis, LedgerRecordsUndeclaredDisciplineAndMasterPaths) {
  // A touch with no covering surface reports discipline=undeclared; a
  // master-side touch carries the master path instead of a worker path.
  lint::RacesReport report = analyze({snip("src/dqp/parallel.cpp",
      "void run_parallel_batch() { merge(); }\n"
      "void merge() { cache_.invalidate(key); }\n")});
  ASSERT_EQ(report.sites.size(), 1u);
  EXPECT_EQ(report.sites[0].discipline, "undeclared");
  EXPECT_EQ(report.sites[0].role, lint::ThreadRole::kMaster);
  ASSERT_EQ(report.sites[0].path.size(), 2u);
  EXPECT_EQ(report.sites[0].path[0], "run_parallel_batch");
  EXPECT_EQ(report.sites[0].path[1], "merge");
}

}  // namespace
