// Effect-analysis tests (src/lint/effects.*): shared-state spec parsing,
// the P1/P2/P3 rules over small synthetic trees, and the stability
// contract of the parallel-safety ledger JSON.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/effects.hpp"
#include "lint/source.hpp"

namespace {

using namespace ahsw;

constexpr std::string_view kLayers =
    "common:\n"
    "net: common\n"
    "overlay: common net\n"
    "dqp: common net overlay\n";

constexpr std::string_view kSpec =
    "# fixture spec\n"
    "root DagExecutor::run\n"
    "state LocationCache home=src/overlay/location_cache hints=cache:"
    " insert invalidate\n"
    "state Rng home=src/common/rng hints=rng scope=dispatch: next below\n"
    "surface DagExecutor::fire_lookup state=LocationCache dispatch:"
    " keyed insert, last-writer-wins\n"
    "surface HybridOverlay::warm state=LocationCache: setup-time prefill\n"
    "singleton sink: bench sink, single-threaded mains\n";

lint::SharedStateSpec parse_spec(std::string_view text = kSpec) {
  std::vector<std::string> errors;
  lint::SharedStateSpec spec = lint::SharedStateSpec::parse(text, &errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  return spec;
}

lint::EffectsReport analyze(const std::vector<lint::SourceFile>& files,
                            const lint::SharedStateSpec& spec) {
  return lint::analyze_effects(files, spec,
                               lint::LayerSpec::parse(kLayers));
}

std::vector<std::string> rules_of(const lint::EffectsReport& report) {
  std::vector<std::string> out;
  for (const lint::Diagnostic& d : report.diagnostics) out.push_back(d.rule);
  return out;
}

TEST(SharedStateSpec, ParsesDeclarationsAndQualifiedSurfaceNames) {
  lint::SharedStateSpec spec = parse_spec();
  ASSERT_EQ(spec.roots.size(), 1u);
  EXPECT_EQ(spec.roots[0], "DagExecutor::run");

  ASSERT_EQ(spec.states.size(), 2u);
  EXPECT_EQ(spec.states[0].name, "LocationCache");
  EXPECT_EQ(spec.states[0].home, "src/overlay/location_cache");
  EXPECT_TRUE(spec.states[0].global);
  EXPECT_EQ(spec.states[0].mutators.count("insert"), 1u);
  EXPECT_FALSE(spec.states[1].global);  // scope=dispatch

  // The `::` in a surface's function name must not be taken as the
  // head/tail separator.
  const lint::SurfaceDecl* fire =
      spec.surface_for("DagExecutor::fire_lookup", "LocationCache");
  ASSERT_NE(fire, nullptr);
  EXPECT_TRUE(fire->dispatch);
  EXPECT_EQ(fire->why, "keyed insert, last-writer-wins");
  const lint::SurfaceDecl* warm =
      spec.surface_for("HybridOverlay::warm", "LocationCache");
  ASSERT_NE(warm, nullptr);
  EXPECT_FALSE(warm->dispatch);
  EXPECT_EQ(spec.surface_for("DagExecutor::fire_lookup", "Rng"), nullptr);

  EXPECT_EQ(spec.singletons.count("sink"), 1u);
}

TEST(SharedStateSpec, ReportsMalformedDeclarations) {
  std::vector<std::string> errors;
  lint::SharedStateSpec spec = lint::SharedStateSpec::parse(
      "root\n"
      "state Foo hints=x: mutate\n"       // missing home=
      "surface F state=Foo:\n"            // missing justification
      "wibble Foo: bar\n",                // unknown keyword
      &errors);
  EXPECT_TRUE(spec.states.empty());
  ASSERT_EQ(errors.size(), 4u);
  EXPECT_NE(errors[0].find("line 1"), std::string::npos);
  EXPECT_NE(errors[3].find("wibble"), std::string::npos);
}

TEST(SharedStateSpec, ParsesMasterRootsRecordsAndDisciplines) {
  std::vector<std::string> errors;
  lint::SharedStateSpec spec = lint::SharedStateSpec::parse(
      "root DagExecutor::run\n"
      "master_root run_parallel_batch\n"
      "record DagExecutor::record\n"
      "state Log home=src/dqp/parallel hints=log: append\n"
      "surface DagExecutor::fire state=Log dispatch merge=state-log:"
      " replayed on the master\n"
      "surface Replay::apply state=Log role=master: merge-side apply\n",
      &errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  ASSERT_EQ(spec.master_roots.size(), 1u);
  EXPECT_EQ(spec.master_roots[0], "run_parallel_batch");
  ASSERT_EQ(spec.records.size(), 1u);
  EXPECT_EQ(spec.records[0], "DagExecutor::record");

  const lint::SurfaceDecl* fire = spec.surface_for("DagExecutor::fire", "Log");
  ASSERT_NE(fire, nullptr);
  EXPECT_EQ(fire->merge, "state-log");
  EXPECT_TRUE(fire->shard.empty());
  const lint::SurfaceDecl* apply = spec.surface_for("Replay::apply", "Log");
  ASSERT_NE(apply, nullptr);
  EXPECT_TRUE(apply->master_only);
}

TEST(SharedStateSpec, RejectsShardAndMergeOnOneSurface) {
  std::vector<std::string> errors;
  lint::SharedStateSpec::parse(
      "state Log home=src/dqp/parallel hints=log: append\n"
      "surface F state=Log shard=per-worker merge=state-log: both\n",
      &errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("shard="), std::string::npos);
}

TEST(Effects, P1FlagsUndeclaredMutationOutsideHome) {
  lint::EffectsReport report = analyze(
      {lint::tokenize("src/dqp/executor.cpp",
                      "void DagExecutor::helper() {\n"
                      "  cache_.invalidate(key);\n"
                      "}\n")},
      parse_spec());
  ASSERT_EQ(rules_of(report), std::vector<std::string>{"P1"});
  EXPECT_EQ(report.diagnostics[0].file, "src/dqp/executor.cpp");
  EXPECT_EQ(report.diagnostics[0].line, 2);
  ASSERT_EQ(report.touches.size(), 1u);
  EXPECT_FALSE(report.touches[0].declared);
  EXPECT_FALSE(report.touches[0].reachable);
}

TEST(Effects, HomeImplementationAndUnmatchedReceiversAreExempt) {
  lint::EffectsReport report = analyze(
      {lint::tokenize("src/overlay/location_cache.cpp",
                      "bool LocationCache::insert(Key k) {\n"
                      "  entries_.insert(k);\n"
                      "  return true;\n"
                      "}\n"),
       lint::tokenize("src/dqp/executor.cpp",
                      "void DagExecutor::helper() {\n"
                      "  results_.insert(row);\n"  // no cache hint
                      "}\n")},
      parse_spec());
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_TRUE(report.touches.empty());
}

TEST(Effects, P2FlagsDispatchPathThroughNonDispatchSurface) {
  // `warm` has a surface (so no P1) but it is not dispatch-marked, and it
  // is reachable from the root — P2 must fire and carry the call path.
  lint::EffectsReport report = analyze(
      {lint::tokenize("src/dqp/executor.cpp",
                      "SimTime DagExecutor::run() {\n"
                      "  overlay_->warm();\n"
                      "  return now_;\n"
                      "}\n"),
       lint::tokenize("src/overlay/overlay.cpp",
                      "void HybridOverlay::warm() {\n"
                      "  cache_.insert(key, providers);\n"
                      "}\n")},
      parse_spec());
  ASSERT_EQ(rules_of(report), std::vector<std::string>{"P2"});
  EXPECT_NE(report.diagnostics[0].message.find(
                "DagExecutor::run -> HybridOverlay::warm"),
            std::string::npos);
  ASSERT_EQ(report.touches.size(), 1u);
  EXPECT_TRUE(report.touches[0].declared);
  EXPECT_FALSE(report.touches[0].dispatch);
  EXPECT_TRUE(report.touches[0].reachable);
}

TEST(Effects, DispatchSurfaceSilencesBothRules) {
  lint::EffectsReport report = analyze(
      {lint::tokenize("src/dqp/executor.cpp",
                      "SimTime DagExecutor::run() { fire_lookup(); }\n"
                      "void DagExecutor::fire_lookup() {\n"
                      "  cache_.insert(key, providers);\n"
                      "}\n")},
      parse_spec());
  EXPECT_TRUE(report.diagnostics.empty());
  ASSERT_EQ(report.touches.size(), 1u);  // still on the ledger
  EXPECT_TRUE(report.touches[0].dispatch);
}

TEST(Effects, DispatchScopedStateSkipsP1ButNotP2) {
  // Rng is scope=dispatch: drawing at setup (unreachable from the root)
  // is fine; drawing on the dispatch path still needs a surface.
  lint::SharedStateSpec spec = parse_spec();
  lint::EffectsReport setup = analyze(
      {lint::tokenize("src/overlay/overlay.cpp",
                      "void HybridOverlay::seed() { id_rng_.next(); }\n")},
      spec);
  EXPECT_TRUE(setup.diagnostics.empty());

  lint::EffectsReport dispatch = analyze(
      {lint::tokenize("src/dqp/executor.cpp",
                      "SimTime DagExecutor::run() { rng_.below(n); }\n")},
      spec);
  ASSERT_EQ(rules_of(dispatch), std::vector<std::string>{"P2"});
}

TEST(Effects, P3FlagsStaticsOutsideSingletonList) {
  lint::EffectsReport report = analyze(
      {lint::tokenize("src/overlay/overlay.cpp",
                      "static int publishes = 0;\n"
                      "void bump() {\n"
                      "  static Sink sink;\n"
                      "  static int hits = 0;\n"
                      "}\n")},
      parse_spec());
  // `sink` is a declared singleton; the other two statics are P3.
  EXPECT_EQ(rules_of(report),
            (std::vector<std::string>{"P3", "P3"}));
}

TEST(Effects, LedgerIsStableDedupedAndVersioned) {
  lint::SharedStateSpec spec = parse_spec();
  lint::EffectsReport report = analyze(
      {lint::tokenize("src/dqp/executor.cpp",
                      "SimTime DagExecutor::run() { fire_lookup(); }\n"
                      "void DagExecutor::fire_lookup() {\n"
                      "  cache_.insert(a, b);\n"
                      "  cache_.insert(c, d);\n"  // same touch key: deduped
                      "}\n")},
      spec);
  std::string ledger = report.ledger_json(spec);
  EXPECT_NE(ledger.find("\"tool\": \"ahsw-effects\""), std::string::npos);
  EXPECT_NE(ledger.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(ledger.find("\"roots\": [\"DagExecutor::run\"]"),
            std::string::npos);
  EXPECT_NE(ledger.find("\"master_roots\": []"), std::string::npos);
  // v2: every touch carries its resolved thread role.
  EXPECT_NE(ledger.find("\"role\": \"worker\""), std::string::npos);
  // Two insert sites, one ledger entry, no line numbers anywhere.
  std::size_t first = ledger.find("\"mutator\": \"insert\"");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(ledger.find("\"mutator\": \"insert\"", first + 1),
            std::string::npos);
  EXPECT_EQ(ledger.find("\"line\""), std::string::npos);
  EXPECT_NE(
      ledger.find("\"path\": [\"DagExecutor::run\", "
                  "\"DagExecutor::fire_lookup\"]"),
      std::string::npos);
}

}  // namespace
