// Symbol-table / call-graph extraction tests (src/lint/graph.*): function
// definitions in and out of class scope, call-site capture with receiver
// chains, layer-DAG-pruned resolution, and reachability with parent paths.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/graph.hpp"
#include "lint/source.hpp"

namespace {

using namespace ahsw;

lint::SourceFile snip(const std::string& path, std::string_view text) {
  return lint::tokenize(path, text);
}

const lint::FunctionDef* find_one(const lint::SymbolTable& table,
                                  std::string_view qualified) {
  std::vector<std::size_t> hits = table.find(qualified);
  if (hits.size() != 1) return nullptr;
  return &table.functions[hits[0]];
}

TEST(SymbolTable, FindsFreeQualifiedAndInlineMemberDefinitions) {
  lint::SymbolTable table = lint::SymbolTable::build({snip("src/net/network.cpp",
      "namespace ahsw::net {\n"
      "int free_helper(int x) { return x + 1; }\n"
      "SimTime Network::send(NodeAddress from, NodeAddress to) {\n"
      "  return charge(from, to);\n"
      "}\n"
      "struct Meter {\n"
      "  void tick() { ++count_; }\n"
      "  int count_ = 0;\n"
      "};\n"
      "}\n")});

  const lint::FunctionDef* free_fn = find_one(table, "free_helper");
  ASSERT_NE(free_fn, nullptr);
  EXPECT_EQ(free_fn->qualifier, "");
  EXPECT_EQ(free_fn->line, 2);

  const lint::FunctionDef* send = find_one(table, "Network::send");
  ASSERT_NE(send, nullptr);
  EXPECT_EQ(send->qualified(), "Network::send");

  const lint::FunctionDef* tick = find_one(table, "Meter::tick");
  ASSERT_NE(tick, nullptr);
  EXPECT_EQ(tick->qualifier, "Meter");
}

TEST(SymbolTable, ConstructorInitializerListIsNotABody) {
  // The ctor-init list contains call-shaped tokens (`queue_(cap)`); the
  // parser must skip to the real body and only record calls from there.
  lint::SymbolTable table = lint::SymbolTable::build({snip(
      "src/net/event_queue.cpp",
      "EventQueue::EventQueue(int cap)\n"
      "    : queue_(cap), stats_{} {\n"
      "  reserve(cap);\n"
      "}\n")});
  const lint::FunctionDef* ctor = find_one(table, "EventQueue::EventQueue");
  ASSERT_NE(ctor, nullptr);
  ASSERT_EQ(ctor->calls.size(), 1u);
  EXPECT_EQ(ctor->calls[0].name, "reserve");
}

TEST(SymbolTable, CallSitesCaptureMemberQualifierAndReceiverChain) {
  lint::SymbolTable table = lint::SymbolTable::build({snip("src/dqp/executor.cpp",
      "void DagExecutor::fire() {\n"
      "  queue_.push(ev);\n"
      "  overlay_->network().send(a, b);\n"
      "  chord::hash_key(term);\n"
      "  finish();\n"
      "}\n")});
  const lint::FunctionDef* fire = find_one(table, "DagExecutor::fire");
  ASSERT_NE(fire, nullptr);
  ASSERT_EQ(fire->calls.size(), 5u);  // push, network, send, hash_key, finish

  const lint::CallSite& push = fire->calls[0];
  EXPECT_TRUE(push.member);
  ASSERT_EQ(push.receiver.size(), 1u);
  EXPECT_EQ(push.receiver[0], "queue_");

  const lint::CallSite& send = fire->calls[2];
  EXPECT_EQ(send.name, "send");
  EXPECT_TRUE(send.member);
  // Chain walks through the ()-group: {network, overlay_}.
  ASSERT_EQ(send.receiver.size(), 2u);
  EXPECT_EQ(send.receiver[0], "network");
  EXPECT_EQ(send.receiver[1], "overlay_");

  const lint::CallSite& hash = fire->calls[3];
  EXPECT_FALSE(hash.member);
  EXPECT_EQ(hash.qualifier, "chord");

  EXPECT_FALSE(fire->calls[4].member);
  EXPECT_EQ(fire->calls[4].qualifier, "");
}

TEST(SymbolTable, RecordsNonConstStaticsButSkipsConstAndFunctions) {
  lint::SymbolTable table = lint::SymbolTable::build({snip("src/obs/json.cpp",
      "static int counter = 0;\n"
      "static const int kLimit = 8;\n"
      "static int helper(int x) { return x; }\n"
      "void flush() {\n"
      "  static Sink sink;\n"
      "  sink.write(counter);\n"
      "}\n")});
  const auto it = table.statics.find("src/obs/json.cpp");
  ASSERT_NE(it, table.statics.end());
  ASSERT_EQ(it->second.size(), 2u);
  EXPECT_EQ(it->second[0].name, "counter");
  EXPECT_FALSE(it->second[0].local);
  EXPECT_EQ(it->second[1].name, "sink");
  EXPECT_TRUE(it->second[1].local);
}

constexpr std::string_view kLayers =
    "common:\n"
    "net: common\n"
    "overlay: common net\n"
    "dqp: common net overlay\n"
    "lint: common\n"
    "tools: *\n";

TEST(CallGraph, LayerClosureFollowsTheDagAndStarIsUnrestricted) {
  lint::LayerSpec layers = lint::LayerSpec::parse(kLayers);
  std::set<std::string> dqp = lint::layer_closure(layers, "dqp");
  EXPECT_TRUE(dqp.count("dqp"));
  EXPECT_TRUE(dqp.count("overlay"));
  EXPECT_TRUE(dqp.count("net"));
  EXPECT_TRUE(dqp.count("common"));
  EXPECT_FALSE(dqp.count("lint"));
  EXPECT_TRUE(lint::layer_closure(layers, "tools").empty());  // `*`
}

TEST(CallGraph, ResolutionIsPrunedByLayerClosure) {
  // Both `net` and `lint` define run(); a caller in dqp may only resolve
  // into its include closure, so the lint definition must not appear.
  lint::SymbolTable table = lint::SymbolTable::build({
      snip("src/net/network.cpp", "void run() { }\n"),
      snip("src/lint/engine.cpp", "void run() { }\n"),
      snip("src/dqp/executor.cpp", "void drive() { run(); }\n"),
  });
  lint::CallGraph graph =
      lint::CallGraph::resolve(table, lint::LayerSpec::parse(kLayers));
  std::vector<std::size_t> drive = table.find("drive");
  ASSERT_EQ(drive.size(), 1u);
  ASSERT_EQ(graph.out[drive[0]].size(), 1u);
  EXPECT_EQ(table.functions[graph.out[drive[0]][0]].file,
            "src/net/network.cpp");
}

TEST(CallGraph, MemberCallsNeverResolveToFreeFunctions) {
  lint::SymbolTable table = lint::SymbolTable::build({
      snip("src/net/network.cpp",
           "void flush() { }\n"
           "void Network::flush() { }\n"),
      snip("src/dqp/executor.cpp", "void drive() { net_->flush(); }\n"),
  });
  lint::CallGraph graph =
      lint::CallGraph::resolve(table, lint::LayerSpec::parse(kLayers));
  std::vector<std::size_t> drive = table.find("drive");
  ASSERT_EQ(drive.size(), 1u);
  ASSERT_EQ(graph.out[drive[0]].size(), 1u);
  EXPECT_EQ(table.functions[graph.out[drive[0]][0]].qualified(),
            "Network::flush");
}

TEST(SymbolTable, LambdaBodyCallsAttributeToTheSpawningFunction) {
  // The parallel driver hands each shard a lambda captured into a
  // std::thread. The scanner is flat: calls inside the lambda body belong
  // to the enclosing function's token range, so the worker code stays
  // reachable from the spawn site — exactly what the thread-role passes
  // need (the role cut happens at the worker root, not at the lambda).
  lint::SymbolTable table = lint::SymbolTable::build({snip(
      "src/dqp/parallel.cpp",
      "void shard_work() { }\n"
      "void launch() {\n"
      "  std::thread t([&] { shard_work(); });\n"
      "  t.join();\n"
      "}\n")});
  const lint::FunctionDef* launch = find_one(table, "launch");
  ASSERT_NE(launch, nullptr);
  bool saw_shard_work = false;
  for (const lint::CallSite& call : launch->calls) {
    if (call.name == "shard_work") saw_shard_work = true;
  }
  EXPECT_TRUE(saw_shard_work);

  lint::CallGraph graph =
      lint::CallGraph::resolve(table, lint::LayerSpec::parse(kLayers));
  std::size_t launch_i = table.find("launch")[0];
  std::size_t work_i = table.find("shard_work")[0];
  std::vector<std::size_t> parent = graph.reach({launch_i});
  EXPECT_EQ(parent[work_i], launch_i);
}

TEST(CallGraph, OverloadSetsResolveToEveryDefinition) {
  // Overloads collapse to names (graph.hpp): one call site fans out to
  // every same-named definition in the layer closure. Over-approximate by
  // design — a spurious edge can demand a justification, never hide one.
  lint::SymbolTable table = lint::SymbolTable::build({snip(
      "src/dqp/executor.cpp",
      "void absorb(int x) { }\n"
      "void absorb(double x) { }\n"
      "void drive() { absorb(1); }\n")});
  lint::CallGraph graph =
      lint::CallGraph::resolve(table, lint::LayerSpec::parse(kLayers));
  std::vector<std::size_t> drive = table.find("drive");
  ASSERT_EQ(drive.size(), 1u);
  EXPECT_EQ(graph.out[drive[0]].size(), 2u);

  std::vector<std::size_t> parent = graph.reach({drive[0]});
  for (std::size_t idx : table.find("absorb")) {
    EXPECT_EQ(parent[idx], drive[0]);
  }
}

TEST(CallGraph, MemberFunctionPointersAreAKnownBlindSpot) {
  // Neither taking `&Class::method` nor invoking through the pointer has
  // the identifier-then-'(' shape the scanner keys on, so no edge forms.
  // This is the one under-approximation in the extractor; the shared-state
  // spec must name such targets as roots/surfaces directly if they ever
  // carry dispatch (none do today — this test documents the contract).
  lint::SymbolTable table = lint::SymbolTable::build({snip(
      "src/dqp/executor.cpp",
      "void DagExecutor::fire() { }\n"
      "void DagExecutor::drive() {\n"
      "  auto handler = &DagExecutor::fire;\n"
      "  (this->*handler)();\n"
      "}\n")});
  lint::CallGraph graph =
      lint::CallGraph::resolve(table, lint::LayerSpec::parse(kLayers));
  std::vector<std::size_t> drive = table.find("DagExecutor::drive");
  ASSERT_EQ(drive.size(), 1u);
  EXPECT_TRUE(graph.out[drive[0]].empty());

  std::vector<std::size_t> parent = graph.reach({drive[0]});
  EXPECT_EQ(parent[table.find("DagExecutor::fire")[0]], lint::kNoFunction);
}

TEST(CallGraph, ReachReturnsShortestPathParents) {
  lint::SymbolTable table = lint::SymbolTable::build({snip(
      "src/dqp/executor.cpp",
      "void leaf() { }\n"
      "void mid() { leaf(); }\n"
      "void root() { mid(); }\n"
      "void stray() { leaf(); }\n")});
  lint::CallGraph graph =
      lint::CallGraph::resolve(table, lint::LayerSpec::parse(kLayers));
  std::size_t root = table.find("root")[0];
  std::size_t mid = table.find("mid")[0];
  std::size_t leaf = table.find("leaf")[0];
  std::size_t stray = table.find("stray")[0];

  std::vector<std::size_t> parent = graph.reach({root});
  EXPECT_EQ(parent[root], root);
  EXPECT_EQ(parent[mid], root);
  EXPECT_EQ(parent[leaf], mid);
  EXPECT_EQ(parent[stray], lint::kNoFunction);
}

}  // namespace
