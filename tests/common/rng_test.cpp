#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

namespace ahsw::common {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> buckets(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.below(10)];
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 10, n / 100);  // within 10% relative
  }
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(19);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::is_sorted(shuffled.begin(), shuffled.end()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ZipfSampler, UniformWhenSkewZero) {
  ZipfSampler z(10, 0.0);
  Rng rng(23);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 1000);
}

TEST(ZipfSampler, SkewFavorsLowRanks) {
  ZipfSampler z(100, 1.0);
  Rng rng(29);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
  // Zipf s=1: rank 0 should take roughly 1/H(100) ~ 19% of the mass.
  EXPECT_GT(counts[0], 15000);
}

TEST(ZipfSampler, SamplesStayInUniverse) {
  ZipfSampler z(5, 1.2);
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.sample(rng), 5u);
}

TEST(ZipfSampler, UniverseOfOneAlwaysZero) {
  ZipfSampler z(1, 1.0);
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

}  // namespace
}  // namespace ahsw::common
