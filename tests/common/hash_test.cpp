#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace ahsw::common {
namespace {

TEST(Fnv1a64, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, IsStableAcrossCalls) {
  EXPECT_EQ(fnv1a64("chord-key"), fnv1a64("chord-key"));
}

TEST(Fnv1a64, ContinuationEqualsConcatenation) {
  std::uint64_t whole = fnv1a64("hello world");
  std::uint64_t split = fnv1a64(" world", fnv1a64("hello"));
  EXPECT_EQ(whole, split);
}

TEST(Fnv1a64, DistinguishesNearbyStrings) {
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 1000u);  // no collisions on consecutive inputs
}

TEST(Mix64, ChangesEveryInputBitNoticeably) {
  // Flipping one input bit should flip roughly half the output bits.
  std::uint64_t base = mix64(0x123456789abcdef0ULL);
  for (int bit = 0; bit < 64; bit += 7) {
    std::uint64_t flipped = mix64(0x123456789abcdef0ULL ^ (1ULL << bit));
    int diff = __builtin_popcountll(base ^ flipped);
    EXPECT_GT(diff, 10) << "bit " << bit;
    EXPECT_LT(diff, 54) << "bit " << bit;
  }
}

TEST(TaggedHash, SeparatesDomains) {
  // The same value hashed under different index-kind tags must differ:
  // the subject index of "x" is not the predicate index of "x".
  EXPECT_NE(tagged_hash(0, "x"), tagged_hash(1, "x"));
  EXPECT_NE(tagged_hash(1, "x"), tagged_hash(2, "x"));
}

TEST(TaggedHash, TwoFieldBoundaryIsUnambiguous) {
  // ("ab","c") vs ("a","bc"): same concatenation, different fields.
  EXPECT_NE(tagged_hash(3, "ab", "c"), tagged_hash(3, "a", "bc"));
}

TEST(TaggedHash, TwoFieldOrderMatters) {
  EXPECT_NE(tagged_hash(3, "s", "p"), tagged_hash(3, "p", "s"));
}

TEST(TaggedHash, EmptyFieldsAreDistinct) {
  EXPECT_NE(tagged_hash(3, "", "x"), tagged_hash(3, "x", ""));
}

}  // namespace
}  // namespace ahsw::common
