#include "common/strings.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"

namespace ahsw::common {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Trim, KeepsInnerWhitespace) { EXPECT_EQ(trim(" a b "), "a b"); }

TEST(Split, SplitsAndKeepsEmptyFields) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Split, TrailingSeparatorYieldsTrailingEmpty) {
  auto parts = split("a\n", '\n');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(Join, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_TRUE(starts_with("foo", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(EscapeNTriples, EscapesControlAndQuote) {
  EXPECT_EQ(escape_ntriples("a\"b\\c\nd\te\rf"),
            "a\\\"b\\\\c\\nd\\te\\rf");
}

TEST(EscapeNTriples, RoundTripsThroughUnescape) {
  std::string raw = "line1\nline2\t\"quoted\" back\\slash";
  EXPECT_EQ(unescape_ntriples(escape_ntriples(raw)), raw);
}

TEST(UnescapeNTriples, DecodesNumericEscapes) {
  // \uXXXX used to pass through verbatim, which broke the inverse law:
  // escape would then double the backslash and the literal value grew a
  // spurious "\\u0041" on every parse/serialize cycle.
  EXPECT_EQ(unescape_ntriples("a\\u0041"), "aA");
  EXPECT_EQ(unescape_ntriples("\\u0000"), std::string(1, '\0'));
  EXPECT_EQ(unescape_ntriples("\\u00E9"), "\xC3\xA9");      // é as UTF-8
  EXPECT_EQ(unescape_ntriples("\\u20AC"), "\xE2\x82\xAC");  // €
  EXPECT_EQ(unescape_ntriples("\\U0001F600"), "\xF0\x9F\x98\x80");
}

TEST(UnescapeNTriples, KeepsMalformedNumericEscapesVerbatim) {
  EXPECT_EQ(unescape_ntriples("\\u00G1"), "\\u00G1");
  EXPECT_EQ(unescape_ntriples("\\u12"), "\\u12");        // short
  EXPECT_EQ(unescape_ntriples("\\UFFFFFFFF"), "\\UFFFFFFFF");  // > U+10FFFF
}

TEST(UnescapeNTriples, LeavesUnknownEscapesIntact) {
  EXPECT_EQ(unescape_ntriples("a\\qb"), "a\\qb");
}

TEST(UnescapeNTriples, HandlesTrailingBackslash) {
  EXPECT_EQ(unescape_ntriples("a\\"), "a\\");
}

TEST(EscapeNTriples, ControlCharactersUseNumericEscapes) {
  EXPECT_EQ(escape_ntriples(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(escape_ntriples(std::string(1, '\x1F')), "\\u001F");
  EXPECT_EQ(escape_ntriples(std::string(1, '\0')), "\\u0000");
  // Named escapes keep their short forms.
  EXPECT_EQ(escape_ntriples("\n\r\t"), "\\n\\r\\t");
}

TEST(EscapeNTriples, RoundTripsArbitraryBytes) {
  // Property: unescape(escape(s)) == s for any byte string — quotes,
  // backslashes, control characters, and non-ASCII (UTF-8 and otherwise).
  Rng rng(0x5eed5);
  for (int trial = 0; trial < 200; ++trial) {
    std::string raw;
    std::size_t len = rng.below(64);
    for (std::size_t i = 0; i < len; ++i) {
      switch (rng.below(4)) {
        case 0: raw += static_cast<char>(rng.below(0x20)); break;  // control
        case 1: raw += static_cast<char>("\"\\\n\r\t"[rng.below(5)]); break;
        case 2: raw += static_cast<char>(0x80 + rng.below(0x80)); break;
        default: raw += static_cast<char>(0x20 + rng.below(0x5F)); break;
      }
    }
    EXPECT_EQ(unescape_ntriples(escape_ntriples(raw)), raw)
        << "trial " << trial;
  }
}

TEST(EscapeNTriples, EscapedFormIsFixpointOfReescaping) {
  // escape . unescape is the identity on canonically escaped strings: what
  // the serializer writes, the parser reads back, and re-serializing emits
  // the same bytes.
  for (std::string escaped :
       {std::string("a\\u0001b"), std::string("\\n\\r\\t\\\"\\\\"),
        std::string("plain text"), std::string("caf\xC3\xA9")}) {
    EXPECT_EQ(escape_ntriples(unescape_ntriples(escaped)), escaped);
  }
}

}  // namespace
}  // namespace ahsw::common
