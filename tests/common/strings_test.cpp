#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace ahsw::common {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Trim, KeepsInnerWhitespace) { EXPECT_EQ(trim(" a b "), "a b"); }

TEST(Split, SplitsAndKeepsEmptyFields) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Split, TrailingSeparatorYieldsTrailingEmpty) {
  auto parts = split("a\n", '\n');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(Join, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_TRUE(starts_with("foo", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(EscapeNTriples, EscapesControlAndQuote) {
  EXPECT_EQ(escape_ntriples("a\"b\\c\nd\te\rf"),
            "a\\\"b\\\\c\\nd\\te\\rf");
}

TEST(EscapeNTriples, RoundTripsThroughUnescape) {
  std::string raw = "line1\nline2\t\"quoted\" back\\slash";
  EXPECT_EQ(unescape_ntriples(escape_ntriples(raw)), raw);
}

TEST(UnescapeNTriples, LeavesUnknownEscapesIntact) {
  EXPECT_EQ(unescape_ntriples("a\\u0041"), "a\\u0041");
}

TEST(UnescapeNTriples, HandlesTrailingBackslash) {
  EXPECT_EQ(unescape_ntriples("a\\"), "a\\");
}

}  // namespace
}  // namespace ahsw::common
