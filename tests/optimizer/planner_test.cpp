#include "optimizer/planner.hpp"

#include <gtest/gtest.h>

namespace ahsw::optimizer {
namespace {

using overlay::Provider;
using rdf::Term;
using rdf::TriplePattern;
using rdf::Variable;

PatternStats stats(TriplePattern p, std::vector<Provider> providers) {
  return PatternStats{std::move(p), std::move(providers)};
}

TriplePattern pat(const std::string& s_var, const std::string& pred,
                  const std::string& o_var) {
  return TriplePattern{Variable{s_var}, Term::iri("http://" + pred),
                       Variable{o_var}};
}

TEST(PatternStats, CardinalitySumsFrequencies) {
  PatternStats s = stats(pat("x", "p", "y"), {{1, 10}, {2, 5}, {3, 1}});
  EXPECT_EQ(s.estimated_cardinality(), 16u);
  EXPECT_EQ(stats(pat("x", "p", "y"), {}).estimated_cardinality(), 0u);
}

TEST(OrderJoinPatterns, CheapestFirst) {
  std::vector<PatternStats> v;
  v.push_back(stats(pat("x", "big", "y"), {{1, 100}}));
  v.push_back(stats(pat("x", "small", "z"), {{1, 2}}));
  std::vector<std::size_t> order = order_join_patterns(v);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 0}));
}

TEST(OrderJoinPatterns, ConnectivityBeatsCardinality) {
  // pattern 0: (x,p,y) card 50; pattern 1: (a,q,b) card 1 (disconnected);
  // pattern 2: (y,r,c) card 80 (connected to 0).
  std::vector<PatternStats> v;
  v.push_back(stats(pat("x", "p", "y"), {{1, 50}}));
  v.push_back(stats(pat("a", "q", "b"), {{1, 1}}));
  v.push_back(stats(pat("y", "r", "c"), {{1, 80}}));
  std::vector<std::size_t> order = order_join_patterns(v);
  // Starts with the globally cheapest (1)... but nothing connects to it, so
  // the test documents the other branch: cheapest first is 1, then among
  // the rest no one connects to {a, b}; ties fall back to cardinality.
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);  // cheapest of the remaining
  EXPECT_EQ(order[2], 2u);  // connected to 0 via ?y
}

TEST(OrderJoinPatterns, AvoidsCartesianWhenPossible) {
  // cheapest is 0; next should be 2 (shares ?y with 0) although 1 is
  // cheaper, because 1 shares no variable.
  std::vector<PatternStats> v;
  v.push_back(stats(pat("x", "p", "y"), {{1, 1}}));
  v.push_back(stats(pat("a", "q", "b"), {{1, 5}}));
  v.push_back(stats(pat("y", "r", "c"), {{1, 50}}));
  std::vector<std::size_t> order = order_join_patterns(v);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 2, 1}));
}

TEST(OrderJoinPatterns, DeterministicOnTies) {
  std::vector<PatternStats> v;
  v.push_back(stats(pat("x", "p", "y"), {{1, 5}}));
  v.push_back(stats(pat("x", "q", "z"), {{1, 5}}));
  EXPECT_EQ(order_join_patterns(v), order_join_patterns(v));
}

TEST(ChainOrder, FrequencyChainSortsAscendingLargestLast) {
  // Sect. IV-C further optimization: ascending frequency, D3 (largest) last.
  std::vector<Provider> chain = chain_order(
      {{3, 20}, {1, 10}, {4, 15}}, PrimitiveStrategy::kFrequencyChain);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0].address, 1u);
  EXPECT_EQ(chain[1].address, 4u);
  EXPECT_EQ(chain[2].address, 3u);
}

TEST(ChainOrder, PlainChainUsesAddressOrder) {
  std::vector<Provider> chain =
      chain_order({{3, 20}, {1, 10}, {4, 15}}, PrimitiveStrategy::kChain);
  EXPECT_EQ(chain[0].address, 1u);
  EXPECT_EQ(chain[1].address, 3u);
  EXPECT_EQ(chain[2].address, 4u);
}

TEST(ChainOrder, FrequencyTiesBreakByAddress) {
  std::vector<Provider> chain =
      chain_order({{9, 5}, {2, 5}}, PrimitiveStrategy::kFrequencyChain);
  EXPECT_EQ(chain[0].address, 2u);
}

TEST(ProviderOverlap, FindsSharedNodes) {
  // The Sect. IV-D example: S1 = {D1,D3,D4}, S2 = {D1,D2} -> overlap {D1}.
  std::vector<net::NodeAddress> shared =
      provider_overlap({{1, 1}, {3, 1}, {4, 1}}, {{1, 1}, {2, 1}});
  EXPECT_EQ(shared, (std::vector<net::NodeAddress>{1}));
}

TEST(ProviderOverlap, MultipleSharedSorted) {
  std::vector<net::NodeAddress> shared =
      provider_overlap({{1, 1}, {2, 1}, {4, 1}}, {{2, 1}, {1, 1}});
  EXPECT_EQ(shared, (std::vector<net::NodeAddress>{1, 2}));
}

TEST(ProviderOverlap, EmptyWhenDisjoint) {
  EXPECT_TRUE(provider_overlap({{1, 1}}, {{2, 1}}).empty());
  EXPECT_TRUE(provider_overlap({}, {{2, 1}}).empty());
}

TEST(ChooseJoinSite, MoveSmallPicksLargerOperandsSite) {
  LocatedOperand small{10, 100};
  LocatedOperand big{20, 5000};
  EXPECT_EQ(choose_join_site(JoinSitePolicy::kMoveSmall, small, big, 1, {}),
            20u);
  EXPECT_EQ(choose_join_site(JoinSitePolicy::kMoveSmall, big, small, 1, {}),
            20u);
}

TEST(ChooseJoinSite, MoveSmallTieGoesToFirstOperand) {
  LocatedOperand a{10, 100};
  LocatedOperand b{20, 100};
  EXPECT_EQ(choose_join_site(JoinSitePolicy::kMoveSmall, a, b, 1, {}), 10u);
}

TEST(ChooseJoinSite, QuerySiteReturnsInitiator) {
  LocatedOperand a{10, 1};
  LocatedOperand b{20, 1000000};
  EXPECT_EQ(choose_join_site(JoinSitePolicy::kQuerySite, a, b, 7, {}), 7u);
}

TEST(ChooseJoinSite, ThirdSitePicksHighestCapacity) {
  LocatedOperand a{10, 100};
  LocatedOperand b{20, 100};
  std::vector<SiteCandidate> candidates = {{30, 1.0}, {40, 3.0}, {50, 2.0}};
  EXPECT_EQ(
      choose_join_site(JoinSitePolicy::kThirdSite, a, b, 1, candidates), 40u);
}

TEST(ChooseJoinSite, ThirdSiteTieBreaksByAddress) {
  std::vector<SiteCandidate> candidates = {{40, 2.0}, {30, 2.0}};
  EXPECT_EQ(choose_join_site(JoinSitePolicy::kThirdSite, {10, 1}, {20, 1}, 1,
                             candidates),
            30u);
}

TEST(ChooseJoinSite, ThirdSiteFallsBackToMoveSmall) {
  LocatedOperand a{10, 100};
  LocatedOperand b{20, 5000};
  EXPECT_EQ(choose_join_site(JoinSitePolicy::kThirdSite, a, b, 1, {}), 20u);
}

TEST(Names, StrategyAndPolicyNames) {
  EXPECT_EQ(primitive_strategy_name(PrimitiveStrategy::kBasic), "basic");
  EXPECT_EQ(primitive_strategy_name(PrimitiveStrategy::kFrequencyChain),
            "frequency-chain");
  EXPECT_EQ(join_site_policy_name(JoinSitePolicy::kMoveSmall), "move-small");
  EXPECT_EQ(join_site_policy_name(JoinSitePolicy::kThirdSite), "third-site");
}

}  // namespace
}  // namespace ahsw::optimizer
