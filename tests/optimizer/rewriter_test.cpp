// Filter-pushing rewrites: the Fig. 9 example plus semantic-equivalence
// property checks on randomized data.
#include "optimizer/rewriter.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "rdf/store.hpp"
#include "sparql/eval.hpp"

namespace ahsw::optimizer {
namespace {

using sparql::Algebra;
using sparql::AlgebraKind;
using sparql::AlgebraPtr;
using sparql::Expr;
using sparql::ExprKind;
using sparql::ExprPtr;

constexpr std::string_view kPrologue =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "PREFIX ns: <http://example.org/ns#>\n";

AlgebraPtr pattern_of(const std::string& q) {
  return sparql::translate_pattern(sparql::parse_query(q).where);
}

TEST(SplitConjuncts, FlattensAndChains) {
  ExprPtr a = Expr::variable("a");
  ExprPtr b = Expr::variable("b");
  ExprPtr c = Expr::variable("c");
  ExprPtr e = Expr::binary(ExprKind::kAnd, Expr::binary(ExprKind::kAnd, a, b),
                           c);
  std::vector<ExprPtr> parts = split_conjuncts(e);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0]->var, "a");
  EXPECT_EQ(parts[2]->var, "c");
}

TEST(SplitConjuncts, NonAndIsSingleton) {
  ExprPtr e = Expr::binary(ExprKind::kOr, Expr::variable("a"),
                           Expr::variable("b"));
  EXPECT_EQ(split_conjuncts(e).size(), 1u);
  EXPECT_TRUE(split_conjuncts(nullptr).empty());
}

TEST(CombineConjuncts, InvertsSplit) {
  ExprPtr a = Expr::variable("a");
  ExprPtr b = Expr::variable("b");
  ExprPtr combined = combine_conjuncts({a, b});
  ASSERT_NE(combined, nullptr);
  EXPECT_EQ(combined->kind, ExprKind::kAnd);
  EXPECT_EQ(combine_conjuncts({}), nullptr);
  EXPECT_EQ(combine_conjuncts({a}), a);
}

TEST(PushFilters, Fig9RewritePushesIntoP1) {
  // Filter(C1, LeftJoin(BGP(P1 . P2), BGP(P3), true))
  //   -> LeftJoin(BGP(Filter(C1, P1) . P2), BGP(P3), true).
  AlgebraPtr a = pattern_of(std::string(kPrologue) + R"(
      SELECT ?x ?y ?z WHERE {
        ?x foaf:name ?name ;
           ns:knowsNothingAbout ?y .
        FILTER regex(?name, "Smith")
        OPTIONAL { ?y foaf:knows ?z . }
      })");
  ASSERT_EQ(a->kind, AlgebraKind::kFilter);

  AlgebraPtr pushed = push_filters(a);
  ASSERT_EQ(pushed->kind, AlgebraKind::kLeftJoin);
  ASSERT_EQ(pushed->left->kind, AlgebraKind::kBgp);
  ASSERT_EQ(pushed->left->bgp.size(), 2u);
  // C1 sits on the name pattern (P1), not on P2.
  ASSERT_NE(pushed->left->bgp[0].pushed_filter, nullptr);
  EXPECT_EQ(pushed->left->bgp[0].pushed_filter->to_string(),
            "regex(?name, \"Smith\")");
  EXPECT_EQ(pushed->left->bgp[1].pushed_filter, nullptr);
  EXPECT_EQ(pushed->to_string(),
            "LeftJoin(BGP(Filter(regex(?name, \"Smith\"), "
            "?x <http://xmlns.com/foaf/0.1/name> ?name) . "
            "?x <http://example.org/ns#knowsNothingAbout> ?y), "
            "BGP(?y <http://xmlns.com/foaf/0.1/knows> ?z), true)");
}

TEST(PushFilters, MultiPatternConditionStaysAboveBgp) {
  AlgebraPtr a = pattern_of(R"(
      SELECT ?x WHERE {
        ?x <http://age> ?a .
        ?x <http://height> ?h .
        FILTER(?a > ?h)
      })");
  AlgebraPtr pushed = push_filters(a);
  // ?a > ?h spans two patterns: remains a Filter over the BGP.
  ASSERT_EQ(pushed->kind, AlgebraKind::kFilter);
  EXPECT_EQ(pushed->left->kind, AlgebraKind::kBgp);
  for (const sparql::BgpPattern& p : pushed->left->bgp) {
    EXPECT_EQ(p.pushed_filter, nullptr);
  }
}

TEST(PushFilters, ConjunctionSplitsAcrossPatterns) {
  AlgebraPtr a = pattern_of(R"(
      SELECT ?x WHERE {
        ?x <http://age> ?a .
        ?x <http://name> ?n .
        FILTER(?a > 18 && regex(?n, "Sm"))
      })");
  AlgebraPtr pushed = push_filters(a);
  ASSERT_EQ(pushed->kind, AlgebraKind::kBgp);
  ASSERT_NE(pushed->bgp[0].pushed_filter, nullptr);
  ASSERT_NE(pushed->bgp[1].pushed_filter, nullptr);
}

TEST(PushFilters, DoesNotPushIntoOptionalSide) {
  AlgebraPtr a = pattern_of(R"(
      SELECT ?x WHERE {
        ?x <http://p> ?y .
        OPTIONAL { ?y <http://q> ?z . }
        FILTER(bound(?z))
      })");
  AlgebraPtr pushed = push_filters(a);
  // bound(?z) references the optional variable: must stay above LeftJoin.
  ASSERT_EQ(pushed->kind, AlgebraKind::kFilter);
  EXPECT_EQ(pushed->left->kind, AlgebraKind::kLeftJoin);
}

TEST(PushFilters, DistributesOverUnion) {
  AlgebraPtr a = pattern_of(R"(
      SELECT ?x WHERE {
        { ?x <http://a> ?v . } UNION { ?x <http://b> ?v . }
        FILTER(?v > 3)
      })");
  AlgebraPtr pushed = push_filters(a);
  ASSERT_EQ(pushed->kind, AlgebraKind::kUnion);
  ASSERT_NE(pushed->left->bgp[0].pushed_filter, nullptr);
  ASSERT_NE(pushed->right->bgp[0].pushed_filter, nullptr);
}

TEST(PushFilters, IdempotentOnFilterFreePlans) {
  AlgebraPtr a = pattern_of("SELECT ?x WHERE { ?x <http://p> ?y . }");
  AlgebraPtr pushed = push_filters(a);
  EXPECT_EQ(pushed->to_string(), a->to_string());
}

// --- semantic equivalence on randomized data --------------------------------

rdf::TripleStore random_store(std::uint64_t seed) {
  common::Rng rng(seed);
  rdf::TripleStore store;
  for (int i = 0; i < 150; ++i) {
    store.insert({rdf::Term::iri("http://n" + std::to_string(rng.below(12))),
                  rdf::Term::iri("http://" + std::string(1, static_cast<char>(
                                                                'p' + rng.below(3)))),
                  rng.chance(0.5)
                      ? rdf::Term::integer(static_cast<long long>(rng.below(40)))
                      : rdf::Term::iri("http://n" + std::to_string(rng.below(12)))});
  }
  return store;
}

class FilterPushEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(FilterPushEquivalence, PushedPlanGivesSameSolutions) {
  std::string query = GetParam();
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    rdf::TripleStore store = random_store(seed);
    sparql::LocalEngine engine(store);
    AlgebraPtr plain = pattern_of(query);
    AlgebraPtr pushed = push_filters(plain);
    sparql::SolutionSet a = sparql::deduplicated(engine.evaluate(*plain));
    sparql::SolutionSet b = sparql::deduplicated(engine.evaluate(*pushed));
    EXPECT_EQ(a.rows(), b.rows()) << "seed " << seed << "\nplain:  "
                                  << plain->to_string() << "\npushed: "
                                  << pushed->to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, FilterPushEquivalence,
    ::testing::Values(
        // single-pattern filter
        "SELECT ?x WHERE { ?x <http://p> ?v . FILTER(?v > 10) }",
        // conjunctive filter across two patterns
        "SELECT ?x WHERE { ?x <http://p> ?v . ?x <http://q> ?w . "
        "FILTER(?v > 5 && ?w > 5) }",
        // cross-pattern comparison (cannot push into one pattern)
        "SELECT ?x WHERE { ?x <http://p> ?v . ?x <http://q> ?w . "
        "FILTER(?v < ?w) }",
        // filter over a union
        "SELECT ?x WHERE { { ?x <http://p> ?v . } UNION { ?x <http://q> ?v . "
        "} FILTER(?v >= 20) }",
        // filter above an optional, on the mandatory side
        "SELECT ?x WHERE { ?x <http://p> ?v . OPTIONAL { ?v <http://q> ?w . "
        "} FILTER(isIRI(?v)) }",
        // filter referencing the optional side
        "SELECT ?x WHERE { ?x <http://p> ?v . OPTIONAL { ?v <http://q> ?w . "
        "} FILTER(bound(?w)) }",
        // filter with negation
        "SELECT ?x WHERE { ?x <http://p> ?v . FILTER(!(?v = 7)) }"));

}  // namespace
}  // namespace ahsw::optimizer
