// Deterministic ready-queue: events pop in strict (time, query, task)
// order regardless of push order, which is the total order the DAG
// executor's replay guarantee rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "net/event_queue.hpp"

namespace ahsw::net {
namespace {

TEST(EventQueue, PopsByTimeThenQueryThenTask) {
  EventQueue q;
  q.push({2.0, 0, 0});
  q.push({1.0, 1, 7});
  q.push({1.0, 0, 9});
  q.push({1.0, 0, 2});
  q.push({0.5, 3, 3});

  std::vector<ReadyEvent> popped;
  while (!q.empty()) popped.push_back(q.pop());

  ASSERT_EQ(popped.size(), 5u);
  EXPECT_EQ(popped[0].at, 0.5);
  EXPECT_EQ(popped[1].query, 0u);
  EXPECT_EQ(popped[1].task, 2u);  // same time: lower query, then lower task
  EXPECT_EQ(popped[2].task, 9u);
  EXPECT_EQ(popped[3].query, 1u);
  EXPECT_EQ(popped[4].at, 2.0);
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  q.push({3.0, 0, 0});
  q.push({1.0, 0, 1});
  EXPECT_EQ(q.top().task, 1u);
  ReadyEvent first = q.pop();
  EXPECT_EQ(first.at, 1.0);
  q.push({2.0, 0, 2});  // arrives after a pop, still sorts before 3.0
  EXPECT_EQ(q.pop().task, 2u);
  EXPECT_EQ(q.pop().task, 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RandomPermutationsAllPopSorted) {
  std::vector<ReadyEvent> events;
  for (std::uint32_t i = 0; i < 6; ++i) {
    for (std::uint32_t t = 0; t < 3; ++t) {
      events.push_back({static_cast<SimTime>(i % 3), i % 2, i * 3 + t});
    }
  }
  std::mt19937 rng(17);
  for (int round = 0; round < 20; ++round) {
    std::shuffle(events.begin(), events.end(), rng);
    EventQueue q;
    for (const ReadyEvent& e : events) q.push(e);
    std::vector<ReadyEvent> popped;
    while (!q.empty()) popped.push_back(q.pop());
    ASSERT_EQ(popped.size(), events.size());
    EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end())) << round;
  }
}

TEST(EventQueue, MillionEventStressPinsPopOrderAgainstReferenceSort) {
  // Bulk regression for the timestamp-bucketed heap: one million events over
  // a deliberately nasty distribution — heavy timestamp collisions (the
  // bucket path), unique timestamps (the heap path), injected events
  // (kInjectionQueryId) sharing timestamps with real queries, and
  // interleaved pop/push while draining. The popped sequence must equal a
  // reference std::sort of the same multiset exactly, element for element.
  constexpr std::size_t kEvents = 1'000'000;
  std::vector<ReadyEvent> events;
  events.reserve(kEvents);
  std::mt19937_64 rng(2026);
  std::uniform_int_distribution<int> shape(0, 9);
  std::uniform_int_distribution<std::uint32_t> query(0, 9999);
  std::uniform_int_distribution<std::uint32_t> task(0, 63);
  for (std::size_t i = 0; i < kEvents; ++i) {
    ReadyEvent e;
    const int s = shape(rng);
    if (s < 6) {
      // 60%: one of 1024 hot timestamps — deep buckets.
      e.at = static_cast<SimTime>(rng() % 1024);
    } else if (s < 9) {
      // 30%: fine-grained times — mostly singleton buckets.
      e.at = static_cast<SimTime>(rng() % (1 << 22)) / 64.0;
    } else {
      // 10%: injections pinned to the hot timestamps, so they collide with
      // real queries at equal time and must pop after all of them.
      e.at = static_cast<SimTime>(rng() % 1024);
      e.query = kInjectionQueryId;
      e.task = task(rng);
      events.push_back(e);
      continue;
    }
    e.query = query(rng);
    e.task = task(rng);
    events.push_back(e);
  }

  std::vector<ReadyEvent> want = events;
  std::sort(want.begin(), want.end());

  EventQueue q;
  // Push the first half, drain a quarter, then push the rest: the drain
  // interleaves pops with later pushes, exercising bucket recycling.
  const std::size_t half = kEvents / 2;
  for (std::size_t i = 0; i < half; ++i) q.push(events[i]);
  std::vector<ReadyEvent> got;
  got.reserve(kEvents);
  // Only events at/below this time are safely poppable before the second
  // half arrives; the second half can contain earlier timestamps, so cap
  // the early drain at the known global minimum prefix length instead:
  // pop events that are <= the smallest timestamp of the unpushed half.
  SimTime safe = events[half].at;
  for (std::size_t i = half; i < kEvents; ++i) {
    safe = std::min(safe, events[i].at);
  }
  while (!q.empty() && q.top().at < safe) got.push_back(q.pop());
  for (std::size_t i = half; i < kEvents; ++i) q.push(events[i]);
  while (!q.empty()) got.push_back(q.pop());

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].at, want[i].at) << i;
    ASSERT_EQ(got[i].query, want[i].query) << i;
    ASSERT_EQ(got[i].task, want[i].task) << i;
  }

  // Spot-check the injection contract on the popped order itself: within
  // one timestamp, no real-query event ever follows an injected one.
  for (std::size_t i = 1; i < got.size(); ++i) {
    if (got[i].at == got[i - 1].at &&
        got[i - 1].query == kInjectionQueryId) {
      ASSERT_EQ(got[i].query, kInjectionQueryId) << i;
    }
  }
}

}  // namespace
}  // namespace ahsw::net
