// Deterministic ready-queue: events pop in strict (time, query, task)
// order regardless of push order, which is the total order the DAG
// executor's replay guarantee rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "net/event_queue.hpp"

namespace ahsw::net {
namespace {

TEST(EventQueue, PopsByTimeThenQueryThenTask) {
  EventQueue q;
  q.push({2.0, 0, 0});
  q.push({1.0, 1, 7});
  q.push({1.0, 0, 9});
  q.push({1.0, 0, 2});
  q.push({0.5, 3, 3});

  std::vector<ReadyEvent> popped;
  while (!q.empty()) popped.push_back(q.pop());

  ASSERT_EQ(popped.size(), 5u);
  EXPECT_EQ(popped[0].at, 0.5);
  EXPECT_EQ(popped[1].query, 0u);
  EXPECT_EQ(popped[1].task, 2u);  // same time: lower query, then lower task
  EXPECT_EQ(popped[2].task, 9u);
  EXPECT_EQ(popped[3].query, 1u);
  EXPECT_EQ(popped[4].at, 2.0);
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  q.push({3.0, 0, 0});
  q.push({1.0, 0, 1});
  EXPECT_EQ(q.top().task, 1u);
  ReadyEvent first = q.pop();
  EXPECT_EQ(first.at, 1.0);
  q.push({2.0, 0, 2});  // arrives after a pop, still sorts before 3.0
  EXPECT_EQ(q.pop().task, 2u);
  EXPECT_EQ(q.pop().task, 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RandomPermutationsAllPopSorted) {
  std::vector<ReadyEvent> events;
  for (std::uint32_t i = 0; i < 6; ++i) {
    for (std::uint32_t t = 0; t < 3; ++t) {
      events.push_back({static_cast<SimTime>(i % 3), i % 2, i * 3 + t});
    }
  }
  std::mt19937 rng(17);
  for (int round = 0; round < 20; ++round) {
    std::shuffle(events.begin(), events.end(), rng);
    EventQueue q;
    for (const ReadyEvent& e : events) q.push(e);
    std::vector<ReadyEvent> popped;
    while (!q.empty()) popped.push_back(q.pop());
    ASSERT_EQ(popped.size(), events.size());
    EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end())) << round;
  }
}

}  // namespace
}  // namespace ahsw::net
