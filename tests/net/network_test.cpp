#include "net/network.hpp"

#include <gtest/gtest.h>

namespace ahsw::net {
namespace {

TEST(CostModel, LatencyIsAffineInBytes) {
  CostModel m{2.0, 0.01, 100.0};
  EXPECT_DOUBLE_EQ(m.latency(0), 2.0);
  EXPECT_DOUBLE_EQ(m.latency(1000), 12.0);
}

TEST(Network, AllocatesDistinctAddresses) {
  Network net;
  NodeAddress a = net.allocate_address();
  NodeAddress b = net.allocate_address();
  EXPECT_NE(a, b);
  EXPECT_NE(a, kNoAddress);
}

TEST(Network, SendChargesMessageAndBytes) {
  Network net(CostModel{1.0, 0.001, 100.0});
  SimTime arrival = net.send(1, 2, 500, 10.0, Category::kQuery);
  EXPECT_DOUBLE_EQ(arrival, 11.5);
  EXPECT_EQ(net.stats().messages, 1u);
  EXPECT_EQ(net.stats().bytes, 500u);
}

TEST(Network, LocalSendIsFree) {
  Network net;
  SimTime arrival = net.send(3, 3, 10000, 5.0, Category::kData);
  EXPECT_DOUBLE_EQ(arrival, 5.0);
  EXPECT_EQ(net.stats().messages, 0u);
  EXPECT_EQ(net.stats().bytes, 0u);
}

TEST(Network, CategoriesAreTrackedSeparately) {
  Network net;
  net.send(1, 2, 100, 0, Category::kRouting);
  net.send(1, 2, 200, 0, Category::kRouting);
  net.send(1, 2, 300, 0, Category::kData);
  auto routing = static_cast<std::size_t>(Category::kRouting);
  auto data = static_cast<std::size_t>(Category::kData);
  EXPECT_EQ(net.stats().messages_by[routing], 2u);
  EXPECT_EQ(net.stats().bytes_by[routing], 300u);
  EXPECT_EQ(net.stats().messages_by[data], 1u);
  EXPECT_EQ(net.stats().bytes_by[data], 300u);
}

TEST(Network, TimeoutAdvancesClockAndCounts) {
  Network net(CostModel{1.0, 0.0, 250.0});
  SimTime t = net.timeout(10.0);
  EXPECT_DOUBLE_EQ(t, 260.0);
  EXPECT_EQ(net.stats().timeouts, 1u);
}

TEST(Network, FailAndRecover) {
  Network net;
  NodeAddress n = net.allocate_address();
  EXPECT_FALSE(net.is_failed(n));
  net.fail(n);
  EXPECT_TRUE(net.is_failed(n));
  net.recover(n);
  EXPECT_FALSE(net.is_failed(n));
}

TEST(Network, ResetStatsClearsEverything) {
  Network net;
  net.send(1, 2, 100, 0, Category::kIndex);
  net.timeout(0);
  net.reset_stats();
  EXPECT_EQ(net.stats().messages, 0u);
  EXPECT_EQ(net.stats().bytes, 0u);
  EXPECT_EQ(net.stats().timeouts, 0u);
}

TEST(TrafficStats, DeltaSinceComputesDifference) {
  Network net;
  net.send(1, 2, 100, 0, Category::kQuery);
  TrafficStats snapshot = net.stats();
  net.send(1, 2, 50, 0, Category::kQuery);
  net.send(2, 1, 70, 0, Category::kResult);
  TrafficStats d = net.stats().delta_since(snapshot);
  EXPECT_EQ(d.messages, 2u);
  EXPECT_EQ(d.bytes, 120u);
  EXPECT_EQ(d.messages_by[static_cast<std::size_t>(Category::kResult)], 1u);
}

TEST(Category, NamesAreStable) {
  EXPECT_EQ(category_name(Category::kRouting), "routing");
  EXPECT_EQ(category_name(Category::kIndex), "index");
  EXPECT_EQ(category_name(Category::kQuery), "query");
  EXPECT_EQ(category_name(Category::kData), "data");
  EXPECT_EQ(category_name(Category::kResult), "result");
}

}  // namespace
}  // namespace ahsw::net
