// Message-tracer tests, including a protocol-sequence assertion for the
// paper's Fig. 2 two-level index lookup: the exact message flow
// requester -> attached index node -> (ring hops) -> owner -> requester.
#include <gtest/gtest.h>

#include "overlay/overlay.hpp"

namespace ahsw::net {
namespace {

TEST(Tracer, ObservesChargedMessagesOnly) {
  Network net;
  std::vector<MessageEvent> events;
  net.set_tracer([&](const MessageEvent& e) { events.push_back(e); });
  net.send(1, 2, 100, 5.0, Category::kQuery);
  net.send(3, 3, 50, 0.0, Category::kData);  // node-local: not traced
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].from, 1u);
  EXPECT_EQ(events[0].to, 2u);
  EXPECT_EQ(events[0].bytes, 100u);
  EXPECT_DOUBLE_EQ(events[0].sent_at, 5.0);
  EXPECT_GT(events[0].arrives_at, 5.0);
  EXPECT_EQ(events[0].category, Category::kQuery);
}

TEST(Tracer, DetachStopsObservation) {
  Network net;
  int count = 0;
  net.set_tracer([&](const MessageEvent&) { ++count; });
  net.send(1, 2, 10, 0, Category::kData);
  net.set_tracer(nullptr);
  net.send(1, 2, 10, 0, Category::kData);
  EXPECT_EQ(count, 1);
}

TEST(TimeoutTracer, ObservesChargedTimeouts) {
  Network net;
  std::vector<TimeoutEvent> events;
  net.set_timeout_tracer([&](const TimeoutEvent& e) { events.push_back(e); });
  SimTime gave_up = net.timeout(5.0, 42, Category::kQuery);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].suspect, 42u);
  EXPECT_EQ(events[0].category, Category::kQuery);
  EXPECT_DOUBLE_EQ(events[0].at, 5.0);
  EXPECT_DOUBLE_EQ(events[0].gave_up_at, gave_up);
  EXPECT_DOUBLE_EQ(gave_up, 5.0 + net.cost_model().timeout_ms);
}

TEST(TimeoutTracer, DefaultsToUnknownSuspectAndRoutingCategory) {
  Network net;
  std::vector<TimeoutEvent> events;
  net.set_timeout_tracer([&](const TimeoutEvent& e) { events.push_back(e); });
  net.timeout(0.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].suspect, kNoAddress);
  EXPECT_EQ(events[0].category, Category::kRouting);
}

TEST(TimeoutTracer, PerCategoryCountersAndDelta) {
  Network net;
  net.timeout(0.0, 1, Category::kRouting);
  TrafficStats base = net.stats();
  net.timeout(0.0, 2, Category::kQuery);
  net.timeout(0.0, 2, Category::kQuery);
  net.timeout(0.0, 3, Category::kData);
  EXPECT_EQ(net.stats().timeouts, 4u);
  EXPECT_EQ(net.stats()
                .timeouts_by[static_cast<std::size_t>(Category::kQuery)],
            2u);
  TrafficStats delta = net.stats().delta_since(base);
  EXPECT_EQ(delta.timeouts, 3u);
  EXPECT_EQ(delta.timeouts_by[static_cast<std::size_t>(Category::kRouting)],
            0u);
  EXPECT_EQ(delta.timeouts_by[static_cast<std::size_t>(Category::kQuery)],
            2u);
  EXPECT_EQ(delta.timeouts_by[static_cast<std::size_t>(Category::kData)], 1u);
}

TEST(TimeoutTracer, DetachStopsObservation) {
  Network net;
  int count = 0;
  net.set_timeout_tracer([&](const TimeoutEvent&) { ++count; });
  net.timeout(0.0, 7, Category::kIndex);
  net.set_timeout_tracer(nullptr);
  net.timeout(0.0, 7, Category::kIndex);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(net.stats().timeouts, 2u);  // counting is tracer-independent
}

TEST(Tracer, Fig2LookupMessageSequence) {
  // Build the Fig. 1 topology and trace one two-level index consultation.
  Network network;
  overlay::HybridOverlay ov(
      network, overlay::OverlayConfig{chord::RingConfig{4, 2}, 1, 99});
  ov.add_index_node_with_id(1);
  ov.add_index_node_with_id(4);
  chord::Key n7 = ov.add_index_node_with_id(7);
  ov.add_index_node_with_id(12);
  ov.add_index_node_with_id(15);
  ov.ring().fix_all_fingers_oracle();
  NodeAddress d1 = ov.add_storage_node_attached(n7);
  NodeAddress d2 = ov.add_storage_node_attached(n7);

  rdf::Term s = rdf::Term::iri("http://s");
  rdf::Term p = rdf::Term::iri("http://p");
  ov.share_triples(d1, {{s, p, rdf::Term::iri("http://o")}}, 0);

  std::vector<MessageEvent> events;
  network.set_tracer([&](const MessageEvent& e) { events.push_back(e); });
  auto loc =
      ov.locate(d2, rdf::TriplePattern{s, p, rdf::Variable{"o"}}, 0);
  network.set_tracer(nullptr);
  ASSERT_TRUE(loc.ok);

  // Sequence: requester -> its index node (kIndex), zero or more routing
  // hops + answer (kRouting), entry -> owner (kIndex), owner -> requester
  // (kIndex, the provider list).
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.front().from, d2);
  EXPECT_EQ(events.front().to, ov.index_nodes().at(n7).address);
  EXPECT_EQ(events.front().category, Category::kIndex);
  EXPECT_EQ(events.back().to, d2);
  EXPECT_EQ(events.back().category, Category::kIndex);
  // Logical time is monotone along the chain of causally ordered sends.
  EXPECT_GE(events.back().arrives_at, events.front().sent_at);
  // Everything in between is ring routing or the index hand-off.
  for (std::size_t i = 1; i + 1 < events.size(); ++i) {
    EXPECT_TRUE(events[i].category == Category::kRouting ||
                events[i].category == Category::kIndex)
        << i;
  }
}

}  // namespace
}  // namespace ahsw::net
