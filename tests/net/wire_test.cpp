#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "rdf/term.hpp"
#include "rdf/triple.hpp"
#include "sparql/solution.hpp"

namespace ahsw::net::wire {
namespace {

using rdf::Term;
using sparql::Binding;
using sparql::SolutionSet;

Term random_term(common::Rng& rng) {
  switch (rng.below(5)) {
    case 0: return Term::iri("http://example.org/r/" +
                             std::to_string(rng.below(40)));
    case 1: return Term::literal("value " + std::to_string(rng.below(40)));
    case 2: return Term::lang_literal("wort " + std::to_string(rng.below(9)),
                                      rng.chance(0.5) ? "de" : "en");
    case 3: return Term::integer(static_cast<long long>(rng.below(1000)));
    default: return Term::blank("b" + std::to_string(rng.below(12)));
  }
}

SolutionSet random_set(common::Rng& rng, std::size_t max_rows = 20) {
  static const char* kVars[] = {"a", "name", "x", "y", "z"};
  SolutionSet s;
  std::size_t rows = rng.below(max_rows + 1);
  for (std::size_t r = 0; r < rows; ++r) {
    Binding b;
    for (const char* v : kVars) {
      if (rng.chance(0.6)) b.set(v, random_term(rng));
    }
    s.add(std::move(b));
  }
  return s;
}

TEST(WireCodec, EmptySetRoundTrips) {
  SolutionSet empty;
  std::string payload = encode(empty);
  EXPECT_FALSE(payload.empty());  // framing only, but never zero bytes
  SolutionSet back;
  ASSERT_TRUE(decode(payload, back));
  EXPECT_TRUE(back.empty());
}

TEST(WireCodec, SolutionSetsRoundTrip) {
  common::Rng rng(1234);
  for (int trial = 0; trial < 30; ++trial) {
    SolutionSet s = random_set(rng);
    std::string payload = encode(s);
    EXPECT_EQ(payload.size(), encoded_size(s));
    SolutionSet back;
    ASSERT_TRUE(decode(payload, back)) << "trial " << trial;
    // The dictionary is canonical but rows keep their order, so decode is
    // an exact inverse.
    EXPECT_EQ(back.rows(), s.rows()) << "trial " << trial;
  }
}

TEST(WireCodec, TriplesRoundTrip) {
  common::Rng rng(99);
  std::vector<rdf::Triple> triples;
  for (int i = 0; i < 50; ++i) {
    triples.push_back({Term::iri("http://s/" + std::to_string(rng.below(10))),
                       Term::iri("http://p/" + std::to_string(rng.below(4))),
                       random_term(rng)});
  }
  std::string payload = encode(triples);
  std::vector<rdf::Triple> back;
  ASSERT_TRUE(decode(payload, back));
  EXPECT_EQ(back, triples);
  EXPECT_EQ(encoded_size(triples), payload.size());
}

TEST(WireCodec, EncodedSizeIsRowOrderIndependent) {
  common::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    SolutionSet s = random_set(rng);
    std::size_t size = encoded_size(s);
    std::vector<Binding> rows = s.rows();
    rng.shuffle(rows);
    SolutionSet reordered{std::move(rows)};
    EXPECT_EQ(encoded_size(reordered), size) << "trial " << trial;
  }
}

TEST(WireCodec, CompressesRepetitiveSetsBelowRawSize) {
  // 60 rows sharing a handful of terms: the dictionary pays once, rows are
  // bitmap + small ids. This is the whole point of charging wire bytes.
  SolutionSet s;
  for (int i = 0; i < 60; ++i) {
    Binding b;
    b.set("x", Term::iri("http://example.org/resource/" +
                         std::to_string(i % 5)));
    b.set("y", Term::literal("a moderately long literal value " +
                             std::to_string(i % 3)));
    s.add(std::move(b));
  }
  EXPECT_LT(charged_bytes(s), s.byte_size() / 2);
}

TEST(WireCodec, ChargedBytesMemoIsInvalidatedByMutation) {
  common::Rng rng(21);
  SolutionSet s = random_set(rng);
  std::size_t first = charged_bytes(s);
  EXPECT_EQ(s.wire_cache(), first);
  EXPECT_EQ(charged_bytes(s), first);  // memo hit
  Binding extra;
  extra.set("x", Term::iri("http://example.org/new-term"));
  s.add(extra);
  EXPECT_EQ(s.wire_cache(), 0u);  // add() dropped the memo
  EXPECT_EQ(charged_bytes(s), encoded_size(s));
}

TEST(WireCodec, ChargedBytesSurvivesNormalize) {
  common::Rng rng(22);
  SolutionSet s = random_set(rng);
  std::size_t before = charged_bytes(s);
  s.normalize();
  // normalize() keeps the memo: the canonical encoding is order-free.
  EXPECT_EQ(s.wire_cache(), before);
  EXPECT_EQ(charged_bytes(s), encoded_size(s));
}

// Satellite regression for the cached-size drift bug: after an arbitrary
// interleaving of append / mutate-in-place / clear-and-refill, both the raw
// byte_size() cache and the wire-size memo must equal a from-scratch
// recomputation over the same rows.
TEST(WireCodec, CachedSizesNeverDriftUnderRandomMutation) {
  common::Rng rng(0xD01F);
  for (int trial = 0; trial < 40; ++trial) {
    SolutionSet s;
    int steps = static_cast<int>(rng.between(1, 25));
    for (int step = 0; step < steps; ++step) {
      switch (rng.below(4)) {
        case 0: {  // append
          Binding b;
          b.set("v" + std::to_string(rng.below(4)), random_term(rng));
          if (rng.chance(0.5)) b.set("w", random_term(rng));
          s.add(std::move(b));
          break;
        }
        case 1: {  // mutate a row in place through mutable rows()
          if (s.empty()) break;
          auto& rows = s.rows();
          std::size_t i = rng.below(rows.size());
          rows[i].set("m", random_term(rng));
          break;
        }
        case 2: {  // drop a row
          if (s.empty()) break;
          auto& rows = s.rows();
          rows.erase(rows.begin() +
                     static_cast<std::ptrdiff_t>(rng.below(rows.size())));
          break;
        }
        default: {  // interleave size queries so caches get populated
          (void)s.byte_size();
          (void)charged_bytes(s);
          break;
        }
      }
      // Recompute both sizes on a fresh copy of the same rows.
      SolutionSet fresh{std::vector<Binding>(s.rows())};
      ASSERT_EQ(s.byte_size(), fresh.byte_size())
          << "raw cache drifted at trial " << trial << " step " << step;
      ASSERT_EQ(charged_bytes(s), encoded_size(fresh))
          << "wire memo drifted at trial " << trial << " step " << step;
    }
  }
}

TEST(WireCodec, DecodeRejectsTruncatedPayloads) {
  common::Rng rng(5);
  SolutionSet s = random_set(rng);
  while (s.empty()) s = random_set(rng);
  std::string payload = encode(s);
  SolutionSet out;
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(decode(std::string_view(payload).substr(0, cut), out))
        << "cut " << cut;
  }
  ASSERT_TRUE(decode(payload, out));
}

}  // namespace
}  // namespace ahsw::net::wire
