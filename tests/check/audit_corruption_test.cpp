// Seeded-corruption suite: deliberately break each invariant class through
// the fault-injection hooks (Ring::mutable_state, HybridOverlay::
// index_state) and assert the auditor reports exactly that class — 100%
// detection, zero cross-talk between invariants.
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "check/audit.hpp"
#include "dqp/processor.hpp"
#include "fault/harness.hpp"
#include "workload/testbed.hpp"

namespace ahsw::check {
namespace {

std::set<Invariant> classes(const AuditReport& rep) {
  std::set<Invariant> out;
  for (int i = 0; i < kInvariantCount; ++i) {
    auto inv = static_cast<Invariant>(i);
    if (rep.has(inv)) out.insert(inv);
  }
  return out;
}

workload::TestbedConfig config(int replication) {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 6;
  cfg.storage_nodes = 6;
  cfg.overlay.replication_factor = replication;
  cfg.foaf.persons = 30;
  cfg.foaf.seed = 7;
  cfg.partition.seed = 8;
  return cfg;
}

/// One published (storage node, index key, ring owner, frequency) entry — a
/// concrete corruption target. Picks the highest-frequency key across all
/// storage nodes so frequency-skew tests have room below the true count.
struct Target {
  net::NodeAddress provider = net::kNoAddress;
  chord::Key key = 0;
  chord::Key owner = 0;
  std::uint32_t freq = 0;
};

Target pick_target(workload::Testbed& bed) {
  Target t;
  for (const auto& [addr, st] : bed.overlay().storage_nodes()) {
    for (const auto& [key, freq] : st.published) {
      if (freq > t.freq) {
        t.provider = addr;
        t.key = key;
        t.freq = freq;
      }
    }
  }
  EXPECT_GT(t.freq, 1u) << "dataset too small to pick a shared key";
  t.owner = bed.overlay().ring().oracle_successor(
      bed.overlay().ring().truncate(t.key));
  return t;
}

TEST(SeededCorruption, CleanSystemAuditsPristine) {
  workload::Testbed bed(config(1));
  AuditReport rep = audit(bed);
  EXPECT_TRUE(rep.pristine()) << rep.to_string();
  EXPECT_GT(rep.nodes_checked, 0u);
  EXPECT_GT(rep.triples_checked, 0u);
  EXPECT_GT(rep.keys_checked, 0u);
  EXPECT_GT(rep.rows_checked, 0u);
}

TEST(SeededCorruption, I1SkewedSuccessorPointer) {
  workload::Testbed bed(config(1));
  chord::Ring& ring = bed.overlay().ring();
  std::vector<chord::Key> ids = ring.live_ids();
  // Point the first node's immediate successor past the true one.
  chord::NodeState& st = ring.mutable_state(ids.front());
  ASSERT_GE(st.successors.size(), 2u);
  st.successors.front() = st.successors[1];

  AuditReport rep = audit(bed);
  EXPECT_TRUE(rep.has(Invariant::kRingTopology)) << rep.to_string();
  EXPECT_GT(rep.count(Invariant::kRingTopology, Severity::kCorrupt), 0u);
  EXPECT_EQ(classes(rep),
            std::set<Invariant>{Invariant::kRingTopology})
      << rep.to_string();
}

TEST(SeededCorruption, I1SkewedPredecessorPointer) {
  workload::Testbed bed(config(1));
  chord::Ring& ring = bed.overlay().ring();
  std::vector<chord::Key> ids = ring.live_ids();
  ring.mutable_state(ids.front()).predecessor = ids.front();

  AuditReport rep = audit(bed);
  EXPECT_GT(rep.count(Invariant::kRingTopology, Severity::kCorrupt), 0u);
  EXPECT_EQ(classes(rep), std::set<Invariant>{Invariant::kRingTopology})
      << rep.to_string();
}

TEST(SeededCorruption, I1LaggingFingersReportStaleNotCorrupt) {
  workload::Testbed bed(config(1));
  chord::Ring& ring = bed.overlay().ring();
  std::vector<chord::Key> ids = ring.live_ids();
  // Valid-but-slow fingers (all at the immediate successor): the lazily
  // maintained table lags, which routing tolerates — stale, never corrupt.
  chord::NodeState& st = ring.mutable_state(ids.front());
  st.fingers.assign(st.fingers.size(), st.successors.front());

  AuditReport rep = audit(bed);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  EXPECT_GT(rep.count(Invariant::kRingTopology, Severity::kStale), 0u);
  EXPECT_EQ(classes(rep), std::set<Invariant>{Invariant::kRingTopology})
      << rep.to_string();
}

TEST(SeededCorruption, I2DroppedIndexKey) {
  workload::Testbed bed(config(1));
  Target t = pick_target(bed);
  ASSERT_TRUE(
      bed.overlay().index_state(t.owner).table.purge(t.key, t.provider));

  AuditReport rep = audit(bed);
  EXPECT_GT(rep.count(Invariant::kSixKey, Severity::kCorrupt), 0u);
  EXPECT_EQ(classes(rep), std::set<Invariant>{Invariant::kSixKey})
      << rep.to_string();
  // The violation names the exact (owner, key, provider).
  bool located = false;
  for (const Violation& v : rep.violations) {
    if (v.invariant == Invariant::kSixKey && v.key == t.key &&
        v.provider == t.provider && v.node == t.owner) {
      located = true;
    }
  }
  EXPECT_TRUE(located) << rep.to_string();
}

TEST(SeededCorruption, I3SkewedFrequency) {
  workload::Testbed bed(config(1));
  Target t = pick_target(bed);
  overlay::LocationTable& table = bed.overlay().index_state(t.owner).table;
  table.upsert(t.key, t.provider, t.freq + 3);

  AuditReport rep = audit(bed);
  EXPECT_GT(rep.count(Invariant::kLocationCoherence, Severity::kCorrupt), 0u);
  EXPECT_EQ(classes(rep), std::set<Invariant>{Invariant::kLocationCoherence})
      << rep.to_string();
}

TEST(SeededCorruption, I3UndercountedFrequencyIsAlwaysCorrupt) {
  workload::Testbed bed(config(1));
  Target t = pick_target(bed);
  ASSERT_GT(t.freq, 1u);
  overlay::LocationTable& table = bed.overlay().index_state(t.owner).table;
  table.upsert(t.key, t.provider, t.freq + 1);  // inflated ...

  // ... under churn inflation is the documented at-least-once window
  // (stale), but an undercount is a lost publish even mid-churn.
  AuditOptions churned;
  churned.churned = true;
  AuditReport lenient = audit(bed, churned);
  EXPECT_TRUE(lenient.clean()) << lenient.to_string();
  EXPECT_GT(lenient.count(Invariant::kLocationCoherence, Severity::kStale),
            0u);

  table.upsert(t.key, t.provider, t.freq - 1);  // ... then undercounted
  AuditReport rep = audit(bed, churned);
  EXPECT_GT(rep.count(Invariant::kLocationCoherence, Severity::kCorrupt), 0u)
      << rep.to_string();
  EXPECT_EQ(classes(rep), std::set<Invariant>{Invariant::kLocationCoherence})
      << rep.to_string();
}

TEST(SeededCorruption, I4DeletedReplicaRow) {
  workload::Testbed bed(config(3));
  Target t = pick_target(bed);
  // The designated replica holders are the owner's first rf-1 successors
  // hosting index state (the walk replicate_row performs).
  const chord::Ring& ring = bed.overlay().ring();
  std::optional<chord::Key> holder;
  for (chord::Key succ : ring.state(t.owner).successors) {
    if (succ != t.owner && bed.overlay().index_nodes().count(succ) > 0) {
      holder = succ;
      break;
    }
  }
  ASSERT_TRUE(holder.has_value());
  bed.overlay().index_state(*holder).replicas.upsert(t.key, t.provider, 0);

  AuditReport rep = audit(bed);
  EXPECT_GT(rep.count(Invariant::kReplication, Severity::kCorrupt), 0u);
  EXPECT_EQ(classes(rep), std::set<Invariant>{Invariant::kReplication})
      << rep.to_string();
}

TEST(SeededCorruption, I5DesyncedSpanCounters) {
  workload::Testbed bed(config(1));
  dqp::DistributedQueryProcessor proc(bed.overlay());
  obs::QueryTrace trace;
  proc.set_trace(&trace);  // binds the trace to the testbed network

  const std::string query =
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
      "SELECT ?s ?o WHERE { ?s foaf:knows ?o }";
  net::TrafficStats before = bed.network().stats();
  (void)proc.execute(query, bed.storage_addrs().front(), nullptr);

  // The traced execution conserves exactly.
  {
    net::TrafficStats delta = bed.network().stats().delta_since(before);
    AuditReport rep;
    audit_conservation(trace, delta, rep);
    EXPECT_TRUE(rep.pristine()) << rep.to_string();
  }

  // Desync: traffic charged outside the trace's observation window lands in
  // the delta but in no span — the conservation sum must catch the hole.
  proc.set_trace(nullptr);  // unbinds the trace
  bed.network().send(bed.storage_addrs().front(), bed.storage_addrs().back(),
                     64, 0, net::Category::kData);
  net::TrafficStats delta = bed.network().stats().delta_since(before);
  AuditReport rep;
  audit_conservation(trace, delta, rep);
  EXPECT_GT(rep.count(Invariant::kConservation, Severity::kCorrupt), 0u);
  EXPECT_EQ(classes(rep), std::set<Invariant>{Invariant::kConservation})
      << rep.to_string();
}

TEST(SeededCorruption, I6FailedProviderRevivedInPrimaryRow) {
  workload::Testbed bed(config(1));
  Target t = pick_target(bed);
  bed.overlay().storage_node_fail(t.provider);
  fault::converge(bed.overlay(), 0);

  AuditOptions opt;
  opt.converged = true;
  opt.churned = true;
  EXPECT_TRUE(audit(bed.overlay(), opt).clean())
      << "converge must establish I6 before the corruption is planted";

  // Resurrect the corpse in the owner's primary row — the post-convergence
  // state the replica-propagation bug produced.
  bed.overlay().index_state(t.owner).table.publish(t.key, t.provider, t.freq);
  AuditReport rep = audit(bed.overlay(), opt);
  EXPECT_GT(rep.count(Invariant::kLiveness, Severity::kCorrupt), 0u)
      << rep.to_string();
  bool located = false;
  for (const Violation& v : rep.violations) {
    if (v.invariant == Invariant::kLiveness && v.key == t.key &&
        v.provider == t.provider) {
      located = true;
    }
  }
  EXPECT_TRUE(located) << rep.to_string();

  // Without the converged bar the same entry is lazy-repair staleness (I3),
  // not an I6 violation.
  AuditOptions lax;
  lax.churned = true;
  AuditReport lenient = audit(bed.overlay(), lax);
  EXPECT_TRUE(lenient.clean()) << lenient.to_string();
  EXPECT_EQ(lenient.count(Invariant::kLiveness), 0u);
}

TEST(SeededCorruption, I6FailedProviderSurvivingInReplicaRow) {
  workload::Testbed bed(config(2));
  Target t = pick_target(bed);
  bed.overlay().storage_node_fail(t.provider);
  fault::converge(bed.overlay(), 0);

  AuditOptions opt;
  opt.converged = true;
  opt.churned = true;
  ASSERT_TRUE(audit(bed.overlay(), opt).clean());

  // A replica copy the purge missed: exactly the resurrection seed.
  bed.overlay().index_state(t.owner).replicas.upsert(t.key, t.provider,
                                                     t.freq);
  AuditReport rep = audit(bed.overlay(), opt);
  EXPECT_GT(rep.count(Invariant::kLiveness, Severity::kCorrupt), 0u)
      << rep.to_string();
}

}  // namespace
}  // namespace ahsw::check
