// Audit-clean regression: the auditor must stay silent on states the
// protocol legitimately produces — quiescent testbeds (pristine), the
// paper's Fig. 1 topology (pristine), traced query executions (I5
// conserves), and churn sequences (zero corrupt; stale drift allowed).
#include <gtest/gtest.h>

#include "check/audit.hpp"
#include "common/rng.hpp"
#include "dqp/processor.hpp"
#include "workload/testbed.hpp"

namespace ahsw::check {
namespace {

workload::TestbedConfig config(int replication, bool pair_keys = true) {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 8;
  cfg.storage_nodes = 8;
  cfg.overlay.replication_factor = replication;
  cfg.overlay.pair_keys = pair_keys;
  cfg.foaf.persons = 40;
  cfg.foaf.seed = 11;
  cfg.partition.seed = 12;
  return cfg;
}

const char kPrologue[] = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n";

TEST(AuditClean, QuiescentTestbedsAuditPristine) {
  struct Case {
    int replication;
    bool pair_keys;
  };
  for (Case c : {Case{1, true}, Case{3, true}, Case{1, false}}) {
    workload::Testbed bed(config(c.replication, c.pair_keys));
    AuditReport rep = audit(bed);
    EXPECT_TRUE(rep.pristine())
        << "rf=" << c.replication << " pair_keys=" << c.pair_keys << "\n"
        << rep.to_string();
    EXPECT_GT(rep.keys_checked, 0u);
  }
}

TEST(AuditClean, PaperTopologyAuditsPristine) {
  // The Fig. 1 network: index nodes N1, N4, N7, N12, N15 in a 4-bit space,
  // storage nodes D1..D4, plus the Fig. 2 shared triples.
  net::Network network;
  overlay::HybridOverlay ov(network,
                            overlay::OverlayConfig{chord::RingConfig{4, 2}, 1,
                                                   99});
  for (chord::Key id : {1u, 4u, 7u, 12u, 15u}) ov.add_index_node_with_id(id);
  ov.ring().fix_all_fingers_oracle();
  net::NodeAddress d1 = ov.add_storage_node_attached(7);
  net::NodeAddress d2 = ov.add_storage_node_attached(12);
  net::NodeAddress d3 = ov.add_storage_node_attached(7);
  net::NodeAddress d4 = ov.add_storage_node_attached(15);

  rdf::Term si = rdf::Term::iri("http://example.org/si");
  rdf::Term pi = rdf::Term::iri("http://example.org/pi");
  auto share = [&](net::NodeAddress node, int count, const std::string& tag) {
    std::vector<rdf::Triple> triples;
    for (int i = 0; i < count; ++i) {
      triples.push_back({si, pi,
                         rdf::Term::iri("http://example.org/o-" + tag +
                                        std::to_string(i))});
    }
    ov.share_triples(node, triples, 0);
  };
  share(d1, 10, "d1");
  share(d3, 20, "d3");
  share(d4, 15, "d4");
  (void)d2;

  AuditReport rep = audit(ov);
  EXPECT_TRUE(rep.pristine()) << rep.to_string();
  EXPECT_EQ(rep.nodes_checked, 5u);
  EXPECT_GT(rep.triples_checked, 0u);
}

TEST(AuditClean, TracedQueriesConserveTraffic) {
  workload::Testbed bed(config(1));
  dqp::DistributedQueryProcessor proc(bed.overlay());
  obs::QueryTrace trace;
  proc.set_trace(&trace);

  const std::string queries[] = {
      std::string(kPrologue) + "SELECT ?s ?o WHERE { ?s foaf:knows ?o }",
      std::string(kPrologue) +
          "SELECT ?s ?n WHERE { ?s foaf:knows ?o . ?o foaf:name ?n }",
      std::string(kPrologue) +
          "SELECT ?s WHERE { ?s foaf:name ?n FILTER(?n != \"nobody\") }",
  };
  for (const std::string& q : queries) {
    trace.clear();
    net::TrafficStats before = bed.network().stats();
    (void)proc.execute(q, bed.storage_addrs().front(), nullptr);
    net::TrafficStats delta = bed.network().stats().delta_since(before);
    AuditReport rep;
    audit_conservation(trace, delta, rep);
    EXPECT_TRUE(rep.pristine()) << q << "\n" << rep.to_string();
  }
}

TEST(AuditClean, RawBytesConserveAndExceedWireBytes) {
  // I5 covers both sides of the compression ratio: the wire-charged bytes
  // and the uncompressed raw bytes each conserve span-by-span, and on a
  // data-bearing query the raw total is strictly larger (the codec must
  // actually compress, or charging wire bytes is a no-op).
  workload::Testbed bed(config(1));
  dqp::DistributedQueryProcessor proc(bed.overlay());
  obs::QueryTrace trace;
  proc.set_trace(&trace);

  const std::string q = std::string(kPrologue) +
                        "SELECT ?s ?n WHERE { ?s foaf:knows ?o . "
                        "?o foaf:name ?n }";
  net::TrafficStats before = bed.network().stats();
  (void)proc.execute(q, bed.storage_addrs().front(), nullptr);
  net::TrafficStats delta = bed.network().stats().delta_since(before);

  AuditReport rep;
  audit_conservation(trace, delta, rep);
  EXPECT_TRUE(rep.pristine()) << rep.to_string();
  EXPECT_GT(delta.raw_bytes, delta.bytes);

  std::uint64_t span_raw = trace.unattributed_raw_bytes();
  for (const obs::Span& s : trace.spans()) span_raw += s.raw_bytes;
  EXPECT_EQ(span_raw, delta.raw_bytes);
}

TEST(AuditClean, ChurnSequenceNeverGoesCorrupt) {
  workload::Testbed bed(config(3));
  overlay::HybridOverlay& ov = bed.overlay();
  AuditOptions churned;
  churned.churned = true;
  net::SimTime now = bed.setup_completed_at();

  // Storage crash: location entries for the corpse linger (lazy repair).
  ov.storage_node_fail(bed.storage_addrs()[0]);
  AuditReport rep = audit(ov, churned);
  EXPECT_TRUE(rep.clean()) << "after storage fail\n" << rep.to_string();

  // Index crash + repair: replicas promote to the new owner.
  ov.index_node_fail(bed.index_ids()[1]);
  ov.repair(now);
  rep = audit(ov, churned);
  EXPECT_TRUE(rep.clean()) << "after index fail+repair\n" << rep.to_string();

  // Index join: the new node takes over its slice immediately.
  ov.add_index_node(now);
  rep = audit(ov, churned);
  EXPECT_TRUE(rep.clean()) << "after index join\n" << rep.to_string();

  // Graceful departures retract / hand over state.
  now = ov.storage_node_leave(bed.storage_addrs()[2], now);
  ov.index_node_leave(bed.index_ids()[3], now);
  rep = audit(ov, churned);
  EXPECT_TRUE(rep.clean()) << "after graceful leaves\n" << rep.to_string();

  // Stabilization settles the ring again; the audit must stay corrupt-free
  // (frequency inflation from the at-least-once window may remain stale).
  ov.ring().stabilize_all(now);
  ov.ring().fix_all_fingers_oracle();
  rep = audit(ov, churned);
  EXPECT_TRUE(rep.clean()) << "after stabilization\n" << rep.to_string();
}

TEST(AuditClean, BareRingChurnAuditsClean) {
  net::Network network;
  chord::Ring ring(network, chord::RingConfig{16, 4});
  common::Rng rng(21);
  std::vector<chord::Key> ids;
  for (int i = 0; i < 24; ++i) {
    chord::Key id = ring.truncate(rng.next());
    while (ring.contains(id)) id = ring.truncate(rng.next());
    if (ring.size() == 0) {
      ring.create(network.allocate_address(), id);
    } else {
      ring.join(network.allocate_address(), id, ids.front(), 0);
    }
    ids.push_back(id);
  }
  ring.fix_all_fingers_oracle();
  {
    AuditReport rep;
    audit_ring(ring, network, rep);
    EXPECT_TRUE(rep.pristine()) << rep.to_string();
  }

  AuditOptions churned;
  churned.churned = true;
  ring.fail(ids[5]);
  ring.fail(ids[6]);
  {
    AuditReport rep;
    audit_ring(ring, network, rep, churned);
    EXPECT_TRUE(rep.clean()) << "with corpses\n" << rep.to_string();
  }
  ring.repair(0);
  ring.stabilize_all(0);
  {
    AuditReport rep;
    audit_ring(ring, network, rep, churned);
    EXPECT_TRUE(rep.clean()) << "after repair\n" << rep.to_string();
  }
}

}  // namespace
}  // namespace ahsw::check
