#include "sparql/solution.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparql/eval.hpp"

namespace ahsw::sparql {
namespace {

rdf::Term iri(const std::string& x) { return rdf::Term::iri("http://" + x); }

Binding bind(std::initializer_list<std::pair<std::string, std::string>> kv) {
  Binding b;
  for (const auto& [k, v] : kv) b.set(k, iri(v));
  return b;
}

TEST(Binding, SetAndGet) {
  Binding b;
  EXPECT_EQ(b.get("x"), nullptr);
  b.set("x", iri("a"));
  ASSERT_NE(b.get("x"), nullptr);
  EXPECT_EQ(*b.get("x"), iri("a"));
  EXPECT_TRUE(b.bound("x"));
  EXPECT_FALSE(b.bound("y"));
}

TEST(Binding, SetOverwrites) {
  Binding b = bind({{"x", "a"}});
  b.set("x", iri("b"));
  EXPECT_EQ(*b.get("x"), iri("b"));
  EXPECT_EQ(b.size(), 1u);
}

TEST(Binding, SlotsStaySorted) {
  Binding b = bind({{"z", "1"}, {"a", "2"}, {"m", "3"}});
  ASSERT_EQ(b.slots().size(), 3u);
  EXPECT_EQ(b.slots()[0].first, "a");
  EXPECT_EQ(b.slots()[1].first, "m");
  EXPECT_EQ(b.slots()[2].first, "z");
}

TEST(Binding, CompatibilityPerPerezEtAl) {
  Binding u1 = bind({{"x", "a"}, {"y", "b"}});
  Binding u2 = bind({{"y", "b"}, {"z", "c"}});
  Binding u3 = bind({{"y", "OTHER"}});
  EXPECT_TRUE(u1.compatible(u2));
  EXPECT_TRUE(u2.compatible(u1));
  EXPECT_FALSE(u1.compatible(u3));
  // Disjoint domains are always compatible.
  EXPECT_TRUE(bind({{"x", "a"}}).compatible(bind({{"q", "z"}})));
  // The empty mapping is compatible with everything.
  EXPECT_TRUE(Binding{}.compatible(u1));
}

TEST(Binding, MergedUnionsDomains) {
  Binding m = bind({{"x", "a"}}).merged(bind({{"y", "b"}}));
  EXPECT_EQ(*m.get("x"), iri("a"));
  EXPECT_EQ(*m.get("y"), iri("b"));
  EXPECT_EQ(m.size(), 2u);
}

TEST(Binding, MergedKeepsSharedOnce) {
  Binding m =
      bind({{"x", "a"}, {"y", "b"}}).merged(bind({{"y", "b"}, {"z", "c"}}));
  EXPECT_EQ(m.size(), 3u);
}

TEST(Binding, ProjectedKeepsOnlyNamed) {
  Binding b = bind({{"x", "a"}, {"y", "b"}, {"z", "c"}});
  Binding p = b.projected({"x", "z", "missing"});
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.bound("x"));
  EXPECT_FALSE(p.bound("y"));
}

TEST(Binding, OrderingIsCanonical) {
  EXPECT_LT(bind({{"x", "a"}}), bind({{"x", "b"}}));
  EXPECT_EQ(bind({{"x", "a"}}), bind({{"x", "a"}}));
}

TEST(SolutionSet, JoinOnSharedVariable) {
  SolutionSet a({bind({{"x", "1"}, {"y", "a"}}), bind({{"x", "2"}, {"y", "b"}})});
  SolutionSet b({bind({{"y", "a"}, {"z", "p"}}), bind({{"y", "zz"}, {"z", "q"}})});
  SolutionSet j = join(a, b);
  ASSERT_EQ(j.size(), 1u);
  EXPECT_EQ(*j.rows()[0].get("x"), iri("1"));
  EXPECT_EQ(*j.rows()[0].get("z"), iri("p"));
}

TEST(SolutionSet, JoinWithoutSharedVarsIsCartesian) {
  SolutionSet a({bind({{"x", "1"}}), bind({{"x", "2"}})});
  SolutionSet b({bind({{"y", "a"}}), bind({{"y", "b"}}), bind({{"y", "c"}})});
  EXPECT_EQ(join(a, b).size(), 6u);
}

TEST(SolutionSet, JoinHandlesPartiallyBoundRows) {
  // A row missing the shared var joins with everything compatible (this
  // arises after OPTIONAL).
  SolutionSet a({bind({{"x", "1"}})});
  SolutionSet b({bind({{"x", "1"}, {"y", "a"}}), bind({{"y", "b"}})});
  SolutionSet j = join(a, b);
  EXPECT_EQ(j.size(), 2u);
}

TEST(SolutionSet, JoinWithEmptyIsEmpty) {
  SolutionSet a({bind({{"x", "1"}})});
  EXPECT_TRUE(join(a, SolutionSet{}).empty());
  EXPECT_TRUE(join(SolutionSet{}, a).empty());
}

TEST(SolutionSet, JoinWithEmptyMappingIsIdentity) {
  SolutionSet a({bind({{"x", "1"}}), bind({{"x", "2"}})});
  SolutionSet unit({Binding{}});
  EXPECT_EQ(join(a, unit).size(), a.size());
  EXPECT_EQ(join(unit, a).size(), a.size());
}

TEST(SolutionSet, UnionConcatenates) {
  SolutionSet a({bind({{"x", "1"}})});
  SolutionSet b({bind({{"x", "1"}}), bind({{"x", "2"}})});
  EXPECT_EQ(set_union(a, b).size(), 3u);  // multiset semantics
}

TEST(SolutionSet, MinusDropsCompatibleRows) {
  SolutionSet a({bind({{"x", "1"}}), bind({{"x", "2"}})});
  SolutionSet b({bind({{"x", "1"}, {"y", "q"}})});
  SolutionSet m = minus(a, b);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.rows()[0].get("x"), iri("2"));
}

TEST(SolutionSet, MinusAgainstEmptyKeepsAll) {
  SolutionSet a({bind({{"x", "1"}})});
  EXPECT_EQ(minus(a, SolutionSet{}).size(), 1u);
}

TEST(SolutionSet, MinusWithEmptyMappingRemovesEverything) {
  // The empty mapping is compatible with every row.
  SolutionSet a({bind({{"x", "1"}})});
  SolutionSet b({Binding{}});
  EXPECT_TRUE(minus(a, b).empty());
}

TEST(SolutionSet, LeftJoinKeepsUnmatchedLeftRows) {
  SolutionSet a({bind({{"x", "1"}}), bind({{"x", "2"}})});
  SolutionSet b({bind({{"x", "1"}, {"y", "q"}})});
  SolutionSet lj = left_join(a, b);
  lj.normalize();
  ASSERT_EQ(lj.size(), 2u);
  EXPECT_TRUE(lj.rows()[0].bound("y"));   // x=1 extended
  EXPECT_FALSE(lj.rows()[1].bound("y"));  // x=2 bare
}

TEST(SolutionSetProperty, LeftJoinDefinitionHolds) {
  // (O1 leftjoin O2) == (O1 join O2) union (O1 minus O2), as sets.
  common::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    SolutionSet a, b;
    for (int i = 0; i < 15; ++i) {
      a.add(bind({{"x", std::to_string(rng.below(5))},
                  {"y", std::to_string(rng.below(5))}}));
      b.add(bind({{"y", std::to_string(rng.below(5))},
                  {"z", std::to_string(rng.below(5))}}));
    }
    SolutionSet lhs = deduplicated(left_join(a, b));
    SolutionSet rhs = deduplicated(set_union(join(a, b), minus(a, b)));
    EXPECT_EQ(lhs.rows(), rhs.rows());
  }
}

TEST(SolutionSetProperty, JoinIsCommutativeAsSets) {
  common::Rng rng(78);
  for (int trial = 0; trial < 20; ++trial) {
    SolutionSet a, b;
    for (int i = 0; i < 12; ++i) {
      a.add(bind({{"x", std::to_string(rng.below(4))},
                  {"y", std::to_string(rng.below(4))}}));
      b.add(bind({{"y", std::to_string(rng.below(4))},
                  {"z", std::to_string(rng.below(4))}}));
    }
    EXPECT_EQ(deduplicated(join(a, b)).rows(),
              deduplicated(join(b, a)).rows());
  }
}

TEST(SolutionSetProperty, JoinDistributesOverUnion) {
  // R join (A union B) == (R join A) union (R join B) — the identity that
  // justifies the paper's chain execution for conjunctions (Sect. IV-D).
  common::Rng rng(79);
  for (int trial = 0; trial < 20; ++trial) {
    SolutionSet r, a, b;
    for (int i = 0; i < 10; ++i) {
      r.add(bind({{"x", std::to_string(rng.below(4))},
                  {"y", std::to_string(rng.below(4))}}));
      a.add(bind({{"y", std::to_string(rng.below(4))},
                  {"z", std::to_string(rng.below(4))}}));
      b.add(bind({{"y", std::to_string(rng.below(4))},
                  {"z", std::to_string(rng.below(4))}}));
    }
    EXPECT_EQ(deduplicated(join(r, set_union(a, b))).rows(),
              deduplicated(set_union(join(r, a), join(r, b))).rows());
  }
}

TEST(SolutionSet, ByteSizeGrowsWithRows) {
  SolutionSet small({bind({{"x", "1"}})});
  SolutionSet big({bind({{"x", "1"}}), bind({{"x", "2"}}), bind({{"x", "3"}})});
  EXPECT_LT(small.byte_size(), big.byte_size());
}

TEST(SolutionSet, VariablesOfCollectsAllNames) {
  SolutionSet s({bind({{"x", "1"}}), bind({{"y", "2"}})});
  EXPECT_EQ(variables_of(s), (std::vector<std::string>{"x", "y"}));
}

// The cached byte size must be indistinguishable from recomputation: every
// mutation path (incremental add, the row-vector constructor, in-place row
// mutation through the non-const accessor, normalize) lands on the same
// value a freshly built copy reports.
std::size_t recomputed(const SolutionSet& s) {
  return SolutionSet(s.rows()).byte_size();
}

TEST(SolutionSet, ByteSizeCacheSurvivesIncrementalAdds) {
  SolutionSet s;
  std::size_t empty_size = s.byte_size();
  for (int i = 0; i < 10; ++i) {
    s.add(bind({{"x", std::to_string(i)}, {"y", "v"}}));
    EXPECT_EQ(s.byte_size(), recomputed(s)) << "after add " << i;
  }
  EXPECT_GT(s.byte_size(), empty_size);
}

TEST(SolutionSet, ByteSizeCacheInvalidatedByRowMutation) {
  SolutionSet s({bind({{"x", "a"}})});
  std::size_t before = s.byte_size();
  s.rows()[0].set("x", rdf::Term::literal("a much longer literal value"));
  EXPECT_GT(s.byte_size(), before);
  EXPECT_EQ(s.byte_size(), recomputed(s));

  s.rows().clear();
  EXPECT_EQ(s.byte_size(), SolutionSet{}.byte_size());
}

TEST(SolutionSet, ByteSizeCacheSurvivesNormalize) {
  SolutionSet s({bind({{"x", "3"}}), bind({{"x", "1"}}), bind({{"x", "2"}})});
  std::size_t before = s.byte_size();
  s.normalize();
  EXPECT_EQ(s.byte_size(), before);
  EXPECT_EQ(s.byte_size(), recomputed(s));
}

}  // namespace
}  // namespace ahsw::sparql
