#include "sparql/format.hpp"

#include <gtest/gtest.h>

namespace ahsw::sparql {
namespace {

TEST(Format, AskRendersYesNo) {
  QueryResult r;
  r.form = QueryForm::kAsk;
  r.ask_answer = true;
  EXPECT_EQ(to_table(r), "yes\n");
  r.ask_answer = false;
  EXPECT_EQ(to_table(r), "no\n");
}

TEST(Format, ConstructRendersNTriples) {
  QueryResult r;
  r.form = QueryForm::kConstruct;
  r.graph.push_back({rdf::Term::iri("http://s"), rdf::Term::iri("http://p"),
                     rdf::Term::literal("v")});
  std::string out = to_table(r);
  EXPECT_NE(out.find("<http://s> <http://p> \"v\" ."), std::string::npos);
  EXPECT_NE(out.find("1 triples"), std::string::npos);
}

TEST(Format, SelectRendersAlignedTable) {
  QueryResult r;
  r.form = QueryForm::kSelect;
  r.variables = {"x", "name"};
  Binding b1;
  b1.set("x", rdf::Term::iri("http://people/bob"));
  b1.set("name", rdf::Term::literal("Bob"));
  Binding b2;
  b2.set("x", rdf::Term::iri("http://people/a"));
  // name unbound in row 2 (post-OPTIONAL shape)
  r.solutions.add(b1);
  r.solutions.add(b2);

  std::string out = to_table(r);
  EXPECT_NE(out.find("| x "), std::string::npos);
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("<http://people/bob>"), std::string::npos);
  EXPECT_NE(out.find("2 rows"), std::string::npos);
  // Every data line has the same length (alignment).
  std::size_t first_len = out.find('\n');
  std::size_t pos = 0;
  int lines = 0;
  while (true) {
    std::size_t next = out.find('\n', pos);
    if (next == std::string::npos) break;
    std::string line = out.substr(pos, next - pos);
    if (!line.empty() && line[0] == '|') {
      EXPECT_EQ(line.size(), first_len) << line;
      ++lines;
    }
    pos = next + 1;
  }
  EXPECT_EQ(lines, 4);  // header + separator + 2 data rows
}

TEST(Format, EmptySelect) {
  QueryResult r;
  r.form = QueryForm::kSelect;
  r.variables = {"x"};
  std::string out = to_table(r);
  EXPECT_NE(out.find("0 rows"), std::string::npos);
}

TEST(Format, SelectWithoutDeclaredVariablesInfersColumns) {
  QueryResult r;
  r.form = QueryForm::kSelect;
  Binding b;
  b.set("z", rdf::Term::integer(1));
  r.solutions.add(b);
  std::string out = to_table(r);
  EXPECT_NE(out.find("| z"), std::string::npos);
}

}  // namespace
}  // namespace ahsw::sparql
