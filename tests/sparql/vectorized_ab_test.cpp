// A/B equivalence of the vectorized (dictionary-id) kernels against the
// legacy row-at-a-time operators, at two levels: the sparql set algebra
// directly (random operand sets, exact row-order identity), and the full
// distributed processor (five query classes; result rows, plan notes and
// per-category traffic must be byte-identical with ExecutionPolicy::
// vectorized on and off, including under a faulted/retry batch). The
// toggle is a pure execution detail — if any observable diverges, one of
// the kernels is wrong.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dqp/processor.hpp"
#include "fault/harness.hpp"
#include "sparql/columnar.hpp"
#include "sparql/eval.hpp"
#include "workload/testbed.hpp"

namespace ahsw::sparql {
namespace {

using rdf::Term;

Term pool_term(common::Rng& rng) {
  switch (rng.below(4)) {
    case 0: return Term::iri("http://t/" + std::to_string(rng.below(8)));
    case 1: return Term::literal("v" + std::to_string(rng.below(8)));
    case 2: return Term::integer(static_cast<long long>(rng.below(8)));
    default: return Term::lang_literal("w" + std::to_string(rng.below(4)),
                                       "en");
  }
}

/// Random set over a small shared var/term pool so joins hit, OPTIONAL
/// rows sometimes miss shared vars, and duplicates occur.
SolutionSet random_set(common::Rng& rng) {
  static const char* kVars[] = {"a", "b", "x", "y"};
  SolutionSet s;
  std::size_t rows = rng.below(12);
  for (std::size_t r = 0; r < rows; ++r) {
    Binding row;
    for (const char* v : kVars) {
      if (rng.chance(0.55)) row.set(v, pool_term(rng));
    }
    s.add(std::move(row));
  }
  return s;
}

TEST(VectorizedKernels, JoinMatchesLegacyRowForRow) {
  common::Rng rng(101);
  for (int trial = 0; trial < 60; ++trial) {
    SolutionSet a = random_set(rng);
    SolutionSet b = random_set(rng);
    EXPECT_EQ(join(a, b, true).rows(), join(a, b, false).rows())
        << "trial " << trial;
  }
}

TEST(VectorizedKernels, MinusAndLeftJoinMatchLegacy) {
  common::Rng rng(102);
  for (int trial = 0; trial < 60; ++trial) {
    SolutionSet a = random_set(rng);
    SolutionSet b = random_set(rng);
    EXPECT_EQ(minus(a, b, true).rows(), minus(a, b, false).rows())
        << "trial " << trial;
    EXPECT_EQ(left_join(a, b, true).rows(), left_join(a, b, false).rows())
        << "trial " << trial;
  }
}

TEST(VectorizedKernels, ConditionedLeftJoinMatchesLegacy) {
  common::Rng rng(103);
  // ?x > 3 exercises the memoized condition path including type errors
  // (non-numeric terms evaluate to the SPARQL error value -> false).
  ExprPtr cond = Expr::binary(ExprKind::kGt, Expr::variable("x"),
                              Expr::constant_term(Term::integer(3)));
  for (int trial = 0; trial < 60; ++trial) {
    SolutionSet a = random_set(rng);
    SolutionSet b = random_set(rng);
    EXPECT_EQ(left_join_conditioned(a, b, cond, true).rows(),
              left_join_conditioned(a, b, cond, false).rows())
        << "trial " << trial;
    EXPECT_EQ(left_join_conditioned(a, b, nullptr, true).rows(),
              left_join_conditioned(a, b, nullptr, false).rows())
        << "trial " << trial;
  }
}

TEST(VectorizedKernels, FilterAndDistinctMatchLegacy) {
  common::Rng rng(104);
  ExprPtr bound_y = Expr::bound("y");
  ExprPtr cond = Expr::binary(ExprKind::kOr, bound_y,
                              Expr::binary(ExprKind::kEq, Expr::variable("a"),
                                           Expr::variable("b")));
  for (int trial = 0; trial < 60; ++trial) {
    SolutionSet s = random_set(rng);
    EXPECT_EQ(filter_set(s, *cond, true).rows(),
              filter_set(s, *cond, false).rows())
        << "trial " << trial;
    EXPECT_EQ(deduplicated(s, true).rows(), deduplicated(s, false).rows())
        << "trial " << trial;
  }
}

TEST(VectorizedKernels, EmptyAndEmptyBindingEdgeCases) {
  SolutionSet empty;
  SolutionSet one_empty_row;
  one_empty_row.add(Binding{});
  for (const SolutionSet* a : {&empty, &one_empty_row}) {
    for (const SolutionSet* b : {&empty, &one_empty_row}) {
      EXPECT_EQ(join(*a, *b, true).rows(), join(*a, *b, false).rows());
      EXPECT_EQ(left_join(*a, *b, true).rows(),
                left_join(*a, *b, false).rows());
      EXPECT_EQ(minus(*a, *b, true).rows(), minus(*a, *b, false).rows());
    }
    EXPECT_EQ(deduplicated(*a, true).rows(), deduplicated(*a, false).rows());
  }
}

}  // namespace
}  // namespace ahsw::sparql

namespace ahsw::dqp {
namespace {

constexpr std::string_view kPrologue =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "PREFIX ns: <http://example.org/ns#>\n";

workload::TestbedConfig config() {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 5;
  cfg.storage_nodes = 6;
  cfg.foaf.persons = 60;
  cfg.foaf.seed = 91;
  cfg.partition.overlap = 0.25;
  cfg.partition.seed = 92;
  cfg.overlay.seed = 93;
  return cfg;
}

void expect_traffic_eq(const net::TrafficStats& a, const net::TrafficStats& b,
                       const std::string& what) {
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.bytes, b.bytes) << what;
  EXPECT_EQ(a.raw_bytes, b.raw_bytes) << what;
  EXPECT_EQ(a.timeouts, b.timeouts) << what;
  for (int c = 0; c < net::kCategoryCount; ++c) {
    EXPECT_EQ(a.messages_by[c], b.messages_by[c]) << what << " category " << c;
    EXPECT_EQ(a.bytes_by[c], b.bytes_by[c]) << what << " category " << c;
    EXPECT_EQ(a.timeouts_by[c], b.timeouts_by[c]) << what << " category " << c;
  }
}

struct Outcome {
  sparql::QueryResult result;
  ExecutionReport rep;
  net::TrafficStats delta;
};

/// Run one query on a fresh identical testbed with the toggle set. Fresh
/// beds per arm: execution mutates index state (lazy repairs), and the A/B
/// must cover that mutation order too.
Outcome run_arm(bool vectorized, ExecutionEngine engine,
                const std::string& query, bool kill_provider) {
  workload::Testbed bed(config());
  ExecutionPolicy policy;
  policy.vectorized = vectorized;
  policy.engine = engine;
  DistributedQueryProcessor proc(bed.overlay(), policy);
  if (kill_provider) {
    bed.overlay().storage_node_fail(bed.storage_addrs()[2]);
  }
  Outcome out;
  const net::TrafficStats before = bed.network().stats();
  out.result = proc.execute(query, bed.storage_addrs().front(), &out.rep);
  out.delta = bed.network().stats().delta_since(before);
  return out;
}

void expect_toggle_invisible(const std::string& body,
                             bool kill_provider = false) {
  std::string query = std::string(kPrologue) + body;
  for (ExecutionEngine engine :
       {ExecutionEngine::kDag, ExecutionEngine::kLegacy}) {
    Outcome vec = run_arm(true, engine, query, kill_provider);
    Outcome row = run_arm(false, engine, query, kill_provider);
    EXPECT_EQ(vec.result.solutions.rows(), row.result.solutions.rows())
        << query;
    EXPECT_EQ(vec.result.graph, row.result.graph) << query;
    EXPECT_EQ(vec.result.ask_answer, row.result.ask_answer) << query;
    EXPECT_EQ(vec.rep.plan_notes, row.rep.plan_notes) << query;
    EXPECT_EQ(vec.rep.response_time, row.rep.response_time) << query;
    EXPECT_EQ(vec.rep.complete, row.rep.complete) << query;
    expect_traffic_eq(vec.rep.traffic, row.rep.traffic, query);
    expect_traffic_eq(vec.delta, row.delta, query + " (network delta)");
  }
}

// One query per plan class whose physical operators the toggle touches:
// primitive scan, conjunctive join chain, OPTIONAL (conditioned left
// join), UNION + merge dedup, FILTER.
const char* kQueryClasses[] = {
    "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }",
    "SELECT ?x ?n ?o WHERE { ?x foaf:name ?n . ?x foaf:knows ?o . "
    "?o foaf:nick ?k . }",
    "SELECT ?x ?y ?n WHERE { ?x foaf:knows ?y . "
    "OPTIONAL { ?y foaf:nick ?n . } }",
    "SELECT ?x WHERE { { ?x foaf:nick ?n . } UNION { ?x foaf:mbox ?m . } }",
    "SELECT ?x ?n WHERE { ?x foaf:name ?n . FILTER regex(?n, \"a\") }",
};

class VectorizedToggle : public ::testing::TestWithParam<const char*> {};

TEST_P(VectorizedToggle, InvisibleOnHealthySystem) {
  expect_toggle_invisible(GetParam());
}

TEST_P(VectorizedToggle, InvisibleWithDeadProvider) {
  expect_toggle_invisible(GetParam(), /*kill_provider=*/true);
}

INSTANTIATE_TEST_SUITE_P(QueryClasses, VectorizedToggle,
                         ::testing::ValuesIn(kQueryClasses));

/// Faulted batch with retries: mid-batch provider failure, repair,
/// recovery. The retry/relookup paths re-ship carried solution sets, so
/// they exercise the vectorized merge + re-charging code.
TEST(VectorizedToggle, InvisibleUnderFaultedRetryBatch) {
  const char* bodies[] = {
      "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }",
      "SELECT ?x ?n WHERE { ?x foaf:name ?n . }",
      "ASK { ?x foaf:knows ?y . }",
      "SELECT ?x WHERE { ?x foaf:nick ?k . }",
  };
  auto run = [&](bool vectorized) {
    workload::Testbed bed(config());
    ExecutionPolicy policy;
    policy.vectorized = vectorized;
    policy.retry.max_retries = 1;
    policy.retry.relookup = true;
    DistributedQueryProcessor proc(bed.overlay(), policy);
    std::vector<BatchQuery> batch;
    for (std::size_t i = 0; i < std::size(bodies); ++i) {
      batch.push_back(
          BatchQuery{sparql::parse_query(std::string(kPrologue) + bodies[i]),
                     bed.storage_addrs()[i % bed.storage_addrs().size()]});
    }
    const net::NodeAddress victim = bed.storage_addrs()[4];
    fault::FaultSchedule schedule;
    schedule.storage_fail(4.0, victim)
        .repair(500.0)
        .recover(600.0, victim)
        .rejoin(650.0, victim);
    struct {
      fault::FaultRunResult run;
      net::TrafficStats delta;
    } out;
    const net::TrafficStats before = bed.network().stats();
    out.run = fault::run_with_faults(proc, bed.overlay(), batch, schedule,
                                     BatchOptions{});
    out.delta = bed.network().stats().delta_since(before);
    return out;
  };
  auto vec = run(true);
  auto row = run(false);
  ASSERT_EQ(vec.run.batch.results.size(), row.run.batch.results.size());
  int retries = 0;
  for (std::size_t i = 0; i < vec.run.batch.results.size(); ++i) {
    EXPECT_EQ(vec.run.batch.results[i].solutions.rows(),
              row.run.batch.results[i].solutions.rows())
        << i;
    EXPECT_EQ(vec.run.batch.reports[i].plan_notes,
              row.run.batch.reports[i].plan_notes)
        << i;
    expect_traffic_eq(vec.run.batch.reports[i].traffic,
                      row.run.batch.reports[i].traffic,
                      "query " + std::to_string(i));
    retries += row.run.batch.reports[i].retries +
               row.run.batch.reports[i].dead_providers_skipped;
  }
  EXPECT_GT(retries, 0) << "fault did not bite; the variant pins nothing";
  EXPECT_EQ(vec.run.batch.makespan, row.run.batch.makespan);
  expect_traffic_eq(vec.delta, row.delta, "faulted batch delta");
}

}  // namespace
}  // namespace ahsw::dqp
