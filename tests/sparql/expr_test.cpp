#include "sparql/expr.hpp"

#include <gtest/gtest.h>

namespace ahsw::sparql {
namespace {

using rdf::Term;

Binding person_binding() {
  Binding b;
  b.set("name", Term::literal("John Smith"));
  b.set("age", Term::integer(30));
  b.set("home", Term::iri("http://example.org/home"));
  b.set("node", Term::blank("b0"));
  b.set("greet", Term::lang_literal("hello", "en"));
  return b;
}

ExprPtr lit(const std::string& s) {
  return Expr::constant_term(Term::literal(s));
}
ExprPtr num(long long v) { return Expr::constant_term(Term::integer(v)); }

TEST(Expr, VariableLookup) {
  ExprValue v = evaluate(*Expr::variable("age"), person_binding());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, Term::integer(30));
}

TEST(Expr, UnboundVariableIsError) {
  EXPECT_FALSE(evaluate(*Expr::variable("nope"), person_binding()).has_value());
  EXPECT_FALSE(satisfies(*Expr::variable("nope"), person_binding()));
}

TEST(Expr, RegexMatchesSubstring) {
  ExprPtr e = Expr::regex(Expr::variable("name"), lit("Smith"));
  EXPECT_TRUE(satisfies(*e, person_binding()));
  EXPECT_FALSE(
      satisfies(*Expr::regex(Expr::variable("name"), lit("Jones")),
                person_binding()));
}

TEST(Expr, RegexCaseInsensitiveFlag) {
  ExprPtr no_flag = Expr::regex(Expr::variable("name"), lit("smith"));
  ExprPtr with_flag =
      Expr::regex(Expr::variable("name"), lit("smith"), lit("i"));
  EXPECT_FALSE(satisfies(*no_flag, person_binding()));
  EXPECT_TRUE(satisfies(*with_flag, person_binding()));
}

TEST(Expr, RegexAnchorsAndClasses) {
  ExprPtr e = Expr::regex(Expr::variable("name"), lit("^John\\s+S"));
  EXPECT_TRUE(satisfies(*e, person_binding()));
}

TEST(Expr, RegexOnNonLiteralIsError) {
  ExprPtr e = Expr::regex(Expr::variable("home"), lit("example"));
  EXPECT_FALSE(satisfies(*e, person_binding()));
}

TEST(Expr, InvalidRegexIsErrorNotThrow) {
  ExprPtr e = Expr::regex(Expr::variable("name"), lit("(unclosed"));
  EXPECT_FALSE(satisfies(*e, person_binding()));
}

TEST(Expr, NumericComparisons) {
  Binding b = person_binding();
  EXPECT_TRUE(satisfies(
      *Expr::binary(ExprKind::kGt, Expr::variable("age"), num(18)), b));
  EXPECT_FALSE(satisfies(
      *Expr::binary(ExprKind::kLt, Expr::variable("age"), num(18)), b));
  EXPECT_TRUE(satisfies(
      *Expr::binary(ExprKind::kLe, Expr::variable("age"), num(30)), b));
  EXPECT_TRUE(satisfies(
      *Expr::binary(ExprKind::kGe, Expr::variable("age"), num(30)), b));
}

TEST(Expr, EqualityOnTermsAndNumbers) {
  Binding b = person_binding();
  // Numerically equal across datatypes.
  ExprPtr int_vs_plain = Expr::binary(
      ExprKind::kEq, num(30), Expr::constant_term(Term::literal("30")));
  EXPECT_TRUE(satisfies(*int_vs_plain, b));
  EXPECT_TRUE(satisfies(
      *Expr::binary(ExprKind::kNe, Expr::variable("age"), num(31)), b));
  EXPECT_TRUE(satisfies(
      *Expr::binary(ExprKind::kEq, Expr::variable("home"),
                    Expr::constant_term(Term::iri("http://example.org/home"))),
      b));
}

TEST(Expr, ArithmeticEvaluates) {
  Binding b = person_binding();
  // age * 2 - 10 = 50
  ExprPtr e = Expr::binary(
      ExprKind::kSub,
      Expr::binary(ExprKind::kMul, Expr::variable("age"), num(2)), num(10));
  ExprValue v = evaluate(*e, b);
  ASSERT_TRUE(v.has_value());
  double d = 0;
  ASSERT_TRUE(v->numeric_value(d));
  EXPECT_DOUBLE_EQ(d, 50.0);
}

TEST(Expr, DivisionByZeroIsError) {
  ExprPtr e = Expr::binary(ExprKind::kDiv, num(1), num(0));
  EXPECT_FALSE(evaluate(*e, Binding{}).has_value());
}

TEST(Expr, NegationOfNumber) {
  ExprPtr e = Expr::unary(ExprKind::kNeg, num(5));
  double d = 0;
  ASSERT_TRUE(evaluate(*e, Binding{})->numeric_value(d));
  EXPECT_DOUBLE_EQ(d, -5.0);
}

TEST(Expr, NotFlipsEbv) {
  ExprPtr truthy = lit("nonempty");
  EXPECT_TRUE(satisfies(*truthy, Binding{}));
  EXPECT_FALSE(satisfies(*Expr::unary(ExprKind::kNot, truthy), Binding{}));
}

TEST(Expr, EmptyStringIsFalseEbv) {
  EXPECT_FALSE(satisfies(*lit(""), Binding{}));
}

TEST(Expr, ThreeValuedOr) {
  ExprPtr err = Expr::variable("unbound");
  ExprPtr t = lit("x");
  ExprPtr f = lit("");
  // true || error = true
  EXPECT_TRUE(satisfies(*Expr::binary(ExprKind::kOr, t, err), Binding{}));
  EXPECT_TRUE(satisfies(*Expr::binary(ExprKind::kOr, err, t), Binding{}));
  // false || error = error -> filter false
  EXPECT_FALSE(satisfies(*Expr::binary(ExprKind::kOr, f, err), Binding{}));
}

TEST(Expr, ThreeValuedAnd) {
  ExprPtr err = Expr::variable("unbound");
  ExprPtr t = lit("x");
  ExprPtr f = lit("");
  // false && error = false (not error)
  ExprValue v = evaluate(*Expr::binary(ExprKind::kAnd, f, err), Binding{});
  ASSERT_TRUE(v.has_value());
  EXPECT_FALSE(satisfies(*Expr::binary(ExprKind::kAnd, f, err), Binding{}));
  // true && error = error
  EXPECT_FALSE(evaluate(*Expr::binary(ExprKind::kAnd, t, err), Binding{})
                   .has_value());
}

TEST(Expr, BoundChecksBinding) {
  Binding b = person_binding();
  EXPECT_TRUE(satisfies(*Expr::bound("age"), b));
  EXPECT_FALSE(satisfies(*Expr::bound("missing"), b));
}

TEST(Expr, TypeCheckFunctions) {
  Binding b = person_binding();
  EXPECT_TRUE(satisfies(*Expr::unary(ExprKind::kIsIri, Expr::variable("home")), b));
  EXPECT_FALSE(satisfies(*Expr::unary(ExprKind::kIsIri, Expr::variable("name")), b));
  EXPECT_TRUE(
      satisfies(*Expr::unary(ExprKind::kIsLiteral, Expr::variable("name")), b));
  EXPECT_TRUE(
      satisfies(*Expr::unary(ExprKind::kIsBlank, Expr::variable("node")), b));
  EXPECT_FALSE(
      satisfies(*Expr::unary(ExprKind::kIsBlank, Expr::variable("home")), b));
}

TEST(Expr, StrLangDatatypeAccessors) {
  Binding b = person_binding();
  EXPECT_EQ(*evaluate(*Expr::unary(ExprKind::kStr, Expr::variable("home")), b),
            Term::literal("http://example.org/home"));
  EXPECT_EQ(*evaluate(*Expr::unary(ExprKind::kLang, Expr::variable("greet")), b),
            Term::literal("en"));
  EXPECT_EQ(
      *evaluate(*Expr::unary(ExprKind::kDatatype, Expr::variable("age")), b),
      Term::iri(std::string(rdf::xsd::kInteger)));
  // Plain literal datatype is xsd:string.
  EXPECT_EQ(
      *evaluate(*Expr::unary(ExprKind::kDatatype, Expr::variable("name")), b),
      Term::iri(std::string(rdf::xsd::kString)));
}

TEST(Expr, StrOfBlankIsError) {
  EXPECT_FALSE(
      evaluate(*Expr::unary(ExprKind::kStr, Expr::variable("node")),
               person_binding())
          .has_value());
}

TEST(Expr, ToStringRendersReadably) {
  ExprPtr e = Expr::binary(
      ExprKind::kAnd, Expr::regex(Expr::variable("name"), lit("Smith")),
      Expr::binary(ExprKind::kGt, Expr::variable("age"), num(18)));
  EXPECT_EQ(e->to_string(),
            "(regex(?name, \"Smith\") && (?age > "
            "\"18\"^^<http://www.w3.org/2001/XMLSchema#integer>))");
}

TEST(Expr, VariablesOfWalksWholeTree) {
  ExprPtr e = Expr::binary(
      ExprKind::kOr, Expr::bound("a"),
      Expr::binary(ExprKind::kLt, Expr::variable("b"), Expr::variable("c")));
  std::set<std::string> vars = variables_of(*e);
  EXPECT_EQ(vars, (std::set<std::string>{"a", "b", "c"}));
}

TEST(Expr, ByteSizeIsPositiveAndGrows) {
  ExprPtr small = Expr::variable("x");
  ExprPtr big = Expr::regex(Expr::variable("x"), lit("longpattern"));
  EXPECT_LT(small->byte_size(), big->byte_size());
}

}  // namespace
}  // namespace ahsw::sparql
