// Parser tests, built around the paper's own example queries (Figs. 4-9).
#include <gtest/gtest.h>

#include "sparql/ast.hpp"
#include "sparql/lexer.hpp"

namespace ahsw::sparql {
namespace {

constexpr std::string_view kPrologue =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "PREFIX ns: <http://example.org/ns#>\n";

// Fig. 4 of the paper (ORDER BY moved after the group, per the SPARQL
// grammar; the paper's listing places it inside the braces).
const std::string kFig4 = std::string(kPrologue) + R"(
SELECT ?x ?y ?z
FROM <http://example.org/foaf/xyzFoaf>
WHERE {
  ?x foaf:name ?name .
  ?x foaf:knows ?z .
  ?x ns:knowsNothingAbout ?y .
  ?y foaf:knows ?z .
  FILTER regex(?name, "Smith")
}
ORDER BY DESC(?x)
)";

TEST(Parser, Fig4FullQuery) {
  Query q = parse_query(kFig4);
  EXPECT_EQ(q.form, QueryForm::kSelect);
  EXPECT_EQ(q.select_vars, (std::vector<std::string>{"x", "y", "z"}));
  ASSERT_EQ(q.from.size(), 1u);
  EXPECT_EQ(q.from[0], "http://example.org/foaf/xyzFoaf");
  ASSERT_EQ(q.order_by.size(), 1u);
  EXPECT_FALSE(q.order_by[0].ascending);
  // 4 triple patterns + 1 filter.
  EXPECT_EQ(q.where.elements.size(), 5u);
  int triples = 0, filters = 0;
  for (const GroupElement& el : q.where.elements) {
    triples += el.kind == GroupElement::Kind::kTriple ? 1 : 0;
    filters += el.kind == GroupElement::Kind::kFilter ? 1 : 0;
  }
  EXPECT_EQ(triples, 4);
  EXPECT_EQ(filters, 1);
}

TEST(Parser, Fig4PrefixesExpand) {
  Query q = parse_query(kFig4);
  const GroupElement& first = q.where.elements[0];
  ASSERT_EQ(first.kind, GroupElement::Kind::kTriple);
  const rdf::Term* p = first.triple.bound_p();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->lexical(), "http://xmlns.com/foaf/0.1/name");
}

TEST(Parser, Fig5PrimitiveQuery) {
  Query q = parse_query(std::string(kPrologue) +
                        "SELECT ?x WHERE { ?x foaf:knows ns:me . }");
  ASSERT_EQ(q.where.elements.size(), 1u);
  const rdf::TriplePattern& p = q.where.elements[0].triple;
  EXPECT_NE(rdf::var_of(p.s), nullptr);
  EXPECT_EQ(p.bound_p()->lexical(), "http://xmlns.com/foaf/0.1/knows");
  EXPECT_EQ(p.bound_o()->lexical(), "http://example.org/ns#me");
}

TEST(Parser, Fig6ConjunctionQuery) {
  Query q = parse_query(std::string(kPrologue) + R"(
    SELECT ?x ?y ?z WHERE {
      ?x foaf:knows ?z .
      ?x ns:knowsNothingAbout ?y .
    })");
  EXPECT_EQ(q.where.elements.size(), 2u);
  EXPECT_EQ(q.where.elements[0].kind, GroupElement::Kind::kTriple);
  EXPECT_EQ(q.where.elements[1].kind, GroupElement::Kind::kTriple);
}

TEST(Parser, Fig7OptionalQuery) {
  Query q = parse_query(std::string(kPrologue) + R"(
    SELECT ?x ?y WHERE {
      { ?x foaf:name "Smith" .
        ?x foaf:knows ?y . }
      OPTIONAL { ?y foaf:nick "Shrek" . }
    })");
  ASSERT_EQ(q.where.elements.size(), 2u);
  EXPECT_EQ(q.where.elements[0].kind, GroupElement::Kind::kGroup);
  EXPECT_EQ(q.where.elements[1].kind, GroupElement::Kind::kOptional);
  EXPECT_EQ(q.where.elements[1].groups[0].elements.size(), 1u);
}

TEST(Parser, Fig8UnionQuery) {
  Query q = parse_query(std::string(kPrologue) + R"(
    SELECT ?x ?y ?z WHERE {
      { ?x foaf:mbox <mailto:abc@example.org> .
        ?x foaf:knows ?z . }
      UNION
      { ?x foaf:name "Smith" .
        ?x foaf:knows ?y . }
    })");
  ASSERT_EQ(q.where.elements.size(), 1u);
  EXPECT_EQ(q.where.elements[0].kind, GroupElement::Kind::kUnion);
  EXPECT_EQ(q.where.elements[0].groups.size(), 2u);
}

TEST(Parser, Fig9FilterWithOptional) {
  Query q = parse_query(std::string(kPrologue) + R"(
    SELECT ?x ?y ?z WHERE {
      ?x foaf:name ?name ;
         ns:knowsNothingAbout ?y .
      FILTER regex(?name, "Smith")
      OPTIONAL { ?y foaf:knows ?z . }
    })");
  ASSERT_EQ(q.where.elements.size(), 4u);
  EXPECT_EQ(q.where.elements[0].kind, GroupElement::Kind::kTriple);
  EXPECT_EQ(q.where.elements[1].kind, GroupElement::Kind::kTriple);
  EXPECT_EQ(q.where.elements[2].kind, GroupElement::Kind::kFilter);
  EXPECT_EQ(q.where.elements[3].kind, GroupElement::Kind::kOptional);
  // The semicolon shares the subject ?x.
  const rdf::Variable* s0 = rdf::var_of(q.where.elements[0].triple.s);
  const rdf::Variable* s1 = rdf::var_of(q.where.elements[1].triple.s);
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s0->name, s1->name);
}

TEST(Parser, ObjectListWithComma) {
  Query q = parse_query(std::string(kPrologue) +
                        "SELECT ?x WHERE { ?x foaf:knows ns:a, ns:b . }");
  ASSERT_EQ(q.where.elements.size(), 2u);
  EXPECT_EQ(q.where.elements[0].triple.bound_o()->lexical(),
            "http://example.org/ns#a");
  EXPECT_EQ(q.where.elements[1].triple.bound_o()->lexical(),
            "http://example.org/ns#b");
}

TEST(Parser, RdfTypeShortcutA) {
  Query q = parse_query(std::string(kPrologue) +
                        "SELECT ?x WHERE { ?x a foaf:Person . }");
  EXPECT_EQ(q.where.elements[0].triple.bound_p()->lexical(),
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
}

TEST(Parser, SelectStar) {
  Query q = parse_query("SELECT * WHERE { ?s ?p ?o . }");
  EXPECT_TRUE(q.select_all);
  EXPECT_EQ(q.pattern_variables(),
            (std::vector<std::string>{"o", "p", "s"}));
}

TEST(Parser, SelectDistinctAndModifiers) {
  Query q = parse_query(
      "SELECT DISTINCT ?s WHERE { ?s ?p ?o . } ORDER BY ?s LIMIT 10 OFFSET 5");
  EXPECT_TRUE(q.distinct);
  ASSERT_TRUE(q.limit.has_value());
  EXPECT_EQ(*q.limit, 10u);
  EXPECT_EQ(q.offset, 5u);
  ASSERT_EQ(q.order_by.size(), 1u);
  EXPECT_TRUE(q.order_by[0].ascending);
}

TEST(Parser, SelectReduced) {
  Query q = parse_query("SELECT REDUCED ?s WHERE { ?s ?p ?o . }");
  EXPECT_TRUE(q.reduced);
  EXPECT_FALSE(q.distinct);
}

TEST(Parser, AskQuery) {
  Query q = parse_query("ASK { ?s ?p ?o . }");
  EXPECT_EQ(q.form, QueryForm::kAsk);
  EXPECT_EQ(q.where.elements.size(), 1u);
}

TEST(Parser, ConstructQuery) {
  Query q = parse_query(std::string(kPrologue) + R"(
    CONSTRUCT { ?x foaf:knows ?y . }
    WHERE { ?y foaf:knows ?x . })");
  EXPECT_EQ(q.form, QueryForm::kConstruct);
  ASSERT_EQ(q.construct_template.size(), 1u);
}

TEST(Parser, DescribeWithIriAndVar) {
  Query q = parse_query(std::string(kPrologue) +
                        "DESCRIBE ns:me ?x WHERE { ?x foaf:knows ns:me . }");
  EXPECT_EQ(q.form, QueryForm::kDescribe);
  ASSERT_EQ(q.describe_targets.size(), 2u);
  EXPECT_NE(rdf::term_of(q.describe_targets[0]), nullptr);
  EXPECT_NE(rdf::var_of(q.describe_targets[1]), nullptr);
}

TEST(Parser, FromNamed) {
  Query q = parse_query(
      "SELECT ?s FROM <http://g1> FROM NAMED <http://g2> WHERE { ?s ?p ?o . "
      "}");
  ASSERT_EQ(q.from.size(), 1u);
  ASSERT_EQ(q.from_named.size(), 1u);
  EXPECT_EQ(q.from_named[0], "http://g2");
}

TEST(Parser, NumericAndBooleanObjects) {
  Query q = parse_query(
      "SELECT ?s WHERE { ?s <http://p> 42 . ?s <http://q> 3.5 . "
      "?s <http://r> true . }");
  EXPECT_EQ(*q.where.elements[0].triple.bound_o(), rdf::Term::integer(42));
  EXPECT_EQ(q.where.elements[1].triple.bound_o()->datatype(),
            rdf::xsd::kDouble);
  EXPECT_EQ(q.where.elements[2].triple.bound_o()->datatype(),
            rdf::xsd::kBoolean);
}

TEST(Parser, FilterComparisonAndLogic) {
  Query q = parse_query(
      "SELECT ?s WHERE { ?s <http://age> ?a . "
      "FILTER(?a >= 18 && (?a < 65 || bound(?a))) }");
  ASSERT_EQ(q.where.elements.size(), 2u);
  const ExprPtr& f = q.where.elements[1].filter;
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->kind, ExprKind::kAnd);
}

TEST(Parser, NestedOptionalAndUnion) {
  Query q = parse_query(std::string(kPrologue) + R"(
    SELECT ?x WHERE {
      ?x foaf:knows ?y .
      OPTIONAL {
        ?y foaf:nick ?n .
        OPTIONAL { ?y foaf:mbox ?m . }
      }
    })");
  const GroupElement& opt = q.where.elements[1];
  ASSERT_EQ(opt.kind, GroupElement::Kind::kOptional);
  EXPECT_EQ(opt.groups[0].elements[1].kind, GroupElement::Kind::kOptional);
}

TEST(Parser, ThreeWayUnion) {
  Query q = parse_query(R"(
    SELECT ?x WHERE {
      { ?x <http://a> ?y . } UNION { ?x <http://b> ?y . }
      UNION { ?x <http://c> ?y . }
    })");
  EXPECT_EQ(q.where.elements[0].groups.size(), 3u);
}

TEST(Parser, BlankNodeLabelsAreNonDistinguishedVariables) {
  // SPARQL 4.1.4: _:b in a pattern is a variable scoped to the query, not
  // a concrete blank node; the same label co-references.
  Query q = parse_query(std::string(kPrologue) +
                        "SELECT ?n WHERE { _:p foaf:name ?n . _:p foaf:age "
                        "?a . }");
  const rdf::Variable* s0 = rdf::var_of(q.where.elements[0].triple.s);
  const rdf::Variable* s1 = rdf::var_of(q.where.elements[1].triple.s);
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s0->name, s1->name);
  // Non-distinguished vars do not appear in SELECT * projections.
  EXPECT_EQ(q.pattern_variables(), (std::vector<std::string>{"a", "n"}));
}

TEST(Parser, UndeclaredPrefixThrows) {
  EXPECT_THROW((void)parse_query("SELECT ?x WHERE { ?x nope:p ?y . }"),
               QuerySyntaxError);
}

TEST(Parser, MissingBraceThrows) {
  EXPECT_THROW((void)parse_query("SELECT ?x WHERE { ?x ?p ?y ."),
               QuerySyntaxError);
}

TEST(Parser, MissingProjectionThrows) {
  EXPECT_THROW((void)parse_query("SELECT WHERE { ?x ?p ?y . }"),
               QuerySyntaxError);
}

TEST(Parser, LiteralSubjectThrows) {
  EXPECT_THROW((void)parse_query("SELECT ?x WHERE { \"lit\" ?p ?y . }"),
               QuerySyntaxError);
}

TEST(Parser, TrailingInputThrows) {
  EXPECT_THROW((void)parse_query("ASK { ?s ?p ?o . } garbage"),
               QuerySyntaxError);
}

}  // namespace
}  // namespace ahsw::sparql
