#include "sparql/lexer.hpp"

#include <gtest/gtest.h>

namespace ahsw::sparql {
namespace {

std::vector<TokenKind> kinds(std::string_view q) {
  std::vector<TokenKind> out;
  for (const Token& t : tokenize(q)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEnd) {
  auto toks = tokenize("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kEnd);
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  auto toks = tokenize("select SeLeCt SELECT");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(toks[static_cast<size_t>(i)].kind, TokenKind::kKeyword);
    EXPECT_EQ(toks[static_cast<size_t>(i)].text, "SELECT");
  }
}

TEST(Lexer, IriRef) {
  auto toks = tokenize("<http://example.org/x>");
  EXPECT_EQ(toks[0].kind, TokenKind::kIriRef);
  EXPECT_EQ(toks[0].text, "http://example.org/x");
}

TEST(Lexer, LessThanVersusIri) {
  // '<' followed by whitespace/number is the comparison operator.
  auto toks = tokenize("?a < 5");
  EXPECT_EQ(toks[0].kind, TokenKind::kVar);
  EXPECT_EQ(toks[1].kind, TokenKind::kLt);
  EXPECT_EQ(toks[2].kind, TokenKind::kInteger);
}

TEST(Lexer, LessOrEqual) {
  auto toks = tokenize("?a <= 5");
  EXPECT_EQ(toks[1].kind, TokenKind::kLe);
}

TEST(Lexer, Variables) {
  auto toks = tokenize("?x $y");
  EXPECT_EQ(toks[0].kind, TokenKind::kVar);
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].kind, TokenKind::kVar);
  EXPECT_EQ(toks[1].text, "y");
}

TEST(Lexer, PrefixedNames) {
  auto toks = tokenize("foaf:name :local a");
  EXPECT_EQ(toks[0].kind, TokenKind::kPName);
  EXPECT_EQ(toks[0].text, "foaf:name");
  EXPECT_EQ(toks[1].kind, TokenKind::kPName);
  EXPECT_EQ(toks[1].text, ":local");
  EXPECT_EQ(toks[2].kind, TokenKind::kPName);
  EXPECT_EQ(toks[2].text, "a");
}

TEST(Lexer, StringsWithEscapes) {
  auto toks = tokenize(R"("a\"b" 'single')");
  EXPECT_EQ(toks[0].kind, TokenKind::kString);
  EXPECT_EQ(toks[0].text, "a\"b");
  EXPECT_EQ(toks[1].kind, TokenKind::kString);
  EXPECT_EQ(toks[1].text, "single");
}

TEST(Lexer, LangTagAndDatatype) {
  auto toks = tokenize("\"chat\"@fr \"5\"^^<http://dt>");
  EXPECT_EQ(toks[0].kind, TokenKind::kString);
  EXPECT_EQ(toks[1].kind, TokenKind::kLangTag);
  EXPECT_EQ(toks[1].text, "fr");
  EXPECT_EQ(toks[2].kind, TokenKind::kString);
  EXPECT_EQ(toks[3].kind, TokenKind::kDoubleCaret);
  EXPECT_EQ(toks[4].kind, TokenKind::kIriRef);
}

TEST(Lexer, NumbersIntegerAndDecimal) {
  auto toks = tokenize("42 3.14");
  EXPECT_EQ(toks[0].kind, TokenKind::kInteger);
  EXPECT_EQ(toks[0].text, "42");
  EXPECT_EQ(toks[1].kind, TokenKind::kDecimal);
  EXPECT_EQ(toks[1].text, "3.14");
}

TEST(Lexer, BlankNodeLabel) {
  auto toks = tokenize("_:b1");
  EXPECT_EQ(toks[0].kind, TokenKind::kBlank);
  EXPECT_EQ(toks[0].text, "b1");
}

TEST(Lexer, PunctuationAndOperators) {
  EXPECT_EQ(kinds("{ } ( ) . ; , *"),
            (std::vector<TokenKind>{
                TokenKind::kLBrace, TokenKind::kRBrace, TokenKind::kLParen,
                TokenKind::kRParen, TokenKind::kDot, TokenKind::kSemicolon,
                TokenKind::kComma, TokenKind::kStar, TokenKind::kEnd}));
  EXPECT_EQ(kinds("= != > >= && || ! + - /"),
            (std::vector<TokenKind>{
                TokenKind::kEq, TokenKind::kNe, TokenKind::kGt, TokenKind::kGe,
                TokenKind::kAndAnd, TokenKind::kOrOr, TokenKind::kBang,
                TokenKind::kPlus, TokenKind::kMinus, TokenKind::kSlash,
                TokenKind::kEnd}));
}

TEST(Lexer, CommentsAreSkipped) {
  auto toks = tokenize("?x # the subject\n?y");
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].text, "y");
  EXPECT_EQ(toks[2].kind, TokenKind::kEnd);
}

TEST(Lexer, TracksLineAndColumn) {
  auto toks = tokenize("?a\n  ?b");
  EXPECT_EQ(toks[0].line, 1u);
  EXPECT_EQ(toks[1].line, 2u);
  EXPECT_EQ(toks[1].column, 3u);
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW((void)tokenize("\"open"), QuerySyntaxError);
}

TEST(Lexer, EmptyVariableNameThrows) {
  EXPECT_THROW((void)tokenize("? x"), QuerySyntaxError);
}

TEST(Lexer, StrayAmpersandThrows) {
  EXPECT_THROW((void)tokenize("& b"), QuerySyntaxError);
}

TEST(Lexer, DotTerminatesName) {
  // "ns:p ." must not swallow the dot into the local name.
  auto toks = tokenize("ns:p .");
  EXPECT_EQ(toks[0].kind, TokenKind::kPName);
  EXPECT_EQ(toks[0].text, "ns:p");
  EXPECT_EQ(toks[1].kind, TokenKind::kDot);
}

}  // namespace
}  // namespace ahsw::sparql
