// Local evaluation engine tests over a hand-built FOAF graph shaped after
// the paper's running examples.
#include <gtest/gtest.h>

#include "rdf/store.hpp"
#include "sparql/eval.hpp"

namespace ahsw::sparql {
namespace {

using rdf::Term;
using rdf::Triple;

constexpr std::string_view kPrologue =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "PREFIX ns: <http://example.org/ns#>\n";

Term person(const std::string& n) {
  return Term::iri("http://example.org/people/" + n);
}
Term foaf(const std::string& n) {
  return Term::iri("http://xmlns.com/foaf/0.1/" + n);
}
Term ns(const std::string& n) {
  return Term::iri("http://example.org/ns#" + n);
}

/// alice(Smith) knows carol & shrek; bob(Smith) knows carol;
/// alice knowsNothingAbout bob; bob knowsNothingAbout alice;
/// shrek has nick "Shrek"; dave(Jones) knows carol.
rdf::TripleStore example_graph() {
  rdf::TripleStore s;
  s.insert({person("alice"), foaf("name"), Term::literal("Alice Smith")});
  s.insert({person("bob"), foaf("name"), Term::literal("Bob Smith")});
  s.insert({person("dave"), foaf("name"), Term::literal("Dave Jones")});
  s.insert({person("alice"), foaf("knows"), person("carol")});
  s.insert({person("alice"), foaf("knows"), person("shrek")});
  s.insert({person("bob"), foaf("knows"), person("carol")});
  s.insert({person("dave"), foaf("knows"), person("carol")});
  s.insert({person("alice"), ns("knowsNothingAbout"), person("bob")});
  s.insert({person("bob"), ns("knowsNothingAbout"), person("alice")});
  s.insert({person("shrek"), foaf("nick"), Term::literal("Shrek")});
  s.insert({person("alice"), foaf("age"), Term::integer(33)});
  s.insert({person("bob"), foaf("age"), Term::integer(27)});
  return s;
}

QueryResult run(const std::string& q) {
  rdf::TripleStore store = example_graph();
  return execute_local(parse_query(std::string(kPrologue) + q), store);
}

TEST(LocalEval, PrimitivePattern) {
  // Fig. 5 shape: who knows carol?
  QueryResult r = run("SELECT ?x WHERE { ?x foaf:knows ns:nobody . }");
  EXPECT_TRUE(r.solutions.empty());

  r = run(
      "SELECT ?x WHERE { ?x foaf:knows "
      "<http://example.org/people/carol> . }");
  EXPECT_EQ(r.solutions.size(), 3u);
}

TEST(LocalEval, ConjunctionJoinsOnSharedVariable) {
  // Fig. 6 shape.
  QueryResult r = run(R"(
      SELECT ?x ?y ?z WHERE {
        ?x foaf:knows ?z .
        ?x ns:knowsNothingAbout ?y .
      })");
  // alice: z in {carol, shrek}, y=bob -> 2 rows; bob: z=carol, y=alice -> 1.
  EXPECT_EQ(r.solutions.size(), 3u);
}

TEST(LocalEval, Fig4FourPatternCycleWithFilter) {
  QueryResult r = run(R"(
      SELECT ?x ?y ?z WHERE {
        ?x foaf:name ?name .
        ?x foaf:knows ?z .
        ?x ns:knowsNothingAbout ?y .
        ?y foaf:knows ?z .
        FILTER regex(?name, "Smith")
      } ORDER BY DESC(?x))");
  // alice knows carol, bob knows carol, alice kNA bob -> (alice,bob,carol);
  // bob kNA alice, alice knows carol -> (bob,alice,carol).
  ASSERT_EQ(r.solutions.size(), 2u);
  // DESC(?x): bob sorts before alice.
  EXPECT_EQ(*r.solutions.rows()[0].get("x"), person("bob"));
  EXPECT_EQ(*r.solutions.rows()[1].get("x"), person("alice"));
}

TEST(LocalEval, OptionalKeepsUnmatchedRows) {
  // Fig. 7 shape.
  QueryResult r = run(R"(
      SELECT ?x ?y ?nick WHERE {
        ?x foaf:knows ?y .
        OPTIONAL { ?y foaf:nick ?nick . }
      })");
  ASSERT_EQ(r.solutions.size(), 4u);
  int with_nick = 0;
  for (const Binding& b : r.solutions.rows()) {
    if (b.bound("nick")) {
      ++with_nick;
      EXPECT_EQ(*b.get("y"), person("shrek"));
    }
  }
  EXPECT_EQ(with_nick, 1);
}

TEST(LocalEval, UnionCombinesBranches) {
  // Fig. 8 shape.
  QueryResult r = run(R"(
      SELECT ?x WHERE {
        { ?x foaf:name "Alice Smith" . }
        UNION
        { ?x foaf:nick "Shrek" . }
      })");
  EXPECT_EQ(r.solutions.size(), 2u);
}

TEST(LocalEval, FilterRegexSelectsSmiths) {
  QueryResult r = run(R"(
      SELECT ?x ?name WHERE {
        ?x foaf:name ?name .
        FILTER regex(?name, "Smith")
      })");
  EXPECT_EQ(r.solutions.size(), 2u);
}

TEST(LocalEval, NumericFilter) {
  QueryResult r = run(R"(
      SELECT ?x WHERE {
        ?x foaf:age ?a .
        FILTER(?a > 30)
      })");
  ASSERT_EQ(r.solutions.size(), 1u);
  EXPECT_EQ(*r.solutions.rows()[0].get("x"), person("alice"));
}

TEST(LocalEval, RepeatedVariableInPattern) {
  rdf::TripleStore s;
  s.insert({person("narcissus"), foaf("knows"), person("narcissus")});
  s.insert({person("a"), foaf("knows"), person("b")});
  QueryResult r = execute_local(
      parse_query(std::string(kPrologue) +
                  "SELECT ?x WHERE { ?x foaf:knows ?x . }"),
      s);
  ASSERT_EQ(r.solutions.size(), 1u);
  EXPECT_EQ(*r.solutions.rows()[0].get("x"), person("narcissus"));
}

TEST(LocalEval, BlankNodePatternMatchesAnySubject) {
  // _:p acts as a variable: this finds names of anyone with an age, even
  // though no stored subject is a blank node.
  QueryResult r = run(R"(
      SELECT ?n WHERE { _:p foaf:name ?n . _:p foaf:age ?a . })");
  EXPECT_EQ(r.solutions.size(), 2u);  // alice and bob have ages
  for (const Binding& b : r.solutions.rows()) {
    EXPECT_EQ(b.size(), 1u);  // the blank variable is not projected
  }
}

TEST(LocalEval, AskTrueAndFalse) {
  QueryResult yes = run("ASK { ?x foaf:nick \"Shrek\" . }");
  EXPECT_TRUE(yes.ask_answer);
  QueryResult no = run("ASK { ?x foaf:nick \"Fiona\" . }");
  EXPECT_FALSE(no.ask_answer);
}

TEST(LocalEval, ConstructInstantiatesTemplate) {
  QueryResult r = run(R"(
      CONSTRUCT { ?y <http://example.org/ns#knownBy> ?x . }
      WHERE { ?x foaf:knows ?y . })");
  // (carol,alice), (shrek,alice), (carol,bob), (carol,dave).
  EXPECT_EQ(r.graph.size(), 4u);
  for (const Triple& t : r.graph) {
    EXPECT_EQ(t.p, ns("knownBy"));
  }
}

TEST(LocalEval, ConstructSkipsRowsWithUnboundTemplateVars) {
  QueryResult r = run(R"(
      CONSTRUCT { ?y <http://example.org/ns#hasNick> ?nick . }
      WHERE { ?x foaf:knows ?y . OPTIONAL { ?y foaf:nick ?nick . } })");
  ASSERT_EQ(r.graph.size(), 1u);
  EXPECT_EQ(r.graph[0].s, person("shrek"));
}

TEST(LocalEval, DescribeCollectsSurroundingTriples) {
  QueryResult r = run("DESCRIBE <http://example.org/people/shrek>");
  // shrek appears in: alice knows shrek; shrek nick "Shrek".
  EXPECT_EQ(r.graph.size(), 2u);
}

TEST(LocalEval, DescribeViaVariable) {
  QueryResult r = run(
      "DESCRIBE ?y WHERE { ?x ns:knowsNothingAbout ?y . }");
  // Describes alice and bob: all triples mentioning either.
  EXPECT_GE(r.graph.size(), 8u);
}

TEST(LocalEval, OrderByAscendingNumeric) {
  QueryResult r = run(R"(
      SELECT ?x ?a WHERE { ?x foaf:age ?a . } ORDER BY ?a)");
  ASSERT_EQ(r.solutions.size(), 2u);
  EXPECT_EQ(*r.solutions.rows()[0].get("x"), person("bob"));
}

TEST(LocalEval, LimitAndOffset) {
  QueryResult r = run(R"(
      SELECT ?x WHERE { ?x foaf:knows ?y . } ORDER BY ?x LIMIT 2 OFFSET 1)");
  EXPECT_EQ(r.solutions.size(), 2u);
}

TEST(LocalEval, DistinctCollapsesDuplicates) {
  QueryResult all = run("SELECT ?y WHERE { ?x foaf:knows ?y . }");
  EXPECT_EQ(all.solutions.size(), 4u);
  QueryResult distinct =
      run("SELECT DISTINCT ?y WHERE { ?x foaf:knows ?y . }");
  EXPECT_EQ(distinct.solutions.size(), 2u);  // carol, shrek
}

TEST(LocalEval, ProjectionDropsOtherVars) {
  QueryResult r = run("SELECT ?y WHERE { ?x foaf:knows ?y . }");
  for (const Binding& b : r.solutions.rows()) {
    EXPECT_FALSE(b.bound("x"));
    EXPECT_TRUE(b.bound("y"));
  }
  EXPECT_EQ(r.variables, (std::vector<std::string>{"y"}));
}

TEST(LocalEval, SelectStarKeepsAllVars) {
  QueryResult r = run("SELECT * WHERE { ?x foaf:knows ?y . }");
  EXPECT_EQ(r.variables, (std::vector<std::string>{"x", "y"}));
}

TEST(LocalEval, EmptyWhereYieldsSingleEmptySolution) {
  QueryResult r = run("SELECT * WHERE { }");
  ASSERT_EQ(r.solutions.size(), 1u);
  EXPECT_TRUE(r.solutions.rows()[0].empty());
}

TEST(LocalEval, FilterInsideOptionalOnlyGatesExtension) {
  QueryResult r = run(R"(
      SELECT ?x ?nick WHERE {
        ?x foaf:knows ?y .
        OPTIONAL { ?y foaf:nick ?nick . FILTER regex(?nick, "NOMATCH") }
      })");
  // All 4 rows survive, none extended.
  ASSERT_EQ(r.solutions.size(), 4u);
  for (const Binding& b : r.solutions.rows()) EXPECT_FALSE(b.bound("nick"));
}

TEST(LocalEval, BoundFilterDetectsOptionalMisses) {
  QueryResult r = run(R"(
      SELECT ?y WHERE {
        ?x foaf:knows ?y .
        OPTIONAL { ?y foaf:nick ?nick . }
        FILTER(!bound(?nick))
      })");
  // Rows where y has no nick: the three carol rows.
  EXPECT_EQ(r.solutions.size(), 3u);
}

}  // namespace
}  // namespace ahsw::sparql
