// Query Transformation tests: the paper gives the exact algebra expression
// for each of its example queries (Sect. IV-C..IV-G); these tests check we
// produce the same shapes.
#include <gtest/gtest.h>

#include "sparql/algebra.hpp"

namespace ahsw::sparql {
namespace {

constexpr std::string_view kPrologue =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "PREFIX ns: <http://example.org/ns#>\n";

AlgebraPtr pattern_of(const std::string& q) {
  return translate_pattern(parse_query(q).where);
}

TEST(Translate, Fig5PrimitiveBecomesSingletonBgp) {
  AlgebraPtr a = pattern_of(std::string(kPrologue) +
                            "SELECT ?x WHERE { ?x foaf:knows ns:me . }");
  EXPECT_EQ(a->to_string(),
            "BGP(?x <http://xmlns.com/foaf/0.1/knows> "
            "<http://example.org/ns#me>)");
}

TEST(Translate, Fig6ConjunctionFusesIntoOneBgp) {
  // BGP(P1 . P2), not Join(BGP(P1), BGP(P2)).
  AlgebraPtr a = pattern_of(std::string(kPrologue) + R"(
      SELECT ?x ?y ?z WHERE {
        ?x foaf:knows ?z .
        ?x ns:knowsNothingAbout ?y .
      })");
  EXPECT_EQ(a->kind, AlgebraKind::kBgp);
  EXPECT_EQ(a->bgp.size(), 2u);
  EXPECT_EQ(a->to_string(),
            "BGP(?x <http://xmlns.com/foaf/0.1/knows> ?z . "
            "?x <http://example.org/ns#knowsNothingAbout> ?y)");
}

TEST(Translate, Fig7OptionalBecomesLeftJoinTrue) {
  AlgebraPtr a = pattern_of(std::string(kPrologue) + R"(
      SELECT ?x ?y WHERE {
        { ?x foaf:name "Smith" .
          ?x foaf:knows ?y . }
        OPTIONAL { ?y foaf:nick "Shrek" . }
      })");
  ASSERT_EQ(a->kind, AlgebraKind::kLeftJoin);
  EXPECT_EQ(a->expr, nullptr);  // prints as `true`
  EXPECT_EQ(a->left->kind, AlgebraKind::kBgp);
  EXPECT_EQ(a->left->bgp.size(), 2u);
  EXPECT_EQ(a->right->kind, AlgebraKind::kBgp);
  EXPECT_EQ(a->right->bgp.size(), 1u);
  EXPECT_EQ(a->to_string(),
            "LeftJoin("
            "BGP(?x <http://xmlns.com/foaf/0.1/name> \"Smith\" . "
            "?x <http://xmlns.com/foaf/0.1/knows> ?y), "
            "BGP(?y <http://xmlns.com/foaf/0.1/nick> \"Shrek\"), true)");
}

TEST(Translate, Fig8UnionOfTwoBgps) {
  AlgebraPtr a = pattern_of(std::string(kPrologue) + R"(
      SELECT ?x ?y ?z WHERE {
        { ?x foaf:name "Smith" .
          ?x foaf:knows ?y . }
        UNION
        { ?x foaf:mbox <mailto:abc@example.org> .
          ?x foaf:knows ?z . }
      })");
  ASSERT_EQ(a->kind, AlgebraKind::kUnion);
  EXPECT_EQ(a->left->kind, AlgebraKind::kBgp);
  EXPECT_EQ(a->right->kind, AlgebraKind::kBgp);
}

TEST(Translate, Fig9FilterOverLeftJoin) {
  // Filter(C1, LeftJoin(BGP(P1 . P2), BGP(P3), true)).
  AlgebraPtr a = pattern_of(std::string(kPrologue) + R"(
      SELECT ?x ?y ?z WHERE {
        ?x foaf:name ?name ;
           ns:knowsNothingAbout ?y .
        FILTER regex(?name, "Smith")
        OPTIONAL { ?y foaf:knows ?z . }
      })");
  ASSERT_EQ(a->kind, AlgebraKind::kFilter);
  EXPECT_EQ(a->expr->to_string(), "regex(?name, \"Smith\")");
  ASSERT_EQ(a->left->kind, AlgebraKind::kLeftJoin);
  EXPECT_EQ(a->left->left->kind, AlgebraKind::kBgp);
  EXPECT_EQ(a->left->left->bgp.size(), 2u);
  EXPECT_EQ(a->left->right->bgp.size(), 1u);
}

TEST(Translate, FilterInsideOptionalBecomesLeftJoinCondition) {
  // W3C rule: OPTIONAL { P FILTER F } -> LeftJoin(G, P, F).
  AlgebraPtr a = pattern_of(std::string(kPrologue) + R"(
      SELECT ?x WHERE {
        ?x foaf:knows ?y .
        OPTIONAL { ?y foaf:nick ?n . FILTER regex(?n, "ogre") }
      })");
  ASSERT_EQ(a->kind, AlgebraKind::kLeftJoin);
  ASSERT_NE(a->expr, nullptr);
  EXPECT_EQ(a->expr->to_string(), "regex(?n, \"ogre\")");
  EXPECT_EQ(a->right->kind, AlgebraKind::kBgp);
}

TEST(Translate, TwoOptionalsNestLeftAssociative) {
  AlgebraPtr a = pattern_of(std::string(kPrologue) + R"(
      SELECT ?x WHERE {
        ?x foaf:knows ?y .
        OPTIONAL { ?y foaf:nick ?n . }
        OPTIONAL { ?y foaf:mbox ?m . }
      })");
  // (P1 OPT P2) OPT P3.
  ASSERT_EQ(a->kind, AlgebraKind::kLeftJoin);
  ASSERT_EQ(a->left->kind, AlgebraKind::kLeftJoin);
  EXPECT_EQ(a->left->left->kind, AlgebraKind::kBgp);
}

TEST(Translate, UnionThenTripleJoins) {
  AlgebraPtr a = pattern_of(R"(
      SELECT ?x WHERE {
        { ?x <http://a> ?y . } UNION { ?x <http://b> ?y . }
        ?x <http://c> ?z .
      })");
  ASSERT_EQ(a->kind, AlgebraKind::kJoin);
  EXPECT_EQ(a->left->kind, AlgebraKind::kUnion);
  EXPECT_EQ(a->right->kind, AlgebraKind::kBgp);
}

TEST(Translate, MultipleFiltersConjoin) {
  AlgebraPtr a = pattern_of(R"(
      SELECT ?x WHERE {
        ?x <http://age> ?a .
        FILTER(?a > 10)
        FILTER(?a < 20)
      })");
  ASSERT_EQ(a->kind, AlgebraKind::kFilter);
  EXPECT_EQ(a->expr->kind, ExprKind::kAnd);
  EXPECT_EQ(a->left->kind, AlgebraKind::kBgp);
}

TEST(Translate, FullQueryAddsModifiers) {
  AlgebraPtr a = translate(parse_query(
      "SELECT DISTINCT ?s WHERE { ?s ?p ?o . } ORDER BY ?s LIMIT 3"));
  // Slice(Distinct(Project(OrderBy(BGP)))).
  ASSERT_EQ(a->kind, AlgebraKind::kSlice);
  ASSERT_EQ(a->left->kind, AlgebraKind::kDistinct);
  ASSERT_EQ(a->left->left->kind, AlgebraKind::kProject);
  ASSERT_EQ(a->left->left->left->kind, AlgebraKind::kOrderBy);
  EXPECT_EQ(a->left->left->left->left->kind, AlgebraKind::kBgp);
}

TEST(Algebra, CertainVariablesBgpAndJoin) {
  AlgebraPtr a = pattern_of(R"(
      SELECT ?x WHERE { ?x <http://p> ?y . ?y <http://q> ?z . })");
  EXPECT_EQ(a->certain_variables(),
            (std::set<std::string>{"x", "y", "z"}));
}

TEST(Algebra, CertainVariablesExcludeOptionalSide) {
  AlgebraPtr a = pattern_of(R"(
      SELECT ?x WHERE {
        ?x <http://p> ?y .
        OPTIONAL { ?y <http://q> ?z . }
      })");
  EXPECT_EQ(a->certain_variables(), (std::set<std::string>{"x", "y"}));
  EXPECT_EQ(a->all_variables(), (std::set<std::string>{"x", "y", "z"}));
}

TEST(Algebra, CertainVariablesUnionIsIntersection) {
  AlgebraPtr a = pattern_of(R"(
      SELECT ?x WHERE {
        { ?x <http://a> ?y . } UNION { ?x <http://b> ?z . }
      })");
  EXPECT_EQ(a->certain_variables(), (std::set<std::string>{"x"}));
  EXPECT_EQ(a->all_variables(), (std::set<std::string>{"x", "y", "z"}));
}

TEST(Algebra, EmptyGroupIsEmptyBgp) {
  AlgebraPtr a = pattern_of("SELECT * WHERE { }");
  EXPECT_EQ(a->kind, AlgebraKind::kBgp);
  EXPECT_TRUE(a->bgp.empty());
  EXPECT_EQ(a->to_string(), "BGP()");
}

TEST(Algebra, SliceToStringShowsOffsetAndLimit) {
  AlgebraPtr a = Algebra::make_slice(
      5, 10, Algebra::make_bgp({}));
  EXPECT_EQ(a->to_string(), "Slice(5, 10, BGP())");
  AlgebraPtr b = Algebra::make_slice(0, std::nullopt, Algebra::make_bgp({}));
  EXPECT_EQ(b->to_string(), "Slice(0, *, BGP())");
}

}  // namespace
}  // namespace ahsw::sparql
