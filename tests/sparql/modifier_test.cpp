// Solution sequence modifier edge cases (Sect. IV-A lists them as one of
// the four building blocks): ORDER BY with multiple keys, OFFSET past the
// end, LIMIT 0, REDUCED, interaction of DISTINCT with ORDER BY.
#include <gtest/gtest.h>

#include "rdf/store.hpp"
#include "sparql/eval.hpp"

namespace ahsw::sparql {
namespace {

using rdf::Term;

rdf::TripleStore people() {
  rdf::TripleStore s;
  auto add = [&](const std::string& who, int age, const std::string& team) {
    Term p = Term::iri("http://people/" + who);
    s.insert({p, Term::iri("http://age"), Term::integer(age)});
    s.insert({p, Term::iri("http://team"), Term::literal(team)});
  };
  add("ann", 30, "red");
  add("bob", 25, "red");
  add("cid", 30, "blue");
  add("dee", 25, "blue");
  return s;
}

QueryResult run(const std::string& q) {
  rdf::TripleStore store = people();
  return execute_local(parse_query(q), store);
}

TEST(Modifiers, MultiKeyOrderBy) {
  QueryResult r = run(
      "SELECT ?x ?a ?t WHERE { ?x <http://age> ?a . ?x <http://team> ?t . } "
      "ORDER BY ?t DESC(?a)");
  ASSERT_EQ(r.solutions.size(), 4u);
  // blue before red (asc team); within team, age descending.
  EXPECT_EQ(*r.solutions.rows()[0].get("x"), Term::iri("http://people/cid"));
  EXPECT_EQ(*r.solutions.rows()[1].get("x"), Term::iri("http://people/dee"));
  EXPECT_EQ(*r.solutions.rows()[2].get("x"), Term::iri("http://people/ann"));
  EXPECT_EQ(*r.solutions.rows()[3].get("x"), Term::iri("http://people/bob"));
}

TEST(Modifiers, OrderByIsStableForTies) {
  QueryResult a = run(
      "SELECT ?x WHERE { ?x <http://age> ?a . } ORDER BY ?a");
  QueryResult b = run(
      "SELECT ?x WHERE { ?x <http://age> ?a . } ORDER BY ?a");
  EXPECT_EQ(a.solutions.rows(), b.solutions.rows());
}

TEST(Modifiers, OffsetPastEndYieldsEmpty) {
  QueryResult r =
      run("SELECT ?x WHERE { ?x <http://age> ?a . } ORDER BY ?x OFFSET 99");
  EXPECT_TRUE(r.solutions.empty());
}

TEST(Modifiers, LimitZeroYieldsEmpty) {
  QueryResult r =
      run("SELECT ?x WHERE { ?x <http://age> ?a . } LIMIT 0");
  EXPECT_TRUE(r.solutions.empty());
}

TEST(Modifiers, LimitLargerThanResultIsHarmless) {
  QueryResult r =
      run("SELECT ?x WHERE { ?x <http://age> ?a . } LIMIT 1000");
  EXPECT_EQ(r.solutions.size(), 4u);
}

TEST(Modifiers, OffsetAndLimitCombine) {
  QueryResult r = run(
      "SELECT ?x WHERE { ?x <http://age> ?a . } ORDER BY ?x OFFSET 1 LIMIT "
      "2");
  ASSERT_EQ(r.solutions.size(), 2u);
  EXPECT_EQ(*r.solutions.rows()[0].get("x"), Term::iri("http://people/bob"));
  EXPECT_EQ(*r.solutions.rows()[1].get("x"), Term::iri("http://people/cid"));
}

TEST(Modifiers, DistinctAfterProjection) {
  // Projection to ?a makes rows collide; DISTINCT collapses them.
  QueryResult all = run("SELECT ?a WHERE { ?x <http://age> ?a . }");
  EXPECT_EQ(all.solutions.size(), 4u);
  QueryResult distinct =
      run("SELECT DISTINCT ?a WHERE { ?x <http://age> ?a . }");
  EXPECT_EQ(distinct.solutions.size(), 2u);
}

TEST(Modifiers, DistinctPreservesOrderBy) {
  QueryResult r = run(
      "SELECT DISTINCT ?a WHERE { ?x <http://age> ?a . } ORDER BY DESC(?a)");
  ASSERT_EQ(r.solutions.size(), 2u);
  double first = 0, second = 0;
  ASSERT_TRUE(r.solutions.rows()[0].get("a")->numeric_value(first));
  ASSERT_TRUE(r.solutions.rows()[1].get("a")->numeric_value(second));
  EXPECT_GT(first, second);
}

TEST(Modifiers, ReducedCollapsesAdjacentDuplicatesOnly) {
  // After normalization (no ORDER BY), duplicates are adjacent, so REDUCED
  // behaves like DISTINCT here; the test pins that behavior down.
  QueryResult r = run("SELECT REDUCED ?a WHERE { ?x <http://age> ?a . }");
  EXPECT_EQ(r.solutions.size(), 2u);
}

TEST(Modifiers, OrderByUnboundSortsFirst) {
  QueryResult r = run(
      "SELECT ?x ?n WHERE { ?x <http://age> ?a . "
      "OPTIONAL { ?x <http://nick> ?n . } } ORDER BY ?n ?x");
  ASSERT_EQ(r.solutions.size(), 4u);  // nobody has a nick: all unbound, tie
}

}  // namespace
}  // namespace ahsw::sparql
