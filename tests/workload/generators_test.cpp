#include "workload/generators.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sparql/ast.hpp"
#include "workload/queries.hpp"
#include "workload/testbed.hpp"
#include "workload/vocab.hpp"

namespace ahsw::workload {
namespace {

TEST(FoafGenerator, DeterministicForSameSeed) {
  FoafConfig cfg;
  cfg.persons = 30;
  EXPECT_EQ(generate_foaf(cfg), generate_foaf(cfg));
}

TEST(FoafGenerator, DifferentSeedsDiffer) {
  FoafConfig a, b;
  a.persons = b.persons = 30;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(generate_foaf(a), generate_foaf(b));
}

TEST(FoafGenerator, EveryPersonHasNameAndAge) {
  FoafConfig cfg;
  cfg.persons = 40;
  std::vector<rdf::Triple> data = generate_foaf(cfg);
  std::set<std::string> with_name, with_age;
  for (const rdf::Triple& t : data) {
    if (t.p.lexical() == foaf::kName) with_name.insert(t.s.lexical());
    if (t.p.lexical() == foaf::kAge) with_age.insert(t.s.lexical());
  }
  EXPECT_EQ(with_name.size(), 40u);
  EXPECT_EQ(with_age.size(), 40u);
}

TEST(FoafGenerator, KnowsEdgesRoughlyMatchConfig) {
  FoafConfig cfg;
  cfg.persons = 200;
  cfg.knows_per_person = 3.0;
  std::size_t knows = 0;
  for (const rdf::Triple& t : generate_foaf(cfg)) {
    if (t.p.lexical() == foaf::kKnows) ++knows;
  }
  // Self-edges are dropped, so slightly fewer than persons * 3.
  EXPECT_GT(knows, 200u * 2);
  EXPECT_LE(knows, 200u * 3);
}

TEST(FoafGenerator, PopularitySkewConcentratesInDegree) {
  FoafConfig cfg;
  cfg.persons = 200;
  cfg.popularity_skew = 1.2;
  cfg.knows_per_person = 4.0;
  std::map<std::string, int> indegree;
  for (const rdf::Triple& t : generate_foaf(cfg)) {
    if (t.p.lexical() == foaf::kKnows) ++indegree[t.o.lexical()];
  }
  int p0 = indegree["http://example.org/people/p0"];
  int total = 0;
  for (const auto& [k, v] : indegree) total += v;
  EXPECT_GT(p0, total / 20);  // the top person collects >5% of edges
}

TEST(FoafGenerator, ZeroPersonsIsEmpty) {
  FoafConfig cfg;
  cfg.persons = 0;
  EXPECT_TRUE(generate_foaf(cfg).empty());
}

TEST(SensorGenerator, ObservationCountsMatchConfig) {
  SensorConfig cfg;
  cfg.sensors = 5;
  cfg.observations_per_sensor = 7;
  std::vector<rdf::Triple> data = generate_sensors(cfg);
  std::size_t observed_by = 0, located = 0;
  for (const rdf::Triple& t : data) {
    if (t.p.lexical() == sensor::kObservedBy) ++observed_by;
    if (t.p.lexical() == sensor::kLocatedIn) ++located;
  }
  EXPECT_EQ(observed_by, 35u);
  EXPECT_EQ(located, 5u);
}

TEST(SensorGenerator, ValuesAreNumeric) {
  SensorConfig cfg;
  cfg.sensors = 3;
  for (const rdf::Triple& t : generate_sensors(cfg)) {
    if (t.p.lexical() == sensor::kValue) {
      double v = 0;
      EXPECT_TRUE(t.o.numeric_value(v));
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 100.0);
    }
  }
}

TEST(Partition, EveryTripleAssignedAtLeastOnce) {
  FoafConfig fc;
  fc.persons = 50;
  std::vector<rdf::Triple> data = generate_foaf(fc);
  PartitionConfig pc;
  pc.nodes = 7;
  pc.overlap = 0.0;
  auto shares = partition(data, pc);
  ASSERT_EQ(shares.size(), 7u);
  std::size_t total = 0;
  for (const auto& s : shares) total += s.size();
  EXPECT_EQ(total, data.size());
}

TEST(Partition, OverlapDuplicatesSomeTriples) {
  FoafConfig fc;
  fc.persons = 100;
  std::vector<rdf::Triple> data = generate_foaf(fc);
  PartitionConfig pc;
  pc.nodes = 5;
  pc.overlap = 0.5;
  auto shares = partition(data, pc);
  std::size_t total = 0;
  for (const auto& s : shares) total += s.size();
  EXPECT_GT(total, data.size() + data.size() / 4);
  EXPECT_LE(total, 2 * data.size());
}

TEST(Partition, NodeSkewImbalancesShares) {
  FoafConfig fc;
  fc.persons = 150;
  std::vector<rdf::Triple> data = generate_foaf(fc);
  PartitionConfig pc;
  pc.nodes = 6;
  pc.node_skew = 1.2;
  auto shares = partition(data, pc);
  std::size_t biggest = 0, smallest = data.size();
  for (const auto& s : shares) {
    biggest = std::max(biggest, s.size());
    smallest = std::min(smallest, s.size());
  }
  EXPECT_GT(biggest, 2 * smallest);
}

TEST(QueryMix, AllClassesParse) {
  FoafConfig fc;
  fc.persons = 30;
  common::Rng rng(9);
  for (QueryClass cls :
       {QueryClass::kPrimitive, QueryClass::kConjunction,
        QueryClass::kOptional, QueryClass::kUnion, QueryClass::kFilter}) {
    for (int i = 0; i < 5; ++i) {
      std::string q = make_query(cls, fc, rng);
      EXPECT_NO_THROW((void)sparql::parse_query(q)) << q;
    }
  }
}

TEST(QueryMix, GeneratedStreamIsDeterministic) {
  FoafConfig fc;
  fc.persons = 30;
  QueryMixConfig mix;
  EXPECT_EQ(generate_query_mix(25, fc, mix), generate_query_mix(25, fc, mix));
}

TEST(QueryMix, WeightsRoughlyRespected) {
  FoafConfig fc;
  fc.persons = 30;
  QueryMixConfig mix;
  mix.primitive = 1.0;
  mix.conjunction = mix.optional = mix.union_ = mix.filter = 0.0;
  for (const std::string& q : generate_query_mix(10, fc, mix)) {
    // Primitive queries have exactly one triple pattern.
    sparql::Query parsed = sparql::parse_query(q);
    EXPECT_EQ(parsed.where.elements.size(), 1u);
  }
}

TEST(Testbed, BuildsRequestedTopology) {
  TestbedConfig cfg;
  cfg.index_nodes = 3;
  cfg.storage_nodes = 5;
  cfg.foaf.persons = 20;
  Testbed bed(cfg);
  EXPECT_EQ(bed.overlay().index_nodes().size(), 3u);
  EXPECT_EQ(bed.storage_addrs().size(), 5u);
  EXPECT_GT(bed.overlay().merged_store().size(), 0u);
  // Stats were reset after setup.
  EXPECT_EQ(bed.network().stats().messages, 0u);
}

TEST(Testbed, EmptyDatasetSupported) {
  TestbedConfig cfg;
  cfg.index_nodes = 2;
  cfg.storage_nodes = 2;
  cfg.foaf.persons = 0;
  Testbed bed(cfg);
  EXPECT_EQ(bed.overlay().merged_store().size(), 0u);
}

}  // namespace
}  // namespace ahsw::workload
