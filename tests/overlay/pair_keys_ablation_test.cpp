// Ablation of the six-key index (Sect. III-B): with pair_keys disabled the
// overlay publishes only the RDFPeers-style S/P/O keys; two-attribute
// patterns over-approximate their provider sets but answers stay correct.
#include <gtest/gtest.h>

#include "dqp/processor.hpp"
#include "sparql/eval.hpp"
#include "workload/testbed.hpp"
#include "workload/vocab.hpp"

namespace ahsw::overlay {
namespace {

using rdf::Term;
using rdf::TriplePattern;
using rdf::Variable;

workload::TestbedConfig config(bool pair_keys) {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 5;
  cfg.storage_nodes = 6;
  cfg.overlay.pair_keys = pair_keys;
  cfg.foaf.persons = 60;
  cfg.foaf.seed = 71;
  cfg.partition.seed = 72;
  return cfg;
}

TEST(PairKeysAblation, ThreeKeyModePublishesHalfTheEntries) {
  workload::Testbed six(config(true));
  workload::Testbed three(config(false));
  auto entries = [](workload::Testbed& bed) {
    std::size_t n = 0;
    for (const auto& [id, ix] : bed.overlay().index_nodes()) {
      n += ix.table.entry_count();
    }
    return n;
  };
  EXPECT_GT(entries(six), entries(three));
  // Six keys vs three per triple: roughly double the entries (exact ratio
  // depends on key sharing within a node's data).
  EXPECT_GE(entries(six) * 10, entries(three) * 15);
}

TEST(PairKeysAblation, PairPatternOverApproximatesProviders) {
  workload::Testbed six(config(true));
  workload::Testbed three(config(false));
  // (?x, knows, p0): six-key mode consults the PO row (exact); three-key
  // mode consults the O row of p0 (any triple with p0 as object).
  TriplePattern pattern{
      Variable{"x"}, Term::iri(std::string(workload::foaf::kKnows)),
      Term::iri("http://example.org/people/p0")};
  auto loc6 = six.overlay().locate(six.storage_addrs().front(), pattern, 0);
  auto loc3 =
      three.overlay().locate(three.storage_addrs().front(), pattern, 0);
  ASSERT_TRUE(loc6.ok);
  ASSERT_TRUE(loc3.ok);
  EXPECT_GE(loc3.providers.size(), loc6.providers.size());
}

TEST(PairKeysAblation, AnswersStayOracleCorrect) {
  workload::Testbed bed(config(false));
  dqp::DistributedQueryProcessor proc(bed.overlay());
  for (const char* q :
       {"SELECT ?x WHERE { ?x foaf:knows <http://example.org/people/p0> . }",
        "SELECT ?o WHERE { <http://example.org/people/p1> foaf:knows ?o . }",
        "SELECT ?x ?z WHERE { ?x foaf:knows ?z . ?x ns:knowsNothingAbout ?y "
        ". }",
        "SELECT ?x ?n WHERE { ?x foaf:name ?n . FILTER regex(?n, \"Smith\") "
        "}"}) {
    std::string query =
        "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
        "PREFIX ns: <http://example.org/ns#>\n" +
        std::string(q);
    sparql::Query parsed = sparql::parse_query(query);
    sparql::QueryResult dist =
        proc.execute(parsed, bed.storage_addrs().front(), nullptr);
    sparql::QueryResult oracle =
        sparql::execute_local(parsed, bed.overlay().merged_store());
    EXPECT_EQ(sparql::deduplicated(dist.solutions).rows(),
              sparql::deduplicated(oracle.solutions).rows())
        << q;
  }
}

TEST(PairKeysAblation, SingleAttributePatternsIdenticalInBothModes) {
  workload::Testbed six(config(true));
  workload::Testbed three(config(false));
  TriplePattern pattern{Term::iri("http://example.org/people/p2"),
                        Variable{"p"}, Variable{"o"}};
  auto loc6 = six.overlay().locate(six.storage_addrs().front(), pattern, 0);
  auto loc3 =
      three.overlay().locate(three.storage_addrs().front(), pattern, 0);
  ASSERT_TRUE(loc6.ok);
  ASSERT_TRUE(loc3.ok);
  EXPECT_EQ(loc6.providers.size(), loc3.providers.size());
}

}  // namespace
}  // namespace ahsw::overlay
