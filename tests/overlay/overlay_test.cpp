#include "overlay/overlay.hpp"

#include <gtest/gtest.h>

#include "workload/generators.hpp"
#include "workload/vocab.hpp"

namespace ahsw::overlay {
namespace {

using rdf::Term;
using rdf::Triple;
using rdf::TriplePattern;
using rdf::Variable;

Term iri(const std::string& x) { return Term::iri("http://" + x); }

struct Fixture {
  net::Network network;
  HybridOverlay overlay;

  explicit Fixture(OverlayConfig cfg = {}) : overlay(network, cfg) {}

  void add_index_nodes(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) overlay.add_index_node();
    overlay.ring().fix_all_fingers_oracle();
  }
};

TEST(Overlay, ShareTriplesPublishesSixKeysEach) {
  Fixture f;
  f.add_index_nodes(4);
  net::NodeAddress d = f.overlay.add_storage_node();
  f.overlay.share_triples(d, {{iri("s"), iri("p"), iri("o")}}, 0);
  std::size_t entries = 0;
  for (const auto& [id, ix] : f.overlay.index_nodes()) {
    entries += ix.table.entry_count();
  }
  EXPECT_EQ(entries, 6u);
  EXPECT_EQ(f.overlay.storage_nodes().at(d).published.size(), 6u);
  EXPECT_EQ(f.overlay.store_of(d).size(), 1u);
}

TEST(Overlay, SharedKeysAggregateFrequencies) {
  Fixture f;
  f.add_index_nodes(4);
  net::NodeAddress d = f.overlay.add_storage_node();
  // Two triples with the same subject: the S-key row should carry freq 2.
  f.overlay.share_triples(
      d, {{iri("s"), iri("p1"), iri("o1")}, {iri("s"), iri("p2"), iri("o2")}},
      0);
  chord::Key s_key = index_key(IndexKeyKind::kS, iri("s"));
  chord::Key owner = f.overlay.ring().oracle_successor(
      f.overlay.ring().truncate(s_key));
  auto row = f.overlay.index_nodes().at(owner).table.lookup(
      f.overlay.ring().truncate(s_key));
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0].frequency, 2u);
}

TEST(Overlay, DuplicateShareDoesNotDoublePublish) {
  Fixture f;
  f.add_index_nodes(2);
  net::NodeAddress d = f.overlay.add_storage_node();
  Triple t{iri("s"), iri("p"), iri("o")};
  f.overlay.share_triples(d, {t}, 0);
  f.overlay.share_triples(d, {t}, 0);  // same triple again
  std::size_t entries = 0;
  for (const auto& [id, ix] : f.overlay.index_nodes()) {
    for (const auto& [key, row] : ix.table.rows()) {
      for (const Provider& p : row) entries += p.frequency;
    }
  }
  EXPECT_EQ(entries, 6u);
}

TEST(Overlay, LocateFindsProvidersForEveryBoundShape) {
  Fixture f;
  f.add_index_nodes(4);
  net::NodeAddress d1 = f.overlay.add_storage_node();
  net::NodeAddress d2 = f.overlay.add_storage_node();
  Triple t{iri("s"), iri("p"), iri("o")};
  f.overlay.share_triples(d1, {t}, 0);
  f.overlay.share_triples(d2, {t}, 0);
  f.overlay.share_triples(d2, {{iri("s2"), iri("p"), iri("o")}}, 0);

  // (s,p,?) -> both providers.
  auto loc = f.overlay.locate(d1, TriplePattern{t.s, t.p, Variable{"o"}}, 0);
  ASSERT_TRUE(loc.ok);
  EXPECT_EQ(loc.providers.size(), 2u);

  // (?,p,o) -> both (d2 with freq 2).
  loc = f.overlay.locate(d1, TriplePattern{Variable{"s"}, t.p, t.o}, 0);
  ASSERT_TRUE(loc.ok);
  ASSERT_EQ(loc.providers.size(), 2u);
  EXPECT_EQ(loc.providers.back().frequency, 2u);  // ascending order

  // (s2,?,?) -> only d2.
  loc = f.overlay.locate(d1,
                         TriplePattern{iri("s2"), Variable{"p"}, Variable{"o"}},
                         0);
  ASSERT_TRUE(loc.ok);
  ASSERT_EQ(loc.providers.size(), 1u);
  EXPECT_EQ(loc.providers[0].address, d2);
}

TEST(Overlay, LocateUnknownKeyYieldsNoProviders) {
  Fixture f;
  f.add_index_nodes(4);
  net::NodeAddress d = f.overlay.add_storage_node();
  f.overlay.share_triples(d, {{iri("s"), iri("p"), iri("o")}}, 0);
  auto loc = f.overlay.locate(
      d, TriplePattern{iri("nothere"), Variable{"p"}, Variable{"o"}}, 0);
  EXPECT_TRUE(loc.ok);
  EXPECT_TRUE(loc.providers.empty());
}

TEST(Overlay, LocateFullyUnboundIsBroadcast) {
  Fixture f;
  f.add_index_nodes(2);
  net::NodeAddress d1 = f.overlay.add_storage_node();
  net::NodeAddress d2 = f.overlay.add_storage_node();
  f.overlay.share_triples(d1, {{iri("a"), iri("b"), iri("c")}}, 0);
  auto loc = f.overlay.locate(
      d2, TriplePattern{Variable{"s"}, Variable{"p"}, Variable{"o"}}, 0);
  EXPECT_TRUE(loc.ok);
  EXPECT_TRUE(loc.broadcast);
  EXPECT_EQ(loc.providers.size(), 2u);
}

TEST(Overlay, LocateChargesIndexTraffic) {
  Fixture f;
  f.add_index_nodes(4);
  net::NodeAddress d = f.overlay.add_storage_node();
  f.overlay.share_triples(d, {{iri("s"), iri("p"), iri("o")}}, 0);
  f.network.reset_stats();
  (void)f.overlay.locate(d, TriplePattern{iri("s"), iri("p"), Variable{"o"}},
                         0);
  auto idx = static_cast<std::size_t>(net::Category::kIndex);
  EXPECT_GE(f.network.stats().messages_by[idx], 2u);  // request + response
}

TEST(Overlay, UnshareRetractsIndexEntries) {
  Fixture f;
  f.add_index_nodes(3);
  net::NodeAddress d = f.overlay.add_storage_node();
  Triple t{iri("s"), iri("p"), iri("o")};
  f.overlay.share_triples(d, {t}, 0);
  f.overlay.unshare_triples(d, {t}, 0);
  for (const auto& [id, ix] : f.overlay.index_nodes()) {
    EXPECT_EQ(ix.table.entry_count(), 0u);
  }
  EXPECT_TRUE(f.overlay.store_of(d).empty());
  EXPECT_TRUE(f.overlay.storage_nodes().at(d).published.empty());
}

TEST(Overlay, StorageLeaveRetractsEverything) {
  Fixture f;
  f.add_index_nodes(3);
  net::NodeAddress d1 = f.overlay.add_storage_node();
  net::NodeAddress d2 = f.overlay.add_storage_node();
  f.overlay.share_triples(d1, {{iri("s"), iri("p"), iri("o")}}, 0);
  f.overlay.share_triples(d2, {{iri("s"), iri("p"), iri("o2")}}, 0);
  f.overlay.storage_node_leave(d1, 0);
  for (const auto& [id, ix] : f.overlay.index_nodes()) {
    for (const auto& [key, row] : ix.table.rows()) {
      for (const Provider& p : row) EXPECT_NE(p.address, d1);
    }
  }
  EXPECT_EQ(f.overlay.storage_nodes().count(d1), 0u);
}

TEST(Overlay, IndexJoinMovesLocationTableSlice) {
  Fixture f;
  f.add_index_nodes(2);
  net::NodeAddress d = f.overlay.add_storage_node();
  std::vector<Triple> data;
  for (int i = 0; i < 20; ++i) {
    data.push_back({iri("s" + std::to_string(i)), iri("p"), iri("o")});
  }
  f.overlay.share_triples(d, data, 0);
  std::size_t before = 0;
  for (const auto& [id, ix] : f.overlay.index_nodes()) {
    before += ix.table.entry_count();
  }

  // A third index node takes over part of the key space.
  f.overlay.add_index_node();
  f.overlay.ring().fix_all_fingers_oracle();

  std::size_t after = 0;
  for (const auto& [id, ix] : f.overlay.index_nodes()) {
    after += ix.table.entry_count();
    // Every row must now live at its oracle owner.
    for (const auto& [key, row] : ix.table.rows()) {
      EXPECT_EQ(f.overlay.ring().oracle_successor(key), id);
    }
  }
  EXPECT_EQ(before, after);  // nothing lost, nothing duplicated
}

TEST(Overlay, IndexLeaveHandsTableToSuccessor) {
  Fixture f;
  f.add_index_nodes(3);
  net::NodeAddress d = f.overlay.add_storage_node();
  std::vector<Triple> data;
  for (int i = 0; i < 10; ++i) {
    data.push_back({iri("s" + std::to_string(i)), iri("p"), iri("o")});
  }
  f.overlay.share_triples(d, data, 0);
  std::size_t before = 0;
  for (const auto& [id, ix] : f.overlay.index_nodes()) {
    before += ix.table.entry_count();
  }
  chord::Key leaver = f.overlay.index_nodes().begin()->first;
  f.overlay.index_node_leave(leaver, 0);
  f.overlay.ring().fix_all_fingers_oracle();
  std::size_t after = 0;
  for (const auto& [id, ix] : f.overlay.index_nodes()) {
    after += ix.table.entry_count();
  }
  EXPECT_EQ(before, after);
  EXPECT_EQ(f.overlay.index_nodes().size(), 2u);
  // Locates still work for all data.
  auto loc = f.overlay.locate(d, TriplePattern{iri("s3"), iri("p"), iri("o")},
                              0);
  EXPECT_TRUE(loc.ok);
  EXPECT_EQ(loc.providers.size(), 1u);
}

TEST(Overlay, ReplicationMasksIndexNodeFailure) {
  OverlayConfig cfg;
  cfg.replication_factor = 2;
  Fixture f(cfg);
  f.add_index_nodes(4);
  net::NodeAddress d = f.overlay.add_storage_node();
  std::vector<Triple> data;
  for (int i = 0; i < 20; ++i) {
    data.push_back({iri("s" + std::to_string(i)), iri("p"), iri("o")});
  }
  f.overlay.share_triples(d, data, 0);
  std::size_t before = 0;
  for (const auto& [id, ix] : f.overlay.index_nodes()) {
    before += ix.table.entry_count();
  }

  chord::Key victim = f.overlay.index_nodes().begin()->first;
  std::size_t lost = f.overlay.index_nodes().at(victim).table.entry_count();
  ASSERT_GT(lost, 0u);
  f.overlay.index_node_fail(victim);
  f.overlay.repair(0);
  f.overlay.ring().fix_all_fingers_oracle();

  // All entries must be locatable again (promoted from replicas).
  std::size_t after = 0;
  for (const auto& [id, ix] : f.overlay.index_nodes()) {
    after += ix.table.entry_count();
  }
  EXPECT_EQ(after, before);  // nothing permanently lost
  for (int i = 0; i < 20; ++i) {
    auto loc = f.overlay.locate(
        d, TriplePattern{iri("s" + std::to_string(i)), iri("p"), iri("o")}, 0);
    ASSERT_TRUE(loc.ok) << i;
    EXPECT_EQ(loc.providers.size(), 1u) << i;
  }
}

TEST(Overlay, RepairDoesNotResurrectUnsharedProvider) {
  // Regression for the reconcile resurrection hole: a storage node unshares
  // its triples, but a replica holder that was displaced from the owner's
  // successor list still has the pre-retraction snapshot. The next repair()
  // pushes that stale row back to the owner — the max-merge used to bring
  // the retracted provider back to life.
  OverlayConfig cfg;
  cfg.ring.bits = 4;
  cfg.replication_factor = 2;
  Fixture f(cfg);

  Triple t{iri("s"), iri("p"), iri("o")};
  chord::Key s_key = index_key(IndexKeyKind::kS, t.s);
  chord::Key tk = f.overlay.ring().truncate(s_key);
  // Owner exactly at the key's ring position; the replica of its rows lands
  // at the next node clockwise.
  chord::Key owner = f.overlay.add_index_node_with_id(tk, 0);
  chord::Key old_holder = f.overlay.add_index_node_with_id((tk + 3) & 15, 0);
  f.overlay.add_index_node_with_id((tk + 8) & 15, 0);
  f.overlay.ring().fix_all_fingers_oracle();

  net::NodeAddress d = f.overlay.add_storage_node_attached(owner);
  f.overlay.share_triples(d, {t}, 0);
  ASSERT_FALSE(f.overlay.index_nodes().at(owner).table.lookup(s_key).empty());
  ASSERT_FALSE(
      f.overlay.index_nodes().at(old_holder).replicas.lookup(s_key).empty())
      << "scenario setup: replica should live at the owner's successor";

  // A new index node splices in right after the owner, displacing the old
  // replica holder — which keeps its (now untracked) snapshot.
  f.overlay.add_index_node_with_id((tk + 1) & 15, 5);
  f.overlay.ring().fix_all_fingers_oracle();

  // The provider unshares: the owner's row empties, and the retraction
  // snapshot only reaches the *current* successor, not the old holder.
  f.overlay.unshare_triples(d, {t}, 10);
  ASSERT_TRUE(f.overlay.index_nodes().at(owner).table.lookup(s_key).empty());
  ASSERT_FALSE(
      f.overlay.index_nodes().at(old_holder).replicas.lookup(s_key).empty())
      << "scenario setup: the stale replica must survive the retraction";

  // Recovery reconciliation pushes the stale replica to the owner.
  f.overlay.repair(20);
  EXPECT_TRUE(f.overlay.index_nodes().at(owner).table.lookup(s_key).empty())
      << "unshared provider resurrected by a stale replica push";
  auto loc = f.overlay.locate(d, TriplePattern{t.s, Variable{"p"},
                                               Variable{"o"}}, 30);
  ASSERT_TRUE(loc.ok);
  EXPECT_TRUE(loc.providers.empty());
}

TEST(Overlay, WithoutReplicationRepublishRestoresIndex) {
  Fixture f;  // replication_factor = 1
  f.add_index_nodes(4);
  net::NodeAddress d = f.overlay.add_storage_node();
  std::vector<Triple> data;
  for (int i = 0; i < 20; ++i) {
    data.push_back({iri("s" + std::to_string(i)), iri("p"), iri("o")});
  }
  f.overlay.share_triples(d, data, 0);
  std::size_t before = 0;
  for (const auto& [id, ix] : f.overlay.index_nodes()) {
    before += ix.table.entry_count();
  }

  chord::Key victim = f.overlay.index_nodes().begin()->first;
  std::size_t lost = f.overlay.index_nodes().at(victim).table.entry_count();
  ASSERT_GT(lost, 0u);
  f.overlay.index_node_fail(victim);
  f.overlay.repair(0);
  f.overlay.ring().fix_all_fingers_oracle();

  std::size_t after_fail = 0;
  for (const auto& [id, ix] : f.overlay.index_nodes()) {
    after_fail += ix.table.entry_count();
  }
  EXPECT_EQ(after_fail, before - lost);  // those rows are gone...

  f.overlay.republish_all(0);
  std::size_t after_repub = 0;
  for (const auto& [id, ix] : f.overlay.index_nodes()) {
    after_repub += ix.table.entry_count();
  }
  EXPECT_EQ(after_repub, before);  // ...until providers republish
}

TEST(Overlay, ReportDeadProviderPurgesRow) {
  Fixture f;
  f.add_index_nodes(3);
  net::NodeAddress d1 = f.overlay.add_storage_node();
  net::NodeAddress d2 = f.overlay.add_storage_node();
  Triple t{iri("s"), iri("p"), iri("o")};
  f.overlay.share_triples(d1, {t}, 0);
  f.overlay.share_triples(d2, {t}, 0);
  f.overlay.storage_node_fail(d1);
  TriplePattern pat{t.s, t.p, Variable{"o"}};
  f.overlay.report_dead_provider(d2, pat, d1, 0);
  auto loc = f.overlay.locate(d2, pat, 0);
  ASSERT_TRUE(loc.ok);
  ASSERT_EQ(loc.providers.size(), 1u);
  EXPECT_EQ(loc.providers[0].address, d2);
}

TEST(Overlay, StorageReattachesWhenItsIndexNodeDies) {
  Fixture f;
  f.add_index_nodes(3);
  net::NodeAddress d = f.overlay.add_storage_node_attached(
      f.overlay.index_nodes().begin()->first);
  chord::Key attached = f.overlay.storage_nodes().at(d).attached_index;
  f.overlay.index_node_fail(attached);
  f.overlay.repair(0);
  f.overlay.ring().fix_all_fingers_oracle();
  // entry_ring_node re-attaches transparently.
  chord::Key entry = f.overlay.entry_ring_node(d);
  EXPECT_NE(entry, attached);
  EXPECT_TRUE(f.overlay.ring().contains(entry));
}

TEST(Overlay, MergedStoreUnionsLiveStorageNodes) {
  Fixture f;
  f.add_index_nodes(2);
  net::NodeAddress d1 = f.overlay.add_storage_node();
  net::NodeAddress d2 = f.overlay.add_storage_node();
  f.overlay.share_triples(d1, {{iri("a"), iri("p"), iri("x")}}, 0);
  f.overlay.share_triples(d2, {{iri("b"), iri("p"), iri("y")}}, 0);
  EXPECT_EQ(f.overlay.merged_store().size(), 2u);
  f.overlay.storage_node_fail(d2);
  EXPECT_EQ(f.overlay.merged_store().size(), 1u);
}

TEST(OverlayProperty, ShareThenUnshareIsIdentityOnIndexState) {
  // Property over random datasets: sharing a batch and unsharing it again
  // leaves every location table (and the node's published map) exactly as
  // before — no leaked rows, no residual frequencies.
  common::Rng rng(1234);
  for (int trial = 0; trial < 5; ++trial) {
    Fixture f;
    f.add_index_nodes(4);
    net::NodeAddress base = f.overlay.add_storage_node();
    net::NodeAddress churner = f.overlay.add_storage_node();

    std::vector<Triple> base_data, churn_data;
    for (int i = 0; i < 30; ++i) {
      base_data.push_back({iri("s" + std::to_string(rng.below(10))),
                           iri("p" + std::to_string(rng.below(3))),
                           iri("o" + std::to_string(rng.below(15)))});
      churn_data.push_back({iri("s" + std::to_string(rng.below(10))),
                            iri("p" + std::to_string(rng.below(3))),
                            iri("o" + std::to_string(rng.below(15)))});
    }
    f.overlay.share_triples(base, base_data, 0);

    auto snapshot = [&] {
      std::map<chord::Key, overlay::RowSnapshot> out;
      for (const auto& [id, ix] : f.overlay.index_nodes()) {
        out[id] = ix.table.rows();
      }
      return out;
    };
    auto before = snapshot();

    f.overlay.share_triples(churner, churn_data, 0);
    f.overlay.unshare_triples(churner, churn_data, 0);

    EXPECT_EQ(snapshot(), before) << "trial " << trial;
    EXPECT_TRUE(f.overlay.storage_nodes().at(churner).published.empty());
    EXPECT_TRUE(f.overlay.store_of(churner).empty());
  }
}

TEST(Overlay, RoundRobinAttachmentSpreadsStorageNodes) {
  Fixture f;
  f.add_index_nodes(3);
  std::map<chord::Key, int> counts;
  for (int i = 0; i < 9; ++i) {
    net::NodeAddress d = f.overlay.add_storage_node();
    ++counts[f.overlay.storage_nodes().at(d).attached_index];
  }
  for (const auto& [id, c] : counts) EXPECT_EQ(c, 3);
}

}  // namespace
}  // namespace ahsw::overlay
