#include "overlay/keys.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ahsw::overlay {
namespace {

using rdf::Term;
using rdf::TriplePattern;
using rdf::Variable;

rdf::Triple triple() {
  return {Term::iri("http://s"), Term::iri("http://p"), Term::literal("o")};
}

TEST(IndexKeys, SixDistinctKeysPerTriple) {
  auto keys = index_keys(triple());
  std::set<chord::Key> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(IndexKeys, KeysAreStable) {
  EXPECT_EQ(index_keys(triple()), index_keys(triple()));
}

TEST(IndexKeys, SingleKeyMatchesKindAccessor) {
  rdf::Triple t = triple();
  auto keys = index_keys(t);
  EXPECT_EQ(keys[0], index_key(IndexKeyKind::kS, t.s));
  EXPECT_EQ(keys[1], index_key(IndexKeyKind::kP, t.p));
  EXPECT_EQ(keys[2], index_key(IndexKeyKind::kO, t.o));
  EXPECT_EQ(keys[3], index_key(IndexKeyKind::kSP, t.s, t.p));
  EXPECT_EQ(keys[4], index_key(IndexKeyKind::kPO, t.p, t.o));
  EXPECT_EQ(keys[5], index_key(IndexKeyKind::kSO, t.s, t.o));
}

TEST(IndexKeys, IriAndLiteralWithSameLexicalDiffer) {
  // <x> as object vs "x" as object must index under different keys.
  EXPECT_NE(index_key(IndexKeyKind::kO, Term::iri("x")),
            index_key(IndexKeyKind::kO, Term::literal("x")));
}

TEST(IndexKeys, PairKeysDependOnOrder) {
  Term a = Term::iri("a"), b = Term::iri("b");
  EXPECT_NE(index_key(IndexKeyKind::kSP, a, b),
            index_key(IndexKeyKind::kSP, b, a));
}

struct ShapeCase {
  bool s, p, o;
  IndexKeyKind expected;
};

class PatternKeySelection : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(PatternKeySelection, PicksDocumentedKind) {
  const ShapeCase& c = GetParam();
  TriplePattern pat{
      c.s ? rdf::PatternTerm(Term::iri("s")) : rdf::PatternTerm(Variable{"s"}),
      c.p ? rdf::PatternTerm(Term::iri("p")) : rdf::PatternTerm(Variable{"p"}),
      c.o ? rdf::PatternTerm(Term::literal("o"))
          : rdf::PatternTerm(Variable{"o"})};
  auto pk = key_for_pattern(pat);
  ASSERT_TRUE(pk.has_value());
  EXPECT_EQ(pk->kind, c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    SevenBoundShapes, PatternKeySelection,
    ::testing::Values(ShapeCase{true, true, true, IndexKeyKind::kSP},
                      ShapeCase{true, true, false, IndexKeyKind::kSP},
                      ShapeCase{false, true, true, IndexKeyKind::kPO},
                      ShapeCase{true, false, true, IndexKeyKind::kSO},
                      ShapeCase{true, false, false, IndexKeyKind::kS},
                      ShapeCase{false, true, false, IndexKeyKind::kP},
                      ShapeCase{false, false, true, IndexKeyKind::kO}));

TEST(PatternKey, FullyUnboundHasNoKey) {
  TriplePattern p{Variable{"s"}, Variable{"p"}, Variable{"o"}};
  EXPECT_FALSE(key_for_pattern(p).has_value());
}

TEST(PatternKey, PatternKeyMatchesTripleKey) {
  // The key a query uses must equal the key the data was published under —
  // the invariant the whole two-level index rests on.
  rdf::Triple t = triple();
  TriplePattern by_sp{t.s, t.p, Variable{"o"}};
  EXPECT_EQ(key_for_pattern(by_sp)->key, index_keys(t)[3]);
  TriplePattern by_o{Variable{"s"}, Variable{"p"}, t.o};
  EXPECT_EQ(key_for_pattern(by_o)->key, index_keys(t)[2]);
  TriplePattern by_so{t.s, Variable{"p"}, t.o};
  EXPECT_EQ(key_for_pattern(by_so)->key, index_keys(t)[5]);
}

TEST(IndexKeyKindName, AllNamed) {
  EXPECT_EQ(index_key_kind_name(IndexKeyKind::kS), "S");
  EXPECT_EQ(index_key_kind_name(IndexKeyKind::kSP), "SP");
  EXPECT_EQ(index_key_kind_name(IndexKeyKind::kSO), "SO");
}

}  // namespace
}  // namespace ahsw::overlay
