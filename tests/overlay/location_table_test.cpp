#include "overlay/location_table.hpp"

#include <gtest/gtest.h>

namespace ahsw::overlay {
namespace {

// The paper's Table I: the location table of index node N7.
//   K1 -> D1 (15), D3 (10)
//   K2 -> D1 (10), D3 (20), D4 (15)
//   K3 -> D1 (30)
constexpr chord::Key K1 = 101, K2 = 102, K3 = 103;
constexpr net::NodeAddress D1 = 1, D2 = 2, D3 = 3, D4 = 4;

LocationTable table_one() {
  LocationTable t;
  t.publish(K1, D1, 15);
  t.publish(K1, D3, 10);
  t.publish(K2, D1, 10);
  t.publish(K2, D3, 20);
  t.publish(K2, D4, 15);
  t.publish(K3, D1, 30);
  return t;
}

TEST(LocationTable, TableOneShape) {
  LocationTable t = table_one();
  EXPECT_EQ(t.row_count(), 3u);
  EXPECT_EQ(t.entry_count(), 6u);
  EXPECT_EQ(t.lookup(K1).size(), 2u);
  EXPECT_EQ(t.lookup(K2).size(), 3u);
  EXPECT_EQ(t.lookup(K3).size(), 1u);
}

TEST(LocationTable, LookupSortsAscendingFrequency) {
  // The order the further-optimized chain wants: smallest first, D3 (the
  // largest provider of K2 in Table I) last.
  LocationTable t = table_one();
  std::vector<Provider> row = t.lookup(K2);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0].address, D1);
  EXPECT_EQ(row[0].frequency, 10u);
  EXPECT_EQ(row[1].address, D4);
  EXPECT_EQ(row[2].address, D3);
  EXPECT_EQ(row[2].frequency, 20u);
}

TEST(LocationTable, LookupUnknownKeyIsEmpty) {
  EXPECT_TRUE(table_one().lookup(999).empty());
}

TEST(LocationTable, PublishMergesSameProvider) {
  LocationTable t;
  t.publish(K1, D1, 5);
  t.publish(K1, D1, 7);
  std::vector<Provider> row = t.lookup(K1);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0].frequency, 12u);
}

TEST(LocationTable, PublishZeroFrequencyIsNoop) {
  LocationTable t;
  t.publish(K1, D1, 0);
  EXPECT_TRUE(t.empty());
}

TEST(LocationTable, RetractDecrementsAndRemovesAtZero) {
  LocationTable t = table_one();
  EXPECT_TRUE(t.retract(K1, D1, 5));
  EXPECT_EQ(t.lookup(K1)[0].frequency, 10u);  // D1 now 10, ties D3
  EXPECT_TRUE(t.retract(K1, D1, 10));
  ASSERT_EQ(t.lookup(K1).size(), 1u);
  EXPECT_EQ(t.lookup(K1)[0].address, D3);
}

TEST(LocationTable, RetractBelowZeroClamps) {
  LocationTable t;
  t.publish(K1, D1, 3);
  EXPECT_TRUE(t.retract(K1, D1, 100));
  EXPECT_TRUE(t.lookup(K1).empty());
}

TEST(LocationTable, RetractUnknownIsFalse) {
  LocationTable t = table_one();
  EXPECT_FALSE(t.retract(K1, D2, 1));
  EXPECT_FALSE(t.retract(999, D1, 1));
}

TEST(LocationTable, RetractLastEntryDropsRow) {
  LocationTable t;
  t.publish(K1, D1, 1);
  t.retract(K1, D1, 1);
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(LocationTable, PurgeRemovesProviderFromRow) {
  LocationTable t = table_one();
  EXPECT_TRUE(t.purge(K2, D3));
  EXPECT_EQ(t.lookup(K2).size(), 2u);
  EXPECT_FALSE(t.purge(K2, D3));
}

TEST(LocationTable, PurgeEverywhereSimulatesLazyRepair) {
  LocationTable t = table_one();
  t.purge_everywhere(D1);
  EXPECT_EQ(t.lookup(K1).size(), 1u);
  EXPECT_EQ(t.lookup(K2).size(), 2u);
  EXPECT_TRUE(t.lookup(K3).empty());  // K3 row had only D1
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(LocationTable, ExtractRangeTakesOpenClosedSlice) {
  LocationTable t = table_one();
  // Keys 101..103; slice (101, 102] takes exactly K2.
  auto slice = t.extract_range(101, 102);
  ASSERT_EQ(slice.size(), 1u);
  EXPECT_EQ(slice.begin()->key, K2);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_TRUE(t.lookup(K2).empty());
}

TEST(LocationTable, ExtractRangeHandlesWraparound) {
  LocationTable t;
  t.publish(5, D1, 1);
  t.publish(1000, D2, 1);
  // (900, 10] wraps: takes both 1000 and 5.
  auto slice = t.extract_range(900, 10);
  EXPECT_EQ(slice.size(), 2u);
  EXPECT_TRUE(t.empty());
}

TEST(LocationTable, AbsorbMergesSlice) {
  LocationTable a = table_one();
  LocationTable b;
  b.absorb(a.extract_range(0, ~chord::Key{0}));
  EXPECT_EQ(b.row_count(), 3u);
  EXPECT_EQ(b.entry_count(), 6u);
  EXPECT_EQ(b.lookup(K2).size(), 3u);
}

TEST(LocationTable, EraseRowDropsWholeRow) {
  LocationTable t = table_one();
  t.erase_row(K2);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_TRUE(t.lookup(K2).empty());
}

TEST(LocationTable, UpsertSetsInsteadOfAdding) {
  LocationTable t;
  t.upsert(K1, D1, 5);
  t.upsert(K1, D1, 5);  // idempotent, unlike publish
  ASSERT_EQ(t.lookup(K1).size(), 1u);
  EXPECT_EQ(t.lookup(K1)[0].frequency, 5u);
  t.upsert(K1, D1, 9);
  EXPECT_EQ(t.lookup(K1)[0].frequency, 9u);
}

TEST(LocationTable, UpsertZeroRemoves) {
  LocationTable t = table_one();
  t.upsert(K3, D1, 0);
  EXPECT_TRUE(t.lookup(K3).empty());
  t.upsert(999, D1, 0);  // no-op on absent rows
  EXPECT_TRUE(t.lookup(999).empty());
}

TEST(LocationTable, ReconcileTakesNewerVersionPerProvider) {
  LocationTable t;
  t.publish(K1, D1, 10);  // owner entry at version 1
  // Two replica holders push overlapping snapshots: a stale one (version 1,
  // the pre-publish frequency) and a newer one (version 2).
  t.reconcile({{K1, {{D1, 7, 1}, {D2, 4, 1}}}});
  t.reconcile({{K1, {{D1, 12, 2}, {D2, 4, 1}}}});
  std::vector<Provider> row = t.lookup(K1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].address, D2);
  EXPECT_EQ(row[0].frequency, 4u);
  EXPECT_EQ(row[1].address, D1);
  EXPECT_EQ(row[1].frequency, 12u);
  EXPECT_EQ(row[1].version, 2u);
}

TEST(LocationTable, ReconcileEqualVersionsMergeByMaxFrequency) {
  // Several holders pushing the *same* causal state must stay idempotent:
  // equal versions merge by max, so repeated pushes never inflate the row.
  LocationTable t;
  t.reconcile({{K1, {{D1, 7, 3}}}});
  t.reconcile({{K1, {{D1, 7, 3}}}});
  t.reconcile({{K1, {{D1, 5, 3}}}});  // lower freq at the same version loses
  std::vector<Provider> row = t.lookup(K1);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0].frequency, 7u);
  EXPECT_EQ(row[0].version, 3u);
}

TEST(LocationTable, ReconcileDoesNotResurrectStaleHigherFrequency) {
  // THE regression this PR fixes (the documented wart): a *partial* retract
  // only lowers the frequency, and the old max-merge reconcile let a stale
  // replica snapshot bring the old, higher frequency back.
  LocationTable t;
  t.publish(K1, D1, 30);                   // version 1, frequency 30
  overlay::RowSnapshot stale_snapshot = t.rows();
  EXPECT_TRUE(t.retract(K1, D1, 15));      // partial: frequency 15, version 2
  t.reconcile(stale_snapshot);             // max-merge would restore 30
  std::vector<Provider> row = t.lookup(K1);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0].frequency, 15u) << "stale higher frequency resurrected";
  EXPECT_EQ(row[0].version, 2u);
}

TEST(LocationTable, ReconcileAllTombstonedLeavesNoEmptyRow) {
  // A snapshot in which every provider is tombstoned must not churn an
  // empty rows_[key] entry into existence (the old operator[] did, then
  // erased it again on the hot reconcile path).
  LocationTable t;
  t.publish(K1, D1, 5);
  t.retract(K1, D1, 5);  // row gone, tombstone buried at version 1
  EXPECT_EQ(t.row_count(), 0u);
  t.reconcile({{K1, {{D1, 5, 1}}}, {K2, {{D2, 0, 9}}}});
  EXPECT_EQ(t.row_count(), 0u);
  EXPECT_TRUE(t.empty());
}

TEST(LocationTable, ReconcileIsIdempotent) {
  LocationTable t;
  RowSnapshot snapshot = {{K1, {{D1, 3}, {D3, 8}}}};
  t.reconcile(snapshot);
  t.reconcile(snapshot);
  t.reconcile(snapshot);
  EXPECT_EQ(t.entry_count(), 2u);
  EXPECT_EQ(t.lookup(K1)[1].frequency, 8u);
}

TEST(LocationTable, ReconcileDoesNotResurrectRetractedProvider) {
  // Regression: a provider retracts its last triples (graceful departure),
  // then a stale replica snapshot — taken before the retraction — arrives
  // through recovery reconciliation. The max-merge used to bring the
  // departed provider back from the dead.
  LocationTable t = table_one();
  EXPECT_TRUE(t.retract(K3, D1, 30));  // D1 fully retracts from K3
  EXPECT_TRUE(t.lookup(K3).empty());
  EXPECT_TRUE(t.tombstoned(K3, D1));

  t.reconcile({{K3, {{D1, 30}}}});  // stale replica still lists D1
  EXPECT_TRUE(t.lookup(K3).empty()) << "retracted provider resurrected";
}

TEST(LocationTable, ReconcileDoesNotResurrectPurgedProvider) {
  // Same failure through the lazy-repair path: purge (dead provider)
  // followed by a stale replica push.
  LocationTable t = table_one();
  EXPECT_TRUE(t.purge(K2, D3));
  t.reconcile({{K2, {{D1, 10}, {D3, 20}, {D4, 15}}}});
  std::vector<Provider> row = t.lookup(K2);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].address, D1);
  EXPECT_EQ(row[1].address, D4);
}

TEST(LocationTable, RepublishClearsTombstone) {
  // The provider comes back (rejoins, shares again): publish lifts the
  // tombstone, restarts the version past the burial, and reconcile may
  // merge *newer* snapshots again — while pre-burial ones stay rejected.
  LocationTable t;
  t.publish(K1, D1, 5);   // version 1
  t.retract(K1, D1, 5);   // buried at version 1
  EXPECT_TRUE(t.tombstoned(K1, D1));
  ASSERT_TRUE(t.tombstone_version(K1, D1).has_value());
  EXPECT_EQ(*t.tombstone_version(K1, D1), 1u);
  t.publish(K1, D1, 8);   // revived at version 2
  EXPECT_FALSE(t.tombstoned(K1, D1));
  t.reconcile({{K1, {{D1, 5, 1}}}});  // stale pre-burial snapshot: rejected
  EXPECT_EQ(t.lookup(K1)[0].frequency, 8u);
  t.reconcile({{K1, {{D1, 11, 3}}}});  // post-revival snapshot: accepted
  ASSERT_EQ(t.lookup(K1).size(), 1u);
  EXPECT_EQ(t.lookup(K1)[0].frequency, 11u);
}

TEST(LocationTable, UpsertReplicaMirrorsVersionVerbatim) {
  LocationTable replicas;
  replicas.upsert_replica(K1, D1, 15, 3);
  ASSERT_EQ(replicas.lookup(K1).size(), 1u);
  EXPECT_EQ(replicas.lookup(K1)[0].version, 3u);
  replicas.upsert_replica(K1, D1, 10, 2);  // out-of-order push: ignored
  EXPECT_EQ(replicas.lookup(K1)[0].frequency, 15u);
  replicas.upsert_replica(K1, D1, 9, 4);   // newer push: applied
  EXPECT_EQ(replicas.lookup(K1)[0].frequency, 9u);
  replicas.upsert_replica(K1, D1, 0, 5);   // removal push: buries version 5
  EXPECT_TRUE(replicas.lookup(K1).empty());
  EXPECT_TRUE(replicas.tombstoned(K1, D1));
  replicas.upsert_replica(K1, D1, 7, 5);   // not newer than burial: rejected
  EXPECT_TRUE(replicas.lookup(K1).empty());
  replicas.upsert_replica(K1, D1, 7, 6);   // re-publish reached the owner
  ASSERT_EQ(replicas.lookup(K1).size(), 1u);
  EXPECT_EQ(replicas.lookup(K1)[0].frequency, 7u);
}

TEST(LocationTable, AbsorbPreservesVersions) {
  // Slice transfers must not reset versions: the new owner's entries have
  // to stay ahead of replica mirrors still carrying pre-transfer versions.
  LocationTable a;
  a.publish(K1, D1, 10);
  a.publish(K1, D1, 10);
  a.publish(K1, D1, 10);  // version 3, frequency 30
  LocationTable b;
  b.absorb(a.extract_range(0, ~chord::Key{0}));
  ASSERT_EQ(b.lookup(K1).size(), 1u);
  EXPECT_EQ(b.lookup(K1)[0].version, 3u);
  EXPECT_TRUE(b.retract(K1, D1, 15));  // version 4, frequency 15
  b.reconcile({{K1, {{D1, 30, 3}}}});  // stale mirror of the old owner
  EXPECT_EQ(b.lookup(K1)[0].frequency, 15u);
}

TEST(LocationTable, PurgeEverywhereTombstonesAffectedRows) {
  LocationTable t = table_one();
  t.purge_everywhere(D1);
  EXPECT_TRUE(t.tombstoned(K1, D1));
  EXPECT_TRUE(t.tombstoned(K2, D1));
  EXPECT_TRUE(t.tombstoned(K3, D1));
  EXPECT_FALSE(t.tombstoned(K1, D3));
  t.reconcile({{K3, {{D1, 30}}}});
  EXPECT_TRUE(t.lookup(K3).empty());
}

TEST(LocationTable, RowsIterateAscendingByKeyAfterArbitraryMutations) {
  // Flat-vector refactor pin: rows() must present the map-era ascending-key
  // iteration order — which audits, repair and replica snapshots walk
  // directly — no matter the mutation history. Keys arrive in a scrambled
  // order and every mutating entry point runs at least once.
  LocationTable t;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const chord::Key key = 1 + (i * 37) % 97;  // 37 generates Z/97: scrambled
    t.publish(key, D1 + (i % 4), 5 + i);
  }
  t.retract(1 + 37 % 97, D2, 1);
  t.upsert(1 + (2 * 37) % 97, D3, 40);
  t.upsert_replica(1 + (3 * 37) % 97, D4, 12, /*version=*/99);
  t.purge(1 + (4 * 37) % 97, D1);
  t.purge_everywhere(D2);
  t.erase_row(1 + (5 * 37) % 97);
  RowSnapshot slice = t.extract_range(10, 40);  // detach a middle slice...
  t.reconcile({{3, {{D1, 7, 50}}}, {200, {{D3, 9, 50}}}});
  t.absorb(slice);  // ...and splice it back after unrelated churn

  ASSERT_GT(t.row_count(), 10u);
  const std::vector<Row>& rows = t.rows();
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].key, rows[i].key) << i;
  }
  // Within each row, providers keep (frequency, address) order — the order
  // lookup() hands to the provider-chain strategy.
  for (const Row& row : rows) {
    for (std::size_t i = 1; i < row.providers.size(); ++i) {
      const Provider& a = row.providers[i - 1];
      const Provider& b = row.providers[i];
      EXPECT_TRUE(a.frequency < b.frequency ||
                  (a.frequency == b.frequency && a.address < b.address))
          << "row " << row.key << " entry " << i;
    }
  }
}

TEST(LocationTable, ByteSizeTracksContent) {
  LocationTable t;
  std::size_t empty_size = t.byte_size();
  EXPECT_EQ(empty_size, 8u);
  t.publish(K1, D1, 1);
  // One row: key (8) + one provider entry (address 8 + frequency 4 +
  // version 4). The 12-byte figure predating per-entry versions was an
  // undercount.
  EXPECT_EQ(t.byte_size(), 8u + 8u + 16u);
  EXPECT_EQ(LocationTable::response_bytes(0), 16u);
  EXPECT_EQ(LocationTable::response_bytes(3), 16u + 3u * 16u);
}

TEST(LocationTable, ByteSizeCountsTombstones) {
  LocationTable t;
  t.publish(K1, D1, 1);
  std::size_t with_entry = t.byte_size();
  // Full removal buries a tombstone (key 8 + address 8 + version 4): the
  // snapshot that travels on transfers must charge for it, or deletions
  // would propagate for free.
  ASSERT_TRUE(t.purge(K1, D1));
  EXPECT_TRUE(t.tombstoned(K1, D1));
  EXPECT_EQ(t.byte_size(), 8u + 20u);
  EXPECT_LT(t.byte_size(), with_entry);
}

}  // namespace
}  // namespace ahsw::overlay
