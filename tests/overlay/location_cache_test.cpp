// LocationCache unit semantics: TTL expiry, hot-threshold leasing,
// deterministic capacity eviction, access-count persistence across
// invalidations, and the CacheStats snapshot/delta discipline.
#include <gtest/gtest.h>

#include "overlay/location_cache.hpp"

namespace ahsw::overlay {
namespace {

std::vector<Provider> row(net::NodeAddress addr, std::uint32_t freq) {
  return {Provider{addr, freq, /*version=*/1}};
}

TEST(LocationCache, HitWithinTtlThenExpires) {
  CacheConfig cfg;
  cfg.ttl_ms = 400.0;
  LocationCache cache(cfg);

  EXPECT_EQ(cache.lookup(7, 0), nullptr);  // cold: miss
  EXPECT_FALSE(cache.insert(7, row(3, 10), /*index_node=*/99, /*now=*/0));

  const CachedRow* hit = cache.lookup(7, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->index_node, 99u);
  EXPECT_EQ(hit->inserted_at, 0);
  EXPECT_EQ(hit->expires_at, 400);
  EXPECT_FALSE(hit->leased);

  // The TTL horizon is exclusive: at expires_at the row no longer serves.
  EXPECT_EQ(cache.lookup(7, 400), nullptr);
  EXPECT_TRUE(cache.rows().empty());

  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(LocationCache, HotThresholdLeasesAndExtendsTtl) {
  CacheConfig cfg;
  cfg.ttl_ms = 100.0;
  cfg.hot_threshold = 3;
  cfg.hot_ttl_ms = 1000.0;
  LocationCache cache(cfg);

  // Two lookups (both misses) leave the key below the threshold.
  (void)cache.lookup(5, 0);
  (void)cache.lookup(5, 0);
  EXPECT_FALSE(cache.insert(5, row(1, 2), 0, /*now=*/0));
  EXPECT_FALSE(cache.rows().at(5).leased);
  EXPECT_EQ(cache.rows().at(5).expires_at, 100);

  // The third lookup crosses the threshold: the next insert is leased and
  // earns the hot TTL.
  (void)cache.lookup(5, 10);  // hit; access count now 3
  EXPECT_TRUE(cache.invalidate(5));
  EXPECT_TRUE(cache.insert(5, row(1, 2), 0, /*now=*/20));
  EXPECT_TRUE(cache.rows().at(5).leased);
  EXPECT_EQ(cache.rows().at(5).expires_at, 1020);
  EXPECT_EQ(cache.stats().leases, 1u);
}

TEST(LocationCache, AccessCountsPersistAcrossInvalidation) {
  CacheConfig cfg;
  cfg.hot_threshold = 2;
  LocationCache cache(cfg);

  (void)cache.lookup(9, 0);
  EXPECT_FALSE(cache.insert(9, row(2, 1), 0, 0));
  EXPECT_TRUE(cache.invalidate(9));
  EXPECT_EQ(cache.access_count(9), 1u);

  // Heat survived the invalidation: one more lookup reaches the threshold.
  (void)cache.lookup(9, 1);
  EXPECT_TRUE(cache.insert(9, row(2, 1), 0, 1));
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(LocationCache, EvictionDropsEarliestExpiryDeterministically) {
  CacheConfig cfg;
  cfg.ttl_ms = 100.0;
  cfg.max_rows = 2;
  LocationCache cache(cfg);

  (void)cache.insert(1, row(1, 1), 0, /*now=*/50);  // expires 150
  (void)cache.insert(2, row(2, 1), 0, /*now=*/10);  // expires 110  <- victim
  (void)cache.insert(3, row(3, 1), 0, /*now=*/30);  // expires 130
  EXPECT_EQ(cache.rows().size(), 2u);
  EXPECT_EQ(cache.rows().count(2), 0u);
  EXPECT_EQ(cache.rows().count(1), 1u);
  EXPECT_EQ(cache.rows().count(3), 1u);

  // Equal expiry: the smallest key loses (map order, no randomness).
  LocationCache tie(cfg);
  (void)tie.insert(8, row(1, 1), 0, 0);
  (void)tie.insert(4, row(2, 1), 0, 0);
  (void)tie.insert(6, row(3, 1), 0, 0);
  EXPECT_EQ(tie.rows().count(4), 0u);
  EXPECT_EQ(tie.rows().count(6), 1u);
  EXPECT_EQ(tie.rows().count(8), 1u);

  // Re-inserting a resident key is an overwrite, never an eviction.
  (void)cache.insert(1, row(9, 9), 0, /*now=*/60);
  EXPECT_EQ(cache.rows().size(), 2u);
  EXPECT_EQ(cache.rows().at(1).providers.front().frequency, 9u);
}

TEST(LocationCache, InvalidateProviderDropsEveryRowListingIt) {
  LocationCache cache;
  (void)cache.insert(1, row(7, 1), 0, 0);
  (void)cache.insert(2, {Provider{7, 1, 1}, Provider{8, 2, 1}}, 0, 0);
  (void)cache.insert(3, row(8, 1), 0, 0);

  EXPECT_EQ(cache.invalidate_provider(7), 2u);
  EXPECT_EQ(cache.rows().size(), 1u);
  EXPECT_EQ(cache.rows().count(3), 1u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.invalidate_provider(7), 0u);
}

TEST(LocationCache, ClearIsSilentAndStatsDeltaComposes) {
  LocationCache cache;
  (void)cache.lookup(1, 0);
  (void)cache.insert(1, row(1, 1), 0, 0);
  const CacheStats before = cache.stats();
  cache.clear();
  EXPECT_TRUE(cache.rows().empty());
  EXPECT_EQ(cache.stats().invalidations, before.invalidations);

  (void)cache.lookup(2, 0);  // miss after the snapshot
  CacheStats delta = cache.stats().delta_since(before);
  EXPECT_EQ(delta.misses, 1u);
  EXPECT_EQ(delta.insertions, 0u);

  CacheStats total = before;
  total.accumulate(delta);
  EXPECT_EQ(total.misses, cache.stats().misses);
  EXPECT_EQ(total.hits, cache.stats().hits);
}

}  // namespace
}  // namespace ahsw::overlay
