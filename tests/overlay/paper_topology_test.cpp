// Reproduction of the paper's Figs. 1 and 2: a 9-node network in a 4-bit
// identifier space — index nodes N1, N4, N7, N12, N15 on the Chord ring and
// four storage nodes D1..D4 attached to them — plus the two-level index
// lookup walk-through of Fig. 2 and the location-table forwarding example
// of Sect. III-B / Table I.
#include <gtest/gtest.h>

#include "overlay/overlay.hpp"

namespace ahsw::overlay {
namespace {

using rdf::Term;
using rdf::Triple;
using rdf::TriplePattern;
using rdf::Variable;

struct PaperNetwork {
  net::Network network;
  HybridOverlay overlay;
  chord::Key n1, n4, n7, n12, n15;
  net::NodeAddress d1, d2, d3, d4;

  PaperNetwork()
      : overlay(network, OverlayConfig{chord::RingConfig{4, 2}, 1, 99}) {
    n1 = overlay.add_index_node_with_id(1);
    n4 = overlay.add_index_node_with_id(4);
    n7 = overlay.add_index_node_with_id(7);
    n12 = overlay.add_index_node_with_id(12);
    n15 = overlay.add_index_node_with_id(15);
    overlay.ring().fix_all_fingers_oracle();
    d1 = overlay.add_storage_node_attached(n7);
    d2 = overlay.add_storage_node_attached(n12);
    d3 = overlay.add_storage_node_attached(n7);
    d4 = overlay.add_storage_node_attached(n15);
  }
};

TEST(PaperTopology, Fig1RingStructure) {
  PaperNetwork p;
  const chord::Ring& ring = p.overlay.ring();
  EXPECT_EQ(ring.size(), 5u);
  // Ring ordering: 1 -> 4 -> 7 -> 12 -> 15 -> 1.
  EXPECT_EQ(ring.state(1).successors.front(), 4u);
  EXPECT_EQ(ring.state(4).successors.front(), 7u);
  EXPECT_EQ(ring.state(7).successors.front(), 12u);
  EXPECT_EQ(ring.state(12).successors.front(), 15u);
  EXPECT_EQ(ring.state(15).successors.front(), 1u);
  EXPECT_EQ(ring.state(1).predecessor.value(), 15u);
}

TEST(PaperTopology, Fig1StorageAttachment) {
  PaperNetwork p;
  EXPECT_EQ(p.overlay.storage_nodes().at(p.d1).attached_index, p.n7);
  EXPECT_EQ(p.overlay.storage_nodes().at(p.d3).attached_index, p.n7);
  EXPECT_EQ(p.overlay.storage_nodes().at(p.d2).attached_index, p.n12);
  EXPECT_EQ(p.overlay.storage_nodes().at(p.d4).attached_index, p.n15);
  EXPECT_EQ(p.overlay.storage_nodes().size(), 4u);
}

TEST(PaperTopology, Fig1KeyOwnershipFollowsSuccessorRule) {
  PaperNetwork p;
  const chord::Ring& ring = p.overlay.ring();
  // Successor(k) owns k: key 5 -> N7, key 0 -> N1, key 13 -> N15,
  // key 15 -> N15, key 2 -> N4; wraparound: nothing above 15 in 4 bits.
  EXPECT_EQ(ring.oracle_successor(5), 7u);
  EXPECT_EQ(ring.oracle_successor(0), 1u);
  EXPECT_EQ(ring.oracle_successor(13), 15u);
  EXPECT_EQ(ring.oracle_successor(15), 15u);
  EXPECT_EQ(ring.oracle_successor(2), 4u);
  EXPECT_EQ(ring.oracle_successor(8), 12u);
}

TEST(PaperTopology, Fig2TwoLevelIndexWalkthrough) {
  // Fig. 2: a query <si, pi, ?o> hashes to Kj = Hash(si, pi); the ring maps
  // Kj to an index node; its location table maps Kj to D1, D3, D4.
  PaperNetwork p;
  Term si = Term::iri("http://example.org/si");
  Term pi = Term::iri("http://example.org/pi");

  // D1, D3 and D4 share triples with subject si and predicate pi (with the
  // Fig. 2 frequencies 10, 20, 15 realized as that many distinct objects).
  auto share = [&](net::NodeAddress node, int count, const std::string& tag) {
    std::vector<Triple> triples;
    for (int i = 0; i < count; ++i) {
      triples.push_back(
          {si, pi, Term::iri("http://example.org/o-" + tag + std::to_string(i))});
    }
    p.overlay.share_triples(node, triples, 0);
  };
  share(p.d1, 10, "d1");
  share(p.d3, 20, "d3");
  share(p.d4, 15, "d4");

  // The query initiator (any node; use D2) consults the index.
  TriplePattern pattern{si, pi, Variable{"o"}};
  HybridOverlay::Located loc = p.overlay.locate(p.d2, pattern, 0);
  ASSERT_TRUE(loc.ok);

  // Level 1: the owner is the ring successor of Hash(si, pi).
  chord::Key kj =
      p.overlay.ring().truncate(key_for_pattern(pattern)->key);
  EXPECT_EQ(loc.index_node, p.overlay.ring().oracle_successor(kj));

  // Level 2: the location table names exactly D1, D3, D4 with the
  // frequencies 10, 20, 15 — and lookup() returns them ascending.
  ASSERT_EQ(loc.providers.size(), 3u);
  EXPECT_EQ(loc.providers[0].address, p.d1);
  EXPECT_EQ(loc.providers[0].frequency, 10u);
  EXPECT_EQ(loc.providers[1].address, p.d4);
  EXPECT_EQ(loc.providers[1].frequency, 15u);
  EXPECT_EQ(loc.providers[2].address, p.d3);
  EXPECT_EQ(loc.providers[2].frequency, 20u);
}

TEST(PaperTopology, SectIIIBSingleProviderForwarding) {
  // Sect. III-B: a query (si, ?p, ?o) whose subject hash row lists only D1
  // must be answered by D1 alone (the K3 -> D1 (30) row of Table I).
  PaperNetwork p;
  Term s3 = Term::iri("http://example.org/s3");
  std::vector<Triple> triples;
  for (int i = 0; i < 30; ++i) {
    triples.push_back({s3, Term::iri("http://example.org/p" + std::to_string(i % 3)),
                       Term::integer(i)});
  }
  p.overlay.share_triples(p.d1, triples, 0);

  HybridOverlay::Located loc = p.overlay.locate(
      p.d2, TriplePattern{s3, Variable{"p"}, Variable{"o"}}, 0);
  ASSERT_TRUE(loc.ok);
  ASSERT_EQ(loc.providers.size(), 1u);
  EXPECT_EQ(loc.providers[0].address, p.d1);
  EXPECT_EQ(loc.providers[0].frequency, 30u);
}

TEST(PaperTopology, IndexNodeJoinTransfersSliceLikeSectIIIC) {
  PaperNetwork p;
  // Publish data so every index node holds some rows.
  std::vector<Triple> triples;
  for (int i = 0; i < 40; ++i) {
    triples.push_back({Term::iri("http://example.org/s" + std::to_string(i)),
                       Term::iri("http://example.org/p"),
                       Term::integer(i)});
  }
  p.overlay.share_triples(p.d1, triples, 0);

  std::size_t before = 0;
  for (const auto& [id, ix] : p.overlay.index_nodes()) {
    before += ix.table.entry_count();
  }
  // N9 joins between N7 and N12: it must take over exactly the keys in
  // (7, 9] from N12.
  chord::Key n9 = p.overlay.add_index_node_with_id(9);
  p.overlay.ring().fix_all_fingers_oracle();
  std::size_t after = 0;
  for (const auto& [id, ix] : p.overlay.index_nodes()) {
    after += ix.table.entry_count();
    for (const auto& [key, row] : ix.table.rows()) {
      EXPECT_EQ(p.overlay.ring().oracle_successor(
                    p.overlay.ring().truncate(key)),
                id);
    }
  }
  EXPECT_EQ(before, after);
  for (const auto& [key, row] : p.overlay.index_nodes().at(n9).table.rows()) {
    EXPECT_TRUE(chord::in_open_closed(p.overlay.ring().truncate(key), 7, 9));
  }
}

}  // namespace
}  // namespace ahsw::overlay
