#include <gtest/gtest.h>

#include "chord/ring.hpp"

namespace ahsw::chord {
namespace {

TEST(Interval, OpenClosedNoWrap) {
  EXPECT_TRUE(in_open_closed(5, 3, 7));
  EXPECT_TRUE(in_open_closed(7, 3, 7));   // hi inclusive
  EXPECT_FALSE(in_open_closed(3, 3, 7));  // lo exclusive
  EXPECT_FALSE(in_open_closed(8, 3, 7));
  EXPECT_FALSE(in_open_closed(2, 3, 7));
}

TEST(Interval, OpenClosedWraparound) {
  // (14, 2] in a ring: {15, 0, 1, 2}.
  EXPECT_TRUE(in_open_closed(15, 14, 2));
  EXPECT_TRUE(in_open_closed(0, 14, 2));
  EXPECT_TRUE(in_open_closed(2, 14, 2));
  EXPECT_FALSE(in_open_closed(14, 14, 2));
  EXPECT_FALSE(in_open_closed(3, 14, 2));
  EXPECT_FALSE(in_open_closed(7, 14, 2));
}

TEST(Interval, OpenClosedDegenerateIsFullRing) {
  // (n, n] covers the whole ring: the single-node case owns everything.
  EXPECT_TRUE(in_open_closed(0, 5, 5));
  EXPECT_TRUE(in_open_closed(5, 5, 5));
  EXPECT_TRUE(in_open_closed(1234, 5, 5));
}

TEST(Interval, OpenOpenNoWrap) {
  EXPECT_TRUE(in_open_open(5, 3, 7));
  EXPECT_FALSE(in_open_open(7, 3, 7));
  EXPECT_FALSE(in_open_open(3, 3, 7));
}

TEST(Interval, OpenOpenWraparound) {
  EXPECT_TRUE(in_open_open(15, 14, 2));
  EXPECT_TRUE(in_open_open(1, 14, 2));
  EXPECT_FALSE(in_open_open(2, 14, 2));
  EXPECT_FALSE(in_open_open(14, 14, 2));
}

TEST(Interval, OpenOpenDegenerateExcludesOnlyEndpoint) {
  EXPECT_FALSE(in_open_open(5, 5, 5));
  EXPECT_TRUE(in_open_open(6, 5, 5));
}

TEST(Interval, AdjacentKeysFormEmptyOpenOpen) {
  // (5, 6) contains nothing.
  EXPECT_FALSE(in_open_open(5, 5, 6));
  EXPECT_FALSE(in_open_open(6, 5, 6));
  EXPECT_TRUE(in_open_closed(6, 5, 6));
}

}  // namespace
}  // namespace ahsw::chord
