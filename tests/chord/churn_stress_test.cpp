// Randomized churn stress: long sequences of joins, graceful leaves and
// crashes with periodic repair. Invariants checked after every batch:
// ring-pointer consistency and lookup-vs-oracle agreement from every live
// node. This is the property backing Sect. III-C/III-D's claim that the
// ring "eventually recovers" from arbitrary membership change.
#include <gtest/gtest.h>

#include "check/audit.hpp"
#include "chord/ring.hpp"
#include "common/rng.hpp"

namespace ahsw::chord {
namespace {

class ChurnStress : public ::testing::TestWithParam<std::uint64_t> {};

/// AHSW_AUDIT=1 hook: run the invariant auditor over the ring and assert
/// nothing corrupt surfaced. `churned` selects the lenient severity model
/// for audits taken while membership events are still unrepaired.
void maybe_audit(const Ring& ring, const net::Network& net, bool churned,
                 const char* where) {
  if (!check::audit_enabled()) return;
  check::AuditOptions opt;
  opt.churned = churned;
  check::AuditReport rep;
  check::audit_ring(ring, net, rep, opt);
  ASSERT_TRUE(rep.clean()) << where << "\n" << rep.to_string();
}

TEST_P(ChurnStress, RingStaysConsistentUnderRandomChurn) {
  net::Network network;
  Ring ring(network, RingConfig{24, 4});
  common::Rng rng(GetParam());

  std::vector<Key> live;
  auto fresh_id = [&] {
    Key id = ring.truncate(rng.next());
    while (ring.contains(id)) id = ring.truncate(rng.next());
    return id;
  };

  // Bootstrap.
  live.push_back(ring.create(network.allocate_address(), fresh_id()));
  for (int i = 0; i < 24; ++i) {
    Key id = fresh_id();
    ring.join(network.allocate_address(), id, live.front(), 0);
    live.push_back(id);
  }
  ring.fix_all_fingers_oracle();

  for (int batch = 0; batch < 12; ++batch) {
    // A batch of random membership events.
    int failures_this_batch = 0;
    for (int ev = 0; ev < 4; ++ev) {
      double u = rng.uniform();
      if (u < 0.4 || live.size() < 8) {
        Key id = fresh_id();
        ring.join(network.allocate_address(), id, live.front(), 0);
        live.push_back(id);
        maybe_audit(ring, network, /*churned=*/true, "after join");
      } else if (u < 0.7) {
        std::size_t victim = 1 + rng.below(live.size() - 1);
        ring.leave(live[victim], 0);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
        maybe_audit(ring, network, /*churned=*/true, "after leave");
      } else if (failures_this_batch < 3) {
        // Cap concurrent crashes below the successor-list length so the
        // ring is guaranteed repairable.
        std::size_t victim = 1 + rng.below(live.size() - 1);
        ring.fail(live[victim]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
        ++failures_this_batch;
        maybe_audit(ring, network, /*churned=*/true, "after fail");
      }
    }
    ring.repair(0);
    ring.stabilize_all(0);
    // Repair + stabilization settles pointers again, so the strict
    // severity model applies: any remaining drift would be corrupt.
    maybe_audit(ring, network, /*churned=*/false, "after batch repair");
    // fix_fingers for a few random nodes (incremental maintenance, as the
    // protocol would do over time); oracle for the rest every few batches
    // to model convergence.
    for (int i = 0; i < 3 && !live.empty(); ++i) {
      Key node = live[rng.below(live.size())];
      if (ring.contains(node)) ring.fix_fingers(node, 0);
    }
    if (batch % 4 == 3) ring.fix_all_fingers_oracle();

    // Invariant 1: successor/predecessor pointers form the sorted ring.
    ASSERT_EQ(ring.size(), live.size());
    for (const auto& [id, n] : ring.nodes()) {
      ASSERT_FALSE(n.successors.empty());
      EXPECT_EQ(n.successors.front(),
                ring.oracle_successor(ring.truncate(id + 1)))
          << "batch " << batch;
    }
    // Invariant 2: lookups from random nodes agree with the oracle.
    for (int probe = 0; probe < 20; ++probe) {
      Key from = live[rng.below(live.size())];
      Key key = ring.truncate(rng.next());
      Ring::LookupResult r = ring.find_successor(from, key, 0);
      ASSERT_TRUE(r.ok) << "batch " << batch;
      EXPECT_EQ(r.owner, ring.oracle_successor(key)) << "batch " << batch;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnStress,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace ahsw::chord
