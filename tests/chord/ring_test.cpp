#include "chord/ring.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace ahsw::chord {
namespace {

/// Ring of `n` nodes with pseudo-random ids, oracle-converged fingers.
struct Fixture {
  net::Network network;
  Ring ring;

  explicit Fixture(int bits = 16, int successor_list = 4)
      : ring(network, RingConfig{bits, successor_list}) {}

  std::vector<Key> populate(std::size_t n, std::uint64_t seed = 1) {
    common::Rng rng(seed);
    std::vector<Key> ids;
    for (std::size_t i = 0; i < n; ++i) {
      Key id = ring.truncate(rng.next());
      while (ring.contains(id)) id = ring.truncate(rng.next());
      if (ring.size() == 0) {
        ring.create(network.allocate_address(), id);
      } else {
        ring.join(network.allocate_address(), id, ids.front(), 0);
      }
      ids.push_back(id);
    }
    ring.fix_all_fingers_oracle();
    return ids;
  }
};

TEST(Ring, CreateSingleNodeOwnsWholeRing) {
  Fixture f;
  Key id = f.ring.create(f.network.allocate_address(), 100);
  EXPECT_EQ(f.ring.size(), 1u);
  EXPECT_EQ(f.ring.oracle_successor(0), id);
  EXPECT_EQ(f.ring.oracle_successor(65535), id);
  Ring::LookupResult r = f.ring.find_successor(id, 42, 0);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.owner, id);
  EXPECT_EQ(r.hops, 0);
}

TEST(Ring, TruncateMasksToBits) {
  Fixture f(8);
  EXPECT_EQ(f.ring.truncate(0x1FF), 0xFFu);
  EXPECT_EQ(f.ring.truncate(0x100), 0u);
}

TEST(Ring, JoinSplicesNeighbors) {
  Fixture f(4);
  f.ring.create(f.network.allocate_address(), 1);
  f.ring.join(f.network.allocate_address(), 7, 1, 0);
  f.ring.join(f.network.allocate_address(), 12, 1, 0);
  ASSERT_EQ(f.ring.size(), 3u);
  EXPECT_EQ(f.ring.state(1).successors.front(), 7u);
  EXPECT_EQ(f.ring.state(7).successors.front(), 12u);
  EXPECT_EQ(f.ring.state(12).successors.front(), 1u);
  EXPECT_EQ(f.ring.state(1).predecessor.value(), 12u);
  EXPECT_EQ(f.ring.state(7).predecessor.value(), 1u);
}

TEST(Ring, LookupMatchesOracleEverywhere) {
  Fixture f;
  std::vector<Key> ids = f.populate(32);
  common::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    Key key = f.ring.truncate(rng.next());
    Key from = ids[rng.below(ids.size())];
    Ring::LookupResult r = f.ring.find_successor(from, key, 0);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.owner, f.ring.oracle_successor(key)) << "key=" << key;
  }
}

TEST(Ring, LookupHopsAreLogarithmic) {
  Fixture f(32);
  std::vector<Key> ids = f.populate(256);
  common::Rng rng(6);
  int total_hops = 0;
  const int lookups = 300;
  for (int i = 0; i < lookups; ++i) {
    Ring::LookupResult r = f.ring.find_successor(
        ids[rng.below(ids.size())], f.ring.truncate(rng.next()), 0);
    ASSERT_TRUE(r.ok);
    total_hops += r.hops;
    EXPECT_LE(r.hops, 2 * 8);  // 2*log2(256)
  }
  double avg = static_cast<double>(total_hops) / lookups;
  // Chord's expected (1/2) log2 N = 4; allow generous slack.
  EXPECT_LT(avg, 8.0);
  EXPECT_GT(avg, 1.0);
}

TEST(Ring, LookupChargesRoutingTraffic) {
  Fixture f;
  std::vector<Key> ids = f.populate(16);
  f.network.reset_stats();
  Ring::LookupResult r = f.ring.find_successor(ids[0], 12345, 0);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(f.network.stats().messages,
            static_cast<std::uint64_t>(r.hops) + 1);  // hops + answer
  EXPECT_GT(r.completed_at, 0.0);
}

TEST(Ring, JoinTransferHookReportsTakenRange) {
  Fixture f(8);
  f.ring.create(f.network.allocate_address(), 10);
  f.ring.join(f.network.allocate_address(), 200, 10, 0);

  Key hook_old = 0, hook_new = 0, hook_lo = 0, hook_hi = 0;
  f.ring.set_transfer_hook([&](Key o, Key n, Key lo, Key hi, net::SimTime) {
    hook_old = o;
    hook_new = n;
    hook_lo = lo;
    hook_hi = hi;
  });
  // 100 lands between 10 and 200: its successor was 200; after the join
  // node 100 takes (10, 100] from 200.
  f.ring.join(f.network.allocate_address(), 100, 10, 0);
  EXPECT_EQ(hook_old, 200u);
  EXPECT_EQ(hook_new, 100u);
  EXPECT_EQ(hook_lo, 10u);
  EXPECT_EQ(hook_hi, 100u);
}

TEST(Ring, GracefulLeaveHandsRangeToSuccessor) {
  Fixture f(8);
  f.ring.create(f.network.allocate_address(), 10);
  f.ring.join(f.network.allocate_address(), 100, 10, 0);
  f.ring.join(f.network.allocate_address(), 200, 10, 0);

  Key hook_old = 0, hook_new = 0;
  f.ring.set_transfer_hook([&](Key o, Key n, Key, Key, net::SimTime) {
    hook_old = o;
    hook_new = n;
  });
  f.ring.leave(100, 0);
  EXPECT_EQ(hook_old, 100u);
  EXPECT_EQ(hook_new, 200u);
  EXPECT_EQ(f.ring.size(), 2u);
  EXPECT_EQ(f.ring.state(10).successors.front(), 200u);
  EXPECT_EQ(f.ring.state(200).predecessor.value(), 10u);
}

TEST(Ring, LookupRoutesAroundFailedNode) {
  Fixture f;
  std::vector<Key> ids = f.populate(32);
  // Fail a node; lookups from others should still succeed via successor
  // lists, never returning the corpse.
  Key victim = ids[10];
  f.ring.fail(victim);
  common::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    Key from = ids[rng.below(ids.size())];
    if (from == victim) continue;
    Key key = f.ring.truncate(rng.next());
    Ring::LookupResult r = f.ring.find_successor(from, key, 0);
    ASSERT_TRUE(r.ok);
    EXPECT_NE(r.owner, victim);
  }
}

TEST(Ring, RepairRemovesFailedAndFiresFailover) {
  Fixture f;
  std::vector<Key> ids = f.populate(16);
  Key victim = ids[3];
  std::vector<std::pair<Key, Key>> failovers;
  f.ring.set_failover_hook([&](Key failed, Key succ, net::SimTime) {
    failovers.emplace_back(failed, succ);
  });
  f.ring.fail(victim);
  f.ring.repair(0);
  EXPECT_EQ(f.ring.size(), 15u);
  EXPECT_FALSE(f.ring.contains(victim));
  ASSERT_EQ(failovers.size(), 1u);
  EXPECT_EQ(failovers[0].first, victim);
  EXPECT_TRUE(f.ring.contains(failovers[0].second));
  // Ring is consistent again: successors point at live nodes.
  for (const auto& [id, n] : f.ring.nodes()) {
    EXPECT_TRUE(f.ring.contains(n.successors.front()));
  }
}

TEST(Ring, RepairSurvivesConsecutiveFailures) {
  Fixture f(16, 4);
  std::vector<Key> ids = f.populate(32);
  // Fail three consecutive nodes (within the successor-list budget).
  std::vector<Key> live = f.ring.live_ids();
  f.ring.fail(live[5]);
  f.ring.fail(live[6]);
  f.ring.fail(live[7]);
  f.ring.repair(0);
  EXPECT_EQ(f.ring.size(), 29u);
  // Lookups work from every survivor.
  common::Rng rng(8);
  for (Key from : f.ring.live_ids()) {
    Ring::LookupResult r =
        f.ring.find_successor(from, f.ring.truncate(rng.next()), 0);
    EXPECT_TRUE(r.ok);
  }
}

TEST(Ring, StabilizeAllKeepsConvergedRingConverged) {
  Fixture f;
  std::vector<Key> ids = f.populate(16);
  net::SimTime t = f.ring.stabilize_all(0);
  EXPECT_GT(t, 0.0);
  for (const auto& [id, n] : f.ring.nodes()) {
    EXPECT_EQ(n.successors.front(),
              f.ring.oracle_successor(f.ring.truncate(id + 1)));
  }
}

TEST(Ring, FixFingersConvergesToOracle) {
  Fixture f(12);
  std::vector<Key> ids = f.populate(24);
  // Scramble one node's fingers, then run the charged fix.
  Key node = ids[5];
  {
    // Point all fingers at the immediate successor: valid but slow.
    NodeState& st = f.ring.mutable_state(node);
    st.fingers.assign(st.fingers.size(), st.successors.front());
  }
  f.ring.fix_fingers(node, 0);
  const NodeState& st = f.ring.state(node);
  for (std::size_t i = 0; i < st.fingers.size(); ++i) {
    Key target = f.ring.truncate(node + (Key{1} << i));
    EXPECT_EQ(st.fingers[i], f.ring.oracle_successor(target)) << i;
  }
}

TEST(Ring, KeyForAddressIsDeterministicAndMasked) {
  Fixture f(10);
  EXPECT_EQ(f.ring.key_for_address(7), f.ring.key_for_address(7));
  EXPECT_LT(f.ring.key_for_address(7), Key{1} << 10);
}

TEST(Ring, LiveIdsExcludesFailed) {
  Fixture f;
  std::vector<Key> ids = f.populate(8);
  f.ring.fail(ids[2]);
  std::vector<Key> live = f.ring.live_ids();
  EXPECT_EQ(live.size(), 7u);
  EXPECT_EQ(std::count(live.begin(), live.end(), ids[2]), 0);
}

}  // namespace
}  // namespace ahsw::chord
