#include "rdfpeers/repository.hpp"

#include <algorithm>
#include <cassert>

#include "common/hash.hpp"
#include "net/wire.hpp"
#include "sparql/eval.hpp"

namespace ahsw::rdfpeers {

namespace {

constexpr std::size_t kControlBytes = 48;   // query id + pattern header
constexpr std::size_t kTripleOverhead = 16; // placement message framing

/// RDFPeers hashes attribute *values* with one globally known function.
[[nodiscard]] chord::Key value_hash(const rdf::Term& t) {
  return common::tagged_hash(0x42, t.to_string());
}

[[nodiscard]] std::size_t term_set_bytes(const std::set<rdf::Term>& terms) {
  std::size_t n = 8;
  for (const rdf::Term& t : terms) n += t.byte_size();
  return n;
}

}  // namespace

Repository::Repository(net::Network& network, RepositoryConfig config)
    : net_(&network),
      config_(config),
      ring_(network, config.ring),
      id_rng_(0xbeef) {}

chord::Key Repository::add_peer(net::SimTime now) {
  chord::Key id = ring_.truncate(id_rng_.next());
  while (ring_.contains(id)) id = ring_.truncate(id_rng_.next());
  net::NodeAddress addr = net_->allocate_address();
  if (ring_.size() == 0) {
    ring_.create(addr, id);
  } else {
    ring_.join(addr, id, ring_.live_ids().front(), now);
  }
  PeerState state;
  state.id = id;
  state.address = addr;
  peers_.emplace(id, std::move(state));
  return id;
}

chord::Key Repository::locality_hash(double v) const noexcept {
  double clamped = std::clamp(v, config_.numeric_min, config_.numeric_max);
  double fraction = (clamped - config_.numeric_min) /
                    (config_.numeric_max - config_.numeric_min);
  // Map through a 32-bit intermediate so that fraction == 1.0 cannot
  // overflow the 64-bit cast (double cannot represent 2^64 - 1 exactly).
  auto top = static_cast<chord::Key>(fraction * 4294967295.0);  // [0, 2^32)
  int bits = ring_.config().bits;
  chord::Key key = bits > 32 ? (top << (bits - 32)) : (top >> (32 - bits));
  return ring_.truncate(key);
}

std::optional<chord::Key> Repository::place(chord::Key from, chord::Key key,
                                            std::size_t bytes,
                                            net::SimTime& now, int& hops) {
  chord::Ring::LookupResult lr =
      ring_.find_successor(from, ring_.truncate(key), now);
  if (!lr.ok) return std::nullopt;
  hops += lr.hops;
  now = net_->send(peers_.at(from).address, lr.owner_address, bytes,
                   lr.completed_at, net::Category::kData);
  return lr.owner;
}

net::SimTime Repository::store_triple(chord::Key from, const rdf::Triple& t,
                                      net::SimTime now) {
  // Object values with numeric content use the locality-preserving hash so
  // that ranges map to ring segments; everything else hashes uniformly.
  double numeric = 0.0;
  chord::Key o_key = t.o.numeric_value(numeric) ? locality_hash(numeric)
                                                : value_hash(t.o);
  const chord::Key keys[3] = {value_hash(t.s), value_hash(t.p), o_key};
  net::SimTime latest = now;
  for (chord::Key key : keys) {
    net::SimTime branch = now;
    int hops = 0;
    std::optional<chord::Key> owner =
        place(from, key, t.byte_size() + kTripleOverhead, branch, hops);
    if (owner.has_value()) {
      peers_.at(*owner).store.insert(t);
      latest = std::max(latest, branch);
    }
  }
  return latest;
}

net::SimTime Repository::store_triples(chord::Key from,
                                       const std::vector<rdf::Triple>& triples,
                                       net::SimTime now) {
  net::SimTime latest = now;
  for (const rdf::Triple& t : triples) {
    latest = std::max(latest, store_triple(from, t, now));
  }
  return latest;
}

Repository::Resolution Repository::resolve_pattern(
    chord::Key from, const rdf::TriplePattern& p, net::SimTime now) {
  Resolution res;
  const rdf::Term* s = p.bound_s();
  const rdf::Term* pr = p.bound_p();
  const rdf::Term* o = p.bound_o();

  auto match_at = [&](chord::Key peer) {
    sparql::LocalEngine engine(peers_.at(peer).store);
    return engine.match_pattern(sparql::BgpPattern{p, nullptr});
  };

  if (s == nullptr && pr == nullptr && o == nullptr) {
    // Flood: every peer matches and replies (RDFPeers has no better plan
    // for the fully unbound pattern either).
    net::NodeAddress me = peers_.at(from).address;
    for (auto& [id, peer] : peers_) {
      if (net_->is_failed(peer.address)) continue;
      net::SimTime t = net_->send(me, peer.address, kControlBytes, now,
                                  net::Category::kQuery);
      sparql::SolutionSet local = match_at(id);
      t = net_->send(peer.address, me, net::wire::charged_bytes(local), t,
                     net::Category::kData, local.byte_size());
      res.solutions = sparql::deduplicated(
          sparql::set_union(res.solutions, local));
      res.completed_at = std::max(res.completed_at, t);
    }
    res.ok = true;
    return res;
  }

  // Route by the most selective bound attribute: subject, object, predicate.
  chord::Key key;
  if (s != nullptr) {
    key = value_hash(*s);
  } else if (o != nullptr) {
    double numeric = 0.0;
    key = o->numeric_value(numeric) ? locality_hash(numeric) : value_hash(*o);
  } else {
    key = value_hash(*pr);
  }
  chord::Ring::LookupResult lr =
      ring_.find_successor(from, ring_.truncate(key), now);
  if (!lr.ok) return res;
  res.hops = lr.hops;
  net::SimTime t = net_->send(peers_.at(from).address, lr.owner_address,
                              kControlBytes + p.byte_size(), lr.completed_at,
                              net::Category::kQuery);
  sparql::SolutionSet local = match_at(lr.owner);
  res.completed_at = net_->send(lr.owner_address, peers_.at(from).address,
                                net::wire::charged_bytes(local), t,
                                net::Category::kData, local.byte_size());
  res.solutions = sparql::deduplicated(std::move(local));
  res.ok = true;
  return res;
}

Repository::Resolution Repository::resolve_conjunctive(
    chord::Key from, const std::vector<rdf::TriplePattern>& ps,
    net::SimTime now) {
  Resolution res;
  assert(!ps.empty());
  const rdf::Variable* subject_var = rdf::var_of(ps.front().s);
  assert(subject_var != nullptr &&
         "conjunctive MAQ requires a shared subject variable");
  for (const rdf::TriplePattern& p : ps) {
    assert(rdf::var_of(p.s) != nullptr &&
           rdf::var_of(p.s)->name == subject_var->name);
    assert(p.bound_p() != nullptr && p.bound_o() != nullptr &&
           "conjunctive MAQ patterns must bind predicate and object");
    (void)p;  // asserts compile away under NDEBUG
  }

  // The candidate-subject set travels from owner to owner, intersected at
  // each step (Cai & Frank's recursive resolution).
  std::set<rdf::Term> candidates;
  net::NodeAddress prev_addr = peers_.at(from).address;
  chord::Key route_from = from;
  net::SimTime t = now;

  for (std::size_t i = 0; i < ps.size(); ++i) {
    const rdf::TriplePattern& p = ps[i];
    double numeric = 0.0;
    chord::Key key = p.bound_o()->numeric_value(numeric)
                         ? locality_hash(numeric)
                         : value_hash(*p.bound_o());
    chord::Ring::LookupResult lr =
        ring_.find_successor(route_from, ring_.truncate(key), t);
    if (!lr.ok) return res;
    res.hops += lr.hops;
    // Ship the query + current candidate set to the next owner.
    t = net_->send(prev_addr, lr.owner_address,
                   kControlBytes + p.byte_size() + term_set_bytes(candidates),
                   lr.completed_at, net::Category::kData);

    std::set<rdf::Term> local;
    peers_.at(lr.owner).store.match(p, [&](const rdf::Triple& triple) {
      local.insert(triple.s);
    });
    if (i == 0) {
      candidates = std::move(local);
    } else {
      std::set<rdf::Term> kept;
      std::set_intersection(candidates.begin(), candidates.end(),
                            local.begin(), local.end(),
                            std::inserter(kept, kept.begin()));
      candidates = std::move(kept);
    }
    prev_addr = lr.owner_address;
    route_from = lr.owner;
    if (candidates.empty()) break;  // intersection can only shrink
  }

  res.completed_at = net_->send(prev_addr, peers_.at(from).address,
                                term_set_bytes(candidates), t,
                                net::Category::kResult);
  for (const rdf::Term& subject : candidates) {
    sparql::Binding b;
    b.set(subject_var->name, subject);
    res.solutions.add(std::move(b));
  }
  res.ok = true;
  return res;
}

Repository::Resolution Repository::resolve_disjunctive(
    chord::Key from, const rdf::Term& predicate,
    const std::vector<rdf::Term>& alternatives, net::SimTime now) {
  Resolution res;
  res.ok = true;
  for (const rdf::Term& o : alternatives) {
    Resolution branch = resolve_pattern(
        from, rdf::TriplePattern{rdf::Variable{"s"}, predicate, o}, now);
    if (!branch.ok) {
      res.ok = false;
      continue;
    }
    res.hops += branch.hops;
    res.completed_at = std::max(res.completed_at, branch.completed_at);
    res.solutions = sparql::deduplicated(
        sparql::set_union(res.solutions, branch.solutions));
  }
  return res;
}

Repository::Resolution Repository::resolve_range(chord::Key from,
                                                 const rdf::Term& predicate,
                                                 double lo, double hi,
                                                 net::SimTime now) {
  Resolution res;
  if (lo > hi) {
    res.ok = true;
    res.completed_at = now;
    return res;
  }
  chord::Key lo_key = locality_hash(lo);
  chord::Key hi_key = locality_hash(hi);

  chord::Ring::LookupResult lr =
      ring_.find_successor(from, lo_key, now);
  if (!lr.ok) return res;
  res.hops = lr.hops;
  net::SimTime t = lr.completed_at;
  net::NodeAddress me = peers_.at(from).address;

  rdf::TriplePattern pattern{rdf::Variable{"s"}, predicate,
                             rdf::Variable{"o"}};
  const chord::Key start = lr.owner;
  chord::Key cur = start;
  net::NodeAddress prev_addr = me;
  // Walk the ring segment successor by successor (RDFPeers' range-ordering
  // walk); each visited peer reports its in-range matches to the requester.
  // The locality hash is monotone, so [lo_key, hi_key] never wraps: walk
  // forward until a peer's identifier reaches hi_key (its arc then covers
  // the segment end), a wrapped successor appears (no peer above lo_key:
  // the wrap owner covers the rest), or the walk closes the full circle.
  for (std::size_t guard = 0; guard < peers_.size(); ++guard) {
    t = net_->send(prev_addr, peers_.at(cur).address,
                   kControlBytes + pattern.byte_size(), t,
                   net::Category::kQuery);
    sparql::SolutionSet local;
    peers_.at(cur).store.match(pattern, [&](const rdf::Triple& triple) {
      double v = 0.0;
      if (triple.o.numeric_value(v) && v >= lo && v <= hi) {
        sparql::Binding b;
        b.set("s", triple.s);
        b.set("o", triple.o);
        local.add(std::move(b));
      }
    });
    net::SimTime reply =
        net_->send(peers_.at(cur).address, me,
                   net::wire::charged_bytes(local), t, net::Category::kData,
                   local.byte_size());
    res.completed_at = std::max(res.completed_at, reply);
    res.solutions = sparql::deduplicated(
        sparql::set_union(res.solutions, std::move(local)));
    ++res.hops;

    if (cur < lo_key) break;   // wrapped owner: covers everything above
    if (cur >= hi_key) break;  // this peer's arc reaches the segment end
    chord::Key next = ring_.oracle_successor(ring_.truncate(cur + 1));
    if (next == start) break;  // full circle: every peer visited
    prev_addr = peers_.at(cur).address;
    cur = next;
  }
  res.ok = true;
  res.completed_at = std::max(res.completed_at, t);
  return res;
}

std::vector<std::size_t> Repository::storage_loads() const {
  std::vector<std::size_t> out;
  out.reserve(peers_.size());
  for (const auto& [id, peer] : peers_) out.push_back(peer.store.size());
  return out;
}

}  // namespace ahsw::rdfpeers
