// RDFPeers baseline (Cai & Frank, WWW 2004) — the comparator the paper
// positions itself against (Sect. I/II).
//
// RDFPeers is a *storage* network: every shared triple is stored at three
// places on the Chord ring — the successors of Hash(s), Hash(p) and
// Hash(o) — so the data leaves its provider. Queries route to the node
// owning a bound attribute and match locally; conjunctive multi-attribute
// queries (triple patterns sharing one subject variable) resolve by the
// recursive candidate-subject intersection walk of the original paper, and
// numeric range queries use a locality-preserving hash over object values.
//
// Implemented on the same Chord ring and simulated network as the hybrid
// overlay, so `bench_baseline` can compare the two designs on identical
// workloads: placement traffic, per-node storage load, provider autonomy
// (what fraction of your data stays on your device) and query cost.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "chord/ring.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"
#include "rdf/store.hpp"
#include "sparql/solution.hpp"

namespace ahsw::rdfpeers {

struct RepositoryConfig {
  chord::RingConfig ring;
  /// Numeric object values in [numeric_min, numeric_max] map monotonically
  /// onto the identifier ring (RDFPeers' locality-preserving hashing),
  /// enabling range queries at the price of load skew.
  double numeric_min = 0.0;
  double numeric_max = 1000.0;
};

/// Per-ring-node storage state.
struct PeerState {
  chord::Key id = 0;
  net::NodeAddress address = net::kNoAddress;
  rdf::TripleStore store;  // triples this peer was assigned
};

class Repository {
 public:
  Repository(net::Network& network, RepositoryConfig config = {});

  /// Add a peer with a pseudo-random identifier; returns its ring id.
  chord::Key add_peer(net::SimTime now = 0);

  // -- data placement -----------------------------------------------------

  /// Store one triple at its three attribute successors (charged: each
  /// placement = ring lookup + full triple shipment). `from` is the
  /// publishing peer. Returns the completion time.
  net::SimTime store_triple(chord::Key from, const rdf::Triple& t,
                            net::SimTime now);
  net::SimTime store_triples(chord::Key from,
                             const std::vector<rdf::Triple>& triples,
                             net::SimTime now);

  // -- queries --------------------------------------------------------------

  struct Resolution {
    sparql::SolutionSet solutions;
    int hops = 0;                 // ring routing hops
    bool ok = false;
    net::SimTime completed_at = 0;
  };

  /// Resolve one triple pattern: route to the owner of the most selective
  /// bound attribute (s, then o, then p), match locally, return the
  /// mappings to the requester. A fully unbound pattern floods all peers.
  Resolution resolve_pattern(chord::Key from, const rdf::TriplePattern& p,
                             net::SimTime now);

  /// RDFPeers' conjunctive multi-attribute query: patterns of the form
  /// (?s, p_i, o_i) sharing one subject variable. The candidate subject set
  /// travels the ring: resolved against the owner of (p_1, o_1)'s object,
  /// then intersected at the owner of (p_2, o_2), ... Final candidates
  /// return to the requester.
  Resolution resolve_conjunctive(chord::Key from,
                                 const std::vector<rdf::TriplePattern>& ps,
                                 net::SimTime now);

  /// Disjunctive object query: (?s, p, o) for o in `alternatives`; each
  /// alternative routes to its own owner, results union at the requester.
  Resolution resolve_disjunctive(chord::Key from, const rdf::Term& predicate,
                                 const std::vector<rdf::Term>& alternatives,
                                 net::SimTime now);

  /// Numeric range query (?s, p, ?o) with lo <= o <= hi: walk the ring
  /// segment [locality_hash(lo), locality_hash(hi)] successor by successor,
  /// matching locally at each peer (the range-ordering walk of RDFPeers).
  Resolution resolve_range(chord::Key from, const rdf::Term& predicate,
                           double lo, double hi, net::SimTime now);

  // -- introspection -------------------------------------------------------

  /// Monotone map from a numeric value to a ring position.
  [[nodiscard]] chord::Key locality_hash(double v) const noexcept;

  [[nodiscard]] const std::map<chord::Key, PeerState>& peers() const noexcept {
    return peers_;
  }
  [[nodiscard]] chord::Ring& ring() noexcept { return ring_; }
  /// Triples stored per peer (the storage-load distribution RDFPeers pays).
  [[nodiscard]] std::vector<std::size_t> storage_loads() const;

 private:
  /// Place a payload at successor(key): lookup + shipment; returns owner.
  std::optional<chord::Key> place(chord::Key from, chord::Key key,
                                  std::size_t bytes, net::SimTime& now,
                                  int& hops);

  net::Network* net_;
  RepositoryConfig config_;
  chord::Ring ring_;
  std::map<chord::Key, PeerState> peers_;
  common::Rng id_rng_;
};

}  // namespace ahsw::rdfpeers
