#include "optimizer/rewriter.hpp"

#include <algorithm>

namespace ahsw::optimizer {

using sparql::Algebra;
using sparql::AlgebraKind;
using sparql::AlgebraPtr;
using sparql::Expr;
using sparql::ExprKind;
using sparql::ExprPtr;

std::vector<ExprPtr> split_conjuncts(const ExprPtr& e) {
  std::vector<ExprPtr> out;
  if (e == nullptr) return out;
  if (e->kind == ExprKind::kAnd) {
    for (const ExprPtr& arg : e->args) {
      std::vector<ExprPtr> sub = split_conjuncts(arg);
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }
  out.push_back(e);
  return out;
}

ExprPtr combine_conjuncts(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr acc = conjuncts.back();
  for (auto it = std::next(conjuncts.rbegin()); it != conjuncts.rend(); ++it) {
    acc = Expr::binary(ExprKind::kAnd, *it, acc);
  }
  return acc;
}

namespace {

[[nodiscard]] std::set<std::string> pattern_variables(
    const rdf::TriplePattern& p) {
  std::set<std::string> out;
  if (const rdf::Variable* v = rdf::var_of(p.s)) out.insert(v->name);
  if (const rdf::Variable* v = rdf::var_of(p.p)) out.insert(v->name);
  if (const rdf::Variable* v = rdf::var_of(p.o)) out.insert(v->name);
  return out;
}

[[nodiscard]] bool subset(const std::set<std::string>& needle,
                          const std::set<std::string>& haystack) {
  return std::includes(haystack.begin(), haystack.end(), needle.begin(),
                       needle.end());
}

/// Push `conjuncts` into `a` as far as safe; conditions that cannot sink
/// remain in `left_over`.
AlgebraPtr sink(const AlgebraPtr& a, std::vector<ExprPtr> conjuncts,
                std::vector<ExprPtr>& left_over);

/// Recurse without pending filters.
AlgebraPtr rewrite(const AlgebraPtr& a) {
  std::vector<ExprPtr> none;
  std::vector<ExprPtr> rest;
  AlgebraPtr out = sink(a, none, rest);
  // With no pending conjuncts nothing can be left over.
  return out;
}

AlgebraPtr sink(const AlgebraPtr& a, std::vector<ExprPtr> conjuncts,
                std::vector<ExprPtr>& left_over) {
  switch (a->kind) {
    case AlgebraKind::kFilter: {
      // Decompose and merge with whatever is already sinking.
      std::vector<ExprPtr> mine = split_conjuncts(a->expr);
      mine.insert(mine.end(), conjuncts.begin(), conjuncts.end());
      std::vector<ExprPtr> rest;
      AlgebraPtr inner = sink(a->left, std::move(mine), rest);
      ExprPtr remaining = combine_conjuncts(rest);
      return remaining == nullptr ? inner
                                  : Algebra::make_filter(remaining, inner);
    }

    case AlgebraKind::kBgp: {
      // Attach each conjunct to a triple pattern that binds all its
      // variables (certain within a BGP: every pattern always binds its
      // variables). Conditions spanning several patterns stay above.
      std::vector<sparql::BgpPattern> patterns = a->bgp;
      for (const ExprPtr& c : conjuncts) {
        std::set<std::string> cvars = sparql::variables_of(*c);
        bool placed = false;
        for (sparql::BgpPattern& p : patterns) {
          if (subset(cvars, pattern_variables(p.pattern))) {
            p.pushed_filter =
                p.pushed_filter == nullptr
                    ? c
                    : Expr::binary(ExprKind::kAnd, p.pushed_filter, c);
            placed = true;
            break;
          }
        }
        if (!placed) {
          std::set<std::string> all;
          for (const sparql::BgpPattern& p : patterns) {
            std::set<std::string> pv = pattern_variables(p.pattern);
            all.insert(pv.begin(), pv.end());
          }
          if (subset(cvars, all)) {
            // Keep directly above this BGP: re-emitted by caller.
            left_over.push_back(c);
          } else {
            left_over.push_back(c);
          }
        }
      }
      return Algebra::make_bgp2(std::move(patterns));
    }

    case AlgebraKind::kJoin: {
      std::set<std::string> lv = a->left->certain_variables();
      std::set<std::string> rv = a->right->certain_variables();
      std::vector<ExprPtr> to_left, to_right, here;
      for (const ExprPtr& c : conjuncts) {
        std::set<std::string> cvars = sparql::variables_of(*c);
        if (subset(cvars, lv)) {
          to_left.push_back(c);
        } else if (subset(cvars, rv)) {
          to_right.push_back(c);
        } else {
          here.push_back(c);
        }
      }
      std::vector<ExprPtr> rest_l, rest_r;
      AlgebraPtr l = sink(a->left, std::move(to_left), rest_l);
      AlgebraPtr r = sink(a->right, std::move(to_right), rest_r);
      AlgebraPtr out = Algebra::make_join(l, r);
      here.insert(here.end(), rest_l.begin(), rest_l.end());
      here.insert(here.end(), rest_r.begin(), rest_r.end());
      ExprPtr remaining = combine_conjuncts(here);
      return remaining == nullptr ? out : Algebra::make_filter(remaining, out);
    }

    case AlgebraKind::kLeftJoin: {
      // Only the left (mandatory) side may absorb filters: pushing into the
      // optional side would turn "no match" into "match rejected" and
      // change results. Conditions mentioning optional-only variables stay
      // above the LeftJoin.
      std::set<std::string> lv = a->left->certain_variables();
      std::vector<ExprPtr> to_left, here;
      for (const ExprPtr& c : conjuncts) {
        if (subset(sparql::variables_of(*c), lv)) {
          to_left.push_back(c);
        } else {
          here.push_back(c);
        }
      }
      std::vector<ExprPtr> rest_l;
      AlgebraPtr l = sink(a->left, std::move(to_left), rest_l);
      AlgebraPtr r = rewrite(a->right);
      AlgebraPtr out = Algebra::make_left_join(l, r, a->expr);
      here.insert(here.end(), rest_l.begin(), rest_l.end());
      ExprPtr remaining = combine_conjuncts(here);
      return remaining == nullptr ? out : Algebra::make_filter(remaining, out);
    }

    case AlgebraKind::kUnion: {
      // Filter distributes over Union: push a copy into each branch when
      // the branch binds the variables; otherwise keep above.
      std::set<std::string> lv = a->left->certain_variables();
      std::set<std::string> rv = a->right->certain_variables();
      std::vector<ExprPtr> to_both, here;
      for (const ExprPtr& c : conjuncts) {
        std::set<std::string> cvars = sparql::variables_of(*c);
        if (subset(cvars, lv) && subset(cvars, rv)) {
          to_both.push_back(c);
        } else {
          here.push_back(c);
        }
      }
      std::vector<ExprPtr> rest_l, rest_r;
      AlgebraPtr l = sink(a->left, to_both, rest_l);
      AlgebraPtr r = sink(a->right, to_both, rest_r);
      AlgebraPtr out = Algebra::make_union(l, r);
      // A conjunct that failed to sink in either branch must apply above;
      // emitting it once is enough (rest_l and rest_r would hold copies).
      for (const ExprPtr& c : rest_l) here.push_back(c);
      (void)rest_r;  // duplicates of rest_l by construction
      ExprPtr remaining = combine_conjuncts(here);
      return remaining == nullptr ? out : Algebra::make_filter(remaining, out);
    }

    default: {
      // Slice does not commute with filtering: keep conjuncts above it.
      if (a->kind == AlgebraKind::kSlice) {
        auto copy = std::make_shared<Algebra>(*a);
        copy->left = rewrite(a->left);
        AlgebraPtr out = copy;
        ExprPtr remaining = combine_conjuncts(conjuncts);
        return remaining == nullptr ? out
                                    : Algebra::make_filter(remaining, out);
      }
      // Other modifier nodes commute with filters: recurse into the child,
      // re-apply any conjuncts that could not sink.
      std::vector<ExprPtr> rest;
      AlgebraPtr child =
          a->left != nullptr ? sink(a->left, std::move(conjuncts), rest)
                             : nullptr;
      ExprPtr remaining = combine_conjuncts(rest);
      if (remaining != nullptr) {
        child = Algebra::make_filter(remaining, child);
      }
      auto copy = std::make_shared<Algebra>(*a);
      copy->left = child;
      if (a->right != nullptr) copy->right = rewrite(a->right);
      return copy;
    }
  }
}

}  // namespace

AlgebraPtr push_filters(const AlgebraPtr& a) { return rewrite(a); }

}  // namespace ahsw::optimizer
