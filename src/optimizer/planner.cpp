#include "optimizer/planner.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <string>

namespace ahsw::optimizer {

std::string_view primitive_strategy_name(PrimitiveStrategy s) noexcept {
  switch (s) {
    case PrimitiveStrategy::kBasic: return "basic";
    case PrimitiveStrategy::kChain: return "chain";
    case PrimitiveStrategy::kFrequencyChain: return "frequency-chain";
  }
  return "?";
}

std::string_view join_site_policy_name(JoinSitePolicy p) noexcept {
  switch (p) {
    case JoinSitePolicy::kMoveSmall: return "move-small";
    case JoinSitePolicy::kQuerySite: return "query-site";
    case JoinSitePolicy::kThirdSite: return "third-site";
  }
  return "?";
}

std::uint64_t PatternStats::estimated_cardinality() const noexcept {
  std::uint64_t n = 0;
  for (const overlay::Provider& p : providers) n += p.frequency;
  return n;
}

namespace {
[[nodiscard]] std::set<std::string> vars_of(const rdf::TriplePattern& p) {
  std::set<std::string> out;
  if (const rdf::Variable* v = rdf::var_of(p.s)) out.insert(v->name);
  if (const rdf::Variable* v = rdf::var_of(p.p)) out.insert(v->name);
  if (const rdf::Variable* v = rdf::var_of(p.o)) out.insert(v->name);
  return out;
}
}  // namespace

std::vector<std::size_t> order_join_patterns(
    const std::vector<PatternStats>& stats) {
  std::vector<std::size_t> order;
  std::vector<bool> placed(stats.size(), false);
  std::set<std::string> bound;

  for (std::size_t step = 0; step < stats.size(); ++step) {
    std::size_t best = stats.size();
    bool best_connected = false;
    std::uint64_t best_card = 0;
    for (std::size_t i = 0; i < stats.size(); ++i) {
      if (placed[i]) continue;
      std::set<std::string> pv = vars_of(stats[i].pattern);
      bool connected = bound.empty();
      for (const std::string& v : pv) {
        if (bound.count(v) > 0) {
          connected = true;
          break;
        }
      }
      std::uint64_t card = stats[i].estimated_cardinality();
      bool better;
      if (best == stats.size()) {
        better = true;
      } else if (connected != best_connected) {
        better = connected;  // connectivity beats cardinality
      } else {
        better = card < best_card;
      }
      if (better) {
        best = i;
        best_connected = connected;
        best_card = card;
      }
    }
    placed[best] = true;
    order.push_back(best);
    std::set<std::string> pv = vars_of(stats[best].pattern);
    bound.insert(pv.begin(), pv.end());
  }
  return order;
}

std::vector<overlay::Provider> chain_order(
    std::vector<overlay::Provider> providers, PrimitiveStrategy strategy) {
  if (strategy == PrimitiveStrategy::kFrequencyChain) {
    std::sort(providers.begin(), providers.end(),
              [](const overlay::Provider& a, const overlay::Provider& b) {
                if (a.frequency != b.frequency) {
                  return a.frequency < b.frequency;
                }
                return a.address < b.address;
              });
  } else {
    std::sort(providers.begin(), providers.end(),
              [](const overlay::Provider& a, const overlay::Provider& b) {
                return a.address < b.address;
              });
  }
  return providers;
}

std::vector<net::NodeAddress> provider_overlap(
    const std::vector<overlay::Provider>& a,
    const std::vector<overlay::Provider>& b) {
  std::set<net::NodeAddress> in_a;
  for (const overlay::Provider& p : a) in_a.insert(p.address);
  std::set<net::NodeAddress> out;
  for (const overlay::Provider& p : b) {
    if (in_a.count(p.address) > 0) out.insert(p.address);
  }
  return {out.begin(), out.end()};
}

net::NodeAddress choose_join_site(JoinSitePolicy policy,
                                  const LocatedOperand& a,
                                  const LocatedOperand& b,
                                  net::NodeAddress query_site,
                                  const std::vector<SiteCandidate>& candidates) {
  switch (policy) {
    case JoinSitePolicy::kQuerySite:
      return query_site;
    case JoinSitePolicy::kThirdSite: {
      if (!candidates.empty()) {
        const SiteCandidate* best = &candidates.front();
        for (const SiteCandidate& c : candidates) {
          if (c.capacity > best->capacity ||
              (c.capacity == best->capacity && c.address < best->address)) {
            best = &c;
          }
        }
        return best->address;
      }
      [[fallthrough]];
    }
    case JoinSitePolicy::kMoveSmall:
      // Ship the smaller operand: the join runs where the big data already
      // is (Cornell & Yu). Ties resolve to `a`'s site for determinism.
      return a.bytes >= b.bytes ? a.site : b.site;
  }
  return a.site;
}

std::vector<StrategyEstimate> estimate_primitive_strategies(
    const std::vector<overlay::Provider>& providers,
    const net::CostModel& cost, std::size_t row_bytes) {
  std::vector<StrategyEstimate> out;
  if (providers.empty()) return out;
  const double row = static_cast<double>(row_bytes);
  const double overhead = 64.0;

  std::vector<double> sizes;
  sizes.reserve(providers.size());
  double total = 0;
  double largest = 0;
  for (const overlay::Provider& p : providers) {
    sizes.push_back(static_cast<double>(p.frequency));
    total += sizes.back();
    largest = std::max(largest, sizes.back());
  }
  std::sort(sizes.begin(), sizes.end());

  // Basic (scatter/gather at the index node): every provider ships its
  // rows to the assembly site in parallel, the union ships once more to
  // the initiator. Latency follows the largest parallel branch.
  {
    StrategyEstimate e;
    e.strategy = PrimitiveStrategy::kBasic;
    e.bytes = total * row + static_cast<double>(providers.size()) * overhead +
              total * row;
    e.latency_ms = cost.latency(static_cast<std::size_t>(overhead)) +
                   cost.latency(static_cast<std::size_t>(largest * row)) +
                   cost.latency(static_cast<std::size_t>(total * row));
    out.push_back(e);
  }

  // Frequency chain: the accumulated union travels ascending-size hops
  // (prefix sums), then the full result returns from the largest provider.
  {
    StrategyEstimate e;
    e.strategy = PrimitiveStrategy::kFrequencyChain;
    double prefix = 0;
    e.latency_ms = cost.latency(static_cast<std::size_t>(overhead));
    for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
      prefix += sizes[i];
      e.bytes += prefix * row + overhead;
      e.latency_ms +=
          cost.latency(static_cast<std::size_t>(prefix * row + overhead));
    }
    e.bytes += total * row;  // final result to the initiator
    e.latency_ms += cost.latency(static_cast<std::size_t>(total * row));
    out.push_back(e);
  }
  return out;
}

PrimitiveStrategy choose_primitive_strategy(
    const std::vector<overlay::Provider>& providers,
    const net::CostModel& cost, const ObjectiveWeights& weights) {
  std::vector<StrategyEstimate> estimates =
      estimate_primitive_strategies(providers, cost);
  PrimitiveStrategy best = PrimitiveStrategy::kBasic;
  double best_score = std::numeric_limits<double>::infinity();
  for (const StrategyEstimate& e : estimates) {
    double s = e.score(weights);
    if (s < best_score) {
      best_score = s;
      best = e.strategy;
    }
  }
  return best;
}

}  // namespace ahsw::optimizer
