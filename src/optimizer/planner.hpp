// Global query optimization decisions (Sect. IV-C/D/E and Sect. II).
//
// Three families of decisions, all consumed by the distributed query
// processor (src/dqp):
//   1. chain ordering for one pattern's providers — the further-optimized
//      strategy of Sect. IV-C visits providers in ascending frequency with
//      the largest provider last;
//   2. join ordering for conjunction graph patterns — AND is associative
//      and commutative, so patterns evaluate in ascending estimated
//      cardinality, keeping the plan connected (no cartesian products)
//      whenever possible;
//   3. join-site selection — move-small / query-site / third-site (Cornell
//      & Yu; Ye et al.), applied to OPTIONAL and cross-index-node joins.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "overlay/location_table.hpp"
#include "rdf/triple.hpp"

namespace ahsw::optimizer {

/// How a primitive (single triple pattern) query is executed (Sect. IV-C).
enum class PrimitiveStrategy {
  kBasic,           // scatter/gather through the index node (assembly site)
  kChain,           // in-network aggregation along a provider chain
  kFrequencyChain,  // chain in ascending frequency, largest last -> initiator
};

/// Where a binary join/leftjoin/union of two located solution sets runs.
enum class JoinSitePolicy {
  kMoveSmall,  // ship the smaller operand to the larger operand's site
  kQuerySite,  // ship both operands to the query initiator
  kThirdSite,  // ship both to the highest-capacity candidate site (QoS)
};

[[nodiscard]] std::string_view primitive_strategy_name(
    PrimitiveStrategy s) noexcept;
[[nodiscard]] std::string_view join_site_policy_name(
    JoinSitePolicy p) noexcept;

/// Per-pattern statistics gathered from the two-level index.
struct PatternStats {
  rdf::TriplePattern pattern;
  std::vector<overlay::Provider> providers;  // ascending frequency

  /// Estimated result cardinality: the sum of provider frequencies (each
  /// frequency counts matching triples at that provider; Table I).
  [[nodiscard]] std::uint64_t estimated_cardinality() const noexcept;
};

/// Join order for a conjunction: indices into `stats`, cheapest first,
/// preferring patterns that share a variable with those already placed
/// (avoiding cartesian intermediates). Deterministic.
[[nodiscard]] std::vector<std::size_t> order_join_patterns(
    const std::vector<PatternStats>& stats);

/// Chain order for one pattern's providers under the given strategy:
/// kFrequencyChain sorts ascending by frequency (largest last, per
/// Sect. IV-C "further optimization"); others keep address order.
[[nodiscard]] std::vector<overlay::Provider> chain_order(
    std::vector<overlay::Provider> providers, PrimitiveStrategy strategy);

/// Storage nodes appearing in both provider lists (the overlap the
/// conjunction optimization of Sect. IV-D exploits), ascending address.
[[nodiscard]] std::vector<net::NodeAddress> provider_overlap(
    const std::vector<overlay::Provider>& a,
    const std::vector<overlay::Provider>& b);

/// One operand of a binary operation: where it currently sits and how big
/// it is on the wire.
struct LocatedOperand {
  net::NodeAddress site = net::kNoAddress;
  std::size_t bytes = 0;
};

/// Candidate execution site with its capacity (third-site input).
struct SiteCandidate {
  net::NodeAddress address = net::kNoAddress;
  double capacity = 1.0;
};

/// Pick the site for a binary operation over `a` and `b` issued by
/// `query_site`. kMoveSmall returns the site of the larger operand;
/// kQuerySite returns `query_site`; kThirdSite returns the highest-capacity
/// candidate (ties by address; falls back to kMoveSmall without candidates).
[[nodiscard]] net::NodeAddress choose_join_site(
    JoinSitePolicy policy, const LocatedOperand& a, const LocatedOperand& b,
    net::NodeAddress query_site, const std::vector<SiteCandidate>& candidates);

/// Objective weighting for adaptive strategy selection — the "mixture of
/// such objectives" the paper's Sect. V leaves as future work. Costs are
/// combined as traffic_weight * bytes + latency_weight * milliseconds.
struct ObjectiveWeights {
  double traffic_weight = 1.0;
  double latency_weight = 0.0;
};

/// Predicted cost of executing one primitive pattern under a strategy.
struct StrategyEstimate {
  PrimitiveStrategy strategy = PrimitiveStrategy::kBasic;
  double bytes = 0;
  double latency_ms = 0;

  [[nodiscard]] double score(const ObjectiveWeights& w) const noexcept {
    return w.traffic_weight * bytes + w.latency_weight * latency_ms;
  }
};

/// Estimate Basic / FrequencyChain costs for a provider list using the
/// location-table frequencies (each frequency ~ matching rows at that
/// provider; `row_bytes` is the assumed serialized row size).
[[nodiscard]] std::vector<StrategyEstimate> estimate_primitive_strategies(
    const std::vector<overlay::Provider>& providers,
    const net::CostModel& cost, std::size_t row_bytes = 48);

/// The strategy minimizing the weighted objective over the estimates
/// (deterministic tie-break: Basic first). This implements a per-pattern
/// answer to the paper's open "good query plans under mixed objectives"
/// question, using only information the index node already has.
[[nodiscard]] PrimitiveStrategy choose_primitive_strategy(
    const std::vector<overlay::Provider>& providers,
    const net::CostModel& cost, const ObjectiveWeights& weights);

}  // namespace ahsw::optimizer
