// Algebraic query rewriting (Sect. IV-G; Schmidt et al., ICDT 2010).
//
// The rewrites implemented here are the SPARQL-algebra equivalences the
// paper leans on for optimization:
//   - filter decomposition:  Filter(A && B, X) == Filter(A, Filter(B, X))
//   - filter pushing over Join/Union and into the safe side of LeftJoin
//   - filter-into-BGP pushing: a condition whose variables are all bound by
//     one triple pattern attaches to that pattern, so storage nodes apply
//     it during local matching and intermediate results shrink before they
//     ever cross the network (the Fig. 9 example: Filter(C1,
//     LeftJoin(BGP(P1 . P2), BGP(P3), true)) becomes
//     LeftJoin(BGP(Filter(C1, P1) . P2), BGP(P3), true)).
//
// All rewrites preserve SPARQL semantics; the equivalence tests in
// tests/optimizer/ check rewritten plans against unrewritten ones on
// randomized data.
#pragma once

#include <vector>

#include "sparql/algebra.hpp"

namespace ahsw::optimizer {

/// Split a condition into its top-level conjuncts: (A && B) && C -> A, B, C.
[[nodiscard]] std::vector<sparql::ExprPtr> split_conjuncts(
    const sparql::ExprPtr& e);

/// Recombine conjuncts into a right-deep && chain (empty -> nullptr).
[[nodiscard]] sparql::ExprPtr combine_conjuncts(
    const std::vector<sparql::ExprPtr>& conjuncts);

/// Apply filter decomposition + pushing through the whole tree. Returns a
/// semantically equivalent plan in which every filter sits as deep as is
/// safe, including inside BGPs as per-pattern pushed filters.
[[nodiscard]] sparql::AlgebraPtr push_filters(const sparql::AlgebraPtr& a);

}  // namespace ahsw::optimizer
