#include "net/network.hpp"

#include <cassert>

namespace ahsw::net {

std::string_view category_name(Category c) noexcept {
  switch (c) {
    case Category::kRouting: return "routing";
    case Category::kIndex: return "index";
    case Category::kQuery: return "query";
    case Category::kData: return "data";
    case Category::kResult: return "result";
  }
  // Exhaustiveness check: a new Category enumerator must be named above (and
  // kCategoryCount bumped), or exported stats would silently miscount under
  // "?". The switch has no default so -Wswitch flags the omission at compile
  // time; this assert catches corrupted/out-of-range values in debug runs.
  assert(false && "category_name: unnamed Category enumerator");
  return "?";
}

TrafficStats TrafficStats::delta_since(const TrafficStats& base) const {
  TrafficStats d;
  d.messages = messages - base.messages;
  d.bytes = bytes - base.bytes;
  d.raw_bytes = raw_bytes - base.raw_bytes;
  d.timeouts = timeouts - base.timeouts;
  for (int i = 0; i < kCategoryCount; ++i) {
    d.messages_by[i] = messages_by[i] - base.messages_by[i];
    d.bytes_by[i] = bytes_by[i] - base.bytes_by[i];
    d.timeouts_by[i] = timeouts_by[i] - base.timeouts_by[i];
  }
  return d;
}

void TrafficStats::accumulate(const TrafficStats& delta) noexcept {
  messages += delta.messages;
  bytes += delta.bytes;
  raw_bytes += delta.raw_bytes;
  timeouts += delta.timeouts;
  for (int i = 0; i < kCategoryCount; ++i) {
    messages_by[i] += delta.messages_by[i];
    bytes_by[i] += delta.bytes_by[i];
    timeouts_by[i] += delta.timeouts_by[i];
  }
}

SimTime Network::send(NodeAddress from, NodeAddress to, std::size_t bytes,
                      SimTime now, Category category, std::size_t raw_bytes) {
  if (from == to) return now;  // node-local: no network involved
  if (raw_bytes == 0) raw_bytes = bytes;  // no compressed encoding
  ++stats_.messages;
  stats_.bytes += bytes;
  stats_.raw_bytes += raw_bytes;
  auto c = static_cast<std::size_t>(category);
  ++stats_.messages_by[c];
  stats_.bytes_by[c] += bytes;
  SimTime arrival = now + model_.latency(bytes);
  if (tracer_) {
    tracer_(MessageEvent{from, to, bytes, raw_bytes, now, arrival, category});
  }
  return arrival;
}

SimTime Network::timeout(SimTime now, NodeAddress suspect, Category category) {
  ++stats_.timeouts;
  ++stats_.timeouts_by[static_cast<std::size_t>(category)];
  SimTime gave_up = now + model_.timeout_ms;
  if (timeout_tracer_) {
    timeout_tracer_(TimeoutEvent{suspect, category, now, gave_up});
  }
  return gave_up;
}

}  // namespace ahsw::net
