// Deterministic ready-queue for event-driven execution on top of the
// simulated network.
//
// The DAG executor (src/dqp/executor) runs many queries through one
// scheduler: an operator becomes *ready* when all of its inputs have
// produced their outputs, and fires at a simulated start time computed from
// those inputs' ready_at times. Ready events pop in (time, query, task)
// order — time first so the simulation advances monotonically per node,
// then query id and task id as total tie-breakers — which makes every run
// with the same inputs reproduce the same event order bit for bit. There is
// no wall-clock anywhere in the key, so replays are exact.
//
// Layout (rebuilt for bulk, see ROADMAP "scale the simulator itself"): a
// 4-ary indexed min-heap orders the *distinct timestamps* only; the events
// sharing one timestamp live in a per-timestamp bucket, itself a binary
// min-heap of packed (query, task) keys. Batch workloads cluster heavily
// on shared timestamps (same-epoch scatter legs, injection storms), so the
// expensive top-level heap moves happen once per timestamp while draining
// the co-timed events costs only small intra-bucket sifts on 8-byte keys —
// the O(1)-amortized bulk drain the 10k-query sweeps rely on. Bucket
// storage is recycled through a free list, so steady-state push/pop does
// not allocate.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"

namespace ahsw::net {

/// Query id reserved for injected (non-query) events — fault-schedule
/// entries merged into the same queue. The maximum id, so at equal sim time
/// an injected event sorts after every real query's tasks: a fault stamped
/// at time T affects work strictly after T, never work scheduled at T.
inline constexpr std::uint32_t kInjectionQueryId = 0xffffffffu;

/// One schedulable unit of work: task `task` of query `query` may start at
/// simulated time `at`.
struct ReadyEvent {
  SimTime at = 0;
  std::uint32_t query = 0;
  std::uint32_t task = 0;

  /// Strict weak ordering by (at, query, task): earlier time first, then
  /// lower query id, then lower task id. Total — no two distinct events of
  /// one run compare equal, so heap order is deterministic.
  [[nodiscard]] friend bool operator<(const ReadyEvent& a,
                                      const ReadyEvent& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    if (a.query != b.query) return a.query < b.query;
    return a.task < b.task;
  }
};

/// Min-queue of ready events popping in exact (at, query, task) order.
class EventQueue {
 public:
  void push(ReadyEvent e);

  /// Remove and return the smallest event. Precondition: !empty().
  ReadyEvent pop();

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// The smallest event without removing it. Precondition: !empty().
  [[nodiscard]] const ReadyEvent& top() const noexcept { return top_; }

 private:
  using BucketId = std::uint32_t;

  /// All events sharing one timestamp, as a binary min-heap of
  /// (query << 32) | task keys — the packed integer compares exactly like
  /// ReadyEvent's (query, task) tie-breakers, including kInjectionQueryId
  /// sorting after every real query.
  struct Bucket {
    SimTime at = 0;
    std::vector<std::uint64_t> heap;
  };

  [[nodiscard]] bool earlier(BucketId a, BucketId b) const noexcept {
    return buckets_[a].at < buckets_[b].at;
  }
  void sift_up_time(std::size_t pos) noexcept;
  void sift_down_time(std::size_t pos) noexcept;
  void refresh_top() noexcept;

  std::vector<BucketId> time_heap_;  // 4-ary min-heap over bucket ids
  std::vector<Bucket> buckets_;      // arena indexed by BucketId
  std::vector<BucketId> free_;       // recycled bucket slots
  // iteration-order: never iterated — point lookups/erases only, so hash
  // order cannot leak into the pop sequence. Keyed by the timestamp's bit
  // pattern (-0.0 normalized onto +0.0).
  std::unordered_map<std::uint64_t, BucketId> index_;
  std::size_t size_ = 0;
  ReadyEvent top_{};  // materialized minimum; valid while !empty()
};

}  // namespace ahsw::net
