// Deterministic ready-queue for event-driven execution on top of the
// simulated network.
//
// The DAG executor (src/dqp/executor) runs many queries through one
// scheduler: an operator becomes *ready* when all of its inputs have
// produced their outputs, and fires at a simulated start time computed from
// those inputs' ready_at times. Ready events pop in (time, query, task)
// order — time first so the simulation advances monotonically per node,
// then query id and task id as total tie-breakers — which makes every run
// with the same inputs reproduce the same event order bit for bit. There is
// no wall-clock anywhere in the key, so replays are exact.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"

namespace ahsw::net {

/// Query id reserved for injected (non-query) events — fault-schedule
/// entries merged into the same queue. The maximum id, so at equal sim time
/// an injected event sorts after every real query's tasks: a fault stamped
/// at time T affects work strictly after T, never work scheduled at T.
inline constexpr std::uint32_t kInjectionQueryId = 0xffffffffu;

/// One schedulable unit of work: task `task` of query `query` may start at
/// simulated time `at`.
struct ReadyEvent {
  SimTime at = 0;
  std::uint32_t query = 0;
  std::uint32_t task = 0;

  /// Strict weak ordering by (at, query, task): earlier time first, then
  /// lower query id, then lower task id. Total — no two distinct events of
  /// one run compare equal, so heap order is deterministic.
  [[nodiscard]] friend bool operator<(const ReadyEvent& a,
                                      const ReadyEvent& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    if (a.query != b.query) return a.query < b.query;
    return a.task < b.task;
  }
};

/// Min-heap of ready events. A thin wrapper over std::push_heap /
/// std::pop_heap rather than std::priority_queue so the element order is
/// pinned to ReadyEvent's own comparator and the storage stays inspectable
/// (tests assert pop sequences).
class EventQueue {
 public:
  void push(ReadyEvent e);

  /// Remove and return the smallest event. Precondition: !empty().
  ReadyEvent pop();

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// The smallest event without removing it. Precondition: !empty().
  [[nodiscard]] const ReadyEvent& top() const noexcept { return heap_.front(); }

 private:
  std::vector<ReadyEvent> heap_;  // max-heap on the inverted comparator
};

}  // namespace ahsw::net
