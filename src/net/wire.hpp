// Compressed wire format for solution-set and triple payloads.
//
// Every charged `data`/`result` message used to ship rows at their raw
// in-memory size (full lexical forms repeated per row). This codec is what
// the cost model charges instead: a dictionary-compressed encoding in the
// spirit of TriAD / Partout (see PAPERS.md), where each payload carries a
// term-dictionary delta once and rows reference terms by dense id.
//
//   payload := varint(nvars) var*            vars sorted ascending
//              varint(nterms) term*          terms sorted by Term ordering,
//                                            lexicals front-coded against
//                                            the previous term
//              varint(nrows) row*
//   term    := kind byte, varint(lcp), varint(suffix len), suffix,
//              varint(datatype len), datatype, varint(lang len), lang
//   row     := presence bitmap (ceil(nvars/8) bytes), then one dictionary
//              index per bound slot in var order: first absolute, the rest
//              zigzag deltas against the previous slot's index
//
// The triple payload is the same with an implicit 3-column schema (s, p, o).
//
// Both section orders are canonical (sorted vars, sorted terms, absolute
// per-row indexes), so the encoded *size* of a set depends only on its
// multiset of rows, never on row order. That invariant is what keeps the
// parallel batch driver and the vectorized/legacy A/B byte-identical: any
// execution that produces the same rows is charged the same bytes.
//
// `charged_bytes` is the accounting entry point: it memoizes the encoded
// size on the set (see SolutionSet's wire cache) because the distributed
// processor asks at every ship and chain hop. Encoder byte counters and
// size computations live only in this component (lint rule A2).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/triple.hpp"
#include "sparql/solution.hpp"

namespace ahsw::net::wire {

/// Encode `s` into the payload format above.
[[nodiscard]] std::string encode(const sparql::SolutionSet& s);

/// Decode a payload produced by `encode`, replacing `out`. Returns false on
/// malformed input (truncated varint, index out of range, ...).
[[nodiscard]] bool decode(std::string_view in, sparql::SolutionSet& out);

/// Encode a triple payload (CONSTRUCT/DESCRIBE graphs, store shipping).
[[nodiscard]] std::string encode(const std::vector<rdf::Triple>& triples);
[[nodiscard]] bool decode(std::string_view in,
                          std::vector<rdf::Triple>& out);

/// Encoded payload size of `s` (== encode(s).size()), computed fresh.
[[nodiscard]] std::size_t encoded_size(const sparql::SolutionSet& s);
[[nodiscard]] std::size_t encoded_size(const std::vector<rdf::Triple>& t);

/// What Network::send charges for shipping `s`: the encoded size, memoized
/// on the set and invalidated by any mutation. The raw (uncompressed) size
/// stays observable as SolutionSet::byte_size() and travels with every send
/// as its `raw_bytes` counterpart.
[[nodiscard]] std::size_t charged_bytes(const sparql::SolutionSet& s);

/// Raw (uncompressed) size of a triple payload, for raw-byte accounting.
[[nodiscard]] std::size_t raw_bytes(const std::vector<rdf::Triple>& t);

}  // namespace ahsw::net::wire
