#include "net/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace ahsw::net {

namespace {

/// std::*_heap builds a max-heap, so invert: the "largest" element under
/// this comparator is the smallest ReadyEvent.
[[nodiscard]] bool later(const ReadyEvent& a, const ReadyEvent& b) noexcept {
  return b < a;
}

}  // namespace

void EventQueue::push(ReadyEvent e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), later);
}

ReadyEvent EventQueue::pop() {
  assert(!heap_.empty() && "pop() on an empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), later);
  ReadyEvent e = heap_.back();
  heap_.pop_back();
  return e;
}

}  // namespace ahsw::net
