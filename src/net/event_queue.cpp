#include "net/event_queue.hpp"

#include <cassert>
#include <cstring>

namespace ahsw::net {

namespace {

constexpr std::size_t kArity = 4;  // top-level heap over distinct timestamps

/// Stable hash key for a timestamp. -0.0 and +0.0 compare equal as
/// SimTimes, so they must map to one bucket; normalizing before taking the
/// bit pattern keeps the index consistent with `<` on SimTime.
[[nodiscard]] std::uint64_t time_key(SimTime at) noexcept {
  if (at == 0) at = 0;  // collapse -0.0 onto +0.0
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(at));
  std::memcpy(&bits, &at, sizeof(bits));
  return bits;
}

[[nodiscard]] std::uint64_t pack(std::uint32_t query,
                                 std::uint32_t task) noexcept {
  return (static_cast<std::uint64_t>(query) << 32) | task;
}

/// Binary min-heap push over packed (query, task) keys.
void bucket_push(std::vector<std::uint64_t>& h, std::uint64_t key) {
  h.push_back(key);
  std::size_t pos = h.size() - 1;
  while (pos > 0) {
    std::size_t parent = (pos - 1) / 2;
    if (h[parent] <= h[pos]) break;
    std::swap(h[parent], h[pos]);
    pos = parent;
  }
}

/// Binary min-heap pop; returns the smallest packed key.
std::uint64_t bucket_pop(std::vector<std::uint64_t>& h) {
  std::uint64_t out = h.front();
  h.front() = h.back();
  h.pop_back();
  std::size_t pos = 0;
  const std::size_t n = h.size();
  while (true) {
    std::size_t best = pos;
    std::size_t left = 2 * pos + 1;
    if (left < n && h[left] < h[best]) best = left;
    if (left + 1 < n && h[left + 1] < h[best]) best = left + 1;
    if (best == pos) break;
    std::swap(h[pos], h[best]);
    pos = best;
  }
  return out;
}

}  // namespace

void EventQueue::sift_up_time(std::size_t pos) noexcept {
  while (pos > 0) {
    std::size_t parent = (pos - 1) / kArity;
    if (!earlier(time_heap_[pos], time_heap_[parent])) break;
    std::swap(time_heap_[pos], time_heap_[parent]);
    pos = parent;
  }
}

void EventQueue::sift_down_time(std::size_t pos) noexcept {
  const std::size_t n = time_heap_.size();
  while (true) {
    std::size_t best = pos;
    const std::size_t first = kArity * pos + 1;
    const std::size_t last = first + kArity < n ? first + kArity : n;
    for (std::size_t c = first; c < last; ++c) {
      if (earlier(time_heap_[c], time_heap_[best])) best = c;
    }
    if (best == pos) break;
    std::swap(time_heap_[pos], time_heap_[best]);
    pos = best;
  }
}

void EventQueue::refresh_top() noexcept {
  const Bucket& b = buckets_[time_heap_.front()];
  top_ = ReadyEvent{b.at, static_cast<std::uint32_t>(b.heap.front() >> 32),
                    static_cast<std::uint32_t>(b.heap.front() & 0xffffffffu)};
}

void EventQueue::push(ReadyEvent e) {
  const std::uint64_t key = time_key(e.at);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bucket_push(buckets_[it->second].heap, pack(e.query, e.task));
  } else {
    BucketId id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
    } else {
      id = static_cast<BucketId>(buckets_.size());
      buckets_.emplace_back();
    }
    Bucket& b = buckets_[id];
    b.at = e.at;
    b.heap.clear();
    b.heap.push_back(pack(e.query, e.task));
    index_.emplace(key, id);
    time_heap_.push_back(id);
    sift_up_time(time_heap_.size() - 1);
  }
  if (size_ == 0 || e < top_) top_ = e;
  ++size_;
}

ReadyEvent EventQueue::pop() {
  assert(size_ > 0 && "pop() on an empty EventQueue");
  const ReadyEvent out = top_;
  const BucketId id = time_heap_.front();
  Bucket& b = buckets_[id];
  bucket_pop(b.heap);
  if (b.heap.empty()) {
    // Timestamp drained: one top-level heap move retires the whole bucket
    // (its vector keeps its capacity for reuse through the free list).
    index_.erase(time_key(b.at));
    free_.push_back(id);
    time_heap_.front() = time_heap_.back();
    time_heap_.pop_back();
    if (!time_heap_.empty()) sift_down_time(0);
  }
  --size_;
  if (size_ > 0) refresh_top();
  return out;
}

}  // namespace ahsw::net
