#include "net/wire.hpp"

#include <algorithm>
#include <cstdint>
#include <map>

#include "common/varint.hpp"

namespace ahsw::net::wire {

namespace {

using common::common_prefix;
using common::get_varint;
using common::put_varint;
using common::unzigzag;
using common::zigzag;

/// Sorted unique terms plus a term -> dictionary-index map. Sorting by
/// Term::operator<=> makes the section canonical: the same term multiset
/// always yields the same dictionary, whatever order rows arrived in.
struct Dictionary {
  std::vector<const rdf::Term*> terms;  // sorted, unique
  std::map<rdf::Term, std::uint32_t> index;

  void collect(const rdf::Term& t) { index.emplace(t, 0); }

  void seal() {
    terms.reserve(index.size());
    std::uint32_t id = 0;
    for (auto& [term, idx] : index) {
      idx = id++;
      terms.push_back(&term);
    }
  }

  [[nodiscard]] std::uint32_t id_of(const rdf::Term& t) const {
    return index.at(t);
  }
};

void encode_string(std::string& out, std::string_view s) {
  put_varint(out, s.size());
  out.append(s);
}

/// Front-coded dictionary section: kind, shared-prefix length against the
/// previous term's lexical, suffix, datatype, language tag.
void encode_dictionary(std::string& out, const Dictionary& dict) {
  put_varint(out, dict.terms.size());
  std::string_view prev;
  for (const rdf::Term* t : dict.terms) {
    out.push_back(static_cast<char>(t->kind()));
    const std::size_t lcp = common_prefix(prev, t->lexical());
    put_varint(out, lcp);
    encode_string(out, std::string_view(t->lexical()).substr(lcp));
    encode_string(out, t->datatype());
    encode_string(out, t->lang());
    prev = t->lexical();
  }
}

bool decode_string(std::string_view in, std::size_t& pos, std::string& out) {
  std::uint64_t len = 0;
  if (!get_varint(in, pos, len) || pos + len > in.size()) return false;
  out.assign(in.substr(pos, len));
  pos += len;
  return true;
}

rdf::Term make_term(rdf::TermKind kind, std::string lexical,
                    std::string datatype, std::string lang) {
  switch (kind) {
    case rdf::TermKind::kIri:
      return rdf::Term::iri(std::move(lexical));
    case rdf::TermKind::kBlank:
      return rdf::Term::blank(std::move(lexical));
    case rdf::TermKind::kLiteral:
      if (!lang.empty()) {
        return rdf::Term::lang_literal(std::move(lexical), std::move(lang));
      }
      if (!datatype.empty()) {
        return rdf::Term::typed_literal(std::move(lexical),
                                        std::move(datatype));
      }
      return rdf::Term::literal(std::move(lexical));
  }
  return {};
}

bool decode_dictionary(std::string_view in, std::size_t& pos,
                       std::vector<rdf::Term>& terms) {
  std::uint64_t nterms = 0;
  if (!get_varint(in, pos, nterms)) return false;
  terms.clear();
  terms.reserve(nterms);
  std::string prev;
  for (std::uint64_t i = 0; i < nterms; ++i) {
    if (pos >= in.size()) return false;
    const auto kind = static_cast<rdf::TermKind>(in[pos++]);
    std::uint64_t lcp = 0;
    if (!get_varint(in, pos, lcp) || lcp > prev.size()) return false;
    std::string suffix, datatype, lang;
    if (!decode_string(in, pos, suffix) ||
        !decode_string(in, pos, datatype) || !decode_string(in, pos, lang)) {
      return false;
    }
    std::string lexical = prev.substr(0, lcp) + suffix;
    prev = lexical;
    terms.push_back(
        make_term(kind, std::move(lexical), std::move(datatype),
                  std::move(lang)));
  }
  return true;
}

/// One row's bound dictionary indexes in var order: first absolute, the
/// rest zigzag deltas. Depends only on the row's own content.
void encode_row_ids(std::string& out, const std::vector<std::uint32_t>& ids) {
  bool first = true;
  std::uint32_t prev = 0;
  for (std::uint32_t id : ids) {
    if (first) {
      put_varint(out, id);
      first = false;
    } else {
      put_varint(out, zigzag(static_cast<std::int64_t>(id) -
                             static_cast<std::int64_t>(prev)));
    }
    prev = id;
  }
}

}  // namespace

std::string encode(const sparql::SolutionSet& s) {
  // Canonical schema: the sorted union of variables bound in any row.
  std::vector<std::string> vars = sparql::variables_of(s);
  Dictionary dict;
  for (const sparql::Binding& b : s.rows()) {
    for (const auto& [name, term] : b.slots()) dict.collect(term);
  }
  dict.seal();

  std::string out;
  put_varint(out, vars.size());
  for (const std::string& v : vars) encode_string(out, v);
  encode_dictionary(out, dict);

  put_varint(out, s.size());
  const std::size_t bitmap_bytes = (vars.size() + 7) / 8;
  std::vector<std::uint32_t> ids;
  for (const sparql::Binding& b : s.rows()) {
    std::string bitmap(bitmap_bytes, '\0');
    ids.clear();
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (const rdf::Term* t = b.get(vars[i])) {
        bitmap[i / 8] = static_cast<char>(bitmap[i / 8] | (1 << (i % 8)));
        ids.push_back(dict.id_of(*t));
      }
    }
    out.append(bitmap);
    encode_row_ids(out, ids);
  }
  return out;
}

bool decode(std::string_view in, sparql::SolutionSet& out) {
  std::size_t pos = 0;
  std::uint64_t nvars = 0;
  if (!get_varint(in, pos, nvars)) return false;
  std::vector<std::string> vars(nvars);
  for (std::string& v : vars) {
    if (!decode_string(in, pos, v)) return false;
  }
  std::vector<rdf::Term> terms;
  if (!decode_dictionary(in, pos, terms)) return false;

  std::uint64_t nrows = 0;
  if (!get_varint(in, pos, nrows)) return false;
  const std::size_t bitmap_bytes = (nvars + 7) / 8;
  sparql::SolutionSet result;
  for (std::uint64_t r = 0; r < nrows; ++r) {
    if (pos + bitmap_bytes > in.size()) return false;
    std::string_view bitmap = in.substr(pos, bitmap_bytes);
    pos += bitmap_bytes;
    sparql::Binding b;
    std::int64_t prev = 0;
    bool first = true;
    for (std::uint64_t i = 0; i < nvars; ++i) {
      if ((static_cast<std::uint8_t>(bitmap[i / 8]) & (1 << (i % 8))) == 0) {
        continue;
      }
      std::uint64_t raw = 0;
      if (!get_varint(in, pos, raw)) return false;
      const std::int64_t id =
          first ? static_cast<std::int64_t>(raw) : prev + unzigzag(raw);
      first = false;
      prev = id;
      if (id < 0 || static_cast<std::uint64_t>(id) >= terms.size()) {
        return false;
      }
      b.set(vars[i], terms[static_cast<std::size_t>(id)]);
    }
    result.add(std::move(b));
  }
  out = std::move(result);
  return true;
}

std::string encode(const std::vector<rdf::Triple>& triples) {
  Dictionary dict;
  for (const rdf::Triple& t : triples) {
    dict.collect(t.s);
    dict.collect(t.p);
    dict.collect(t.o);
  }
  dict.seal();

  std::string out;
  encode_dictionary(out, dict);
  put_varint(out, triples.size());
  std::vector<std::uint32_t> ids(3);
  for (const rdf::Triple& t : triples) {
    ids[0] = dict.id_of(t.s);
    ids[1] = dict.id_of(t.p);
    ids[2] = dict.id_of(t.o);
    encode_row_ids(out, ids);
  }
  return out;
}

bool decode(std::string_view in, std::vector<rdf::Triple>& out) {
  std::size_t pos = 0;
  std::vector<rdf::Term> terms;
  if (!decode_dictionary(in, pos, terms)) return false;
  std::uint64_t ntriples = 0;
  if (!get_varint(in, pos, ntriples)) return false;
  std::vector<rdf::Triple> result;
  result.reserve(ntriples);
  for (std::uint64_t r = 0; r < ntriples; ++r) {
    rdf::Term* slots[3];
    rdf::Triple t;
    slots[0] = &t.s;
    slots[1] = &t.p;
    slots[2] = &t.o;
    std::int64_t prev = 0;
    for (int i = 0; i < 3; ++i) {
      std::uint64_t raw = 0;
      if (!get_varint(in, pos, raw)) return false;
      const std::int64_t id =
          i == 0 ? static_cast<std::int64_t>(raw) : prev + unzigzag(raw);
      prev = id;
      if (id < 0 || static_cast<std::uint64_t>(id) >= terms.size()) {
        return false;
      }
      *slots[i] = terms[static_cast<std::size_t>(id)];
    }
    result.push_back(std::move(t));
  }
  out = std::move(result);
  return true;
}

std::size_t encoded_size(const sparql::SolutionSet& s) {
  return encode(s).size();
}

std::size_t encoded_size(const std::vector<rdf::Triple>& t) {
  return encode(t).size();
}

std::size_t charged_bytes(const sparql::SolutionSet& s) {
  if (std::size_t cached = s.wire_cache(); cached != 0) return cached;
  const std::size_t n = encoded_size(s);
  s.set_wire_cache(n);
  return n;
}

std::size_t raw_bytes(const std::vector<rdf::Triple>& t) {
  std::size_t n = 0;
  for (const rdf::Triple& tr : t) n += tr.byte_size();
  return n;
}

}  // namespace ahsw::net::wire
