// Simulated message-passing substrate.
//
// The paper targets a real ad-hoc network of personal devices; we substitute
// a deterministic simulator (see DESIGN.md §3). Every inter-node interaction
// is charged to this Network: it accounts messages and bytes per traffic
// category and computes message latency from a cost model, so benchmarks can
// report exactly the two optimization criteria the paper names — total
// inter-site data transmission and response time.
//
// Response time uses explicit logical clocks: callers thread a SimTime
// through their interaction; sequential steps add latencies, parallel
// branches take the max at their merge point. There is no hidden global
// event loop, which keeps executions reproducible and easy to reason about.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>

namespace ahsw::net {

/// Logical node address; unique across index and storage nodes.
using NodeAddress = std::uint32_t;
inline constexpr NodeAddress kNoAddress = 0xffffffffu;

/// Simulated time in milliseconds.
using SimTime = double;

/// Traffic categories, so experiments can separate index-maintenance cost
/// from query cost (e.g. E2 vs E3 in DESIGN.md).
enum class Category : std::uint8_t {
  kRouting = 0,   // DHT lookup / stabilization traffic
  kIndex = 1,     // location-table publish / retract / slice transfer
  kQuery = 2,     // sub-query shipping (query text + plan metadata)
  kData = 3,      // intermediate solution sets / data shipping
  kResult = 4,    // final results returned to the query initiator
};
inline constexpr int kCategoryCount = 5;

[[nodiscard]] std::string_view category_name(Category c) noexcept;

/// Latency model: fixed per-message cost plus size-proportional cost.
struct CostModel {
  double per_message_ms = 2.0;   // propagation + protocol overhead per hop
  double per_byte_ms = 0.001;    // 1/bandwidth (1 MB/s ~ 0.001 ms/B)
  double timeout_ms = 200.0;     // failure detection penalty

  [[nodiscard]] double latency(std::size_t bytes) const noexcept {
    return per_message_ms + per_byte_ms * static_cast<double>(bytes);
  }
};

/// Aggregate traffic counters. `bytes` is what the cost model charged — the
/// wire (compressed) size for payloads shipped through net::wire —
/// `raw_bytes` the uncompressed counterpart, so the compression ratio is
/// observable wherever traffic is (docs/cost_model.md "Compressed wire
/// charging").
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t messages_by[kCategoryCount] = {};
  std::uint64_t bytes_by[kCategoryCount] = {};
  std::uint64_t timeouts = 0;
  /// Timeouts split by the traffic category of the interaction that hit the
  /// dead peer (routing probes vs. sub-query contacts), so failure-detection
  /// cost is attributable the same way transmission cost is.
  std::uint64_t timeouts_by[kCategoryCount] = {};

  [[nodiscard]] TrafficStats delta_since(const TrafficStats& base) const;

  /// Add another stats block (typically a per-query delta) into this one,
  /// aggregate and per-category counters alike. The one sanctioned way to
  /// roll per-query traffic into a report total (rule A2): hand-rolled
  /// `total.bytes += ...` sums silently drift when a counter is added here.
  void accumulate(const TrafficStats& delta) noexcept;
};

/// One charged message, as seen by a tracer. `bytes` is the charged (wire)
/// size; `raw_bytes` the uncompressed size of the same payload (== bytes
/// for messages with no compressed encoding).
struct MessageEvent {
  NodeAddress from = kNoAddress;
  NodeAddress to = kNoAddress;
  std::size_t bytes = 0;
  std::size_t raw_bytes = 0;
  SimTime sent_at = 0;
  SimTime arrives_at = 0;
  Category category = Category::kRouting;
};

/// One charged failure-detection timeout, as seen by a tracer. `suspect` is
/// the node the sender gave up on (kNoAddress when unknown); `category` is
/// the traffic category of the interaction that ran into the dead peer.
struct TimeoutEvent {
  NodeAddress suspect = kNoAddress;
  Category category = Category::kRouting;
  SimTime at = 0;          // when the sender started waiting
  SimTime gave_up_at = 0;  // at + timeout_ms: when it moved on
};

/// The simulated network: address allocation, failure injection, and the
/// charging of messages against the cost model.
class Network {
 public:
  explicit Network(CostModel model = {}) : model_(model) {}

  /// Allocate a fresh node address.
  [[nodiscard]] NodeAddress allocate_address() { return next_address_++; }

  /// Charge one message `from` -> `to` carrying `bytes` payload starting at
  /// `now`; returns its arrival time. A node-local interaction (from == to)
  /// is free. Sending to a failed node still transmits (and is charged) —
  /// callers discover the failure by timeout; see `timeout()`.
  ///
  /// `bytes` is the wire (charged) size; callers shipping payloads with a
  /// compressed encoding (net::wire) pass the uncompressed size as
  /// `raw_bytes` so both ends of the ratio are accounted. 0 (the default)
  /// means "no separate raw size": raw accounting then mirrors `bytes`.
  SimTime send(NodeAddress from, NodeAddress to, std::size_t bytes,
               SimTime now, Category category, std::size_t raw_bytes = 0);

  /// Charge a failure-detection timeout at `now`; returns when the sender
  /// gives up. Bumps the aggregate and per-category timeout counters and
  /// notifies the timeout tracer with the suspected-dead node, so observers
  /// see failure-detection cost the same way they see transmission cost.
  SimTime timeout(SimTime now, NodeAddress suspect = kNoAddress,
                  Category category = Category::kRouting);

  /// Mark a node as failed / recovered. Failed nodes never reply.
  void fail(NodeAddress n) { failed_.insert(n); }
  void recover(NodeAddress n) { failed_.erase(n); }
  [[nodiscard]] bool is_failed(NodeAddress n) const {
    return failed_.count(n) > 0;
  }

  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = TrafficStats{}; }
  /// Overwrite the aggregate counters with a snapshot taken earlier via
  /// `stats()`. The parallel batch driver uses this to re-apply recorded
  /// state actions on the master overlay without re-charging their traffic
  /// (the charges already live in the per-query reports).
  void restore_stats(const TrafficStats& stats) { stats_ = stats; }

  [[nodiscard]] const CostModel& cost_model() const noexcept { return model_; }

  /// Observe every charged message (node-local interactions are not
  /// messages and are not traced). Pass nullptr to detach. Used by tests to
  /// assert protocol message sequences and by tools for debugging.
  using Tracer = std::function<void(const MessageEvent&)>;
  void set_tracer(Tracer tracer) { tracer_ = std::move(tracer); }
  [[nodiscard]] const Tracer& tracer() const noexcept { return tracer_; }

  /// Observe every charged timeout (see `timeout()`). Pass nullptr to
  /// detach. Separate from the message tracer because a timeout is the
  /// *absence* of a message: it carries no bytes, only charged wait.
  using TimeoutTracer = std::function<void(const TimeoutEvent&)>;
  void set_timeout_tracer(TimeoutTracer tracer) {
    timeout_tracer_ = std::move(tracer);
  }
  [[nodiscard]] const TimeoutTracer& timeout_tracer() const noexcept {
    return timeout_tracer_;
  }

 private:
  CostModel model_;
  TrafficStats stats_;
  // iteration-order: never iterated — membership queries (is_failed) only.
  std::unordered_set<NodeAddress> failed_;
  NodeAddress next_address_ = 1;
  Tracer tracer_;
  TimeoutTracer timeout_tracer_;
};

}  // namespace ahsw::net
