// Chord distributed hash table (Stoica et al., SIGCOMM 2001).
//
// The paper's index nodes "self-organize and form a ring topology"; this
// module is that ring. Identifiers live in an m-bit space (m configurable so
// tests can reproduce the paper's 4-bit Fig. 1 example); each node keeps a
// finger table, a successor list and a predecessor pointer. Routing uses
// only per-node state — the global node map exists for ground-truth
// assertions and test setup, never for message forwarding decisions.
//
// All inter-node steps are charged to the simulated network so experiments
// can measure lookup hops, join cost and failure-repair cost.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/network.hpp"
#include "obs/trace.hpp"

namespace ahsw::chord {

using Key = std::uint64_t;

struct RingConfig {
  int bits = 64;                 // m: identifier space is [0, 2^m)
  int successor_list_length = 4; // r: tolerated consecutive failures
};

/// Per-node Chord state. Only this state (plus messages) is consulted when
/// routing on behalf of this node.
struct NodeState {
  Key id = 0;
  net::NodeAddress address = net::kNoAddress;
  std::optional<Key> predecessor;
  std::vector<Key> successors;  // [0] = immediate successor
  std::vector<Key> fingers;     // fingers[i] ~ successor(id + 2^i), size m
};

/// x in (lo, hi] on the ring (modular interval; empty ring => full circle).
[[nodiscard]] bool in_open_closed(Key x, Key lo, Key hi) noexcept;
/// x in (lo, hi) on the ring.
[[nodiscard]] bool in_open_open(Key x, Key lo, Key hi) noexcept;

class Ring {
 public:
  explicit Ring(net::Network& network, RingConfig config = {});

  // -- key space ------------------------------------------------------------

  /// Mask a 64-bit hash into the m-bit identifier space.
  [[nodiscard]] Key truncate(std::uint64_t h) const noexcept {
    return bits_ >= 64 ? h : (h & ((Key{1} << bits_) - 1));
  }

  /// Identifier derived from a node address (hashed, truncated).
  [[nodiscard]] Key key_for_address(net::NodeAddress addr) const noexcept;

  // -- membership -------------------------------------------------------------

  /// Bootstrap the very first ring node with an explicit identifier.
  Key create(net::NodeAddress address, Key id);

  struct JoinResult {
    Key id = 0;
    int lookup_hops = 0;
    net::SimTime completed_at = 0;
  };

  /// Join a new node via `bootstrap` (an existing ring node). Performs the
  /// successor lookup through the overlay (charged), splices neighbor
  /// pointers, builds the new node's fingers, and fires the transfer hook
  /// for the key range the new node takes over from its successor.
  JoinResult join(net::NodeAddress address, Key id, Key bootstrap,
                  net::SimTime now);

  /// Graceful departure: hands the departing node's key range to its
  /// successor (transfer hook) and splices neighbors.
  void leave(Key id, net::SimTime now);

  /// Abrupt failure: the node stops responding. State is kept until
  /// `repair()` so that routing realistically trips over the corpse.
  void fail(Key id);

  /// Remove failed nodes from neighbor state using successor lists, fix
  /// predecessor/successor pointers, and drop them from the ring. Fires the
  /// failover hook per failed node so the index layer can activate replicas.
  void repair(net::SimTime now);

  // -- lookup -------------------------------------------------------------------

  struct LookupResult {
    Key owner = 0;
    net::NodeAddress owner_address = net::kNoAddress;
    int hops = 0;           // forwarding steps taken
    bool ok = false;
    net::SimTime completed_at = 0;
  };

  /// Find successor(key): the ring node whose arc covers `key`. Iterative
  /// forwarding from `from_node` using fingers / successor lists only;
  /// failed next-hops cost a timeout and are routed around. With a trace
  /// attached, the whole lookup is one ring-route span (routing messages and
  /// dead-successor timeouts land in it).
  LookupResult find_successor(Key from_node, Key key, net::SimTime now);

  /// Attach the trace that find_successor records ring-route spans into
  /// (nullptr detaches). The ring never owns the trace.
  void set_trace(obs::QueryTrace* trace) noexcept { trace_ = trace; }

  /// Point this ring at another simulated network (same cost model). Used
  /// when a copied ring must charge its traffic to a worker-local network
  /// instead of the network its source was built on (overlay cloning).
  void rebind_network(net::Network& network) noexcept { net_ = &network; }

  // -- maintenance ------------------------------------------------------------

  /// Oracle finger construction for all nodes (free; used to bootstrap
  /// experiments at a known-good state, standing in for a long sequence of
  /// converged fix_fingers rounds).
  void fix_all_fingers_oracle();

  /// One charged fix_fingers pass for `id`: one lookup per finger.
  net::SimTime fix_fingers(Key id, net::SimTime now);

  /// One stabilization round for every live node: refresh successor,
  /// predecessor and successor lists (charged, one round-trip per edge).
  net::SimTime stabilize_all(net::SimTime now);

  // -- hooks ---------------------------------------------------------------------

  /// Called when `new_owner` takes over (range_lo, range_hi] from
  /// `old_owner` (index-node join: the location-table slice transfer of
  /// Sect. III-C; graceful leave: the takeover of Sect. III-D).
  using TransferHook = std::function<void(Key old_owner, Key new_owner,
                                          Key range_lo, Key range_hi,
                                          net::SimTime when)>;
  void set_transfer_hook(TransferHook hook) { transfer_ = std::move(hook); }

  /// Called from repair() when `successor` inherits the arc of `failed`
  /// without a transfer (crash: Sect. III-D replica activation).
  using FailoverHook =
      std::function<void(Key failed, Key successor, net::SimTime when)>;
  void set_failover_hook(FailoverHook hook) { failover_ = std::move(hook); }

  // -- introspection (ground truth for tests / experiment setup) -----------------

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] bool contains(Key id) const { return nodes_.count(id) > 0; }
  [[nodiscard]] const NodeState& state(Key id) const { return nodes_.at(id); }
  /// Mutable ground-truth state: a fault-injection hook for tests and the
  /// invariant auditor's seeded-corruption suite (tests/check). Production
  /// code routes every mutation through join/leave/fail/repair.
  [[nodiscard]] NodeState& mutable_state(Key id) { return nodes_.at(id); }
  [[nodiscard]] const std::map<Key, NodeState>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] net::NodeAddress address_of(Key id) const {
    return nodes_.at(id).address;
  }
  /// Ground-truth successor(key) from the sorted map (test oracle).
  [[nodiscard]] Key oracle_successor(Key key) const;
  /// Live ring nodes in id order.
  [[nodiscard]] std::vector<Key> live_ids() const;
  /// Lowest live node id (nullopt when every node is failed) — the
  /// allocation-free fast path for bootstrap and storage re-attachment,
  /// which only ever want live_ids().front().
  [[nodiscard]] std::optional<Key> first_live_id() const;
  [[nodiscard]] const RingConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] bool alive(Key id) const;
  /// First live entry of `n`'s successor list (charging timeouts for dead
  /// ones); nullopt if all dead.
  std::optional<Key> first_live_successor(const NodeState& n,
                                          net::SimTime& now);
  /// Closest preceding live finger of `key` from `n`'s tables.
  [[nodiscard]] Key closest_preceding(const NodeState& n, Key key) const;
  /// Rebuild the ground-truth successor list for a node (post-splice).
  void refresh_successor_list(NodeState& n);

  net::Network* net_;
  RingConfig config_;
  int bits_;
  std::map<Key, NodeState> nodes_;
  TransferHook transfer_;
  FailoverHook failover_;
  obs::QueryTrace* trace_ = nullptr;
};

}  // namespace ahsw::chord
