#include "chord/ring.hpp"

#include <algorithm>
#include <cassert>

#include "common/hash.hpp"

namespace ahsw::chord {

namespace {
/// Size charged for one routing/control message (query id, key, addresses).
constexpr std::size_t kControlBytes = 64;
}  // namespace

bool in_open_closed(Key x, Key lo, Key hi) noexcept {
  if (lo == hi) return true;  // (n, n] wraps the whole ring
  if (lo < hi) return x > lo && x <= hi;
  return x > lo || x <= hi;
}

bool in_open_open(Key x, Key lo, Key hi) noexcept {
  if (lo == hi) return x != lo;  // (n, n) = everything but n
  if (lo < hi) return x > lo && x < hi;
  return x > lo || x < hi;
}

Ring::Ring(net::Network& network, RingConfig config)
    : net_(&network), config_(config), bits_(config.bits) {
  assert(bits_ >= 1 && bits_ <= 64);
}

Key Ring::key_for_address(net::NodeAddress addr) const noexcept {
  return truncate(common::mix64(0x5eed0000ULL + addr));
}

bool Ring::alive(Key id) const {
  auto it = nodes_.find(id);
  return it != nodes_.end() && !net_->is_failed(it->second.address);
}

Key Ring::oracle_successor(Key key) const {
  assert(!nodes_.empty());
  auto it = nodes_.lower_bound(key);
  if (it == nodes_.end()) it = nodes_.begin();
  return it->first;
}

std::vector<Key> Ring::live_ids() const {
  std::vector<Key> out;
  out.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) {
    if (!net_->is_failed(n.address)) out.push_back(id);
  }
  return out;
}

std::optional<Key> Ring::first_live_id() const {
  for (const auto& [id, n] : nodes_) {
    if (!net_->is_failed(n.address)) return id;
  }
  return std::nullopt;
}

void Ring::refresh_successor_list(NodeState& n) {
  n.successors.clear();
  auto it = nodes_.upper_bound(n.id);
  for (int i = 0; i < config_.successor_list_length; ++i) {
    if (nodes_.size() <= 1) break;
    if (it == nodes_.end()) it = nodes_.begin();
    if (it->first == n.id) break;  // wrapped all the way around
    n.successors.push_back(it->first);
    ++it;
  }
  if (n.successors.empty()) n.successors.push_back(n.id);  // singleton ring
}

Key Ring::create(net::NodeAddress address, Key id) {
  id = truncate(id);
  assert(nodes_.empty());
  NodeState n;
  n.id = id;
  n.address = address;
  n.predecessor = id;
  n.successors = {id};
  n.fingers.assign(static_cast<std::size_t>(bits_), id);
  nodes_.emplace(id, std::move(n));
  return id;
}

std::optional<Key> Ring::first_live_successor(const NodeState& n,
                                              net::SimTime& now) {
  for (Key s : n.successors) {
    if (alive(s)) return s;
    // Probe the dead entry, give up, move on. The timeout is charged with
    // the suspect's address and routing category so observers and
    // per-category stats see the failure-detection cost (Sect. III-D).
    auto it = nodes_.find(s);
    net::NodeAddress suspect =
        it != nodes_.end() ? it->second.address : net::kNoAddress;
    now = net_->timeout(now, suspect, net::Category::kRouting);
  }
  return std::nullopt;
}

Key Ring::closest_preceding(const NodeState& n, Key key) const {
  // Highest live finger strictly between this node and the key; successor
  // list entries are candidates too (they are the low fingers, effectively).
  for (auto it = n.fingers.rbegin(); it != n.fingers.rend(); ++it) {
    if (in_open_open(*it, n.id, key) && alive(*it)) return *it;
  }
  for (auto it = n.successors.rbegin(); it != n.successors.rend(); ++it) {
    if (in_open_open(*it, n.id, key) && alive(*it)) return *it;
  }
  return n.id;
}

Ring::LookupResult Ring::find_successor(Key from_node, Key key,
                                        net::SimTime now) {
  LookupResult res;
  key = truncate(key);
  if (!alive(from_node)) return res;

  obs::SpanScope span(trace_, obs::SpanKind::kRingRoute,
                      "key " + std::to_string(key), now,
                      nodes_.at(from_node).address);

  const int max_hops = 4 * bits_ + 16;
  Key cur = from_node;
  for (int guard = 0; guard < max_hops; ++guard) {
    NodeState& n = nodes_.at(cur);
    std::optional<Key> succ = first_live_successor(n, now);
    if (!succ) return res;  // partitioned: every known successor is dead

    if (in_open_closed(key, cur, *succ)) {
      res.owner = *succ;
      res.owner_address = nodes_.at(*succ).address;
      res.hops = guard;
      res.ok = true;
      // The resolving node reports the answer back to the initiator.
      res.completed_at = net_->send(n.address, nodes_.at(from_node).address,
                                    kControlBytes, now, net::Category::kRouting);
      return res;
    }

    Key next = closest_preceding(n, key);
    if (next == cur) next = *succ;
    now = net_->send(n.address, nodes_.at(next).address, kControlBytes, now,
                     net::Category::kRouting);
    cur = next;
  }
  return res;  // routing loop guard tripped
}

Ring::JoinResult Ring::join(net::NodeAddress address, Key id, Key bootstrap,
                            net::SimTime now) {
  id = truncate(id);
  assert(!nodes_.empty());
  assert(nodes_.count(id) == 0 && "identifier collision");

  JoinResult jr;
  jr.id = id;

  // Ask the bootstrap node for successor(id).
  now = net_->send(net::kNoAddress, nodes_.at(bootstrap).address,
                   kControlBytes, now, net::Category::kRouting);
  LookupResult lr = find_successor(bootstrap, id, now);
  assert(lr.ok && "join lookup failed");
  now = lr.completed_at;
  jr.lookup_hops = lr.hops;

  Key succ = lr.owner;
  NodeState& s = nodes_.at(succ);
  Key pred = s.predecessor.value_or(succ);

  NodeState n;
  n.id = id;
  n.address = address;
  n.predecessor = pred;
  n.fingers.assign(static_cast<std::size_t>(bits_), succ);
  nodes_.emplace(id, std::move(n));

  // Splice neighbor pointers (the outcome an immediate stabilization round
  // would converge to).
  nodes_.at(succ).predecessor = id;
  if (pred != id && nodes_.count(pred) > 0) {
    refresh_successor_list(nodes_.at(pred));
  }
  refresh_successor_list(nodes_.at(id));
  now = net_->send(address, nodes_.at(succ).address, kControlBytes, now,
                   net::Category::kRouting);  // notify(successor)

  // The new node takes over (pred, id] from its successor: the paper's
  // location-table slice transfer (Sect. III-C) happens in this hook.
  if (transfer_) transfer_(succ, id, pred, id, now);

  // Build the new node's fingers with charged lookups; the common case
  // (finger target within the immediate successor arc) is answered locally.
  NodeState& self = nodes_.at(id);
  for (int i = 0; i < bits_; ++i) {
    Key target = truncate(id + (Key{1} << i));
    if (in_open_closed(target, id, self.successors.front())) {
      self.fingers[static_cast<std::size_t>(i)] = self.successors.front();
      continue;
    }
    // Skip the lookup if the previous finger already covers this target.
    if (i > 0) {
      Key prev = self.fingers[static_cast<std::size_t>(i - 1)];
      if (in_open_closed(target, id, prev)) {
        self.fingers[static_cast<std::size_t>(i)] = prev;
        continue;
      }
    }
    LookupResult f = find_successor(id, target, now);
    if (f.ok) {
      nodes_.at(id).fingers[static_cast<std::size_t>(i)] = f.owner;
      jr.lookup_hops += f.hops;
      now = f.completed_at;
    }
  }
  jr.completed_at = now;
  return jr;
}

void Ring::leave(Key id, net::SimTime now) {
  auto it = nodes_.find(id);
  assert(it != nodes_.end());
  NodeState& n = it->second;

  if (nodes_.size() == 1) {
    nodes_.erase(it);
    return;
  }

  Key succ = oracle_successor(truncate(id + 1));
  Key pred = n.predecessor.value_or(succ);

  // Graceful departure (Sect. III-D): successor takes over the key range
  // and the location table; neighbors are notified.
  now = net_->send(n.address, nodes_.at(succ).address, kControlBytes, now,
                   net::Category::kRouting);
  if (transfer_) transfer_(id, succ, pred, id, now);
  net_->send(n.address, nodes_.at(pred).address, kControlBytes, now,
             net::Category::kRouting);

  nodes_.at(succ).predecessor = pred;
  nodes_.erase(it);
  for (auto& [nid, state] : nodes_) refresh_successor_list(state);
}

void Ring::fail(Key id) {
  auto it = nodes_.find(id);
  assert(it != nodes_.end());
  net_->fail(it->second.address);
}

void Ring::repair(net::SimTime now) {
  std::vector<Key> failed;
  for (const auto& [id, n] : nodes_) {
    if (net_->is_failed(n.address)) failed.push_back(id);
  }
  if (failed.empty()) return;

  for (Key f : failed) {
    // The first live node after the failed one inherits its arc.
    Key succ = f;
    auto it = nodes_.upper_bound(f);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (it == nodes_.end()) it = nodes_.begin();
      if (!net_->is_failed(it->second.address)) {
        succ = it->first;
        break;
      }
      ++it;
    }
    if (succ != f && failover_) failover_(f, succ, now);
  }
  for (Key f : failed) nodes_.erase(f);

  // Every surviving node reconciles its neighbor state (one probe each).
  for (auto& [id, n] : nodes_) {
    refresh_successor_list(n);
    n.predecessor = std::nullopt;
    for (Key& finger : n.fingers) {
      if (nodes_.count(finger) == 0) {
        finger = n.successors.front();
      }
    }
    net_->send(n.address, nodes_.at(n.successors.front()).address,
               kControlBytes, now, net::Category::kRouting);
  }
  // Re-establish predecessors from ground truth (stabilization outcome).
  for (auto& [id, n] : nodes_) {
    nodes_.at(n.successors.front()).predecessor = id;
  }
  if (nodes_.size() == 1) {
    auto& only = nodes_.begin()->second;
    only.predecessor = only.id;
    only.successors = {only.id};
  }
}

void Ring::fix_all_fingers_oracle() {
  for (auto& [id, n] : nodes_) {
    n.fingers.assign(static_cast<std::size_t>(bits_), id);
    for (int i = 0; i < bits_; ++i) {
      n.fingers[static_cast<std::size_t>(i)] =
          oracle_successor(truncate(id + (Key{1} << i)));
    }
    refresh_successor_list(n);
    if (nodes_.size() > 1) {
      auto it = nodes_.find(id);
      n.predecessor =
          it == nodes_.begin() ? nodes_.rbegin()->first : std::prev(it)->first;
    }
  }
}

net::SimTime Ring::fix_fingers(Key id, net::SimTime now) {
  NodeState& self = nodes_.at(id);
  for (int i = 0; i < bits_; ++i) {
    Key target = truncate(id + (Key{1} << i));
    if (!self.successors.empty() &&
        in_open_closed(target, id, self.successors.front()) &&
        alive(self.successors.front())) {
      self.fingers[static_cast<std::size_t>(i)] = self.successors.front();
      continue;
    }
    LookupResult f = find_successor(id, target, now);
    if (f.ok) {
      nodes_.at(id).fingers[static_cast<std::size_t>(i)] = f.owner;
      now = f.completed_at;
    }
  }
  return now;
}

net::SimTime Ring::stabilize_all(net::SimTime now) {
  net::SimTime latest = now;
  for (auto& [id, n] : nodes_) {
    if (net_->is_failed(n.address)) continue;
    net::SimTime t = now;
    std::optional<Key> succ = first_live_successor(n, t);
    if (!succ) continue;
    // successor.predecessor round trip + notify.
    t = net_->send(n.address, nodes_.at(*succ).address, kControlBytes, t,
                   net::Category::kRouting);
    t = net_->send(nodes_.at(*succ).address, n.address, kControlBytes, t,
                   net::Category::kRouting);
    std::optional<Key> sp = nodes_.at(*succ).predecessor;
    if (sp && alive(*sp) && in_open_open(*sp, id, *succ)) {
      succ = *sp;
    }
    refresh_successor_list(n);
    t = net_->send(n.address, nodes_.at(*succ).address, kControlBytes, t,
                   net::Category::kRouting);
    nodes_.at(*succ).predecessor = id;
    latest = std::max(latest, t);
  }
  return latest;
}

}  // namespace ahsw::chord
