#include "fault/harness.hpp"

#include <algorithm>
#include <memory>

namespace ahsw::fault {

std::map<std::string, double> AvailabilityReport::to_extra() const {
  std::map<std::string, double> extra;
  extra["queries"] = static_cast<double>(queries);
  extra["success_rate"] = success_rate();
  extra["affected_queries"] = static_cast<double>(affected);
  extra["incomplete_queries"] = static_cast<double>(incomplete);
  extra["retries_per_query"] = retries_per_query();
  extra["relookups"] = static_cast<double>(relookup_count);
  extra["fault_timeouts"] = static_cast<double>(timeout_count);
  extra["convergence_ms"] = convergence_ms();
  return extra;
}

void FaultInjector::apply(const FaultEvent& e, net::SimTime at) {
  overlay::HybridOverlay& ov = *overlay_;
  switch (e.kind) {
    case FaultKind::kStorageFail:
      if (!ov.is_storage_node(e.storage) ||
          ov.network().is_failed(e.storage)) {
        ++log_.skipped;
        return;
      }
      ov.storage_node_fail(e.storage);
      break;
    case FaultKind::kIndexFail:
      if (ov.index_nodes().count(e.index) == 0 ||
          !ov.ring().contains(e.index) ||
          ov.network().is_failed(ov.ring().address_of(e.index))) {
        ++log_.skipped;
        return;
      }
      ov.index_node_fail(e.index);
      break;
    case FaultKind::kRecover:
      if (!ov.is_storage_node(e.storage) ||
          !ov.network().is_failed(e.storage)) {
        ++log_.skipped;
        return;
      }
      ov.network().recover(e.storage);
      break;
    case FaultKind::kRepair:
      ov.repair(at);
      break;
    case FaultKind::kRejoin:
      if (!ov.is_storage_node(e.storage)) {
        ++log_.skipped;
        return;
      }
      if (ov.network().is_failed(e.storage)) ov.network().recover(e.storage);
      ov.storage_node_rejoin(e.storage, at);
      break;
  }
  ++log_.applied;
}

std::vector<dqp::InjectedEvent> FaultInjector::injections() {
  std::vector<dqp::InjectedEvent> out;
  out.reserve(schedule_.events().size());
  for (const FaultEvent& e : schedule_.events()) {
    dqp::InjectedEvent inj;
    inj.at = e.at;
    inj.label = std::string(fault_kind_name(e.kind));
    inj.apply = [this, e](net::SimTime at) { apply(e, at); };
    out.push_back(std::move(inj));
  }
  return out;
}

AvailabilityReport availability_from_reports(
    const std::vector<dqp::ExecutionReport>& reports,
    const FaultSchedule& schedule) {
  AvailabilityReport avail;
  avail.first_fault_ms = schedule.first_fault_at();
  for (const dqp::ExecutionReport& rep : reports) {
    ++avail.queries;
    const bool was_affected = rep.dead_providers_skipped > 0;
    if (was_affected) {
      ++avail.affected;
      avail.last_affected_done_ms =
          std::max(avail.last_affected_done_ms, rep.response_time);
    }
    if (!rep.complete) ++avail.incomplete;
    if (!was_affected && rep.complete) ++avail.successful;
    avail.retry_count += static_cast<std::uint64_t>(rep.retries);
    avail.relookup_count += static_cast<std::uint64_t>(rep.relookups);
    avail.timeout_count += rep.traffic.timeouts;
  }
  return avail;
}

FaultRunResult run_with_faults(dqp::DistributedQueryProcessor& processor,
                               overlay::HybridOverlay& overlay,
                               const std::vector<dqp::BatchQuery>& batch,
                               const FaultSchedule& schedule,
                               const dqp::BatchOptions& opts) {
  FaultInjector injector(overlay, schedule);
  dqp::BatchOptions faulted = opts;
  faulted.injections = injector.injections();
  // Parallel driver support: each worker shard replays the same schedule on
  // its own cloned overlay through a clone-bound injector (kept alive by the
  // shared_ptr captured in every event). The master-bound `injections` above
  // are what the merge step replays, so `injector.log()` below reflects the
  // master application either way.
  faulted.injection_factory =
      [schedule](overlay::HybridOverlay& clone) -> std::vector<dqp::InjectedEvent> {
    auto shard_injector = std::make_shared<FaultInjector>(clone, schedule);
    std::vector<dqp::InjectedEvent> out = shard_injector->injections();
    for (dqp::InjectedEvent& e : out) {
      // injections() binds the raw injector; rebind each event so the
      // shared_ptr owns it for the clone's lifetime.
      auto apply = std::move(e.apply);
      e.apply = [shard_injector, apply](net::SimTime at) { apply(at); };
    }
    return out;
  };
  FaultRunResult out;
  out.batch = processor.execute_batch(batch, faulted);
  out.availability = availability_from_reports(out.batch.reports, schedule);
  out.injection_log = injector.log();
  return out;
}

void converge(overlay::HybridOverlay& overlay, net::SimTime now) {
  overlay.repair(now);
  overlay.ring().fix_all_fingers_oracle();
  overlay.purge_failed_everywhere();
}

}  // namespace ahsw::fault
