// The fault-injection harness: applies a FaultSchedule to a live system
// while a query batch runs, and distills availability metrics from the
// batch's execution reports.
//
// Determinism: the schedule is converted into dqp::InjectedEvents that the
// DAG executor merges into its (time, query, task)-ordered event queue
// under the reserved net::kInjectionQueryId. Fault visibility is therefore
// at *task boundaries*: a task whose fire internally advances sim time past
// an injected timestamp does not see that fault mid-fire; the next task
// popped at or after the timestamp does. That granularity is what makes the
// same (system, batch, schedule, seed) replay byte-identically.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dqp/processor.hpp"
#include "fault/schedule.hpp"
#include "overlay/overlay.hpp"

namespace ahsw::fault {

/// What the injector actually did. An event can be skipped when its target
/// does not exist or is already in the requested state (e.g. failing an
/// already-failed node) — skips are deterministic too.
struct InjectionLog {
  int applied = 0;
  int skipped = 0;
};

/// Availability metrics over one batch under faults. A query counts as
/// *affected* when it gave up on at least one provider (its result set may
/// silently miss that provider's rows); *successful* means unaffected and
/// complete. Retries that reach a recovered provider before exhausting the
/// policy keep a query unaffected — that is precisely what the retry knobs
/// buy.
struct AvailabilityReport {
  std::uint64_t queries = 0;
  std::uint64_t successful = 0;
  std::uint64_t affected = 0;        // dead_providers_skipped > 0
  std::uint64_t incomplete = 0;      // index rows unreachable
  std::uint64_t retry_count = 0;
  std::uint64_t relookup_count = 0;
  std::uint64_t timeout_count = 0;   // failure-detection timeouts charged
  net::SimTime first_fault_ms = 0;   // schedule's first fail event
  net::SimTime last_affected_done_ms = 0;  // latest affected completion

  [[nodiscard]] double success_rate() const noexcept {
    return queries == 0 ? 1.0
                        : static_cast<double>(successful) /
                              static_cast<double>(queries);
  }
  [[nodiscard]] double retries_per_query() const noexcept {
    return queries == 0 ? 0.0
                        : static_cast<double>(retry_count) /
                              static_cast<double>(queries);
  }
  /// Upper bound on the repair-convergence window: how long after the first
  /// failure queries were still paying for stale index state. 0 when no
  /// query was affected.
  [[nodiscard]] net::SimTime convergence_ms() const noexcept {
    return last_affected_done_ms > first_fault_ms
               ? last_affected_done_ms - first_fault_ms
               : 0;
  }
  /// The metrics as BenchRecord::extra entries.
  [[nodiscard]] std::map<std::string, double> to_extra() const;
};

/// Applies FaultEvents to an overlay. Stateless between events except for
/// the log; the conversion to InjectedEvents binds `this`, so the injector
/// must outlive the batch run (run_with_faults handles that).
class FaultInjector {
 public:
  FaultInjector(overlay::HybridOverlay& overlay, FaultSchedule schedule)
      : overlay_(&overlay), schedule_(std::move(schedule)) {}

  /// One InjectedEvent per schedule entry, in schedule order.
  [[nodiscard]] std::vector<dqp::InjectedEvent> injections();

  /// Apply one event now (used by the shell's immediate mode and tests).
  void apply(const FaultEvent& e, net::SimTime at);

  [[nodiscard]] const InjectionLog& log() const noexcept { return log_; }
  [[nodiscard]] const FaultSchedule& schedule() const noexcept {
    return schedule_;
  }

 private:
  overlay::HybridOverlay* overlay_;
  FaultSchedule schedule_;
  InjectionLog log_;
};

/// Everything one faulted batch run produces.
struct FaultRunResult {
  dqp::BatchResult batch;
  AvailabilityReport availability;
  InjectionLog injection_log;
};

/// Execute `batch` with `schedule` injected into its event queue, then
/// compute the availability report. `opts` is forwarded to execute_batch
/// (its own `injections` are replaced by the schedule's).
[[nodiscard]] FaultRunResult run_with_faults(
    dqp::DistributedQueryProcessor& processor,
    overlay::HybridOverlay& overlay, const std::vector<dqp::BatchQuery>& batch,
    const FaultSchedule& schedule, const dqp::BatchOptions& opts = {});

/// Distill the availability report from finished reports (exposed for
/// callers that run execute_batch themselves, e.g. the shell).
[[nodiscard]] AvailabilityReport availability_from_reports(
    const std::vector<dqp::ExecutionReport>& reports,
    const FaultSchedule& schedule);

/// Post-run convergence: overlay repair (replica promotion + ring fix-up),
/// oracle finger repair, and the oracle purge of every still-failed storage
/// address from every primary and replica row. After this, the system must
/// satisfy invariant I6 (no failed node in any row) — audit with
/// AuditOptions::converged = true.
void converge(overlay::HybridOverlay& overlay, net::SimTime now);

}  // namespace ahsw::fault
