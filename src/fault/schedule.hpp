// Deterministic fault schedules (the scripted side of the fault-injection
// harness).
//
// A FaultSchedule is a sim-timestamped sequence of membership events —
// storage/index failures, recoveries, repairs, rejoins — either scripted by
// hand (tests, the shell `inject` command) or generated from a seeded churn
// profile. The schedule itself performs nothing: src/fault/harness.cpp
// converts it into dqp::InjectedEvents that execute_batch() merges into its
// event queue, so faults interleave with query traffic in one deterministic
// (time, query, task) order. Same seed + same schedule => byte-identical
// runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "chord/ring.hpp"
#include "net/network.hpp"

namespace ahsw::fault {

enum class FaultKind : std::uint8_t {
  kStorageFail,  // crash a storage node (location rows go stale)
  kIndexFail,    // crash an index node (replicas mask the loss)
  kRecover,      // the network-level recovery of a storage node
  kRepair,       // overlay repair: ring fix-up + replica promotion
  kRejoin,       // recover (if needed) + republish the node's index entries
};

[[nodiscard]] std::string_view fault_kind_name(FaultKind k) noexcept;

/// One schedule entry. `storage` addresses storage-node events; `index`
/// names the ring id of an index-node event; kRepair uses neither.
struct FaultEvent {
  net::SimTime at = 0;
  FaultKind kind = FaultKind::kStorageFail;
  net::NodeAddress storage = net::kNoAddress;
  chord::Key index = 0;
};

/// Knobs of the seeded schedule generator: a churn process over a victim
/// set. All rates are per simulated second, all draws flow through
/// common::Rng, so a (profile, victims, seed) triple pins the schedule.
struct ChurnProfile {
  net::SimTime horizon_ms = 1000.0;  // events are stamped in [0, horizon)
  double fails_per_second = 4.0;     // expected storage failures per 1000 ms
  double recover_fraction = 0.75;    // failures followed by recover + rejoin
  net::SimTime recover_delay_ms = 120.0;  // fail -> recover gap
  net::SimTime repair_every_ms = 0;  // 0 = no periodic kRepair events
  // Index-node churn (replica-masked failures). 0 disables it, and the
  // index draws happen after every storage draw, so schedules generated
  // before this knob existed are byte-identical for the same seed.
  double index_fails_per_second = 0.0;
};

/// An ordered fault script. Events keep (time, insertion) order: builders
/// may append in any order and ties at one timestamp apply in the order
/// they were added.
class FaultSchedule {
 public:
  FaultSchedule& storage_fail(net::SimTime at, net::NodeAddress addr);
  FaultSchedule& index_fail(net::SimTime at, chord::Key id);
  FaultSchedule& recover(net::SimTime at, net::NodeAddress addr);
  FaultSchedule& repair(net::SimTime at);
  FaultSchedule& rejoin(net::SimTime at, net::NodeAddress addr);

  /// Seeded churn over `victims` (typically the live storage addresses):
  /// failure times are uniform over the horizon; a `recover_fraction` draw
  /// decides whether each failure is followed by recover + rejoin after
  /// `recover_delay_ms`; optional periodic repairs. Deterministic in
  /// (profile, victims, seed).
  [[nodiscard]] static FaultSchedule generate(
      const ChurnProfile& profile,
      const std::vector<net::NodeAddress>& victims, std::uint64_t seed);

  /// As above, plus index-node churn over `index_victims` (ring ids,
  /// typically the live index nodes) at `profile.index_fails_per_second`.
  /// All index draws come after the storage draws, so the storage half of
  /// the schedule matches the three-argument overload for the same seed.
  [[nodiscard]] static FaultSchedule generate(
      const ChurnProfile& profile,
      const std::vector<net::NodeAddress>& victims,
      const std::vector<chord::Key>& index_victims, std::uint64_t seed);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() { events_.clear(); }

  /// Earliest fail-event timestamp (0 when the schedule has no failures) —
  /// the availability report's convergence clock starts here.
  [[nodiscard]] net::SimTime first_fault_at() const noexcept;

  /// One "<at> <kind> <target>" line per event, for the shell and tests.
  [[nodiscard]] std::string to_string() const;

 private:
  void add(FaultEvent e);

  std::vector<FaultEvent> events_;  // sorted by at, stable in insertion
};

}  // namespace ahsw::fault
