#include "fault/schedule.hpp"

#include <algorithm>
#include <sstream>

#include "common/rng.hpp"

namespace ahsw::fault {

std::string_view fault_kind_name(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kStorageFail: return "storage-fail";
    case FaultKind::kIndexFail: return "index-fail";
    case FaultKind::kRecover: return "recover";
    case FaultKind::kRepair: return "repair";
    case FaultKind::kRejoin: return "rejoin";
  }
  return "?";
}

void FaultSchedule::add(FaultEvent e) {
  // Insert after every event with at <= e.at: the vector stays sorted by
  // time and stable in insertion order for ties.
  auto pos = std::upper_bound(
      events_.begin(), events_.end(), e,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  events_.insert(pos, e);
}

FaultSchedule& FaultSchedule::storage_fail(net::SimTime at,
                                           net::NodeAddress addr) {
  add(FaultEvent{at, FaultKind::kStorageFail, addr, 0});
  return *this;
}

FaultSchedule& FaultSchedule::index_fail(net::SimTime at, chord::Key id) {
  add(FaultEvent{at, FaultKind::kIndexFail, net::kNoAddress, id});
  return *this;
}

FaultSchedule& FaultSchedule::recover(net::SimTime at, net::NodeAddress addr) {
  add(FaultEvent{at, FaultKind::kRecover, addr, 0});
  return *this;
}

FaultSchedule& FaultSchedule::repair(net::SimTime at) {
  add(FaultEvent{at, FaultKind::kRepair, net::kNoAddress, 0});
  return *this;
}

FaultSchedule& FaultSchedule::rejoin(net::SimTime at, net::NodeAddress addr) {
  add(FaultEvent{at, FaultKind::kRejoin, addr, 0});
  return *this;
}

FaultSchedule FaultSchedule::generate(
    const ChurnProfile& profile, const std::vector<net::NodeAddress>& victims,
    std::uint64_t seed) {
  return generate(profile, victims, {}, seed);
}

FaultSchedule FaultSchedule::generate(
    const ChurnProfile& profile, const std::vector<net::NodeAddress>& victims,
    const std::vector<chord::Key>& index_victims, std::uint64_t seed) {
  FaultSchedule s;
  if ((victims.empty() && index_victims.empty()) || profile.horizon_ms <= 0) {
    return s;
  }
  common::Rng rng(seed);
  const double expected =
      profile.fails_per_second * profile.horizon_ms / 1000.0;
  const auto failures = victims.empty() ? 0 : static_cast<std::size_t>(expected);
  for (std::size_t i = 0; i < failures; ++i) {
    const net::SimTime at = profile.horizon_ms * rng.uniform();
    const net::NodeAddress victim =
        victims[static_cast<std::size_t>(rng.below(victims.size()))];
    s.storage_fail(at, victim);
    if (rng.chance(profile.recover_fraction)) {
      const net::SimTime back = at + profile.recover_delay_ms;
      s.recover(back, victim);
      s.rejoin(back, victim);
    }
  }
  // Index draws strictly after all storage draws: turning the knob on never
  // perturbs the storage half of a seeded schedule (see schedule_test.cpp).
  const double index_expected =
      profile.index_fails_per_second * profile.horizon_ms / 1000.0;
  const auto index_failures =
      index_victims.empty() ? 0 : static_cast<std::size_t>(index_expected);
  for (std::size_t i = 0; i < index_failures; ++i) {
    const net::SimTime at = profile.horizon_ms * rng.uniform();
    const chord::Key victim = index_victims[static_cast<std::size_t>(
        rng.below(index_victims.size()))];
    s.index_fail(at, victim);
  }
  if (profile.repair_every_ms > 0) {
    for (net::SimTime at = profile.repair_every_ms; at < profile.horizon_ms;
         at += profile.repair_every_ms) {
      s.repair(at);
    }
  }
  return s;
}

net::SimTime FaultSchedule::first_fault_at() const noexcept {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kStorageFail || e.kind == FaultKind::kIndexFail) {
      return e.at;
    }
  }
  return 0;
}

std::string FaultSchedule::to_string() const {
  std::ostringstream os;
  os.precision(3);
  os.setf(std::ios::fixed);
  for (const FaultEvent& e : events_) {
    os << e.at << " " << fault_kind_name(e.kind);
    switch (e.kind) {
      case FaultKind::kStorageFail:
      case FaultKind::kRecover:
      case FaultKind::kRejoin:
        os << " node " << e.storage;
        break;
      case FaultKind::kIndexFail:
        os << " index " << e.index;
        break;
      case FaultKind::kRepair:
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ahsw::fault
