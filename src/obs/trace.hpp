// Per-query trace spans with phase-attributed cost.
//
// The paper's two optimization criteria — total inter-site data transmission
// and response time (Sect. III-E, IV) — are only actionable when they can be
// attributed to the Fig. 3 workflow phases (index lookup -> sub-query ship
// -> local exec -> chain merge -> post-process). A QueryTrace is a tree of
// spans, one per phase and per strategy step, each carrying logical
// start/end time, message/byte counts with per-category breakdowns, timeout
// counts, and the node addresses involved.
//
// Attribution is driven by the network tracer: a bound QueryTrace observes
// every charged message and timeout and books it against the innermost open
// span (exactly one span per event, so summing self-counters over a span
// tree reproduces the query's TrafficStats delta). Span structure follows
// the processor's call structure via the RAII SpanScope recorder; with a
// null trace every scope is a no-op, so instrumented code pays nothing when
// observability is off.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/network.hpp"

namespace ahsw::obs {

using SpanId = std::uint32_t;
inline constexpr SpanId kNoSpan = 0xffffffffu;

/// What a span measures: one Fig. 3 workflow phase or one strategy step.
enum class SpanKind : std::uint8_t {
  kQuery = 0,      // root: one query end to end
  kPlan,           // parse + transform + global optimization (no traffic)
  kIndexLookup,    // two-level index consultation (Fig. 2)
  kRingRoute,      // Chord find_successor within a lookup
  kPattern,        // one triple pattern under one primitive strategy
  kSubQueryShip,   // shipping the sub-query (text + plan metadata)
  kLocalExec,      // per-provider local evaluation (scatter/gather)
  kChainHop,       // one provider visit of a chain (in-network merge)
  kShip,           // intermediate solution-set transfer
  kJoinSite,       // binary join/union executed at the selected site
  kPostProcess,    // final ship to the initiator + solution modifiers
  kTimeout,        // failure-detection wait on a dead peer (leaf)
  kRepair,         // lazy location-table repair (Sect. III-D)
  kRetry,          // one bounded re-dispatch after a dead-provider timeout
  kCache,          // location-row cache hit / miss / invalidation (leaf)
};
inline constexpr int kSpanKindCount = 15;

[[nodiscard]] std::string_view span_kind_name(SpanKind k) noexcept;

/// One node of the trace tree. Counters are *self* counters: every charged
/// event lands in exactly one span, so subtree totals are sums over spans.
struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  SpanKind kind = SpanKind::kQuery;
  std::string label;
  net::NodeAddress site = net::kNoAddress;  // primary node of this step
  net::SimTime begin = 0;
  net::SimTime end = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;      // charged (wire) bytes
  std::uint64_t raw_bytes = 0;  // uncompressed counterpart (see net::wire)
  std::uint64_t messages_by[net::kCategoryCount] = {};
  std::uint64_t bytes_by[net::kCategoryCount] = {};
  std::uint64_t timeouts = 0;
  std::uint64_t timeouts_by[net::kCategoryCount] = {};
  /// Every node address that sent or received inside this span (sorted).
  std::vector<net::NodeAddress> peers;
  std::vector<SpanId> children;
};

/// A span tree (a forest when several queries share one trace), fed by the
/// network's message and timeout tracers while bound.
class QueryTrace {
 public:
  QueryTrace() = default;
  ~QueryTrace();
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// Install this trace as the network's message + timeout tracer. A
  /// previously installed tracer keeps observing (events are forwarded), so
  /// test tracers and traces compose. Rebinding to the same network is a
  /// no-op; binding to another network unbinds first.
  void bind(net::Network& network);
  /// Restore the tracers that were installed before `bind`. Called by the
  /// destructor, so a stack-allocated trace cannot dangle.
  void unbind();
  [[nodiscard]] bool bound() const noexcept { return net_ != nullptr; }

  /// Open a span as a child of the innermost open span (a new root when no
  /// span is open). Returns its id. Prefer SpanScope over calling this
  /// directly.
  SpanId open(SpanKind kind, std::string label, net::SimTime at,
              net::NodeAddress site = net::kNoAddress);
  /// Close the innermost open span (must be `id`). The end time is the max
  /// of the begin time, `at`, and all activity observed inside the span.
  void close(SpanId id, net::SimTime at);

  /// Push an existing (closed) span back onto the attribution stack: new
  /// spans opened while it is active become its children and traffic lands
  /// in its self counters again. Close with `close(id, ...)` as usual. The
  /// DAG executor uses this to attach each operator firing under its query's
  /// root (or pattern) span even though firings of different queries
  /// interleave in event order.
  void reopen(SpanId id);

  /// Drop all recorded spans (the binding is kept). Lets one trace be
  /// reused across queries without accumulating a forest.
  void clear();

  /// Graft a closed subtree of `donor` into this trace as a new root,
  /// copying every span and remapping ids (children keep their relative
  /// order). Returns the new root's id in this trace. The parallel batch
  /// driver uses this to merge per-worker span forests onto the master
  /// trace in query-id order, so a merged forest renders exactly like the
  /// serial driver's. No span may be open here (`active() == kNoSpan`).
  SpanId adopt_subtree(const QueryTrace& donor, SpanId root);

  /// Fold `donor`'s unattributed counters into this trace's (spans are not
  /// copied; pair with adopt_subtree when merging whole traces).
  void absorb_unattributed(const QueryTrace& donor) noexcept;

  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const Span& span(SpanId id) const { return spans_.at(id); }
  [[nodiscard]] const std::vector<SpanId>& roots() const noexcept {
    return roots_;
  }
  [[nodiscard]] SpanId active() const noexcept {
    return stack_.empty() ? kNoSpan : stack_.back();
  }

  /// Totals over all spans' self counters. When one trace covers exactly
  /// one query these equal the query's TrafficStats delta (minus anything
  /// charged while no span was open — see unattributed_*).
  [[nodiscard]] std::uint64_t total_bytes() const noexcept;
  [[nodiscard]] std::uint64_t total_messages() const noexcept;
  [[nodiscard]] std::uint64_t total_timeouts() const noexcept;

  /// Subtree totals (self counters summed over `id` and its descendants).
  [[nodiscard]] std::uint64_t subtree_bytes(SpanId id) const;
  [[nodiscard]] std::uint64_t subtree_messages(SpanId id) const;
  [[nodiscard]] std::uint64_t subtree_timeouts(SpanId id) const;

  /// Events charged while the trace was bound but no span was open (e.g.
  /// setup traffic). Kept out of every span so span sums stay meaningful.
  [[nodiscard]] std::uint64_t unattributed_bytes() const noexcept {
    return unattributed_bytes_;
  }
  [[nodiscard]] std::uint64_t unattributed_raw_bytes() const noexcept {
    return unattributed_raw_bytes_;
  }
  [[nodiscard]] std::uint64_t unattributed_messages() const noexcept {
    return unattributed_messages_;
  }
  [[nodiscard]] std::uint64_t unattributed_timeouts() const noexcept {
    return unattributed_timeouts_;
  }

 private:
  void on_message(const net::MessageEvent& e);
  void on_timeout(const net::TimeoutEvent& e);
  void add_peer(Span& s, net::NodeAddress addr);

  std::vector<Span> spans_;
  std::vector<SpanId> stack_;
  std::vector<SpanId> roots_;
  net::Network* net_ = nullptr;
  net::Network::Tracer prev_tracer_;
  net::Network::TimeoutTracer prev_timeout_tracer_;
  std::uint64_t unattributed_bytes_ = 0;
  std::uint64_t unattributed_raw_bytes_ = 0;
  std::uint64_t unattributed_messages_ = 0;
  std::uint64_t unattributed_timeouts_ = 0;
};

/// RAII recorder: opens a span on construction, closes it on destruction.
/// With a null trace every operation is a no-op, so instrumentation sites
/// need no branching.
class SpanScope {
 public:
  SpanScope(QueryTrace* trace, SpanKind kind, std::string label,
            net::SimTime at, net::NodeAddress site = net::kNoAddress)
      : trace_(trace) {
    if (trace_ != nullptr) {
      id_ = trace_->open(kind, std::move(label), at, site);
    }
  }
  ~SpanScope() {
    if (trace_ != nullptr) trace_->close(id_, end_hint_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Record the logical completion time (folded into the span's end on
  /// close; activity observed later still extends it).
  void finish(net::SimTime at) { end_hint_ = at; }

  [[nodiscard]] SpanId id() const noexcept { return id_; }

 private:
  QueryTrace* trace_;
  SpanId id_ = kNoSpan;
  net::SimTime end_hint_ = 0;
};

}  // namespace ahsw::obs
