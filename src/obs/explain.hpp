// EXPLAIN-style rendering of a QueryTrace: a human-readable tree, one line
// per span, with per-phase cost (messages, bytes by category, timeouts) and
// logical time bounds. Consumed by the shell's `explain` command and
// appended to ExecutionReport::plan_notes for traced executions.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace ahsw::obs {

/// One line per span of the subtree rooted at `root`, depth-first, indented
/// two spaces per level. The root line also carries subtree totals.
[[nodiscard]] std::vector<std::string> explain_lines(const QueryTrace& trace,
                                                     SpanId root);

/// All roots of the trace, concatenated, newline-terminated.
[[nodiscard]] std::string explain(const QueryTrace& trace);

}  // namespace ahsw::obs
