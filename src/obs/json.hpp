// Machine-readable exporters: span trees and per-experiment benchmark
// results as JSON (hand-rolled writer — the container has no JSON library,
// and the schema is small and flat).
//
// Benchmarks record one BenchRecord per measured query (or per averaged
// batch) into the process-wide BenchSink; the sink writes
// `BENCH_<experiment>.json` on process exit. The schema is documented in
// docs/observability.md; per-phase byte totals in a record sum to the
// record's aggregate byte count, because every charged message lands in
// exactly one span.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "obs/trace.hpp"

namespace ahsw::obs {

/// The whole span forest as a JSON object {"spans": [...]}.
[[nodiscard]] std::string trace_to_json(const QueryTrace& trace);

/// Aggregate cost per phase (span kind), self counters summed over all
/// spans of that kind. Only kinds with at least one span appear.
struct PhaseCost {
  std::string phase;
  std::uint64_t spans = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t timeouts = 0;
};
[[nodiscard]] std::vector<PhaseCost> phase_rollup(const QueryTrace& trace);

/// One experiment data point: sweep-point name, aggregate traffic, response
/// time, and (when the execution was traced) the per-phase breakdown.
struct BenchRecord {
  std::string bench;  // e.g. "primitive/basic/providers=3/skew=0.5"
  net::TrafficStats traffic;
  double response_ms = 0;
  std::uint64_t queries = 1;  // >1 when traffic/response are batch means
  std::vector<PhaseCost> phases;
  /// Experiment-specific named metrics (e.g. the fault harness's
  /// availability numbers: success_rate, retries_per_query,
  /// convergence_ms). Emitted as an "extra" object when non-empty.
  std::map<std::string, double> extra;
};

/// Process-wide collector for BENCH_*.json. Records are keyed by their
/// sweep-point name (last write wins — the simulation is deterministic, so
/// repeated benchmark iterations produce identical records). The file is
/// written when the sink is destroyed at process exit, or on flush().
class BenchSink {
 public:
  static BenchSink& instance();
  ~BenchSink();
  BenchSink(const BenchSink&) = delete;
  BenchSink& operator=(const BenchSink&) = delete;

  void record(BenchRecord r);
  /// Override the output path (default: BENCH_<experiment>.json in the
  /// working directory, experiment derived from the binary name with its
  /// "bench_" prefix stripped; env AHSW_BENCH_JSON overrides).
  void set_output_path(std::string path);
  void write(std::ostream& os) const;
  void flush();

 private:
  BenchSink() = default;

  std::string path_;
  std::string experiment_;
  std::vector<std::string> order_;
  std::map<std::string, BenchRecord> records_;
};

}  // namespace ahsw::obs
