#include "obs/trace.hpp"

#include <algorithm>
#include <cassert>

namespace ahsw::obs {

std::string_view span_kind_name(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::kQuery: return "query";
    case SpanKind::kPlan: return "plan";
    case SpanKind::kIndexLookup: return "index-lookup";
    case SpanKind::kRingRoute: return "ring-route";
    case SpanKind::kPattern: return "pattern";
    case SpanKind::kSubQueryShip: return "subquery-ship";
    case SpanKind::kLocalExec: return "local-exec";
    case SpanKind::kChainHop: return "chain-hop";
    case SpanKind::kShip: return "ship";
    case SpanKind::kJoinSite: return "join-site";
    case SpanKind::kPostProcess: return "post-process";
    case SpanKind::kTimeout: return "timeout";
    case SpanKind::kRepair: return "repair";
    case SpanKind::kRetry: return "retry";
    case SpanKind::kCache: return "cache";
  }
  // Same exhaustiveness contract as net::category_name: a new SpanKind must
  // be named here or exported phase breakdowns would miscount under "?".
  assert(false && "span_kind_name: unnamed SpanKind enumerator");
  return "?";
}

QueryTrace::~QueryTrace() { unbind(); }

void QueryTrace::bind(net::Network& network) {
  if (net_ == &network) return;
  unbind();
  net_ = &network;
  prev_tracer_ = network.tracer();
  prev_timeout_tracer_ = network.timeout_tracer();
  network.set_tracer([this](const net::MessageEvent& e) {
    on_message(e);
    if (prev_tracer_) prev_tracer_(e);
  });
  network.set_timeout_tracer([this](const net::TimeoutEvent& e) {
    on_timeout(e);
    if (prev_timeout_tracer_) prev_timeout_tracer_(e);
  });
}

void QueryTrace::unbind() {
  if (net_ == nullptr) return;
  net_->set_tracer(prev_tracer_);
  net_->set_timeout_tracer(prev_timeout_tracer_);
  net_ = nullptr;
  prev_tracer_ = nullptr;
  prev_timeout_tracer_ = nullptr;
}

SpanId QueryTrace::open(SpanKind kind, std::string label, net::SimTime at,
                        net::NodeAddress site) {
  Span s;
  s.id = static_cast<SpanId>(spans_.size());
  s.parent = active();
  s.kind = kind;
  s.label = std::move(label);
  s.site = site;
  s.begin = at;
  s.end = at;
  if (s.parent == kNoSpan) {
    roots_.push_back(s.id);
  } else {
    spans_[s.parent].children.push_back(s.id);
  }
  SpanId id = s.id;
  spans_.push_back(std::move(s));
  stack_.push_back(id);
  return id;
}

void QueryTrace::close(SpanId id, net::SimTime at) {
  assert(!stack_.empty() && stack_.back() == id &&
         "span scopes must nest (close the innermost open span first)");
  Span& s = spans_[id];
  s.end = std::max({s.end, s.begin, at});
  stack_.pop_back();
  if (s.parent != kNoSpan) {
    Span& p = spans_[s.parent];
    p.end = std::max(p.end, s.end);
  }
}

void QueryTrace::reopen(SpanId id) {
  assert(id < spans_.size() && "reopen: unknown span id");
  stack_.push_back(id);
}

SpanId QueryTrace::adopt_subtree(const QueryTrace& donor, SpanId root) {
  assert(stack_.empty() && "adopt_subtree: no span may be open here");
  assert(root < donor.spans_.size() && "adopt_subtree: unknown donor root");
  // Copy in donor preorder; ids here are assigned densely in visit order,
  // so children stay in their original relative order.
  struct Pending {
    SpanId donor_id;
    SpanId parent;  // already-adopted parent in *this* trace
  };
  std::vector<Pending> work{{root, kNoSpan}};
  SpanId new_root = kNoSpan;
  while (!work.empty()) {
    // Depth-first, children pushed in reverse so they pop left-to-right.
    Pending cur = work.back();
    work.pop_back();
    const Span& src = donor.spans_[cur.donor_id];
    Span s = src;
    s.id = static_cast<SpanId>(spans_.size());
    s.parent = cur.parent;
    s.children.clear();
    if (cur.parent == kNoSpan) {
      new_root = s.id;
      roots_.push_back(s.id);
    } else {
      spans_[cur.parent].children.push_back(s.id);
    }
    SpanId id = s.id;
    spans_.push_back(std::move(s));
    for (std::size_t i = src.children.size(); i > 0; --i) {
      work.push_back(Pending{src.children[i - 1], id});
    }
  }
  return new_root;
}

void QueryTrace::absorb_unattributed(const QueryTrace& donor) noexcept {
  unattributed_bytes_ += donor.unattributed_bytes_;
  unattributed_raw_bytes_ += donor.unattributed_raw_bytes_;
  unattributed_messages_ += donor.unattributed_messages_;
  unattributed_timeouts_ += donor.unattributed_timeouts_;
}

void QueryTrace::clear() {
  assert(stack_.empty() && "clear() with open spans would orphan scopes");
  spans_.clear();
  stack_.clear();
  roots_.clear();
  unattributed_bytes_ = 0;
  unattributed_raw_bytes_ = 0;
  unattributed_messages_ = 0;
  unattributed_timeouts_ = 0;
}

void QueryTrace::add_peer(Span& s, net::NodeAddress addr) {
  if (addr == net::kNoAddress) return;
  auto it = std::lower_bound(s.peers.begin(), s.peers.end(), addr);
  if (it == s.peers.end() || *it != addr) s.peers.insert(it, addr);
}

void QueryTrace::on_message(const net::MessageEvent& e) {
  if (stack_.empty()) {
    ++unattributed_messages_;
    unattributed_bytes_ += e.bytes;
    unattributed_raw_bytes_ += e.raw_bytes;
    return;
  }
  Span& s = spans_[stack_.back()];
  ++s.messages;
  s.bytes += e.bytes;
  s.raw_bytes += e.raw_bytes;
  auto c = static_cast<std::size_t>(e.category);
  ++s.messages_by[c];
  s.bytes_by[c] += e.bytes;
  s.end = std::max(s.end, e.arrives_at);
  add_peer(s, e.from);
  add_peer(s, e.to);
}

void QueryTrace::on_timeout(const net::TimeoutEvent& e) {
  if (stack_.empty()) {
    ++unattributed_timeouts_;
    return;
  }
  // A timeout becomes its own leaf span: the failure-detection wait shows up
  // in the tree (not just as a counter), labelled with the suspect node.
  Span leaf;
  leaf.id = static_cast<SpanId>(spans_.size());
  leaf.parent = stack_.back();
  leaf.kind = SpanKind::kTimeout;
  leaf.label = "timeout waiting on node " + std::to_string(e.suspect);
  leaf.site = e.suspect;
  leaf.begin = e.at;
  leaf.end = e.gave_up_at;
  leaf.timeouts = 1;
  leaf.timeouts_by[static_cast<std::size_t>(e.category)] = 1;
  add_peer(leaf, e.suspect);
  Span& parent = spans_[leaf.parent];
  parent.children.push_back(leaf.id);
  parent.end = std::max(parent.end, e.gave_up_at);
  spans_.push_back(std::move(leaf));
}

std::uint64_t QueryTrace::total_bytes() const noexcept {
  std::uint64_t n = 0;
  for (const Span& s : spans_) n += s.bytes;
  return n;
}

std::uint64_t QueryTrace::total_messages() const noexcept {
  std::uint64_t n = 0;
  for (const Span& s : spans_) n += s.messages;
  return n;
}

std::uint64_t QueryTrace::total_timeouts() const noexcept {
  std::uint64_t n = 0;
  for (const Span& s : spans_) n += s.timeouts;
  return n;
}

namespace {
template <typename Get>
std::uint64_t subtree_sum(const std::vector<Span>& spans, SpanId id,
                          Get get) {
  std::uint64_t n = 0;
  std::vector<SpanId> work{id};
  while (!work.empty()) {
    SpanId cur = work.back();
    work.pop_back();
    const Span& s = spans.at(cur);
    n += get(s);
    work.insert(work.end(), s.children.begin(), s.children.end());
  }
  return n;
}
}  // namespace

std::uint64_t QueryTrace::subtree_bytes(SpanId id) const {
  return subtree_sum(spans_, id, [](const Span& s) { return s.bytes; });
}

std::uint64_t QueryTrace::subtree_messages(SpanId id) const {
  return subtree_sum(spans_, id, [](const Span& s) { return s.messages; });
}

std::uint64_t QueryTrace::subtree_timeouts(SpanId id) const {
  return subtree_sum(spans_, id, [](const Span& s) { return s.timeouts; });
}

}  // namespace ahsw::obs
