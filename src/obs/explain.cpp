#include "obs/explain.hpp"

#include <sstream>

namespace ahsw::obs {

namespace {

void format_time(std::ostream& os, net::SimTime t) {
  // Fixed with one decimal keeps columns readable; times are milliseconds.
  std::ostringstream tmp;
  tmp.setf(std::ios::fixed);
  tmp.precision(1);
  tmp << t;
  os << tmp.str();
}

void render_span(const QueryTrace& trace, SpanId id, int depth,
                 std::vector<std::string>& out) {
  const Span& s = trace.span(id);
  std::ostringstream os;
  for (int i = 0; i < depth; ++i) os << "  ";
  os << span_kind_name(s.kind);
  if (!s.label.empty()) os << " " << s.label;
  if (s.site != net::kNoAddress) os << " @" << s.site;
  os << "  [";
  format_time(os, s.begin);
  os << " -> ";
  format_time(os, s.end);
  os << " ms]";
  if (s.messages > 0) {
    os << "  " << s.messages << " msg, " << s.bytes << " B (";
    bool first = true;
    for (int c = 0; c < net::kCategoryCount; ++c) {
      if (s.bytes_by[c] == 0 && s.messages_by[c] == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << net::category_name(static_cast<net::Category>(c)) << " "
         << s.bytes_by[c] << "B";
    }
    os << ")";
  }
  if (s.timeouts > 0) {
    os << "  " << s.timeouts << " timeout" << (s.timeouts > 1 ? "s" : "");
  }
  if (!s.children.empty()) {
    os << "  {subtree " << trace.subtree_messages(id) << " msg, "
       << trace.subtree_bytes(id) << " B";
    if (std::uint64_t t = trace.subtree_timeouts(id); t > 0) {
      os << ", " << t << " timeout" << (t > 1 ? "s" : "");
    }
    os << "}";
  }
  out.push_back(os.str());
  for (SpanId child : s.children) {
    render_span(trace, child, depth + 1, out);
  }
}

}  // namespace

std::vector<std::string> explain_lines(const QueryTrace& trace, SpanId root) {
  std::vector<std::string> out;
  render_span(trace, root, 0, out);
  return out;
}

std::string explain(const QueryTrace& trace) {
  std::string out;
  for (SpanId root : trace.roots()) {
    for (const std::string& line : explain_lines(trace, root)) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

}  // namespace ahsw::obs
