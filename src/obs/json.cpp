#include "obs/json.hpp"

#include <cerrno>   // program_invocation_short_name (GNU)
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

namespace ahsw::obs {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

std::string json_string(std::string_view s) {
  std::string out = "\"";
  append_escaped(out, s);
  out += '"';
  return out;
}

std::string json_number(double v) {
  std::ostringstream os;
  os.precision(6);
  os.setf(std::ios::fixed);
  os << v;
  return os.str();
}

/// {"routing": {"messages": n, "bytes": n}, ...} — zero categories omitted.
template <typename M, typename B>
std::string by_category_object(const M& messages_by, const B& bytes_by) {
  std::string out = "{";
  bool first = true;
  for (int c = 0; c < net::kCategoryCount; ++c) {
    if (messages_by[c] == 0 && bytes_by[c] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += json_string(net::category_name(static_cast<net::Category>(c)));
    out += ": {\"messages\": " + std::to_string(messages_by[c]) +
           ", \"bytes\": " + std::to_string(bytes_by[c]) + "}";
  }
  out += "}";
  return out;
}

std::string timeouts_by_category_object(
    const std::uint64_t (&timeouts_by)[net::kCategoryCount]) {
  std::string out = "{";
  bool first = true;
  for (int c = 0; c < net::kCategoryCount; ++c) {
    if (timeouts_by[c] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += json_string(net::category_name(static_cast<net::Category>(c)));
    out += ": " + std::to_string(timeouts_by[c]);
  }
  out += "}";
  return out;
}

std::string span_to_json(const Span& s) {
  std::string out = "{";
  out += "\"id\": " + std::to_string(s.id);
  out += ", \"parent\": ";
  out += s.parent == kNoSpan ? "null" : std::to_string(s.parent);
  out += ", \"kind\": " + json_string(span_kind_name(s.kind));
  out += ", \"label\": " + json_string(s.label);
  out += ", \"site\": ";
  out += s.site == net::kNoAddress ? "null" : std::to_string(s.site);
  out += ", \"begin_ms\": " + json_number(s.begin);
  out += ", \"end_ms\": " + json_number(s.end);
  out += ", \"messages\": " + std::to_string(s.messages);
  out += ", \"bytes\": " + std::to_string(s.bytes);
  out += ", \"raw_bytes\": " + std::to_string(s.raw_bytes);
  out += ", \"timeouts\": " + std::to_string(s.timeouts);
  out += ", \"by_category\": " + by_category_object(s.messages_by, s.bytes_by);
  out += ", \"timeouts_by_category\": " +
         timeouts_by_category_object(s.timeouts_by);
  out += ", \"peers\": [";
  for (std::size_t i = 0; i < s.peers.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(s.peers[i]);
  }
  out += "], \"children\": [";
  for (std::size_t i = 0; i < s.children.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(s.children[i]);
  }
  out += "]}";
  return out;
}

std::string default_experiment_name() {
#ifdef __GLIBC__
  std::string name = program_invocation_short_name;
#else
  std::string name = "bench";
#endif
  if (name.rfind("bench_", 0) == 0) name.erase(0, 6);
  return name;
}

}  // namespace

std::string trace_to_json(const QueryTrace& trace) {
  std::string out = "{\"spans\": [";
  const std::vector<Span>& spans = trace.spans();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out += ", ";
    out += span_to_json(spans[i]);
  }
  out += "], \"roots\": [";
  for (std::size_t i = 0; i < trace.roots().size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(trace.roots()[i]);
  }
  out += "]}";
  return out;
}

std::vector<PhaseCost> phase_rollup(const QueryTrace& trace) {
  PhaseCost by_kind[kSpanKindCount];
  for (const Span& s : trace.spans()) {
    PhaseCost& p = by_kind[static_cast<std::size_t>(s.kind)];
    ++p.spans;
    p.messages += s.messages;
    p.bytes += s.bytes;
    p.timeouts += s.timeouts;
  }
  std::vector<PhaseCost> out;
  for (int k = 0; k < kSpanKindCount; ++k) {
    if (by_kind[k].spans == 0) continue;
    by_kind[k].phase = span_kind_name(static_cast<SpanKind>(k));
    out.push_back(std::move(by_kind[k]));
  }
  return out;
}

BenchSink& BenchSink::instance() {
  static BenchSink sink;
  return sink;
}

BenchSink::~BenchSink() { flush(); }

void BenchSink::record(BenchRecord r) {
  auto it = records_.find(r.bench);
  if (it == records_.end()) {
    order_.push_back(r.bench);
    records_.emplace(r.bench, std::move(r));
  } else {
    it->second = std::move(r);
  }
}

void BenchSink::set_output_path(std::string path) { path_ = std::move(path); }

void BenchSink::write(std::ostream& os) const {
  std::string experiment =
      experiment_.empty() ? default_experiment_name() : experiment_;
  os << "{\n  \"experiment\": " << json_string(experiment)
     << ",\n  \"records\": [";
  bool first_record = true;
  for (const std::string& name : order_) {
    const BenchRecord& r = records_.at(name);
    if (!first_record) os << ",";
    first_record = false;
    os << "\n    {\"bench\": " << json_string(r.bench);
    os << ", \"queries\": " << r.queries;
    os << ", \"messages\": " << r.traffic.messages;
    os << ", \"bytes\": " << r.traffic.bytes;
    os << ", \"raw_bytes\": " << r.traffic.raw_bytes;
    os << ", \"timeouts\": " << r.traffic.timeouts;
    os << ", \"response_ms\": " << json_number(r.response_ms);
    os << ", \"traffic_by_category\": "
       << by_category_object(r.traffic.messages_by, r.traffic.bytes_by);
    os << ", \"timeouts_by_category\": "
       << timeouts_by_category_object(r.traffic.timeouts_by);
    os << ", \"phases\": [";
    for (std::size_t i = 0; i < r.phases.size(); ++i) {
      const PhaseCost& p = r.phases[i];
      if (i > 0) os << ", ";
      os << "{\"phase\": " << json_string(p.phase)
         << ", \"spans\": " << p.spans << ", \"messages\": " << p.messages
         << ", \"bytes\": " << p.bytes << ", \"timeouts\": " << p.timeouts
         << "}";
    }
    os << "]";
    if (!r.extra.empty()) {
      os << ", \"extra\": {";
      bool first_extra = true;
      for (const auto& [key, value] : r.extra) {
        if (!first_extra) os << ", ";
        first_extra = false;
        os << json_string(key) << ": " << json_number(value);
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
}

void BenchSink::flush() {
  if (records_.empty()) return;
  std::string path = path_;
  if (path.empty()) {
    // Single-threaded bench-main startup read; no concurrent setenv.
    if (const char* env = std::getenv("AHSW_BENCH_JSON")) {  // NOLINT(concurrency-mt-unsafe)
      path = env;
    } else {
      path = "BENCH_" + default_experiment_name() + ".json";
    }
  }
  std::ofstream f(path);
  if (!f) return;  // benches must not fail because the CWD is read-only
  write(f);
}

}  // namespace ahsw::obs
