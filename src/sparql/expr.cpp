#include "sparql/expr.hpp"

#include <cmath>
#include <regex>

namespace ahsw::sparql {

ExprPtr Expr::variable(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kVar;
  e->var = std::move(name);
  return e;
}

ExprPtr Expr::constant_term(rdf::Term t) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kConst;
  e->constant = std::move(t);
  return e;
}

ExprPtr Expr::unary(ExprKind k, ExprPtr a) {
  auto e = std::make_shared<Expr>();
  e->kind = k;
  e->args = {std::move(a)};
  return e;
}

ExprPtr Expr::binary(ExprKind k, ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = k;
  e->args = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::regex(ExprPtr text, ExprPtr pattern, ExprPtr flags) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kRegex;
  e->args = {std::move(text), std::move(pattern)};
  if (flags != nullptr) e->args.push_back(std::move(flags));
  return e;
}

ExprPtr Expr::bound(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBound;
  e->var = std::move(name);
  return e;
}

namespace {

[[nodiscard]] const char* op_token(ExprKind k) {
  switch (k) {
    case ExprKind::kOr: return " || ";
    case ExprKind::kAnd: return " && ";
    case ExprKind::kEq: return " = ";
    case ExprKind::kNe: return " != ";
    case ExprKind::kLt: return " < ";
    case ExprKind::kGt: return " > ";
    case ExprKind::kLe: return " <= ";
    case ExprKind::kGe: return " >= ";
    case ExprKind::kAdd: return " + ";
    case ExprKind::kSub: return " - ";
    case ExprKind::kMul: return " * ";
    case ExprKind::kDiv: return " / ";
    default: return " ? ";
  }
}

[[nodiscard]] std::string fn_name(ExprKind k) {
  switch (k) {
    case ExprKind::kIsIri: return "isIRI";
    case ExprKind::kIsLiteral: return "isLiteral";
    case ExprKind::kIsBlank: return "isBlank";
    case ExprKind::kStr: return "str";
    case ExprKind::kLang: return "lang";
    case ExprKind::kDatatype: return "datatype";
    default: return "?";
  }
}

}  // namespace

std::string Expr::to_string() const {
  switch (kind) {
    case ExprKind::kVar:
      return "?" + var;
    case ExprKind::kConst:
      return constant.to_string();
    case ExprKind::kNot:
      return "!(" + args[0]->to_string() + ")";
    case ExprKind::kNeg:
      return "-(" + args[0]->to_string() + ")";
    case ExprKind::kBound:
      return "bound(?" + var + ")";
    case ExprKind::kRegex: {
      std::string out = "regex(" + args[0]->to_string() + ", " +
                        args[1]->to_string();
      if (args.size() > 2) out += ", " + args[2]->to_string();
      return out + ")";
    }
    case ExprKind::kIsIri:
    case ExprKind::kIsLiteral:
    case ExprKind::kIsBlank:
    case ExprKind::kStr:
    case ExprKind::kLang:
    case ExprKind::kDatatype:
      return fn_name(kind) + "(" + args[0]->to_string() + ")";
    default:
      return "(" + args[0]->to_string() + op_token(kind) +
             args[1]->to_string() + ")";
  }
}

std::size_t Expr::byte_size() const noexcept {
  std::size_t n = 1 + var.size() + constant.byte_size();
  for (const ExprPtr& a : args) n += a->byte_size();
  return n;
}

namespace {

/// Effective boolean value per SPARQL sect. 11.2.2; nullopt = error.
[[nodiscard]] std::optional<bool> ebv(const rdf::Term& t) {
  if (!t.is_literal()) return std::nullopt;
  if (t.datatype() == rdf::xsd::kBoolean) {
    if (t.lexical() == "true" || t.lexical() == "1") return true;
    if (t.lexical() == "false" || t.lexical() == "0") return false;
    return std::nullopt;
  }
  double num = 0.0;
  if (!t.datatype().empty() && t.numeric_value(num)) {
    return num != 0.0 && !std::isnan(num);
  }
  if (t.datatype().empty() || t.datatype() == rdf::xsd::kString) {
    // Plain / string literal: true iff non-empty. A plain literal that
    // looks numeric still follows the string rule unless typed.
    return !t.lexical().empty();
  }
  return std::nullopt;
}

[[nodiscard]] rdf::Term bool_term(bool v) {
  return rdf::Term::typed_literal(v ? "true" : "false",
                                  std::string(rdf::xsd::kBoolean));
}

/// Three-valued comparison: <0, 0, >0, or nullopt on incomparable operands.
[[nodiscard]] std::optional<int> compare(const rdf::Term& a,
                                         const rdf::Term& b) {
  double na = 0.0, nb = 0.0;
  if (a.numeric_value(na) && b.numeric_value(nb)) {
    if (na < nb) return -1;
    if (na > nb) return 1;
    return 0;
  }
  if (a.is_literal() && b.is_literal() && a.datatype() == b.datatype() &&
      a.lang() == b.lang()) {
    return a.lexical().compare(b.lexical()) < 0
               ? -1
               : (a.lexical() == b.lexical() ? 0 : 1);
  }
  if (a.is_iri() && b.is_iri()) {
    // IRIs support = / != only; order comparisons are errors, but we can
    // still answer equality through this path.
    return a.lexical() == b.lexical() ? 0 : (a.lexical() < b.lexical() ? -1
                                                                       : 1);
  }
  return std::nullopt;
}

[[nodiscard]] std::optional<double> numeric(const ExprValue& v) {
  if (!v) return std::nullopt;
  double out = 0.0;
  if (!v->numeric_value(out)) return std::nullopt;
  return out;
}

}  // namespace

ExprValue evaluate(const Expr& e, const Binding& binding) {
  switch (e.kind) {
    case ExprKind::kVar: {
      const rdf::Term* t = binding.get(e.var);
      if (t == nullptr) return std::nullopt;
      return *t;
    }
    case ExprKind::kConst:
      return e.constant;
    case ExprKind::kBound:
      return bool_term(binding.bound(e.var));
    case ExprKind::kNot: {
      ExprValue v = evaluate(*e.args[0], binding);
      if (!v) return std::nullopt;
      std::optional<bool> b = ebv(*v);
      if (!b) return std::nullopt;
      return bool_term(!*b);
    }
    case ExprKind::kNeg: {
      std::optional<double> n = numeric(evaluate(*e.args[0], binding));
      if (!n) return std::nullopt;
      return rdf::Term::real(-*n);
    }
    case ExprKind::kOr:
    case ExprKind::kAnd: {
      // SPARQL three-valued logic: true||error = true, false&&error = false.
      std::optional<bool> la, lb;
      if (ExprValue v = evaluate(*e.args[0], binding)) la = ebv(*v);
      if (ExprValue v = evaluate(*e.args[1], binding)) lb = ebv(*v);
      if (e.kind == ExprKind::kOr) {
        if ((la && *la) || (lb && *lb)) return bool_term(true);
        if (la && lb) return bool_term(false);
        return std::nullopt;
      }
      if ((la && !*la) || (lb && !*lb)) return bool_term(false);
      if (la && lb) return bool_term(true);
      return std::nullopt;
    }
    case ExprKind::kEq:
    case ExprKind::kNe: {
      ExprValue a = evaluate(*e.args[0], binding);
      ExprValue b = evaluate(*e.args[1], binding);
      if (!a || !b) return std::nullopt;
      bool eq;
      if (std::optional<int> c = compare(*a, *b)) {
        eq = (*c == 0);
      } else {
        eq = (*a == *b);  // term equality fallback (RDFterm-equal)
      }
      return bool_term(e.kind == ExprKind::kEq ? eq : !eq);
    }
    case ExprKind::kLt:
    case ExprKind::kGt:
    case ExprKind::kLe:
    case ExprKind::kGe: {
      ExprValue a = evaluate(*e.args[0], binding);
      ExprValue b = evaluate(*e.args[1], binding);
      if (!a || !b) return std::nullopt;
      std::optional<int> c = compare(*a, *b);
      if (!c) return std::nullopt;
      switch (e.kind) {
        case ExprKind::kLt: return bool_term(*c < 0);
        case ExprKind::kGt: return bool_term(*c > 0);
        case ExprKind::kLe: return bool_term(*c <= 0);
        default: return bool_term(*c >= 0);
      }
    }
    case ExprKind::kAdd:
    case ExprKind::kSub:
    case ExprKind::kMul:
    case ExprKind::kDiv: {
      std::optional<double> a = numeric(evaluate(*e.args[0], binding));
      std::optional<double> b = numeric(evaluate(*e.args[1], binding));
      if (!a || !b) return std::nullopt;
      switch (e.kind) {
        case ExprKind::kAdd: return rdf::Term::real(*a + *b);
        case ExprKind::kSub: return rdf::Term::real(*a - *b);
        case ExprKind::kMul: return rdf::Term::real(*a * *b);
        default:
          if (*b == 0.0) return std::nullopt;
          return rdf::Term::real(*a / *b);
      }
    }
    case ExprKind::kRegex: {
      ExprValue text = evaluate(*e.args[0], binding);
      ExprValue pattern = evaluate(*e.args[1], binding);
      if (!text || !pattern || !text->is_literal() || !pattern->is_literal())
        return std::nullopt;
      auto flags = std::regex::ECMAScript;
      if (e.args.size() > 2) {
        ExprValue f = evaluate(*e.args[2], binding);
        if (f && f->is_literal() &&
            f->lexical().find('i') != std::string::npos) {
          flags |= std::regex::icase;
        }
      }
      try {
        std::regex re(pattern->lexical(), flags);
        return bool_term(std::regex_search(text->lexical(), re));
      } catch (const std::regex_error&) {
        return std::nullopt;
      }
    }
    case ExprKind::kIsIri: {
      ExprValue v = evaluate(*e.args[0], binding);
      if (!v) return std::nullopt;
      return bool_term(v->is_iri());
    }
    case ExprKind::kIsLiteral: {
      ExprValue v = evaluate(*e.args[0], binding);
      if (!v) return std::nullopt;
      return bool_term(v->is_literal());
    }
    case ExprKind::kIsBlank: {
      ExprValue v = evaluate(*e.args[0], binding);
      if (!v) return std::nullopt;
      return bool_term(v->is_blank());
    }
    case ExprKind::kStr: {
      ExprValue v = evaluate(*e.args[0], binding);
      if (!v || v->is_blank()) return std::nullopt;
      return rdf::Term::literal(v->lexical());
    }
    case ExprKind::kLang: {
      ExprValue v = evaluate(*e.args[0], binding);
      if (!v || !v->is_literal()) return std::nullopt;
      return rdf::Term::literal(v->lang());
    }
    case ExprKind::kDatatype: {
      ExprValue v = evaluate(*e.args[0], binding);
      if (!v || !v->is_literal()) return std::nullopt;
      if (!v->datatype().empty()) return rdf::Term::iri(v->datatype());
      return rdf::Term::iri(std::string(rdf::xsd::kString));
    }
  }
  return std::nullopt;
}

bool satisfies(const Expr& e, const Binding& binding) {
  ExprValue v = evaluate(e, binding);
  if (!v) return false;
  std::optional<bool> b = ebv(*v);
  return b.value_or(false);
}

void collect_variables(const Expr& e, std::set<std::string>& out) {
  if (e.kind == ExprKind::kVar || e.kind == ExprKind::kBound) {
    out.insert(e.var);
  }
  for (const ExprPtr& a : e.args) collect_variables(*a, out);
}

std::set<std::string> variables_of(const Expr& e) {
  std::set<std::string> out;
  collect_variables(e, out);
  return out;
}

}  // namespace ahsw::sparql
