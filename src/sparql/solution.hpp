// Solution mappings and the set-level operations of the SPARQL algebra.
//
// Follows Perez, Arenas & Gutierrez, "Semantics and complexity of SPARQL"
// (TODS 2009), the formalization the paper adopts in Sect. IV-A:
//   - a solution mapping u is a partial function from variables to RDF terms;
//   - u1, u2 are compatible iff they agree on every shared variable;
//   - Join:  O1 x O2 = { u1 u u2 | u1 in O1, u2 in O2, compatible }
//   - Union: O1 u O2
//   - Minus: O1 - O2 = { u1 | forall u2 in O2: not compatible(u1, u2) }
//   - LeftJoin: (O1 x O2) u (O1 - O2), with an optional filter condition
//     applied inside the join part (SPARQL OPTIONAL semantics).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rdf/term.hpp"

namespace ahsw::sparql {

/// One solution mapping (a row of a SPARQL result). Stored as a sorted
/// flat vector of (variable name, term) pairs; names exclude the '?'.
class Binding {
 public:
  Binding() = default;

  /// Term bound to `var`, or nullptr when unbound.
  [[nodiscard]] const rdf::Term* get(std::string_view var) const noexcept;

  /// Bind `var` to `term`. Overwrites an existing binding of the same var.
  void set(std::string_view var, rdf::Term term);

  [[nodiscard]] bool bound(std::string_view var) const noexcept {
    return get(var) != nullptr;
  }

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] bool empty() const noexcept { return slots_.empty(); }

  /// Compatible per Perez et al.: every shared variable maps to equal terms.
  [[nodiscard]] bool compatible(const Binding& other) const noexcept;

  /// Union of two compatible mappings. Precondition: compatible(other).
  [[nodiscard]] Binding merged(const Binding& other) const;

  /// Keep only the named variables (SPARQL projection).
  [[nodiscard]] Binding projected(const std::vector<std::string>& vars) const;

  /// Sorted (name, term) pairs; iteration order is deterministic.
  [[nodiscard]] const std::vector<std::pair<std::string, rdf::Term>>& slots()
      const noexcept {
    return slots_;
  }

  /// Serialized size for the network cost model.
  [[nodiscard]] std::size_t byte_size() const noexcept;

  /// Debug form: `{x-><a>, y->"v"}` with variables in sorted order.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Binding&, const Binding&) = default;
  /// Lexicographic over sorted slots: gives result sets a canonical order.
  friend std::strong_ordering operator<=>(const Binding&,
                                          const Binding&) = default;

 private:
  std::vector<std::pair<std::string, rdf::Term>> slots_;
};

/// A set of solution mappings (duplicates allowed: SPARQL solution
/// *sequences* keep multiplicity until DISTINCT/REDUCED).
class SolutionSet {
 public:
  SolutionSet() = default;
  explicit SolutionSet(std::vector<Binding> rows)
      : rows_(std::move(rows)), cached_bytes_(kDirty) {}

  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }

  void add(Binding b) {
    // The raw size is a plain per-row sum, so the increment is exact; the
    // wire (encoded) size is holistic — a new row can extend the payload's
    // term dictionary or variable schema — so no increment is correct and
    // the memo must be dropped (net::wire recomputes through the encoder).
    if (cached_bytes_ != kDirty) cached_bytes_ += b.byte_size();
    wire_cached_ = 0;
    rows_.push_back(std::move(b));
  }

  [[nodiscard]] const std::vector<Binding>& rows() const noexcept {
    return rows_;
  }
  /// Mutable row access invalidates the cached byte sizes; do not hold the
  /// reference across a byte_size() call and mutate afterwards.
  [[nodiscard]] std::vector<Binding>& rows() noexcept {
    cached_bytes_ = kDirty;
    wire_cached_ = 0;
    return rows_;
  }

  /// Total *raw* (uncompressed) serialized size. The cost model charges the
  /// compressed size instead (net::wire::charged_bytes); this raw figure
  /// travels alongside every send as its `raw_bytes` counterpart so the
  /// compression win stays observable. Cached: the distributed processor
  /// asks for it at every ship and chain hop, and recomputing is
  /// O(rows x slots).
  [[nodiscard]] std::size_t byte_size() const noexcept;

  /// Memo slot for the wire-encoded size, owned by net::wire::charged_bytes
  /// (the encoder lives above this layer). 0 means "not computed": an
  /// encoded payload is never empty, so 0 is a safe dirty sentinel. Any
  /// mutation (add, mutable rows()) resets it; normalize() keeps it, since
  /// the canonical encoding is row-order independent.
  [[nodiscard]] std::size_t wire_cache() const noexcept { return wire_cached_; }
  void set_wire_cache(std::size_t n) const noexcept { wire_cached_ = n; }

  /// Sort rows canonically (used before comparing result sets in tests and
  /// before returning final answers so output is deterministic). Reordering
  /// does not change the serialized size, so the cache survives.
  void normalize();

  [[nodiscard]] std::string to_string() const;

 private:
  static constexpr std::size_t kDirty = static_cast<std::size_t>(-1);
  static constexpr std::size_t kSetFraming = 4;

  std::vector<Binding> rows_;
  /// Serialized size of rows_ plus framing, or kDirty when a mutation may
  /// have outdated it. A fresh set is empty, so the cache starts valid and
  /// add() can maintain it incrementally.
  mutable std::size_t cached_bytes_ = kSetFraming;
  /// Wire-encoded size memo (see wire_cache()); 0 = not computed.
  mutable std::size_t wire_cached_ = 0;
};

// The binary operators take a `vectorized` flag: true (the default) runs
// the dictionary-id kernels of sparql/columnar.hpp, false the original
// row-at-a-time implementations. Both produce identical rows in identical
// order — the flag exists so the distributed engines can expose an A/B
// toggle (ExecutionPolicy::vectorized) and tests can pin the equivalence.

/// O1 x O2 (hash join on the shared variables).
[[nodiscard]] SolutionSet join(const SolutionSet& a, const SolutionSet& b,
                               bool vectorized = true);

/// O1 u O2.
[[nodiscard]] SolutionSet set_union(const SolutionSet& a,
                                    const SolutionSet& b);

/// O1 - O2 (per Perez et al.: drop u1 compatible with any u2).
[[nodiscard]] SolutionSet minus(const SolutionSet& a, const SolutionSet& b,
                                bool vectorized = true);

/// Left outer join without a condition: (O1 x O2) u (O1 - O2).
[[nodiscard]] SolutionSet left_join(const SolutionSet& a,
                                    const SolutionSet& b,
                                    bool vectorized = true);

/// Variables appearing in any row of `s`, sorted.
[[nodiscard]] std::vector<std::string> variables_of(const SolutionSet& s);

}  // namespace ahsw::sparql
