#include "sparql/lexer.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "common/strings.hpp"

namespace ahsw::sparql {

namespace {

constexpr std::array kKeywords = {
    "SELECT",   "CONSTRUCT", "DESCRIBE", "ASK",    "WHERE",  "PREFIX",
    "BASE",     "FROM",      "NAMED",    "FILTER", "OPTIONAL",
    "UNION",    "ORDER",     "BY",       "ASC",    "DESC",   "LIMIT",
    "OFFSET",   "DISTINCT",  "REDUCED",  "REGEX",  "BOUND",  "STR",
    "LANG",     "DATATYPE",  "ISIRI",    "ISURI",  "ISLITERAL",
    "ISBLANK",  "TRUE",      "FALSE",
};

[[nodiscard]] bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '-';
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      skip_ws_and_comments();
      Token t = next_token();
      bool end = t.kind == TokenKind::kEnd;
      out.push_back(std::move(t));
      if (end) break;
    }
    return out;
  }

 private:
  [[nodiscard]] bool at_end() const noexcept { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_ws_and_comments() {
    while (!at_end()) {
      char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '#') {
        while (!at_end() && peek() != '\n') advance();
      } else {
        break;
      }
    }
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw QuerySyntaxError(line_, column_, what);
  }

  Token make(TokenKind kind, std::string text = {}) const {
    return Token{kind, std::move(text), start_line_, start_column_};
  }

  Token next_token() {
    start_line_ = line_;
    start_column_ = column_;
    if (at_end()) return make(TokenKind::kEnd);

    char c = peek();
    if (c == '<') return lex_iri();
    if (c == '"' || c == '\'') return lex_string();
    if (c == '?' || c == '$') return lex_var();
    if (c == '@') return lex_lang_tag();
    if (c == '_' && peek(1) == ':') return lex_blank();
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) return lex_number();
    if (is_ident_start(c) || c == ':') return lex_name();

    advance();
    switch (c) {
      case '{': return make(TokenKind::kLBrace);
      case '}': return make(TokenKind::kRBrace);
      case '(': return make(TokenKind::kLParen);
      case ')': return make(TokenKind::kRParen);
      case '.': return make(TokenKind::kDot);
      case ';': return make(TokenKind::kSemicolon);
      case ',': return make(TokenKind::kComma);
      case '*': return make(TokenKind::kStar);
      case '+': return make(TokenKind::kPlus);
      case '-': return make(TokenKind::kMinus);
      case '/': return make(TokenKind::kSlash);
      case '=': return make(TokenKind::kEq);
      case '^':
        if (peek() == '^') {
          advance();
          return make(TokenKind::kDoubleCaret);
        }
        fail("unexpected '^'");
      case '!':
        if (peek() == '=') {
          advance();
          return make(TokenKind::kNe);
        }
        return make(TokenKind::kBang);
      case '<':
        break;  // unreachable; handled by lex_iri
      case '>':
        if (peek() == '=') {
          advance();
          return make(TokenKind::kGe);
        }
        return make(TokenKind::kGt);
      case '&':
        if (peek() == '&') {
          advance();
          return make(TokenKind::kAndAnd);
        }
        fail("unexpected '&'");
      case '|':
        if (peek() == '|') {
          advance();
          return make(TokenKind::kOrOr);
        }
        fail("unexpected '|'");
      default:
        break;
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  Token lex_iri() {
    advance();  // '<'
    // '<' may also be the less-than operator: an IRIREF has no spaces and a
    // closing '>' before any whitespace.
    std::string text;
    std::size_t probe = pos_;
    bool is_iri = false;
    while (probe < src_.size()) {
      char c = src_[probe];
      if (c == '>') {
        is_iri = true;
        break;
      }
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') break;
      ++probe;
    }
    if (!is_iri) {
      if (peek() == '=') {
        advance();
        return make(TokenKind::kLe);
      }
      return make(TokenKind::kLt);
    }
    while (peek() != '>') text += advance();
    advance();  // '>'
    return make(TokenKind::kIriRef, std::move(text));
  }

  Token lex_string() {
    char quote = advance();
    std::string raw;
    while (true) {
      if (at_end()) fail("unterminated string literal");
      char c = advance();
      if (c == quote) break;
      raw += c;
      if (c == '\\') {
        if (at_end()) fail("dangling escape in string literal");
        raw += advance();
      }
    }
    return make(TokenKind::kString, common::unescape_ntriples(raw));
  }

  Token lex_var() {
    advance();  // sigil
    std::string name;
    while (!at_end() && is_ident_char(peek())) name += advance();
    if (name.empty()) fail("empty variable name");
    return make(TokenKind::kVar, std::move(name));
  }

  Token lex_lang_tag() {
    advance();  // '@'
    std::string tag;
    while (!at_end() && (is_ident_char(peek()))) tag += advance();
    if (tag.empty()) fail("empty language tag");
    return make(TokenKind::kLangTag, std::move(tag));
  }

  Token lex_blank() {
    advance();  // '_'
    advance();  // ':'
    std::string label;
    while (!at_end() && is_ident_char(peek())) label += advance();
    if (label.empty()) fail("empty blank node label");
    return make(TokenKind::kBlank, std::move(label));
  }

  Token lex_number() {
    std::string text;
    bool decimal = false;
    while (!at_end() &&
           (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
            (peek() == '.' &&
             std::isdigit(static_cast<unsigned char>(peek(1))) != 0))) {
      if (peek() == '.') decimal = true;
      text += advance();
    }
    return make(decimal ? TokenKind::kDecimal : TokenKind::kInteger,
                std::move(text));
  }

  Token lex_name() {
    // Bare identifier, keyword, or prefixed name prefix:local / :local.
    std::string text;
    while (!at_end() && (is_ident_char(peek()) || peek() == '.')) {
      // A '.' inside a name is only valid if followed by another name char
      // (N3-style); otherwise it terminates the statement.
      if (peek() == '.' && !is_ident_char(peek(1))) break;
      text += advance();
    }
    if (!at_end() && peek() == ':') {
      advance();
      std::string local;
      while (!at_end() && (is_ident_char(peek()) || peek() == '.')) {
        if (peek() == '.' && !is_ident_char(peek(1))) break;
        local += advance();
      }
      return make(TokenKind::kPName, text + ":" + local);
    }
    std::string upper = text;
    std::transform(upper.begin(), upper.end(), upper.begin(), [](char ch) {
      return static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    });
    if (std::find(kKeywords.begin(), kKeywords.end(), upper) !=
        kKeywords.end()) {
      return make(TokenKind::kKeyword, std::move(upper));
    }
    return make(TokenKind::kPName, std::move(text));
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
  std::size_t start_line_ = 1;
  std::size_t start_column_ = 1;
};

}  // namespace

std::vector<Token> tokenize(std::string_view query) {
  return Lexer(query).run();
}

}  // namespace ahsw::sparql
