// SPARQL algebra and the Query Transformation stage (Fig. 3).
//
// The parsed AST is translated into algebra expressions following the W3C
// recommendation's ToAlgebra rules and the notation of Perez et al. that the
// paper uses: AND -> Join, UNION -> Union, OPT -> LeftJoin, FILTER ->
// Filter, with adjacent triple patterns fused into one BGP. E.g. Fig. 9
// becomes `Filter(C1, LeftJoin(BGP(P1 . P2), BGP(P3), true))` and, after
// filter pushing, `LeftJoin(BGP(Filter(C1, P1) . P2), BGP(P3), true)`.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "rdf/triple.hpp"
#include "sparql/ast.hpp"
#include "sparql/expr.hpp"

namespace ahsw::sparql {

enum class AlgebraKind {
  kBgp,       // basic graph pattern: conjunction of triple patterns
  kJoin,      // Join(left, right)
  kLeftJoin,  // LeftJoin(left, right, expr)  -- expr == nullptr means `true`
  kUnion,     // Union(left, right)
  kFilter,    // Filter(expr, left)
  kProject,   // Project(vars, left)
  kDistinct,
  kReduced,
  kOrderBy,   // OrderBy(conditions, left)
  kSlice,     // Slice(offset, limit, left)
};

struct Algebra;
using AlgebraPtr = std::shared_ptr<const Algebra>;

/// One triple pattern inside a BGP, optionally carrying a pushed-down
/// filter (the result of the optimizer's filter-pushing rewrite; see
/// Sect. IV-G of the paper). A pushed filter constrains only variables
/// bound by this pattern.
struct BgpPattern {
  rdf::TriplePattern pattern;
  ExprPtr pushed_filter;  // may be null

  [[nodiscard]] std::string to_string() const;
};

/// Immutable algebra tree node.
struct Algebra {
  AlgebraKind kind = AlgebraKind::kBgp;

  std::vector<BgpPattern> bgp;          // kBgp
  AlgebraPtr left;                      // all unary/binary kinds
  AlgebraPtr right;                     // binary kinds
  ExprPtr expr;                         // kFilter / kLeftJoin condition
  std::vector<std::string> vars;        // kProject
  std::vector<OrderCondition> order;    // kOrderBy
  std::uint64_t offset = 0;             // kSlice
  std::optional<std::uint64_t> limit;   // kSlice

  [[nodiscard]] static AlgebraPtr make_bgp(
      std::vector<rdf::TriplePattern> patterns);
  [[nodiscard]] static AlgebraPtr make_bgp2(std::vector<BgpPattern> patterns);
  [[nodiscard]] static AlgebraPtr make_join(AlgebraPtr l, AlgebraPtr r);
  [[nodiscard]] static AlgebraPtr make_left_join(AlgebraPtr l, AlgebraPtr r,
                                                 ExprPtr condition);
  [[nodiscard]] static AlgebraPtr make_union(AlgebraPtr l, AlgebraPtr r);
  [[nodiscard]] static AlgebraPtr make_filter(ExprPtr condition, AlgebraPtr a);
  [[nodiscard]] static AlgebraPtr make_project(std::vector<std::string> vars,
                                               AlgebraPtr a);
  [[nodiscard]] static AlgebraPtr make_distinct(AlgebraPtr a);
  [[nodiscard]] static AlgebraPtr make_reduced(AlgebraPtr a);
  [[nodiscard]] static AlgebraPtr make_order_by(
      std::vector<OrderCondition> order, AlgebraPtr a);
  [[nodiscard]] static AlgebraPtr make_slice(std::uint64_t offset,
                                             std::optional<std::uint64_t> limit,
                                             AlgebraPtr a);

  /// Variables this sub-expression is guaranteed to bind in every solution
  /// ("certain" variables; OPTIONAL right sides are excluded). Drives
  /// filter-pushing safety checks.
  [[nodiscard]] std::set<std::string> certain_variables() const;

  /// All variables that may appear in solutions of this sub-expression.
  [[nodiscard]] std::set<std::string> all_variables() const;

  /// Textual form in the paper's notation (see file comment).
  [[nodiscard]] std::string to_string() const;
};

/// Translate the WHERE clause of a parsed query (ToAlgebra): the graph
/// pattern part only, without solution modifiers.
[[nodiscard]] AlgebraPtr translate_pattern(const GroupPattern& group);

/// Full translation including solution sequence modifiers and projection:
/// Slice(Distinct(Project(OrderBy(Filter(...BGP...))))), innermost first.
[[nodiscard]] AlgebraPtr translate(const Query& q);

}  // namespace ahsw::sparql
