#include "sparql/format.hpp"

#include <algorithm>
#include <vector>

namespace ahsw::sparql {

namespace {

[[nodiscard]] std::string pad(const std::string& s, std::size_t width) {
  std::string out = s;
  out.resize(std::max(width, out.size()), ' ');
  return out;
}

}  // namespace

std::string to_table(const QueryResult& result) {
  switch (result.form) {
    case QueryForm::kAsk:
      return result.ask_answer ? "yes\n" : "no\n";
    case QueryForm::kConstruct:
    case QueryForm::kDescribe: {
      std::string out;
      for (const rdf::Triple& t : result.graph) {
        out += t.to_string();
        out += '\n';
      }
      out += std::to_string(result.graph.size()) + " triples\n";
      return out;
    }
    case QueryForm::kSelect:
      break;
  }

  // Column set: the declared projection; fall back to the variables present
  // in the solutions when empty (SELECT * results store them implicitly).
  std::vector<std::string> columns = result.variables;
  if (columns.empty()) columns = variables_of(result.solutions);

  std::vector<std::size_t> widths;
  widths.reserve(columns.size());
  for (const std::string& c : columns) widths.push_back(c.size());

  std::vector<std::vector<std::string>> cells;
  cells.reserve(result.solutions.size());
  for (const Binding& b : result.solutions.rows()) {
    std::vector<std::string> row;
    for (std::size_t i = 0; i < columns.size(); ++i) {
      const rdf::Term* t = b.get(columns[i]);
      row.push_back(t != nullptr ? t->to_string() : "");
      widths[i] = std::max(widths[i], row.back().size());
    }
    cells.push_back(std::move(row));
  }

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out += "|";
    for (std::size_t i = 0; i < row.size(); ++i) {
      out += " " + pad(row[i], widths[i]) + " |";
    }
    out += "\n";
  };
  emit_row(columns);
  out += "|";
  for (std::size_t w : widths) out += std::string(w + 2, '-') + "|";
  out += "\n";
  for (const auto& row : cells) emit_row(row);
  out += std::to_string(result.solutions.size()) + " rows\n";
  return out;
}

}  // namespace ahsw::sparql
