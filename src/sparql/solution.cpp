#include "sparql/solution.hpp"

#include "sparql/columnar.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace ahsw::sparql {

namespace {

/// Iterator to the slot for `var`, or end.
template <typename Slots>
auto find_slot(Slots& slots, std::string_view var) {
  return std::lower_bound(
      slots.begin(), slots.end(), var,
      [](const auto& slot, std::string_view v) { return slot.first < v; });
}

}  // namespace

const rdf::Term* Binding::get(std::string_view var) const noexcept {
  auto it = find_slot(slots_, var);
  if (it == slots_.end() || it->first != var) return nullptr;
  return &it->second;
}

void Binding::set(std::string_view var, rdf::Term term) {
  auto it = find_slot(slots_, var);
  if (it != slots_.end() && it->first == var) {
    it->second = std::move(term);
  } else {
    slots_.insert(it, {std::string(var), std::move(term)});
  }
}

bool Binding::compatible(const Binding& other) const noexcept {
  // Merge-walk over two sorted slot vectors.
  auto a = slots_.begin();
  auto b = other.slots_.begin();
  while (a != slots_.end() && b != other.slots_.end()) {
    if (a->first < b->first) {
      ++a;
    } else if (b->first < a->first) {
      ++b;
    } else {
      if (a->second != b->second) return false;
      ++a;
      ++b;
    }
  }
  return true;
}

Binding Binding::merged(const Binding& other) const {
  Binding out;
  out.slots_.reserve(slots_.size() + other.slots_.size());
  auto a = slots_.begin();
  auto b = other.slots_.begin();
  while (a != slots_.end() || b != other.slots_.end()) {
    if (b == other.slots_.end() ||
        (a != slots_.end() && a->first < b->first)) {
      out.slots_.push_back(*a++);
    } else if (a == slots_.end() || b->first < a->first) {
      out.slots_.push_back(*b++);
    } else {
      out.slots_.push_back(*a);  // equal names; compatible => equal terms
      ++a;
      ++b;
    }
  }
  return out;
}

Binding Binding::projected(const std::vector<std::string>& vars) const {
  Binding out;
  for (const std::string& v : vars) {
    if (const rdf::Term* t = get(v)) out.set(v, *t);
  }
  return out;
}

std::size_t Binding::byte_size() const noexcept {
  std::size_t n = 2;  // row framing
  for (const auto& [name, term] : slots_) {
    n += name.size() + 1 + term.byte_size();
  }
  return n;
}

std::string Binding::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (i != 0) out += ", ";
    out += slots_[i].first + "->" + slots_[i].second.to_string();
  }
  out += "}";
  return out;
}

std::size_t SolutionSet::byte_size() const noexcept {
  if (cached_bytes_ == kDirty) {
    std::size_t n = kSetFraming;
    for (const Binding& b : rows_) n += b.byte_size();
    cached_bytes_ = n;
  }
  return cached_bytes_;
}

void SolutionSet::normalize() { std::sort(rows_.begin(), rows_.end()); }

std::string SolutionSet::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (i != 0) out += ", ";
    out += rows_[i].to_string();
  }
  out += "]";
  return out;
}

namespace {

/// Key of a binding restricted to `vars` (all of which must be bound);
/// returns false if some var is unbound in b (then the row can join with
/// anything on that var and needs the slow path).
bool restricted_key(const Binding& b, const std::vector<std::string>& vars,
                    std::string& key) {
  key.clear();
  for (const std::string& v : vars) {
    const rdf::Term* t = b.get(v);
    if (t == nullptr) return false;
    key += t->to_string();
    key += '\x1f';
  }
  return true;
}

std::vector<std::string> shared_variables(const SolutionSet& a,
                                          const SolutionSet& b) {
  std::set<std::string> va;
  for (const Binding& r : a.rows()) {
    for (const auto& [name, _] : r.slots()) va.insert(name);
  }
  std::set<std::string> shared;
  for (const Binding& r : b.rows()) {
    for (const auto& [name, _] : r.slots()) {
      if (va.count(name) > 0) shared.insert(name);
    }
  }
  return {shared.begin(), shared.end()};
}

}  // namespace

SolutionSet join(const SolutionSet& a, const SolutionSet& b,
                 bool vectorized) {
  if (vectorized) return vec_join(a, b);
  SolutionSet out;
  const std::vector<std::string> shared = shared_variables(a, b);

  if (shared.empty()) {
    // Cartesian product (no shared vars => all pairs compatible).
    for (const Binding& ra : a.rows()) {
      for (const Binding& rb : b.rows()) {
        out.add(ra.merged(rb));
      }
    }
    return out;
  }

  // Hash-join on rows of `b` that bind every shared var; rows that do not
  // (possible after OPTIONAL) fall back to pairwise compatibility checks.
  std::multimap<std::string, const Binding*> table;
  std::vector<const Binding*> partial;
  std::string key;
  for (const Binding& rb : b.rows()) {
    if (restricted_key(rb, shared, key)) {
      table.emplace(key, &rb);
    } else {
      partial.push_back(&rb);
    }
  }

  for (const Binding& ra : a.rows()) {
    if (restricted_key(ra, shared, key)) {
      auto [lo, hi] = table.equal_range(key);
      for (auto it = lo; it != hi; ++it) {
        // Shared vars equal by construction; still need full compatibility
        // in case of vars bound in b but unbound in this a-row's shared set.
        if (ra.compatible(*it->second)) out.add(ra.merged(*it->second));
      }
      for (const Binding* rb : partial) {
        if (ra.compatible(*rb)) out.add(ra.merged(*rb));
      }
    } else {
      for (const Binding& rb : b.rows()) {
        if (ra.compatible(rb)) out.add(ra.merged(rb));
      }
    }
  }
  return out;
}

SolutionSet set_union(const SolutionSet& a, const SolutionSet& b) {
  SolutionSet out;
  out.rows().reserve(a.size() + b.size());
  for (const Binding& r : a.rows()) out.add(r);
  for (const Binding& r : b.rows()) out.add(r);
  return out;
}

SolutionSet minus(const SolutionSet& a, const SolutionSet& b,
                  bool vectorized) {
  if (vectorized) return vec_minus(a, b);
  SolutionSet out;
  for (const Binding& ra : a.rows()) {
    bool any_compatible = false;
    for (const Binding& rb : b.rows()) {
      if (ra.compatible(rb)) {
        any_compatible = true;
        break;
      }
    }
    if (!any_compatible) out.add(ra);
  }
  return out;
}

SolutionSet left_join(const SolutionSet& a, const SolutionSet& b,
                      bool vectorized) {
  if (vectorized) return vec_left_join(a, b);
  SolutionSet joined = join(a, b, false);
  // (O1 - O2): keep rows of a with no compatible partner in b.
  SolutionSet unmatched = minus(a, b, false);
  for (const Binding& r : unmatched.rows()) joined.add(r);
  return joined;
}

std::vector<std::string> variables_of(const SolutionSet& s) {
  std::set<std::string> vars;
  for (const Binding& r : s.rows()) {
    for (const auto& [name, _] : r.slots()) vars.insert(name);
  }
  return {vars.begin(), vars.end()};
}

}  // namespace ahsw::sparql
