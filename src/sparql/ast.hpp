// Abstract syntax tree for parsed SPARQL queries.
//
// Mirrors the paper's four building blocks (Sect. IV-A): query form,
// dataset clause, graph pattern, and solution sequence modifiers. The AST
// is the output of the Query Parser stage in the Fig. 3 workflow; the
// Query Transformation stage turns it into SPARQL algebra (algebra.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rdf/triple.hpp"
#include "sparql/expr.hpp"

namespace ahsw::sparql {

enum class QueryForm { kSelect, kConstruct, kAsk, kDescribe };

struct GroupPattern;

/// One syntactic element inside a group graph pattern.
struct GroupElement {
  enum class Kind {
    kTriple,    // a triple pattern from a triples block
    kOptional,  // OPTIONAL { ... }           groups[0]
    kUnion,     // { ... } UNION { ... } ...  groups[0..n]
    kGroup,     // nested { ... }             groups[0]
    kFilter,    // FILTER(expr)
  };

  Kind kind = Kind::kTriple;
  rdf::TriplePattern triple;             // kTriple
  std::vector<GroupPattern> groups;      // kOptional / kUnion / kGroup
  ExprPtr filter;                        // kFilter
};

/// `{ ... }` — an ordered list of elements.
struct GroupPattern {
  std::vector<GroupElement> elements;
};

/// ORDER BY condition.
struct OrderCondition {
  ExprPtr expr;
  bool ascending = true;
};

/// A parsed SPARQL query.
struct Query {
  QueryForm form = QueryForm::kSelect;

  // Solution sequence modifiers.
  bool distinct = false;
  bool reduced = false;
  bool select_all = false;                 // SELECT *
  std::vector<std::string> select_vars;    // names without '?'
  std::vector<OrderCondition> order_by;
  std::optional<std::uint64_t> limit;
  std::uint64_t offset = 0;

  // Dataset clause. Empty => the implicit dataset: the union of all triples
  // stored at all storage nodes (the ad-hoc case the paper focuses on).
  std::vector<std::string> from;
  std::vector<std::string> from_named;

  GroupPattern where;

  // CONSTRUCT template / DESCRIBE targets.
  std::vector<rdf::TriplePattern> construct_template;
  std::vector<rdf::PatternTerm> describe_targets;

  /// Variables referenced anywhere in the WHERE clause, sorted.
  [[nodiscard]] std::vector<std::string> pattern_variables() const;
};

/// Parse a SPARQL query string. Throws QuerySyntaxError on bad input.
[[nodiscard]] Query parse_query(std::string_view text);

}  // namespace ahsw::sparql
