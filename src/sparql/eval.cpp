#include "sparql/eval.hpp"

#include "sparql/columnar.hpp"

#include <algorithm>
#include <cassert>
#include <set>

namespace ahsw::sparql {

namespace {

/// Bind the variables of `p` against a concrete triple, extending `base`.
/// Returns false on conflict (repeated variable bound to different terms or
/// disagreement with an existing binding).
bool bind_triple(const rdf::TriplePattern& p, const rdf::Triple& t,
                 const Binding& base, Binding& out) {
  out = base;
  auto bind_pos = [&](const rdf::PatternTerm& pt,
                      const rdf::Term& value) -> bool {
    if (const rdf::Variable* v = rdf::var_of(pt)) {
      if (const rdf::Term* existing = out.get(v->name)) {
        return *existing == value;
      }
      out.set(v->name, value);
      return true;
    }
    return std::get<rdf::Term>(pt) == value;
  };
  return bind_pos(p.s, t.s) && bind_pos(p.p, t.p) && bind_pos(p.o, t.o);
}

/// Substitute variables bound in `b` into `p` to narrow the index scan.
rdf::TriplePattern substituted(const rdf::TriplePattern& p, const Binding& b) {
  auto sub = [&](const rdf::PatternTerm& pt) -> rdf::PatternTerm {
    if (const rdf::Variable* v = rdf::var_of(pt)) {
      if (const rdf::Term* t = b.get(v->name)) return *t;
    }
    return pt;
  };
  return rdf::TriplePattern{sub(p.s), sub(p.p), sub(p.o)};
}

/// Selectivity heuristic for greedy BGP ordering: more bound positions (after
/// substitution of already-certain variables) evaluate first.
std::size_t pick_next(const std::vector<BgpPattern>& bgp,
                      const std::vector<bool>& done,
                      const std::set<std::string>& bound_vars) {
  std::size_t best = bgp.size();
  int best_score = -1;
  for (std::size_t i = 0; i < bgp.size(); ++i) {
    if (done[i]) continue;
    const rdf::TriplePattern& p = bgp[i].pattern;
    int score = 0;
    bool shares = false;
    auto pos_score = [&](const rdf::PatternTerm& pt) {
      if (const rdf::Variable* v = rdf::var_of(pt)) {
        if (bound_vars.count(v->name) > 0) {
          score += 2;
          shares = true;
        }
      } else {
        score += 2;
      }
    };
    pos_score(p.s);
    pos_score(p.p);
    pos_score(p.o);
    if (shares || bound_vars.empty()) score += 1;  // avoid cartesian products
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  assert(best < bgp.size());
  return best;
}

}  // namespace

SolutionSet LocalEngine::match_pattern(const BgpPattern& p) const {
  SolutionSet out;
  Binding empty;
  store_->match(p.pattern, [&](const rdf::Triple& t) {
    Binding b;
    if (bind_triple(p.pattern, t, empty, b)) {
      if (p.pushed_filter == nullptr || satisfies(*p.pushed_filter, b)) {
        out.add(std::move(b));
      }
    }
  });
  return out;
}

SolutionSet LocalEngine::extend(const SolutionSet& input,
                                const BgpPattern& p) const {
  SolutionSet out;
  for (const Binding& base : input.rows()) {
    rdf::TriplePattern concrete = substituted(p.pattern, base);
    store_->match(concrete, [&](const rdf::Triple& t) {
      Binding b;
      if (bind_triple(p.pattern, t, base, b)) {
        if (p.pushed_filter == nullptr || satisfies(*p.pushed_filter, b)) {
          out.add(std::move(b));
        }
      }
    });
  }
  return out;
}

SolutionSet LocalEngine::evaluate_bgp(
    const std::vector<BgpPattern>& bgp) const {
  // The empty BGP has exactly one solution: the empty mapping (W3C).
  SolutionSet acc;
  acc.add(Binding{});
  if (bgp.empty()) return acc;

  std::vector<bool> done(bgp.size(), false);
  std::set<std::string> bound_vars;
  for (std::size_t step = 0; step < bgp.size(); ++step) {
    std::size_t i = pick_next(bgp, done, bound_vars);
    done[i] = true;
    acc = extend(acc, bgp[i]);
    if (acc.empty()) return acc;
    auto add_var = [&](const rdf::PatternTerm& pt) {
      if (const rdf::Variable* v = rdf::var_of(pt)) bound_vars.insert(v->name);
    };
    add_var(bgp[i].pattern.s);
    add_var(bgp[i].pattern.p);
    add_var(bgp[i].pattern.o);
  }
  return acc;
}

SolutionSet LocalEngine::evaluate(const Algebra& a) const {
  switch (a.kind) {
    case AlgebraKind::kBgp:
      return evaluate_bgp(a.bgp);
    case AlgebraKind::kJoin:
      return join(evaluate(*a.left), evaluate(*a.right), vectorized_);
    case AlgebraKind::kLeftJoin:
      return left_join_conditioned(evaluate(*a.left), evaluate(*a.right),
                                   a.expr, vectorized_);
    case AlgebraKind::kUnion:
      return set_union(evaluate(*a.left), evaluate(*a.right));
    case AlgebraKind::kFilter:
      return filter_set(evaluate(*a.left), *a.expr, vectorized_);
    case AlgebraKind::kProject: {
      SolutionSet in = evaluate(*a.left);
      SolutionSet out;
      for (const Binding& b : in.rows()) out.add(b.projected(a.vars));
      return out;
    }
    case AlgebraKind::kDistinct:
      return deduplicated(evaluate(*a.left), vectorized_);
    case AlgebraKind::kReduced: {
      SolutionSet in = evaluate(*a.left);
      auto& rows = in.rows();
      rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
      return in;
    }
    case AlgebraKind::kOrderBy: {
      SolutionSet in = evaluate(*a.left);
      order_solutions(in, a.order);
      return in;
    }
    case AlgebraKind::kSlice: {
      SolutionSet in = evaluate(*a.left);
      auto& rows = in.rows();
      std::size_t off = std::min<std::size_t>(rows.size(), a.offset);
      rows.erase(rows.begin(),
                 rows.begin() + static_cast<std::ptrdiff_t>(off));
      if (a.limit.has_value() && rows.size() > *a.limit) {
        rows.resize(*a.limit);
      }
      return in;
    }
  }
  return {};
}

void order_solutions(SolutionSet& set,
                     const std::vector<OrderCondition>& order) {
  auto value_less = [](const ExprValue& x, const ExprValue& y) -> int {
    // Errors / unbound sort lowest, then by numeric value, then by term
    // surface form.
    if (!x && !y) return 0;
    if (!x) return -1;
    if (!y) return 1;
    double nx = 0.0, ny = 0.0;
    if (x->numeric_value(nx) && y->numeric_value(ny)) {
      if (nx < ny) return -1;
      if (nx > ny) return 1;
      return 0;
    }
    std::string sx = x->to_string();
    std::string sy = y->to_string();
    return sx.compare(sy) < 0 ? -1 : (sx == sy ? 0 : 1);
  };
  std::stable_sort(
      set.rows().begin(), set.rows().end(),
      [&](const Binding& a, const Binding& b) {
        for (const OrderCondition& cond : order) {
          ExprValue va = evaluate(*cond.expr, a);
          ExprValue vb = evaluate(*cond.expr, b);
          int c = value_less(va, vb);
          if (c != 0) return cond.ascending ? c < 0 : c > 0;
        }
        return false;
      });
}

std::size_t QueryResult::byte_size() const noexcept {
  std::size_t n = solutions.byte_size() + 1;
  for (const rdf::Triple& t : graph) n += t.byte_size();
  return n;
}

std::string QueryResult::to_string() const {
  switch (form) {
    case QueryForm::kAsk:
      return ask_answer ? "true" : "false";
    case QueryForm::kSelect:
      return solutions.to_string();
    default: {
      std::string out;
      for (const rdf::Triple& t : graph) {
        out += t.to_string();
        out += '\n';
      }
      return out;
    }
  }
}

namespace {

/// Instantiate a CONSTRUCT template against solutions; rows that leave any
/// template position unbound are skipped (per spec), duplicates removed.
std::vector<rdf::Triple> instantiate_template(
    const std::vector<rdf::TriplePattern>& tmpl, const SolutionSet& sols) {
  std::set<rdf::Triple> out;
  for (const Binding& b : sols.rows()) {
    for (const rdf::TriplePattern& tp : tmpl) {
      rdf::TriplePattern concrete = substituted(tp, b);
      if (concrete.bound_count() != 3) continue;
      out.insert(rdf::Triple{*concrete.bound_s(), *concrete.bound_p(),
                             *concrete.bound_o()});
    }
  }
  return {out.begin(), out.end()};
}

/// All triples mentioning `t` as subject or object.
void describe_term(const rdf::Term& t, const rdf::TripleStore& store,
                   std::set<rdf::Triple>& out) {
  for (const rdf::Triple& tr :
       store.match(rdf::TriplePattern{t, rdf::Variable{"p"},
                                      rdf::Variable{"o"}})) {
    out.insert(tr);
  }
  for (const rdf::Triple& tr :
       store.match(rdf::TriplePattern{rdf::Variable{"s"}, rdf::Variable{"p"},
                                      t})) {
    out.insert(tr);
  }
}

}  // namespace

QueryResult finalize_result(const Query& q, SolutionSet raw,
                            const rdf::TripleStore* store) {
  QueryResult res;
  res.form = q.form;

  if (q.order_by.empty()) {
    raw.normalize();  // deterministic output when no explicit order given
  } else {
    order_solutions(raw, q.order_by);
  }

  switch (q.form) {
    case QueryForm::kAsk:
      res.ask_answer = !raw.empty();
      return res;

    case QueryForm::kConstruct:
      res.graph = instantiate_template(q.construct_template, raw);
      return res;

    case QueryForm::kDescribe: {
      if (store == nullptr) return res;
      std::set<rdf::Triple> triples;
      for (const rdf::PatternTerm& target : q.describe_targets) {
        if (const rdf::Term* t = rdf::term_of(target)) {
          describe_term(*t, *store, triples);
        } else {
          const rdf::Variable& v = std::get<rdf::Variable>(target);
          for (const Binding& b : raw.rows()) {
            if (const rdf::Term* bound_term = b.get(v.name)) {
              describe_term(*bound_term, *store, triples);
            }
          }
        }
      }
      res.graph.assign(triples.begin(), triples.end());
      return res;
    }

    case QueryForm::kSelect:
      break;
  }

  // SELECT: projection, distinct/reduced, slice.
  res.variables =
      q.select_all ? q.pattern_variables() : q.select_vars;
  SolutionSet projected;
  for (const Binding& b : raw.rows()) {
    projected.add(b.projected(res.variables));
  }
  if (q.distinct) {
    std::set<Binding> seen;
    SolutionSet unique;
    for (Binding& b : projected.rows()) {
      if (seen.insert(b).second) unique.add(std::move(b));
    }
    projected = std::move(unique);
  } else if (q.reduced) {
    auto& rows = projected.rows();
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  }
  auto& rows = projected.rows();
  std::size_t off = std::min<std::size_t>(rows.size(), q.offset);
  rows.erase(rows.begin(), rows.begin() + static_cast<std::ptrdiff_t>(off));
  if (q.limit.has_value() && rows.size() > *q.limit) rows.resize(*q.limit);
  res.solutions = std::move(projected);
  return res;
}

SolutionSet left_join_conditioned(const SolutionSet& a, const SolutionSet& b,
                                  const ExprPtr& cond, bool vectorized) {
  if (vectorized) return vec_left_join_conditioned(a, b, cond);
  if (cond == nullptr) return left_join(a, b, false);
  // LeftJoin(O1, O2, F): u1 extends with every compatible u2 whose merge
  // satisfies F, and survives unextended iff no such u2 exists.
  SolutionSet out;
  for (const Binding& u1 : a.rows()) {
    bool extended = false;
    for (const Binding& u2 : b.rows()) {
      if (u1.compatible(u2)) {
        Binding m = u1.merged(u2);
        if (satisfies(*cond, m)) {
          out.add(std::move(m));
          extended = true;
        }
      }
    }
    if (!extended) out.add(u1);
  }
  return out;
}

SolutionSet filter_set(const SolutionSet& in, const Expr& e,
                       bool vectorized) {
  if (vectorized) return vec_filter_set(in, e);
  SolutionSet out;
  for (const Binding& b : in.rows()) {
    if (satisfies(e, b)) out.add(b);
  }
  return out;
}

SolutionSet deduplicated(SolutionSet in, bool vectorized) {
  if (vectorized) return vec_deduplicated(in);
  in.normalize();
  auto& rows = in.rows();
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return in;
}

QueryResult execute_local(const Query& q, const rdf::TripleStore& store) {
  LocalEngine engine(store);
  AlgebraPtr pattern = translate_pattern(q.where);
  SolutionSet raw = engine.evaluate(*pattern);
  return finalize_result(q, std::move(raw), &store);
}

}  // namespace ahsw::sparql
