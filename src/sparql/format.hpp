// Plain-text table rendering of query results (the kind of output a
// SPARQL endpoint's console client would show). Used by the shell tool and
// handy in examples/tests.
#pragma once

#include <string>

#include "sparql/eval.hpp"

namespace ahsw::sparql {

/// Render a SELECT result as an aligned ASCII table:
///
///   | x                    | name        |
///   |----------------------|-------------|
///   | <http://people/bob>  | "Bob Jones" |
///   2 rows
///
/// ASK renders as `yes` / `no`; CONSTRUCT/DESCRIBE as N-Triples statements.
[[nodiscard]] std::string to_table(const QueryResult& result);

}  // namespace ahsw::sparql
