// Vectorized (dictionary-id) implementations of the SPARQL set algebra.
//
// The row-at-a-time operators in solution.cpp / eval.cpp compare bindings by
// materialized term strings: every hash-join key is a concatenation of
// `Term::to_string()` values and every compatibility check re-compares full
// terms. These kernels instead intern every distinct term of the operand
// sets into a per-operation rdf::TermDictionary — ids assigned in Term
// `operator<=>` order, so id order == term order — and run the algebra over
// columnar TermId batches. Strings are touched exactly twice per operation:
// once to intern each distinct term and once to materialize the surviving
// rows.
//
// Contract: each vec_* function returns *identical rows in identical order*
// to its legacy counterpart (join, minus, left_join, left_join_conditioned,
// filter_set, deduplicated). The executor's `ExecutionPolicy::vectorized`
// toggle must be observationally invisible — same solutions, same plan
// notes, same traffic — which tests/sparql/vectorized_ab_test.cpp pins.
#pragma once

#include "sparql/expr.hpp"
#include "sparql/solution.hpp"

namespace ahsw::sparql {

/// Vectorized Join: same rows, same order as join(a, b).
[[nodiscard]] SolutionSet vec_join(const SolutionSet& a, const SolutionSet& b);

/// Vectorized Minus: same rows, same order as minus(a, b).
[[nodiscard]] SolutionSet vec_minus(const SolutionSet& a,
                                    const SolutionSet& b);

/// Vectorized LeftJoin without condition: join part then unmatched rows.
[[nodiscard]] SolutionSet vec_left_join(const SolutionSet& a,
                                        const SolutionSet& b);

/// Vectorized LeftJoin with OPTIONAL condition; `cond == nullptr` means
/// `true`. Condition evaluation is memoized on the tuple of dictionary ids
/// the expression's variables take in the merged row, so each distinct
/// id-tuple pays for one string-space evaluation.
[[nodiscard]] SolutionSet vec_left_join_conditioned(const SolutionSet& a,
                                                    const SolutionSet& b,
                                                    const ExprPtr& cond);

/// Vectorized Filter with the same memoization as above.
[[nodiscard]] SolutionSet vec_filter_set(const SolutionSet& in, const Expr& e);

/// Vectorized Distinct: canonical sort + unique via id comparisons only
/// (id order == term order by construction, so the result matches
/// normalize() + std::unique exactly).
[[nodiscard]] SolutionSet vec_deduplicated(const SolutionSet& in);

}  // namespace ahsw::sparql
