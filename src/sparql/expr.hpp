// SPARQL FILTER expressions: built-in conditions per the SPARQL 1.0
// recommendation subset used by the paper's examples (regex, comparisons,
// logical connectives, arithmetic, bound/isIRI/isLiteral/isBlank,
// str/lang/datatype).
//
// Evaluation follows SPARQL error semantics: a type error yields an "error"
// value, which FILTER treats as false, and which || / && absorb per the
// three-valued logic of the spec.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "rdf/term.hpp"
#include "sparql/solution.hpp"

namespace ahsw::sparql {

enum class ExprKind {
  kVar,       // ?x
  kConst,     // RDF term constant
  kNot,       // !e
  kNeg,       // -e
  kOr,        // e1 || e2
  kAnd,       // e1 && e2
  kEq,        // =
  kNe,        // !=
  kLt,        // <
  kGt,        // >
  kLe,        // <=
  kGe,        // >=
  kAdd,       // +
  kSub,       // -
  kMul,       // *
  kDiv,       // /
  kRegex,     // regex(e, pattern [, flags])
  kBound,     // bound(?x)
  kIsIri,     // isIRI(e)
  kIsLiteral, // isLiteral(e)
  kIsBlank,   // isBlank(e)
  kStr,       // str(e)
  kLang,      // lang(e)
  kDatatype,  // datatype(e)
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression tree node.
struct Expr {
  ExprKind kind;
  std::string var;          // kVar / kBound: variable name without '?'
  rdf::Term constant;       // kConst
  std::vector<ExprPtr> args;

  [[nodiscard]] static ExprPtr variable(std::string name);
  [[nodiscard]] static ExprPtr constant_term(rdf::Term t);
  [[nodiscard]] static ExprPtr unary(ExprKind k, ExprPtr a);
  [[nodiscard]] static ExprPtr binary(ExprKind k, ExprPtr a, ExprPtr b);
  [[nodiscard]] static ExprPtr regex(ExprPtr text, ExprPtr pattern,
                                     ExprPtr flags = nullptr);
  [[nodiscard]] static ExprPtr bound(std::string name);

  /// SPARQL surface form, e.g. `regex(?name, "Smith")`.
  [[nodiscard]] std::string to_string() const;

  /// Serialized size for the network cost model (filters ship with
  /// sub-queries).
  [[nodiscard]] std::size_t byte_size() const noexcept;
};

/// Result of evaluating an expression: an RDF term, or "error".
using ExprValue = std::optional<rdf::Term>;

/// Evaluate `e` under `binding`. std::nullopt encodes the SPARQL error value.
[[nodiscard]] ExprValue evaluate(const Expr& e, const Binding& binding);

/// Effective boolean value of evaluating `e`; errors map to false (which is
/// exactly the FILTER semantics).
[[nodiscard]] bool satisfies(const Expr& e, const Binding& binding);

/// All variables mentioned by the expression (drives filter pushing: a
/// filter may move below a join only if the operand binds all of these).
void collect_variables(const Expr& e, std::set<std::string>& out);
[[nodiscard]] std::set<std::string> variables_of(const Expr& e);

}  // namespace ahsw::sparql
