#include "sparql/algebra.hpp"

namespace ahsw::sparql {

namespace {

// Nodes are built mutable and only become const (AlgebraPtr) when handed
// out, so construction never casts constness away.
std::shared_ptr<Algebra> node(AlgebraKind k) {
  auto a = std::make_shared<Algebra>();
  a->kind = k;
  return a;
}

[[nodiscard]] bool is_empty_bgp(const AlgebraPtr& a) {
  return a != nullptr && a->kind == AlgebraKind::kBgp && a->bgp.empty();
}

void pattern_vars(const rdf::TriplePattern& tp, std::set<std::string>& out) {
  if (const rdf::Variable* v = rdf::var_of(tp.s)) out.insert(v->name);
  if (const rdf::Variable* v = rdf::var_of(tp.p)) out.insert(v->name);
  if (const rdf::Variable* v = rdf::var_of(tp.o)) out.insert(v->name);
}

}  // namespace

std::string BgpPattern::to_string() const {
  if (pushed_filter == nullptr) return pattern.to_string();
  return "Filter(" + pushed_filter->to_string() + ", " + pattern.to_string() +
         ")";
}

AlgebraPtr Algebra::make_bgp(std::vector<rdf::TriplePattern> patterns) {
  std::vector<BgpPattern> ps;
  ps.reserve(patterns.size());
  for (rdf::TriplePattern& p : patterns) {
    ps.push_back(BgpPattern{std::move(p), nullptr});
  }
  return make_bgp2(std::move(ps));
}

AlgebraPtr Algebra::make_bgp2(std::vector<BgpPattern> patterns) {
  std::shared_ptr<Algebra> a = node(AlgebraKind::kBgp);
  a->bgp = std::move(patterns);
  return a;
}

AlgebraPtr Algebra::make_join(AlgebraPtr l, AlgebraPtr r) {
  // Identity: Join(Z, A) = A where Z is the empty BGP (W3C simplification).
  if (is_empty_bgp(l)) return r;
  if (is_empty_bgp(r)) return l;
  // Fuse adjacent BGPs so that `{ P1. P2 }` yields BGP(P1 . P2), the form
  // the paper's Fig. 6 expects, rather than Join(BGP(P1), BGP(P2)).
  if (l->kind == AlgebraKind::kBgp && r->kind == AlgebraKind::kBgp) {
    std::vector<BgpPattern> merged = l->bgp;
    merged.insert(merged.end(), r->bgp.begin(), r->bgp.end());
    return make_bgp2(std::move(merged));
  }
  std::shared_ptr<Algebra> a = node(AlgebraKind::kJoin);
  a->left = std::move(l);
  a->right = std::move(r);
  return a;
}

AlgebraPtr Algebra::make_left_join(AlgebraPtr l, AlgebraPtr r,
                                   ExprPtr condition) {
  std::shared_ptr<Algebra> a = node(AlgebraKind::kLeftJoin);
  a->left = std::move(l);
  a->right = std::move(r);
  a->expr = std::move(condition);
  return a;
}

AlgebraPtr Algebra::make_union(AlgebraPtr l, AlgebraPtr r) {
  std::shared_ptr<Algebra> a = node(AlgebraKind::kUnion);
  a->left = std::move(l);
  a->right = std::move(r);
  return a;
}

AlgebraPtr Algebra::make_filter(ExprPtr condition, AlgebraPtr inner) {
  std::shared_ptr<Algebra> a = node(AlgebraKind::kFilter);
  a->expr = std::move(condition);
  a->left = std::move(inner);
  return a;
}

AlgebraPtr Algebra::make_project(std::vector<std::string> vars,
                                 AlgebraPtr inner) {
  std::shared_ptr<Algebra> a = node(AlgebraKind::kProject);
  a->vars = std::move(vars);
  a->left = std::move(inner);
  return a;
}

AlgebraPtr Algebra::make_distinct(AlgebraPtr inner) {
  std::shared_ptr<Algebra> a = node(AlgebraKind::kDistinct);
  a->left = std::move(inner);
  return a;
}

AlgebraPtr Algebra::make_reduced(AlgebraPtr inner) {
  std::shared_ptr<Algebra> a = node(AlgebraKind::kReduced);
  a->left = std::move(inner);
  return a;
}

AlgebraPtr Algebra::make_order_by(std::vector<OrderCondition> order,
                                  AlgebraPtr inner) {
  std::shared_ptr<Algebra> a = node(AlgebraKind::kOrderBy);
  a->order = std::move(order);
  a->left = std::move(inner);
  return a;
}

AlgebraPtr Algebra::make_slice(std::uint64_t offset,
                               std::optional<std::uint64_t> limit,
                               AlgebraPtr inner) {
  std::shared_ptr<Algebra> a = node(AlgebraKind::kSlice);
  a->offset = offset;
  a->limit = limit;
  a->left = std::move(inner);
  return a;
}

std::set<std::string> Algebra::certain_variables() const {
  std::set<std::string> out;
  switch (kind) {
    case AlgebraKind::kBgp:
      for (const BgpPattern& p : bgp) pattern_vars(p.pattern, out);
      return out;
    case AlgebraKind::kJoin: {
      out = left->certain_variables();
      std::set<std::string> r = right->certain_variables();
      out.insert(r.begin(), r.end());
      return out;
    }
    case AlgebraKind::kLeftJoin:
      return left->certain_variables();  // right side is optional
    case AlgebraKind::kUnion: {
      // Only variables certain in BOTH branches are certain overall.
      std::set<std::string> l = left->certain_variables();
      std::set<std::string> r = right->certain_variables();
      for (const std::string& v : l) {
        if (r.count(v) > 0) out.insert(v);
      }
      return out;
    }
    case AlgebraKind::kProject: {
      std::set<std::string> inner = left->certain_variables();
      for (const std::string& v : vars) {
        if (inner.count(v) > 0) out.insert(v);
      }
      return out;
    }
    default:
      return left != nullptr ? left->certain_variables() : out;
  }
}

std::set<std::string> Algebra::all_variables() const {
  std::set<std::string> out;
  switch (kind) {
    case AlgebraKind::kBgp:
      for (const BgpPattern& p : bgp) pattern_vars(p.pattern, out);
      return out;
    case AlgebraKind::kProject:
      return {vars.begin(), vars.end()};
    default: {
      if (left != nullptr) {
        std::set<std::string> l = left->all_variables();
        out.insert(l.begin(), l.end());
      }
      if (right != nullptr) {
        std::set<std::string> r = right->all_variables();
        out.insert(r.begin(), r.end());
      }
      return out;
    }
  }
}

std::string Algebra::to_string() const {
  switch (kind) {
    case AlgebraKind::kBgp: {
      std::string out = "BGP(";
      for (std::size_t i = 0; i < bgp.size(); ++i) {
        if (i != 0) out += " . ";
        out += bgp[i].to_string();
      }
      return out + ")";
    }
    case AlgebraKind::kJoin:
      return "Join(" + left->to_string() + ", " + right->to_string() + ")";
    case AlgebraKind::kLeftJoin:
      return "LeftJoin(" + left->to_string() + ", " + right->to_string() +
             ", " + (expr != nullptr ? expr->to_string() : "true") + ")";
    case AlgebraKind::kUnion:
      return "Union(" + left->to_string() + ", " + right->to_string() + ")";
    case AlgebraKind::kFilter:
      return "Filter(" + expr->to_string() + ", " + left->to_string() + ")";
    case AlgebraKind::kProject: {
      std::string out = "Project((";
      for (std::size_t i = 0; i < vars.size(); ++i) {
        if (i != 0) out += " ";
        out += "?" + vars[i];
      }
      return out + "), " + left->to_string() + ")";
    }
    case AlgebraKind::kDistinct:
      return "Distinct(" + left->to_string() + ")";
    case AlgebraKind::kReduced:
      return "Reduced(" + left->to_string() + ")";
    case AlgebraKind::kOrderBy: {
      std::string out = "OrderBy((";
      for (std::size_t i = 0; i < order.size(); ++i) {
        if (i != 0) out += " ";
        out += (order[i].ascending ? "asc" : "desc") + std::string("(") +
               order[i].expr->to_string() + ")";
      }
      return out + "), " + left->to_string() + ")";
    }
    case AlgebraKind::kSlice: {
      std::string out = "Slice(" + std::to_string(offset) + ", ";
      out += limit.has_value() ? std::to_string(*limit) : std::string("*");
      return out + ", " + left->to_string() + ")";
    }
  }
  return {};
}

AlgebraPtr translate_pattern(const GroupPattern& group) {
  // W3C ToAlgebra over one group: fold elements left to right, fusing
  // triples into BGPs; FILTERs collect and apply over the whole group.
  AlgebraPtr acc = Algebra::make_bgp({});
  std::vector<ExprPtr> filters;

  for (const GroupElement& el : group.elements) {
    switch (el.kind) {
      case GroupElement::Kind::kTriple:
        acc = Algebra::make_join(acc, Algebra::make_bgp({el.triple}));
        break;
      case GroupElement::Kind::kFilter:
        filters.push_back(el.filter);
        break;
      case GroupElement::Kind::kOptional: {
        AlgebraPtr inner = translate_pattern(el.groups[0]);
        // If the optional group is itself Filter(F, A), the condition is
        // absorbed into the LeftJoin (W3C rule); otherwise condition=true.
        if (inner->kind == AlgebraKind::kFilter) {
          acc = Algebra::make_left_join(acc, inner->left, inner->expr);
        } else {
          acc = Algebra::make_left_join(acc, inner, nullptr);
        }
        break;
      }
      case GroupElement::Kind::kUnion: {
        AlgebraPtr u = translate_pattern(el.groups[0]);
        for (std::size_t i = 1; i < el.groups.size(); ++i) {
          u = Algebra::make_union(u, translate_pattern(el.groups[i]));
        }
        acc = Algebra::make_join(acc, u);
        break;
      }
      case GroupElement::Kind::kGroup:
        acc = Algebra::make_join(acc, translate_pattern(el.groups[0]));
        break;
    }
  }

  for (const ExprPtr& f : filters) {
    if (acc->kind == AlgebraKind::kFilter) {
      // Merge multiple FILTERs of one group into a conjunction.
      acc = Algebra::make_filter(
          Expr::binary(ExprKind::kAnd, acc->expr, f), acc->left);
    } else {
      acc = Algebra::make_filter(f, acc);
    }
  }
  return acc;
}

AlgebraPtr translate(const Query& q) {
  AlgebraPtr a = translate_pattern(q.where);
  if (!q.order_by.empty()) {
    a = Algebra::make_order_by(q.order_by, a);
  }
  if (q.form == QueryForm::kSelect && !q.select_all) {
    a = Algebra::make_project(q.select_vars, a);
  }
  if (q.distinct) {
    a = Algebra::make_distinct(a);
  } else if (q.reduced) {
    a = Algebra::make_reduced(a);
  }
  if (q.offset != 0 || q.limit.has_value()) {
    a = Algebra::make_slice(q.offset, q.limit, a);
  }
  return a;
}

}  // namespace ahsw::sparql
