// Local SPARQL evaluation over one triple store.
//
// This is the "Local Query Execution" box of the paper's Fig. 3 workflow:
// every storage node runs this engine against its own RDF repository when a
// sub-query is shipped to it. The same engine evaluated against a merged
// store acts as the oracle that distributed execution is tested against.
#pragma once

#include <string>
#include <vector>

#include "rdf/store.hpp"
#include "sparql/algebra.hpp"
#include "sparql/ast.hpp"
#include "sparql/solution.hpp"

namespace ahsw::sparql {

/// Evaluation engine bound to a triple store.
class LocalEngine {
 public:
  /// `vectorized` routes the algebra's set operations through the
  /// dictionary-id kernels (sparql/columnar.hpp); false keeps the original
  /// row-at-a-time path. Both yield identical solutions — the flag mirrors
  /// ExecutionPolicy::vectorized for A/B comparison.
  explicit LocalEngine(const rdf::TripleStore& store, bool vectorized = true)
      : store_(&store), vectorized_(vectorized) {}

  /// Evaluate any algebra expression to a solution set.
  [[nodiscard]] SolutionSet evaluate(const Algebra& a) const;

  /// Evaluate a BGP with binding propagation (patterns are greedily ordered
  /// by selectivity: most-bound first, preferring ones sharing variables
  /// with those already evaluated).
  [[nodiscard]] SolutionSet evaluate_bgp(
      const std::vector<BgpPattern>& bgp) const;

  /// Solutions of one triple pattern, with repeated-variable consistency
  /// (e.g. `?x p ?x`) enforced and any pushed filter applied.
  [[nodiscard]] SolutionSet match_pattern(const BgpPattern& p) const;

 private:
  /// Extend each binding in `input` with matches of `p`.
  [[nodiscard]] SolutionSet extend(const SolutionSet& input,
                                   const BgpPattern& p) const;

  const rdf::TripleStore* store_;
  bool vectorized_ = true;
};

/// Result of running a full query.
struct QueryResult {
  QueryForm form = QueryForm::kSelect;
  std::vector<std::string> variables;  // SELECT projection
  SolutionSet solutions;               // SELECT
  bool ask_answer = false;             // ASK
  std::vector<rdf::Triple> graph;      // CONSTRUCT / DESCRIBE

  [[nodiscard]] std::size_t byte_size() const noexcept;
  [[nodiscard]] std::string to_string() const;
};

/// Sort `set` according to ORDER BY conditions (stable; unbound orders
/// lowest, numeric before lexical comparison). Exposed for reuse by the
/// distributed post-processing stage.
void order_solutions(SolutionSet& set,
                     const std::vector<OrderCondition>& order);

/// Apply Project/Distinct/Reduced/OrderBy/Slice modifiers of `q` to a raw
/// pattern-matching result (used by the distributed processor's
/// post-processing stage at the query initiator).
[[nodiscard]] QueryResult finalize_result(const Query& q, SolutionSet raw,
                                          const rdf::TripleStore* store);

/// Parse-transform-evaluate a whole query against one local store.
[[nodiscard]] QueryResult execute_local(const Query& q,
                                        const rdf::TripleStore& store);

/// LeftJoin with an optional condition (SPARQL OPTIONAL semantics): each
/// left row extends with every compatible right row satisfying `cond`, or
/// survives alone when none does. cond == nullptr means `true`.
/// `vectorized` as in solution.hpp: id-space kernel vs legacy path, same
/// rows either way.
[[nodiscard]] SolutionSet left_join_conditioned(const SolutionSet& a,
                                                const SolutionSet& b,
                                                const ExprPtr& cond,
                                                bool vectorized = true);

/// Rows of `in` satisfying `e`.
[[nodiscard]] SolutionSet filter_set(const SolutionSet& in, const Expr& e,
                                     bool vectorized = true);

/// Canonically sorted with duplicates removed (set semantics, used at every
/// in-network merge point of the distributed processor).
[[nodiscard]] SolutionSet deduplicated(SolutionSet in,
                                       bool vectorized = true);

}  // namespace ahsw::sparql
