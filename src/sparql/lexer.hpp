// Tokenizer for the SPARQL query surface syntax.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ahsw::sparql {

enum class TokenKind {
  kEnd,
  kIriRef,     // <...>            text = IRI without angle brackets
  kPName,      // prefix:local / :local / bare identifier (keywords excluded)
  kVar,        // ?x / $x          text = name without sigil
  kString,     // "..." / '...'    text = unescaped value
  kLangTag,    // @en              text = tag
  kInteger,    // 42
  kDecimal,    // 3.14
  kBlank,      // _:b              text = label
  kKeyword,    // SELECT, WHERE, FILTER, ... text = uppercased
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kDot,
  kSemicolon,
  kComma,
  kStar,
  kDoubleCaret,  // ^^
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
  kAndAnd,
  kOrOr,
  kBang,
  kPlus,
  kMinus,
  kSlash,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::size_t line = 1;
  std::size_t column = 1;
};

/// Raised on any lexical or syntactic error in a SPARQL query string.
class QuerySyntaxError : public std::runtime_error {
 public:
  QuerySyntaxError(std::size_t line, std::size_t column,
                   const std::string& what)
      : std::runtime_error("SPARQL syntax error at " + std::to_string(line) +
                           ":" + std::to_string(column) + ": " + what),
        line_(line),
        column_(column) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// Tokenize a full query string; the result always ends with a kEnd token.
[[nodiscard]] std::vector<Token> tokenize(std::string_view query);

}  // namespace ahsw::sparql
