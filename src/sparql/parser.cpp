#include <map>
#include <set>

#include "sparql/ast.hpp"
#include "sparql/lexer.hpp"

namespace ahsw::sparql {

namespace {

constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::string_view text) : tokens_(tokenize(text)) {}

  Query run() {
    parse_prologue();
    Query q;
    const Token& t = peek();
    if (is_keyword("SELECT")) {
      parse_select(q);
    } else if (is_keyword("ASK")) {
      parse_ask(q);
    } else if (is_keyword("CONSTRUCT")) {
      parse_construct(q);
    } else if (is_keyword("DESCRIBE")) {
      parse_describe(q);
    } else {
      fail(t, "expected SELECT, ASK, CONSTRUCT or DESCRIBE");
    }
    parse_solution_modifiers(q);
    if (peek().kind != TokenKind::kEnd) fail(peek(), "trailing input");
    return q;
  }

 private:
  // --- token plumbing ----------------------------------------------------

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  const Token& take() {
    const Token& t = peek();
    if (t.kind != TokenKind::kEnd) ++pos_;
    return t;
  }

  [[nodiscard]] bool is_keyword(std::string_view kw,
                                std::size_t ahead = 0) const {
    const Token& t = peek(ahead);
    return t.kind == TokenKind::kKeyword && t.text == kw;
  }

  bool accept_keyword(std::string_view kw) {
    if (!is_keyword(kw)) return false;
    take();
    return true;
  }

  void expect_keyword(std::string_view kw) {
    if (!accept_keyword(kw)) {
      fail(peek(), "expected keyword " + std::string(kw));
    }
  }

  bool accept(TokenKind kind) {
    if (peek().kind != kind) return false;
    take();
    return true;
  }

  const Token& expect(TokenKind kind, const std::string& what) {
    if (peek().kind != kind) fail(peek(), "expected " + what);
    return take();
  }

  [[noreturn]] static void fail(const Token& t, const std::string& what) {
    throw QuerySyntaxError(t.line, t.column, what);
  }

  // --- prologue -----------------------------------------------------------

  void parse_prologue() {
    while (true) {
      if (accept_keyword("PREFIX")) {
        const Token& name = expect(TokenKind::kPName, "prefix name");
        std::string prefix = name.text;
        // The lexer keeps "p:" + local; a prefix declaration has empty local.
        auto colon = prefix.find(':');
        if (colon == std::string::npos) fail(name, "expected 'prefix:'");
        std::string key = prefix.substr(0, colon);
        if (colon + 1 != prefix.size()) {
          fail(name, "prefix declaration must end with ':'");
        }
        const Token& iri = expect(TokenKind::kIriRef, "IRI");
        prefixes_[key] = iri.text;
      } else if (accept_keyword("BASE")) {
        base_ = expect(TokenKind::kIriRef, "IRI").text;
      } else {
        return;
      }
    }
  }

  // --- query forms ----------------------------------------------------------

  void parse_select(Query& q) {
    expect_keyword("SELECT");
    q.form = QueryForm::kSelect;
    if (accept_keyword("DISTINCT")) q.distinct = true;
    else if (accept_keyword("REDUCED")) q.reduced = true;
    if (accept(TokenKind::kStar)) {
      q.select_all = true;
    } else {
      while (peek().kind == TokenKind::kVar) {
        q.select_vars.push_back(take().text);
      }
      if (q.select_vars.empty()) {
        fail(peek(), "expected projection variables or '*'");
      }
    }
    parse_dataset_clauses(q);
    parse_where(q);
  }

  void parse_ask(Query& q) {
    expect_keyword("ASK");
    q.form = QueryForm::kAsk;
    parse_dataset_clauses(q);
    // WHERE keyword optional for ASK.
    accept_keyword("WHERE");
    q.where = parse_group();
  }

  void parse_construct(Query& q) {
    expect_keyword("CONSTRUCT");
    q.form = QueryForm::kConstruct;
    expect(TokenKind::kLBrace, "'{'");
    while (peek().kind != TokenKind::kRBrace) {
      parse_triples_same_subject(q.construct_template);
      if (!accept(TokenKind::kDot)) break;
    }
    expect(TokenKind::kRBrace, "'}'");
    parse_dataset_clauses(q);
    parse_where(q);
  }

  void parse_describe(Query& q) {
    expect_keyword("DESCRIBE");
    q.form = QueryForm::kDescribe;
    if (accept(TokenKind::kStar)) {
      q.select_all = true;
    } else {
      while (true) {
        const Token& t = peek();
        if (t.kind == TokenKind::kVar) {
          q.describe_targets.push_back(rdf::Variable{take().text});
        } else if (t.kind == TokenKind::kIriRef ||
                   t.kind == TokenKind::kPName) {
          q.describe_targets.push_back(parse_iri());
        } else {
          break;
        }
      }
      if (q.describe_targets.empty()) {
        fail(peek(), "expected DESCRIBE targets or '*'");
      }
    }
    parse_dataset_clauses(q);
    if (is_keyword("WHERE") || peek().kind == TokenKind::kLBrace) {
      parse_where(q);
    }
  }

  void parse_dataset_clauses(Query& q) {
    while (accept_keyword("FROM")) {
      if (accept_keyword("NAMED")) {
        q.from_named.push_back(expect(TokenKind::kIriRef, "IRI").text);
      } else {
        q.from.push_back(expect(TokenKind::kIriRef, "IRI").text);
      }
    }
  }

  void parse_where(Query& q) {
    accept_keyword("WHERE");
    q.where = parse_group();
  }

  // --- graph patterns --------------------------------------------------------

  GroupPattern parse_group() {
    expect(TokenKind::kLBrace, "'{'");
    GroupPattern group;
    while (peek().kind != TokenKind::kRBrace) {
      if (is_keyword("FILTER")) {
        take();
        GroupElement el;
        el.kind = GroupElement::Kind::kFilter;
        el.filter = parse_bracketed_or_builtin_expr();
        group.elements.push_back(std::move(el));
        accept(TokenKind::kDot);
      } else if (is_keyword("OPTIONAL")) {
        take();
        GroupElement el;
        el.kind = GroupElement::Kind::kOptional;
        el.groups.push_back(parse_group());
        group.elements.push_back(std::move(el));
        accept(TokenKind::kDot);
      } else if (peek().kind == TokenKind::kLBrace) {
        // Sub-group, possibly a UNION chain.
        GroupElement el;
        el.groups.push_back(parse_group());
        if (is_keyword("UNION")) {
          el.kind = GroupElement::Kind::kUnion;
          while (accept_keyword("UNION")) {
            el.groups.push_back(parse_group());
          }
        } else {
          el.kind = GroupElement::Kind::kGroup;
        }
        group.elements.push_back(std::move(el));
        accept(TokenKind::kDot);
      } else {
        std::vector<rdf::TriplePattern> triples;
        parse_triples_same_subject(triples);
        for (rdf::TriplePattern& tp : triples) {
          GroupElement el;
          el.kind = GroupElement::Kind::kTriple;
          el.triple = std::move(tp);
          group.elements.push_back(std::move(el));
        }
        if (!accept(TokenKind::kDot)) {
          // A triples block may also end right before '}' / FILTER /
          // OPTIONAL / '{'.
          if (peek().kind != TokenKind::kRBrace && !is_keyword("FILTER") &&
              !is_keyword("OPTIONAL") && peek().kind != TokenKind::kLBrace) {
            fail(peek(), "expected '.' or '}'");
          }
        }
      }
    }
    expect(TokenKind::kRBrace, "'}'");
    return group;
  }

  /// subject predicate object (',' object)* (';' predicate object...)*
  void parse_triples_same_subject(std::vector<rdf::TriplePattern>& out) {
    rdf::PatternTerm subject = parse_pattern_term(/*allow_literal=*/false);
    while (true) {
      rdf::PatternTerm predicate = parse_verb();
      while (true) {
        rdf::PatternTerm object = parse_pattern_term(/*allow_literal=*/true);
        out.push_back(rdf::TriplePattern{subject, predicate, object});
        if (!accept(TokenKind::kComma)) break;
      }
      if (!accept(TokenKind::kSemicolon)) break;
      if (peek().kind == TokenKind::kRBrace ||
          peek().kind == TokenKind::kDot) {
        break;  // dangling ';' is permitted
      }
    }
  }

  rdf::PatternTerm parse_verb() {
    if (peek().kind == TokenKind::kPName && peek().text == "a") {
      take();
      return rdf::Term::iri(std::string(kRdfType));
    }
    return parse_pattern_term(/*allow_literal=*/false);
  }

  rdf::Term parse_iri() {
    const Token& t = take();
    if (t.kind == TokenKind::kIriRef) return rdf::Term::iri(t.text);
    if (t.kind == TokenKind::kPName) return expand_pname(t);
    fail(t, "expected IRI");
  }

  rdf::Term expand_pname(const Token& t) {
    auto colon = t.text.find(':');
    if (colon == std::string::npos) {
      fail(t, "expected prefixed name, got bare identifier '" + t.text + "'");
    }
    std::string prefix = t.text.substr(0, colon);
    std::string local = t.text.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      fail(t, "undeclared prefix '" + prefix + ":'");
    }
    return rdf::Term::iri(it->second + local);
  }

  rdf::PatternTerm parse_pattern_term(bool allow_literal) {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kVar:
        return rdf::Variable{take().text};
      case TokenKind::kIriRef:
        return rdf::Term::iri(take().text);
      case TokenKind::kPName:
        return expand_pname(take());
      case TokenKind::kBlank:
        // Blank-node labels in query patterns are non-distinguished
        // variables (SPARQL spec 4.1.4), scoped to the query: same label =
        // same variable. The "_:" prefix keeps them apart from user
        // variables and out of SELECT * projections.
        return rdf::Variable{"_:" + take().text};
      case TokenKind::kString:
        if (!allow_literal) fail(t, "literal not allowed here");
        return parse_literal();
      case TokenKind::kInteger:
        if (!allow_literal) fail(t, "literal not allowed here");
        return rdf::Term::typed_literal(take().text,
                                        std::string(rdf::xsd::kInteger));
      case TokenKind::kDecimal:
        if (!allow_literal) fail(t, "literal not allowed here");
        return rdf::Term::typed_literal(take().text,
                                        std::string(rdf::xsd::kDouble));
      case TokenKind::kKeyword:
        if (allow_literal && (t.text == "TRUE" || t.text == "FALSE")) {
          bool v = take().text == "TRUE";
          return rdf::Term::typed_literal(v ? "true" : "false",
                                          std::string(rdf::xsd::kBoolean));
        }
        [[fallthrough]];
      default:
        fail(t, "expected term or variable");
    }
  }

  rdf::Term parse_literal() {
    std::string value = take().text;  // kString
    if (peek().kind == TokenKind::kLangTag) {
      return rdf::Term::lang_literal(std::move(value), take().text);
    }
    if (accept(TokenKind::kDoubleCaret)) {
      rdf::Term dt = parse_iri();
      return rdf::Term::typed_literal(std::move(value), dt.lexical());
    }
    return rdf::Term::literal(std::move(value));
  }

  // --- expressions ---------------------------------------------------------

  ExprPtr parse_bracketed_or_builtin_expr() {
    if (peek().kind == TokenKind::kLParen) {
      take();
      ExprPtr e = parse_expr();
      expect(TokenKind::kRParen, "')'");
      return e;
    }
    return parse_primary_expr();
  }

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr e = parse_and();
    while (accept(TokenKind::kOrOr)) {
      e = Expr::binary(ExprKind::kOr, e, parse_and());
    }
    return e;
  }

  ExprPtr parse_and() {
    ExprPtr e = parse_relational();
    while (accept(TokenKind::kAndAnd)) {
      e = Expr::binary(ExprKind::kAnd, e, parse_relational());
    }
    return e;
  }

  ExprPtr parse_relational() {
    ExprPtr e = parse_additive();
    switch (peek().kind) {
      case TokenKind::kEq: take(); return Expr::binary(ExprKind::kEq, e, parse_additive());
      case TokenKind::kNe: take(); return Expr::binary(ExprKind::kNe, e, parse_additive());
      case TokenKind::kLt: take(); return Expr::binary(ExprKind::kLt, e, parse_additive());
      case TokenKind::kGt: take(); return Expr::binary(ExprKind::kGt, e, parse_additive());
      case TokenKind::kLe: take(); return Expr::binary(ExprKind::kLe, e, parse_additive());
      case TokenKind::kGe: take(); return Expr::binary(ExprKind::kGe, e, parse_additive());
      default: return e;
    }
  }

  ExprPtr parse_additive() {
    ExprPtr e = parse_multiplicative();
    while (true) {
      if (accept(TokenKind::kPlus)) {
        e = Expr::binary(ExprKind::kAdd, e, parse_multiplicative());
      } else if (accept(TokenKind::kMinus)) {
        e = Expr::binary(ExprKind::kSub, e, parse_multiplicative());
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_multiplicative() {
    ExprPtr e = parse_unary();
    while (true) {
      if (accept(TokenKind::kStar)) {
        e = Expr::binary(ExprKind::kMul, e, parse_unary());
      } else if (accept(TokenKind::kSlash)) {
        e = Expr::binary(ExprKind::kDiv, e, parse_unary());
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_unary() {
    if (accept(TokenKind::kBang)) {
      return Expr::unary(ExprKind::kNot, parse_unary());
    }
    if (accept(TokenKind::kMinus)) {
      return Expr::unary(ExprKind::kNeg, parse_unary());
    }
    if (accept(TokenKind::kPlus)) {
      return parse_unary();
    }
    return parse_primary_expr();
  }

  ExprPtr parse_primary_expr() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kLParen: {
        take();
        ExprPtr e = parse_expr();
        expect(TokenKind::kRParen, "')'");
        return e;
      }
      case TokenKind::kVar:
        return Expr::variable(take().text);
      case TokenKind::kIriRef:
        return Expr::constant_term(rdf::Term::iri(take().text));
      case TokenKind::kPName:
        return Expr::constant_term(expand_pname(take()));
      case TokenKind::kString:
        return Expr::constant_term(parse_literal());
      case TokenKind::kInteger:
        return Expr::constant_term(rdf::Term::typed_literal(
            take().text, std::string(rdf::xsd::kInteger)));
      case TokenKind::kDecimal:
        return Expr::constant_term(rdf::Term::typed_literal(
            take().text, std::string(rdf::xsd::kDouble)));
      case TokenKind::kKeyword:
        return parse_builtin_call();
      default:
        fail(t, "expected expression");
    }
  }

  ExprPtr parse_builtin_call() {
    const Token& kw = take();
    auto unary_fn = [&](ExprKind k) {
      expect(TokenKind::kLParen, "'('");
      ExprPtr a = parse_expr();
      expect(TokenKind::kRParen, "')'");
      return Expr::unary(k, a);
    };
    if (kw.text == "TRUE" || kw.text == "FALSE") {
      return Expr::constant_term(rdf::Term::typed_literal(
          kw.text == "TRUE" ? "true" : "false",
          std::string(rdf::xsd::kBoolean)));
    }
    if (kw.text == "REGEX") {
      expect(TokenKind::kLParen, "'('");
      ExprPtr text = parse_expr();
      expect(TokenKind::kComma, "','");
      ExprPtr pattern = parse_expr();
      ExprPtr flags;
      if (accept(TokenKind::kComma)) flags = parse_expr();
      expect(TokenKind::kRParen, "')'");
      return Expr::regex(text, pattern, flags);
    }
    if (kw.text == "BOUND") {
      expect(TokenKind::kLParen, "'('");
      const Token& v = expect(TokenKind::kVar, "variable");
      std::string name = v.text;
      expect(TokenKind::kRParen, "')'");
      return Expr::bound(std::move(name));
    }
    if (kw.text == "ISIRI" || kw.text == "ISURI")
      return unary_fn(ExprKind::kIsIri);
    if (kw.text == "ISLITERAL") return unary_fn(ExprKind::kIsLiteral);
    if (kw.text == "ISBLANK") return unary_fn(ExprKind::kIsBlank);
    if (kw.text == "STR") return unary_fn(ExprKind::kStr);
    if (kw.text == "LANG") return unary_fn(ExprKind::kLang);
    if (kw.text == "DATATYPE") return unary_fn(ExprKind::kDatatype);
    fail(kw, "unexpected keyword '" + kw.text + "' in expression");
  }

  // --- solution modifiers ----------------------------------------------------

  void parse_solution_modifiers(Query& q) {
    if (accept_keyword("ORDER")) {
      expect_keyword("BY");
      while (true) {
        const Token& t = peek();
        if (is_keyword("ASC") || is_keyword("DESC")) {
          bool asc = take().text == "ASC";
          expect(TokenKind::kLParen, "'('");
          ExprPtr e = parse_expr();
          expect(TokenKind::kRParen, "')'");
          q.order_by.push_back({e, asc});
        } else if (t.kind == TokenKind::kVar) {
          q.order_by.push_back({Expr::variable(take().text), true});
        } else {
          break;
        }
      }
      if (q.order_by.empty()) fail(peek(), "expected ORDER BY conditions");
    }
    while (true) {
      if (accept_keyword("LIMIT")) {
        q.limit = std::stoull(expect(TokenKind::kInteger, "integer").text);
      } else if (accept_keyword("OFFSET")) {
        q.offset = std::stoull(expect(TokenKind::kInteger, "integer").text);
      } else {
        break;
      }
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::map<std::string, std::string> prefixes_;
  std::string base_;
};

void collect_pattern_vars(const GroupPattern& g, std::set<std::string>& out) {
  auto add_pt = [&](const rdf::PatternTerm& pt) {
    if (const rdf::Variable* v = rdf::var_of(pt)) out.insert(v->name);
  };
  for (const GroupElement& el : g.elements) {
    switch (el.kind) {
      case GroupElement::Kind::kTriple:
        add_pt(el.triple.s);
        add_pt(el.triple.p);
        add_pt(el.triple.o);
        break;
      case GroupElement::Kind::kFilter:
        collect_variables(*el.filter, out);
        break;
      default:
        for (const GroupPattern& sub : el.groups) {
          collect_pattern_vars(sub, out);
        }
    }
  }
}

}  // namespace

std::vector<std::string> Query::pattern_variables() const {
  std::set<std::string> vars;
  collect_pattern_vars(where, vars);
  std::vector<std::string> out;
  for (const std::string& v : vars) {
    // Non-distinguished (blank-node) variables never project.
    if (v.rfind("_:", 0) != 0) out.push_back(v);
  }
  return out;
}

Query parse_query(std::string_view text) { return Parser(text).run(); }

}  // namespace ahsw::sparql
