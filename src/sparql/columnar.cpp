#include "sparql/columnar.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.hpp"

namespace ahsw::sparql {

namespace {

using rdf::TermId;
inline constexpr TermId kUnbound = rdf::kInvalidTermId;
inline constexpr std::size_t kNoCol = static_cast<std::size_t>(-1);

/// Columnar image of a SolutionSet: the sorted variable schema and a dense
/// row-major TermId matrix; kUnbound marks an absent binding.
struct Table {
  std::vector<std::string> vars;
  std::size_t width = 0;
  std::size_t rows = 0;
  std::vector<TermId> cells;

  [[nodiscard]] TermId at(std::size_t r, std::size_t c) const noexcept {
    return cells[r * width + c];
  }
};

/// Intern every distinct term of `sets` in Term `operator<=>` order, so that
/// id comparison agrees with term comparison (vec_deduplicated relies on
/// this; everything else only needs id equality).
rdf::TermDictionary build_dictionary(
    std::initializer_list<const SolutionSet*> sets) {
  std::set<rdf::Term> terms;
  for (const SolutionSet* s : sets) {
    for (const Binding& r : s->rows()) {
      for (const auto& [name, term] : r.slots()) terms.insert(term);
    }
  }
  rdf::TermDictionary dict;
  for (const rdf::Term& t : terms) dict.intern(t);
  return dict;
}

Table build_table(const SolutionSet& s, const rdf::TermDictionary& dict) {
  Table t;
  t.vars = variables_of(s);
  t.width = t.vars.size();
  t.rows = s.size();
  t.cells.assign(t.rows * t.width, kUnbound);
  for (std::size_t r = 0; r < t.rows; ++r) {
    // Binding slots and t.vars are both sorted: a merge walk places cells.
    std::size_t c = 0;
    for (const auto& [name, term] : s.rows()[r].slots()) {
      while (t.vars[c] != name) ++c;
      t.cells[r * t.width + c] = *dict.find(term);
      ++c;
    }
  }
  return t;
}

/// Column correspondence between two operand schemas and their merged
/// (sorted union) output schema.
struct MergeSchema {
  std::vector<std::string> vars;     // sorted union of both schemas
  std::vector<std::size_t> from_a;   // a column -> output column
  std::vector<std::size_t> from_b;   // b column -> output column
  struct SharedCol {
    std::size_t a;
    std::size_t b;
  };
  /// Columns present in both schemas. Because a schema lists the variables
  /// bound in at least one row, this is exactly shared_variables(a, b) of
  /// the legacy join.
  std::vector<SharedCol> shared;
};

MergeSchema merge_schema(const Table& ta, const Table& tb) {
  MergeSchema m;
  m.from_a.resize(ta.width);
  m.from_b.resize(tb.width);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ta.width || j < tb.width) {
    std::size_t out = m.vars.size();
    if (j == tb.width || (i < ta.width && ta.vars[i] < tb.vars[j])) {
      m.vars.push_back(ta.vars[i]);
      m.from_a[i++] = out;
    } else if (i == ta.width || tb.vars[j] < ta.vars[i]) {
      m.vars.push_back(tb.vars[j]);
      m.from_b[j++] = out;
    } else {
      m.vars.push_back(ta.vars[i]);
      m.shared.push_back({i, j});
      m.from_a[i++] = out;
      m.from_b[j++] = out;
    }
  }
  return m;
}

/// Compatible per Perez et al., in id space: every variable bound in both
/// rows carries the same id. Only shared-schema columns can disagree.
bool compatible(const Table& ta, std::size_t ra, const Table& tb,
                std::size_t rb, const std::vector<MergeSchema::SharedCol>& shared) {
  for (const auto& sc : shared) {
    TermId x = ta.at(ra, sc.a);
    TermId y = tb.at(rb, sc.b);
    if (x != kUnbound && y != kUnbound && x != y) return false;
  }
  return true;
}

Binding materialize(const std::vector<std::string>& vars,
                    const std::vector<TermId>& cells,
                    const rdf::TermDictionary& dict) {
  Binding out;
  // vars is sorted, so each set() appends at the back.
  for (std::size_t c = 0; c < vars.size(); ++c) {
    if (cells[c] != kUnbound) out.set(vars[c], dict.term(cells[c]));
  }
  return out;
}

/// Merge row `ra` of `ta` with row `rb` of `tb` into `buf` (output schema
/// order, a's value winning where both bind — they are equal when the pair
/// is compatible, matching Binding::merged).
void merge_cells(const Table& ta, std::size_t ra, const Table& tb,
                 std::size_t rb, const MergeSchema& m,
                 std::vector<TermId>& buf) {
  buf.assign(m.vars.size(), kUnbound);
  for (std::size_t c = 0; c < ta.width; ++c) buf[m.from_a[c]] = ta.at(ra, c);
  for (std::size_t c = 0; c < tb.width; ++c) {
    if (buf[m.from_b[c]] == kUnbound) buf[m.from_b[c]] = tb.at(rb, c);
  }
}

/// Packed id-tuple used as a hash key (point lookups only — never iterated,
/// so hash order cannot leak into output; rule D2).
void append_id(std::string& key, TermId id) {
  key.append(reinterpret_cast<const char*>(&id), sizeof id);
}

/// The join core shared by vec_join and vec_left_join. Emission order
/// replicates the legacy hash join exactly: per a-row in order, full-key
/// group matches in b insertion order, then partial rows, with a full scan
/// for a-rows missing part of the shared key. When `matched` is non-null it
/// records, per a-row, whether any pair was emitted (the LeftJoin minus
/// part needs it).
void join_core(const SolutionSet& a, const SolutionSet& b, SolutionSet& out,
               std::vector<char>* matched) {
  rdf::TermDictionary dict = build_dictionary({&a, &b});
  Table ta = build_table(a, dict);
  Table tb = build_table(b, dict);
  MergeSchema m = merge_schema(ta, tb);
  if (matched != nullptr) matched->assign(ta.rows, 0);

  std::vector<TermId> buf;
  auto emit = [&](std::size_t ra, std::size_t rb) {
    merge_cells(ta, ra, tb, rb, m, buf);
    out.add(materialize(m.vars, buf, dict));
    if (matched != nullptr) (*matched)[ra] = 1;
  };

  if (m.shared.empty()) {
    // Cartesian product: no shared vars, every pair compatible.
    for (std::size_t ra = 0; ra < ta.rows; ++ra) {
      for (std::size_t rb = 0; rb < tb.rows; ++rb) emit(ra, rb);
    }
    return;
  }

  // Group b-rows binding every shared var by their shared id tuple; rows
  // missing one (possible after OPTIONAL) go to the pairwise-checked pool.
  std::unordered_map<std::string, std::vector<std::size_t>> groups;
  std::vector<std::size_t> partial;
  std::string key;
  auto shared_key = [&](const Table& t, std::size_t r, bool a_side) {
    key.clear();
    for (const auto& sc : m.shared) {
      TermId id = t.at(r, a_side ? sc.a : sc.b);
      if (id == kUnbound) return false;
      append_id(key, id);
    }
    return true;
  };
  for (std::size_t rb = 0; rb < tb.rows; ++rb) {
    if (shared_key(tb, rb, false)) {
      groups[key].push_back(rb);
    } else {
      partial.push_back(rb);
    }
  }

  for (std::size_t ra = 0; ra < ta.rows; ++ra) {
    if (shared_key(ta, ra, true)) {
      if (auto it = groups.find(key); it != groups.end()) {
        for (std::size_t rb : it->second) {
          if (compatible(ta, ra, tb, rb, m.shared)) emit(ra, rb);
        }
      }
      for (std::size_t rb : partial) {
        if (compatible(ta, ra, tb, rb, m.shared)) emit(ra, rb);
      }
    } else {
      for (std::size_t rb = 0; rb < tb.rows; ++rb) {
        if (compatible(ta, ra, tb, rb, m.shared)) emit(ra, rb);
      }
    }
  }
}

/// Shared columns of two tables without the merged schema (Minus needs no
/// output mapping).
std::vector<MergeSchema::SharedCol> shared_columns(const Table& ta,
                                                   const Table& tb) {
  std::vector<MergeSchema::SharedCol> shared;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ta.width && j < tb.width) {
    if (ta.vars[i] < tb.vars[j]) {
      ++i;
    } else if (tb.vars[j] < ta.vars[i]) {
      ++j;
    } else {
      shared.push_back({i, j});
      ++i;
      ++j;
    }
  }
  return shared;
}

}  // namespace

SolutionSet vec_join(const SolutionSet& a, const SolutionSet& b) {
  SolutionSet out;
  join_core(a, b, out, nullptr);
  return out;
}

SolutionSet vec_minus(const SolutionSet& a, const SolutionSet& b) {
  rdf::TermDictionary dict = build_dictionary({&a, &b});
  Table ta = build_table(a, dict);
  Table tb = build_table(b, dict);
  std::vector<MergeSchema::SharedCol> shared = shared_columns(ta, tb);
  SolutionSet out;
  for (std::size_t ra = 0; ra < ta.rows; ++ra) {
    bool any = false;
    for (std::size_t rb = 0; rb < tb.rows && !any; ++rb) {
      any = compatible(ta, ra, tb, rb, shared);
    }
    if (!any) out.add(a.rows()[ra]);
  }
  return out;
}

SolutionSet vec_left_join(const SolutionSet& a, const SolutionSet& b) {
  SolutionSet out;
  std::vector<char> matched;
  join_core(a, b, out, &matched);
  // (O1 - O2): an a-row that emitted no pair has no compatible partner
  // (rows outside its key group differ on a both-bound shared var; partial
  // and full-scan paths were checked pairwise).
  for (std::size_t ra = 0; ra < matched.size(); ++ra) {
    if (matched[ra] == 0) out.add(a.rows()[ra]);
  }
  return out;
}

SolutionSet vec_left_join_conditioned(const SolutionSet& a,
                                      const SolutionSet& b,
                                      const ExprPtr& cond) {
  if (cond == nullptr) return vec_left_join(a, b);
  rdf::TermDictionary dict = build_dictionary({&a, &b});
  Table ta = build_table(a, dict);
  Table tb = build_table(b, dict);
  MergeSchema m = merge_schema(ta, tb);

  // Columns of the merged schema the condition reads (kNoCol: the variable
  // never occurs in either operand, so its id is constantly unbound).
  std::vector<std::size_t> cond_cols;
  for (const std::string& v : variables_of(*cond)) {
    auto it = std::lower_bound(m.vars.begin(), m.vars.end(), v);
    cond_cols.push_back(it != m.vars.end() && *it == v
                            ? static_cast<std::size_t>(it - m.vars.begin())
                            : kNoCol);
  }

  // satisfies() depends only on the terms of the condition's variables, so
  // its verdict is a function of their id tuple in the merged row.
  std::unordered_map<std::string, bool> memo;
  SolutionSet out;
  std::vector<TermId> buf;
  std::string key;
  for (std::size_t ra = 0; ra < ta.rows; ++ra) {
    bool extended = false;
    for (std::size_t rb = 0; rb < tb.rows; ++rb) {
      if (!compatible(ta, ra, tb, rb, m.shared)) continue;
      merge_cells(ta, ra, tb, rb, m, buf);
      key.clear();
      for (std::size_t c : cond_cols) {
        append_id(key, c == kNoCol ? kUnbound : buf[c]);
      }
      Binding merged;
      bool have_merged = false;
      auto it = memo.find(key);
      bool ok;
      if (it == memo.end()) {
        merged = materialize(m.vars, buf, dict);
        have_merged = true;
        ok = satisfies(*cond, merged);
        memo.emplace(key, ok);
      } else {
        ok = it->second;
      }
      if (ok) {
        if (!have_merged) merged = materialize(m.vars, buf, dict);
        out.add(std::move(merged));
        extended = true;
      }
    }
    if (!extended) out.add(a.rows()[ra]);
  }
  return out;
}

SolutionSet vec_filter_set(const SolutionSet& in, const Expr& e) {
  rdf::TermDictionary dict = build_dictionary({&in});
  Table t = build_table(in, dict);
  std::vector<std::size_t> cond_cols;
  for (const std::string& v : variables_of(e)) {
    auto it = std::lower_bound(t.vars.begin(), t.vars.end(), v);
    cond_cols.push_back(it != t.vars.end() && *it == v
                            ? static_cast<std::size_t>(it - t.vars.begin())
                            : kNoCol);
  }
  std::unordered_map<std::string, bool> memo;
  SolutionSet out;
  std::string key;
  for (std::size_t r = 0; r < t.rows; ++r) {
    key.clear();
    for (std::size_t c : cond_cols) {
      append_id(key, c == kNoCol ? kUnbound : t.at(r, c));
    }
    auto it = memo.find(key);
    bool ok;
    if (it == memo.end()) {
      ok = satisfies(e, in.rows()[r]);
      memo.emplace(key, ok);
    } else {
      ok = it->second;
    }
    if (ok) out.add(in.rows()[r]);
  }
  return out;
}

SolutionSet vec_deduplicated(const SolutionSet& in) {
  rdf::TermDictionary dict = build_dictionary({&in});
  Table t = build_table(in, dict);
  std::vector<std::size_t> order(t.rows);
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Exactly Binding's lexicographic slot order: pairs compare name first
  // (both schemas walk the same sorted var list, so column index order is
  // name order) then term (id order == term order by dictionary
  // construction); a row that is a strict prefix sorts first.
  auto less = [&](std::size_t i, std::size_t j) {
    std::size_t ci = 0;
    std::size_t cj = 0;
    for (;;) {
      while (ci < t.width && t.at(i, ci) == kUnbound) ++ci;
      while (cj < t.width && t.at(j, cj) == kUnbound) ++cj;
      if (ci == t.width || cj == t.width) break;
      if (ci != cj) return ci < cj;
      TermId x = t.at(i, ci);
      TermId y = t.at(j, cj);
      if (x != y) return x < y;
      ++ci;
      ++cj;
    }
    return ci == t.width && cj < t.width;
  };
  std::stable_sort(order.begin(), order.end(), less);
  auto equal_rows = [&](std::size_t i, std::size_t j) {
    for (std::size_t c = 0; c < t.width; ++c) {
      if (t.at(i, c) != t.at(j, c)) return false;
    }
    return true;
  };
  SolutionSet out;
  for (std::size_t k = 0; k < order.size(); ++k) {
    if (k > 0 && equal_rows(order[k - 1], order[k])) continue;
    out.add(in.rows()[order[k]]);
  }
  return out;
}

}  // namespace ahsw::sparql
