#include "rdf/store.hpp"

#include <limits>

namespace ahsw::rdf {

namespace {
constexpr TermId kMin = 0;
constexpr TermId kMax = std::numeric_limits<TermId>::max();
}  // namespace

bool TripleStore::insert(const Triple& t) {
  TermId s = dict_.intern(t.s);
  TermId p = dict_.intern(t.p);
  TermId o = dict_.intern(t.o);
  bool added = spo_.insert({s, p, o}).second;
  if (added) {
    pos_.insert({p, o, s});
    osp_.insert({o, s, p});
  }
  return added;
}

bool TripleStore::erase(const Triple& t) {
  auto s = dict_.find(t.s);
  auto p = dict_.find(t.p);
  auto o = dict_.find(t.o);
  if (!s || !p || !o) return false;
  bool removed = spo_.erase({*s, *p, *o}) > 0;
  if (removed) {
    pos_.erase({*p, *o, *s});
    osp_.erase({*o, *s, *p});
  }
  return removed;
}

bool TripleStore::contains(const Triple& t) const {
  auto s = dict_.find(t.s);
  auto p = dict_.find(t.p);
  auto o = dict_.find(t.o);
  if (!s || !p || !o) return false;
  return spo_.count({*s, *p, *o}) > 0;
}

bool TripleStore::encode(const TriplePattern& pattern, bool& s_bound,
                         bool& p_bound, bool& o_bound, TermId& s, TermId& p,
                         TermId& o) const {
  s_bound = p_bound = o_bound = false;
  s = p = o = kInvalidTermId;
  if (const Term* t = pattern.bound_s()) {
    auto id = dict_.find(*t);
    if (!id) return false;
    s = *id;
    s_bound = true;
  }
  if (const Term* t = pattern.bound_p()) {
    auto id = dict_.find(*t);
    if (!id) return false;
    p = *id;
    p_bound = true;
  }
  if (const Term* t = pattern.bound_o()) {
    auto id = dict_.find(*t);
    if (!id) return false;
    o = *id;
    o_bound = true;
  }
  return true;
}

void TripleStore::scan(const TriplePattern& pattern,
                       const std::function<bool(const Triple&)>& fn) const {
  bool sb, pb, ob;
  TermId s, p, o;
  if (!encode(pattern, sb, pb, ob, s, p, o)) return;

  // Each case walks the ordering whose prefix covers the bound positions;
  // `emit` decodes the index-specific key layout back to (s, p, o).
  auto emit = [&](TermId es, TermId ep, TermId eo) {
    return fn(Triple{dict_.term(es), dict_.term(ep), dict_.term(eo)});
  };

  if (sb && pb && ob) {
    if (spo_.count({s, p, o}) > 0) emit(s, p, o);
    return;
  }
  if (sb && pb) {
    for (auto it = spo_.lower_bound({s, p, kMin});
         it != spo_.end() && (*it)[0] == s && (*it)[1] == p; ++it) {
      if (!emit((*it)[0], (*it)[1], (*it)[2])) return;
    }
    return;
  }
  if (sb && ob) {
    for (auto it = osp_.lower_bound({o, s, kMin});
         it != osp_.end() && (*it)[0] == o && (*it)[1] == s; ++it) {
      if (!emit((*it)[1], (*it)[2], (*it)[0])) return;
    }
    return;
  }
  if (pb && ob) {
    for (auto it = pos_.lower_bound({p, o, kMin});
         it != pos_.end() && (*it)[0] == p && (*it)[1] == o; ++it) {
      if (!emit((*it)[2], (*it)[0], (*it)[1])) return;
    }
    return;
  }
  if (sb) {
    for (auto it = spo_.lower_bound({s, kMin, kMin});
         it != spo_.end() && (*it)[0] == s; ++it) {
      if (!emit((*it)[0], (*it)[1], (*it)[2])) return;
    }
    return;
  }
  if (pb) {
    for (auto it = pos_.lower_bound({p, kMin, kMin});
         it != pos_.end() && (*it)[0] == p; ++it) {
      if (!emit((*it)[2], (*it)[0], (*it)[1])) return;
    }
    return;
  }
  if (ob) {
    for (auto it = osp_.lower_bound({o, kMin, kMin});
         it != osp_.end() && (*it)[0] == o; ++it) {
      if (!emit((*it)[1], (*it)[2], (*it)[0])) return;
    }
    return;
  }
  for (const Key& k : spo_) {
    if (!emit(k[0], k[1], k[2])) return;
  }
}

void TripleStore::match(const TriplePattern& pattern,
                        const std::function<void(const Triple&)>& fn) const {
  scan(pattern, [&](const Triple& t) {
    fn(t);
    return true;
  });
}

std::vector<Triple> TripleStore::match(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  match(pattern, [&](const Triple& t) { out.push_back(t); });
  return out;
}

std::size_t TripleStore::count_matches(const TriplePattern& pattern) const {
  std::size_t n = 0;
  scan(pattern, [&](const Triple&) {
    ++n;
    return true;
  });
  return n;
}

void TripleStore::for_each(const std::function<void(const Triple&)>& fn) const {
  for (const Key& k : spo_) {
    fn(Triple{dict_.term(k[0]), dict_.term(k[1]), dict_.term(k[2])});
  }
}

}  // namespace ahsw::rdf
