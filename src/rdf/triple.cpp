#include "rdf/triple.hpp"

#include <ostream>

namespace ahsw::rdf {

std::string Triple::to_string() const {
  return s.to_string() + " " + p.to_string() + " " + o.to_string() + " .";
}

std::ostream& operator<<(std::ostream& os, const Triple& t) {
  return os << t.to_string();
}

std::size_t TripleHash::operator()(const Triple& t) const noexcept {
  TermHash th;
  std::size_t h = th(t.s);
  h = h * 0x9e3779b97f4a7c15ULL + th(t.p);
  h = h * 0x9e3779b97f4a7c15ULL + th(t.o);
  return h;
}

namespace {
[[nodiscard]] std::string pattern_term_to_string(const PatternTerm& pt) {
  if (const Variable* v = var_of(pt)) return "?" + v->name;
  return std::get<Term>(pt).to_string();
}

[[nodiscard]] bool position_matches(const PatternTerm& pt,
                                    const Term& t) noexcept {
  const Term* bound = term_of(pt);
  return bound == nullptr || *bound == t;
}
}  // namespace

bool TriplePattern::matches(const Triple& t) const noexcept {
  return position_matches(s, t.s) && position_matches(p, t.p) &&
         position_matches(o, t.o);
}

std::string TriplePattern::to_string() const {
  return pattern_term_to_string(s) + " " + pattern_term_to_string(p) + " " +
         pattern_term_to_string(o);
}

std::size_t TriplePattern::byte_size() const noexcept {
  auto one = [](const PatternTerm& pt) -> std::size_t {
    if (const Variable* v = var_of(pt)) return v->name.size() + 1;
    return std::get<Term>(pt).byte_size();
  };
  return one(s) + one(p) + one(o);
}

std::ostream& operator<<(std::ostream& os, const TriplePattern& p) {
  return os << p.to_string();
}

}  // namespace ahsw::rdf
