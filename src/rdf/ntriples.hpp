// N-Triples reader and writer (the line-based RDF exchange syntax).
//
// Storage nodes load their shared datasets from N-Triples documents; the
// workload generators emit N-Triples so that every synthetic dataset can be
// dumped and inspected.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/triple.hpp"

namespace ahsw::rdf {

/// Raised on malformed N-Triples input; carries the 1-based line number.
class NTriplesError : public std::runtime_error {
 public:
  NTriplesError(std::size_t line, const std::string& what)
      : std::runtime_error("N-Triples line " + std::to_string(line) + ": " +
                           what),
        line_(line) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parse a whole N-Triples document. Blank lines and '#' comments are
/// skipped. Throws NTriplesError on malformed input.
[[nodiscard]] std::vector<Triple> parse_ntriples(std::string_view document);

/// Parse a single N-Triples statement (one line, without trailing newline).
[[nodiscard]] Triple parse_ntriples_line(std::string_view line,
                                         std::size_t line_no = 1);

/// Serialize triples, one statement per line.
[[nodiscard]] std::string to_ntriples(const std::vector<Triple>& triples);

}  // namespace ahsw::rdf
