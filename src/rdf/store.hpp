// In-memory RDF triple store with three collated orderings (SPO, POS, OSP).
//
// Each storage node in the overlay owns one TripleStore for the data it
// shares; the local SPARQL engine evaluates sub-queries against it. The
// three orderings serve all eight triple-pattern shapes with a range scan.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <set>
#include <vector>

#include "rdf/dictionary.hpp"
#include "rdf/triple.hpp"

namespace ahsw::rdf {

class TripleStore {
 public:
  /// Insert a triple. Returns true if newly added (set semantics).
  bool insert(const Triple& t);

  /// Remove a triple. Returns true if it was present.
  bool erase(const Triple& t);

  [[nodiscard]] bool contains(const Triple& t) const;

  [[nodiscard]] std::size_t size() const noexcept { return spo_.size(); }
  [[nodiscard]] bool empty() const noexcept { return spo_.empty(); }

  /// Invoke `fn` for every triple matching the pattern's bound positions.
  /// Variable-sharing constraints (e.g. ?x p ?x) are NOT enforced here.
  /// Iteration order is deterministic (term-id order of the chosen index).
  void match(const TriplePattern& pattern,
             const std::function<void(const Triple&)>& fn) const;

  /// All matches collected into a vector.
  [[nodiscard]] std::vector<Triple> match(const TriplePattern& pattern) const;

  /// Number of matches without materializing them; used to maintain the
  /// frequency counts the location table carries (Table I of the paper).
  [[nodiscard]] std::size_t count_matches(const TriplePattern& pattern) const;

  /// Invoke `fn` for every stored triple.
  void for_each(const std::function<void(const Triple&)>& fn) const;

  /// The dictionary interning this store's terms (for diagnostics).
  [[nodiscard]] const TermDictionary& dictionary() const noexcept {
    return dict_;
  }

 private:
  using Key = std::array<TermId, 3>;  // in index-specific position order

  // Decoded positions: spo_[s][p][o], pos_[p][o][s], osp_[o][s][p].
  std::set<Key> spo_;
  std::set<Key> pos_;
  std::set<Key> osp_;
  TermDictionary dict_;

  /// Encode pattern positions to ids; returns false if some bound term is
  /// not in the dictionary (=> zero matches).
  [[nodiscard]] bool encode(const TriplePattern& pattern, bool& s_bound,
                            bool& p_bound, bool& o_bound, TermId& s, TermId& p,
                            TermId& o) const;

  void scan(const TriplePattern& pattern,
            const std::function<bool(const Triple&)>& fn) const;
};

}  // namespace ahsw::rdf
