#include "rdf/term.hpp"

#include <cerrno>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "common/hash.hpp"
#include "common/strings.hpp"

namespace ahsw::rdf {

Term Term::iri(std::string value) {
  Term t;
  t.kind_ = TermKind::kIri;
  t.lexical_ = std::move(value);
  return t;
}

Term Term::literal(std::string value) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.lexical_ = std::move(value);
  return t;
}

Term Term::lang_literal(std::string value, std::string lang) {
  Term t = literal(std::move(value));
  t.lang_ = std::move(lang);
  return t;
}

Term Term::typed_literal(std::string value, std::string datatype_iri) {
  Term t = literal(std::move(value));
  t.datatype_ = std::move(datatype_iri);
  return t;
}

Term Term::blank(std::string label) {
  Term t;
  t.kind_ = TermKind::kBlank;
  t.lexical_ = std::move(label);
  return t;
}

Term Term::integer(long long v) {
  return typed_literal(std::to_string(v), std::string(xsd::kInteger));
}

Term Term::real(double v) {
  std::ostringstream os;
  os << v;
  return typed_literal(os.str(), std::string(xsd::kDouble));
}

bool Term::numeric_value(double& out) const noexcept {
  if (kind_ != TermKind::kLiteral) return false;
  if (!datatype_.empty() && datatype_ != xsd::kInteger &&
      datatype_ != xsd::kDouble) {
    return false;
  }
  if (lexical_.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(lexical_.c_str(), &end);
  if (errno != 0 || end != lexical_.c_str() + lexical_.size()) return false;
  out = v;
  return true;
}

std::string Term::to_string() const {
  switch (kind_) {
    case TermKind::kIri:
      return "<" + lexical_ + ">";
    case TermKind::kBlank:
      return "_:" + lexical_;
    case TermKind::kLiteral: {
      std::string out = "\"" + common::escape_ntriples(lexical_) + "\"";
      if (!lang_.empty()) {
        out += "@" + lang_;
      } else if (!datatype_.empty()) {
        out += "^^<" + datatype_ + ">";
      }
      return out;
    }
  }
  return {};
}

std::ostream& operator<<(std::ostream& os, const Term& t) {
  return os << t.to_string();
}

std::size_t TermHash::operator()(const Term& t) const noexcept {
  std::uint64_t h =
      common::tagged_hash(static_cast<std::uint8_t>(t.kind()), t.lexical());
  if (!t.datatype().empty()) h ^= common::tagged_hash(0x10, t.datatype());
  if (!t.lang().empty()) h ^= common::tagged_hash(0x11, t.lang());
  return static_cast<std::size_t>(h);
}

}  // namespace ahsw::rdf
