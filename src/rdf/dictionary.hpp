// Term dictionary: interns RDF terms to dense 32-bit ids.
//
// The triple store keys its orderings on ids instead of full terms, which
// keeps index nodes cheap and makes equality comparisons O(1).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "rdf/term.hpp"

namespace ahsw::rdf {

using TermId = std::uint32_t;
inline constexpr TermId kInvalidTermId = 0xffffffffu;

class TermDictionary {
 public:
  /// Intern a term, returning its id (existing or freshly assigned).
  TermId intern(const Term& t);

  /// Id of a term if already interned.
  [[nodiscard]] std::optional<TermId> find(const Term& t) const;

  /// Term for an id previously returned by intern(). Precondition: valid id.
  [[nodiscard]] const Term& term(TermId id) const { return terms_.at(id); }

  [[nodiscard]] std::size_t size() const noexcept { return terms_.size(); }

  /// The sanctioned traversal: every interned term in id (= insertion)
  /// order, so `terms()[id] == term(id)`. Callers must never walk `ids_` —
  /// its hash order would differ across platforms and leak into any output
  /// built from it (rule D2).
  [[nodiscard]] const std::vector<Term>& terms() const noexcept {
    return terms_;
  }

 private:
  // iteration-order: never iterated — point lookups only; traversal goes
  // through terms(), which is deterministic insertion order.
  std::unordered_map<Term, TermId, TermHash> ids_;
  std::vector<Term> terms_;
};

}  // namespace ahsw::rdf
