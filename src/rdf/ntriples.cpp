#include "rdf/ntriples.hpp"

#include "common/strings.hpp"

namespace ahsw::rdf {

namespace {

/// Cursor over one statement line.
class LineCursor {
 public:
  LineCursor(std::string_view text, std::size_t line_no)
      : text_(text), line_(line_no) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  char take() {
    if (at_end()) fail("unexpected end of line");
    return text_[pos_++];
  }

  void expect(char c) {
    if (at_end() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  /// Consume characters until (excluding) `stop`; `stop` is then consumed.
  std::string_view until(char stop) {
    std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != stop) ++pos_;
    if (at_end()) fail(std::string("unterminated token, expected '") + stop +
                       "'");
    std::string_view out = text_.substr(start, pos_ - start);
    ++pos_;
    return out;
  }

  /// Consume a quoted literal body honoring backslash escapes; the closing
  /// quote is consumed.
  std::string quoted() {
    std::string raw;
    while (true) {
      if (at_end()) fail("unterminated literal");
      char c = text_[pos_++];
      if (c == '"') break;
      raw += c;
      if (c == '\\') {
        if (at_end()) fail("dangling escape");
        raw += text_[pos_++];
      }
    }
    return common::unescape_ntriples(raw);
  }

  /// Consume a bare token (blank-node label or language tag).
  std::string_view bare() {
    std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ' ' && text_[pos_] != '\t' &&
           text_[pos_] != '.') {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw NTriplesError(line_, what);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_;
};

Term parse_term(LineCursor& cur, bool allow_literal) {
  cur.skip_ws();
  if (cur.at_end()) cur.fail("missing term");
  char c = cur.peek();
  if (c == '<') {
    cur.take();
    return Term::iri(std::string(cur.until('>')));
  }
  if (c == '_') {
    cur.take();
    cur.expect(':');
    return Term::blank(std::string(cur.bare()));
  }
  if (c == '"') {
    if (!allow_literal) cur.fail("literal not allowed in this position");
    cur.take();
    std::string value = cur.quoted();
    if (!cur.at_end() && cur.peek() == '@') {
      cur.take();
      return Term::lang_literal(std::move(value), std::string(cur.bare()));
    }
    if (!cur.at_end() && cur.peek() == '^') {
      cur.take();
      cur.expect('^');
      cur.expect('<');
      return Term::typed_literal(std::move(value),
                                 std::string(cur.until('>')));
    }
    return Term::literal(std::move(value));
  }
  cur.fail("unrecognized term start");
}

}  // namespace

Triple parse_ntriples_line(std::string_view line, std::size_t line_no) {
  LineCursor cur(line, line_no);
  Triple t;
  t.s = parse_term(cur, /*allow_literal=*/false);
  t.p = parse_term(cur, /*allow_literal=*/false);
  if (!t.p.is_iri()) cur.fail("predicate must be an IRI");
  t.o = parse_term(cur, /*allow_literal=*/true);
  cur.skip_ws();
  cur.expect('.');
  cur.skip_ws();
  if (!cur.at_end()) cur.fail("trailing characters after '.'");
  return t;
}

std::vector<Triple> parse_ntriples(std::string_view document) {
  std::vector<Triple> out;
  std::size_t line_no = 0;
  for (std::string_view raw : common::split(document, '\n')) {
    ++line_no;
    std::string_view line = common::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    out.push_back(parse_ntriples_line(line, line_no));
  }
  return out;
}

std::string to_ntriples(const std::vector<Triple>& triples) {
  std::string out;
  for (const Triple& t : triples) {
    out += t.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace ahsw::rdf
