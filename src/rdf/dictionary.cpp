#include "rdf/dictionary.hpp"

namespace ahsw::rdf {

TermId TermDictionary::intern(const Term& t) {
  auto [it, inserted] =
      ids_.try_emplace(t, static_cast<TermId>(terms_.size()));
  if (inserted) terms_.push_back(t);
  return it->second;
}

std::optional<TermId> TermDictionary::find(const Term& t) const {
  auto it = ids_.find(t);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

}  // namespace ahsw::rdf
