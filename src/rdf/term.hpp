// RDF terms: IRIs, literals (with optional language tag or datatype), and
// blank nodes. Terms are immutable value types ordered lexicographically so
// they can key ordered containers and produce deterministic result sets.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace ahsw::rdf {

enum class TermKind : std::uint8_t { kIri = 0, kLiteral = 1, kBlank = 2 };

/// One RDF term. Construct through the named factories (iri / literal /
/// lang_literal / typed_literal / blank); default construction yields an
/// empty IRI, useful only as a placeholder.
class Term {
 public:
  Term() = default;

  [[nodiscard]] static Term iri(std::string value);
  [[nodiscard]] static Term literal(std::string value);
  [[nodiscard]] static Term lang_literal(std::string value, std::string lang);
  [[nodiscard]] static Term typed_literal(std::string value,
                                          std::string datatype_iri);
  [[nodiscard]] static Term blank(std::string label);

  /// Convenience: integer literal typed xsd:integer.
  [[nodiscard]] static Term integer(long long v);
  /// Convenience: double literal typed xsd:double.
  [[nodiscard]] static Term real(double v);

  [[nodiscard]] TermKind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_iri() const noexcept { return kind_ == TermKind::kIri; }
  [[nodiscard]] bool is_literal() const noexcept {
    return kind_ == TermKind::kLiteral;
  }
  [[nodiscard]] bool is_blank() const noexcept {
    return kind_ == TermKind::kBlank;
  }

  /// IRI string, literal value, or blank-node label.
  [[nodiscard]] const std::string& lexical() const noexcept { return lexical_; }
  /// Datatype IRI for typed literals; empty otherwise.
  [[nodiscard]] const std::string& datatype() const noexcept {
    return datatype_;
  }
  /// Language tag for lang literals; empty otherwise.
  [[nodiscard]] const std::string& lang() const noexcept { return lang_; }

  /// Numeric view of the literal if it has a numeric datatype (or is a plain
  /// literal that parses as a number). Returns false if non-numeric.
  [[nodiscard]] bool numeric_value(double& out) const noexcept;

  /// N-Triples / SPARQL surface form, e.g. `<http://a>`, `"v"@en`,
  /// `"3"^^<http://www.w3.org/2001/XMLSchema#integer>`, `_:b1`.
  [[nodiscard]] std::string to_string() const;

  /// Approximate serialized size in bytes; the network cost model charges
  /// this when a term crosses a link.
  [[nodiscard]] std::size_t byte_size() const noexcept {
    return lexical_.size() + datatype_.size() + lang_.size() + 4;
  }

  friend std::strong_ordering operator<=>(const Term&, const Term&) = default;
  friend bool operator==(const Term&, const Term&) = default;

 private:
  TermKind kind_ = TermKind::kIri;
  std::string lexical_;
  std::string datatype_;
  std::string lang_;
};

std::ostream& operator<<(std::ostream& os, const Term& t);

/// Stable hash for unordered containers and the distributed index.
struct TermHash {
  [[nodiscard]] std::size_t operator()(const Term& t) const noexcept;
};

namespace xsd {
inline constexpr std::string_view kInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr std::string_view kDouble =
    "http://www.w3.org/2001/XMLSchema#double";
inline constexpr std::string_view kBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";
inline constexpr std::string_view kString =
    "http://www.w3.org/2001/XMLSchema#string";
}  // namespace xsd

}  // namespace ahsw::rdf
