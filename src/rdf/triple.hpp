// RDF triples and triple patterns.
//
// A TriplePattern is a triple whose positions may be variables; the eight
// bound/unbound combinations ((s,p,o) ... (?s,?p,?o)) are exactly the
// primitive query forms of Cai & Frank that the paper's two-level index
// serves (Sect. IV-C).
#pragma once

#include <compare>
#include <iosfwd>
#include <optional>
#include <string>
#include <variant>

#include "rdf/term.hpp"

namespace ahsw::rdf {

/// One RDF statement (s, p, o).
struct Triple {
  Term s;
  Term p;
  Term o;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t byte_size() const noexcept {
    return s.byte_size() + p.byte_size() + o.byte_size();
  }

  friend std::strong_ordering operator<=>(const Triple&, const Triple&) =
      default;
  friend bool operator==(const Triple&, const Triple&) = default;
};

std::ostream& operator<<(std::ostream& os, const Triple& t);

struct TripleHash {
  [[nodiscard]] std::size_t operator()(const Triple& t) const noexcept;
};

/// A SPARQL query variable, e.g. ?x. The stored name excludes the '?'.
struct Variable {
  std::string name;

  friend std::strong_ordering operator<=>(const Variable&,
                                          const Variable&) = default;
  friend bool operator==(const Variable&, const Variable&) = default;
};

/// A pattern position: either a concrete term or a variable.
using PatternTerm = std::variant<Term, Variable>;

[[nodiscard]] inline bool is_var(const PatternTerm& pt) noexcept {
  return std::holds_alternative<Variable>(pt);
}
[[nodiscard]] inline const Term* term_of(const PatternTerm& pt) noexcept {
  return std::get_if<Term>(&pt);
}
[[nodiscard]] inline const Variable* var_of(const PatternTerm& pt) noexcept {
  return std::get_if<Variable>(&pt);
}

/// Triple pattern: the basic building block of SPARQL graph patterns.
struct TriplePattern {
  PatternTerm s;
  PatternTerm p;
  PatternTerm o;

  /// Concrete term at each position, or nullptr if it is a variable.
  [[nodiscard]] const Term* bound_s() const noexcept { return term_of(s); }
  [[nodiscard]] const Term* bound_p() const noexcept { return term_of(p); }
  [[nodiscard]] const Term* bound_o() const noexcept { return term_of(o); }

  /// Number of concrete (non-variable) positions, 0..3.
  [[nodiscard]] int bound_count() const noexcept {
    return (bound_s() ? 1 : 0) + (bound_p() ? 1 : 0) + (bound_o() ? 1 : 0);
  }

  /// Whether `t` matches this pattern ignoring variable-sharing constraints
  /// (the query engine enforces those through bindings).
  [[nodiscard]] bool matches(const Triple& t) const noexcept;

  /// Surface form, e.g. `?x <http://p> "v"`.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t byte_size() const noexcept;

  friend bool operator==(const TriplePattern&, const TriplePattern&) = default;
};

std::ostream& operator<<(std::ostream& os, const TriplePattern& p);

}  // namespace ahsw::rdf
