// Deterministic random number generation for workloads and simulations.
//
// All stochastic behaviour in the repository flows through Rng so that every
// test and benchmark is exactly reproducible from a seed.
#pragma once

#include <cstdint>
#include <vector>

namespace ahsw::common {

/// SplitMix64-based PRNG: tiny state, excellent statistical quality for
/// simulation purposes, and trivially seedable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

 private:
  std::uint64_t state_;
};

/// Zipf-distributed sampler over ranks {0, .., n-1}: rank 0 is the most
/// frequent. Used to generate realistically skewed term frequencies, which
/// is what makes the location-table frequency optimizations interesting.
class ZipfSampler {
 public:
  /// n: universe size; s: skew exponent (0 = uniform, ~1 = web-like skew).
  ZipfSampler(std::size_t n, double s);

  /// Draw one rank.
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t universe() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1.0
};

}  // namespace ahsw::common
