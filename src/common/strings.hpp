// Small string utilities used by parsers and serializers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ahsw::common {

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Split on a single character; keeps empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char sep);

/// Join with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s,
                               std::string_view prefix) noexcept;

/// Escape a literal value for N-Triples output: backslash, quote, newline,
/// carriage return and tab use their named escapes; any other control
/// character becomes \u00XX. Other bytes (including UTF-8) pass through.
[[nodiscard]] std::string escape_ntriples(std::string_view raw);

/// Inverse of escape_ntriples: named escapes plus \uXXXX / \UXXXXXXXX
/// decoded to UTF-8 (malformed numeric escapes are kept verbatim).
/// unescape_ntriples(escape_ntriples(s)) == s for every byte string s.
[[nodiscard]] std::string unescape_ntriples(std::string_view escaped);

}  // namespace ahsw::common
