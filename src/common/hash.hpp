// Hashing primitives shared across the code base.
//
// Chord identifiers, the six-key distributed index, and the term dictionary
// all need a stable, platform-independent hash. std::hash gives no such
// guarantee, so we provide FNV-1a (64-bit) plus a strong finalizer, with
// domain separation for multi-field keys.
#pragma once

#include <cstdint>
#include <string_view>

namespace ahsw::common {

/// 64-bit FNV-1a over a byte string. Stable across platforms and runs.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Continue an FNV-1a hash from a previous state (for multi-part keys).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes,
                                    std::uint64_t state) noexcept;

/// SplitMix64 finalizer: a strong bit mixer used to post-process FNV output
/// so that keys spread uniformly around the Chord ring.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hash of one logical field with a domain-separation tag, so that e.g. the
/// subject index key of "x" never collides by construction with the
/// predicate index key of "x".
[[nodiscard]] std::uint64_t tagged_hash(std::uint8_t tag,
                                        std::string_view a) noexcept;

/// Hash of a two-field key (e.g. (s,p) or (p,o)) with domain separation and
/// an unambiguous field boundary.
[[nodiscard]] std::uint64_t tagged_hash(std::uint8_t tag, std::string_view a,
                                        std::string_view b) noexcept;

}  // namespace ahsw::common
