// Tiny vector-capacity pool: an arena for containers that churn in hot
// loops (location-table row erase/create during purge storms, transfer
// slices, bucketed event drains). Instead of freeing a dead vector's
// heap block and reallocating an identical one moments later, the block
// parks here and the next acquire() reuses it. Deterministic by
// construction — LIFO reuse, no sizes or addresses ever escape into
// simulation state.
#pragma once

#include <utility>
#include <vector>

namespace ahsw::common {

template <typename T>
class VectorPool {
 public:
  /// An empty vector, reusing the most recently released capacity if any.
  [[nodiscard]] std::vector<T> acquire() {
    if (free_.empty()) return {};
    std::vector<T> v = std::move(free_.back());
    free_.pop_back();
    v.clear();
    return v;
  }

  /// Park a dead vector's capacity for reuse.
  void release(std::vector<T>&& v) {
    v.clear();
    free_.push_back(std::move(v));
  }

  [[nodiscard]] std::size_t parked() const noexcept { return free_.size(); }

 private:
  std::vector<std::vector<T>> free_;
};

}  // namespace ahsw::common
