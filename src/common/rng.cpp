#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

#include "common/hash.hpp"

namespace ahsw::common {

std::uint64_t Rng::next() noexcept {
  state_ += 0x9e3779b97f4a7c15ULL;
  return mix64(state_);
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Debiased multiply-shift (Lemire). bound > 0.
  while (true) {
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo >= bound || lo >= (-bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + below(hi - lo + 1);
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  cdf_.resize(n == 0 ? 1 : n);
  double acc = 0.0;
  for (std::size_t i = 0; i < cdf_.size(); ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace ahsw::common
