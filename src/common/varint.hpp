// LEB128-style variable-length integer primitives, shared by the wire
// codec (src/net/wire) and anything else that needs compact framing.
//
// Header-only and dependency-free on purpose: `common` sits below every
// other layer, so the encoding primitives can be reused without dragging
// the full codec (which knows about solution sets) below `net`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ahsw::common {

/// Encoded size of `v` as an unsigned LEB128 varint (1..10 bytes).
[[nodiscard]] constexpr std::size_t varint_size(std::uint64_t v) noexcept {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Append `v` to `out` as an unsigned LEB128 varint.
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Decode one varint from `in` starting at `pos`, advancing `pos` past it.
/// Returns false on truncated or over-long (> 10 byte) input.
inline bool get_varint(std::string_view in, std::size_t& pos,
                       std::uint64_t& out) noexcept {
  out = 0;
  int shift = 0;
  while (pos < in.size() && shift < 64) {
    const auto byte = static_cast<std::uint8_t>(in[pos++]);
    out |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

/// ZigZag mapping for signed deltas (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...),
/// so small negative gaps stay small on the wire.
[[nodiscard]] constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Length of the longest common prefix of `a` and `b` (front coding).
[[nodiscard]] inline std::size_t common_prefix(std::string_view a,
                                               std::string_view b) noexcept {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace ahsw::common
