#include "common/hash.hpp"

namespace ahsw::common {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t state) noexcept {
  for (char c : bytes) {
    state ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    state *= kFnvPrime;
  }
  return state;
}

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  return fnv1a64(bytes, kFnvOffset);
}

std::uint64_t tagged_hash(std::uint8_t tag, std::string_view a) noexcept {
  std::uint64_t h = kFnvOffset;
  h ^= tag;
  h *= kFnvPrime;
  h = fnv1a64(a, h);
  return mix64(h);
}

std::uint64_t tagged_hash(std::uint8_t tag, std::string_view a,
                          std::string_view b) noexcept {
  std::uint64_t h = kFnvOffset;
  h ^= tag;
  h *= kFnvPrime;
  h = fnv1a64(a, h);
  // Field separator outside the value alphabet of N-Triples terms, so that
  // ("ab","c") and ("a","bc") hash differently.
  h ^= 0x1fULL;
  h *= kFnvPrime;
  h = fnv1a64(b, h);
  return mix64(h);
}

}  // namespace ahsw::common
