#include "common/strings.hpp"

#include <cstdint>

namespace ahsw::common {

namespace {
[[nodiscard]] bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

namespace {

constexpr char kHexDigits[] = "0123456789ABCDEF";

[[nodiscard]] int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Parse `digits` hex chars of `s` starting at `pos` into `out`. False (and
/// `out` unspecified) when the input is short or not hex.
bool parse_hex(std::string_view s, std::size_t pos, std::size_t digits,
               std::uint32_t& out) {
  if (pos + digits > s.size()) return false;
  out = 0;
  for (std::size_t i = 0; i < digits; ++i) {
    int v = hex_value(s[pos + i]);
    if (v < 0) return false;
    out = out << 4 | static_cast<std::uint32_t>(v);
  }
  return true;
}

/// Append the UTF-8 encoding of a code point.
void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | cp >> 6);
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | cp >> 12);
    out += static_cast<char>(0x80 | (cp >> 6 & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | cp >> 18);
    out += static_cast<char>(0x80 | (cp >> 12 & 0x3F));
    out += static_cast<char>(0x80 | (cp >> 6 & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

}  // namespace

std::string escape_ntriples(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        auto byte = static_cast<unsigned char>(c);
        if (byte < 0x20) {
          // Remaining control characters must use the numeric escape, or
          // the serialized line would contain a raw control byte that
          // unescape_ntriples has no inverse image for.
          out += "\\u00";
          out += kHexDigits[byte >> 4];
          out += kHexDigits[byte & 0xF];
        } else {
          out += c;  // non-ASCII UTF-8 bytes pass through unescaped
        }
      }
    }
  }
  return out;
}

std::string unescape_ntriples(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    char c = escaped[i];
    if (c != '\\' || i + 1 == escaped.size()) {
      out += c;
      continue;
    }
    char next = escaped[++i];
    std::uint32_t cp = 0;
    switch (next) {
      case '\\': out += '\\'; break;
      case '"': out += '"'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u':
        // \uXXXX decodes to the UTF-8 bytes of the code point; it used to
        // be passed through verbatim, so a document's "A" survived as
        // six characters while escape_ntriples would then double the
        // backslash — parse/serialize round trips diverged on any numeric
        // escape. Malformed hex still falls through verbatim.
        if (parse_hex(escaped, i + 1, 4, cp)) {
          append_utf8(out, cp);
          i += 4;
        } else {
          out += '\\';
          out += next;
        }
        break;
      case 'U':
        if (parse_hex(escaped, i + 1, 8, cp) && cp <= 0x10FFFF) {
          append_utf8(out, cp);
          i += 8;
        } else {
          out += '\\';
          out += next;
        }
        break;
      default:
        out += '\\';
        out += next;
    }
  }
  return out;
}

}  // namespace ahsw::common
