#include "common/strings.hpp"

namespace ahsw::common {

namespace {
[[nodiscard]] bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string escape_ntriples(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_ntriples(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    char c = escaped[i];
    if (c != '\\' || i + 1 == escaped.size()) {
      out += c;
      continue;
    }
    char next = escaped[++i];
    switch (next) {
      case '\\': out += '\\'; break;
      case '"': out += '"'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      default:
        out += '\\';
        out += next;
    }
  }
  return out;
}

}  // namespace ahsw::common
