#include "lint/engine.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ahsw::lint {

namespace {

namespace fs = std::filesystem;

[[nodiscard]] std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ahsw-lint: cannot read " + p.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

[[nodiscard]] bool lintable(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

void merge(LintReport* into, LintReport part) {
  into->files_scanned += part.files_scanned;
  into->suppressed += part.suppressed;
  for (Diagnostic& d : part.diagnostics) {
    ++into->by_rule[d.rule];
    into->diagnostics.push_back(std::move(d));
  }
}

[[nodiscard]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string LintReport::to_string() const {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics) {
    out << d.to_string() << "\n";
  }
  if (clean()) {
    out << "ahsw-lint: clean (" << suppressed << " suppressed) over "
        << files_scanned << " file(s)\n";
  } else {
    out << "ahsw-lint: " << diagnostics.size() << " diagnostic(s) ("
        << suppressed << " suppressed) over " << files_scanned
        << " file(s)\n";
  }
  return out.str();
}

std::string LintReport::to_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"tool\": \"ahsw-lint\",\n";
  out << "  \"schema_version\": " << kJsonSchemaVersion << ",\n";
  out << "  \"files_scanned\": " << files_scanned << ",\n";
  out << "  \"suppressed\": " << suppressed << ",\n";
  out << "  \"diagnostic_count\": " << diagnostics.size() << ",\n";
  out << "  \"by_rule\": {";
  bool first = true;
  for (const auto& [rule, count] : by_rule) {
    out << (first ? "" : ", ") << "\"" << json_escape(rule)
        << "\": " << count;
    first = false;
  }
  out << "},\n";
  out << "  \"diagnostics\": [";
  first = true;
  for (const Diagnostic& d : diagnostics) {
    out << (first ? "\n" : ",\n");
    out << "    {\"rule\": \"" << json_escape(d.rule) << "\", \"file\": \""
        << json_escape(d.file) << "\", \"line\": " << d.line
        << ", \"message\": \"" << json_escape(d.message) << "\"}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n";
  out << "}\n";
  return out.str();
}

LintReport lint_source(std::string path, std::string_view text,
                       const LintConfig& cfg) {
  LintReport report;
  report.files_scanned = 1;
  SourceFile file = tokenize(std::move(path), text);
  std::vector<Diagnostic> raw = run_rules(file, cfg);
  std::size_t suppressed = 0;
  std::vector<Diagnostic> kept =
      apply_suppressions(file, std::move(raw), &suppressed);
  report.suppressed = suppressed;
  for (Diagnostic& d : kept) {
    ++report.by_rule[d.rule];
    report.diagnostics.push_back(std::move(d));
  }
  return report;
}

LintReport lint_files(const std::string& root,
                      const std::vector<std::string>& rel_paths,
                      const LintConfig& cfg) {
  LintReport report;
  for (const std::string& rel : rel_paths) {
    std::string text = read_file(fs::path(root) / rel);
    merge(&report, lint_source(rel, text, cfg));
  }
  return report;
}

namespace {

[[nodiscard]] std::vector<std::string> collect_tree(
    const std::string& root, const std::vector<std::string>& dirs) {
  std::vector<std::string> rel_paths;
  for (const std::string& dir : dirs) {
    fs::path top = fs::path(root) / dir;
    if (!fs::exists(top)) continue;
    for (const fs::directory_entry& e :
         fs::recursive_directory_iterator(top)) {
      if (!e.is_regular_file() || !lintable(e.path())) continue;
      rel_paths.push_back(
          fs::path(e.path()).lexically_relative(root).generic_string());
    }
  }
  // Deterministic scan order regardless of directory enumeration order.
  std::sort(rel_paths.begin(), rel_paths.end());
  return rel_paths;
}

}  // namespace

LintReport lint_tree(const std::string& root, const LintConfig& cfg,
                     const std::vector<std::string>& dirs) {
  return lint_files(root, collect_tree(root, dirs), cfg);
}

std::vector<SourceFile> tokenize_tree(const std::string& root,
                                      const std::vector<std::string>& dirs) {
  std::vector<SourceFile> files;
  for (const std::string& rel : collect_tree(root, dirs)) {
    files.push_back(tokenize(rel, read_file(fs::path(root) / rel)));
  }
  return files;
}

namespace {

/// Apply the normal suppression machinery per file to a whole-program
/// pass's diagnostics and merge the survivors into `report`, so a justified
/// `// ahsw-lint: allow(P1) ...` works exactly like the token rules.
void merge_whole_program(const std::vector<SourceFile>& files,
                         std::vector<Diagnostic> diagnostics,
                         LintReport* report) {
  std::map<std::string, std::vector<Diagnostic>> by_file;
  for (Diagnostic& d : diagnostics) {
    by_file[d.file].push_back(std::move(d));
  }
  for (const SourceFile& f : files) {
    auto it = by_file.find(f.path);
    if (it == by_file.end()) continue;
    std::size_t suppressed = 0;
    std::vector<Diagnostic> kept =
        apply_suppressions(f, std::move(it->second), &suppressed);
    report->suppressed += suppressed;
    // S1 findings about the file's markers were already raised by the token
    // pass over the same tree; re-reporting them here would double-count.
    kept.erase(std::remove_if(kept.begin(), kept.end(),
                              [](const Diagnostic& d) { return d.rule == "S1"; }),
               kept.end());
    for (Diagnostic& d : kept) {
      ++report->by_rule[d.rule];
      report->diagnostics.push_back(std::move(d));
    }
  }
}

}  // namespace

void lint_tree_effects(const std::string& root, const LintConfig& cfg,
                       const SharedStateSpec& spec, LintReport* report,
                       std::string* ledger_json,
                       const std::vector<std::string>& dirs) {
  std::vector<SourceFile> files = tokenize_tree(root, dirs);
  EffectsReport effects = analyze_effects(files, spec, cfg.layers);
  merge_whole_program(files, std::move(effects.diagnostics), report);
  if (ledger_json != nullptr) *ledger_json = effects.ledger_json(spec);
}

void lint_tree_races(const std::string& root, const LintConfig& cfg,
                     const SharedStateSpec& spec, LintReport* report,
                     std::string* ledger_json,
                     const std::vector<std::string>& dirs) {
  std::vector<SourceFile> files = tokenize_tree(root, dirs);
  RacesReport races = analyze_races(files, spec, cfg.layers);
  merge_whole_program(files, std::move(races.diagnostics), report);
  if (ledger_json != nullptr) *ledger_json = races.ledger_json();
}

LintConfig load_config(const std::string& root,
                       const std::string& layers_path) {
  std::string spec_path =
      layers_path.empty() ? root + "/tools/ahsw_layers.spec" : layers_path;
  std::string text = read_file(spec_path);
  std::vector<std::string> errors;
  LintConfig cfg;
  cfg.layers = LayerSpec::parse(text, &errors);
  if (!errors.empty()) {
    throw std::runtime_error("ahsw-lint: " + spec_path + ": " + errors[0]);
  }
  if (cfg.layers.allowed.empty()) {
    throw std::runtime_error("ahsw-lint: " + spec_path +
                             " declares no modules");
  }
  return cfg;
}

SharedStateSpec load_shared_state_spec(const std::string& root,
                                       const std::string& spec_path) {
  std::string path = spec_path.empty()
                         ? root + "/tools/ahsw_shared_state.spec"
                         : spec_path;
  std::string text = read_file(path);
  std::vector<std::string> errors;
  SharedStateSpec spec = SharedStateSpec::parse(text, &errors);
  if (!errors.empty()) {
    throw std::runtime_error("ahsw-lint: " + path + ": " + errors[0]);
  }
  if (spec.states.empty() || spec.roots.empty()) {
    throw std::runtime_error("ahsw-lint: " + path +
                             " declares no states or no dispatch roots");
  }
  return spec;
}

}  // namespace ahsw::lint
