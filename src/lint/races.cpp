#include "lint/races.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "common/strings.hpp"

namespace ahsw::lint {

namespace {

[[nodiscard]] std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  });
  return out;
}

[[nodiscard]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

[[nodiscard]] std::string path_arrows(const std::vector<std::string>& path) {
  std::string out;
  for (const std::string& p : path) {
    if (!out.empty()) out += " -> ";
    out += p;
  }
  return out;
}

/// The surface covering a touch, either way round (enclosing function or
/// the mutator method itself) — same lookup the effect analysis uses.
[[nodiscard]] const SurfaceDecl* covering_surface(const SharedStateSpec& spec,
                                                  const TouchPoint& t) {
  const SurfaceDecl* s = spec.surface_for(t.function, t.state);
  if (s == nullptr) {
    s = spec.surface_for(t.state + "::" + t.mutator, t.state);
  }
  return s;
}

[[nodiscard]] std::string discipline_of(const SurfaceDecl* s) {
  if (s == nullptr) return "undeclared";
  if (!s->shard.empty()) return "shard=" + s->shard;
  if (!s->merge.empty()) return "merge=" + s->merge;
  if (s->master_only) return "master-only";
  return "none";
}

/// First line at which `fn` directly calls one of the spec's `record`
/// surfaces, or -1. A record declaration `Class::method` matches an
/// unqualified call from inside `Class`, a qualified `Class::method(...)`
/// call, or a member call `x.method(...)` — the same over-approximation the
/// call-graph resolver applies.
[[nodiscard]] int first_record_line(const FunctionDef& fn,
                                    const SharedStateSpec& spec) {
  int best = -1;
  for (const CallSite& call : fn.calls) {
    for (const std::string& rec : spec.records) {
      std::string name = rec;
      std::string qualifier;
      std::size_t sep = rec.rfind("::");
      if (sep != std::string::npos) {
        qualifier = rec.substr(0, sep);
        name = rec.substr(sep + 2);
      }
      if (call.name != name) continue;
      if (!qualifier.empty() && !call.member && call.qualifier.empty() &&
          fn.qualifier != qualifier) {
        continue;  // free call to an unrelated `name`
      }
      if (!call.qualifier.empty() && !qualifier.empty() &&
          call.qualifier != qualifier) {
        continue;
      }
      if (best < 0 || call.line < best) best = call.line;
    }
  }
  return best;
}

/// C4 annotation marker inside a comment: the `ahsw-lint` marker prefix
/// followed by `guarded_by(<mutex>)`. Returns the mutex name, "" when the
/// comment carries no annotation. The name must be a plain identifier —
/// prose that merely *mentions* the grammar is not an annotation.
[[nodiscard]] std::string guarded_by_mutex(const Comment& c) {
  std::size_t at = c.text.find("ahsw-lint:");
  if (at == std::string::npos) return "";
  std::size_t gb = c.text.find("guarded_by(", at);
  if (gb == std::string::npos) return "";
  std::size_t open = gb + std::string_view("guarded_by(").size();
  std::size_t close = c.text.find(')', open);
  if (close == std::string::npos) return "";
  std::string name(common::trim(c.text.substr(open, close - open)));
  if (name.empty() || (name[0] >= '0' && name[0] <= '9')) return "";
  for (char ch : name) {
    const bool ident = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                       (ch >= '0' && ch <= '9') || ch == '_';
    if (!ident) return "";
  }
  return name;
}

/// The member declared on `line`: the last identifier followed by one of
/// `; = { [ ,` or another identifier (an attribute macro such as
/// AHSW_GUARDED_BY). Handles `std::vector<T> logs_ AHSW_GUARDED_BY(mu_);`
/// and plain `StateLog log_;` alike.
[[nodiscard]] std::string declared_member_on_line(const SourceFile& f,
                                                  int line) {
  std::string member;
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    const Token& tok = f.tokens[i];
    if (tok.line != line || tok.kind != Token::Kind::kIdentifier) continue;
    if (i + 1 >= f.tokens.size()) continue;
    const Token& next = f.tokens[i + 1];
    if (next.is(";") || next.is("=") || next.is("{") || next.is("[") ||
        next.is(",") || next.kind == Token::Kind::kIdentifier) {
      member = tok.text;
    }
  }
  return member;
}

/// Innermost function of `file_index` whose body token range contains
/// token `idx`, or kNoFunction.
[[nodiscard]] std::size_t enclosing_function(const SymbolTable& table,
                                             std::size_t file_index,
                                             std::size_t idx) {
  std::size_t best = kNoFunction;
  for (std::size_t fi = 0; fi < table.functions.size(); ++fi) {
    const FunctionDef& fn = table.functions[fi];
    if (fn.file_index != file_index) continue;
    if (idx < fn.body_begin || idx >= fn.body_end) continue;
    if (best == kNoFunction ||
        fn.body_begin > table.functions[best].body_begin) {
      best = fi;
    }
  }
  return best;
}

/// Lock evidence: some occurrence of the mutex name in [begin, before) with
/// an identifier containing "lock" within a few tokens of it —
/// `std::lock_guard<...> g(mu_)`, `DepositLock lock(mu_)`, `mu_.lock()`.
[[nodiscard]] bool lock_evidence(const std::vector<Token>& toks,
                                 std::size_t begin, std::size_t before,
                                 const std::string& mutex) {
  for (std::size_t k = begin; k < before; ++k) {
    if (!toks[k].ident(mutex)) continue;
    std::size_t lo = k >= 6 ? k - 6 : 0;
    if (lo < begin) lo = begin;
    std::size_t hi = std::min(before, k + 3);
    for (std::size_t j = lo; j < hi; ++j) {
      if (toks[j].kind == Token::Kind::kIdentifier &&
          lower(toks[j].text).find("lock") != std::string::npos) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

RacesReport analyze_races(const std::vector<SourceFile>& files,
                          const SharedStateSpec& spec,
                          const LayerSpec& layers) {
  RacesReport report;
  report.worker_roots = spec.roots;
  report.master_roots = spec.master_roots;

  EffectsContext ctx;
  EffectsReport effects = analyze_effects(files, spec, layers, &ctx);
  const SymbolTable& table = ctx.table;

  auto role_of = [&](std::size_t fi) {
    return fi < ctx.roles.size() ? ctx.roles[fi] : ThreadRole::kNone;
  };
  auto site_of = [&](const TouchPoint& t) {
    return t.function + " (" + t.file + ":" + std::to_string(t.line) + ")";
  };

  // ---- C1: record-dominates-mutate on merge=state-log paths -------------
  // ---- C5: the race ledger ----------------------------------------------
  for (const TouchPoint& t : effects.touches) {
    const SurfaceDecl* surface = covering_surface(spec, t);
    const std::size_t fi = t.function_index;

    RaceSite site;
    site.state = t.state;
    site.mutator = t.mutator;
    site.function = t.function;
    site.file = t.file;
    site.line = t.line;
    site.role = t.role;
    site.discipline = discipline_of(surface);
    site.path = t.path.empty() && fi != kNoFunction
                    ? ctx.path_to(ctx.master_parent, fi)
                    : t.path;
    report.sites.push_back(std::move(site));

    if (surface == nullptr || surface->merge != "state-log") continue;
    if (fi == kNoFunction || ctx.worker_parent[fi] == kNoFunction) continue;

    // Walk the worker path for a StateLog record call. The mutating
    // function itself satisfies the obligation only when it records at an
    // earlier line (record must dominate the mutation); any ancestor on the
    // path satisfies it by wrapping the whole call.
    bool recorded = false;
    const int own = first_record_line(table.functions[fi], spec);
    if (own >= 0 && own < t.line) recorded = true;
    for (std::size_t u = fi; !recorded && ctx.worker_parent[u] != u;) {
      u = ctx.worker_parent[u];
      if (first_record_line(table.functions[u], spec) >= 0) recorded = true;
    }
    if (!recorded) {
      report.diagnostics.push_back(Diagnostic{
          "C1", t.file, t.line,
          "worker-reachable mutation of '" + t.state + "' via '" + t.mutator +
              "' is declared merge=state-log but no StateLog record call "
              "dominates it on the path " + path_arrows(t.path) +
              "; record the action before mutating (spec `record` surfaces: " +
              path_arrows(spec.records) + ")"});
    }
  }

  // ---- C2: master-only surfaces must be worker-unreachable --------------
  std::map<std::size_t, std::string> master_decls;
  for (const std::string& r : spec.master_roots) {
    for (std::size_t idx : table.find(r)) master_decls.emplace(idx, r);
  }
  for (const SurfaceDecl& s : spec.surfaces) {
    if (!s.master_only) continue;
    for (std::size_t idx : table.find(s.function)) {
      master_decls.emplace(idx, s.function);
    }
  }
  for (const auto& [idx, name] : master_decls) {
    const FunctionDef& fn = table.functions[idx];
    if (!common::starts_with(fn.file, "src/")) continue;
    if (ctx.worker_parent[idx] == kNoFunction) continue;
    report.diagnostics.push_back(Diagnostic{
        "C2", fn.file, fn.line,
        "master-context function '" + name +
            "' is reachable from a worker root via " +
            path_arrows(ctx.path_to(ctx.worker_parent, idx)) +
            "; replay/merge surfaces must stay off the worker dispatch tree"});
  }

  // ---- C3: no cross-role state ------------------------------------------
  // (a) dispatch-scoped states (Rng): both roles touching the same engine
  // cannot be serialized by clone-and-replay.
  for (const SharedStateDecl& st : spec.states) {
    if (st.global) continue;
    const TouchPoint* worker_side = nullptr;
    const TouchPoint* master_side = nullptr;
    for (const TouchPoint& t : effects.touches) {
      if (t.state != st.name) continue;
      if (t.role == ThreadRole::kWorker || t.role == ThreadRole::kBoth) {
        if (worker_side == nullptr) worker_side = &t;
      }
      if (t.role == ThreadRole::kMaster || t.role == ThreadRole::kBoth) {
        if (master_side == nullptr) master_side = &t;
      }
    }
    if (worker_side == nullptr || master_side == nullptr) continue;
    report.diagnostics.push_back(Diagnostic{
        "C3", worker_side->file, worker_side->line,
        "dispatch-scoped state '" + st.name +
            "' is mutated from both thread roles: worker via " +
            path_arrows(worker_side->path) + ", master in " +
            site_of(*master_side) +
            "; draws must happen before workers fork or per-shard"});
  }
  // (b) mutable statics/globals — including declared singletons, which P3
  // exempts but C3 does not: a singleton referenced from both roles is an
  // unserialized race regardless of its justification.
  std::map<std::string, std::size_t> file_index_of;
  for (std::size_t i = 0; i < files.size(); ++i) {
    file_index_of[files[i].path] = i;
  }
  for (const auto& [file, decls] : table.statics) {
    if (!common::starts_with(file, "src/")) continue;
    auto fit = file_index_of.find(file);
    if (fit == file_index_of.end()) continue;
    const std::vector<Token>& toks = files[fit->second].tokens;
    for (const StaticDecl& d : decls) {
      std::size_t worker_ref = kNoFunction;
      std::size_t master_ref = kNoFunction;
      for (std::size_t fi = 0; fi < table.functions.size(); ++fi) {
        const FunctionDef& fn = table.functions[fi];
        if (fn.file_index != fit->second) continue;
        const ThreadRole role = role_of(fi);
        if (role == ThreadRole::kNone) continue;
        bool refs = false;
        for (std::size_t k = fn.body_begin;
             k < fn.body_end && k < toks.size(); ++k) {
          if (toks[k].ident(d.name)) {
            refs = true;
            break;
          }
        }
        if (!refs) continue;
        if (role == ThreadRole::kWorker || role == ThreadRole::kBoth) {
          if (worker_ref == kNoFunction) worker_ref = fi;
        }
        if (role == ThreadRole::kMaster || role == ThreadRole::kBoth) {
          if (master_ref == kNoFunction) master_ref = fi;
        }
      }
      if (worker_ref == kNoFunction || master_ref == kNoFunction) continue;
      report.diagnostics.push_back(Diagnostic{
          "C3", file, d.line,
          "mutable static '" + d.name +
              "' is referenced from both thread roles: worker via " +
              path_arrows(ctx.path_to(ctx.worker_parent, worker_ref)) +
              ", master in " + table.functions[master_ref].qualified() +
              "; statics are invisible to the clone-and-replay merge"});
    }
  }

  // ---- C4: guarded_by(<mutex>) annotations ------------------------------
  for (std::size_t fx = 0; fx < files.size(); ++fx) {
    const SourceFile& f = files[fx];
    for (const Comment& comment : f.comments) {
      const std::string mutex = guarded_by_mutex(comment);
      if (mutex.empty()) continue;
      // The annotated declaration: the comment's own line when it trails
      // code, else the first code line after the comment block.
      int decl_line = 0;
      if (f.line_has_code(comment.begin)) {
        decl_line = comment.begin;
      } else {
        auto it = std::upper_bound(f.code_lines.begin(), f.code_lines.end(),
                                   comment.end);
        if (it != f.code_lines.end()) decl_line = *it;
      }
      const std::string member =
          decl_line > 0 ? declared_member_on_line(f, decl_line) : "";
      if (member.empty() || member == mutex) {
        report.diagnostics.push_back(Diagnostic{
            "C4", f.path, comment.begin,
            "guarded_by(" + mutex +
                ") annotation does not precede a recognizable member "
                "declaration"});
        continue;
      }
      for (std::size_t k = 0; k < f.tokens.size(); ++k) {
        if (!f.tokens[k].ident(member)) continue;
        if (f.tokens[k].line == decl_line) continue;
        const std::size_t fi = enclosing_function(table, fx, k);
        if (fi == kNoFunction) continue;  // another declaration site
        const FunctionDef& fn = table.functions[fi];
        if (lock_evidence(f.tokens, fn.body_begin, k, mutex)) continue;
        std::string where;
        const ThreadRole role = role_of(fi);
        if (role == ThreadRole::kWorker || role == ThreadRole::kBoth) {
          where = "; worker path " +
                  path_arrows(ctx.path_to(ctx.worker_parent, fi));
        } else if (role == ThreadRole::kMaster) {
          where = "; master path " +
                  path_arrows(ctx.path_to(ctx.master_parent, fi));
        }
        report.diagnostics.push_back(Diagnostic{
            "C4", f.path, f.tokens[k].line,
            "member '" + member + "' is guarded_by(" + mutex +
                ") but " + fn.qualified() + " accesses it without acquiring '" +
                mutex + "' first" + where});
      }
    }
  }

  std::sort(report.diagnostics.begin(), report.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return report;
}

std::string RacesReport::ledger_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"tool\": \"ahsw-races\",\n";
  out << "  \"schema_version\": " << kRacesSchemaVersion << ",\n";
  out << "  \"worker_roots\": [";
  for (std::size_t i = 0; i < worker_roots.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << json_escape(worker_roots[i])
        << "\"";
  }
  out << "],\n";
  out << "  \"master_roots\": [";
  for (std::size_t i = 0; i < master_roots.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << json_escape(master_roots[i])
        << "\"";
  }
  out << "],\n";
  out << "  \"sites\": [";
  // Line-less and deduplicated like the effects ledger: the baseline only
  // changes when the shared surface itself changes.
  std::string prev_key;
  bool first = true;
  for (const RaceSite& s : sites) {
    std::string key = s.state + "\x1f" + s.file + "\x1f" + s.function +
                      "\x1f" + s.mutator;
    if (key == prev_key) continue;
    prev_key = key;
    out << (first ? "\n" : ",\n");
    out << "    {\"state\": \"" << json_escape(s.state) << "\", \"mutator\": \""
        << json_escape(s.mutator) << "\", \"function\": \""
        << json_escape(s.function) << "\", \"file\": \""
        << json_escape(s.file) << "\", \"role\": \""
        << thread_role_name(s.role) << "\", \"discipline\": \""
        << json_escape(s.discipline) << "\", \"path\": [";
    for (std::size_t i = 0; i < s.path.size(); ++i) {
      out << (i == 0 ? "" : ", ") << "\"" << json_escape(s.path[i]) << "\"";
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n";
  out << "}\n";
  return out.str();
}

}  // namespace ahsw::lint
