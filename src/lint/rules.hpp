// The ahsw-lint rule catalogue.
//
// Four rule families statically enforce the contracts that PR 3's
// deterministic executor and the traffic-accounting layer rely on but that
// generic tooling cannot express (full catalogue with rationale and
// examples: docs/static_analysis.md):
//
//   D — determinism.  D1: wall-clock, OS randomness, and threading
//       primitives are banned in sim code (common::Rng and SimTime are the
//       sanctioned sources); D2: iterating an unordered container leaks
//       hash order into whatever consumes the loop; D3: every unordered
//       container member in a header documents its iteration-order
//       contract.
//   A — accounting.   A1: every Network::send / Network::timeout call site
//       names its traffic category explicitly; A2: traffic counters mutate
//       only inside the accounting layer (TrafficStats / the span ledger),
//       and cache hit/miss/invalidate counters only inside LocationCache
//       (CacheStats is read-only to consumers).
//   O — observability. O1: manual QueryTrace::open/close/reopen calls are
//       forbidden outside SpanScope (RAII keeps span trees balanced);
//       O2: a switch over a guarded enum (Category, SpanKind, PhysOpKind)
//       must be exhaustive — no silent `default:` that would swallow a new
//       enumerator.
//   L — layering.     L1: `#include` edges must follow the declared module
//       DAG (tools/ahsw_layers.spec); L2: every module must be declared in
//       the spec.
//
// Suppressions: `// ahsw-lint: allow(RULE[,RULE...]) <justification>` on
// the offending line, or as the comment block directly above it. The
// justification is mandatory; an empty one rejects the suppression and
// raises S1 on top of the original diagnostic.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/source.hpp"

namespace ahsw::lint {

struct Diagnostic {
  std::string rule;  // "D1", "A2", "L1", "S1", ...
  std::string file;
  int line = 0;
  std::string message;

  /// `file:line: [rule] message` — the format golden tests pin.
  [[nodiscard]] std::string to_string() const;
};

/// The declared module-layering DAG, parsed from tools/ahsw_layers.spec.
/// One line per module: `module: dep dep ...`, `*` for unrestricted
/// (tools / bench / tests), `#` comments. A module may always include
/// itself.
struct LayerSpec {
  std::map<std::string, std::set<std::string>> allowed;

  [[nodiscard]] bool known(const std::string& module) const {
    return allowed.count(module) > 0;
  }
  [[nodiscard]] bool allows(const std::string& module,
                            const std::string& dep) const;

  /// Parse the spec text; malformed lines are reported into `errors`.
  static LayerSpec parse(std::string_view text,
                         std::vector<std::string>* errors = nullptr);
};

struct LintConfig {
  LayerSpec layers;
  /// Enums whose switches must stay exhaustive (O2).
  std::set<std::string> guarded_enums = {"Category", "SpanKind", "PhysOpKind"};
};

/// Run every rule family over one tokenized file. Returns raw diagnostics;
/// suppressions are not yet applied.
[[nodiscard]] std::vector<Diagnostic> run_rules(const SourceFile& file,
                                                const LintConfig& cfg);

/// Apply `// ahsw-lint: allow(...)` suppressions: drops suppressed
/// diagnostics, raises S1 for suppressions missing a justification, and
/// reports how many diagnostics were suppressed via `suppressed_count`.
[[nodiscard]] std::vector<Diagnostic> apply_suppressions(
    const SourceFile& file, std::vector<Diagnostic> raw,
    std::size_t* suppressed_count);

/// One catalogue row: the single source of truth the generated table in
/// docs/static_analysis.md is checked against (`ahsw-lint --rules`).
struct RuleInfo {
  std::string_view id;      // "D1", ..., "P4"
  std::string_view family;  // "determinism", ...
  std::string_view summary;
};

/// Every rule the linter can emit (token families, suppressions, and the
/// effect-analysis P family), in catalogue order.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalogue();

/// The module a repo-relative path belongs to for the layering rules:
/// "src/net/network.cpp" -> "net", "tools/x.cpp" -> "tools",
/// "bench/y.hpp" -> "bench". Empty when the path matches no module root.
[[nodiscard]] std::string module_of(std::string_view path);

}  // namespace ahsw::lint
