// Static race analysis for the parallel batch driver (rule family C).
//
// The effect analysis (effects.hpp) proves *which* shared state dispatch
// can touch; this pass proves the touches are safe under the two-context
// execution model of src/dqp/parallel.cpp: per-shard worker threads run
// `DagExecutor::run` on cloned overlays, the master thread clones, joins,
// and replays the recorded StateLogs. Every function gets a thread role
// (worker / master / both / none, graph.hpp) from two reachability passes
// over the call graph — worker = reachable from the `root` declarations in
// tools/ahsw_shared_state.spec, master = reachable from the `master_root`
// declarations without passing through a worker root — and the rules are:
//
//   C1 — a worker-reachable mutation of a state whose surface declares
//        `merge=state-log` must be statically paired with a StateLog
//        `record` call (spec `record` declarations) on the same call path:
//        either an ancestor on the worker path contains the record call, or
//        the mutating function itself records at an earlier line
//        (record-dominates-mutate). The diagnostic carries the path.
//   C2 — surfaces declared `role=master` and the master roots themselves
//        must be unreachable from worker roots; a worker path into replay /
//        merge code is a self-race on the very log being replayed.
//   C3 — mutable globals/statics (including declared singletons) and
//        `scope=dispatch` states (Rng) must not be referenced from both
//        thread roles: such state is invisible to the clone-and-replay
//        scheme, so cross-role sharing is an unserialized race.
//   C4 — a domain `guarded_by(<mutex>)` annotation (an `ahsw-lint` comment
//        marker) on a member declaration: every other reference in the
//        same file must sit in a function that visibly acquires the named
//        mutex first (lock_guard / scoped_lock / unique_lock / .lock()).
//   C5 — the race ledger: every shared-state touch point with its resolved
//        role, parallel-safety discipline, and call path, rendered as
//        stable line-less JSON and diff-gated against tools/ahsw_races.json
//        (mirror of the P4 effects ledger).
//
// Like the rest of ahsw-lint this is a token-level heuristic, deliberately
// over-approximate: a spurious edge or a missed lock pattern can demand a
// justified suppression, never hide a race.
#pragma once

#include <string>
#include <vector>

#include "lint/effects.hpp"
#include "lint/graph.hpp"
#include "lint/rules.hpp"
#include "lint/source.hpp"

namespace ahsw::lint {

/// Schema version of the C5 ledger (`tools/ahsw_races.json`).
inline constexpr int kRacesSchemaVersion = 1;

/// One shared-state touch point with its race-analysis verdict — the unit
/// of the C5 ledger.
struct RaceSite {
  std::string state;
  std::string mutator;
  std::string function;  // qualified enclosing function
  std::string file;
  int line = 0;
  ThreadRole role = ThreadRole::kNone;
  /// Parallel-safety discipline of the covering surface: "shard=<p>",
  /// "merge=<s>", "master-only", "none" (declared, no discipline), or
  /// "undeclared".
  std::string discipline;
  /// Worker path when worker-reachable, else master path, else empty.
  std::vector<std::string> path;
};

struct RacesReport {
  std::vector<Diagnostic> diagnostics;  // C1-C4, pre-suppression
  std::vector<RaceSite> sites;          // sorted like EffectsReport::touches
  std::vector<std::string> worker_roots;  // spec order
  std::vector<std::string> master_roots;  // spec order

  /// The stable race ledger (C5): schema_version, both root sets, and every
  /// site without line numbers, deduplicated by (state, file, function,
  /// mutator) — the committed tools/ahsw_races.json baseline.
  [[nodiscard]] std::string ledger_json() const;
};

/// Run the race analysis over a tokenized file set. Diagnostics and ledger
/// sites are emitted for `src/` files only (same scope as the effect
/// analysis); all definitions feed the call graph.
[[nodiscard]] RacesReport analyze_races(const std::vector<SourceFile>& files,
                                        const SharedStateSpec& spec,
                                        const LayerSpec& layers);

}  // namespace ahsw::lint
