// Comment/string-stripping C++ tokenizer for ahsw-lint.
//
// The domain rules (see rules.hpp) do not need a real C++ parser: every
// contract they enforce — banned identifiers, call-site argument shapes,
// switch exhaustiveness, include layering — is visible in the token stream
// once comments, string literals, and preprocessor noise are out of the
// way. This tokenizer produces exactly that: a flat token list with line
// numbers, plus the comment text (kept separately, because suppressions
// and iteration-order contracts live in comments) and the `#include`
// directives (the input of the layering rules).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ahsw::lint {

struct Token {
  enum class Kind : unsigned char {
    kIdentifier,  // identifiers and keywords
    kNumber,      // numeric literals, including separators and suffixes
    kString,      // string literal (text stripped; raw strings included)
    kChar,        // character literal (text stripped)
    kPunct,       // operator / punctuation, multi-char ops as one token
  };
  Kind kind = Kind::kPunct;
  std::string text;  // empty for kString/kChar: contents must not match rules
  int line = 0;      // 1-based

  [[nodiscard]] bool is(std::string_view t) const noexcept {
    return text == t;
  }
  [[nodiscard]] bool ident(std::string_view t) const noexcept {
    return kind == Kind::kIdentifier && text == t;
  }
};

/// One comment, `//` or `/* */`. Block comments keep their full text and
/// the line range they span; line comments have begin == end.
struct Comment {
  int begin = 0;  // first line, 1-based
  int end = 0;    // last line
  std::string text;
};

struct IncludeDirective {
  int line = 0;
  std::string path;    // between the quotes / angle brackets
  bool angled = false; // <...> (system) vs "..." (project)
};

/// A tokenized source file. `path` is the repo-relative path with '/'
/// separators; rules key whitelists and the layering module off it.
struct SourceFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
  /// Sorted, deduplicated lines that carry at least one token or include.
  std::vector<int> code_lines;
  int last_line = 0;

  /// True if `line` holds at least one token or include directive.
  [[nodiscard]] bool line_has_code(int line) const;
};

/// Tokenize `content`. Never fails: unterminated constructs consume the
/// rest of the file, which is the useful behaviour for a lint pass.
[[nodiscard]] SourceFile tokenize(std::string path, std::string_view content);

}  // namespace ahsw::lint
