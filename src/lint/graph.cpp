#include "lint/graph.hpp"

#include <algorithm>
#include <deque>

namespace ahsw::lint {

namespace {

using Tokens = std::vector<Token>;

/// Keywords that look like calls (`if (...)`) or start declarations; never
/// function names or callees.
[[nodiscard]] bool is_keyword(std::string_view t) {
  static const std::set<std::string_view> kKeywords = {
      "if",       "for",      "while",     "switch",       "return",
      "sizeof",   "new",      "delete",    "catch",        "case",
      "do",       "else",     "goto",      "static_assert", "decltype",
      "alignof",  "alignas",  "typeid",    "throw",        "using",
      "typedef",  "co_await", "co_yield",  "co_return",    "requires",
      "noexcept", "operator", "constexpr", "const",        "static",
      "inline",   "virtual",  "explicit",  "friend",       "mutable",
      "template", "typename", "namespace", "class",        "struct",
      "union",    "enum",     "public",    "private",      "protected",
      "break",    "continue", "default",   "try",          "this",
      "auto",     "void",     "bool",      "char",         "int",
      "long",     "short",    "float",     "double",       "unsigned",
      "signed",
  };
  return kKeywords.count(t) > 0;
}

/// Forward scan from the opening bracket at `open` to its matching closer.
[[nodiscard]] std::size_t match_forward(const Tokens& toks, std::size_t open,
                                        std::string_view o,
                                        std::string_view c) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].is(o)) ++depth;
    if (toks[i].is(c) && --depth == 0) return i;
  }
  return toks.size();
}

/// Skip a template argument/parameter list starting at `<`. Tracks only
/// angle depth (with `>>` counting twice), which is enough for the
/// declaration positions this scanner meets angles in.
[[nodiscard]] std::size_t skip_angles(const Tokens& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].is("<")) ++depth;
    if (toks[i].is(">") && --depth == 0) return i + 1;
    if (toks[i].is(">>")) {
      depth -= 2;
      if (depth <= 0) return i + 1;
    }
    if (toks[i].is(";")) return i;  // malformed / comparison; bail out
  }
  return i;
}

/// Extractor for one file. Walks the token stream once, maintaining a scope
/// stack (namespace / class / plain block), and records function
/// definitions, the call sites inside their bodies, and static variable
/// declarations.
class Extractor {
 public:
  Extractor(const SourceFile& file, std::size_t file_index, SymbolTable* out)
      : f_(file), file_index_(file_index), t_(file.tokens), out_(out) {}

  void run() {
    std::size_t i = 0;
    while (i < t_.size()) {
      i = step(i);
    }
  }

 private:
  struct Scope {
    enum class Kind : unsigned char { kNamespace, kClass, kBlock };
    Kind kind = Kind::kBlock;
    std::string name;  // class name for kClass
  };

  [[nodiscard]] std::string enclosing_class() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kClass) return it->name;
    }
    return "";
  }

  /// One step at declaration scope (namespace / class / file level).
  std::size_t step(std::size_t i) {
    const Token& tok = t_[i];
    if (tok.ident("template") && i + 1 < t_.size() && t_[i + 1].is("<")) {
      return skip_angles(t_, i + 1);
    }
    if (tok.ident("namespace")) return enter_namespace(i);
    if (tok.ident("class") || tok.ident("struct") || tok.ident("union")) {
      return enter_class(i);
    }
    if (tok.ident("enum")) return skip_enum(i);
    if (tok.ident("static") || tok.ident("inline")) {
      scan_static(i, /*local=*/false);
      // Fall through: the declaration may still be a function definition.
    }
    if (tok.kind == Token::Kind::kIdentifier && !is_keyword(tok.text) &&
        i + 1 < t_.size() && t_[i + 1].is("(")) {
      std::size_t next = try_function(i);
      if (next != i) return next;
    }
    if (tok.is("{")) {
      scopes_.push_back(Scope{Scope::Kind::kBlock, ""});
      return i + 1;
    }
    if (tok.is("}")) {
      if (!scopes_.empty()) scopes_.pop_back();
      return i + 1;
    }
    return i + 1;
  }

  std::size_t enter_namespace(std::size_t i) {
    ++i;  // 'namespace'
    while (i < t_.size() && !t_[i].is("{") && !t_[i].is(";") &&
           !t_[i].is("=")) {
      ++i;
    }
    if (i < t_.size() && t_[i].is("{")) {
      scopes_.push_back(Scope{Scope::Kind::kNamespace, ""});
      return i + 1;
    }
    return i + 1;  // alias or declaration
  }

  /// `class X : bases { ... }` — push a class scope at the '{'. Elaborated
  /// uses (`struct S s;`, `class X* p`, forward declarations) are skipped.
  std::size_t enter_class(std::size_t i) {
    ++i;  // 'class' / 'struct' / 'union'
    while (i < t_.size() && t_[i].ident("alignas")) {
      if (i + 1 < t_.size() && t_[i + 1].is("(")) {
        i = match_forward(t_, i + 1, "(", ")") + 1;
      } else {
        ++i;
      }
    }
    std::string name;
    if (i < t_.size() && t_[i].kind == Token::Kind::kIdentifier) {
      name = t_[i].text;
      ++i;
    }
    if (i < t_.size() && t_[i].ident("final")) ++i;
    if (i < t_.size() && t_[i].is(":")) {
      // Base-clause: scan to the '{' (template bases may nest angles).
      while (i < t_.size() && !t_[i].is("{") && !t_[i].is(";")) {
        if (t_[i].is("<")) {
          i = skip_angles(t_, i);
        } else {
          ++i;
        }
      }
    }
    if (i < t_.size() && t_[i].is("{")) {
      scopes_.push_back(Scope{Scope::Kind::kClass, name});
      return i + 1;
    }
    return i;  // not a definition
  }

  /// `enum [class] X [: type] { ... };` — the body is enumerator names, not
  /// declarations; skip it entirely.
  std::size_t skip_enum(std::size_t i) {
    while (i < t_.size() && !t_[i].is("{") && !t_[i].is(";")) ++i;
    if (i < t_.size() && t_[i].is("{")) {
      return match_forward(t_, i, "{", "}") + 1;
    }
    return i + 1;
  }

  /// Try to parse a function definition whose name token is at `i`
  /// (identifier directly followed by '('). Returns the index past the body
  /// on success, `i` unchanged when this is not a definition.
  std::size_t try_function(std::size_t i) {
    // The name may carry a qualifier chain: A::B::name. Record the last
    // qualifier (the class); skip constructs that are calls/expressions.
    std::string qualifier;
    if (i >= 2 && t_[i - 1].is("::") &&
        t_[i - 2].kind == Token::Kind::kIdentifier) {
      qualifier = t_[i - 2].text;
    } else if (i >= 1 && (t_[i - 1].is(".") || t_[i - 1].is("->"))) {
      return i;  // member call expression, not a definition
    }
    std::size_t close = match_forward(t_, i + 1, "(", ")");
    if (close >= t_.size()) return i;
    std::size_t j = close + 1;
    // Trailer: cv/ref/noexcept/override/final/trailing return, until the
    // body '{', a ';' (declaration), or '=' (pure/default/delete/var init).
    while (j < t_.size()) {
      const Token& tr = t_[j];
      if (tr.is("{") || tr.is(";") || tr.is("=")) break;
      if (tr.is(",") || tr.is(")")) return i;  // parameter/expression context
      if (tr.is(":")) {  // constructor initializer list
        j = skip_ctor_inits(j + 1);
        break;
      }
      if (tr.is("(")) {
        j = match_forward(t_, j, "(", ")") + 1;
        continue;
      }
      if (tr.is("<")) {
        j = skip_angles(t_, j);
        continue;
      }
      ++j;
    }
    if (j >= t_.size() || !t_[j].is("{")) return i;
    std::size_t body_end = match_forward(t_, j, "{", "}");
    FunctionDef def;
    def.name = t_[i].text;
    def.qualifier = !qualifier.empty() ? qualifier : enclosing_class();
    def.file = f_.path;
    def.line = t_[i].line;
    def.file_index = file_index_;
    def.body_begin = j + 1;
    def.body_end = body_end;
    scan_body(j + 1, body_end, &def);
    out_->functions.push_back(std::move(def));
    return body_end + 1;
  }

  /// Skip a constructor initializer list starting just past the ':'.
  /// Returns the index of the body '{'.
  std::size_t skip_ctor_inits(std::size_t j) {
    while (j < t_.size()) {
      // member name (possibly qualified / templated base)
      while (j < t_.size() && (t_[j].kind == Token::Kind::kIdentifier ||
                               t_[j].is("::"))) {
        ++j;
      }
      if (j < t_.size() && t_[j].is("<")) j = skip_angles(t_, j);
      if (j >= t_.size()) break;
      if (t_[j].is("(")) {
        j = match_forward(t_, j, "(", ")") + 1;
      } else if (t_[j].is("{")) {
        j = match_forward(t_, j, "{", "}") + 1;
      } else {
        break;  // malformed; let the caller decide
      }
      if (j < t_.size() && t_[j].is(",")) {
        ++j;
        continue;
      }
      break;
    }
    return j;
  }

  /// Record call sites and local statics inside a body token range.
  void scan_body(std::size_t begin, std::size_t end, FunctionDef* def) {
    for (std::size_t j = begin; j < end; ++j) {
      const Token& tok = t_[j];
      if (tok.ident("static")) {
        scan_static(j, /*local=*/true);
        continue;
      }
      if (tok.kind != Token::Kind::kIdentifier || is_keyword(tok.text)) {
        continue;
      }
      if (j + 1 >= end || !t_[j + 1].is("(")) continue;
      CallSite call;
      call.name = tok.text;
      call.line = tok.line;
      if (j >= 1 && (t_[j - 1].is(".") || t_[j - 1].is("->"))) {
        call.member = true;
        if (j >= 2) {
          static_cast<void>(receiver_chain(t_, j - 2, &call.receiver));
        }
      } else if (j >= 2 && t_[j - 1].is("::") &&
                 t_[j - 2].kind == Token::Kind::kIdentifier) {
        call.qualifier = t_[j - 2].text;
      }
      def->calls.push_back(std::move(call));
    }
  }

  /// A `static` keyword at `i`: record the declared variable unless it is
  /// const/constexpr or a function (declarator directly followed by '(').
  void scan_static(std::size_t i, bool local) {
    std::size_t j = i + 1;
    std::string last_ident;
    int line = t_[i].line;
    while (j < t_.size()) {
      const Token& tok = t_[j];
      if (tok.ident("const") || tok.ident("constexpr") ||
          tok.ident("consteval") || tok.ident("constinit")) {
        return;  // immutable: not P3 material
      }
      if (tok.is(";") || tok.is("=") || tok.is("{")) break;
      if (tok.is("(")) {
        // `static T name(...)`: a function declaration/definition at
        // namespace scope, or a direct-initialized local. Treat a preceding
        // identifier as the declarator either way; namespace-scope functions
        // are filtered by the definition scanner owning this token range.
        if (!local) return;
        break;
      }
      if (tok.is("<")) {
        j = skip_angles(t_, j);
        continue;
      }
      if (tok.kind == Token::Kind::kIdentifier && !is_keyword(tok.text)) {
        last_ident = tok.text;
      }
      ++j;
    }
    if (last_ident.empty()) return;
    out_->statics[f_.path].push_back(StaticDecl{last_ident, line, local});
  }

  const SourceFile& f_;
  std::size_t file_index_;
  const Tokens& t_;
  SymbolTable* out_;
  std::vector<Scope> scopes_;
};

}  // namespace

std::size_t receiver_chain(const std::vector<Token>& toks, std::size_t i,
                           std::vector<std::string>* idents) {
  std::size_t first = i + 1;
  while (true) {
    if (first == 0) break;
    const Token& t = toks[first - 1];
    if (t.kind == Token::Kind::kIdentifier) {
      if (idents != nullptr) idents->push_back(t.text);
      --first;
    } else if (t.is(".") || t.is("->") || t.is("::")) {
      --first;
    } else if (t.is(")") || t.is("]")) {
      std::string_view open = t.is(")") ? "(" : "[";
      std::string_view close = t.is(")") ? ")" : "]";
      int depth = 0;
      std::size_t j = first - 1;
      while (true) {
        if (toks[j].is(close)) ++depth;
        if (toks[j].is(open) && --depth == 0) break;
        if (j == 0) break;
        --j;
      }
      if (depth != 0) break;
      first = j;
    } else {
      break;
    }
  }
  return first;
}

SymbolTable SymbolTable::build(const std::vector<SourceFile>& files) {
  SymbolTable table;
  for (std::size_t i = 0; i < files.size(); ++i) {
    Extractor(files[i], i, &table).run();
  }
  for (std::size_t i = 0; i < table.functions.size(); ++i) {
    table.by_name[table.functions[i].name].push_back(i);
  }
  return table;
}

std::vector<std::size_t> SymbolTable::find(std::string_view name) const {
  std::string want(name);
  std::string qualifier;
  std::size_t sep = want.rfind("::");
  if (sep != std::string::npos) {
    qualifier = want.substr(0, sep);
    want = want.substr(sep + 2);
  }
  std::vector<std::size_t> out;
  auto it = by_name.find(want);
  if (it == by_name.end()) return out;
  for (std::size_t idx : it->second) {
    if (qualifier.empty() || functions[idx].qualifier == qualifier) {
      out.push_back(idx);
    }
  }
  return out;
}

std::set<std::string> layer_closure(const LayerSpec& layers,
                                    const std::string& module) {
  std::set<std::string> closure;
  std::deque<std::string> work{module};
  while (!work.empty()) {
    std::string m = work.front();
    work.pop_front();
    if (!closure.insert(m).second) continue;
    auto it = layers.allowed.find(m);
    if (it == layers.allowed.end()) continue;
    for (const std::string& dep : it->second) {
      if (dep == "*") return {};  // unrestricted
      work.push_back(dep);
    }
  }
  return closure;
}

CallGraph CallGraph::resolve(const SymbolTable& table,
                             const LayerSpec& layers) {
  CallGraph g;
  g.out.resize(table.functions.size());
  // Per-module closures, computed once.
  std::map<std::string, std::set<std::string>> closures;
  for (std::size_t i = 0; i < table.functions.size(); ++i) {
    const FunctionDef& caller = table.functions[i];
    std::string mod = module_of(caller.file);
    auto cit = closures.find(mod);
    if (cit == closures.end()) {
      cit = closures.emplace(mod, layer_closure(layers, mod)).first;
    }
    const std::set<std::string>& closure = cit->second;
    std::vector<std::size_t>& edges = g.out[i];
    for (const CallSite& call : caller.calls) {
      auto nit = table.by_name.find(call.name);
      if (nit == table.by_name.end()) continue;
      for (std::size_t cand : nit->second) {
        const FunctionDef& callee = table.functions[cand];
        // Shape filter: a member call never targets a free function; a
        // plain unqualified call targets free functions or methods of the
        // caller's own class; `X::f(...)` prefers class X but also matches
        // a free f reached via a namespace qualifier.
        if (call.member) {
          if (callee.qualifier.empty()) continue;
        } else if (!call.qualifier.empty()) {
          if (!callee.qualifier.empty() &&
              callee.qualifier != call.qualifier) {
            continue;
          }
        } else {
          if (!callee.qualifier.empty() &&
              callee.qualifier != caller.qualifier) {
            continue;
          }
        }
        // Layer pruning: an empty closure means unrestricted (`*`).
        if (!closure.empty() &&
            closure.count(module_of(callee.file)) == 0) {
          continue;
        }
        edges.push_back(cand);
      }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }
  return g;
}

std::vector<std::size_t> CallGraph::reach(
    const std::vector<std::size_t>& roots) const {
  return reach_avoiding(roots, {});
}

std::vector<std::size_t> CallGraph::reach_avoiding(
    const std::vector<std::size_t>& roots,
    const std::set<std::size_t>& blocked) const {
  std::vector<std::size_t> parent(out.size(), kNoFunction);
  std::deque<std::size_t> work;
  for (std::size_t r : roots) {
    if (r < parent.size() && parent[r] == kNoFunction &&
        blocked.count(r) == 0) {
      parent[r] = r;
      work.push_back(r);
    }
  }
  while (!work.empty()) {
    std::size_t u = work.front();
    work.pop_front();
    for (std::size_t v : out[u]) {
      if (parent[v] == kNoFunction && blocked.count(v) == 0) {
        parent[v] = u;
        work.push_back(v);
      }
    }
  }
  return parent;
}

std::string_view thread_role_name(ThreadRole role) {
  switch (role) {
    case ThreadRole::kNone:
      return "none";
    case ThreadRole::kWorker:
      return "worker";
    case ThreadRole::kMaster:
      return "master";
    case ThreadRole::kBoth:
      return "both";
  }
  return "none";
}

std::vector<ThreadRole> thread_roles(
    const std::vector<std::size_t>& worker_parent,
    const std::vector<std::size_t>& master_parent) {
  std::vector<ThreadRole> roles(worker_parent.size(), ThreadRole::kNone);
  for (std::size_t i = 0; i < roles.size(); ++i) {
    const bool w = worker_parent[i] != kNoFunction;
    const bool m = i < master_parent.size() && master_parent[i] != kNoFunction;
    roles[i] = w && m   ? ThreadRole::kBoth
               : w      ? ThreadRole::kWorker
               : m      ? ThreadRole::kMaster
                        : ThreadRole::kNone;
  }
  return roles;
}

}  // namespace ahsw::lint
