// Shared-state effect analysis over the call graph (rule family P).
//
// The future parallel driver partitions queries across workers and merges
// in (time, query, task) order; that is only sound if everything a worker
// executes touches per-query state, or goes through a sync surface the
// merge can serialize. This pass makes that contract static and reviewable:
//
//   P1 — declared shared mutable state (LocationTable, LocationCache,
//        TrafficStats, net::EventQueue, TermDictionary, RNG engines) may be
//        mutated outside its owning implementation only by functions
//        declared as sync surfaces in tools/ahsw_shared_state.spec.
//   P2 — every function transitively reachable from the DagExecutor
//        dispatch roots must not mutate shared state except through a
//        surface declared `dispatch`-safe; the diagnostic carries the call
//        path from the root so the reviewer sees *how* dispatch gets there.
//   P3 — no non-const globals or function-local statics outside the
//        declared singletons (hash-order-free, but parallel-hostile).
//   P4 — the parallel-safety ledger: every out-of-home touch point of
//        shared state, with its shortest dispatch call path, rendered as
//        stable JSON (no line numbers, so the committed baseline only
//        changes when the shared surface itself changes). CI diffs the
//        regenerated ledger against tools/ahsw_effects.json.
//
// The analysis is deliberately over-approximate (see graph.hpp): a
// spurious resolution can demand a justified declaration, never hide a
// mutation behind a call.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/graph.hpp"
#include "lint/rules.hpp"
#include "lint/source.hpp"

namespace ahsw::lint {

/// One declared shared-state class and the method names that mutate it.
struct SharedStateDecl {
  std::string name;  // class name, e.g. "LocationTable"
  std::string home;  // path prefix owning the implementation
  /// Receiver-chain hints: a member call `x.y().m(...)` only counts as a
  /// touch of this state when some chain identifier contains a hint
  /// (case-insensitive), mirroring the A2 idiom.
  std::vector<std::string> hints;
  std::set<std::string> mutators;
  /// "global": P1 applies everywhere in src/. "dispatch": only mutations on
  /// a dispatch path are violations (setup-time use is unconstrained);
  /// every touch still lands in the ledger.
  bool global = true;
};

/// One declared sync surface: a function allowed to mutate a state.
struct SurfaceDecl {
  std::string function;  // qualified name ("Class::method" or free name)
  std::string state;     // SharedStateDecl::name
  bool dispatch = false;  // also allowed on DagExecutor dispatch paths
  /// Parallel-safety discipline of a dispatch surface: `shard=` names a
  /// partition ("per-query", "per-worker", "per-node"), `merge=` names a
  /// replay scheme ("state-log"). At most one is non-empty.
  std::string shard;
  std::string merge;
  /// `role=master`: the surface belongs to the master context (clone /
  /// replay / merge) and must be unreachable from worker roots (rule C2).
  bool master_only = false;
  std::string why;  // mandatory justification
};

/// Parsed tools/ahsw_shared_state.spec.
struct SharedStateSpec {
  std::vector<std::string> roots;  // worker dispatch roots, qualified names
  /// Master-context roots (clone construction, StateLog replay, the merge
  /// barrier). Reachability from these — cut at the worker roots — defines
  /// the master thread role for rule family C.
  std::vector<std::string> master_roots;
  /// StateLog record surfaces: functions whose presence on a worker call
  /// path satisfies C1's record-dominates-mutate obligation.
  std::vector<std::string> records;
  std::vector<SharedStateDecl> states;
  std::vector<SurfaceDecl> surfaces;
  std::set<std::string> singletons;  // P3-exempt static/global names

  /// Parse the spec text; malformed lines are reported into `errors`.
  /// Grammar (one declaration per line, `#` comments):
  ///   root <Function>
  ///   master_root <Function>
  ///   record <Function>
  ///   state <Name> home=<prefix> hints=<h1,h2> [scope=dispatch]: <m> <m> ...
  ///   surface <Function> state=<Name> [dispatch] [shard=<p>|merge=<s>]
  ///       [role=master]: <justification>
  ///   singleton <name>: <justification>
  [[nodiscard]] static SharedStateSpec parse(
      std::string_view text, std::vector<std::string>* errors = nullptr);

  [[nodiscard]] const SurfaceDecl* surface_for(std::string_view function,
                                               std::string_view state) const;
};

/// One out-of-home mutation site of declared shared state (ledger entry;
/// line-bearing for diagnostics, line-less in the stable JSON).
struct TouchPoint {
  std::string state;
  std::string mutator;
  std::string function;  // qualified enclosing function
  std::string file;
  int line = 0;
  bool declared = false;   // a surface covers (function, state)
  bool dispatch = false;   // ...and that surface is dispatch-safe
  bool reachable = false;  // on a path from a worker dispatch root
  /// Thread role of the enclosing function under the parallel driver
  /// (schema_version 2 field — the vocabulary shared with the race ledger).
  ThreadRole role = ThreadRole::kNone;
  /// Index of the enclosing function in EffectsContext::table.functions —
  /// lets the race analysis walk the call graph from a touch without
  /// re-matching names. Not serialized.
  std::size_t function_index = kNoFunction;
  std::vector<std::string> path;  // root -> ... -> function, when reachable
};

/// The shared machinery of the P and C passes: the symbol table, resolved
/// call graph, and both reachability passes with per-function roles.
/// analyze_effects fills one on request so analyze_races does not rebuild
/// the graph from scratch.
struct EffectsContext {
  SymbolTable table;
  CallGraph graph;
  std::vector<std::size_t> worker_roots;   // indices into table.functions
  std::vector<std::size_t> master_roots;   // indices into table.functions
  std::vector<std::size_t> worker_parent;  // CallGraph::reach from workers
  std::vector<std::size_t> master_parent;  // reach_avoiding(worker roots)
  std::vector<ThreadRole> roles;

  /// Shortest call path root -> ... -> fn under `parent`; empty when
  /// unreachable.
  [[nodiscard]] std::vector<std::string> path_to(
      const std::vector<std::size_t>& parent, std::size_t fn) const;
};

struct EffectsReport {
  std::vector<Diagnostic> diagnostics;  // P1/P2/P3, pre-suppression
  std::vector<TouchPoint> touches;      // sorted, deduplicated per line
  std::vector<std::string> roots;       // resolved root names, spec order

  /// The stable parallel-safety ledger (P4): schema_version, roots, states,
  /// and every touch point without line numbers, deduplicated. Schema
  /// version 2 adds the resolved thread role per touch point.
  [[nodiscard]] std::string ledger_json(const SharedStateSpec& spec) const;
};

/// Schema version of the P4 ledger (`tools/ahsw_effects.json`). Version 2:
/// every touch point carries its resolved thread role, and the header lists
/// the master roots next to the worker roots.
inline constexpr int kEffectsSchemaVersion = 2;

/// Run the effect analysis over a tokenized file set. Diagnostics and
/// ledger entries are emitted for `src/` files only — tools and benches
/// drive the simulator single-threaded by construction — but their
/// definitions still feed the call graph. When `ctx` is non-null it
/// receives the symbol table / call graph / role machinery for reuse by the
/// race analysis (races.hpp).
[[nodiscard]] EffectsReport analyze_effects(
    const std::vector<SourceFile>& files, const SharedStateSpec& spec,
    const LayerSpec& layers, EffectsContext* ctx = nullptr);

}  // namespace ahsw::lint
