// Symbol-table + call-graph extraction for the effect analysis (effects.hpp).
//
// The tokenizer (source.hpp) gives a flat token stream; this layer finds in
// it the things a whole-program pass needs and token rules cannot see: which
// function every token range belongs to, which functions call which, and
// where non-const static state is declared. It is a heuristic extractor, not
// a C++ front end — overload sets collapse to names, templates are scanned
// like plain code, and a member call resolves to every class that defines a
// method of that name (pruned by the layer DAG: a caller can only reach
// definitions in modules its module may include). Over-approximation is the
// safe direction for the parallel-safety contract: a spurious edge can only
// demand a justification, never hide a mutation.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.hpp"
#include "lint/source.hpp"

namespace ahsw::lint {

/// One call site inside a function body.
struct CallSite {
  std::string name;       // callee (rightmost identifier before '(')
  std::string qualifier;  // `X::name` -> "X"; empty when unqualified
  bool member = false;    // called through '.' or '->'
  std::vector<std::string> receiver;  // receiver-chain identifiers, if member
  int line = 0;
};

/// A non-const `static` (or namespace-scope `static`/`inline`) variable —
/// the raw material of rule P3.
struct StaticDecl {
  std::string name;
  int line = 0;
  bool local = false;  // function-local static vs namespace/class scope
};

/// One function definition found in the scanned tree.
struct FunctionDef {
  std::string name;       // unqualified
  std::string qualifier;  // enclosing class or explicit `Class::`; "" = free
  std::string file;       // repo-relative path
  int line = 0;
  std::vector<CallSite> calls;
  /// Body token range [body_begin, body_end) in the owning file's token
  /// stream, plus that file's index in the scanned set — lets whole-program
  /// passes (C3 static references, C4 lock evidence) re-scan a body without
  /// re-walking declarations.
  std::size_t file_index = 0;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;

  [[nodiscard]] std::string qualified() const {
    return qualifier.empty() ? name : qualifier + "::" + name;
  }
};

/// All function definitions of a file set, with a name index.
struct SymbolTable {
  std::vector<FunctionDef> functions;  // file order, then line order
  /// Unqualified name -> indices into `functions`.
  std::map<std::string, std::vector<std::size_t>> by_name;
  /// Statics per file (file -> decls), for rule P3.
  std::map<std::string, std::vector<StaticDecl>> statics;

  [[nodiscard]] static SymbolTable build(const std::vector<SourceFile>& files);

  /// Indices of definitions whose qualified name is `name` (either exactly
  /// `Class::method`, or a bare `method`/free-function name).
  [[nodiscard]] std::vector<std::size_t> find(std::string_view name) const;
};

inline constexpr std::size_t kNoFunction = static_cast<std::size_t>(-1);

/// The resolved call graph over a SymbolTable.
struct CallGraph {
  /// out[i] = indices of functions that function i may call (sorted, deduped).
  std::vector<std::vector<std::size_t>> out;

  /// Resolve call sites to definitions. `layers` prunes impossible edges:
  /// a caller in module M only resolves into modules in M's transitive
  /// include closure (plus M itself); `*` modules resolve everywhere.
  [[nodiscard]] static CallGraph resolve(const SymbolTable& table,
                                         const LayerSpec& layers);

  /// BFS from `roots`; returns, per function, the predecessor on a shortest
  /// path from a root (kNoFunction when unreachable, self for a root).
  [[nodiscard]] std::vector<std::size_t> reach(
      const std::vector<std::size_t>& roots) const;

  /// BFS from `roots` that refuses to enter any function in `blocked`:
  /// blocked functions are neither marked reachable nor expanded, even when
  /// they appear in `roots`. This carves the master context out of a call
  /// graph where the master (clone / merge / replay code) spawns the worker
  /// roots on threads — without the cut, everything past `DagExecutor::run`
  /// would count as master too.
  [[nodiscard]] std::vector<std::size_t> reach_avoiding(
      const std::vector<std::size_t>& roots,
      const std::set<std::size_t>& blocked) const;
};

/// Thread role of a function under the parallel batch driver (rule family
/// C): worker = reachable from a per-shard dispatch root, master = reachable
/// from the clone/replay/merge roots without passing through a worker root,
/// both = hazardous overlap.
enum class ThreadRole : unsigned char { kNone, kWorker, kMaster, kBoth };

[[nodiscard]] std::string_view thread_role_name(ThreadRole role);

/// Combine the two reachability passes into per-function roles.
[[nodiscard]] std::vector<ThreadRole> thread_roles(
    const std::vector<std::size_t>& worker_parent,
    const std::vector<std::size_t>& master_parent);

/// Walk a member-access chain backwards from token `i` (inclusive) and
/// collect its identifiers, e.g. `overlay_->network().stats` at the final
/// token yields {stats, network, overlay_}. Returns the chain's first index.
[[nodiscard]] std::size_t receiver_chain(const std::vector<Token>& toks,
                                         std::size_t i,
                                         std::vector<std::string>* idents);

/// Transitive include closure of `module` under the layer spec (includes
/// `module` itself; `*` yields an empty set meaning "everything").
[[nodiscard]] std::set<std::string> layer_closure(const LayerSpec& layers,
                                                  const std::string& module);

}  // namespace ahsw::lint
