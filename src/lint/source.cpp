#include "lint/source.hpp"

#include <algorithm>
#include <cctype>

namespace ahsw::lint {

namespace {

[[nodiscard]] bool ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool digit(char c) noexcept {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/// Multi-character operators, longest first so greedy matching works.
constexpr std::string_view kOperators[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "+=", "-=",
    "*=",  "/=",  "%=",  "&=",  "|=", "^=", "==", "!=", "<=", ">=",
    "&&",  "||",  "<<",  ">>",  "##",
};

class Scanner {
 public:
  Scanner(std::string path, std::string_view src)
      : src_(src) {
    out_.path = std::move(path);
  }

  SourceFile run() {
    while (pos_ < src_.size()) {
      step();
    }
    out_.last_line = line_;
    std::sort(code_lines_.begin(), code_lines_.end());
    code_lines_.erase(std::unique(code_lines_.begin(), code_lines_.end()),
                      code_lines_.end());
    out_.code_lines = std::move(code_lines_);
    return std::move(out_);
  }

 private:
  void step() {
    char c = src_[pos_];
    if (c == '\n') {
      ++line_;
      ++pos_;
      in_pp_ = in_pp_ && continued_;
      continued_ = false;
      return;
    }
    if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
      continued_ = true;  // line continuation (preprocessor)
      ++pos_;
      return;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++pos_;
      return;
    }
    if (c == '/' && peek(1) == '/') {
      line_comment();
      return;
    }
    if (c == '/' && peek(1) == '*') {
      block_comment();
      return;
    }
    if (c == '#' && line_start()) {
      preprocessor();
      return;
    }
    if (c == '"') {
      string_literal();
      return;
    }
    if (c == '\'') {
      char_literal();
      return;
    }
    if (ident_start(c)) {
      identifier();
      return;
    }
    if (digit(c) || (c == '.' && digit(peek(1)))) {
      number();
      return;
    }
    punct();
  }

  [[nodiscard]] char peek(std::size_t ahead) const noexcept {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  /// Only horizontal whitespace between the last newline and pos_?
  [[nodiscard]] bool line_start() const noexcept {
    std::size_t i = pos_;
    while (i > 0) {
      char c = src_[i - 1];
      if (c == '\n') return true;
      if (c != ' ' && c != '\t') return false;
      --i;
    }
    return true;
  }

  void emit(Token::Kind kind, std::string text) {
    if (in_pp_) return;  // directive bodies are not rule input
    code_lines_.push_back(line_);
    out_.tokens.push_back(Token{kind, std::move(text), line_});
  }

  /// A `//` comment. A backslash immediately before the newline splices the
  /// next physical line into the comment ([lex.phases] p2 runs before
  /// comment removal), so `// ... \` swallows the following line too — rule
  /// input must never see code that the compiler would not.
  void line_comment() {
    int begin = line_;
    std::size_t start = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size() &&
          (src_[pos_ + 1] == '\n' ||
           (src_[pos_ + 1] == '\r' && pos_ + 2 < src_.size() &&
            src_[pos_ + 2] == '\n'))) {
        pos_ += src_[pos_ + 1] == '\r' ? 3u : 2u;
        ++line_;
        continue;
      }
      ++pos_;
    }
    out_.comments.push_back(
        Comment{begin, line_, std::string(src_.substr(start, pos_ - start))});
  }

  void block_comment() {
    int begin = line_;
    std::size_t start = pos_;
    pos_ += 2;
    while (pos_ < src_.size() &&
           !(src_[pos_] == '*' && peek(1) == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    pos_ = std::min(pos_ + 2, src_.size());
    out_.comments.push_back(
        Comment{begin, line_, std::string(src_.substr(start, pos_ - start))});
  }

  /// Parse a preprocessor directive. `#include` targets are recorded; the
  /// rest of the directive is consumed without emitting tokens, but
  /// comments and literals inside it are still handled (a suppression may
  /// sit after an include).
  void preprocessor() {
    ++pos_;  // '#'
    while (pos_ < src_.size() && (src_[pos_] == ' ' || src_[pos_] == '\t')) {
      ++pos_;
    }
    std::size_t start = pos_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
    std::string_view directive = src_.substr(start, pos_ - start);
    if (directive == "include") {
      while (pos_ < src_.size() && (src_[pos_] == ' ' || src_[pos_] == '\t')) {
        ++pos_;
      }
      char open = pos_ < src_.size() ? src_[pos_] : '\0';
      char close = open == '<' ? '>' : '"';
      if (open == '<' || open == '"') {
        std::size_t tstart = ++pos_;
        while (pos_ < src_.size() && src_[pos_] != close &&
               src_[pos_] != '\n') {
          ++pos_;
        }
        out_.includes.push_back(
            IncludeDirective{line_,
                             std::string(src_.substr(tstart, pos_ - tstart)),
                             open == '<'});
        code_lines_.push_back(line_);
        if (pos_ < src_.size() && src_[pos_] == close) ++pos_;
      }
    }
    in_pp_ = true;  // swallow the remainder of the logical line
  }

  void string_literal() {
    // pos_ is at the opening quote; raw strings are entered from
    // identifier() which re-dispatches here with raw_ set.
    if (raw_) {
      raw_string();
      return;
    }
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;
    emit(Token::Kind::kString, "");
  }

  void raw_string() {
    raw_ = false;
    ++pos_;  // '"'
    std::size_t dstart = pos_;
    while (pos_ < src_.size() && src_[pos_] != '(') ++pos_;
    std::string close = ")";
    close.append(src_.substr(dstart, pos_ - dstart));
    close.push_back('"');
    std::size_t end = src_.find(close, pos_);
    for (std::size_t i = pos_;
         i < std::min(end == std::string_view::npos ? src_.size()
                                                    : end + close.size(),
                      src_.size());
         ++i) {
      if (src_[i] == '\n') ++line_;
    }
    pos_ = end == std::string_view::npos ? src_.size() : end + close.size();
    emit(Token::Kind::kString, "");
  }

  void char_literal() {
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;
    emit(Token::Kind::kChar, "");
  }

  void identifier() {
    std::size_t start = pos_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
    std::string text(src_.substr(start, pos_ - start));
    // Raw-string prefix? (R"...", u8R"...", LR"...", ...)
    if (pos_ < src_.size() && src_[pos_] == '"' && !text.empty() &&
        text.back() == 'R' &&
        (text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
         text == "LR")) {
      raw_ = true;
      string_literal();
      return;
    }
    // Encoded-string prefix (u8"...", L"...", ...): drop the prefix token.
    if (pos_ < src_.size() && (src_[pos_] == '"' || src_[pos_] == '\'') &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      if (src_[pos_] == '"') {
        string_literal();
      } else {
        char_literal();
      }
      return;
    }
    emit(Token::Kind::kIdentifier, std::move(text));
  }

  void number() {
    std::size_t start = pos_;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (ident_char(c) || c == '.') {
        ++pos_;
      } else if (c == '\'' && ident_char(peek(1))) {
        pos_ += 2;  // digit separator
      } else if ((c == '+' || c == '-') && pos_ > start &&
                 (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E' ||
                  src_[pos_ - 1] == 'p' || src_[pos_ - 1] == 'P')) {
        ++pos_;  // exponent sign
      } else {
        break;
      }
    }
    emit(Token::Kind::kNumber, std::string(src_.substr(start, pos_ - start)));
  }

  void punct() {
    for (std::string_view op : kOperators) {
      if (src_.compare(pos_, op.size(), op) == 0) {
        emit(Token::Kind::kPunct, std::string(op));
        pos_ += op.size();
        return;
      }
    }
    emit(Token::Kind::kPunct, std::string(1, src_[pos_]));
    ++pos_;
  }

  std::string_view src_;
  SourceFile out_;
  std::vector<int> code_lines_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool in_pp_ = false;
  bool continued_ = false;
  bool raw_ = false;
};

}  // namespace

bool SourceFile::line_has_code(int line) const {
  return std::binary_search(code_lines.begin(), code_lines.end(), line);
}

SourceFile tokenize(std::string path, std::string_view content) {
  return Scanner(std::move(path), content).run();
}

}  // namespace ahsw::lint
