// The ahsw-lint engine: run the rule catalogue (rules.hpp) over files or a
// whole source tree and aggregate the result into a report with
// human-readable and JSON renderings.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/effects.hpp"
#include "lint/races.hpp"
#include "lint/rules.hpp"

namespace ahsw::lint {

/// Version stamp of the `ahsw_lint.json` diagnostic rendering. The ledgers
/// carry their own stamps (kEffectsSchemaVersion, kRacesSchemaVersion) so
/// each format can evolve without forcing the others. Bump when a field
/// changes meaning or shape, so diff tooling never has to guess.
inline constexpr int kJsonSchemaVersion = 1;

struct LintReport {
  std::vector<Diagnostic> diagnostics;  // post-suppression, sorted per file
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;
  std::map<std::string, std::size_t> by_rule;  // kept diagnostics per rule

  [[nodiscard]] bool clean() const { return diagnostics.empty(); }

  /// One diagnostic per line, then a summary line. Stable: golden tests and
  /// the CI log both pin this format.
  [[nodiscard]] std::string to_string() const;

  /// Machine-readable rendering for the CI artifact.
  [[nodiscard]] std::string to_json() const;
};

/// Lint a single in-memory source. `path` is the repo-relative label used
/// for whitelists, layering, and diagnostics.
[[nodiscard]] LintReport lint_source(std::string path, std::string_view text,
                                     const LintConfig& cfg);

/// Lint files on disk. Paths are repo-relative; `root` locates them.
/// Throws std::runtime_error when a file cannot be read.
[[nodiscard]] LintReport lint_files(const std::string& root,
                                    const std::vector<std::string>& rel_paths,
                                    const LintConfig& cfg);

/// Lint every .cpp/.hpp under the given top-level directories of `root`
/// (default: the directories the gate covers), in sorted path order.
[[nodiscard]] LintReport lint_tree(
    const std::string& root, const LintConfig& cfg,
    const std::vector<std::string>& dirs = {"src", "tools", "bench"});

/// Tokenize every lintable file under the given top-level directories, in
/// sorted path order — the input of the whole-program effect analysis.
[[nodiscard]] std::vector<SourceFile> tokenize_tree(
    const std::string& root,
    const std::vector<std::string>& dirs = {"src", "tools", "bench"});

/// Run the effect analysis (rule family P) over the tree and merge its
/// post-suppression diagnostics into `report`. When `ledger_json` is
/// non-null it receives the stable parallel-safety ledger (P4).
void lint_tree_effects(const std::string& root, const LintConfig& cfg,
                       const SharedStateSpec& spec, LintReport* report,
                       std::string* ledger_json,
                       const std::vector<std::string>& dirs = {"src", "tools",
                                                               "bench"});

/// Run the race analysis (rule family C) over the tree and merge its
/// post-suppression diagnostics into `report`. When `ledger_json` is
/// non-null it receives the stable race ledger (C5).
void lint_tree_races(const std::string& root, const LintConfig& cfg,
                     const SharedStateSpec& spec, LintReport* report,
                     std::string* ledger_json,
                     const std::vector<std::string>& dirs = {"src", "tools",
                                                             "bench"});

/// Build the default config: parse the layer spec at `layers_path`
/// (default `<root>/tools/ahsw_layers.spec`). Throws std::runtime_error on
/// a missing or malformed spec — the gate must not silently run without
/// layering.
[[nodiscard]] LintConfig load_config(const std::string& root,
                                     const std::string& layers_path = "");

/// Parse the shared-state spec at `spec_path` (default
/// `<root>/tools/ahsw_shared_state.spec`). Throws std::runtime_error on a
/// missing or malformed spec — the effects gate must not run against an
/// empty contract.
[[nodiscard]] SharedStateSpec load_shared_state_spec(
    const std::string& root, const std::string& spec_path = "");

}  // namespace ahsw::lint
