#include "lint/effects.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "common/strings.hpp"

namespace ahsw::lint {

namespace {

[[nodiscard]] std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  });
  return out;
}

[[nodiscard]] bool contains_ci(std::string_view hay, std::string_view needle) {
  return lower(hay).find(lower(needle)) != std::string::npos;
}

[[nodiscard]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// `key=value` attribute inside a spec declaration head, "" when absent.
[[nodiscard]] std::string attr_of(const std::vector<std::string_view>& words,
                                  std::string_view key) {
  std::string prefix = std::string(key) + "=";
  for (std::string_view w : words) {
    if (common::starts_with(w, prefix)) {
      return std::string(w.substr(prefix.size()));
    }
  }
  return "";
}

[[nodiscard]] bool has_word(const std::vector<std::string_view>& words,
                            std::string_view word) {
  return std::find(words.begin(), words.end(), word) != words.end();
}

[[nodiscard]] std::string path_arrows(const std::vector<std::string>& path) {
  std::string out;
  for (const std::string& p : path) {
    if (!out.empty()) out += " -> ";
    out += p;
  }
  return out;
}

}  // namespace

SharedStateSpec SharedStateSpec::parse(std::string_view text,
                                       std::vector<std::string>* errors) {
  SharedStateSpec spec;
  int lineno = 0;
  auto fail = [errors, &lineno](const std::string& what) {
    if (errors != nullptr) {
      errors->push_back("shared-state spec line " + std::to_string(lineno) +
                        ": " + what);
    }
  };
  for (std::string_view raw : common::split(text, '\n')) {
    ++lineno;
    std::size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    std::string_view line = common::trim(raw);
    if (line.empty()) continue;

    // Split `head[: tail]`.
    std::size_t colon = line.find(':');
    // A qualified function name contains `::`; find a colon that is not
    // part of one.
    while (colon != std::string_view::npos && colon + 1 < line.size() &&
           line[colon + 1] == ':') {
      colon = line.find(':', colon + 2);
    }
    std::string_view head = colon == std::string_view::npos
                                ? line
                                : common::trim(line.substr(0, colon));
    std::string_view tail = colon == std::string_view::npos
                                ? std::string_view{}
                                : common::trim(line.substr(colon + 1));
    std::vector<std::string_view> words;
    for (std::string_view w : common::split(head, ' ')) {
      w = common::trim(w);
      if (!w.empty()) words.push_back(w);
    }
    if (words.empty()) continue;
    std::string_view kind = words[0];

    if (kind == "root") {
      if (words.size() != 2) {
        fail("expected `root <Function>`");
        continue;
      }
      spec.roots.emplace_back(words[1]);
    } else if (kind == "master_root") {
      if (words.size() != 2) {
        fail("expected `master_root <Function>`");
        continue;
      }
      spec.master_roots.emplace_back(words[1]);
    } else if (kind == "record") {
      if (words.size() != 2) {
        fail("expected `record <Function>`");
        continue;
      }
      spec.records.emplace_back(words[1]);
    } else if (kind == "state") {
      if (words.size() < 2 || colon == std::string_view::npos) {
        fail("expected `state <Name> home=... hints=...: <mutators>`");
        continue;
      }
      SharedStateDecl st;
      st.name = std::string(words[1]);
      st.home = attr_of(words, "home");
      for (std::string_view h : common::split(attr_of(words, "hints"), ',')) {
        h = common::trim(h);
        if (!h.empty()) st.hints.emplace_back(h);
      }
      st.global = attr_of(words, "scope") != "dispatch";
      for (std::string_view m : common::split(tail, ' ')) {
        m = common::trim(m);
        if (!m.empty()) st.mutators.insert(std::string(m));
      }
      if (st.home.empty() || st.mutators.empty()) {
        fail("state '" + st.name + "' needs home= and at least one mutator");
        continue;
      }
      spec.states.push_back(std::move(st));
    } else if (kind == "surface") {
      if (words.size() < 3 || colon == std::string_view::npos) {
        fail("expected `surface <Function> state=<Name> [dispatch]: <why>`");
        continue;
      }
      SurfaceDecl sf;
      sf.function = std::string(words[1]);
      sf.state = attr_of(words, "state");
      sf.dispatch = has_word(words, "dispatch");
      sf.shard = attr_of(words, "shard");
      sf.merge = attr_of(words, "merge");
      sf.master_only = attr_of(words, "role") == "master";
      sf.why = std::string(tail);
      if (sf.state.empty() || sf.why.empty()) {
        fail("surface '" + sf.function +
             "' needs state= and a justification after ':'");
        continue;
      }
      if (!sf.shard.empty() && !sf.merge.empty()) {
        fail("surface '" + sf.function +
             "' declares both shard= and merge=; pick one discipline");
        continue;
      }
      spec.surfaces.push_back(std::move(sf));
    } else if (kind == "singleton") {
      if (words.size() != 2 || colon == std::string_view::npos ||
          tail.empty()) {
        fail("expected `singleton <name>: <why>`");
        continue;
      }
      spec.singletons.insert(std::string(words[1]));
    } else {
      fail("unknown declaration '" + std::string(kind) + "'");
    }
  }
  return spec;
}

const SurfaceDecl* SharedStateSpec::surface_for(std::string_view function,
                                                std::string_view state) const {
  for (const SurfaceDecl& s : surfaces) {
    if (s.function == function && s.state == state) return &s;
  }
  return nullptr;
}

std::vector<std::string> EffectsContext::path_to(
    const std::vector<std::size_t>& parent, std::size_t fn) const {
  std::vector<std::string> path;
  if (fn >= parent.size() || parent[fn] == kNoFunction) return path;
  std::size_t u = fn;
  while (true) {
    path.push_back(table.functions[u].qualified());
    if (parent[u] == u) break;
    u = parent[u];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

EffectsReport analyze_effects(const std::vector<SourceFile>& files,
                              const SharedStateSpec& spec,
                              const LayerSpec& layers, EffectsContext* ctx) {
  EffectsReport report;
  EffectsContext local;
  EffectsContext& c = ctx != nullptr ? *ctx : local;
  c.table = SymbolTable::build(files);
  c.graph = CallGraph::resolve(c.table, layers);

  for (const std::string& r : spec.roots) {
    for (std::size_t idx : c.table.find(r)) c.worker_roots.push_back(idx);
    report.roots.push_back(r);
  }
  for (const std::string& r : spec.master_roots) {
    for (std::size_t idx : c.table.find(r)) c.master_roots.push_back(idx);
  }
  c.worker_parent = c.graph.reach(c.worker_roots);
  // The master context spawns the workers, so a plain BFS from the master
  // roots would swallow the whole dispatch tree; cut it at the worker roots.
  c.master_parent = c.graph.reach_avoiding(
      c.master_roots,
      std::set<std::size_t>(c.worker_roots.begin(), c.worker_roots.end()));
  c.roles = thread_roles(c.worker_parent, c.master_parent);

  auto path_to = [&](std::size_t fn) { return c.path_to(c.worker_parent, fn); };
  const SymbolTable& table = c.table;
  const std::vector<std::size_t>& parent = c.worker_parent;

  for (std::size_t fi = 0; fi < table.functions.size(); ++fi) {
    const FunctionDef& fn = table.functions[fi];
    if (!common::starts_with(fn.file, "src/")) continue;
    const bool reachable = parent[fi] != kNoFunction;
    for (const CallSite& call : fn.calls) {
      for (const SharedStateDecl& st : spec.states) {
        if (st.mutators.count(call.name) == 0) continue;
        bool matched = false;
        if (call.member) {
          for (const std::string& ident : call.receiver) {
            for (const std::string& hint : st.hints) {
              if (contains_ci(ident, hint)) matched = true;
            }
          }
        } else if (!call.qualifier.empty() && call.qualifier == st.name) {
          matched = true;
        }
        if (!matched) continue;
        if (common::starts_with(fn.file, st.home)) continue;  // self-mutation

        TouchPoint tp;
        tp.state = st.name;
        tp.mutator = call.name;
        tp.function = fn.qualified();
        tp.file = fn.file;
        tp.line = call.line;
        // A surface declaration covers the touch either way round: the
        // enclosing function is sanctioned to mutate, or the mutator method
        // itself is the declared sync surface (e.g. Network::send — the
        // accounting layer is the synchronization point, wherever called).
        const SurfaceDecl* surface = spec.surface_for(tp.function, st.name);
        if (surface == nullptr) {
          surface = spec.surface_for(st.name + "::" + call.name, st.name);
        }
        tp.declared = surface != nullptr;
        tp.dispatch = surface != nullptr && surface->dispatch;
        tp.reachable = reachable;
        tp.role = c.roles[fi];
        tp.function_index = fi;
        if (reachable) tp.path = path_to(fi);

        if (!tp.declared && st.global) {
          report.diagnostics.push_back(Diagnostic{
              "P1", fn.file, call.line,
              "shared state '" + st.name + "' mutated via '" + call.name +
                  "' in " + tp.function +
                  ", which is not a declared sync surface; declare "
                  "`surface " + tp.function + " state=" + st.name +
                  "` with a justification in tools/ahsw_shared_state.spec"});
        }
        if (reachable && !tp.dispatch) {
          report.diagnostics.push_back(Diagnostic{
              "P2", fn.file, call.line,
              "shared state '" + st.name + "' mutated via '" + call.name +
                  "' on a dispatch path (" + path_arrows(tp.path) +
                  "); the parallel driver cannot partition this unless the "
                  "surface is declared dispatch-safe in "
                  "tools/ahsw_shared_state.spec"});
        }
        report.touches.push_back(std::move(tp));
      }
    }
  }

  for (const auto& [file, decls] : table.statics) {
    if (!common::starts_with(file, "src/")) continue;
    for (const StaticDecl& d : decls) {
      if (spec.singletons.count(d.name) > 0) continue;
      report.diagnostics.push_back(Diagnostic{
          "P3", file, d.line,
          std::string(d.local ? "function-local static '"
                              : "non-const static/global '") +
              d.name +
              "' is undeclared shared mutable state; make it const, thread "
              "it explicitly, or declare `singleton " + d.name +
              "` with a justification in tools/ahsw_shared_state.spec"});
    }
  }

  std::sort(report.touches.begin(), report.touches.end(),
            [](const TouchPoint& a, const TouchPoint& b) {
              auto key = [](const TouchPoint& t) {
                return std::tie(t.state, t.file, t.function, t.mutator,
                                t.line);
              };
              return key(a) < key(b);
            });
  return report;
}

std::string EffectsReport::ledger_json(const SharedStateSpec& spec) const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"tool\": \"ahsw-effects\",\n";
  out << "  \"schema_version\": " << kEffectsSchemaVersion << ",\n";
  out << "  \"roots\": [";
  for (std::size_t i = 0; i < roots.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << json_escape(roots[i]) << "\"";
  }
  out << "],\n";
  out << "  \"master_roots\": [";
  for (std::size_t i = 0; i < spec.master_roots.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\""
        << json_escape(spec.master_roots[i]) << "\"";
  }
  out << "],\n";
  out << "  \"states\": [";
  for (std::size_t i = 0; i < spec.states.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << json_escape(spec.states[i].name)
        << "\"";
  }
  out << "],\n";
  out << "  \"touch_points\": [";
  // Line-less and deduplicated: the committed baseline must only change
  // when the shared surface itself changes, not when a file shifts lines.
  std::string prev_key;
  bool first = true;
  for (const TouchPoint& t : touches) {
    std::string key = t.state + "\x1f" + t.file + "\x1f" + t.function +
                      "\x1f" + t.mutator;
    if (key == prev_key) continue;
    prev_key = key;
    out << (first ? "\n" : ",\n");
    out << "    {\"state\": \"" << json_escape(t.state) << "\", \"mutator\": \""
        << json_escape(t.mutator) << "\", \"function\": \""
        << json_escape(t.function) << "\", \"file\": \""
        << json_escape(t.file) << "\", \"declared\": "
        << (t.declared ? "true" : "false")
        << ", \"dispatch\": " << (t.dispatch ? "true" : "false")
        << ", \"reachable\": " << (t.reachable ? "true" : "false")
        << ", \"role\": \"" << thread_role_name(t.role) << "\""
        << ", \"path\": [";
    for (std::size_t i = 0; i < t.path.size(); ++i) {
      out << (i == 0 ? "" : ", ") << "\"" << json_escape(t.path[i]) << "\"";
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n";
  out << "}\n";
  return out.str();
}

}  // namespace ahsw::lint
