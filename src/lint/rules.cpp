#include "lint/rules.hpp"

#include <algorithm>
#include <cctype>

#include "common/strings.hpp"

namespace ahsw::lint {

namespace {

using Tokens = std::vector<Token>;

[[nodiscard]] std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

[[nodiscard]] bool contains_ci(std::string_view hay, std::string_view needle) {
  return lower(hay).find(lower(needle)) != std::string::npos;
}

[[nodiscard]] bool is_header(std::string_view path) {
  return path.size() >= 4 && path.substr(path.size() - 4) == ".hpp";
}

/// True when `path` starts with any of the given prefixes — the rule
/// whitelists (the accounting layer may mutate its own counters, the span
/// ledger may drive itself, the Rng wrapper may touch entropy).
[[nodiscard]] bool whitelisted(std::string_view path,
                               std::initializer_list<std::string_view> list) {
  for (std::string_view p : list) {
    if (common::starts_with(path, p)) return true;
  }
  return false;
}

/// Forward scan from the token at `open` (which must be the opening
/// bracket) to its matching closer; returns the index of the closer, or
/// tokens.size() when unbalanced.
[[nodiscard]] std::size_t match_forward(const Tokens& toks, std::size_t open,
                                        std::string_view o,
                                        std::string_view c) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].is(o)) ++depth;
    if (toks[i].is(c) && --depth == 0) return i;
  }
  return toks.size();
}

/// Walk backwards from `i` (inclusive) over a member-access chain
/// (identifiers, `.`, `->`, `::`, and balanced `()` / `[]` groups) and
/// collect the identifiers, e.g. `overlay_->network().stats` yields
/// {stats, network, overlay_}. Returns the index of the first token of the
/// chain.
[[nodiscard]] std::size_t chain_back(const Tokens& toks, std::size_t i,
                                     std::vector<std::string>* idents) {
  std::size_t first = i + 1;
  while (true) {
    if (first == 0) break;
    const Token& t = toks[first - 1];
    if (t.kind == Token::Kind::kIdentifier) {
      if (idents != nullptr) idents->push_back(t.text);
      --first;
    } else if (t.is(".") || t.is("->") || t.is("::")) {
      --first;
    } else if (t.is(")") || t.is("]")) {
      std::string_view open = t.is(")") ? "(" : "[";
      std::string_view close = t.is(")") ? ")" : "]";
      int depth = 0;
      std::size_t j = first - 1;
      while (true) {
        if (toks[j].is(close)) ++depth;
        if (toks[j].is(open) && --depth == 0) break;
        if (j == 0) break;
        --j;
      }
      if (depth != 0) break;
      first = j;
    } else {
      break;
    }
  }
  return first;
}

// -- comment attachment -----------------------------------------------------

/// The code line a comment is attached to: its own last line when that line
/// also carries code (trailing comment), else the first code line below it
/// with only comment lines in between (a blank line breaks the attachment).
[[nodiscard]] int attach_line(const SourceFile& file, const Comment& c) {
  if (file.line_has_code(c.end)) return c.end;
  std::vector<char> commented(static_cast<std::size_t>(file.last_line) + 2, 0);
  for (const Comment& other : file.comments) {
    for (int l = other.begin; l <= other.end && l <= file.last_line; ++l) {
      commented[static_cast<std::size_t>(l)] = 1;
    }
  }
  for (int l = c.end + 1; l <= file.last_line; ++l) {
    if (file.line_has_code(l)) return l;
    if (commented[static_cast<std::size_t>(l)] == 0) break;  // blank line
  }
  return -1;
}

/// True when `line` carries, or is directly preceded by, a comment whose
/// text contains `marker` (used by D3's iteration-order contracts).
[[nodiscard]] bool has_marker(const SourceFile& file, int line,
                              std::string_view marker) {
  for (const Comment& c : file.comments) {
    if (c.text.find(marker) == std::string::npos) continue;
    if (c.begin <= line && line <= c.end) return true;
    if (attach_line(file, c) == line) return true;
  }
  return false;
}

// -- D rules: determinism ---------------------------------------------------

struct BannedIdent {
  std::string_view ident;
  std::string_view why;
};

// Identifiers that may never appear in sim code, wherever they come from.
constexpr BannedIdent kBannedAlways[] = {
    {"system_clock", "wall-clock read; thread net::SimTime instead"},
    {"steady_clock", "wall-clock read; thread net::SimTime instead"},
    {"high_resolution_clock", "wall-clock read; thread net::SimTime instead"},
    {"random_device", "nondeterministic entropy; seed a common::Rng"},
    {"mt19937", "unsanctioned RNG; use common::Rng"},
    {"mt19937_64", "unsanctioned RNG; use common::Rng"},
    {"default_random_engine", "unsanctioned RNG; use common::Rng"},
    {"rand", "global unseeded RNG; use common::Rng"},
    {"srand", "global unseeded RNG; use common::Rng"},
    {"this_thread", "real-time waiting has no place in simulated time"},
};

// Identifiers banned only as direct calls (`time(...)`), since the bare
// names are too common as members and locals.
constexpr BannedIdent kBannedCalls[] = {
    {"time", "wall-clock read; thread net::SimTime instead"},
    {"clock", "wall-clock read; thread net::SimTime instead"},
    {"gettimeofday", "wall-clock read; thread net::SimTime instead"},
    {"localtime", "wall-clock read; thread net::SimTime instead"},
    {"gmtime", "wall-clock read; thread net::SimTime instead"},
    {"strftime", "wall-clock formatting; sim code reports SimTime"},
};

// Headers whose inclusion is itself the violation.
constexpr std::string_view kBannedIncludes[] = {
    "chrono", "ctime", "time.h", "random", "thread", "sys/time.h",
    "pthread.h",
};

void check_d1(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (whitelisted(f.path, {"src/common/rng"})) return;
  for (const IncludeDirective& inc : f.includes) {
    for (std::string_view banned : kBannedIncludes) {
      if (inc.angled && inc.path == banned) {
        out->push_back(Diagnostic{
            "D1", f.path, inc.line,
            "#include <" + inc.path +
                "> pulls wall-clock/OS-randomness/threading into sim code; "
                "determinism requires common::Rng and net::SimTime"});
      }
    }
  }
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdentifier) continue;
    const bool member = i > 0 && (t[i - 1].is(".") || t[i - 1].is("->"));
    if (member) continue;  // .rand / ->time are someone else's members
    const bool qualified = i > 0 && t[i - 1].is("::");
    const bool std_qualified =
        qualified && i > 1 && t[i - 2].ident("std");
    const bool chrono_qualified =
        qualified && i > 1 && t[i - 2].ident("chrono");
    for (const BannedIdent& b : kBannedAlways) {
      if (t[i].text == b.ident &&
          (!qualified || std_qualified || chrono_qualified)) {
        out->push_back(Diagnostic{"D1", f.path, t[i].line,
                                  "'" + t[i].text + "': " +
                                      std::string(b.why)});
      }
    }
    const bool call = i + 1 < t.size() && t[i + 1].is("(");
    if (call && (!qualified || std_qualified)) {
      for (const BannedIdent& b : kBannedCalls) {
        if (t[i].text == b.ident) {
          out->push_back(Diagnostic{"D1", f.path, t[i].line,
                                    "'" + t[i].text + "()': " +
                                        std::string(b.why)});
        }
      }
    }
    if ((t[i].text == "thread" || t[i].text == "jthread") && std_qualified) {
      out->push_back(Diagnostic{
          "D1", f.path, t[i].line,
          "'std::" + t[i].text +
              "': real concurrency breaks deterministic replay; model "
              "parallelism through the event scheduler"});
    }
  }
}

struct UnorderedDecl {
  std::string name;
  int line = 0;
};

/// Variable / member names declared with an unordered container type in
/// this file. Function declarations returning one are skipped.
[[nodiscard]] std::vector<UnorderedDecl> unordered_decls(const SourceFile& f) {
  static constexpr std::string_view kTypes[] = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  std::vector<UnorderedDecl> decls;
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    bool is_type = false;
    for (std::string_view ty : kTypes) {
      if (t[i].ident(ty)) is_type = true;
    }
    if (!is_type) continue;
    std::size_t j = i + 1;
    if (j < t.size() && t[j].is("<")) {
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (t[j].is("<")) ++depth;
        if (t[j].is(">")) --depth;
        if (t[j].is(">>")) depth -= 2;
        if (depth <= 0) {
          ++j;
          break;
        }
      }
    }
    while (j < t.size() &&
           (t[j].is("&") || t[j].is("*") || t[j].ident("const"))) {
      ++j;
    }
    if (j + 1 < t.size() && t[j].kind == Token::Kind::kIdentifier) {
      const Token& after = t[j + 1];
      if (after.is(";") || after.is("=") || after.is("{") || after.is(",") ||
          after.is(")")) {
        decls.push_back(UnorderedDecl{t[j].text, t[j].line});
      }
    }
  }
  return decls;
}

void check_d2_d3(const SourceFile& f, std::vector<Diagnostic>* out) {
  std::vector<UnorderedDecl> decls = unordered_decls(f);
  if (decls.empty()) return;
  std::set<std::string> names;
  for (const UnorderedDecl& d : decls) names.insert(d.name);

  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for whose range expression mentions an unordered container.
    if (t[i].ident("for") && i + 1 < t.size() && t[i + 1].is("(")) {
      std::size_t close = match_forward(t, i + 1, "(", ")");
      int depth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (t[j].is("(") || t[j].is("[") || t[j].is("{")) ++depth;
        if (t[j].is(")") || t[j].is("]") || t[j].is("}")) --depth;
        if (depth == 0 && t[j].is(":")) {
          colon = j;
          break;
        }
      }
      for (std::size_t j = colon + 1; colon != 0 && j < close; ++j) {
        if (t[j].kind == Token::Kind::kIdentifier &&
            names.count(t[j].text) > 0) {
          out->push_back(Diagnostic{
              "D2", f.path, t[j].line,
              "iterating unordered container '" + t[j].text +
                  "' leaks hash order into downstream output; iterate an "
                  "ordered projection instead"});
          break;
        }
      }
    }
    // Explicit iterator walks: name.begin(), name->cbegin(), ...
    if (t[i].kind == Token::Kind::kIdentifier && names.count(t[i].text) > 0 &&
        i + 2 < t.size() && (t[i + 1].is(".") || t[i + 1].is("->"))) {
      const std::string& m = t[i + 2].text;
      if (m == "begin" || m == "cbegin" || m == "rbegin" || m == "crbegin") {
        out->push_back(Diagnostic{
            "D2", f.path, t[i].line,
            "iterator walk over unordered container '" + t[i].text +
                "' leaks hash order; iterate an ordered projection instead"});
      }
    }
  }

  if (!is_header(f.path)) return;
  for (const UnorderedDecl& d : decls) {
    if (!has_marker(f, d.line, "iteration-order:")) {
      out->push_back(Diagnostic{
          "D3", f.path, d.line,
          "unordered container member '" + d.name +
              "' in a header needs an `// iteration-order: <contract>` "
              "comment stating why hash order cannot leak"});
    }
  }
}

// -- A rules: accounting ----------------------------------------------------

void check_a1(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (whitelisted(f.path, {"src/net/network"})) return;
  const Tokens& t = f.tokens;
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (!(t[i].ident("send") || t[i].ident("timeout"))) continue;
    if (!(t[i - 1].is(".") || t[i - 1].is("->"))) continue;
    if (!t[i + 1].is("(")) continue;
    std::size_t close = match_forward(t, i + 1, "(", ")");
    bool categorized = false;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (t[j].kind != Token::Kind::kIdentifier) continue;
      if (t[j].text == "Category" ||
          lower(t[j].text).find("category") != std::string::npos) {
        categorized = true;
        break;
      }
    }
    if (!categorized) {
      out->push_back(Diagnostic{
          "A1", f.path, t[i].line,
          "Network::" + t[i].text +
              " call site without an explicit net::Category; every charged "
              "interaction must name its traffic category"});
    }
    // The charged (3rd) argument of send() must not be a raw byte_size():
    // solution payloads are charged at their wire-encoded size
    // (net::wire::charged_bytes), with byte_size passed separately as the
    // trailing raw_bytes argument. The repository's fixed-format pattern
    // shipping predates the wire codec and stays raw by design.
    if (t[i].ident("send") &&
        !whitelisted(f.path, {"src/net/wire", "src/rdfpeers/repository"})) {
      int depth = 0;
      int arg = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (t[j].is("(") || t[j].is("[") || t[j].is("{")) {
          ++depth;
        } else if (t[j].is(")") || t[j].is("]") || t[j].is("}")) {
          --depth;
        } else if (depth == 1 && t[j].is(",")) {
          ++arg;
        } else if (arg == 2 && t[j].ident("byte_size")) {
          out->push_back(Diagnostic{
              "A1", f.path, t[j].line,
              "raw byte_size() charged as wire traffic; charge "
              "net::wire::charged_bytes and pass byte_size as the "
              "raw_bytes argument"});
          break;
        }
      }
    }
  }
}

constexpr std::string_view kCounterFields[] = {
    "messages", "bytes", "timeouts", "messages_by", "bytes_by", "timeouts_by"};

/// Location-row cache effectiveness counters (overlay::CacheStats). Their
/// names are generic, so a mutation only counts as an accounting violation
/// when the receiver chain names a cache or stats object.
constexpr std::string_view kCacheCounterFields[] = {
    "hits", "misses", "invalidations", "expirations", "insertions", "leases"};

/// Compression accounting pair (wire-charged vs uncompressed size). Unlike
/// the generic counters these names are unambiguous, so any mutation
/// outside the wire/accounting layer is a violation — no receiver-chain
/// heuristic needed.
constexpr std::string_view kWireCounterFields[] = {"raw_bytes", "wire_bytes"};

void check_a2(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (whitelisted(f.path, {"src/net/network", "src/net/wire",
                           "src/obs/trace.cpp",
                           "src/overlay/location_cache"})) {
    return;
  }
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(t[i].is(".") || t[i].is("->"))) continue;
    const Token& field = t[i + 1];
    bool is_counter = false;
    bool is_cache_counter = false;
    bool is_wire_counter = false;
    for (std::string_view c : kCounterFields) {
      if (field.ident(c)) is_counter = true;
    }
    for (std::string_view c : kCacheCounterFields) {
      if (field.ident(c)) is_cache_counter = true;
    }
    for (std::string_view c : kWireCounterFields) {
      if (field.ident(c)) is_wire_counter = true;
    }
    if (!is_counter && !is_cache_counter && !is_wire_counter) continue;
    std::size_t j = i + 2;
    if (j < t.size() && t[j].is("[")) {
      j = match_forward(t, j, "[", "]") + 1;
    }
    std::vector<std::string> chain;
    std::size_t first = chain_back(t, i - 1, &chain);
    bool mutating =
        j < t.size() && (t[j].is("=") || t[j].is("+=") || t[j].is("-=") ||
                         t[j].is("*=") || t[j].is("/=") || t[j].is("++") ||
                         t[j].is("--"));
    if (!mutating && first > 0 &&
        (t[first - 1].is("++") || t[first - 1].is("--"))) {
      mutating = true;
    }
    if (!mutating) continue;
    bool accounting_target =
        is_wire_counter || (is_counter && field.text.size() > 3 &&
                            field.text.substr(field.text.size() - 3) == "_by");
    for (const std::string& link : chain) {
      if (is_counter &&
          (contains_ci(link, "stats") || contains_ci(link, "traffic"))) {
        accounting_target = true;
      }
      if (is_cache_counter &&
          (contains_ci(link, "cache") || contains_ci(link, "stats"))) {
        accounting_target = true;
      }
    }
    if (accounting_target) {
      const char* what =
          is_wire_counter
              ? "' mutated outside the wire accounting layer; compressed/raw "
                "byte pairs change only inside src/net/wire, Network "
                "charging, or the span ledger"
              : is_counter
                    ? "' mutated outside the accounting layer; byte totals "
                      "change only through Network charging or "
                      "TrafficStats::accumulate"
                    : "' mutated outside the accounting layer; cache "
                      "counters change only inside LocationCache or through "
                      "CacheStats::accumulate";
      out->push_back(Diagnostic{"A2", f.path, field.line,
                                "traffic counter '" + field.text + what});
    }
  }
}

// -- O rules: observability -------------------------------------------------

void check_o1(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (whitelisted(f.path, {"src/obs/trace"})) return;
  const Tokens& t = f.tokens;
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (!(t[i].ident("open") || t[i].ident("close") || t[i].ident("reopen"))) {
      continue;
    }
    if (!(t[i - 1].is(".") || t[i - 1].is("->"))) continue;
    if (!t[i + 1].is("(")) continue;
    std::vector<std::string> chain;
    static_cast<void>(chain_back(t, i - 1, &chain));
    bool on_trace = false;
    for (const std::string& link : chain) {
      if (contains_ci(link, "trace")) on_trace = true;
    }
    if (on_trace) {
      out->push_back(Diagnostic{
          "O1", f.path, t[i].line,
          "manual QueryTrace::" + t[i].text +
              " outside SpanScope; RAII scopes keep span trees balanced "
              "(unbalanced spans corrupt I5 attribution)"});
    }
  }
}

/// Scan one switch statement (token `i` is the `switch` keyword). Nested
/// switches are handled recursively and excluded from the enclosing
/// switch's own case/default accounting. Returns the index just past the
/// switch body.
std::size_t scan_switch(const SourceFile& f, const LintConfig& cfg,
                        std::size_t i, std::vector<Diagnostic>* out) {
  const Tokens& t = f.tokens;
  if (i + 1 >= t.size() || !t[i + 1].is("(")) return i + 1;
  std::size_t cond_close = match_forward(t, i + 1, "(", ")");
  if (cond_close + 1 >= t.size() || !t[cond_close + 1].is("{")) {
    return cond_close + 1;
  }
  std::set<std::string> case_enums;
  int default_line = 0;
  int depth = 0;
  std::size_t j = cond_close + 1;
  while (j < t.size()) {
    if (t[j].is("{")) {
      ++depth;
      ++j;
      continue;
    }
    if (t[j].is("}")) {
      if (--depth == 0) {
        ++j;
        break;
      }
      ++j;
      continue;
    }
    if (t[j].ident("switch") && j + 1 < t.size() && t[j + 1].is("(")) {
      j = scan_switch(f, cfg, j, out);
      continue;
    }
    if (depth == 1 && t[j].ident("case")) {
      // Tokens of the label up to the ':'; the enum is the identifier
      // before the last '::'.
      std::size_t colon = j + 1;
      while (colon < t.size() && !t[colon].is(":")) ++colon;
      for (std::size_t k = j + 1; k + 1 < colon; ++k) {
        if (t[k].kind == Token::Kind::kIdentifier && t[k + 1].is("::")) {
          case_enums.insert(t[k].text);  // last one wins: Foo::Bar::kX -> Bar
        }
      }
      // Keep only the final qualifier as the enum name.
      j = colon + 1;
      continue;
    }
    if (depth == 1 && t[j].ident("default") && j + 1 < t.size() &&
        t[j + 1].is(":")) {
      default_line = t[j].line;
      j += 2;
      continue;
    }
    ++j;
  }
  if (default_line != 0) {
    for (const std::string& e : case_enums) {
      if (cfg.guarded_enums.count(e) > 0) {
        out->push_back(Diagnostic{
            "O2", f.path, default_line,
            "switch over guarded enum '" + e +
                "' has a default: label; enumerate every value so a new "
                "enumerator fails the -Wswitch build instead of silently "
                "falling through"});
        break;
      }
    }
  }
  return j;
}

void check_o2(const SourceFile& f, const LintConfig& cfg,
              std::vector<Diagnostic>* out) {
  const Tokens& t = f.tokens;
  std::size_t i = 0;
  while (i < t.size()) {
    if (t[i].ident("switch") && i + 1 < t.size() && t[i + 1].is("(")) {
      i = scan_switch(f, cfg, i, out);
    } else {
      ++i;
    }
  }
}

// -- L rules: layering ------------------------------------------------------

void check_layering(const SourceFile& f, const LintConfig& cfg,
                    std::vector<Diagnostic>* out) {
  std::string module = module_of(f.path);
  if (module.empty()) return;
  if (!cfg.layers.known(module)) {
    if (common::starts_with(f.path, "src/")) {
      out->push_back(Diagnostic{
          "L2", f.path, 1,
          "module '" + module +
              "' is not declared in the layer spec; add it (and its allowed "
              "dependencies) to tools/ahsw_layers.spec"});
    }
    return;
  }
  for (const IncludeDirective& inc : f.includes) {
    if (inc.angled) continue;
    std::size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    std::string dep = inc.path.substr(0, slash);
    if (dep == module) continue;
    if (!cfg.layers.allows(module, dep)) {
      out->push_back(Diagnostic{
          "L1", f.path, inc.line,
          "module '" + module + "' may not include '" + dep +
              "' (declared layer DAG: tools/ahsw_layers.spec)"});
    }
  }
}

// -- suppressions -----------------------------------------------------------

struct Suppression {
  std::set<std::string> rules;
  std::set<int> lines;  // lines this suppression covers
  int line = 0;         // where the marker sits (for S1)
  bool justified = false;
  bool malformed = false;
};

constexpr std::string_view kMarker = "ahsw-lint:";

[[nodiscard]] std::vector<Suppression> collect_suppressions(
    const SourceFile& f) {
  std::vector<Suppression> out;
  for (const Comment& c : f.comments) {
    std::size_t at = c.text.find(kMarker);
    if (at == std::string::npos) continue;
    Suppression s;
    s.line = c.begin;
    for (int l = c.begin; l <= c.end; ++l) s.lines.insert(l);
    int target = attach_line(f, c);
    if (target > 0) s.lines.insert(target);
    std::string_view rest =
        common::trim(std::string_view(c.text).substr(at + kMarker.size()));
    if (common::starts_with(rest, "guarded_by(")) {
      // The C4 annotation form of the marker (guarded_by with a mutex name)
      // — owned by the race analysis, not a suppression. Well-formed when
      // the argument is a plain identifier; anything else falls through to
      // S1.
      std::string_view arg = rest.substr(std::string_view("guarded_by(").size());
      std::size_t close = arg.find(')');
      bool ok = close != std::string_view::npos && close > 0;
      for (std::size_t k = 0; ok && k < close; ++k) {
        const char ch = arg[k];
        ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
             (ch >= '0' && ch <= '9') || ch == '_';
      }
      if (ok) continue;
      s.malformed = true;
      out.push_back(std::move(s));
      continue;
    }
    if (!common::starts_with(rest, "allow(")) {
      s.malformed = true;
      out.push_back(std::move(s));
      continue;
    }
    rest.remove_prefix(6);
    std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      s.malformed = true;
      out.push_back(std::move(s));
      continue;
    }
    std::string rules(rest.substr(0, close));
    std::replace(rules.begin(), rules.end(), ',', ' ');
    for (std::string_view r : common::split(rules, ' ')) {
      r = common::trim(r);
      if (!r.empty()) s.rules.insert(std::string(r));
    }
    if (s.rules.empty()) s.malformed = true;
    // Justification: anything after ')' beyond comment decoration.
    std::string_view why = rest.substr(close + 1);
    for (char ch : why) {
      if (std::isalnum(static_cast<unsigned char>(ch)) != 0) {
        s.justified = true;
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

std::string Diagnostic::to_string() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

bool LayerSpec::allows(const std::string& module,
                       const std::string& dep) const {
  auto it = allowed.find(module);
  if (it == allowed.end()) return false;
  return it->second.count("*") > 0 || it->second.count(dep) > 0;
}

LayerSpec LayerSpec::parse(std::string_view text,
                           std::vector<std::string>* errors) {
  LayerSpec spec;
  int lineno = 0;
  for (std::string_view raw : common::split(text, '\n')) {
    ++lineno;
    std::size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    std::string_view line = common::trim(raw);
    if (line.empty()) continue;
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      if (errors != nullptr) {
        errors->push_back("layer spec line " + std::to_string(lineno) +
                          ": expected `module: deps...`");
      }
      continue;
    }
    std::string module(common::trim(line.substr(0, colon)));
    std::set<std::string>& deps = spec.allowed[module];
    for (std::string_view d : common::split(line.substr(colon + 1), ' ')) {
      d = common::trim(d);
      if (!d.empty()) deps.insert(std::string(d));
    }
  }
  return spec;
}

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> kCatalogue = {
      {"D1", "determinism",
       "wall-clock, OS randomness and threading primitives are banned in "
       "sim code; use common::Rng and net::SimTime"},
      {"D2", "determinism",
       "iterating an unordered container leaks hash order into downstream "
       "output; iterate an ordered projection"},
      {"D3", "determinism",
       "unordered container members in headers document their "
       "iteration-order contract"},
      {"A1", "accounting",
       "every Network::send / Network::timeout call site names its traffic "
       "category explicitly, and send() charges wire-encoded sizes, never "
       "a raw byte_size()"},
      {"A2", "accounting",
       "traffic, cache, and compression (raw_bytes/wire_bytes) counters "
       "mutate only inside the accounting layer (Network / TrafficStats / "
       "LocationCache / net::wire)"},
      {"O1", "observability",
       "manual QueryTrace::open/close/reopen is forbidden outside "
       "SpanScope; RAII keeps span trees balanced"},
      {"O2", "observability",
       "switches over guarded enums (Category, SpanKind, PhysOpKind) stay "
       "exhaustive with no default: label"},
      {"L1", "layering",
       "#include edges follow the declared module DAG in "
       "tools/ahsw_layers.spec"},
      {"L2", "layering",
       "every module under src/ is declared in the layer spec"},
      {"S1", "suppressions",
       "ahsw-lint: allow(...) markers are well-formed and carry a "
       "justification"},
      {"P1", "effects",
       "declared shared mutable state is mutated outside its home "
       "implementation only through sync surfaces declared in "
       "tools/ahsw_shared_state.spec"},
      {"P2", "effects",
       "functions transitively reachable from the DagExecutor dispatch "
       "roots mutate shared state only through dispatch-safe surfaces"},
      {"P3", "effects",
       "no non-const globals or function-local statics outside the "
       "declared singletons"},
      {"P4", "effects",
       "the parallel-safety ledger (ahsw_effects.json) inventories every "
       "shared touch point with its dispatch call path; its diff is gated "
       "in CI"},
      {"C1", "races",
       "worker-reachable mutations of merge=state-log state are dominated "
       "by a StateLog record call on the same worker path"},
      {"C2", "races",
       "master-context functions (master_root / role=master surfaces) are "
       "unreachable from the worker dispatch roots"},
      {"C3", "races",
       "no mutable global/static or scope=dispatch state is referenced "
       "from both thread roles"},
      {"C4", "races",
       "members annotated // ahsw-lint: guarded_by(<mutex>) are accessed "
       "only after visibly acquiring the named mutex"},
      {"C5", "races",
       "the race ledger (ahsw_races.json) inventories every shared touch "
       "point with its thread role, discipline and call path; its diff is "
       "gated in CI"},
  };
  return kCatalogue;
}

std::string module_of(std::string_view path) {
  for (std::string_view root : {"tools", "bench", "tests", "examples"}) {
    if (common::starts_with(path, std::string(root) + "/")) {
      return std::string(root);
    }
  }
  if (common::starts_with(path, "src/")) {
    std::string_view rest = path.substr(4);
    std::size_t slash = rest.find('/');
    if (slash != std::string_view::npos) {
      return std::string(rest.substr(0, slash));
    }
  }
  return "";
}

std::vector<Diagnostic> run_rules(const SourceFile& file,
                                  const LintConfig& cfg) {
  std::vector<Diagnostic> out;
  check_d1(file, &out);
  check_d2_d3(file, &out);
  check_a1(file, &out);
  check_a2(file, &out);
  check_o1(file, &out);
  check_o2(file, cfg, &out);
  check_layering(file, cfg, &out);
  return out;
}

std::vector<Diagnostic> apply_suppressions(const SourceFile& file,
                                           std::vector<Diagnostic> raw,
                                           std::size_t* suppressed_count) {
  std::vector<Suppression> sups = collect_suppressions(file);
  std::vector<Diagnostic> kept;
  std::size_t suppressed = 0;
  std::set<int> flagged_sups;  // S1 once per bad suppression
  for (Diagnostic& d : raw) {
    bool drop = false;
    for (const Suppression& s : sups) {
      if (s.malformed || s.rules.count(d.rule) == 0 ||
          s.lines.count(d.line) == 0) {
        continue;
      }
      if (s.justified) {
        drop = true;
      } else {
        flagged_sups.insert(s.line);
      }
      break;
    }
    if (drop) {
      ++suppressed;
    } else {
      kept.push_back(std::move(d));
    }
  }
  for (const Suppression& s : sups) {
    if (s.malformed) {
      kept.push_back(Diagnostic{
          "S1", file.path, s.line,
          "malformed ahsw-lint marker; expected `ahsw-lint: "
          "allow(RULE[,RULE...]) <justification>`"});
    } else if (!s.justified && flagged_sups.count(s.line) > 0) {
      kept.push_back(Diagnostic{
          "S1", file.path, s.line,
          "suppression without a justification; say *why* the rule does "
          "not apply here"});
    }
  }
  std::sort(kept.begin(), kept.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  if (suppressed_count != nullptr) *suppressed_count = suppressed;
  return kept;
}

}  // namespace ahsw::lint
