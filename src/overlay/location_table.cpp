#include "overlay/location_table.hpp"

#include <algorithm>

namespace ahsw::overlay {

void LocationTable::sort_row(std::vector<Provider>& row) {
  std::sort(row.begin(), row.end(), [](const Provider& a, const Provider& b) {
    if (a.frequency != b.frequency) return a.frequency < b.frequency;
    return a.address < b.address;
  });
}

std::size_t LocationTable::row_index(chord::Key key) const noexcept {
  auto it = std::lower_bound(
      rows_.begin(), rows_.end(), key,
      [](const Row& r, chord::Key k) { return r.key < k; });
  if (it == rows_.end() || it->key != key) return kNpos;
  return static_cast<std::size_t>(it - rows_.begin());
}

std::size_t LocationTable::row_index_or_insert(chord::Key key) {
  auto it = std::lower_bound(
      rows_.begin(), rows_.end(), key,
      [](const Row& r, chord::Key k) { return r.key < k; });
  if (it != rows_.end() && it->key == key) {
    return static_cast<std::size_t>(it - rows_.begin());
  }
  it = rows_.insert(it, Row{key, spare_.acquire()});
  return static_cast<std::size_t>(it - rows_.begin());
}

void LocationTable::erase_row_at(std::size_t i) {
  spare_.release(std::move(rows_[i].providers));
  rows_.erase(rows_.begin() + static_cast<std::ptrdiff_t>(i));
}

void LocationTable::erase_row(chord::Key key) {
  std::size_t i = row_index(key);
  if (i != kNpos) erase_row_at(i);
}

void LocationTable::bury(chord::Key key, net::NodeAddress address,
                         std::uint32_t version) {
  auto it = std::lower_bound(
      tombstones_.begin(), tombstones_.end(), std::make_pair(key, address),
      [](const Tombstone& t, const std::pair<chord::Key, net::NodeAddress>& k) {
        if (t.key != k.first) return t.key < k.first;
        return t.address < k.second;
      });
  if (it != tombstones_.end() && it->key == key && it->address == address) {
    it->version = std::max(it->version, version);
    return;
  }
  tombstones_.insert(it, Tombstone{key, address, version});
}

std::uint32_t LocationTable::revive(chord::Key key, net::NodeAddress address) {
  auto it = std::lower_bound(
      tombstones_.begin(), tombstones_.end(), std::make_pair(key, address),
      [](const Tombstone& t, const std::pair<chord::Key, net::NodeAddress>& k) {
        if (t.key != k.first) return t.key < k.first;
        return t.address < k.second;
      });
  if (it == tombstones_.end() || it->key != key || it->address != address) {
    return 0;
  }
  std::uint32_t buried = it->version;
  tombstones_.erase(it);
  return buried;
}

bool LocationTable::tombstoned(chord::Key key, net::NodeAddress address) const {
  return tombstone_version(key, address).has_value();
}

std::optional<std::uint32_t> LocationTable::tombstone_version(
    chord::Key key, net::NodeAddress address) const {
  auto it = std::lower_bound(
      tombstones_.begin(), tombstones_.end(), std::make_pair(key, address),
      [](const Tombstone& t, const std::pair<chord::Key, net::NodeAddress>& k) {
        if (t.key != k.first) return t.key < k.first;
        return t.address < k.second;
      });
  if (it == tombstones_.end() || it->key != key || it->address != address) {
    return std::nullopt;
  }
  return it->version;
}

void LocationTable::publish(chord::Key key, net::NodeAddress address,
                            std::uint32_t frequency) {
  if (frequency == 0) return;
  std::uint32_t buried = revive(key, address);
  std::vector<Provider>& row = rows_[row_index_or_insert(key)].providers;
  for (Provider& p : row) {
    if (p.address == address) {
      p.frequency += frequency;
      ++p.version;
      sort_row(row);
      return;
    }
  }
  row.push_back(Provider{address, frequency, buried + 1});
  sort_row(row);
}

bool LocationTable::retract(chord::Key key, net::NodeAddress address,
                            std::uint32_t frequency) {
  std::size_t ri = row_index(key);
  if (ri == kNpos) return false;
  std::vector<Provider>& row = rows_[ri].providers;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i].address != address) continue;
    if (row[i].frequency <= frequency) {
      // Bury the version the entry died at: a stale replica snapshot can
      // only carry this version or older, so reconcile() rejects it.
      bury(key, address, row[i].version);
      row.erase(row.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      row[i].frequency -= frequency;
      ++row[i].version;
      sort_row(row);
    }
    if (row.empty()) erase_row_at(ri);
    return true;
  }
  return false;
}

void LocationTable::upsert(chord::Key key, net::NodeAddress address,
                           std::uint32_t frequency) {
  if (frequency == 0) {
    purge(key, address);
    return;
  }
  std::uint32_t buried = revive(key, address);
  std::vector<Provider>& row = rows_[row_index_or_insert(key)].providers;
  for (Provider& p : row) {
    if (p.address == address) {
      p.frequency = frequency;
      ++p.version;
      sort_row(row);
      return;
    }
  }
  row.push_back(Provider{address, frequency, buried + 1});
  sort_row(row);
}

void LocationTable::upsert_replica(chord::Key key, net::NodeAddress address,
                                   std::uint32_t frequency,
                                   std::uint32_t version) {
  if (frequency == 0) {
    bury(key, address, version);
    std::size_t ri = row_index(key);
    if (ri == kNpos) return;
    std::vector<Provider>& row = rows_[ri].providers;
    auto pos = std::remove_if(row.begin(), row.end(), [&](const Provider& p) {
      return p.address == address && p.version <= version;
    });
    row.erase(pos, row.end());
    if (row.empty()) erase_row_at(ri);
    return;
  }
  if (std::optional<std::uint32_t> buried = tombstone_version(key, address);
      buried.has_value()) {
    if (*buried >= version) return;  // stale push from before the burial
    (void)revive(key, address);
  }
  std::vector<Provider>& row = rows_[row_index_or_insert(key)].providers;
  for (Provider& p : row) {
    if (p.address == address) {
      if (version < p.version) return;  // out-of-order push
      p.frequency = frequency;
      p.version = version;
      sort_row(row);
      return;
    }
  }
  row.push_back(Provider{address, frequency, version});
  sort_row(row);
}

void LocationTable::reconcile(const RowSnapshot& rows) {
  for (const Row& incoming : rows) {
    const chord::Key key = incoming.key;
    // Locate the row lazily: when every incoming provider is rejected
    // (tombstoned or stale) no empty row must churn into existence just to
    // be erased again.
    std::size_t ri = row_index(key);
    bool changed = false;
    for (const Provider& in : incoming.providers) {
      if (in.frequency == 0) continue;  // replicas never mirror empty entries
      // A deleted provider only comes back when the snapshot is strictly
      // newer than its burial (it demonstrably re-published since).
      if (std::optional<std::uint32_t> buried =
              tombstone_version(key, in.address);
          buried.has_value()) {
        if (*buried >= in.version) continue;
        (void)revive(key, in.address);
      }
      if (ri == kNpos) ri = row_index_or_insert(key);
      bool found = false;
      for (Provider& p : rows_[ri].providers) {
        if (p.address != in.address) continue;
        found = true;
        if (in.version > p.version) {
          // Newer snapshot wins outright — including a *lower* frequency
          // (the partial-retract case the old max-merge resurrected).
          p.frequency = in.frequency;
          p.version = in.version;
          changed = true;
        } else if (in.version == p.version) {
          // Same causal state from several replica holders: max keeps the
          // merge idempotent without inflating the row.
          if (in.frequency > p.frequency) {
            p.frequency = in.frequency;
            changed = true;
          }
        }
        break;
      }
      if (!found) {
        rows_[ri].providers.push_back(in);
        changed = true;
      }
    }
    if (ri == kNpos) continue;
    if (changed) sort_row(rows_[ri].providers);
    if (rows_[ri].providers.empty()) erase_row_at(ri);
  }
}

bool LocationTable::purge(chord::Key key, net::NodeAddress address) {
  std::size_t ri = row_index(key);
  if (ri == kNpos) {
    // Tombstone even when the entry is already gone: the purge expresses
    // delete intent, and a stale replica push may still be in flight.
    bury(key, address, 0);
    return false;
  }
  std::vector<Provider>& row = rows_[ri].providers;
  std::uint32_t died_at = 0;
  auto pos = std::remove_if(row.begin(), row.end(), [&](const Provider& p) {
    if (p.address != address) return false;
    died_at = std::max(died_at, p.version);
    return true;
  });
  bool changed = pos != row.end();
  row.erase(pos, row.end());
  bury(key, address, died_at);
  if (row.empty()) erase_row_at(ri);
  return changed;
}

void LocationTable::purge_everywhere(net::NodeAddress address) {
  // Single compaction pass: purge every row, drop the emptied ones, and
  // park their provider capacity — no per-row vector erase churn.
  std::size_t w = 0;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    std::vector<Provider>& row = rows_[r].providers;
    std::uint32_t died_at = 0;
    auto pos = std::remove_if(row.begin(), row.end(), [&](const Provider& p) {
      if (p.address != address) return false;
      died_at = std::max(died_at, p.version);
      return true;
    });
    if (pos != row.end()) {
      row.erase(pos, row.end());
      bury(rows_[r].key, address, died_at);
    }
    if (row.empty()) {
      spare_.release(std::move(row));
      continue;
    }
    if (w != r) rows_[w] = std::move(rows_[r]);
    ++w;
  }
  rows_.resize(w);
}

std::vector<Provider> LocationTable::lookup(chord::Key key) const {
  std::size_t ri = row_index(key);
  if (ri == kNpos) return {};
  return rows_[ri].providers;  // rows are kept sorted on mutation
}

const Provider* LocationTable::find(chord::Key key,
                                    net::NodeAddress address) const {
  std::size_t ri = row_index(key);
  if (ri == kNpos) return nullptr;
  for (const Provider& p : rows_[ri].providers) {
    if (p.address == address) return &p;
  }
  return nullptr;
}

const Row* LocationTable::find_row(chord::Key key) const {
  std::size_t ri = row_index(key);
  return ri == kNpos ? nullptr : &rows_[ri];
}

RowSnapshot LocationTable::extract_range(chord::Key lo, chord::Key hi) {
  return extract_range_mapped(lo, hi, [](chord::Key k) { return k; });
}

RowSnapshot LocationTable::extract_range_mapped(
    chord::Key lo, chord::Key hi,
    const std::function<chord::Key(chord::Key)>& to_ring) {
  RowSnapshot out;
  std::size_t w = 0;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (chord::in_open_closed(to_ring(rows_[r].key), lo, hi)) {
      out.push_back(std::move(rows_[r]));
    } else {
      if (w != r) rows_[w] = std::move(rows_[r]);
      ++w;
    }
  }
  rows_.resize(w);
  return out;  // ascending by key: rows_ was sorted
}

void LocationTable::absorb(const RowSnapshot& rows) {
  for (const Row& incoming : rows) {
    const chord::Key key = incoming.key;
    for (const Provider& in : incoming.providers) {
      if (in.frequency == 0) continue;
      // Preserve incoming versions: resetting a transferred entry to
      // version 1 would let that owner's replica mirrors (still carrying
      // the higher pre-transfer version) overwrite later mutations — the
      // resurrection bug reintroduced through ownership transfer.
      std::uint32_t buried = revive(key, in.address);
      std::vector<Provider>& row = rows_[row_index_or_insert(key)].providers;
      bool found = false;
      for (Provider& p : row) {
        if (p.address != in.address) continue;
        p.frequency += in.frequency;
        p.version = std::max(p.version, in.version) + 1;
        found = true;
        break;
      }
      if (!found) {
        row.push_back(
            Provider{in.address, in.frequency, std::max(in.version, buried + 1)});
      }
      sort_row(row);
    }
  }
}

std::size_t LocationTable::entry_count() const noexcept {
  std::size_t n = 0;
  for (const Row& r : rows_) n += r.providers.size();
  return n;
}

std::size_t LocationTable::byte_size() const noexcept {
  // 16 per provider: address (8) + frequency (4) + version (4). The
  // pre-version figure of 12 survived the replica-versioning change, so
  // every slice transfer and reconcile push undercounted by 4 bytes per
  // entry — and tombstones (key + address + buried version), which do
  // travel with snapshots to keep deletions from resurrecting, were never
  // charged at all.
  std::size_t n = 8;
  for (const Row& r : rows_) n += 8 + kProviderBytes * r.providers.size();
  n += kTombstoneBytes * tombstones_.size();
  return n;
}

}  // namespace ahsw::overlay
